// vadasa_serve — the long-lived anonymization job service (docs/serving.md):
//
//   vadasa_serve --socket=/tmp/vadasa.sock [--workers=N] [--max-queue=N]
//                [--no-coalesce] [--trace=out.json] [--metrics=out.json]
//
// Speaks newline-delimited JSON over a Unix domain socket: submit / status /
// result / cancel / metrics / shutdown (see src/serve/protocol.h for the
// wire format). Datasets are loaded once by the registry and shared across
// jobs; the scheduler bounds admission, honors per-job priorities and
// deadlines, and coalesces group-statistics warmup across jobs that share a
// dataset. On shutdown the queue drains, then --trace/--metrics export.
//
// Exit codes: 0 clean shutdown, 1 runtime failure, 2 usage/flag error.

#include <cstdio>
#include <string>

#include "api/flags.h"
#include "obs/trace.h"
#include "serve/dataset_registry.h"
#include "serve/protocol.h"
#include "serve/scheduler.h"
#include "serve/server.h"

int main(int argc, char** argv) {
  using namespace vadasa;

  api::FlagParser parser;
  parser.Path("socket", "Unix domain socket path to listen on (required)")
      .Int("workers", "executor threads", 1, 256)
      .Int("max-queue", "admission queue bound (reject beyond)", 1, 1 << 20)
      .Bool("no-coalesce", "disable shared warmup batching")
      .Path("trace", "write a Chrome trace_event JSON file at shutdown")
      .Path("metrics", "write a metrics registry JSON dump at shutdown");

  auto flags = parser.Parse(argc, argv, /*first=*/1);
  if (!flags.ok() || !flags->Has("socket") || !flags->positional().empty()) {
    if (!flags.ok()) {
      std::fprintf(stderr, "error: %s\n", flags.status().message().c_str());
    }
    std::fprintf(stderr, "usage: vadasa_serve --socket=PATH [options]\noptions:\n%s",
                 parser.Help().c_str());
    return 2;
  }

  obs::TraceArgs trace_args;
  trace_args.trace_path = flags->GetString("trace", "");
  trace_args.metrics_path = flags->GetString("metrics", "");
  if (trace_args.tracing_requested()) obs::StartTracing();

  serve::DatasetRegistry registry;
  serve::SchedulerOptions scheduler_options;
  scheduler_options.workers = static_cast<size_t>(flags->GetInt("workers", 2));
  scheduler_options.max_queue =
      static_cast<size_t>(flags->GetInt("max-queue", 64));
  scheduler_options.coalesce_warmup = !flags->GetBool("no-coalesce");
  serve::JobScheduler scheduler(scheduler_options);
  serve::Protocol protocol(&registry, &scheduler);

  serve::ServerOptions server_options;
  server_options.socket_path = flags->GetString("socket", "");
  serve::Server server(&protocol, server_options);
  const Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "error: %s\n", started.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "vadasa_serve: listening on %s (%zu workers, queue %zu)\n",
               server.socket_path().c_str(), scheduler_options.workers,
               scheduler_options.max_queue);

  server.AwaitShutdown();   // {"op":"shutdown"} from a client.
  scheduler.Shutdown(/*drain=*/true);
  server.Stop();

  if (!obs::ExportRequested(trace_args)) {
    std::fprintf(stderr, "error: failed to write --trace/--metrics output\n");
    return 1;
  }
  return 0;
}
