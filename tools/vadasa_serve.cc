// vadasa_serve — the long-lived anonymization job service (docs/serving.md):
//
//   vadasa_serve --listen=unix:PATH|tcp:HOST:PORT [--socket=PATH]
//                [--workers=N] [--shards=N] [--max-queue=N]
//                [--cache-mb=N] [--no-cache]
//                [--no-coalesce] [--trace=out.json] [--metrics=out.json]
//                [--prom=out.prom] [--slow-log=out.ndjson] [--slow-ms=MS]
//                [--sample-ms=MS] [--drain-ms=MS] [--max-in-flight=N]
//                [--submit-rate=R] [--max-line-bytes=N] [--watchdog-ms=MS]
//                [--watchdog-multiple=X]
//
// Speaks newline-delimited JSON over a Unix domain or TCP socket: submit /
// status / result / cancel / metrics / telemetry / shutdown (see
// src/serve/protocol.h for the wire format; --socket=PATH is the legacy
// spelling of --listen=unix:PATH). Datasets are loaded once by the registry
// and shared across jobs; the scheduler bounds admission, honors per-job
// priorities and deadlines, shards its worker pools by dataset (--shards) so
// one hot dataset cannot starve the rest, and coalesces group-statistics
// warmup across jobs that share a dataset. Repeated (dataset, policy)
// requests are answered from a bounded LRU result cache (--cache-mb budget,
// --no-cache disables; responses carry "cached":true) keyed on the dataset's
// content fingerprint, so a reload with different bytes can never serve a
// stale payload. Telemetry (docs/observability.md): every request line gets
// a trace id echoed in its responses, --slow-log appends NDJSON lines for
// jobs slower than --slow-ms, --sample-ms runs the background gauge sampler
// (0 = off), and on shutdown --trace/--metrics/--prom export.
//
// Robustness (docs/robustness.md): --max-in-flight/--submit-rate meter each
// connection (over-quota submits get Unavailable + retry_after_ms),
// --max-line-bytes bounds a request line, --watchdog-ms/--watchdog-multiple
// flag overdue jobs, and SIGTERM/SIGINT trigger a graceful drain: admission
// stops, in-flight work gets up to --drain-ms to finish (whatever remains is
// cancelled), telemetry flushes, and the process exits 0.
//
// Exit codes: 0 clean shutdown (including signal-driven drain), 1 runtime
// failure, 2 usage/flag error.

#include <csignal>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>

#include "api/flags.h"
#include "obs/metrics.h"
#include "obs/request_log.h"
#include "obs/sampler.h"
#include "obs/trace.h"
#include "serve/dataset_registry.h"
#include "serve/protocol.h"
#include "serve/result_cache.h"
#include "serve/scheduler.h"
#include "serve/server.h"

namespace {

// Signal handlers may only touch lock-free atomics; the main loop polls this
// between short condition-variable waits.
std::atomic<int> g_signal{0};

void OnSignal(int sig) { g_signal.store(sig, std::memory_order_relaxed); }

}  // namespace

int main(int argc, char** argv) {
  using namespace vadasa;

  api::FlagParser parser;
  parser.Path("socket", "Unix socket path (legacy alias of --listen=unix:PATH)")
      .Path("listen", "listen spec: unix:PATH or tcp:HOST:PORT (0 = ephemeral)")
      .Int("workers", "executor threads", 1, 256)
      .Int("shards", "dataset-hashed worker-pool shards (<= workers)", 1, 256)
      .Int("max-queue", "admission queue bound (reject beyond)", 1, 1 << 20)
      .Int("cache-mb", "result-cache byte budget, MiB", 1, 1 << 20)
      .Bool("no-cache", "disable the result cache")
      .Bool("no-coalesce", "disable shared warmup batching")
      .Path("trace", "write a Chrome trace_event JSON file at shutdown")
      .Path("metrics", "write a metrics registry JSON dump at shutdown")
      .Path("prom", "write a Prometheus text exposition at shutdown")
      .Path("slow-log", "append slow-request NDJSON lines to this file")
      .Double("slow-ms", "slow-log threshold, milliseconds", 0.0, 1e9)
      .Int("sample-ms", "telemetry sampler interval, 0 disables", 0, 3600000)
      .Int("drain-ms", "graceful-shutdown drain budget, milliseconds", 0,
           3600000)
      .Int("max-in-flight", "per-connection unfinished-job cap, 0 disables", 0,
           1 << 20)
      .Double("submit-rate", "per-connection submits/second cap, 0 disables",
              0.0, 1e9)
      .Int("max-line-bytes", "longest request line accepted, bytes", 1,
           1 << 30)
      .Int("watchdog-ms", "overdue-job watchdog interval, 0 disables", 0,
           3600000)
      .Double("watchdog-multiple", "deadline multiple before a job is overdue",
              1.0, 1e6);

  auto flags = parser.Parse(argc, argv, /*first=*/1);
  if (!flags.ok() || (!flags->Has("socket") && !flags->Has("listen")) ||
      !flags->positional().empty()) {
    if (!flags.ok()) {
      std::fprintf(stderr, "error: %s\n", flags.status().message().c_str());
    }
    std::fprintf(stderr,
                 "usage: vadasa_serve --listen=unix:PATH|tcp:HOST:PORT "
                 "[options]\noptions:\n%s",
                 parser.Help().c_str());
    return 2;
  }
  serve::ListenSpec listen_spec;
  if (flags->Has("listen")) {
    auto parsed = serve::ParseListenSpec(flags->GetString("listen", ""));
    if (!parsed.ok()) {
      std::fprintf(stderr, "error: %s\n", parsed.status().message().c_str());
      return 2;
    }
    listen_spec = *parsed;
  }

  obs::TraceArgs trace_args;
  trace_args.trace_path = flags->GetString("trace", "");
  trace_args.metrics_path = flags->GetString("metrics", "");
  trace_args.prom_path = flags->GetString("prom", "");
  if (trace_args.tracing_requested()) obs::StartTracing();

  std::unique_ptr<obs::RequestLog> slow_log;
  if (flags->Has("slow-log")) {
    slow_log = std::make_unique<obs::RequestLog>(
        flags->GetString("slow-log", ""), flags->GetDouble("slow-ms", 0.0));
    if (!slow_log->ok()) {
      std::fprintf(stderr, "error: cannot open --slow-log file\n");
      return 2;
    }
  }

  const int sample_ms = static_cast<int>(flags->GetInt("sample-ms", 100));
  if (sample_ms > 0) obs::TelemetrySampler::Global().Start(sample_ms);

  // The cache outlives the registry and scheduler that point at it.
  std::unique_ptr<serve::ResultCache> cache;
  if (!flags->GetBool("no-cache")) {
    serve::ResultCacheOptions cache_options;
    cache_options.byte_budget =
        static_cast<size_t>(flags->GetInt("cache-mb", 64)) << 20;
    cache = std::make_unique<serve::ResultCache>(cache_options);
  }
  serve::DatasetRegistry registry;
  registry.set_result_cache(cache.get());
  serve::SchedulerOptions scheduler_options;
  scheduler_options.workers = static_cast<size_t>(flags->GetInt("workers", 2));
  scheduler_options.shards = static_cast<size_t>(flags->GetInt("shards", 1));
  scheduler_options.max_queue =
      static_cast<size_t>(flags->GetInt("max-queue", 64));
  scheduler_options.coalesce_warmup = !flags->GetBool("no-coalesce");
  scheduler_options.result_cache = cache.get();
  scheduler_options.slow_log = slow_log.get();
  scheduler_options.watchdog_interval_ms =
      static_cast<int>(flags->GetInt("watchdog-ms", 1000));
  scheduler_options.watchdog_multiple =
      flags->GetDouble("watchdog-multiple", 3.0);
  serve::JobScheduler scheduler(scheduler_options);
  serve::Protocol protocol(&registry, &scheduler);

  serve::ServerOptions server_options;
  server_options.listen = listen_spec;
  server_options.socket_path = flags->GetString("socket", "");
  server_options.quota.max_in_flight =
      static_cast<size_t>(flags->GetInt("max-in-flight", 0));
  server_options.quota.submits_per_second =
      flags->GetDouble("submit-rate", 0.0);
  server_options.max_line_bytes =
      static_cast<size_t>(flags->GetInt("max-line-bytes", 4 << 20));
  serve::Server server(&protocol, server_options);
  const Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "error: %s\n", started.ToString().c_str());
    return 1;
  }

  const int drain_ms = static_cast<int>(flags->GetInt("drain-ms", 5000));
  // Exported so operators (vadasa_top, the telemetry verb) can see the
  // configured drain budget alongside the quarantine/watchdog counters.
  obs::MetricsRegistry::Global().gauge("serve.drain_ms")
      ->Set(static_cast<double>(drain_ms));

  std::signal(SIGTERM, OnSignal);
  std::signal(SIGINT, OnSignal);

  // Print the resolved endpoint (an ephemeral tcp:HOST:0 bind resolves to
  // its real port) so harnesses can scrape it from stderr.
  std::fprintf(stderr,
               "vadasa_serve: listening on %s (%zu workers, %zu shards, "
               "queue %zu, cache %s)\n",
               server.listen_spec().ToString().c_str(),
               scheduler_options.workers, scheduler.shard_count(),
               scheduler_options.max_queue,
               cache != nullptr
                   ? (std::to_string(cache->byte_budget() >> 20) + " MiB").c_str()
                   : "off");

  // Wait for either {"op":"shutdown"} from a client or SIGTERM/SIGINT. The
  // handler cannot notify a condition variable, so poll its flag between
  // short waits.
  int signal_seen = 0;
  for (;;) {
    if (server.AwaitShutdownFor(std::chrono::milliseconds(50))) break;
    signal_seen = g_signal.load(std::memory_order_relaxed);
    if (signal_seen != 0) break;
  }
  if (signal_seen != 0) {
    std::fprintf(stderr, "vadasa_serve: signal %d, draining (up to %d ms)\n",
                 signal_seen, drain_ms);
  }

  // Graceful drain: admission closes immediately, queued + running jobs get
  // the budget to finish, the remainder is cancelled. Blocked `result` waits
  // unblock as their jobs reach terminal states, which lets Stop() join the
  // connection threads.
  const bool drained =
      scheduler.ShutdownWithin(std::chrono::milliseconds(drain_ms));
  obs::MetricsRegistry::Global().gauge("serve.drain.clean")
      ->Set(drained ? 1.0 : 0.0);
  if (!drained) {
    std::fprintf(stderr,
                 "vadasa_serve: drain budget exhausted, cancelled remaining jobs\n");
  }
  server.Stop();
  if (sample_ms > 0) obs::TelemetrySampler::Global().Stop();

  if (!obs::ExportRequested(trace_args)) {
    std::fprintf(stderr,
                 "error: failed to write --trace/--metrics/--prom output\n");
    return 1;
  }
  return 0;
}
