// Replays property-harness repro files outside the test runner:
//   vadasa_prop_replay --repro=case.repro [more.repro ...]
// Exit code 0 when every repro evaluates clean (bug fixed), 1 when any still
// reproduces, 2 on usage or file errors. `--list` prints the property
// catalog with one-line summaries.
#include <cstdio>
#include <string>
#include <vector>

#include "api/flags.h"
#include "testing/harness.h"
#include "testing/properties.h"
#include "testing/repro.h"

namespace {

int Usage(const vadasa::api::FlagParser& parser, const std::string& error) {
  if (!error.empty()) std::fprintf(stderr, "error: %s\n", error.c_str());
  std::fprintf(stderr,
               "usage: vadasa_prop_replay --repro=PATH [--repro=PATH ...]\n"
               "       vadasa_prop_replay PATH [PATH ...]\n"
               "       vadasa_prop_replay --list\noptions:\n%s",
               parser.Help().c_str());
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  vadasa::api::FlagParser parser;
  parser.Bool("list", "print the property catalog and exit")
      .Path("repro", "a repro file to replay (repeatable as positionals)");
  auto flags = parser.Parse(argc, argv, /*first=*/1);
  if (!flags.ok()) return Usage(parser, flags.status().message());

  if (flags->GetBool("list")) {
    for (const auto& property : vadasa::testing::PropertyCatalog()) {
      std::printf("%-36s %s\n", property.name.c_str(), property.summary.c_str());
    }
    return 0;
  }

  std::vector<std::string> paths = flags->positional();
  for (std::string& path : flags->GetAll("repro")) paths.push_back(std::move(path));
  if (paths.empty()) return Usage(parser, "no repro files given");

  int failures = 0;
  for (const std::string& path : paths) {
    const auto repro = vadasa::testing::LoadRepro(path);
    if (!repro.ok()) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(),
                   repro.status().ToString().c_str());
      return 2;
    }
    const vadasa::Status verdict = vadasa::testing::EvaluateRepro(*repro);
    if (verdict.ok()) {
      std::printf("%s: PASS (property \"%s\" holds — bug no longer reproduces)\n",
                  path.c_str(), repro->property.c_str());
    } else {
      ++failures;
      std::printf("%s: FAIL — %s\n", path.c_str(), verdict.ToString().c_str());
      if (!repro->message.empty()) {
        std::printf("  originally: %s\n", repro->message.c_str());
      }
    }
  }
  return failures == 0 ? 0 : 1;
}
