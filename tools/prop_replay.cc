// Replays property-harness repro files outside the test runner:
//   vadasa_prop_replay --repro=case.repro [more.repro ...]
// Exit code 0 when every repro evaluates clean (bug fixed), 1 when any still
// reproduces, 2 on usage or file errors. `--list` prints the property
// catalog with one-line summaries.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "testing/harness.h"
#include "testing/properties.h"
#include "testing/repro.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: vadasa_prop_replay --repro=PATH [--repro=PATH ...]\n"
               "       vadasa_prop_replay PATH [PATH ...]\n"
               "       vadasa_prop_replay --list\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list") {
      for (const auto& property : vadasa::testing::PropertyCatalog()) {
        std::printf("%-28s %s\n", property.name.c_str(), property.summary.c_str());
      }
      return 0;
    }
    if (arg.rfind("--repro=", 0) == 0) {
      paths.push_back(arg.substr(std::strlen("--repro=")));
    } else if (arg.rfind("--", 0) == 0) {
      return Usage();
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) return Usage();

  int failures = 0;
  for (const std::string& path : paths) {
    const auto repro = vadasa::testing::LoadRepro(path);
    if (!repro.ok()) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(),
                   repro.status().ToString().c_str());
      return 2;
    }
    const vadasa::Status verdict = vadasa::testing::EvaluateRepro(*repro);
    if (verdict.ok()) {
      std::printf("%s: PASS (property \"%s\" holds — bug no longer reproduces)\n",
                  path.c_str(), repro->property.c_str());
    } else {
      ++failures;
      std::printf("%s: FAIL — %s\n", path.c_str(), verdict.ToString().c_str());
      if (!repro->message.empty()) {
        std::printf("  originally: %s\n", repro->message.c_str());
      }
    }
  }
  return failures == 0 ? 0 : 1;
}
