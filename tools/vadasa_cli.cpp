// vadasa — the command-line front end of the framework, the tool an RDC
// analyst actually runs:
//
//   vadasa categorize <in.csv>
//       categorize attributes via the default experience base and print the
//       metadata dictionary (Figure 4 layout).
//   vadasa risk <in.csv> [--measure M] [--k K] [--threshold T] [--quantile Q]
//       per-tuple and file-level disclosure risk; with --quantile also the
//       statistically inferred threshold.
//   vadasa anonymize <in.csv> <out.csv> [--measure M] [--k K]
//                    [--threshold T] [--standard-nulls] [--single-step]
//                    [--declarative]
//       run the audited anonymization cycle and write the release;
//       --declarative routes the run through the Vadalog engine instead of
//       the native cycle (the paper's reasoning-based pipeline).
//   vadasa datasets
//       regenerate and describe the Fig. 6 experimental corpus.
//
// Measures: reidentification | k-anonymity | individual | suda.
//
// Observability (any command): --trace=out.json writes a Chrome trace_event
// file (load in Perfetto or chrome://tracing); --metrics=out.json dumps the
// metrics registry; --prom=out.prom writes a Prometheus text exposition.
// See docs/observability.md.
//
// Everything here goes through the stable vadasa::api facade (docs/api.md);
// exit codes: 0 success, 1 runtime failure, 2 usage/flag error.

#include <cstdio>
#include <string>
#include <vector>

#include "api/flags.h"
#include "api/vadasa.h"
#include "common/csv.h"
#include "core/datagen.h"
#include "obs/trace.h"

namespace {

using namespace vadasa;

api::FlagParser CommonFlags() {
  api::FlagParser parser;
  parser.Path("trace", "write a Chrome trace_event JSON file")
      .Path("metrics", "write a metrics registry JSON dump")
      .Path("prom", "write a Prometheus text exposition");
  return parser;
}

api::FlagParser PolicyFlags() {
  api::FlagParser parser = CommonFlags();
  parser
      .String("measure",
              "risk measure: reidentification|k-anonymity|individual|suda")
      .Int("k", "k of k-anonymity / SUDA MSU bound", 1, 1000000)
      .Double("threshold", "risk threshold T in [0,1]", 0.0, 1.0)
      .Bool("standard-nulls", "standard (Skolem) null semantics instead of =⊥")
      .Int("posterior-draws", "Monte-Carlo draws for individual risk", 0,
           100000000)
      .Int("seed", "seed of the sampled estimator", 0, 0x7fffffffffffffffL);
  return parser;
}

api::SessionOptions OptionsFrom(const api::FlagParser::Parsed& flags) {
  api::SessionOptions options;
  options.risk_measure = flags.GetString("measure", options.risk_measure);
  options.k = static_cast<int>(flags.GetInt("k", options.k));
  options.threshold = flags.GetDouble("threshold", options.threshold);
  options.standard_nulls = flags.GetBool("standard-nulls");
  options.single_step = flags.GetBool("single-step");
  options.declarative = flags.GetBool("declarative");
  options.posterior_draws =
      static_cast<int>(flags.GetInt("posterior-draws", options.posterior_draws));
  options.seed = static_cast<uint64_t>(
      flags.GetInt("seed", static_cast<long>(options.seed)));
  return options;
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int Usage(const std::string& message, const api::FlagParser& parser) {
  std::fprintf(stderr, "%s\noptions:\n%s", message.c_str(),
               parser.Help().c_str());
  return 2;
}

/// Parses with `parser`; on success fills trace/metrics export args.
Result<api::FlagParser::Parsed> ParseOrUsage(const api::FlagParser& parser,
                                             int argc, char** argv,
                                             obs::TraceArgs* trace_args) {
  VADASA_ASSIGN_OR_RETURN(auto flags, parser.Parse(argc, argv, /*first=*/2));
  trace_args->trace_path = flags.GetString("trace", "");
  trace_args->metrics_path = flags.GetString("metrics", "");
  trace_args->prom_path = flags.GetString("prom", "");
  if (trace_args->tracing_requested()) obs::StartTracing();
  return flags;
}

int CmdCategorize(const api::FlagParser::Parsed& flags) {
  auto session = api::Session::Open(flags.positional()[0], {});
  if (!session.ok()) return Fail(session.status());
  std::printf("%s", session->dictionary().ToText(session->table().name()).c_str());
  for (const auto& conflict : session->conflicts()) {
    std::printf("!! conflict on %s: %s vs %s\n", conflict.attribute.c_str(),
                core::AttributeCategoryToString(conflict.first).c_str(),
                core::AttributeCategoryToString(conflict.second).c_str());
  }
  return 0;
}

int CmdRisk(const api::FlagParser::Parsed& flags, double quantile) {
  auto session = api::Session::Open(flags.positional()[0], OptionsFrom(flags));
  if (!session.ok()) return Fail(session.status());
  auto report = session->Risk(quantile, /*explain=*/true);
  if (!report.ok()) return Fail(report.status());
  for (const api::RiskyTuple& tuple : report->risky) {
    std::printf("tuple %zu: risk %.4f  %s\n", tuple.row + 1, tuple.risk,
                tuple.explanation.c_str());
  }
  std::printf("\nfile-level: %s\n", report->global.ToString().c_str());
  if (quantile > 0.0) {
    std::printf("inferred threshold at quantile %g: %.6f\n", quantile,
                report->inferred_threshold);
  }
  return 0;
}

int CmdAnonymize(const api::FlagParser::Parsed& flags) {
  auto session = api::Session::Open(flags.positional()[0], OptionsFrom(flags));
  if (!session.ok()) return Fail(session.status());
  auto response = session->Anonymize();
  if (!response.ok()) return Fail(response.status());
  std::printf("%s\n", response->ToText().c_str());
  const Status written =
      WriteCsvFile(flags.positional()[1], response->table.ToCsv());
  if (!written.ok()) return Fail(written);
  std::printf("wrote %s\n", flags.positional()[1].c_str());
  return 0;
}

int CmdDatasets() {
  std::printf("%-10s %-5s %-8s %-5s\n", "name", "QIs", "tuples", "dist");
  for (const core::DatasetSpec& spec : core::Figure6Corpus()) {
    std::printf("%-10s %-5d %-8zu %-5s\n", spec.name.c_str(), spec.num_qi,
                spec.num_tuples,
                core::DistributionKindToString(spec.distribution).c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: vadasa <categorize|risk|anonymize|datasets> [args]\n"
                 "       [--trace=out.json] [--metrics=out.json] [--prom=out.prom]\n"
                 "see the header of tools/vadasa_cli.cpp for details\n");
    return 2;
  }
  const std::string command = argv[1];
  obs::TraceArgs trace_args;
  int code = 0;

  if (command == "categorize") {
    const api::FlagParser parser = CommonFlags();
    auto flags = ParseOrUsage(parser, argc, argv, &trace_args);
    if (!flags.ok()) return Usage(flags.status().message(), parser);
    if (flags->positional().size() != 1) {
      return Usage("usage: vadasa categorize <in.csv>", parser);
    }
    code = CmdCategorize(*flags);
  } else if (command == "risk") {
    api::FlagParser parser = PolicyFlags();
    parser.Double("quantile", "also infer the threshold at this quantile",
                  0.0, 1.0);
    auto flags = ParseOrUsage(parser, argc, argv, &trace_args);
    if (!flags.ok()) return Usage(flags.status().message(), parser);
    if (flags->positional().size() != 1) {
      return Usage("usage: vadasa risk <in.csv> [options]", parser);
    }
    code = CmdRisk(*flags, flags->GetDouble("quantile", -1.0));
  } else if (command == "anonymize") {
    api::FlagParser parser = PolicyFlags();
    parser.Bool("single-step", "paper-literal single-step cycle")
        .Bool("declarative", "run the cycle on the Vadalog engine");
    auto flags = ParseOrUsage(parser, argc, argv, &trace_args);
    if (!flags.ok()) return Usage(flags.status().message(), parser);
    if (flags->positional().size() != 2) {
      return Usage("usage: vadasa anonymize <in.csv> <out.csv> [options]",
                   parser);
    }
    code = CmdAnonymize(*flags);
  } else if (command == "datasets") {
    const api::FlagParser parser = CommonFlags();
    auto flags = ParseOrUsage(parser, argc, argv, &trace_args);
    if (!flags.ok()) return Usage(flags.status().message(), parser);
    code = CmdDatasets();
  } else {
    std::fprintf(stderr, "unknown command: %s\n", command.c_str());
    return 2;
  }

  if (!obs::ExportRequested(trace_args)) {
    std::fprintf(stderr, "error: failed to write --trace/--metrics/--prom output\n");
    return code == 0 ? 1 : code;
  }
  return code;
}
