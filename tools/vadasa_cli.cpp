// vadasa — the command-line front end of the framework, the tool an RDC
// analyst actually runs:
//
//   vadasa categorize <in.csv>
//       categorize attributes via the default experience base and print the
//       metadata dictionary (Figure 4 layout).
//   vadasa risk <in.csv> [--measure M] [--k K] [--quantile Q]
//       per-tuple and file-level disclosure risk; with --quantile also the
//       statistically inferred threshold.
//   vadasa anonymize <in.csv> <out.csv> [--measure M] [--k K]
//                    [--threshold T] [--standard-nulls] [--single-step]
//                    [--declarative]
//       run the audited anonymization cycle and write the release;
//       --declarative routes the run through the Vadalog engine instead of
//       the native cycle (the paper's reasoning-based pipeline).
//   vadasa datasets
//       regenerate and describe the Fig. 6 experimental corpus.
//
// Measures: reidentification | k-anonymity | individual | suda.
//
// Observability (any command): --trace=out.json writes a Chrome trace_event
// file (load in Perfetto or chrome://tracing); --metrics=out.json dumps the
// metrics registry. See docs/observability.md.

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "common/csv.h"
#include "core/categorize.h"
#include "core/vadalog_bridge.h"
#include "obs/trace.h"
#include "core/datagen.h"
#include "core/global_risk.h"
#include "core/group_index.h"
#include "core/rdc.h"
#include "core/report.h"

namespace {

using namespace vadasa;
using namespace vadasa::core;

struct Flags {
  std::vector<std::string> positional;
  std::map<std::string, std::string> named;
  bool standard_nulls = false;
  bool single_step = false;
  bool declarative = false;
};

Flags ParseFlags(int argc, char** argv) {
  Flags flags;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--standard-nulls") {
      flags.standard_nulls = true;
    } else if (arg == "--single-step") {
      flags.single_step = true;
    } else if (arg == "--declarative") {
      flags.declarative = true;
    } else if (arg.rfind("--", 0) == 0 && i + 1 < argc) {
      flags.named[arg.substr(2)] = argv[++i];
    } else {
      flags.positional.push_back(arg);
    }
  }
  return flags;
}

std::string FlagOr(const Flags& flags, const std::string& name,
                   const std::string& fallback) {
  auto it = flags.named.find(name);
  return it == flags.named.end() ? fallback : it->second;
}

Result<MicrodataTable> LoadAndCategorize(const std::string& path) {
  VADASA_ASSIGN_OR_RETURN(const CsvTable csv, ReadCsvFile(path));
  VADASA_ASSIGN_OR_RETURN(MicrodataTable table,
                          MicrodataTable::FromCsv(path, csv, {}, ""));
  AttributeCategorizer categorizer = AttributeCategorizer::WithDefaultExperience();
  VADASA_RETURN_NOT_OK(categorizer.CategorizeTable(&table, nullptr).status());
  return table;
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int CmdCategorize(const Flags& flags) {
  if (flags.positional.empty()) {
    std::fprintf(stderr, "usage: vadasa categorize <in.csv>\n");
    return 2;
  }
  auto csv = ReadCsvFile(flags.positional[0]);
  if (!csv.ok()) return Fail(csv.status());
  auto table = MicrodataTable::FromCsv(flags.positional[0], *csv, {}, "");
  if (!table.ok()) return Fail(table.status());
  AttributeCategorizer categorizer = AttributeCategorizer::WithDefaultExperience();
  MetadataDictionary dictionary;
  auto decisions = categorizer.CategorizeTable(&*table, &dictionary);
  if (!decisions.ok()) return Fail(decisions.status());
  std::printf("%s", dictionary.ToText(table->name()).c_str());
  for (const auto& conflict : categorizer.conflicts()) {
    std::printf("!! conflict on %s: %s vs %s\n", conflict.attribute.c_str(),
                AttributeCategoryToString(conflict.first).c_str(),
                AttributeCategoryToString(conflict.second).c_str());
  }
  return 0;
}

int CmdRisk(const Flags& flags) {
  if (flags.positional.empty()) {
    std::fprintf(stderr, "usage: vadasa risk <in.csv> [--measure M] [--k K]\n");
    return 2;
  }
  auto table = LoadAndCategorize(flags.positional[0]);
  if (!table.ok()) return Fail(table.status());
  auto measure = MakeRiskMeasure(FlagOr(flags, "measure", "k-anonymity"));
  if (!measure.ok()) return Fail(measure.status());
  RiskContext ctx;
  ctx.k = std::atoi(FlagOr(flags, "k", "2").c_str());
  if (flags.standard_nulls) ctx.semantics = NullSemantics::kStandard;
  const double threshold = std::atof(FlagOr(flags, "threshold", "0.5").c_str());

  auto risks = (*measure)->ComputeRisks(*table, ctx);
  if (!risks.ok()) return Fail(risks.status());
  for (size_t r = 0; r < risks->size(); ++r) {
    if ((*risks)[r] > threshold) {
      std::printf("tuple %zu: risk %.4f  %s\n", r + 1, (*risks)[r],
                  (*measure)->Explain(*table, ctx, r, (*risks)[r]).c_str());
    }
  }
  auto report = ComputeGlobalRisk(*table, **measure, ctx, threshold);
  if (!report.ok()) return Fail(report.status());
  std::printf("\nfile-level: %s\n", report->ToString().c_str());
  const std::string quantile = FlagOr(flags, "quantile", "");
  if (!quantile.empty()) {
    auto inferred = InferThreshold(*table, **measure, ctx, std::atof(quantile.c_str()));
    if (!inferred.ok()) return Fail(inferred.status());
    std::printf("inferred threshold at quantile %s: %.6f\n", quantile.c_str(),
                *inferred);
  }
  return 0;
}

int CmdAnonymize(const Flags& flags) {
  if (flags.positional.size() < 2) {
    std::fprintf(stderr, "usage: vadasa anonymize <in.csv> <out.csv> [options]\n");
    return 2;
  }
  auto table = LoadAndCategorize(flags.positional[0]);
  if (!table.ok()) return Fail(table.status());
  if (flags.declarative) {
    // Reasoning path: the cycle runs as a Vadalog program whose #risk /
    // #anonymize externals call back into the native measures — traces show
    // engine.run / engine.round spans with risk.compute children.
    BridgeOptions bridge_options;
    bridge_options.risk_measure = FlagOr(flags, "measure", "k-anonymity");
    bridge_options.k = std::atoi(FlagOr(flags, "k", "2").c_str());
    bridge_options.threshold = std::atof(FlagOr(flags, "threshold", "0.5").c_str());
    bridge_options.maybe_match = !flags.standard_nulls;
    const VadalogBridge bridge(bridge_options);
    vadalog::RunStats run_stats;
    auto anonymized = bridge.RunDeclarativeCycle(*table, nullptr, &run_stats);
    if (!anonymized.ok()) return Fail(anonymized.status());
    std::printf("declarative cycle: %zu rounds, %zu facts derived, %zu nulls\n",
                run_stats.rounds, run_stats.facts_derived, run_stats.nulls_created);
    const Status decl_written =
        WriteCsvFile(flags.positional[1], anonymized->ToCsv());
    if (!decl_written.ok()) return Fail(decl_written);
    std::printf("wrote %s\n", flags.positional[1].c_str());
    return 0;
  }
  auto measure = MakeRiskMeasure(FlagOr(flags, "measure", "k-anonymity"));
  if (!measure.ok()) return Fail(measure.status());
  LocalSuppression anonymizer;
  CycleOptions options;
  options.risk.k = std::atoi(FlagOr(flags, "k", "2").c_str());
  options.threshold = std::atof(FlagOr(flags, "threshold", "0.5").c_str());
  if (flags.standard_nulls) options.risk.semantics = NullSemantics::kStandard;
  options.single_step = flags.single_step;
  auto audit = RunAuditedRelease(&*table, **measure, &anonymizer, options);
  if (!audit.ok()) return Fail(audit.status());
  std::printf("%s\n", audit->ToText().c_str());
  const Status written = WriteCsvFile(flags.positional[1], table->ToCsv());
  if (!written.ok()) return Fail(written);
  std::printf("wrote %s\n", flags.positional[1].c_str());
  return 0;
}

int CmdDatasets() {
  std::printf("%-10s %-5s %-8s %-5s\n", "name", "QIs", "tuples", "dist");
  for (const DatasetSpec& spec : Figure6Corpus()) {
    std::printf("%-10s %-5d %-8zu %-5s\n", spec.name.c_str(), spec.num_qi,
                spec.num_tuples, DistributionKindToString(spec.distribution).c_str());
  }
  return 0;
}

}  // namespace

int Dispatch(const std::string& command, const Flags& flags) {
  if (command == "categorize") return CmdCategorize(flags);
  if (command == "risk") return CmdRisk(flags);
  if (command == "anonymize") return CmdAnonymize(flags);
  if (command == "datasets") return CmdDatasets();
  std::fprintf(stderr, "unknown command: %s\n", command.c_str());
  return 2;
}

int main(int argc, char** argv) {
  const obs::TraceArgs trace_args = obs::ExtractTraceArgs(&argc, argv);
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: vadasa <categorize|risk|anonymize|datasets> [args]\n"
                 "       [--trace=out.json] [--metrics=out.json]\n"
                 "see the header of tools/vadasa_cli.cpp for details\n");
    return 2;
  }
  if (trace_args.tracing_requested()) obs::StartTracing();
  const std::string command = argv[1];
  const Flags flags = ParseFlags(argc, argv);
  const int code = Dispatch(command, flags);
  if (!obs::ExportRequested(trace_args)) {
    std::fprintf(stderr, "error: failed to write --trace/--metrics output\n");
    return code == 0 ? 1 : code;
  }
  return code;
}
