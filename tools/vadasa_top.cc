// vadasa_top — a live terminal dashboard for a running vadasa_serve:
//
//   vadasa_top --socket=/tmp/vadasa.sock [--interval-ms=1000] [--frames=0]
//   vadasa_top --socket=tcp:localhost:7411 ...
//
// --socket accepts a bare Unix path, unix:PATH, or tcp:HOST:PORT — the same
// endpoints vadasa_serve --listen binds. Each frame opens a connection,
// issues {"op":"telemetry"} and renders the response: the sampler's recent
// gauge series (queue depth, running jobs, RSS) as sparklines, per-shard
// queue depths, result-cache hit/miss counters, and a per-op latency table
// decoded from the Prometheus exposition. --frames bounds the number of
// refreshes (0 = until the server goes away; CI uses --frames=1 as a scrape
// smoke test).
//
// Exit codes: 0 clean, 1 connection/protocol failure, 2 usage error.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "api/flags.h"
#include "common/json.h"
#include "serve/server.h"

namespace {

using vadasa::Json;
using vadasa::serve::ListenSpec;
using vadasa::serve::ParseListenSpec;

/// Dials a unix:PATH / tcp:HOST:PORT / bare-path endpoint; -1 on failure.
int Connect(const std::string& endpoint) {
  ListenSpec spec;
  if (endpoint.rfind("unix:", 0) == 0 || endpoint.rfind("tcp:", 0) == 0) {
    auto parsed = ParseListenSpec(endpoint);
    if (!parsed.ok()) return -1;
    spec = *parsed;
  } else {
    spec.kind = ListenSpec::Kind::kUnix;
    spec.path = endpoint;
  }
  if (spec.kind == ListenSpec::Kind::kUnix) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (spec.path.size() >= sizeof(addr.sun_path)) {
      ::close(fd);
      return -1;
    }
    std::strncpy(addr.sun_path, spec.path.c_str(), sizeof(addr.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      ::close(fd);
      return -1;
    }
    return fd;
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(spec.port));
  const std::string host =
      (spec.host.empty() || spec.host == "localhost" || spec.host == "0.0.0.0")
          ? "127.0.0.1"
          : spec.host;
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
          0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

/// One request/response round trip on a fresh connection. Returns false on
/// any socket failure.
bool CallTelemetry(const std::string& endpoint, std::string* response) {
  const int fd = Connect(endpoint);
  if (fd < 0) return false;
  const std::string request = "{\"op\": \"telemetry\"}\n";
  size_t written = 0;
  while (written < request.size()) {
    const ssize_t n =
        ::write(fd, request.data() + written, request.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return false;
    }
    written += static_cast<size_t>(n);
  }
  response->clear();
  char chunk[4096];
  while (response->find('\n') == std::string::npos) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return false;
    }
    if (n == 0) break;
    response->append(chunk, static_cast<size_t>(n));
  }
  ::close(fd);
  return response->find('\n') != std::string::npos;
}

/// Renders `values` as a fixed-width ASCII sparkline scaled to its own max.
std::string Sparkline(const std::vector<double>& values, size_t width) {
  static const char levels[] = " .:-=+*#";
  const size_t num_levels = sizeof(levels) - 2;  // Index of the densest glyph.
  std::string out(width, ' ');
  if (values.empty()) return out;
  double max = 0.0;
  for (const double v : values) max = std::max(max, v);
  const size_t start = values.size() > width ? values.size() - width : 0;
  const size_t offset = width - (values.size() - start);
  for (size_t i = start; i < values.size(); ++i) {
    const double v = values[i];
    size_t level = 0;
    if (max > 0.0 && v > 0.0) {
      level = 1 + static_cast<size_t>(v / max * static_cast<double>(num_levels - 1));
      level = std::min(level, num_levels);
    }
    out[offset + i - start] = levels[level];
  }
  return out;
}

std::vector<double> Column(const Json& series, const char* name) {
  std::vector<double> out;
  const Json::Array& arr = series[name].AsArray();
  out.reserve(arr.size());
  for (const Json& v : arr) out.push_back(v.AsDouble());
  return out;
}

/// Per-op latency rows decoded from the Prometheus exposition.
struct OpRow {
  double count = 0, p50 = 0, p90 = 0, p99 = 0;
};

std::map<std::string, OpRow> ParseOpTable(const std::string& prom) {
  std::map<std::string, OpRow> ops;
  size_t pos = 0;
  const std::string family = "vadasa_serve_op_latency_ms";
  while (pos < prom.size()) {
    size_t eol = prom.find('\n', pos);
    if (eol == std::string::npos) eol = prom.size();
    const std::string line = prom.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.rfind(family, 0) != 0) continue;
    const size_t op_key = line.find("op=\"");
    if (op_key == std::string::npos) continue;
    const size_t op_start = op_key + 4;
    const size_t op_end = line.find('"', op_start);
    const size_t space = line.rfind(' ');
    if (op_end == std::string::npos || space == std::string::npos) continue;
    const std::string op = line.substr(op_start, op_end - op_start);
    const double value = std::strtod(line.c_str() + space + 1, nullptr);
    OpRow& row = ops[op];
    if (line.find("_count{") != std::string::npos) row.count = value;
    else if (line.find("quantile=\"0.5\"") != std::string::npos) row.p50 = value;
    else if (line.find("quantile=\"0.9\"") != std::string::npos) row.p90 = value;
    else if (line.find("quantile=\"0.99\"") != std::string::npos) row.p99 = value;
  }
  return ops;
}

double Last(const std::vector<double>& values) {
  return values.empty() ? 0.0 : values.back();
}

/// The value of an unlabelled counter/gauge sample in the exposition, or
/// `fallback` when the family is absent.
double PromValue(const std::string& prom, const std::string& family,
                 double fallback) {
  size_t pos = 0;
  while (pos < prom.size()) {
    size_t eol = prom.find('\n', pos);
    if (eol == std::string::npos) eol = prom.size();
    if (prom.compare(pos, family.size(), family) == 0 &&
        pos + family.size() < eol && prom[pos + family.size()] == ' ') {
      return std::strtod(prom.c_str() + pos + family.size() + 1, nullptr);
    }
    pos = eol + 1;
  }
  return fallback;
}

/// Queue depth per scheduler shard, scanned from the contiguous
/// vadasa_serve_shard_<i>_queue_depth gauge families.
std::vector<double> ShardDepths(const std::string& prom) {
  std::vector<double> depths;
  for (int i = 0;; ++i) {
    const std::string family =
        "vadasa_serve_shard_" + std::to_string(i) + "_queue_depth";
    const double v = PromValue(prom, family, -1.0);
    if (v < 0.0) break;
    depths.push_back(v);
  }
  return depths;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vadasa;

  api::FlagParser parser;
  parser.Path("socket",
              "vadasa_serve endpoint: PATH, unix:PATH or tcp:HOST:PORT")
      .Int("interval-ms", "refresh interval", 50, 3600000)
      .Int("frames", "number of refreshes, 0 = until the server exits", 0,
           1 << 30);
  auto flags = parser.Parse(argc, argv, /*first=*/1);
  if (!flags.ok() || !flags->Has("socket") || !flags->positional().empty()) {
    if (!flags.ok()) {
      std::fprintf(stderr, "error: %s\n", flags.status().message().c_str());
    }
    std::fprintf(stderr, "usage: vadasa_top --socket=PATH [options]\noptions:\n%s",
                 parser.Help().c_str());
    return 2;
  }
  const std::string socket_path = flags->GetString("socket", "");
  const int64_t interval_ms = flags->GetInt("interval-ms", 1000);
  const int64_t frames = flags->GetInt("frames", 0);

  for (int64_t frame = 0; frames == 0 || frame < frames; ++frame) {
    if (frame > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
    }
    std::string line;
    if (!CallTelemetry(socket_path, &line)) {
      if (frame > 0 && frames == 0) return 0;  // Server went away; clean exit.
      std::fprintf(stderr, "error: cannot reach %s\n", socket_path.c_str());
      return 1;
    }
    auto parsed = Json::Parse(line);
    if (!parsed.ok() || !(*parsed).GetBool("ok", false)) {
      std::fprintf(stderr, "error: bad telemetry response\n");
      return 1;
    }
    const Json& response = *parsed;
    const Json& series = response["series"];
    const std::vector<double> queue = Column(series, "queue_depth");
    const std::vector<double> running = Column(series, "running");
    const std::vector<double> rss = Column(series, "rss_mb");

    if (frames != 1) std::printf("\x1b[2J\x1b[H");
    std::printf("vadasa_top — %s   sampler=%s   samples=%lld\n",
                socket_path.c_str(),
                response.GetBool("sampler_running", false) ? "on" : "off",
                static_cast<long long>(series.GetInt("count", 0)));
    std::printf("  queue   %6.0f  |%s|\n", Last(queue), Sparkline(queue, 48).c_str());
    std::printf("  running %6.0f  |%s|\n", Last(running),
                Sparkline(running, 48).c_str());
    std::printf("  workers %6.0f   rss %.1f MiB\n",
                Last(Column(series, "workers")), Last(rss));
    const std::string prom = response.GetString("prometheus", "");
    // Degraded-mode state (docs/robustness.md): anything non-zero here means
    // the server is shedding or containing faults right now.
    std::printf(
        "  faults  quarantined=%.0f watchdog=%.0f oversized=%.0f "
        "quota_rej=%.0f drain_ms=%.0f\n",
        PromValue(prom, "vadasa_serve_registry_quarantined", 0),
        PromValue(prom, "vadasa_serve_watchdog_flagged", 0),
        PromValue(prom, "vadasa_serve_conn_oversized", 0),
        PromValue(prom, "vadasa_serve_quota_rejected_in_flight", 0) +
            PromValue(prom, "vadasa_serve_quota_rejected_rate", 0),
        PromValue(prom, "vadasa_serve_drain_ms", 0));
    // Dataset-sharded worker pools: one hot shard with an idle neighbor is
    // the isolation working as intended; every shard deep means saturation.
    const std::vector<double> shard_depths = ShardDepths(prom);
    if (shard_depths.size() > 1) {
      std::printf("  shards ");
      for (size_t i = 0; i < shard_depths.size(); ++i) {
        std::printf(" %zu:%.0f", i, shard_depths[i]);
      }
      std::printf("\n");
    }
    const double cache_hits = PromValue(prom, "vadasa_serve_cache_hits", -1.0);
    if (cache_hits >= 0.0) {
      std::printf(
          "  cache   hits=%.0f misses=%.0f evict=%.0f inval=%.0f "
          "bytes=%.0f\n",
          cache_hits, PromValue(prom, "vadasa_serve_cache_misses", 0),
          PromValue(prom, "vadasa_serve_cache_evictions", 0),
          PromValue(prom, "vadasa_serve_cache_invalidations", 0),
          PromValue(prom, "vadasa_serve_cache_bytes", 0));
    }
    const auto ops = ParseOpTable(prom);
    if (!ops.empty()) {
      std::printf("  %-10s %10s %10s %10s %10s\n", "op", "count", "p50_ms",
                  "p90_ms", "p99_ms");
      for (const auto& [op, row] : ops) {
        std::printf("  %-10s %10.0f %10.3f %10.3f %10.3f\n", op.c_str(),
                    row.count, row.p50, row.p90, row.p99);
      }
    }
    std::fflush(stdout);
  }
  return 0;
}
