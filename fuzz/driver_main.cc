// Fallback driver for fuzz_vadalog when libFuzzer is unavailable (the local
// toolchain is g++): a deterministic seeded loop that feeds the fuzz entry
// point with grammar-generated programs, token soup, and raw bytes.
//
//   VADASA_PROP_SEED    master seed (default 1)
//   VADASA_FUZZ_ITERS   iterations (default 1000)
//   argv[1..]           corpus files to replay instead of generating
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "common/random.h"
#include "testing/generators.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

void Feed(const std::string& input) {
  LLVMFuzzerTestOneInput(reinterpret_cast<const uint8_t*>(input.data()),
                         input.size());
}

uint64_t EnvU64(const char* name, uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::strtoull(value, nullptr, 10);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1) {
    for (int i = 1; i < argc; ++i) {
      std::ifstream in(argv[i], std::ios::binary);
      if (!in) {
        std::fprintf(stderr, "cannot read corpus file %s\n", argv[i]);
        return 1;
      }
      std::ostringstream buffer;
      buffer << in.rdbuf();
      Feed(buffer.str());
      std::printf("replayed %s (%zu bytes)\n", argv[i], buffer.str().size());
    }
    return 0;
  }

  const uint64_t seed = EnvU64("VADASA_PROP_SEED", 1);
  const uint64_t iters = EnvU64("VADASA_FUZZ_ITERS", 1000);
  vadasa::Rng rng(seed);
  for (uint64_t i = 0; i < iters; ++i) {
    // Rotate input classes so every run exercises grammar-valid programs,
    // near-valid token streams, and raw noise.
    switch (i % 3) {
      case 0:
        Feed(vadasa::testing::RandomVadalogProgram(&rng));
        break;
      case 1:
        Feed(vadasa::testing::RandomTokenSoup(&rng));
        break;
      default:
        Feed(vadasa::testing::RandomBytes(&rng));
        break;
    }
  }
  std::printf("fuzz_vadalog: %llu seeded iterations, seed %llu, no crash\n",
              static_cast<unsigned long long>(iters),
              static_cast<unsigned long long>(seed));
  return 0;
}
