// Fuzz entry point for the Vadalog front end and engine: any byte string is
// lexed and parsed; inputs that parse are chased under tight resource bounds.
// The harness asserts nothing about the outcome — the properties under test
// are "no crash, no sanitizer report, no hang".
//
// Built two ways (see fuzz/CMakeLists.txt):
//   - with -DVADASA_ENABLE_LIBFUZZER=ON under clang, a real libFuzzer binary;
//   - otherwise linked against driver_main.cc, a seeded-loop driver feeding
//     grammar-generated programs, token soup, and raw bytes.
#include <cstddef>
#include <cstdint>
#include <string>

#include "vadalog/database.h"
#include "vadalog/engine.h"
#include "vadalog/parser.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string source(reinterpret_cast<const char*>(data), size);
  auto program = vadasa::vadalog::Parse(source);
  if (!program.ok()) return 0;

  vadasa::vadalog::EngineOptions options;
  options.max_rounds = 50;        // Keep pathological chases short.
  options.max_facts = 10000;
  options.track_provenance = false;
  vadasa::vadalog::Engine engine(options);
  vadasa::vadalog::Database db;
  (void)engine.Run(*program, &db);
  return 0;
}
