#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.h"
#include "obs/metrics.h"
#include "obs/prometheus.h"
#include "obs/request_log.h"
#include "obs/sampler.h"

namespace vadasa::obs {
namespace {

std::string TempPath(const char* stem) {
  return testing::TempDir() + "/" + stem + "_" +
         std::to_string(::getpid()) + ".tmp";
}

// --- Prometheus exposition --------------------------------------------------

TEST(PrometheusTest, SanitizesMetricNames) {
  EXPECT_EQ(PrometheusMetricName("serve.queue_depth"), "vadasa_serve_queue_depth");
  EXPECT_EQ(PrometheusMetricName("cycle.risk-eval ms"), "vadasa_cycle_risk_eval_ms");
  EXPECT_EQ(PrometheusMetricName("already_fine:yes"), "vadasa_already_fine:yes");
}

TEST(PrometheusTest, EncodesCountersGaugesAndSummaries) {
  MetricsRegistry r;
  r.counter("serve.requests")->Add(5);
  r.gauge("serve.queue_depth")->Set(2.5);
  Histogram* h = r.histogram("serve.job_ms");
  h->Record(1.0);
  h->Record(3.0);
  const std::string text = ToPrometheusText(r);
  EXPECT_NE(text.find("# TYPE vadasa_serve_requests counter\n"
                      "vadasa_serve_requests 5\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE vadasa_serve_queue_depth gauge\n"
                      "vadasa_serve_queue_depth 2.5\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE vadasa_serve_job_ms summary\n"), std::string::npos);
  EXPECT_NE(text.find("vadasa_serve_job_ms{quantile=\"0.5\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("vadasa_serve_job_ms{quantile=\"0.99\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("vadasa_serve_job_ms_sum 4\n"), std::string::npos);
  EXPECT_NE(text.find("vadasa_serve_job_ms_count 2\n"), std::string::npos);
  EXPECT_NE(text.find("vadasa_serve_job_ms_min 1\n"), std::string::npos);
  EXPECT_NE(text.find("vadasa_serve_job_ms_max 3\n"), std::string::npos);
}

TEST(PrometheusTest, FoldsPerOpLatenciesIntoOneLabelledFamily) {
  MetricsRegistry r;
  r.histogram("serve.op.ping.latency_ms")->Record(0.5);
  r.histogram("serve.op.submit.latency_ms")->Record(8.0);
  const std::string text = ToPrometheusText(r);
  // Exactly one TYPE header for the family, then one series per verb.
  size_t count = 0, pos = 0;
  const std::string header = "# TYPE vadasa_serve_op_latency_ms summary";
  while ((pos = text.find(header, pos)) != std::string::npos) {
    ++count;
    pos += header.size();
  }
  EXPECT_EQ(count, 1u);
  EXPECT_NE(text.find("vadasa_serve_op_latency_ms{op=\"ping\",quantile=\"0.5\"}"),
            std::string::npos);
  EXPECT_NE(text.find("vadasa_serve_op_latency_ms{op=\"submit\",quantile=\"0.5\"}"),
            std::string::npos);
  EXPECT_NE(text.find("vadasa_serve_op_latency_ms_count{op=\"ping\"} 1"),
            std::string::npos);
  // No per-verb unlabelled metric leaked out.
  EXPECT_EQ(text.find("vadasa_serve_op_ping_latency_ms"), std::string::npos);
}

TEST(PrometheusTest, WriteProducesParsableFile) {
  MetricsRegistry r;
  r.counter("runs")->Add(1);
  const std::string path = TempPath("prom");
  ASSERT_TRUE(WritePrometheus(r, path));
  std::ifstream in(path);
  std::stringstream contents;
  contents << in.rdbuf();
  EXPECT_EQ(contents.str(), ToPrometheusText(r));
  std::remove(path.c_str());
}

// --- Telemetry sampler ------------------------------------------------------

TEST(TelemetrySamplerTest, SampleOnceReadsGaugesAndRss) {
  MetricsRegistry::Global().gauge("serve.queue_depth")->Set(4.0);
  MetricsRegistry::Global().gauge("serve.running")->Set(2.0);
  TelemetrySampler sampler;
  sampler.SampleOnce();
  const auto samples = sampler.Samples();
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_DOUBLE_EQ(samples[0].queue_depth, 4.0);
  EXPECT_DOUBLE_EQ(samples[0].running, 2.0);
  EXPECT_GT(samples[0].rss_mb, 0.0);  // /proc/self/statm is live on Linux.
  EXPECT_GT(samples[0].metric_count, 0.0);
  MetricsRegistry::Global().gauge("serve.queue_depth")->Set(0.0);
  MetricsRegistry::Global().gauge("serve.running")->Set(0.0);
}

TEST(TelemetrySamplerTest, RingOverwritesOldestBeyondCapacity) {
  TelemetrySampler sampler(/*capacity=*/4);
  MetricsRegistry::Global().gauge("serve.queue_depth")->Set(0.0);
  for (int i = 0; i < 7; ++i) {
    MetricsRegistry::Global().gauge("serve.queue_depth")->Set(i);
    sampler.SampleOnce();
  }
  MetricsRegistry::Global().gauge("serve.queue_depth")->Set(0.0);
  const auto samples = sampler.Samples();
  ASSERT_EQ(samples.size(), 4u);
  // Oldest-first: the last 4 of the 7 snapshots, in order.
  EXPECT_DOUBLE_EQ(samples[0].queue_depth, 3.0);
  EXPECT_DOUBLE_EQ(samples[3].queue_depth, 6.0);
}

TEST(TelemetrySamplerTest, TimeSeriesJsonParsesWithAlignedColumns) {
  TelemetrySampler sampler(/*capacity=*/8);
  sampler.SampleOnce();
  sampler.SampleOnce();
  auto parsed = Json::Parse(sampler.TimeSeriesJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const Json& series = *parsed;
  EXPECT_EQ(series.GetInt("count", -1), 2);
  for (const char* column : {"t_ms", "queue_depth", "running", "workers",
                             "rss_mb", "metric_count"}) {
    ASSERT_TRUE(series[column].is_array()) << column;
    EXPECT_EQ(series[column].AsArray().size(), 2u) << column;
  }
}

TEST(TelemetrySamplerTest, BackgroundThreadCollectsAndStops) {
  TelemetrySampler sampler(/*capacity=*/64);
  sampler.Start(/*interval_ms=*/1);
  EXPECT_TRUE(sampler.running());
  // The t=0 sample is taken synchronously by Start.
  EXPECT_GE(sampler.Samples().size(), 1u);
  sampler.Stop();
  EXPECT_FALSE(sampler.running());
  const size_t after_stop = sampler.Samples().size();
  sampler.Clear();
  EXPECT_TRUE(sampler.Samples().empty());
  (void)after_stop;
}

// --- Slow-request log -------------------------------------------------------

TEST(RequestLogTest, ThresholdGatesAndWritesNdjson) {
  const std::string path = TempPath("slowlog");
  {
    RequestLog log(path, /*threshold_ms=*/10.0);
    ASSERT_TRUE(log.ok());
    RequestLogEntry fast;
    fast.op = "risk";
    fast.queue_ms = 1.0;
    fast.run_ms = 2.0;
    EXPECT_FALSE(log.Record(fast));  // Under threshold: no line.
    RequestLogEntry slow;
    slow.trace_id = 0xabcULL;
    slow.op = "anonymize";
    slow.dataset = "hospital \"ae\"";  // Exercises JSON escaping.
    slow.queue_ms = 4.0;
    slow.run_ms = 20.0;
    slow.outcome = "done";
    EXPECT_TRUE(log.Record(slow));  // queue+run >= threshold.
    EXPECT_EQ(log.lines_written(), 1u);
  }
  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  auto parsed = Json::Parse(line);
  ASSERT_TRUE(parsed.ok()) << line;
  EXPECT_EQ(parsed->GetString("trace_id", ""), "0000000000000abc");
  EXPECT_EQ(parsed->GetString("op", ""), "anonymize");
  EXPECT_EQ(parsed->GetString("dataset", ""), "hospital \"ae\"");
  EXPECT_DOUBLE_EQ(parsed->GetDouble("queue_ms", 0.0), 4.0);
  EXPECT_DOUBLE_EQ(parsed->GetDouble("run_ms", 0.0), 20.0);
  EXPECT_EQ(parsed->GetString("outcome", ""), "done");
  EXPECT_FALSE(std::getline(in, line));  // Exactly one line.
  std::remove(path.c_str());
}

TEST(RequestLogTest, ZeroThresholdLogsEverythingAndAppends) {
  const std::string path = TempPath("slowlog_all");
  {
    RequestLog log(path, 0.0);
    RequestLogEntry e;
    e.op = "ping";
    e.outcome = "ok";
    EXPECT_TRUE(log.Record(e));
  }
  {
    RequestLog log(path, 0.0);  // Reopen appends, not truncates.
    RequestLogEntry e;
    e.op = "ping";
    e.outcome = "ok";
    EXPECT_TRUE(log.Record(e));
  }
  std::ifstream in(path);
  std::string line;
  size_t lines = 0;
  while (std::getline(in, line)) ++lines;
  EXPECT_EQ(lines, 2u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace vadasa::obs
