#include "obs/trace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/thread_pool.h"

// The tracer compiles to no-ops under VADASA_DISABLE_OBS; every assertion
// here is about the recording build.
#ifndef VADASA_DISABLE_OBS

namespace vadasa::obs {
namespace {

/// Restores the previous global pool size on scope exit.
struct ScopedThreads {
  explicit ScopedThreads(size_t n) : previous(ThreadPool::SetGlobalThreads(n)) {}
  ~ScopedThreads() { ThreadPool::SetGlobalThreads(previous); }
  size_t previous;
};

std::vector<SpanEvent> SpansNamed(const std::vector<SpanEvent>& spans,
                                  const std::string& name) {
  std::vector<SpanEvent> out;
  for (const SpanEvent& s : spans) {
    if (name == s.name) out.push_back(s);
  }
  return out;
}

/// Per-thread well-formedness: any two spans recorded on the same thread are
/// either disjoint or fully nested — a partial overlap means the stack
/// discipline broke.
void ExpectWellFormedPerThread(const std::vector<SpanEvent>& spans) {
  std::map<uint32_t, std::vector<SpanEvent>> by_tid;
  for (const SpanEvent& s : spans) {
    EXPECT_LE(s.start_ns, s.end_ns);
    by_tid[s.tid].push_back(s);
  }
  for (const auto& [tid, list] : by_tid) {
    (void)tid;
    for (size_t i = 0; i < list.size(); ++i) {
      for (size_t j = i + 1; j < list.size(); ++j) {
        const SpanEvent& a = list[i];
        const SpanEvent& b = list[j];
        const bool disjoint = a.end_ns <= b.start_ns || b.end_ns <= a.start_ns;
        const bool a_in_b = b.start_ns <= a.start_ns && a.end_ns <= b.end_ns;
        const bool b_in_a = a.start_ns <= b.start_ns && b.end_ns <= a.end_ns;
        EXPECT_TRUE(disjoint || a_in_b || b_in_a)
            << "partial overlap between '" << a.name << "' [" << a.start_ns << ", "
            << a.end_ns << "] and '" << b.name << "' [" << b.start_ns << ", "
            << b.end_ns << "] on tid " << a.tid;
      }
    }
  }
}

TEST(TraceTest, DisabledTracerRecordsNothing) {
  StartTracing();
  StopTracing();
  { Span span("ignored"); }
  EXPECT_TRUE(CollectSpans().empty());
  EXPECT_FALSE(TracingEnabled());
}

TEST(TraceTest, NestedSpansRecordParentChain) {
  StartTracing();
  {
    Span outer("outer");
    { Span inner("inner"); }
  }
  StopTracing();
  const auto spans = CollectSpans();
  const auto outer = SpansNamed(spans, "outer");
  const auto inner = SpansNamed(spans, "inner");
  ASSERT_EQ(outer.size(), 1u);
  ASSERT_EQ(inner.size(), 1u);
  EXPECT_EQ(outer[0].parent, 0u);
  EXPECT_EQ(inner[0].parent, outer[0].id);
  EXPECT_NE(inner[0].id, outer[0].id);
  ExpectWellFormedPerThread(spans);
}

TEST(TraceTest, ParallelForShardSpansParentToSubmitterSpan) {
  ScopedThreads threads(4);
  constexpr size_t kShards = 32;
  StartTracing();
  {
    Span outer("submit");
    ThreadPool::Global().ParallelFor(0, kShards, 1,
                                     [](size_t lo, size_t hi, size_t) {
                                       for (size_t i = lo; i < hi; ++i) {
                                         Span shard("shard");
                                       }
                                     });
  }
  StopTracing();
  const auto spans = CollectSpans();
  const auto submit = SpansNamed(spans, "submit");
  const auto shards = SpansNamed(spans, "shard");
  ASSERT_EQ(submit.size(), 1u);
  ASSERT_EQ(shards.size(), kShards);

  // Every shard span — whether it ran on the submitting thread or on a pool
  // worker — is parented to the span that was open at the ParallelFor call.
  std::set<uint32_t> tids;
  for (const SpanEvent& s : shards) {
    EXPECT_EQ(s.parent, submit[0].id);
    tids.insert(s.tid);
  }
  // No orphans beyond the expected names, no overlapping spans per thread.
  ExpectWellFormedPerThread(spans);

  // Span ids are unique across threads.
  std::set<uint64_t> ids;
  for (const SpanEvent& s : spans) {
    EXPECT_TRUE(ids.insert(s.id).second) << "duplicate span id " << s.id;
  }
}

TEST(TraceTest, WorkerContextIsRestoredBetweenJobs) {
  ScopedThreads threads(4);
  StartTracing();
  {
    Span first("first");
    ThreadPool::Global().ParallelFor(0, 16, 1, [](size_t, size_t, size_t) {
      Span shard("shard_a");
    });
  }
  {
    Span second("second");
    ThreadPool::Global().ParallelFor(0, 16, 1, [](size_t, size_t, size_t) {
      Span shard("shard_b");
    });
  }
  StopTracing();
  const auto spans = CollectSpans();
  const auto first = SpansNamed(spans, "first");
  const auto second = SpansNamed(spans, "second");
  ASSERT_EQ(first.size(), 1u);
  ASSERT_EQ(second.size(), 1u);
  for (const SpanEvent& s : SpansNamed(spans, "shard_a")) {
    EXPECT_EQ(s.parent, first[0].id);
  }
  for (const SpanEvent& s : SpansNamed(spans, "shard_b")) {
    EXPECT_EQ(s.parent, second[0].id);
  }
  ExpectWellFormedPerThread(spans);
}

TEST(TraceTest, StartTracingClearsPreviousSpans) {
  StartTracing();
  { Span span("old"); }
  StartTracing();
  { Span span("new"); }
  StopTracing();
  const auto spans = CollectSpans();
  EXPECT_TRUE(SpansNamed(spans, "old").empty());
  EXPECT_EQ(SpansNamed(spans, "new").size(), 1u);
}

TEST(TraceIdTest, HexRoundTripAndMalformedInput) {
  EXPECT_EQ(TraceIdToHex(0), "0000000000000000");
  EXPECT_EQ(TraceIdToHex(0xdeadbeef12345678ULL), "deadbeef12345678");
  EXPECT_EQ(TraceIdFromHex("deadbeef12345678"), 0xdeadbeef12345678ULL);
  EXPECT_EQ(TraceIdFromHex(TraceIdToHex(42)), 42u);
  EXPECT_EQ(TraceIdFromHex(""), 0u);
  EXPECT_EQ(TraceIdFromHex("deadbeef"), 0u);           // Too short.
  EXPECT_EQ(TraceIdFromHex("DEADBEEF12345678"), 0u);   // Uppercase rejected.
  EXPECT_EQ(TraceIdFromHex("xeadbeef12345678"), 0u);   // Bad digit.
}

TEST(TraceIdTest, SeededMintingIsDeterministicAndNonzero) {
  SeedTraceIds(1234);
  const uint64_t a = MintTraceId();
  const uint64_t b = MintTraceId();
  EXPECT_NE(a, 0u);
  EXPECT_NE(b, 0u);
  EXPECT_NE(a, b);
  SeedTraceIds(1234);
  EXPECT_EQ(MintTraceId(), a);
  EXPECT_EQ(MintTraceId(), b);
}

TEST(TraceIdTest, ScopedTraceIdInstallsAndRestores) {
  EXPECT_EQ(CurrentTraceId(), 0u);
  {
    ScopedTraceId outer(7);
    EXPECT_EQ(CurrentTraceId(), 7u);
    {
      ScopedTraceId inner(9);
      EXPECT_EQ(CurrentTraceId(), 9u);
    }
    EXPECT_EQ(CurrentTraceId(), 7u);
  }
  EXPECT_EQ(CurrentTraceId(), 0u);
}

TEST(TraceIdTest, SpansRecordTheInstalledTraceId) {
  StartTracing();
  {
    ScopedTraceId trace(11);
    Span traced("traced");
  }
  { Span untraced("untraced"); }
  StopTracing();
  const auto spans = CollectSpans();
  ASSERT_EQ(SpansNamed(spans, "traced").size(), 1u);
  ASSERT_EQ(SpansNamed(spans, "untraced").size(), 1u);
  EXPECT_EQ(SpansNamed(spans, "traced")[0].trace, 11u);
  EXPECT_EQ(SpansNamed(spans, "untraced")[0].trace, 0u);
}

TEST(TraceIdTest, ParallelForCarriesTraceIdToShards) {
  ScopedThreads threads(4);
  constexpr size_t kShards = 32;
  StartTracing();
  {
    ScopedTraceId trace(21);
    Span outer("submit");
    ThreadPool::Global().ParallelFor(0, kShards, 1,
                                     [](size_t, size_t, size_t) {
                                       Span shard("shard");
                                     });
  }
  StopTracing();
  const auto shards = SpansNamed(CollectSpans(), "shard");
  ASSERT_EQ(shards.size(), kShards);
  for (const SpanEvent& s : shards) EXPECT_EQ(s.trace, 21u);
}

TEST(TraceIdTest, EmitSpanRecordsCompletedSpanWithContext) {
  StartTracing();
  {
    ScopedTraceId trace(33);
    Span open("open");
    EmitSpan("manual", 100, 250);
  }
  StopTracing();
  const auto spans = CollectSpans();
  const auto manual = SpansNamed(spans, "manual");
  const auto open = SpansNamed(spans, "open");
  ASSERT_EQ(manual.size(), 1u);
  ASSERT_EQ(open.size(), 1u);
  EXPECT_EQ(manual[0].start_ns, 100);
  EXPECT_EQ(manual[0].end_ns, 250);
  EXPECT_EQ(manual[0].trace, 33u);
  EXPECT_EQ(manual[0].parent, open[0].id);
  EXPECT_NE(manual[0].id, open[0].id);
}

TEST(TraceIdTest, ChromeExportCarriesTraceHex) {
  StartTracing();
  {
    ScopedTraceId trace(TraceIdFromHex("00000000000000ff"));
    Span span("traced.phase");
  }
  StopTracing();
  const std::string json = ToChromeTraceJson();
  EXPECT_NE(json.find("\"trace\": \"00000000000000ff\""), std::string::npos);
}

TEST(TraceTest, ChromeTraceJsonIsWellFormed) {
  StartTracing();
  {
    Span outer("engine.run");
    { Span inner("engine.round"); }
  }
  StopTracing();
  const std::string json = ToChromeTraceJson();
  EXPECT_NE(json.find("\"traceEvents\": ["), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"M\""), std::string::npos);  // thread_name meta.
  EXPECT_NE(json.find("\"engine.run\""), std::string::npos);
  EXPECT_NE(json.find("\"engine.round\""), std::string::npos);
  // Balanced braces/brackets (cheap structural sanity; CI validates with a
  // real JSON parser).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

}  // namespace
}  // namespace vadasa::obs

#endif  // VADASA_DISABLE_OBS
