#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/cycle.h"
#include "core/datagen.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace vadasa::core {
namespace {

CycleOptions KAnonOptions(int k) {
  CycleOptions options;
  options.threshold = 0.5;
  options.risk.k = k;
  return options;
}

std::string Serialize(const MicrodataTable& t) {
  std::string out;
  for (size_t r = 0; r < t.num_rows(); ++r) {
    for (size_t c = 0; c < t.attributes().size(); ++c) {
      out += t.cell(r, c).ToString();
      out += '\x1f';
    }
    out += '\n';
  }
  return out;
}

Result<CycleStats> RunCycle(MicrodataTable* t, const CycleOptions& options) {
  KAnonymityRisk risk;
  LocalSuppression anon;
  AnonymizationCycle cycle(&risk, &anon, options);
  return cycle.Run(t);
}

TEST(CycleObsTest, TracingDoesNotAlterOutcome) {
  // The observability layer must be a pure observer: a cycle run with
  // tracing recording is bit-identical — same cells, same stats — to one
  // with tracing off (and to a VADASA_DISABLE_OBS build, which CI covers).
  MicrodataTable plain = Figure5Microdata();
  auto plain_stats = RunCycle(&plain, KAnonOptions(2));
  ASSERT_TRUE(plain_stats.ok()) << plain_stats.status().ToString();

  MicrodataTable traced = Figure5Microdata();
  obs::StartTracing();
  auto traced_stats = RunCycle(&traced, KAnonOptions(2));
  obs::StopTracing();
  ASSERT_TRUE(traced_stats.ok()) << traced_stats.status().ToString();

  EXPECT_EQ(Serialize(plain), Serialize(traced));
  EXPECT_EQ(plain_stats->iterations, traced_stats->iterations);
  EXPECT_EQ(plain_stats->risk_evaluations, traced_stats->risk_evaluations);
  EXPECT_EQ(plain_stats->anonymization_steps, traced_stats->anonymization_steps);
  EXPECT_EQ(plain_stats->nulls_injected, traced_stats->nulls_injected);
  EXPECT_EQ(plain_stats->initial_risky, traced_stats->initial_risky);
  EXPECT_EQ(plain_stats->unresolved, traced_stats->unresolved);
  EXPECT_EQ(plain_stats->group_rebuilds, traced_stats->group_rebuilds);
  EXPECT_EQ(plain_stats->group_updates, traced_stats->group_updates);
  EXPECT_DOUBLE_EQ(plain_stats->information_loss, traced_stats->information_loss);

#ifndef VADASA_DISABLE_OBS
  // The traced run produced the expected span taxonomy.
  const auto spans = obs::CollectSpans();
  auto count = [&](const std::string& name) {
    size_t n = 0;
    for (const auto& s : spans) {
      if (name == s.name) ++n;
    }
    return n;
  };
  EXPECT_EQ(count("cycle.run"), 1u);
  EXPECT_EQ(count("cycle.iteration"), traced_stats->iterations);
  EXPECT_EQ(count("cycle.risk_eval"), traced_stats->risk_evaluations);
  EXPECT_GE(count("risk.compute.k_anonymity"), traced_stats->risk_evaluations);
#endif
}

TEST(CycleObsTest, StatsMatchGlobalRegistryView) {
  // CycleStats is derived from the same registry the exporters serialize;
  // after a run on a fresh global registry the two views must agree exactly.
  obs::MetricsRegistry& global = obs::MetricsRegistry::Global();
  global.Reset();
  MicrodataTable t = Figure5Microdata();
  auto stats = RunCycle(&t, KAnonOptions(2));
  ASSERT_TRUE(stats.ok());

  EXPECT_EQ(global.counter("cycle.iterations")->value(), stats->iterations);
  EXPECT_EQ(global.counter("cycle.risk_evaluations")->value(),
            stats->risk_evaluations);
  EXPECT_EQ(global.counter("cycle.anonymization_steps")->value(),
            stats->anonymization_steps);
  EXPECT_EQ(global.counter("cycle.nulls_injected")->value(), stats->nulls_injected);
  EXPECT_EQ(global.counter("cycle.initial_risky")->value(), stats->initial_risky);
  EXPECT_EQ(global.counter("cycle.unresolved")->value(), stats->unresolved);
  EXPECT_EQ(global.counter("cycle.group_rebuilds")->value(), stats->group_rebuilds);
  EXPECT_EQ(global.counter("cycle.group_updates")->value(), stats->group_updates);
  EXPECT_DOUBLE_EQ(global.histogram("cycle.risk_eval_seconds")->sum(),
                   stats->risk_eval_seconds);
  EXPECT_DOUBLE_EQ(global.gauge("cycle.total_seconds")->value(),
                   stats->total_seconds);
  // Steady-clock consistency: the risk-eval component can never exceed the
  // whole run measured on the same clock.
  EXPECT_LE(stats->risk_eval_seconds, stats->total_seconds);
  EXPECT_EQ(global.histogram("cycle.risk_eval_seconds")->count(),
            stats->risk_evaluations);
}

TEST(CycleObsTest, MaxLogStepsTruncatesWithSentinel) {
  // Standard semantics makes suppression useless: the cycle wipes all 4 QIs
  // of the 3 risky tuples and gives up — 12 step entries + 3 give-ups,
  // far above the cap of 2.
  MicrodataTable t = Figure5Microdata();
  CycleOptions options = KAnonOptions(2);
  options.risk.semantics = NullSemantics::kStandard;
  options.log_steps = true;
  options.max_log_steps = 2;
  auto stats = RunCycle(&t, options);
  ASSERT_TRUE(stats.ok());
  ASSERT_EQ(stats->log.size(), 3u);  // Cap + one sentinel.
  EXPECT_EQ(stats->log.back(), kLogTruncatedSentinel);
  EXPECT_NE(stats->log[0], kLogTruncatedSentinel);
  EXPECT_GT(stats->log_dropped, 0u);
  // Dropped + kept (minus the sentinel) = every justification produced.
  MicrodataTable full = Figure5Microdata();
  options.max_log_steps = 10000;
  auto full_stats = RunCycle(&full, options);
  ASSERT_TRUE(full_stats.ok());
  EXPECT_EQ(full_stats->log_dropped, 0u);
  EXPECT_EQ(full_stats->log.size(), 2u + stats->log_dropped);
}

TEST(CycleObsTest, UncappedLogHasNoSentinel) {
  MicrodataTable t = Figure5Microdata();
  CycleOptions options = KAnonOptions(2);
  options.log_steps = true;
  auto stats = RunCycle(&t, options);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->log_dropped, 0u);
  for (const std::string& line : stats->log) {
    EXPECT_NE(line, kLogTruncatedSentinel);
  }
}

}  // namespace
}  // namespace vadasa::core
