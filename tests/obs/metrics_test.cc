#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

namespace vadasa::obs {
namespace {

TEST(CounterTest, AddsAndResets) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.value(), 42u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge g;
  g.Set(1.5);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);
  g.Add(2.0);
  EXPECT_DOUBLE_EQ(g.value(), 3.5);
  g.Reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(HistogramTest, ExactAggregatesOnKnownInput) {
  Histogram h;
  for (int v = 1; v <= 100; ++v) h.Record(v);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.sum(), 5050.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
}

TEST(HistogramTest, ExactNearestRankPercentiles) {
  // 1..100: nearest-rank percentile p is exactly the value p.
  Histogram h;
  for (int v = 100; v >= 1; --v) h.Record(v);  // Reverse order: must sort.
  EXPECT_DOUBLE_EQ(h.Percentile(50.0), 50.0);
  EXPECT_DOUBLE_EQ(h.Percentile(90.0), 90.0);
  EXPECT_DOUBLE_EQ(h.Percentile(99.0), 99.0);
  EXPECT_DOUBLE_EQ(h.Percentile(100.0), 100.0);
  EXPECT_DOUBLE_EQ(h.Percentile(1.0), 1.0);
  EXPECT_DOUBLE_EQ(h.Percentile(0.0), 1.0);
  // Out-of-range p is clamped.
  EXPECT_DOUBLE_EQ(h.Percentile(-5.0), 1.0);
  EXPECT_DOUBLE_EQ(h.Percentile(400.0), 100.0);
}

TEST(HistogramTest, PercentilesOnSmallSample) {
  Histogram h;
  for (const double v : {40.0, 10.0, 30.0, 20.0}) h.Record(v);
  // rank = ceil(p/100 * 4): p50 -> rank 2 -> 20; p75 -> rank 3 -> 30;
  // p25 -> rank 1 -> 10; p51 -> rank 3 -> 30.
  EXPECT_DOUBLE_EQ(h.Percentile(25.0), 10.0);
  EXPECT_DOUBLE_EQ(h.Percentile(50.0), 20.0);
  EXPECT_DOUBLE_EQ(h.Percentile(51.0), 30.0);
  EXPECT_DOUBLE_EQ(h.Percentile(75.0), 30.0);
  EXPECT_DOUBLE_EQ(h.Percentile(76.0), 40.0);
}

TEST(HistogramTest, EmptyHistogramIsAllZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  EXPECT_DOUBLE_EQ(h.Percentile(50.0), 0.0);
}

TEST(HistogramTest, MergeFoldsCountsSumsAndSamples) {
  Histogram a, b;
  a.Record(1.0);
  a.Record(2.0);
  b.Record(10.0);
  a.Merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.sum(), 13.0);
  EXPECT_DOUBLE_EQ(a.min(), 1.0);
  EXPECT_DOUBLE_EQ(a.max(), 10.0);
  EXPECT_DOUBLE_EQ(a.Percentile(100.0), 10.0);
  // Merging an empty histogram is a no-op.
  Histogram empty;
  a.Merge(empty);
  EXPECT_EQ(a.count(), 3u);
}

TEST(HistogramTest, RetainsEverySampleUpToTheCap) {
  Histogram h;
  for (size_t i = 0; i < Histogram::kMaxRetainedSamples; ++i) {
    h.Record(static_cast<double>(i));
  }
  EXPECT_EQ(h.samples().size(), Histogram::kMaxRetainedSamples);
  EXPECT_EQ(h.count(), Histogram::kMaxRetainedSamples);
  // Exact below the cap: the maximum retained value is the maximum recorded.
  EXPECT_DOUBLE_EQ(h.Percentile(100.0),
                   static_cast<double>(Histogram::kMaxRetainedSamples - 1));
}

TEST(HistogramTest, ReservoirCapsRetentionButKeepsAggregatesExact) {
  Histogram h;
  const size_t n = Histogram::kMaxRetainedSamples + 50000;
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    h.Record(static_cast<double>(i));
    sum += static_cast<double>(i);
  }
  EXPECT_EQ(h.samples().size(), Histogram::kMaxRetainedSamples);
  EXPECT_EQ(h.count(), n);
  EXPECT_DOUBLE_EQ(h.sum(), sum);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), static_cast<double>(n - 1));
  // The reservoir stays a plausible uniform sample: the median estimate of a
  // uniform ramp lands near the true median (a 10% band is ~60 sigma wide for
  // a 2^16 reservoir — failure means the reservoir is biased, not unlucky).
  const double p50 = h.Percentile(50.0);
  EXPECT_GT(p50, 0.40 * static_cast<double>(n));
  EXPECT_LT(p50, 0.60 * static_cast<double>(n));
}

TEST(HistogramTest, ReservoirIsDeterministic) {
  // Same record sequence => identical retained samples (fixed-seed RNG).
  Histogram a, b;
  const size_t n = Histogram::kMaxRetainedSamples + 10000;
  for (size_t i = 0; i < n; ++i) {
    a.Record(static_cast<double>(i % 997));
    b.Record(static_cast<double>(i % 997));
  }
  EXPECT_EQ(a.samples(), b.samples());
  // Reset rewinds the RNG too: a replay matches.
  a.Reset();
  for (size_t i = 0; i < n; ++i) a.Record(static_cast<double>(i % 997));
  EXPECT_EQ(a.samples(), b.samples());
}

TEST(HistogramTest, MergePastCapKeepsCountExact) {
  Histogram dst, src;
  const size_t n = Histogram::kMaxRetainedSamples / 2 + 100;
  for (size_t i = 0; i < n; ++i) {
    dst.Record(1.0);
    src.Record(2.0);
  }
  dst.Merge(src);
  dst.Merge(src);  // Crosses the cap: 3n > kMaxRetainedSamples.
  EXPECT_EQ(dst.count(), 3 * n);
  EXPECT_DOUBLE_EQ(dst.sum(), static_cast<double>(n) * 5.0);
  EXPECT_EQ(dst.samples().size(), Histogram::kMaxRetainedSamples);
}

TEST(MetricsRegistryTest, TypedValueViews) {
  MetricsRegistry r;
  r.counter("c")->Add(3);
  r.gauge("g")->Set(1.5);
  Histogram* h = r.histogram("h");
  h->Record(2.0);
  h->Record(4.0);
  const auto counters = r.CounterValues();
  ASSERT_EQ(counters.size(), 1u);
  EXPECT_EQ(counters[0].first, "c");
  EXPECT_EQ(counters[0].second, 3u);
  const auto gauges = r.GaugeValues();
  ASSERT_EQ(gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(gauges[0].second, 1.5);
  const auto hists = r.HistogramValues();
  ASSERT_EQ(hists.size(), 1u);
  EXPECT_EQ(hists[0].first, "h");
  EXPECT_EQ(hists[0].second.count, 2u);
  EXPECT_DOUBLE_EQ(hists[0].second.sum, 6.0);
  EXPECT_DOUBLE_EQ(hists[0].second.p50, 2.0);
  EXPECT_DOUBLE_EQ(hists[0].second.p99, 4.0);
  EXPECT_EQ(r.MetricCount(), 3u);
}

TEST(MetricsRegistryTest, HandlesAreStable) {
  MetricsRegistry r;
  Counter* c1 = r.counter("x");
  Counter* c2 = r.counter("x");
  EXPECT_EQ(c1, c2);
  EXPECT_NE(r.counter("y"), c1);
  EXPECT_EQ(r.gauge("g"), r.gauge("g"));
  EXPECT_EQ(r.histogram("h"), r.histogram("h"));
}

TEST(MetricsRegistryTest, SnapshotExpandsHistogramsSorted) {
  MetricsRegistry r;
  r.counter("b.count")->Add(7);
  r.gauge("a.gauge")->Set(2.5);
  Histogram* h = r.histogram("c.hist");
  h->Record(1.0);
  h->Record(3.0);
  const auto snap = r.Snapshot();
  ASSERT_EQ(snap.size(), 9u);  // 1 counter + 1 gauge + 7 histogram facets.
  for (size_t i = 1; i < snap.size(); ++i) {
    EXPECT_LT(snap[i - 1].first, snap[i].first);
  }
  std::map<std::string, double> m(snap.begin(), snap.end());
  EXPECT_DOUBLE_EQ(m.at("b.count"), 7.0);
  EXPECT_DOUBLE_EQ(m.at("a.gauge"), 2.5);
  EXPECT_DOUBLE_EQ(m.at("c.hist.count"), 2.0);
  EXPECT_DOUBLE_EQ(m.at("c.hist.sum"), 4.0);
  EXPECT_DOUBLE_EQ(m.at("c.hist.min"), 1.0);
  EXPECT_DOUBLE_EQ(m.at("c.hist.max"), 3.0);
  EXPECT_DOUBLE_EQ(m.at("c.hist.p50"), 1.0);
  EXPECT_DOUBLE_EQ(m.at("c.hist.p99"), 3.0);
}

TEST(MetricsRegistryTest, ToJsonIsFlatObject) {
  MetricsRegistry r;
  r.counter("runs")->Add(3);
  r.gauge("seconds")->Set(0.25);
  const std::string json = r.ToJson();
  EXPECT_EQ(json, "{\"runs\": 3, \"seconds\": 0.25}");
}

TEST(MetricsRegistryTest, ResetZeroesButKeepsHandles) {
  MetricsRegistry r;
  Counter* c = r.counter("x");
  c->Add(5);
  r.histogram("h")->Record(1.0);
  r.Reset();
  EXPECT_EQ(c->value(), 0u);
  EXPECT_EQ(r.counter("x"), c);
  EXPECT_EQ(r.histogram("h")->count(), 0u);
}

TEST(MetricsRegistryTest, MergeIntoPrefixesAndAccumulates) {
  MetricsRegistry local, global;
  local.counter("iterations")->Add(4);
  local.gauge("total_seconds")->Set(1.25);
  local.histogram("risk_eval_seconds")->Record(0.5);
  local.MergeInto(&global, "cycle.");
  local.MergeInto(&global, "cycle.");  // Two runs accumulate.
  EXPECT_EQ(global.counter("cycle.iterations")->value(), 8u);
  EXPECT_DOUBLE_EQ(global.gauge("cycle.total_seconds")->value(), 1.25);
  EXPECT_EQ(global.histogram("cycle.risk_eval_seconds")->count(), 2u);
  EXPECT_DOUBLE_EQ(global.histogram("cycle.risk_eval_seconds")->sum(), 1.0);
}

}  // namespace
}  // namespace vadasa::obs
