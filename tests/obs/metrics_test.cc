#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

namespace vadasa::obs {
namespace {

TEST(CounterTest, AddsAndResets) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.value(), 42u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge g;
  g.Set(1.5);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);
  g.Add(2.0);
  EXPECT_DOUBLE_EQ(g.value(), 3.5);
  g.Reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(HistogramTest, ExactAggregatesOnKnownInput) {
  Histogram h;
  for (int v = 1; v <= 100; ++v) h.Record(v);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.sum(), 5050.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
}

TEST(HistogramTest, ExactNearestRankPercentiles) {
  // 1..100: nearest-rank percentile p is exactly the value p.
  Histogram h;
  for (int v = 100; v >= 1; --v) h.Record(v);  // Reverse order: must sort.
  EXPECT_DOUBLE_EQ(h.Percentile(50.0), 50.0);
  EXPECT_DOUBLE_EQ(h.Percentile(90.0), 90.0);
  EXPECT_DOUBLE_EQ(h.Percentile(99.0), 99.0);
  EXPECT_DOUBLE_EQ(h.Percentile(100.0), 100.0);
  EXPECT_DOUBLE_EQ(h.Percentile(1.0), 1.0);
  EXPECT_DOUBLE_EQ(h.Percentile(0.0), 1.0);
  // Out-of-range p is clamped.
  EXPECT_DOUBLE_EQ(h.Percentile(-5.0), 1.0);
  EXPECT_DOUBLE_EQ(h.Percentile(400.0), 100.0);
}

TEST(HistogramTest, PercentilesOnSmallSample) {
  Histogram h;
  for (const double v : {40.0, 10.0, 30.0, 20.0}) h.Record(v);
  // rank = ceil(p/100 * 4): p50 -> rank 2 -> 20; p75 -> rank 3 -> 30;
  // p25 -> rank 1 -> 10; p51 -> rank 3 -> 30.
  EXPECT_DOUBLE_EQ(h.Percentile(25.0), 10.0);
  EXPECT_DOUBLE_EQ(h.Percentile(50.0), 20.0);
  EXPECT_DOUBLE_EQ(h.Percentile(51.0), 30.0);
  EXPECT_DOUBLE_EQ(h.Percentile(75.0), 30.0);
  EXPECT_DOUBLE_EQ(h.Percentile(76.0), 40.0);
}

TEST(HistogramTest, EmptyHistogramIsAllZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  EXPECT_DOUBLE_EQ(h.Percentile(50.0), 0.0);
}

TEST(HistogramTest, MergeFoldsCountsSumsAndSamples) {
  Histogram a, b;
  a.Record(1.0);
  a.Record(2.0);
  b.Record(10.0);
  a.Merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.sum(), 13.0);
  EXPECT_DOUBLE_EQ(a.min(), 1.0);
  EXPECT_DOUBLE_EQ(a.max(), 10.0);
  EXPECT_DOUBLE_EQ(a.Percentile(100.0), 10.0);
  // Merging an empty histogram is a no-op.
  Histogram empty;
  a.Merge(empty);
  EXPECT_EQ(a.count(), 3u);
}

TEST(MetricsRegistryTest, HandlesAreStable) {
  MetricsRegistry r;
  Counter* c1 = r.counter("x");
  Counter* c2 = r.counter("x");
  EXPECT_EQ(c1, c2);
  EXPECT_NE(r.counter("y"), c1);
  EXPECT_EQ(r.gauge("g"), r.gauge("g"));
  EXPECT_EQ(r.histogram("h"), r.histogram("h"));
}

TEST(MetricsRegistryTest, SnapshotExpandsHistogramsSorted) {
  MetricsRegistry r;
  r.counter("b.count")->Add(7);
  r.gauge("a.gauge")->Set(2.5);
  Histogram* h = r.histogram("c.hist");
  h->Record(1.0);
  h->Record(3.0);
  const auto snap = r.Snapshot();
  ASSERT_EQ(snap.size(), 9u);  // 1 counter + 1 gauge + 7 histogram facets.
  for (size_t i = 1; i < snap.size(); ++i) {
    EXPECT_LT(snap[i - 1].first, snap[i].first);
  }
  std::map<std::string, double> m(snap.begin(), snap.end());
  EXPECT_DOUBLE_EQ(m.at("b.count"), 7.0);
  EXPECT_DOUBLE_EQ(m.at("a.gauge"), 2.5);
  EXPECT_DOUBLE_EQ(m.at("c.hist.count"), 2.0);
  EXPECT_DOUBLE_EQ(m.at("c.hist.sum"), 4.0);
  EXPECT_DOUBLE_EQ(m.at("c.hist.min"), 1.0);
  EXPECT_DOUBLE_EQ(m.at("c.hist.max"), 3.0);
  EXPECT_DOUBLE_EQ(m.at("c.hist.p50"), 1.0);
  EXPECT_DOUBLE_EQ(m.at("c.hist.p99"), 3.0);
}

TEST(MetricsRegistryTest, ToJsonIsFlatObject) {
  MetricsRegistry r;
  r.counter("runs")->Add(3);
  r.gauge("seconds")->Set(0.25);
  const std::string json = r.ToJson();
  EXPECT_EQ(json, "{\"runs\": 3, \"seconds\": 0.25}");
}

TEST(MetricsRegistryTest, ResetZeroesButKeepsHandles) {
  MetricsRegistry r;
  Counter* c = r.counter("x");
  c->Add(5);
  r.histogram("h")->Record(1.0);
  r.Reset();
  EXPECT_EQ(c->value(), 0u);
  EXPECT_EQ(r.counter("x"), c);
  EXPECT_EQ(r.histogram("h")->count(), 0u);
}

TEST(MetricsRegistryTest, MergeIntoPrefixesAndAccumulates) {
  MetricsRegistry local, global;
  local.counter("iterations")->Add(4);
  local.gauge("total_seconds")->Set(1.25);
  local.histogram("risk_eval_seconds")->Record(0.5);
  local.MergeInto(&global, "cycle.");
  local.MergeInto(&global, "cycle.");  // Two runs accumulate.
  EXPECT_EQ(global.counter("cycle.iterations")->value(), 8u);
  EXPECT_DOUBLE_EQ(global.gauge("cycle.total_seconds")->value(), 1.25);
  EXPECT_EQ(global.histogram("cycle.risk_eval_seconds")->count(), 2u);
  EXPECT_DOUBLE_EQ(global.histogram("cycle.risk_eval_seconds")->sum(), 1.0);
}

}  // namespace
}  // namespace vadasa::obs
