#include "core/infoloss.h"

#include <gtest/gtest.h>

#include "core/anonymize.h"
#include "core/datagen.h"

namespace vadasa::core {
namespace {

TEST(PaperInformationLossTest, Definition) {
  // nulls / (risky × #QI).
  EXPECT_DOUBLE_EQ(PaperInformationLoss(10, 10, 4), 0.25);
  EXPECT_DOUBLE_EQ(PaperInformationLoss(0, 10, 4), 0.0);
  EXPECT_DOUBLE_EQ(PaperInformationLoss(5, 0, 4), 0.0);  // Nothing was risky.
  EXPECT_DOUBLE_EQ(PaperInformationLoss(100, 10, 4), 1.0);  // Clamped.
}

TEST(MeasureInformationLossTest, SuppressionFraction) {
  const MicrodataTable original = Figure5Microdata();
  MicrodataTable anonymized = original;
  anonymized.set_cell(0, 1, Value::Null(1));
  anonymized.set_cell(0, 2, Value::Null(2));
  const InformationLoss loss =
      MeasureInformationLoss(original, anonymized, nullptr);
  // 2 nulls over 7 rows × 4 QI columns.
  EXPECT_NEAR(loss.suppressed_cell_fraction, 2.0 / 28, 1e-12);
  EXPECT_DOUBLE_EQ(loss.generalization_loss, 0.0);
}

TEST(MeasureInformationLossTest, GeneralizationLoss) {
  const MicrodataTable original = Figure5Microdata();
  MicrodataTable anonymized = original;
  Hierarchy h = Hierarchy::ItalianGeography();
  h.SetAttributeType("Area", "City");
  GlobalRecoding recode(&h);
  ASSERT_TRUE(recode.Apply(&anonymized, 5, 1).ok());  // Milano -> North.
  const InformationLoss loss = MeasureInformationLoss(original, anonymized, &h);
  EXPECT_GT(loss.generalization_loss, 0.0);
  EXPECT_LT(loss.generalization_loss, 1.0);
  EXPECT_DOUBLE_EQ(loss.suppressed_cell_fraction, 0.0);
}

TEST(MeasureInformationLossTest, UntouchedTableHasZeroLoss) {
  const MicrodataTable t = Figure5Microdata();
  const InformationLoss loss = MeasureInformationLoss(t, t, nullptr);
  EXPECT_DOUBLE_EQ(loss.suppressed_cell_fraction, 0.0);
  EXPECT_DOUBLE_EQ(loss.generalization_loss, 0.0);
}

TEST(MeasureInformationLossTest, EmptyTable) {
  MicrodataTable t("empty", {{"A", "", AttributeCategory::kQuasiIdentifier}});
  const InformationLoss loss = MeasureInformationLoss(t, t, nullptr);
  EXPECT_DOUBLE_EQ(loss.suppressed_cell_fraction, 0.0);
}

}  // namespace
}  // namespace vadasa::core
