#include "core/metadata.h"

#include <gtest/gtest.h>

#include "core/datagen.h"

namespace vadasa::core {
namespace {

TEST(MetadataTest, IngestTableRegistersEverything) {
  MetadataDictionary dict;
  const MicrodataTable t = Figure1Microdata();
  dict.IngestTable(t, /*include_categories=*/true);
  ASSERT_EQ(dict.microdbs().size(), 1u);
  EXPECT_EQ(dict.microdbs()[0], "I&G");
  EXPECT_EQ(dict.AttributesOf("I&G").size(), 9u);
  auto cat = dict.CategoryOf("I&G", "Area");
  ASSERT_TRUE(cat.ok());
  EXPECT_EQ(*cat, AttributeCategory::kQuasiIdentifier);
  cat = dict.CategoryOf("I&G", "Weight");
  ASSERT_TRUE(cat.ok());
  EXPECT_EQ(*cat, AttributeCategory::kWeight);
}

TEST(MetadataTest, DuplicateRegistrationIdempotent) {
  MetadataDictionary dict;
  const MicrodataTable t = Figure5Microdata();
  dict.IngestTable(t, true);
  dict.IngestTable(t, true);
  EXPECT_EQ(dict.microdbs().size(), 1u);
  EXPECT_EQ(dict.AttributesOf("Fig5").size(), 5u);
}

TEST(MetadataTest, CategoryOfUnknownFails) {
  MetadataDictionary dict;
  EXPECT_EQ(dict.CategoryOf("nope", "attr").status().code(), StatusCode::kNotFound);
}

TEST(MetadataTest, SetCategoryOverwrites) {
  MetadataDictionary dict;
  dict.SetCategory({"db", "a", AttributeCategory::kQuasiIdentifier});
  dict.SetCategory({"db", "a", AttributeCategory::kNonIdentifying});
  EXPECT_EQ(*dict.CategoryOf("db", "a"), AttributeCategory::kNonIdentifying);
  EXPECT_EQ(dict.categories().size(), 1u);
}

TEST(MetadataTest, ApplyCategoriesToTable) {
  MetadataDictionary dict;
  MicrodataTable t = Figure5Microdata();
  dict.IngestTable(t, false);
  dict.SetCategory({"Fig5", "Sector", AttributeCategory::kNonIdentifying});
  dict.SetCategory({"Fig5", "Area", AttributeCategory::kQuasiIdentifier});
  ASSERT_TRUE(dict.ApplyCategories(&t).ok());
  EXPECT_EQ(t.attributes()[t.ColumnIndex("Sector")].category,
            AttributeCategory::kNonIdentifying);
}

TEST(MetadataTest, ApplyCategoriesUnknownAttributeFails) {
  MetadataDictionary dict;
  MicrodataTable t = Figure5Microdata();
  dict.SetCategory({"Fig5", "Ghost", AttributeCategory::kWeight});
  EXPECT_FALSE(dict.ApplyCategories(&t).ok());
}

TEST(MetadataTest, ToTextRendersFigure4Layout) {
  MetadataDictionary dict;
  dict.IngestTable(Figure1Microdata(), true);
  const std::string text = dict.ToText("I&G");
  EXPECT_NE(text.find("Attribute"), std::string::npos);
  EXPECT_NE(text.find("Category"), std::string::npos);
  EXPECT_NE(text.find("Sampling Weight"), std::string::npos);
  EXPECT_NE(text.find("Quasi-identifier"), std::string::npos);
  EXPECT_NE(text.find("Geographic Area"), std::string::npos);
}

}  // namespace
}  // namespace vadasa::core
