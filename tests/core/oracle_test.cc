#include "core/oracle.h"

#include <gtest/gtest.h>

#include <set>

#include "common/csv.h"

namespace vadasa::core {
namespace {

IdentityOracle SmallOracle(uint64_t seed = 42) {
  IdentityOracle::Options options;
  options.population = 500;
  options.num_qi = 3;
  options.seed = seed;
  return IdentityOracle::Generate(options);
}

TEST(IdentityOracleTest, GenerateShape) {
  const IdentityOracle oracle = SmallOracle();
  EXPECT_EQ(oracle.size(), 500u);
  ASSERT_EQ(oracle.qi_columns().size(), 3u);
  // Schema: Id, QIs..., Identity — both bookends are direct identifiers.
  const auto& table = oracle.population();
  EXPECT_EQ(table.num_columns(), 5u);
  EXPECT_EQ(table.attributes()[0].category, AttributeCategory::kIdentifier);
  EXPECT_EQ(table.attributes()[4].category, AttributeCategory::kIdentifier);
  for (const size_t c : oracle.qi_columns()) {
    EXPECT_EQ(table.attributes()[c].category, AttributeCategory::kQuasiIdentifier);
  }
}

TEST(IdentityOracleTest, GenerateIsDeterministic) {
  const IdentityOracle a = SmallOracle(7);
  const IdentityOracle b = SmallOracle(7);
  EXPECT_EQ(WriteCsv(a.population().ToCsv()), WriteCsv(b.population().ToCsv()));
}

TEST(IdentityOracleTest, IdentitiesAreDistinct) {
  const IdentityOracle oracle = SmallOracle();
  std::set<std::string> identities;
  for (size_t r = 0; r < oracle.size(); ++r) {
    identities.insert(oracle.IdentityOf(r));
  }
  EXPECT_EQ(identities.size(), oracle.size());
}

TEST(IdentityOracleTest, SampleRejectsOversizedDraw) {
  const IdentityOracle oracle = SmallOracle();
  EXPECT_FALSE(oracle.SampleMicrodata(oracle.size() + 1, 1).ok());
  EXPECT_TRUE(oracle.SampleMicrodata(oracle.size(), 1).ok());
}

TEST(IdentityOracleTest, SampleDrawsDistinctRespondentsWithTruth) {
  const IdentityOracle oracle = SmallOracle();
  const auto sample = oracle.SampleMicrodata(40, 9);
  ASSERT_TRUE(sample.ok());
  EXPECT_EQ(sample->table.num_rows(), 40u);
  ASSERT_EQ(sample->truth.size(), 40u);
  std::set<size_t> distinct(sample->truth.begin(), sample->truth.end());
  EXPECT_EQ(distinct.size(), 40u) << "respondents must be drawn without replacement";
  // Undistorted: each sample row's QIs equal its truth row's QIs.
  for (size_t i = 0; i < sample->truth.size(); ++i) {
    for (size_t q = 0; q < oracle.qi_columns().size(); ++q) {
      EXPECT_TRUE(sample->table.cell(i, 1 + q).Equals(
          oracle.population().cell(sample->truth[i], oracle.qi_columns()[q])))
          << "sample row " << i << " qi " << q;
    }
  }
}

TEST(IdentityOracleTest, SampleWeightIsPopulationFrequency) {
  const IdentityOracle oracle = SmallOracle();
  const auto sample = oracle.SampleMicrodata(25, 3);
  ASSERT_TRUE(sample.ok());
  const auto weight_cols =
      sample->table.ColumnsWithCategory(AttributeCategory::kWeight);
  ASSERT_EQ(weight_cols.size(), 1u);
  for (size_t i = 0; i < sample->table.num_rows(); ++i) {
    // Recount the population rows sharing this respondent's QI combination.
    std::vector<Value> pattern;
    for (size_t q = 0; q < oracle.qi_columns().size(); ++q) {
      pattern.push_back(
          oracle.population().cell(sample->truth[i], oracle.qi_columns()[q]));
    }
    const size_t frequency = oracle.Block(pattern).size();
    EXPECT_EQ(sample->table.cell(i, weight_cols[0]).as_int(),
              static_cast<int64_t>(frequency))
        << "W_t must be the population frequency of the QI combination (row "
        << i << ")";
  }
}

TEST(IdentityOracleTest, DistortionPerturbsSomeCells) {
  const IdentityOracle oracle = SmallOracle();
  const auto clean = oracle.SampleMicrodata(100, 5, 0.0);
  const auto noisy = oracle.SampleMicrodata(100, 5, 0.5);
  ASSERT_TRUE(clean.ok());
  ASSERT_TRUE(noisy.ok());
  size_t mismatched = 0;
  for (size_t i = 0; i < 100; ++i) {
    for (size_t q = 0; q < oracle.qi_columns().size(); ++q) {
      const Value truth =
          oracle.population().cell(noisy->truth[i], oracle.qi_columns()[q]);
      if (!noisy->table.cell(i, 1 + q).Equals(truth)) ++mismatched;
    }
  }
  EXPECT_GT(mismatched, 0u) << "distortion 0.5 must perturb some QI cells";
}

TEST(IdentityOracleTest, BlockMatchesExactAndWildcard) {
  const IdentityOracle oracle = SmallOracle();
  // Exact pattern of row 0 must contain row 0.
  std::vector<Value> pattern;
  for (const size_t c : oracle.qi_columns()) {
    pattern.push_back(oracle.population().cell(0, c));
  }
  const auto exact = oracle.Block(pattern);
  EXPECT_NE(std::find(exact.begin(), exact.end(), 0u), exact.end());
  // Every matched row really carries the pattern's values.
  for (const size_t r : exact) {
    for (size_t i = 0; i < pattern.size(); ++i) {
      EXPECT_TRUE(
          oracle.population().cell(r, oracle.qi_columns()[i]).Equals(pattern[i]));
    }
  }
  // All-null pattern is the degenerate block: it matches the whole population.
  std::vector<Value> wildcard(oracle.qi_columns().size(), Value::Null(1));
  EXPECT_EQ(oracle.Block(wildcard).size(), oracle.size());
  // Widening one cell to null can only grow the block.
  std::vector<Value> widened = pattern;
  widened[0] = Value::Null(2);
  EXPECT_GE(oracle.Block(widened).size(), exact.size());
}

}  // namespace
}  // namespace vadasa::core
