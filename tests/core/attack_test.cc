#include "core/attack.h"

#include <gtest/gtest.h>

#include "core/anonymize.h"
#include "core/cycle.h"
#include "core/risk.h"

namespace vadasa::core {
namespace {

IdentityOracle SmallOracle() {
  IdentityOracle::Options options;
  options.population = 4000;
  options.num_qi = 4;
  options.distribution = DistributionKind::kUnbalanced;
  options.seed = 21;
  return IdentityOracle::Generate(options);
}

TEST(OracleTest, PopulationShape) {
  const IdentityOracle oracle = SmallOracle();
  EXPECT_EQ(oracle.size(), 4000u);
  // Id + 4 QIs + Identity.
  EXPECT_EQ(oracle.population().num_columns(), 6u);
  EXPECT_EQ(oracle.qi_columns().size(), 4u);
  EXPECT_EQ(oracle.IdentityOf(0), "entity-0");
}

TEST(OracleTest, SampleCarriesPopulationWeights) {
  const IdentityOracle oracle = SmallOracle();
  auto sample = oracle.SampleMicrodata(300, 5);
  ASSERT_TRUE(sample.ok());
  EXPECT_EQ(sample->table.num_rows(), 300u);
  EXPECT_EQ(sample->truth.size(), 300u);
  ASSERT_TRUE(sample->table.Validate().ok());
  // Weight of a sampled tuple = oracle block size of its own QIs.
  for (size_t r = 0; r < 20; ++r) {
    std::vector<Value> pattern;
    for (const size_t c : sample->table.QuasiIdentifierColumns()) {
      pattern.push_back(sample->table.cell(r, c));
    }
    EXPECT_DOUBLE_EQ(sample->table.RowWeight(r),
                     static_cast<double>(oracle.Block(pattern).size()));
  }
}

TEST(OracleTest, SampleTooLargeFails) {
  const IdentityOracle oracle = SmallOracle();
  EXPECT_FALSE(oracle.SampleMicrodata(999999, 1).ok());
}

TEST(OracleTest, BlockWildcards) {
  const IdentityOracle oracle = SmallOracle();
  std::vector<Value> all_null(4, Value::Null(0));
  EXPECT_EQ(oracle.Block(all_null).size(), oracle.size());
}

TEST(OracleTest, DistortionWeakensExactBlocking) {
  const IdentityOracle oracle = SmallOracle();
  auto clean = oracle.SampleMicrodata(300, 5, 0.0);
  auto noisy = oracle.SampleMicrodata(300, 5, 0.25);
  ASSERT_TRUE(clean.ok());
  ASSERT_TRUE(noisy.ok());
  // Distorted cells break exact cross-links: fewer correct re-identifications
  // for the same attacker.
  const AttackResult a = RunLinkageAttack(
      clean->table, clean->table.QuasiIdentifierColumns(), oracle, clean->truth, 1);
  const AttackResult b = RunLinkageAttack(
      noisy->table, noisy->table.QuasiIdentifierColumns(), oracle, noisy->truth, 1);
  EXPECT_LE(b.reidentified, a.reidentified);
  // And some cells actually differ from the oracle truth.
  size_t distorted = 0;
  const auto qis = noisy->table.QuasiIdentifierColumns();
  for (size_t r = 0; r < noisy->table.num_rows(); ++r) {
    for (size_t i = 0; i < qis.size(); ++i) {
      if (!noisy->table.cell(r, qis[i])
               .Equals(oracle.population().cell(noisy->truth[r],
                                                oracle.qi_columns()[i]))) {
        ++distorted;
      }
    }
  }
  EXPECT_GT(distorted, 100u);  // ≈ 300×4×0.25 minus same-value draws.
}

TEST(AttackTest, RawReleaseIsAttackable) {
  const IdentityOracle oracle = SmallOracle();
  auto sample = oracle.SampleMicrodata(400, 9);
  ASSERT_TRUE(sample.ok());
  const AttackResult raw =
      RunLinkageAttack(sample->table, sample->table.QuasiIdentifierColumns(), oracle,
                       sample->truth, 1);
  EXPECT_EQ(raw.attempted, 400u);
  EXPECT_GT(raw.reidentified, 0u);
  EXPECT_GT(raw.exact_blocks, 0u);
  EXPECT_GT(raw.success_rate, 0.0);
}

TEST(AttackTest, AnonymizationDegradesTheAttack) {
  // The paper's point (Fig. 2 discussion): suppression blows up the blocking
  // cohorts and drops re-identification.
  const IdentityOracle oracle = SmallOracle();
  auto sample = oracle.SampleMicrodata(400, 9);
  ASSERT_TRUE(sample.ok());
  const AttackResult before =
      RunLinkageAttack(sample->table, sample->table.QuasiIdentifierColumns(), oracle,
                       sample->truth, 1);
  MicrodataTable anonymized = sample->table;
  KAnonymityRisk risk;
  LocalSuppression anon;
  CycleOptions options;
  options.risk.k = 2;
  AnonymizationCycle cycle(&risk, &anon, options);
  auto stats = cycle.Run(&anonymized);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  const AttackResult after =
      RunLinkageAttack(anonymized, anonymized.QuasiIdentifierColumns(), oracle,
                       sample->truth, 1);
  EXPECT_LE(after.exact_blocks, before.exact_blocks);
  EXPECT_GE(after.avg_block_size, before.avg_block_size);
  EXPECT_LE(after.reidentified, before.reidentified);
}

/// A release with QI-only schema matching SmallOracle's 4 quasi-identifiers.
MicrodataTable EmptyRelease() {
  std::vector<Attribute> attrs;
  for (int i = 0; i < 4; ++i) {
    attrs.push_back({"Q" + std::to_string(i), "", AttributeCategory::kQuasiIdentifier});
  }
  return MicrodataTable("release", std::move(attrs));
}

TEST(AttackDegenerateTest, EmptyRelease) {
  const IdentityOracle oracle = SmallOracle();
  const MicrodataTable released = EmptyRelease();
  const AttackResult result =
      RunLinkageAttack(released, released.QuasiIdentifierColumns(), oracle, {}, 1);
  EXPECT_EQ(result.attempted, 0u);
  EXPECT_EQ(result.reidentified, 0u);
  EXPECT_EQ(result.exact_blocks, 0u);
  // No attempts must not divide by zero: both ratios stay at a clean 0.
  EXPECT_DOUBLE_EQ(result.avg_block_size, 0.0);
  EXPECT_DOUBLE_EQ(result.success_rate, 0.0);
}

TEST(AttackDegenerateTest, SingleTuple) {
  const IdentityOracle oracle = SmallOracle();
  const auto sample = oracle.SampleMicrodata(1, 3);
  ASSERT_TRUE(sample.ok());
  const AttackResult result = RunLinkageAttack(
      sample->table, sample->table.QuasiIdentifierColumns(), oracle, sample->truth, 1);
  EXPECT_EQ(result.attempted, 1u);
  EXPECT_LE(result.reidentified, 1u);
  EXPECT_GE(result.avg_block_size, 1.0);
  EXPECT_GE(result.success_rate, 0.0);
  EXPECT_LE(result.success_rate, 1.0);
}

TEST(AttackDegenerateTest, AllSuppressedReleaseBlocksNobody) {
  const IdentityOracle oracle = SmallOracle();
  const auto sample = oracle.SampleMicrodata(30, 3);
  ASSERT_TRUE(sample.ok());
  MicrodataTable released = sample->table;
  uint64_t label = 0;
  for (size_t r = 0; r < released.num_rows(); ++r) {
    for (const size_t c : released.QuasiIdentifierColumns()) {
      released.set_cell(r, c, Value::Null(++label));
    }
  }
  const AttackResult result = RunLinkageAttack(
      released, released.QuasiIdentifierColumns(), oracle, sample->truth, 1);
  // Every blocking pattern is all-wildcards: the cohort is the whole
  // population, so no block is exact and the attack degrades to a blind
  // guess among 4000 candidates.
  EXPECT_EQ(result.attempted, 30u);
  EXPECT_EQ(result.exact_blocks, 0u);
  EXPECT_DOUBLE_EQ(result.avg_block_size, static_cast<double>(oracle.size()));
  EXPECT_LE(result.success_rate, 1.0 / 100);
}

TEST(AttackTest, ResultToString) {
  AttackResult r;
  r.attempted = 10;
  r.reidentified = 2;
  r.success_rate = 0.2;
  const std::string text = r.ToString();
  EXPECT_NE(text.find("attempted=10"), std::string::npos);
  EXPECT_NE(text.find("success_rate=0.2"), std::string::npos);
}

}  // namespace
}  // namespace vadasa::core
