#include "core/programs.h"

#include <gtest/gtest.h>

#include "core/vadalog_bridge.h"
#include "vadalog/analysis.h"
#include "vadalog/engine.h"
#include "vadalog/parser.h"

namespace vadasa::core {
namespace {

TEST(ProgramsTest, LibraryIsComplete) {
  const auto& library = AlgorithmLibrary();
  EXPECT_GE(library.size(), 7u);
  for (const AlgorithmProgram& p : library) {
    EXPECT_FALSE(p.name.empty());
    EXPECT_FALSE(p.description.empty());
    EXPECT_FALSE(p.source.empty());
  }
  EXPECT_TRUE(FindAlgorithmProgram("algorithm6-suda").ok());
  EXPECT_FALSE(FindAlgorithmProgram("algorithm42").ok());
}

TEST(ProgramsTest, EveryProgramParsesAndPassesSafety) {
  for (const AlgorithmProgram& p : AlgorithmLibrary()) {
    auto program = vadalog::Parse(p.source);
    ASSERT_TRUE(program.ok()) << p.name << ": " << program.status().ToString();
    EXPECT_TRUE(vadalog::CheckSafety(*program).ok()) << p.name;
    EXPECT_TRUE(vadalog::Stratify(*program).ok()) << p.name;
  }
}

TEST(ProgramsTest, KAnonymityProgramRuns) {
  auto p = FindAlgorithmProgram("algorithm4-kanonymity");
  ASSERT_TRUE(p.ok());
  vadalog::Engine engine;
  vadalog::Database db;
  // Two tuples with the same VSet, one unique.
  const Value shared = Value::Set({Value::List({Value::String("Area"), Value::String("N")})});
  const Value lone = Value::Set({Value::List({Value::String("Area"), Value::String("S")})});
  db.AddFact("tuple", {Value::Int(0), shared});
  db.AddFact("tuple", {Value::Int(1), shared});
  db.AddFact("tuple", {Value::Int(2), lone});
  auto stats = vadalog::RunSource(p->source, &db, &engine);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  const auto finals = vadalog::FinalAggregateRows(db, "riskoutput", 1, false);
  ASSERT_EQ(finals.size(), 3u);
  for (const auto& row : finals) {
    const double expected = row[0].as_int() == 2 ? 1.0 : 0.0;
    EXPECT_DOUBLE_EQ(row[1].as_double(), expected) << row[0].ToString();
  }
}

TEST(ProgramsTest, ControlProgramRuns) {
  auto p = FindAlgorithmProgram("section44-company-control");
  ASSERT_TRUE(p.ok());
  vadalog::Engine engine;
  vadalog::Database db;
  db.AddFact("own", {Value::String("x"), Value::String("y"), Value::Double(0.9)});
  auto stats = vadalog::RunSource(p->source, &db, &engine);
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(db.Contains("rel", {Value::String("x"), Value::String("y")}));
}

TEST(ProgramsTest, CategorizationProgramMatchesBridge) {
  auto p = FindAlgorithmProgram("algorithm1-categorization");
  ASSERT_TRUE(p.ok());
  // The bridge ships the same rules.
  EXPECT_NE(p->source.find("expbase"), std::string::npos);
  EXPECT_NE(VadalogBridge::CategorizationProgram().find("expbase"), std::string::npos);
  vadalog::Engine engine;
  VadalogBridge bridge;
  bridge.RegisterExternals(&engine, nullptr);
  vadalog::Database db;
  db.AddFact("att", {Value::String("db"), Value::String("area")});
  db.AddFact("expbase",
             {Value::String("area"), Value::String("Quasi-identifier")});
  auto stats = vadalog::RunSource(p->source, &db, &engine);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_TRUE(db.Contains("cat", {Value::String("db"), Value::String("area"),
                                  Value::String("Quasi-identifier")}));
}

}  // namespace
}  // namespace vadasa::core
