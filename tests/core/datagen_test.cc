#include "core/datagen.h"

#include <gtest/gtest.h>

#include <set>

#include "core/group_index.h"
#include "core/risk.h"

namespace vadasa::core {
namespace {

TEST(Figure6CorpusTest, TwelveDatasetsMatchThePaperTable) {
  const auto corpus = Figure6Corpus();
  ASSERT_EQ(corpus.size(), 12u);
  auto spec = FindDataset("R25A4W");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->num_tuples, 25000u);
  EXPECT_EQ(spec->num_qi, 4);
  EXPECT_EQ(spec->distribution, DistributionKind::kRealWorld);
  spec = FindDataset("R100A4U");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->num_tuples, 100000u);
  spec = FindDataset("R50A9W");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->num_qi, 9);
  EXPECT_FALSE(FindDataset("R1A1X").ok());
}

TEST(GeneratorTest, ShapeAndSchema) {
  const MicrodataTable t =
      GenerateInflationGrowth("g", 1000, 5, DistributionKind::kRealWorld, 1);
  EXPECT_EQ(t.num_rows(), 1000u);
  // Id + 5 QIs + Growth + Weight.
  EXPECT_EQ(t.num_columns(), 8u);
  EXPECT_EQ(t.QuasiIdentifierColumns().size(), 5u);
  EXPECT_EQ(t.WeightColumn(), 7);
  ASSERT_TRUE(t.Validate().ok());
}

TEST(GeneratorTest, DeterministicPerSeed) {
  const MicrodataTable a =
      GenerateInflationGrowth("g", 200, 4, DistributionKind::kUnbalanced, 7);
  const MicrodataTable b =
      GenerateInflationGrowth("g", 200, 4, DistributionKind::kUnbalanced, 7);
  for (size_t r = 0; r < a.num_rows(); ++r) {
    for (size_t c = 0; c < a.num_columns(); ++c) {
      ASSERT_TRUE(a.cell(r, c).Equals(b.cell(r, c))) << r << "," << c;
    }
  }
  const MicrodataTable c =
      GenerateInflationGrowth("g", 200, 4, DistributionKind::kUnbalanced, 8);
  bool any_diff = false;
  for (size_t r = 0; r < a.num_rows() && !any_diff; ++r) {
    any_diff = !a.cell(r, 1).Equals(c.cell(r, 1));
  }
  EXPECT_TRUE(any_diff);
}

TEST(GeneratorTest, WeightsArePositive) {
  const MicrodataTable t =
      GenerateInflationGrowth("g", 500, 4, DistributionKind::kVeryUnbalanced, 3);
  for (size_t r = 0; r < t.num_rows(); ++r) {
    EXPECT_GE(t.RowWeight(r), 1.0);
  }
}

TEST(GeneratorTest, WeightsTrackCombinationFrequency) {
  // Tuples in frequent combinations must carry larger sampling weights on
  // average (the W_t estimator of Section 2.1).
  const MicrodataTable t =
      GenerateInflationGrowth("g", 5000, 4, DistributionKind::kRealWorld, 5);
  const GroupStats stats =
      ComputeGroupStats(t, t.QuasiIdentifierColumns(), NullSemantics::kMaybeMatch);
  double w_frequent = 0.0;
  size_t n_frequent = 0;
  double w_rare = 0.0;
  size_t n_rare = 0;
  for (size_t r = 0; r < t.num_rows(); ++r) {
    if (stats.frequency[r] >= 50) {
      w_frequent += t.RowWeight(r);
      ++n_frequent;
    } else if (stats.frequency[r] <= 2) {
      w_rare += t.RowWeight(r);
      ++n_rare;
    }
  }
  ASSERT_GT(n_frequent, 0u);
  ASSERT_GT(n_rare, 0u);
  EXPECT_GT(w_frequent / n_frequent, w_rare / n_rare);
}

TEST(GeneratorTest, UnbalanceOrdering) {
  // More unbalanced distributions produce more risky (sample-unique-ish)
  // tuples — the property Fig. 7a/7b rely on.
  KAnonymityRisk risk;
  RiskContext ctx;
  ctx.k = 2;
  std::vector<size_t> risky_counts;
  for (const DistributionKind dist :
       {DistributionKind::kRealWorld, DistributionKind::kUnbalanced,
        DistributionKind::kVeryUnbalanced}) {
    const MicrodataTable t = GenerateInflationGrowth("g", 25000, 4, dist, 42);
    auto risks = risk.ComputeRisks(t, ctx);
    ASSERT_TRUE(risks.ok());
    size_t risky = 0;
    for (const double r : *risks) risky += r > 0.5;
    risky_counts.push_back(risky);
  }
  EXPECT_LT(risky_counts[0], risky_counts[1]);
  EXPECT_LT(risky_counts[1], risky_counts[2]);
  EXPECT_GT(risky_counts[0], 0u);   // W still has a few risky tuples...
  EXPECT_LT(risky_counts[0], 80u);  // ...but not many (paper: < 50 nulls at k=5).
}

TEST(GeneratorTest, QiCountRespected) {
  for (const int q : {4, 6, 9}) {
    const MicrodataTable t =
        GenerateInflationGrowth("g", 100, q, DistributionKind::kRealWorld, 1);
    EXPECT_EQ(t.QuasiIdentifierColumns().size(), static_cast<size_t>(q));
    // Attribute names unique.
    std::set<std::string> names;
    for (const Attribute& a : t.attributes()) names.insert(a.name);
    EXPECT_EQ(names.size(), t.num_columns());
  }
}

TEST(GeneratorTest, DatasetFromSpecIsStable) {
  auto spec = FindDataset("R6A4U");
  ASSERT_TRUE(spec.ok());
  const MicrodataTable a = GenerateDataset(*spec);
  const MicrodataTable b = GenerateDataset(*spec);
  EXPECT_EQ(a.num_rows(), 6000u);
  ASSERT_EQ(a.num_rows(), b.num_rows());
  for (size_t c = 0; c < a.num_columns(); ++c) {
    ASSERT_TRUE(a.cell(0, c).Equals(b.cell(0, c)));
  }
}

TEST(DistributionKindTest, Names) {
  EXPECT_EQ(DistributionKindToString(DistributionKind::kRealWorld), "W");
  EXPECT_EQ(DistributionKindToString(DistributionKind::kUnbalanced), "U");
  EXPECT_EQ(DistributionKindToString(DistributionKind::kVeryUnbalanced), "V");
}

}  // namespace
}  // namespace vadasa::core
