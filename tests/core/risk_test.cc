#include "core/risk.h"

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "core/datagen.h"

namespace vadasa::core {
namespace {

TEST(ReidentificationRiskTest, Figure1PaperValues) {
  const MicrodataTable t = Figure1Microdata();
  ReidentificationRisk risk;
  RiskContext ctx;
  auto risks = risk.ComputeRisks(t, ctx);
  ASSERT_TRUE(risks.ok());
  // Section 2.2: highest risk is tuple 15 (1/30 ≈ 0.033), lowest tuple 7
  // (1/300 ≈ 0.0033); tuple 4 is 1/60 ≈ 0.016.
  double max_risk = 0.0;
  size_t max_row = 0;
  double min_risk = 1.0;
  size_t min_row = 0;
  for (size_t r = 0; r < risks->size(); ++r) {
    if ((*risks)[r] > max_risk) {
      max_risk = (*risks)[r];
      max_row = r;
    }
    if ((*risks)[r] < min_risk) {
      min_risk = (*risks)[r];
      min_row = r;
    }
  }
  EXPECT_EQ(max_row, 14u);  // Tuple 15.
  EXPECT_NEAR(max_risk, 1.0 / 30, 1e-9);
  EXPECT_EQ(min_row, 6u);  // Tuple 7.
  EXPECT_NEAR(min_risk, 1.0 / 300, 1e-9);
  EXPECT_NEAR((*risks)[3], 1.0 / 60, 1e-9);  // Tuple 4.
}

TEST(ReidentificationRiskTest, SubsetOfQuasiIdentifiers) {
  // Restricting the AnonSet (the attacker's knowledge) pools weights and
  // lowers the risk.
  const MicrodataTable t = Figure1Microdata();
  ReidentificationRisk risk;
  RiskContext all;
  RiskContext restricted;
  restricted.qi_columns = {1, 2};  // Area, Sector only.
  const auto risks_all = risk.ComputeRisks(t, all);
  const auto risks_sub = risk.ComputeRisks(t, restricted);
  ASSERT_TRUE(risks_all.ok());
  ASSERT_TRUE(risks_sub.ok());
  for (size_t r = 0; r < t.num_rows(); ++r) {
    EXPECT_LE((*risks_sub)[r], (*risks_all)[r] + 1e-12) << "row " << r;
  }
}

TEST(KAnonymityRiskTest, Figure5SampleUniques) {
  const MicrodataTable t = Figure5Microdata();
  KAnonymityRisk risk;
  RiskContext ctx;
  ctx.k = 2;
  auto risks = risk.ComputeRisks(t, ctx);
  ASSERT_TRUE(risks.ok());
  // Frequencies are 1,2,2,2,2,1,1: rows 0, 5, 6 are risky.
  const std::vector<double> expected = {1, 0, 0, 0, 0, 1, 1};
  for (size_t r = 0; r < expected.size(); ++r) {
    EXPECT_DOUBLE_EQ((*risks)[r], expected[r]) << "row " << r;
  }
}

TEST(KAnonymityRiskTest, HigherKIsStricter) {
  const MicrodataTable t = Figure5Microdata();
  KAnonymityRisk risk;
  RiskContext k2;
  k2.k = 2;
  RiskContext k3;
  k3.k = 3;
  const auto r2 = risk.ComputeRisks(t, k2);
  const auto r3 = risk.ComputeRisks(t, k3);
  ASSERT_TRUE(r2.ok());
  ASSERT_TRUE(r3.ok());
  size_t risky2 = 0;
  size_t risky3 = 0;
  for (size_t r = 0; r < t.num_rows(); ++r) {
    risky2 += (*r2)[r] > 0.5;
    risky3 += (*r3)[r] > 0.5;
    EXPECT_GE((*r3)[r], (*r2)[r]);  // Monotone in k.
  }
  EXPECT_GT(risky3, risky2);  // Frequency-2 groups become risky at k=3.
}

TEST(KAnonymityRiskTest, SuppressionReducesRiskUnderMaybeMatch) {
  MicrodataTable t = Figure5Microdata();
  KAnonymityRisk risk;
  RiskContext ctx;
  ctx.k = 2;
  t.set_cell(0, 2, Value::Null(1));  // Suppress Sector of the sample unique.
  auto risks = risk.ComputeRisks(t, ctx);
  ASSERT_TRUE(risks.ok());
  EXPECT_DOUBLE_EQ((*risks)[0], 0.0);
  // ... but not under the standard semantics.
  ctx.semantics = NullSemantics::kStandard;
  risks = risk.ComputeRisks(t, ctx);
  ASSERT_TRUE(risks.ok());
  EXPECT_DOUBLE_EQ((*risks)[0], 1.0);
}

TEST(IndividualRiskTest, ClosedFormIsFrequencyOverWeight) {
  const MicrodataTable t = Figure1Microdata();
  IndividualRisk risk;
  RiskContext ctx;
  auto risks = risk.ComputeRisks(t, ctx);
  ASSERT_TRUE(risks.ok());
  // Unique combinations: ρ = f/ΣW = 1/W.
  EXPECT_NEAR((*risks)[14], 1.0 / 30, 1e-9);
  EXPECT_NEAR((*risks)[6], 1.0 / 300, 1e-9);
}

TEST(IndividualRiskTest, SampledModeIsDeterministicAndBounded) {
  const MicrodataTable t = Figure1Microdata();
  IndividualRisk risk;
  RiskContext ctx;
  ctx.posterior_draws = 200;
  ctx.seed = 5;
  const auto a = risk.ComputeRisks(t, ctx);
  const auto b = risk.ComputeRisks(t, ctx);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (size_t r = 0; r < t.num_rows(); ++r) {
    EXPECT_DOUBLE_EQ((*a)[r], (*b)[r]);
    EXPECT_GE((*a)[r], 0.0);
    EXPECT_LE((*a)[r], 1.0);
  }
}

TEST(IndividualRiskTest, PooledCombinationsAreSafer) {
  // Two rows with the same combination and weights 10+10: ρ = 2/20 = 0.1;
  // a unique row with weight 20: ρ = 1/20 = 0.05.
  MicrodataTable t("ind", {{"A", "", AttributeCategory::kQuasiIdentifier},
                           {"W", "", AttributeCategory::kWeight}});
  ASSERT_TRUE(t.AddRow({Value::String("x"), Value::Int(10)}).ok());
  ASSERT_TRUE(t.AddRow({Value::String("x"), Value::Int(10)}).ok());
  ASSERT_TRUE(t.AddRow({Value::String("y"), Value::Int(20)}).ok());
  IndividualRisk risk;
  RiskContext ctx;
  auto risks = risk.ComputeRisks(t, ctx);
  ASSERT_TRUE(risks.ok());
  EXPECT_NEAR((*risks)[0], 0.1, 1e-9);
  EXPECT_NEAR((*risks)[2], 0.05, 1e-9);
}

TEST(RiskFactoryTest, KnownNames) {
  for (const char* name : {"reidentification", "k-anonymity", "individual", "suda"}) {
    auto m = MakeRiskMeasure(name);
    ASSERT_TRUE(m.ok()) << name;
    EXPECT_FALSE((*m)->name().empty());
  }
  EXPECT_FALSE(MakeRiskMeasure("quantum").ok());
}

TEST(RiskExplainTest, MentionsCombination) {
  const MicrodataTable t = Figure5Microdata();
  KAnonymityRisk risk;
  RiskContext ctx;
  ctx.k = 2;
  const std::string text = risk.Explain(t, ctx, 0, 1.0);
  EXPECT_NE(text.find("Roma"), std::string::npos);
  EXPECT_NE(text.find("Textiles"), std::string::npos);
  EXPECT_NE(text.find("risky"), std::string::npos);
}

/// Property sweep: on generated data, every measure returns risks in [0,1]
/// and all-weight-1 tables make re-identification and individual risk agree.
class RiskPropertyTest : public ::testing::TestWithParam<const char*> {};

TEST_P(RiskPropertyTest, RisksAreProbabilities) {
  const MicrodataTable t =
      GenerateInflationGrowth("prop", 500, 4, DistributionKind::kUnbalanced, 3);
  auto measure = MakeRiskMeasure(GetParam());
  ASSERT_TRUE(measure.ok());
  RiskContext ctx;
  ctx.k = 3;
  auto risks = (*measure)->ComputeRisks(t, ctx);
  ASSERT_TRUE(risks.ok());
  ASSERT_EQ(risks->size(), t.num_rows());
  for (const double r : *risks) {
    EXPECT_GE(r, 0.0);
    EXPECT_LE(r, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(AllMeasures, RiskPropertyTest,
                         ::testing::Values("reidentification", "k-anonymity",
                                           "individual", "suda"));

/// The tentpole determinism contract: for every measure, the risk vector
/// computed on a multi-thread pool is bit-identical to the single-thread one
/// (fixed shard decomposition + ordered merge, see thread_pool.h).
class RiskDeterminismTest : public ::testing::TestWithParam<const char*> {};

TEST_P(RiskDeterminismTest, ParallelEqualsSequentialBitwise) {
  const MicrodataTable t =
      GenerateInflationGrowth("det", 700, 5, DistributionKind::kUnbalanced, 11);
  auto measure = MakeRiskMeasure(GetParam());
  ASSERT_TRUE(measure.ok());
  RiskContext ctx;
  ctx.k = 3;
  ctx.posterior_draws = 50;  // Exercise the sampled individual-risk path too.
  ctx.seed = 99;

  const size_t before = ThreadPool::SetGlobalThreads(1);
  const auto sequential = (*measure)->ComputeRisks(t, ctx);
  ThreadPool::SetGlobalThreads(4);
  const auto parallel = (*measure)->ComputeRisks(t, ctx);
  ThreadPool::SetGlobalThreads(before == 0 ? 1 : before);

  ASSERT_TRUE(sequential.ok());
  ASSERT_TRUE(parallel.ok());
  ASSERT_EQ(sequential->size(), parallel->size());
  for (size_t r = 0; r < sequential->size(); ++r) {
    // EXPECT_EQ, not NEAR: the contract is bitwise equality.
    EXPECT_EQ((*sequential)[r], (*parallel)[r]) << "row " << r;
  }
}

INSTANTIATE_TEST_SUITE_P(AllMeasures, RiskDeterminismTest,
                         ::testing::Values("reidentification", "k-anonymity",
                                           "individual", "suda"));

/// Satellite (b): a cache-backed Explain must produce the same text as the
/// cache-free path, and reuse the iteration's group stats.
TEST(RiskExplainTest, CachedExplainMatchesUncached) {
  const MicrodataTable t = Figure5Microdata();
  KAnonymityRisk risk;
  RiskContext ctx;
  ctx.k = 2;
  RiskEvalCache cache;
  ASSERT_TRUE(risk.ComputeRisks(t, ctx, &cache).ok());
  EXPECT_EQ(cache.full_builds(), 1u);
  for (size_t r = 0; r < t.num_rows(); ++r) {
    EXPECT_EQ(risk.Explain(t, ctx, r, 1.0, &cache), risk.Explain(t, ctx, r, 1.0));
  }
  // Explaining every row reused the one index instead of regrouping.
  EXPECT_EQ(cache.full_builds(), 1u);
}

TEST(RiskWidthGuardTest, MaybeMatchRejectsWideProjections) {
  std::vector<Attribute> attrs;
  for (size_t c = 0; c < 40; ++c) {
    attrs.push_back({"q" + std::to_string(c), "", AttributeCategory::kQuasiIdentifier});
  }
  MicrodataTable t("wide", attrs);
  std::vector<Value> row;
  for (size_t c = 0; c < 40; ++c) row.push_back(Value::Int(static_cast<int>(c)));
  ASSERT_TRUE(t.AddRow(std::move(row)).ok());
  KAnonymityRisk risk;
  RiskContext ctx;
  EXPECT_FALSE(risk.ComputeRisks(t, ctx).ok());
  ctx.semantics = NullSemantics::kStandard;
  EXPECT_TRUE(risk.ComputeRisks(t, ctx).ok());
}

}  // namespace
}  // namespace vadasa::core
