#include "core/utility.h"

#include <gtest/gtest.h>

#include "core/anonymize.h"
#include "core/cycle.h"
#include "core/datagen.h"
#include "core/risk.h"

namespace vadasa::core {
namespace {

TEST(UtilityTest, IdenticalTablesAreLossless) {
  const MicrodataTable t = Figure1Microdata();
  auto report = MeasureUtility(t, t);
  ASSERT_TRUE(report.ok());
  EXPECT_DOUBLE_EQ(report->max_total_variation, 0.0);
  EXPECT_DOUBLE_EQ(report->weighted_mean_ratio, 1.0);
  EXPECT_DOUBLE_EQ(report->disturbed_pairs_fraction, 0.0);
  EXPECT_EQ(report->marginals.size(), t.QuasiIdentifierColumns().size());
}

TEST(UtilityTest, ShapeMismatchFails) {
  const MicrodataTable a = Figure1Microdata();
  const MicrodataTable b = Figure5Microdata();
  EXPECT_FALSE(MeasureUtility(a, b).ok());
}

TEST(UtilityTest, SuppressionRaisesSuppressedFraction) {
  const MicrodataTable original = Figure5Microdata();
  MicrodataTable anonymized = original;
  anonymized.set_cell(0, 1, Value::Null(1));
  anonymized.set_cell(1, 1, Value::Null(2));
  auto report = MeasureUtility(original, anonymized);
  ASSERT_TRUE(report.ok());
  // Area column: 2 of 7 cells suppressed.
  EXPECT_NEAR(report->marginals[0].suppressed_fraction, 2.0 / 7, 1e-12);
  EXPECT_DOUBLE_EQ(report->marginals[1].suppressed_fraction, 0.0);
}

TEST(UtilityTest, ColumnTotalVariationDetectsShift) {
  MicrodataTable a("a", {{"X", "", AttributeCategory::kQuasiIdentifier}});
  MicrodataTable b("b", {{"X", "", AttributeCategory::kQuasiIdentifier}});
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(a.AddRow({Value::String(i < 2 ? "p" : "q")}).ok());
    ASSERT_TRUE(b.AddRow({Value::String("p")}).ok());
  }
  // a: 50/50; b: 100/0 -> TV = 0.5.
  EXPECT_DOUBLE_EQ(ColumnTotalVariation(a, b, 0), 0.5);
  EXPECT_DOUBLE_EQ(ColumnTotalVariation(a, a, 0), 0.0);
}

TEST(UtilityTest, NullsExcludedAndRenormalized) {
  MicrodataTable a("a", {{"X", "", AttributeCategory::kQuasiIdentifier}});
  MicrodataTable b("b", {{"X", "", AttributeCategory::kQuasiIdentifier}});
  for (int i = 0; i < 4; ++i) {
    const char* v = i < 2 ? "p" : "q";
    ASSERT_TRUE(a.AddRow({Value::String(v)}).ok());
    ASSERT_TRUE(b.AddRow({Value::String(v)}).ok());
  }
  // Suppress one p and one q: remaining marginal is still 50/50.
  b.set_cell(0, 0, Value::Null(1));
  b.set_cell(2, 0, Value::Null(2));
  EXPECT_DOUBLE_EQ(ColumnTotalVariation(a, b, 0), 0.0);
}

TEST(UtilityTest, CycleOnRealisticDataPreservesStatistics) {
  // The paper's statistics-preservation claim, measured: after anonymizing
  // R25A4U-like data at k=2, QI marginals barely move and the weighted mean
  // of the non-identifying attribute is untouched.
  const MicrodataTable original =
      GenerateInflationGrowth("util", 5000, 4, DistributionKind::kUnbalanced, 23);
  MicrodataTable anonymized = original;
  KAnonymityRisk risk;
  LocalSuppression anon;
  CycleOptions options;
  options.risk.k = 2;
  AnonymizationCycle cycle(&risk, &anon, options);
  ASSERT_TRUE(cycle.Run(&anonymized).ok());
  auto report = MeasureUtility(original, anonymized);
  ASSERT_TRUE(report.ok());
  EXPECT_LT(report->max_total_variation, 0.05);
  EXPECT_DOUBLE_EQ(report->weighted_mean_ratio, 1.0);  // Growth never touched.
  EXPECT_LT(report->disturbed_pairs_fraction, 0.2);
}

TEST(UtilityTest, RecordSuppressionWildcardDominatesAtK2) {
  // A fully wiped record maybe-matches *everything*, so under k=2 a single
  // record suppression lifts every other risky tuple's frequency past the
  // threshold: the cycle converges after wiping exactly one row (#QI nulls).
  // An instructive degenerate case of the =⊥ semantics — and the reason the
  // paper's minimal cell-wise methods are the default, since that one row is
  // statistically destroyed while cell-wise suppression spreads tiny nicks.
  const MicrodataTable original =
      GenerateInflationGrowth("util2", 3000, 4, DistributionKind::kVeryUnbalanced, 29);
  MicrodataTable t = original;
  KAnonymityRisk risk;
  RecordSuppression rowwise;
  CycleOptions options;
  options.risk.k = 2;
  AnonymizationCycle cycle(&risk, &rowwise, options);
  auto stats = cycle.Run(&t);
  ASSERT_TRUE(stats.ok());
  EXPECT_GT(stats->initial_risky, 1u);
  EXPECT_EQ(stats->nulls_injected, 4u);  // One row, all four QIs.
  EXPECT_EQ(stats->anonymization_steps, 1u);
  // The wiped row is statistically dead: every QI marginal lost one record.
  auto report = MeasureUtility(original, t);
  ASSERT_TRUE(report.ok());
  for (const auto& m : report->marginals) {
    EXPECT_NEAR(m.suppressed_fraction, 1.0 / 3000, 1e-9);
  }
}

TEST(UtilityTest, ReportToStringMentionsAttributes) {
  const MicrodataTable t = Figure5Microdata();
  auto report = MeasureUtility(t, t);
  ASSERT_TRUE(report.ok());
  const std::string text = report->ToString();
  EXPECT_NE(text.find("Area"), std::string::npos);
  EXPECT_NE(text.find("utility"), std::string::npos);
}

}  // namespace
}  // namespace vadasa::core
