#include "core/delta.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/datagen.h"
#include "core/group_index.h"
#include "core/microdata.h"

namespace vadasa::core {
namespace {

MicrodataTable DeltaTable() {
  MicrodataTable t("delta-test",
                   {{"Q1", "", AttributeCategory::kQuasiIdentifier},
                    {"Q2", "", AttributeCategory::kQuasiIdentifier},
                    {"W", "", AttributeCategory::kWeight}});
  EXPECT_TRUE(t.AddRow({Value::String("a"), Value::Int(1), Value::Double(2.0)}).ok());
  EXPECT_TRUE(t.AddRow({Value::String("b"), Value::Int(1), Value::Double(3.0)}).ok());
  EXPECT_TRUE(t.AddRow({Value::String("a"), Value::Int(2), Value::Double(1.5)}).ok());
  EXPECT_TRUE(t.AddRow({Value::String("b"), Value::Int(2), Value::Double(0.5)}).ok());
  return t;
}

TEST(DeltaBatchBuilderTest, BuildsValidatedBatches) {
  DeltaBatchBuilder builder(3);
  builder.Append({Value::String("c"), Value::Int(3), Value::Double(1.0)})
      .Update(1, {Value::String("a"), Value::Int(1), Value::Double(3.0)})
      .Delete(2);
  auto batch = builder.Build();
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  EXPECT_EQ(batch->size(), 3u);
  EXPECT_EQ(batch->num_columns(), 3u);
  EXPECT_FALSE(batch->empty());
  EXPECT_EQ(batch->ops()[0].kind, DeltaOpKind::kAppend);
  EXPECT_EQ(batch->ops()[1].kind, DeltaOpKind::kUpdate);
  EXPECT_EQ(batch->ops()[2].kind, DeltaOpKind::kDelete);
}

TEST(DeltaBatchBuilderTest, WidthMismatchPoisonsTheBuilder) {
  DeltaBatchBuilder builder(3);
  builder.Append({Value::String("c"), Value::Int(3)});  // Two cells, not three.
  builder.Append({Value::String("d"), Value::Int(4), Value::Double(1.0)});
  const auto batch = builder.Build();
  ASSERT_FALSE(batch.ok());
  EXPECT_EQ(batch.status().code(), StatusCode::kInvalidArgument);
}

TEST(DeltaBatchBuilderTest, UpdateWidthMismatchReportsTheRow) {
  DeltaBatchBuilder builder(2);
  builder.Update(7, {Value::Int(1)});
  const auto batch = builder.Build();
  ASSERT_FALSE(batch.ok());
  EXPECT_NE(batch.status().message().find("7"), std::string::npos);
}

TEST(ApplyDeltaToTableTest, AppendUpdateDeleteSemantics) {
  const MicrodataTable t = DeltaTable();
  DeltaBatchBuilder builder(3);
  builder.Update(0, {Value::String("z"), Value::Int(9), Value::Double(2.0)})
      .Update(0, {Value::String("y"), Value::Int(8), Value::Double(2.5)})
      .Delete(2)
      .Delete(2)
      .Append({Value::String("c"), Value::Int(3), Value::Double(1.0)});
  auto batch = builder.Build();
  ASSERT_TRUE(batch.ok());

  DeltaRowPlan plan;
  auto next = ApplyDeltaToTable(t, *batch, &plan);
  ASSERT_TRUE(next.ok()) << next.status().ToString();
  ASSERT_EQ(next->num_rows(), 4u);
  // Last update wins; survivors keep their relative order; append lands last.
  EXPECT_TRUE(next->cell(0, 0).Equals(Value::String("y")));
  EXPECT_TRUE(next->cell(1, 0).Equals(Value::String("b")));
  EXPECT_TRUE(next->cell(2, 0).Equals(Value::String("b")));
  EXPECT_TRUE(next->cell(3, 0).Equals(Value::String("c")));
  // Duplicate deletes collapse; the plan reports new-space updated rows.
  EXPECT_EQ(plan.deleted_old_rows, (std::vector<uint32_t>{2}));
  EXPECT_EQ(plan.updated_new_rows, (std::vector<uint32_t>{0}));
  EXPECT_EQ(plan.appended_rows, 1u);
  // The parent table is untouched.
  EXPECT_TRUE(t.cell(0, 0).Equals(Value::String("a")));
  EXPECT_EQ(t.num_rows(), 4u);
}

TEST(ApplyDeltaToTableTest, DeletingAnUpdatedRowDiscardsTheUpdate) {
  const MicrodataTable t = DeltaTable();
  DeltaBatchBuilder builder(3);
  builder.Update(1, {Value::String("q"), Value::Int(7), Value::Double(1.0)}).Delete(1);
  auto batch = builder.Build();
  ASSERT_TRUE(batch.ok());
  DeltaRowPlan plan;
  auto next = ApplyDeltaToTable(t, *batch, &plan);
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(next->num_rows(), 3u);
  EXPECT_TRUE(plan.updated_new_rows.empty());
  for (size_t r = 0; r < next->num_rows(); ++r) {
    EXPECT_FALSE(next->cell(r, 0).Equals(Value::String("q")));
  }
}

TEST(ApplyDeltaToTableTest, RejectsBadBatchesBeforeMutating) {
  const MicrodataTable t = DeltaTable();
  {
    DeltaBatchBuilder builder(2);  // Wrong arity for the table.
    builder.Delete(0);
    auto batch = builder.Build();
    ASSERT_TRUE(batch.ok());
    EXPECT_EQ(ApplyDeltaToTable(t, *batch).status().code(),
              StatusCode::kInvalidArgument);
  }
  {
    DeltaBatchBuilder builder(3);
    builder.Delete(99);  // Out of range.
    auto batch = builder.Build();
    ASSERT_TRUE(batch.ok());
    EXPECT_EQ(ApplyDeltaToTable(t, *batch).status().code(),
              StatusCode::kInvalidArgument);
  }
  {
    DeltaBatchBuilder builder(3);
    builder.Append({Value::String("c"), Value::Int(3), Value::String("heavy")});
    auto batch = builder.Build();
    ASSERT_TRUE(batch.ok());
    EXPECT_EQ(ApplyDeltaToTable(t, *batch).status().code(), StatusCode::kTypeError);
  }
}

/// GroupIndex::ApplyDelta must be bit-identical to a cold rebuild of the
/// post-delta table — the unit-sized version of the
/// delta-vs-full-recompute-bit-identical property, on both planes.
void CheckIndexDeltaMatchesColdRebuild(DataPlane plane_under_test) {
  const DataPlane previous = SetDataPlane(plane_under_test);
  MicrodataTable t = Figure5Microdata();
  const auto qis = t.QuasiIdentifierColumns();
  GroupIndex base(t, qis, NullSemantics::kMaybeMatch);
  (void)base.Stats();  // Warm the projection-index memo pre-delta.

  DeltaBatchBuilder builder(t.num_columns());
  std::vector<Value> moved = t.row(1);
  moved[qis[0]] = Value::Null(41);
  builder.Update(1, std::move(moved));
  builder.Delete(3);
  builder.Append(t.row(0));
  std::vector<Value> fresh = t.row(2);
  fresh[qis[1]] = Value::String("brand-new");
  builder.Append(std::move(fresh));
  auto batch = builder.Build();
  ASSERT_TRUE(batch.ok());

  DeltaRowPlan plan;
  auto next = ApplyDeltaToTable(t, *batch, &plan);
  ASSERT_TRUE(next.ok()) << next.status().ToString();

  const std::unique_ptr<GroupIndex> patched = base.ApplyDelta(*next, plan);
  GroupIndex cold(*next, qis, NullSemantics::kMaybeMatch);
  EXPECT_EQ(patched->num_rows(), cold.num_rows());
  EXPECT_EQ(patched->Stats().frequency, cold.Stats().frequency);
  EXPECT_EQ(patched->Stats().weight_sum, cold.Stats().weight_sum);
  EXPECT_EQ(patched->data_plane(), plane_under_test);
  EXPECT_EQ(patched->incremental_updates(), base.incremental_updates() + 1);

  // The base index still answers pre-delta queries — old snapshots stay valid.
  EXPECT_EQ(base.num_rows(), t.num_rows());
  GroupIndex pre(t, qis, NullSemantics::kMaybeMatch);
  EXPECT_EQ(base.Stats().frequency, pre.Stats().frequency);
  EXPECT_EQ(base.Stats().weight_sum, pre.Stats().weight_sum);
  SetDataPlane(previous);
}

TEST(GroupIndexDeltaTest, ColumnarPlaneMatchesColdRebuild) {
  CheckIndexDeltaMatchesColdRebuild(DataPlane::kColumnar);
}

TEST(GroupIndexDeltaTest, RowPlaneMatchesColdRebuild) {
  CheckIndexDeltaMatchesColdRebuild(DataPlane::kRow);
}

TEST(GroupIndexDeltaTest, ChainedDeltasStayIdenticalUnderStandardNulls) {
  const DataPlane previous = SetDataPlane(DataPlane::kColumnar);
  MicrodataTable t = DeltaTable();
  const auto qis = t.QuasiIdentifierColumns();
  std::unique_ptr<GroupIndex> index =
      std::make_unique<GroupIndex>(t, qis, NullSemantics::kStandard);

  // Tables must outlive the indexes patched over them (ApplyDelta contract),
  // so the chain keeps every generation alive.
  std::vector<std::unique_ptr<MicrodataTable>> history;
  history.push_back(std::make_unique<MicrodataTable>(t));
  for (int step = 0; step < 3; ++step) {
    const MicrodataTable& current = *history.back();
    DeltaBatchBuilder builder(current.num_columns());
    builder.Append({Value::String("a"), Value::Int(1 + step), Value::Double(1.0)});
    builder.Delete(0);
    auto batch = builder.Build();
    ASSERT_TRUE(batch.ok());
    DeltaRowPlan plan;
    auto next = ApplyDeltaToTable(current, *batch, &plan);
    ASSERT_TRUE(next.ok());
    history.push_back(std::make_unique<MicrodataTable>(std::move(*next)));
    index = index->ApplyDelta(*history.back(), plan);
    GroupIndex cold(*history.back(), qis, NullSemantics::kStandard);
    EXPECT_EQ(index->Stats().frequency, cold.Stats().frequency) << "step " << step;
    EXPECT_EQ(index->Stats().weight_sum, cold.Stats().weight_sum) << "step " << step;
  }
  SetDataPlane(previous);
}

}  // namespace
}  // namespace vadasa::core
