#include "core/columnar.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/dictionary.h"
#include "core/datagen.h"
#include "core/group_index.h"
#include "core/microdata.h"

namespace vadasa::core {
namespace {

MicrodataTable SmallTable() {
  MicrodataTable t("columnar-test",
                   {{"Q1", "", AttributeCategory::kQuasiIdentifier},
                    {"Q2", "", AttributeCategory::kQuasiIdentifier},
                    {"W", "", AttributeCategory::kWeight}});
  EXPECT_TRUE(t.AddRow({Value::String("a"), Value::Int(1), Value::Double(2.0)}).ok());
  EXPECT_TRUE(t.AddRow({Value::String("b"), Value::Int(1), Value::Double(3.0)}).ok());
  EXPECT_TRUE(t.AddRow({Value::String("a"), Value::Int(2), Value::Double(1.5)}).ok());
  return t;
}

TEST(ColumnarViewTest, MaterializesOnDemandAndEncodesEqualCellsEqually) {
  const MicrodataTable t = SmallTable();
  const ColumnarView view(t);
  EXPECT_EQ(view.num_rows(), 3u);
  EXPECT_EQ(view.num_columns(), 3u);
  const size_t empty_bytes = view.codes_bytes();  // Weights only, no codes.

  view.EnsureColumns(t, {0, 1});
  const std::vector<uint32_t>& q1 = view.Codes(0);
  ASSERT_EQ(q1.size(), 3u);
  EXPECT_EQ(q1[0], q1[2]) << "both rows hold \"a\"";
  EXPECT_NE(q1[0], q1[1]);
  EXPECT_TRUE(view.Decode(0, q1[1]).Equals(Value::String("b")));
  EXPECT_GE(view.codes_bytes(), empty_bytes + 2u * 3u * sizeof(uint32_t));
  EXPECT_EQ(view.dict_entries(), 2u + 2u) << "two distinct values per column";

  const std::vector<double>& w = view.Weights();
  ASSERT_EQ(w.size(), 3u);
  EXPECT_DOUBLE_EQ(w[1], 3.0);
}

TEST(ColumnarViewTest, UpdateRowsRewritesCodesInPlaceOnSuppression) {
  MicrodataTable t = SmallTable();
  ColumnarView view(t);
  view.EnsureColumns(t, {0, 1});
  const uint32_t before = view.Codes(0)[0];
  EXPECT_FALSE(IsNullCode(before));

  // Suppress Q1 of row 0 with a fresh labelled null, as the cycle does.
  t.set_cell(0, 0, Value::Null(9));
  view.UpdateRows(t, {0});

  EXPECT_TRUE(IsNullCode(view.Codes(0)[0]))
      << "the suppressed cell's code moved into the null band";
  EXPECT_EQ(view.Codes(0)[2], before)
      << "untouched rows keep their codes (in-place update, no rebuild)";
  EXPECT_EQ(view.Codes(1)[0], view.Codes(1)[1])
      << "columns not named by the mutation are refreshed, not corrupted";
}

TEST(ColumnarViewTest, UpdateRowsRewritesCodesInPlaceOnRecoding) {
  MicrodataTable t = SmallTable();
  ColumnarView view(t);
  view.EnsureColumns(t, {0});

  // Recode row 1's "b" to the existing "a": its code must land on the code
  // rows 0/2 already carry, merging the group.
  t.set_cell(1, 0, Value::String("a"));
  view.UpdateRows(t, {1});
  EXPECT_EQ(view.Codes(0)[1], view.Codes(0)[0]);

  // Recode to a brand-new domain value: a fresh code is interned.
  t.set_cell(2, 0, Value::String("coarse-band"));
  view.UpdateRows(t, {2});
  EXPECT_NE(view.Codes(0)[2], view.Codes(0)[0]);
  EXPECT_TRUE(view.Decode(0, view.Codes(0)[2]).Equals(Value::String("coarse-band")));
}

TEST(ColumnarViewTest, DistinctNullLabelsStayDistinctUnderEncoding) {
  MicrodataTable t = SmallTable();
  t.set_cell(0, 0, Value::Null(1));
  t.set_cell(1, 0, Value::Null(2));
  t.set_cell(2, 0, Value::Null(1));
  const ColumnarView view(t);
  view.EnsureColumns(t, {0});
  const std::vector<uint32_t>& codes = view.Codes(0);
  EXPECT_TRUE(IsNullCode(codes[0]));
  EXPECT_TRUE(IsNullCode(codes[1]));
  EXPECT_NE(codes[0], codes[1]) << "⊥_1 and ⊥_2 must not collapse";
  EXPECT_EQ(codes[0], codes[2]) << "equal labels share a code";
}

TEST(ColumnarViewTest, CodeForQueryInternsAbsentPatternValues) {
  const MicrodataTable t = SmallTable();
  const ColumnarView view(t);
  view.EnsureColumns(t, {0});
  const uint32_t absent = view.CodeForQuery(0, Value::String("never-in-table"));
  const uint32_t again = view.CodeForQuery(0, Value::String("never-in-table"));
  EXPECT_EQ(absent, again);
  for (const uint32_t code : view.Codes(0)) EXPECT_NE(code, absent);
}

TEST(ColumnarViewTest, UpdateThenAppendInterleavingViaDeltaClone) {
  MicrodataTable t = SmallTable();
  ColumnarView parent(t);
  parent.EnsureColumns(t, {0, 1});
  const uint32_t code_a = parent.Codes(0)[0];
  const uint32_t code_b = parent.Codes(0)[1];

  // Delta: update row 1 ("b" -> "a"), append two rows, one reusing "b" and
  // one introducing a new value — the update-then-append interleaving.
  MicrodataTable next = t;
  next.set_cell(1, 0, Value::String("a"));
  ASSERT_TRUE(
      next.AddRow({Value::String("b"), Value::Int(9), Value::Double(1.0)}).ok());
  ASSERT_TRUE(
      next.AddRow({Value::String("zig"), Value::Int(1), Value::Double(1.0)}).ok());
  const ColumnarView child(parent, next, /*deleted_old_rows=*/{},
                           /*changed_new_rows=*/{1, 3, 4});

  ASSERT_EQ(child.num_rows(), 5u);
  EXPECT_EQ(child.Codes(0)[0], code_a) << "untouched rows keep inherited codes";
  EXPECT_EQ(child.Codes(0)[1], code_a) << "updated cell re-interns to the shared code";
  EXPECT_EQ(child.Codes(0)[3], code_b) << "appended cell reuses the inherited dictionary";
  EXPECT_TRUE(child.Decode(0, child.Codes(0)[4]).Equals(Value::String("zig")));
  EXPECT_DOUBLE_EQ(child.Weights()[3], 1.0);
  EXPECT_DOUBLE_EQ(child.Weights()[0], 2.0);

  // The parent is untouched: old snapshots keep serving pre-delta codes.
  EXPECT_EQ(parent.num_rows(), 3u);
  EXPECT_EQ(parent.Codes(0)[1], code_b);
}

TEST(ColumnarViewTest, DeltaCloneCompactsDeletesAndReInternsLabelledNulls) {
  MicrodataTable t = SmallTable();
  t.set_cell(2, 0, Value::Null(5));
  ColumnarView parent(t);
  parent.EnsureColumns(t, {0});
  const uint32_t null5 = parent.Codes(0)[2];
  ASSERT_TRUE(IsNullCode(null5));

  // Delete row 1 and append a row carrying the same labelled null plus a row
  // with a fresh label: equal labels must collapse onto the inherited code,
  // distinct labels must not.
  MicrodataTable next("columnar-test", t.attributes());
  ASSERT_TRUE(next.AddRow(t.row(0)).ok());
  ASSERT_TRUE(next.AddRow(t.row(2)).ok());
  ASSERT_TRUE(next.AddRow({Value::Null(5), Value::Int(3), Value::Double(1.0)}).ok());
  ASSERT_TRUE(next.AddRow({Value::Null(6), Value::Int(3), Value::Double(1.0)}).ok());
  const ColumnarView child(parent, next, /*deleted_old_rows=*/{1},
                           /*changed_new_rows=*/{2, 3});

  ASSERT_EQ(child.num_rows(), 4u);
  EXPECT_EQ(child.Codes(0)[1], null5) << "survivors compact down preserving codes";
  EXPECT_EQ(child.Codes(0)[2], null5) << "⊥_5 re-interns onto the inherited code";
  EXPECT_TRUE(IsNullCode(child.Codes(0)[3]));
  EXPECT_NE(child.Codes(0)[3], null5) << "⊥_6 stays distinct from ⊥_5";
  EXPECT_DOUBLE_EQ(child.Weights()[1], 1.5);
}

TEST(ColumnarViewTest, DeltaCloneLeavesUnmaterializedColumnsUnmaterialized) {
  MicrodataTable t = SmallTable();
  ColumnarView parent(t);
  parent.EnsureColumns(t, {0});  // Column 1 never materialized.
  const size_t parent_bytes = parent.codes_bytes();
  MicrodataTable next = t;
  next.set_cell(0, 0, Value::String("b"));
  const ColumnarView child(parent, next, {}, {0});
  EXPECT_EQ(child.codes_bytes(), parent_bytes)
      << "only column 0's codes (and weights) were cloned";
  // Materializing column 1 afterwards still works against the new table.
  child.EnsureColumns(next, {1});
  EXPECT_EQ(child.Codes(1).size(), 3u);
}

/// End-to-end: stats computed through a shared view equal the row plane's,
/// before and after an incremental update — the unit-sized version of the
/// columnar-vs-row-bit-identical property.
TEST(ColumnarViewTest, GroupStatsMatchRowPlaneAcrossSuppression) {
  MicrodataTable t = Figure5Microdata();
  const auto qis = t.QuasiIdentifierColumns();

  const DataPlane previous = SetDataPlane(DataPlane::kColumnar);
  GroupIndex index(t, qis, NullSemantics::kMaybeMatch);
  EXPECT_EQ(index.data_plane(), DataPlane::kColumnar);

  SetDataPlane(DataPlane::kRow);
  GroupIndex reference(t, qis, NullSemantics::kMaybeMatch);
  EXPECT_EQ(reference.data_plane(), DataPlane::kRow);

  EXPECT_EQ(index.Stats().frequency, reference.Stats().frequency);
  EXPECT_EQ(index.Stats().weight_sum, reference.Stats().weight_sum);

  t.set_cell(0, 2, Value::Null(1));  // Fig. 5b: suppress Sector of tuple 1.
  index.UpdateRows(t, {0});
  reference.UpdateRows(t, {0});
  EXPECT_EQ(index.Stats().frequency, reference.Stats().frequency);
  EXPECT_EQ(index.Stats().weight_sum, reference.Stats().weight_sum);
  SetDataPlane(previous);
}

}  // namespace
}  // namespace vadasa::core
