#include "core/diversity.h"

#include <gtest/gtest.h>

#include "core/anonymize.h"
#include "core/cycle.h"
#include "core/datagen.h"

namespace vadasa::core {
namespace {

/// Hospital-style toy: QI = (Zip, Age band), sensitive = Disease.
MicrodataTable Hospital() {
  MicrodataTable t("hospital",
                   {{"Zip", "", AttributeCategory::kQuasiIdentifier},
                    {"Age", "", AttributeCategory::kQuasiIdentifier},
                    {"Disease", "", AttributeCategory::kNonIdentifying}});
  const struct {
    const char* zip;
    const char* age;
    const char* disease;
  } kRows[] = {
      // Group A: homogeneous — everyone has flu.
      {"476**", "20-29", "flu"},
      {"476**", "20-29", "flu"},
      {"476**", "20-29", "flu"},
      // Group B: diverse.
      {"479**", "40-49", "flu"},
      {"479**", "40-49", "cancer"},
      {"479**", "40-49", "ulcer"},
      // Group C: two values.
      {"476**", "50-59", "cancer"},
      {"476**", "50-59", "flu"},
  };
  for (const auto& r : kRows) {
    (void)t.AddRow({Value::String(r.zip), Value::String(r.age),
                    Value::String(r.disease)});
  }
  return t;
}

TEST(SensitiveStatsTest, CountsDistinctValuesPerGroup) {
  const MicrodataTable t = Hospital();
  auto stats = ComputeSensitiveStats(t, t.QuasiIdentifierColumns(), 2,
                                     NullSemantics::kMaybeMatch);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->distinct_values[0], 1u);  // Group A.
  EXPECT_EQ(stats->distinct_values[3], 3u);  // Group B.
  EXPECT_EQ(stats->distinct_values[6], 2u);  // Group C.
}

TEST(SensitiveStatsTest, RejectsSensitiveQuasiIdentifier) {
  const MicrodataTable t = Hospital();
  EXPECT_FALSE(
      ComputeSensitiveStats(t, t.QuasiIdentifierColumns(), 0,
                            NullSemantics::kMaybeMatch)
          .ok());
  EXPECT_FALSE(ComputeSensitiveStats(t, t.QuasiIdentifierColumns(), 99,
                                     NullSemantics::kMaybeMatch)
                   .ok());
}

TEST(SensitiveStatsTest, SuppressionMergesGroups) {
  MicrodataTable t = Hospital();
  // Suppress row 0's Age: under maybe-match it now sees groups A and C
  // (both Zip 476**): flu + cancer = 2 distinct values.
  t.set_cell(0, 1, Value::Null(1));
  auto stats = ComputeSensitiveStats(t, t.QuasiIdentifierColumns(), 2,
                                     NullSemantics::kMaybeMatch);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->distinct_values[0], 2u);
  // Under standard semantics the suppressed row is alone.
  stats = ComputeSensitiveStats(t, t.QuasiIdentifierColumns(), 2,
                                NullSemantics::kStandard);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->distinct_values[0], 1u);
}

TEST(LDiversityTest, FlagsHomogeneousGroups) {
  const MicrodataTable t = Hospital();
  LDiversityRisk risk("Disease", 2);
  RiskContext ctx;
  auto risks = risk.ComputeRisks(t, ctx);
  ASSERT_TRUE(risks.ok());
  // Group A rows risky; groups B and C fine at l=2.
  const std::vector<double> expected = {1, 1, 1, 0, 0, 0, 0, 0};
  for (size_t r = 0; r < expected.size(); ++r) {
    EXPECT_DOUBLE_EQ((*risks)[r], expected[r]) << "row " << r;
  }
  // At l=3 group C becomes risky too.
  LDiversityRisk strict("Disease", 3);
  risks = strict.ComputeRisks(t, ctx);
  ASSERT_TRUE(risks.ok());
  EXPECT_DOUBLE_EQ((*risks)[6], 1.0);
  EXPECT_DOUBLE_EQ((*risks)[3], 0.0);  // Group B carries exactly 3 values: safe.
}

TEST(LDiversityTest, UnknownAttributeFails) {
  const MicrodataTable t = Hospital();
  LDiversityRisk risk("Ghost", 2);
  RiskContext ctx;
  EXPECT_FALSE(risk.ComputeRisks(t, ctx).ok());
}

TEST(LDiversityTest, ExplainNamesTheAttribute) {
  const MicrodataTable t = Hospital();
  LDiversityRisk risk("Disease", 2);
  RiskContext ctx;
  const std::string text = risk.Explain(t, ctx, 0, 1.0);
  EXPECT_NE(text.find("Disease"), std::string::npos);
  EXPECT_NE(text.find("homogeneous"), std::string::npos);
}

TEST(LDiversityTest, CycleEnforcesDiversity) {
  MicrodataTable t = Hospital();
  LDiversityRisk risk("Disease", 2);
  LocalSuppression anon;
  CycleOptions options;
  AnonymizationCycle cycle(&risk, &anon, options);
  auto stats = cycle.Run(&t);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->unresolved, 0u);
  RiskContext ctx;
  auto final_risks = risk.ComputeRisks(t, ctx);
  ASSERT_TRUE(final_risks.ok());
  for (const double r : *final_risks) EXPECT_LE(r, 0.5);
  EXPECT_GT(stats->nulls_injected, 0u);
}

TEST(TClosenessTest, FlagsSkewedGroups) {
  const MicrodataTable t = Hospital();
  // Global: flu 5/8, cancer 2/8, ulcer 1/8. Group A (all flu): TV =
  // (|1-0.625| + 0.25 + 0.125)/2 = 0.375.
  TClosenessRisk loose("Disease", 0.4);
  TClosenessRisk tight("Disease", 0.3);
  RiskContext ctx;
  auto r_loose = loose.ComputeRisks(t, ctx);
  auto r_tight = tight.ComputeRisks(t, ctx);
  ASSERT_TRUE(r_loose.ok());
  ASSERT_TRUE(r_tight.ok());
  EXPECT_DOUBLE_EQ((*r_loose)[0], 0.0);  // 0.375 <= 0.4.
  EXPECT_DOUBLE_EQ((*r_tight)[0], 1.0);  // 0.375 > 0.3.
}

TEST(TClosenessTest, WholeTableGroupIsPerfectlyClose) {
  MicrodataTable t("one", {{"A", "", AttributeCategory::kQuasiIdentifier},
                           {"S", "", AttributeCategory::kNonIdentifying}});
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(t.AddRow({Value::String("same"),
                          Value::String(i % 2 == 0 ? "x" : "y")}).ok());
  }
  TClosenessRisk risk("S", 0.01);
  RiskContext ctx;
  auto risks = risk.ComputeRisks(t, ctx);
  ASSERT_TRUE(risks.ok());
  for (const double r : *risks) EXPECT_DOUBLE_EQ(r, 0.0);
}

}  // namespace
}  // namespace vadasa::core
