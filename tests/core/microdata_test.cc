#include "core/microdata.h"

#include <gtest/gtest.h>

#include "core/datagen.h"

namespace vadasa::core {
namespace {

MicrodataTable TwoColumnTable() {
  MicrodataTable t("demo", {{"Id", "", AttributeCategory::kIdentifier},
                            {"Area", "", AttributeCategory::kQuasiIdentifier},
                            {"Weight", "", AttributeCategory::kWeight}});
  EXPECT_TRUE(t.AddRow({Value::Int(1), Value::String("North"), Value::Int(10)}).ok());
  EXPECT_TRUE(t.AddRow({Value::Int(2), Value::String("South"), Value::Int(20)}).ok());
  return t;
}

TEST(MicrodataTest, CategoryRoundTrip) {
  for (const AttributeCategory c :
       {AttributeCategory::kIdentifier, AttributeCategory::kQuasiIdentifier,
        AttributeCategory::kNonIdentifying, AttributeCategory::kWeight}) {
    auto parsed = AttributeCategoryFromString(AttributeCategoryToString(c));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, c);
  }
  EXPECT_FALSE(AttributeCategoryFromString("Nonsense").ok());
}

TEST(MicrodataTest, AddRowChecksWidth) {
  MicrodataTable t = TwoColumnTable();
  EXPECT_FALSE(t.AddRow({Value::Int(3)}).ok());
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(MicrodataTest, ColumnLookups) {
  const MicrodataTable t = TwoColumnTable();
  EXPECT_EQ(t.ColumnIndex("Area"), 1);
  EXPECT_EQ(t.ColumnIndex("Missing"), -1);
  EXPECT_EQ(t.WeightColumn(), 2);
  EXPECT_EQ(t.QuasiIdentifierColumns(), std::vector<size_t>{1});
  EXPECT_EQ(t.ColumnsWithCategory(AttributeCategory::kIdentifier),
            std::vector<size_t>{0});
}

TEST(MicrodataTest, RowWeightDefaultsToOne) {
  MicrodataTable t("noweight", {{"A", "", AttributeCategory::kQuasiIdentifier}});
  ASSERT_TRUE(t.AddRow({Value::String("x")}).ok());
  EXPECT_DOUBLE_EQ(t.RowWeight(0), 1.0);
  const MicrodataTable w = TwoColumnTable();
  EXPECT_DOUBLE_EQ(w.RowWeight(1), 20.0);
}

TEST(MicrodataTest, SetCategory) {
  MicrodataTable t = TwoColumnTable();
  ASSERT_TRUE(t.SetCategory("Area", AttributeCategory::kNonIdentifying).ok());
  EXPECT_TRUE(t.QuasiIdentifierColumns().empty());
  EXPECT_FALSE(t.SetCategory("Missing", AttributeCategory::kWeight).ok());
}

TEST(MicrodataTest, ValidateRejectsTwoWeights) {
  MicrodataTable t("bad", {{"W1", "", AttributeCategory::kWeight},
                           {"W2", "", AttributeCategory::kWeight}});
  EXPECT_FALSE(t.Validate().ok());
}

TEST(MicrodataTest, ValidateRejectsNonNumericWeight) {
  MicrodataTable t("bad", {{"W", "", AttributeCategory::kWeight}});
  ASSERT_TRUE(t.AddRow({Value::String("heavy")}).ok());
  EXPECT_EQ(t.Validate().code(), StatusCode::kTypeError);
}

TEST(MicrodataTest, CountNullCellsOnlyQuasiIdentifiers) {
  MicrodataTable t = TwoColumnTable();
  t.set_cell(0, 1, Value::Null(1));
  t.set_cell(1, 0, Value::Null(2));  // Identifier column: not counted.
  EXPECT_EQ(t.CountNullCells(), 1u);
}

TEST(MicrodataTest, CsvRoundTripPreservesNulls) {
  MicrodataTable t = TwoColumnTable();
  t.set_cell(0, 1, Value::Null(7));
  const CsvTable csv = t.ToCsv();
  auto back = MicrodataTable::FromCsv("demo", csv, {"Id"}, "Weight");
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_TRUE(back->cell(0, 1).is_null());
  EXPECT_EQ(back->cell(0, 1).null_label(), 7u);
  EXPECT_EQ(back->cell(1, 1).as_string(), "South");
  EXPECT_EQ(back->WeightColumn(), 2);
  EXPECT_EQ(back->attributes()[0].category, AttributeCategory::kIdentifier);
}

TEST(MicrodataTest, ToTextTruncates) {
  const MicrodataTable t = Figure1Microdata();
  const std::string text = t.ToText(3);
  EXPECT_NE(text.find("(17 more)"), std::string::npos);
  EXPECT_NE(text.find("I&G"), std::string::npos);
}

TEST(Figure1Test, MatchesPaperShape) {
  const MicrodataTable t = Figure1Microdata();
  EXPECT_EQ(t.num_rows(), 20u);
  EXPECT_EQ(t.num_columns(), 9u);
  EXPECT_EQ(t.QuasiIdentifierColumns().size(), 5u);
  ASSERT_TRUE(t.Validate().ok());
  // Tuple 15 (index 14) has the smallest weight, 30; tuple 7 (index 6) the
  // largest, 300.
  EXPECT_DOUBLE_EQ(t.RowWeight(14), 30.0);
  EXPECT_DOUBLE_EQ(t.RowWeight(6), 300.0);
}

TEST(Figure5Test, MatchesPaperShape) {
  const MicrodataTable t = Figure5Microdata();
  EXPECT_EQ(t.num_rows(), 7u);
  EXPECT_EQ(t.QuasiIdentifierColumns().size(), 4u);
  EXPECT_EQ(t.cell(0, 1).as_string(), "Roma");
  // Ids keep their leading zeros (strings, not ints).
  EXPECT_EQ(t.cell(0, 0).as_string(), "099876");
}

TEST(MicrodataTest, CopiedTablesShareRowsUntilWritten) {
  // Rows are structurally shared between table copies (the delta rebuild
  // relies on it); set_cell must detach a private copy instead of writing
  // through to every copy.
  MicrodataTable original = TwoColumnTable();
  MicrodataTable copy = original;
  EXPECT_EQ(&copy.row(0), &original.row(0)) << "copies alias unchanged rows";

  copy.set_cell(0, 1, Value::String("East"));
  EXPECT_EQ(copy.cell(0, 1).as_string(), "East");
  EXPECT_EQ(original.cell(0, 1).as_string(), "North")
      << "a write to one copy must never leak into the other";
  EXPECT_NE(&copy.row(0), &original.row(0));
  EXPECT_EQ(&copy.row(1), &original.row(1)) << "untouched rows stay shared";

  // Writing the sole owner must not detach again (no copy churn).
  const auto* before = &copy.row(0);
  copy.set_cell(0, 1, Value::String("West"));
  EXPECT_EQ(&copy.row(0), before);
}

}  // namespace
}  // namespace vadasa::core
