#include "core/report.h"

#include <gtest/gtest.h>

#include "core/datagen.h"

namespace vadasa::core {
namespace {

TEST(ReportTest, AuditedReleaseEndToEnd) {
  MicrodataTable t = Figure5Microdata();
  KAnonymityRisk measure;
  LocalSuppression anon;
  CycleOptions options;
  options.risk.k = 2;
  auto audit = RunAuditedRelease(&t, measure, &anon, options);
  ASSERT_TRUE(audit.ok()) << audit.status().ToString();
  EXPECT_EQ(audit->microdb, "Fig5");
  EXPECT_EQ(audit->tuples, 7u);
  EXPECT_EQ(audit->quasi_identifiers, 4u);
  EXPECT_EQ(audit->risk_measure, "k-anonymity");
  EXPECT_EQ(audit->risk_before.tuples_over_threshold, 3u);
  EXPECT_EQ(audit->risk_after.tuples_over_threshold, 0u);
  EXPECT_GT(audit->cycle.nulls_injected, 0u);
  EXPECT_FALSE(audit->cycle.log.empty());  // log_steps forced on.
}

TEST(ReportTest, TextRenderingIsComplete) {
  MicrodataTable t = Figure5Microdata();
  KAnonymityRisk measure;
  LocalSuppression anon;
  CycleOptions options;
  options.risk.k = 2;
  auto audit = RunAuditedRelease(&t, measure, &anon, options);
  ASSERT_TRUE(audit.ok());
  const std::string text = audit->ToText();
  EXPECT_NE(text.find("Release audit: Fig5"), std::string::npos);
  EXPECT_NE(text.find("disclosure risk before"), std::string::npos);
  EXPECT_NE(text.find("disclosure risk after"), std::string::npos);
  EXPECT_NE(text.find("nulls injected"), std::string::npos);
  EXPECT_NE(text.find("decisions:"), std::string::npos);
  EXPECT_NE(text.find("local-suppression"), std::string::npos);
  EXPECT_NE(text.find("utility"), std::string::npos);
}

TEST(ReportTest, SafeTableAuditsWithoutSteps) {
  MicrodataTable t("safe", {{"A", "", AttributeCategory::kQuasiIdentifier}});
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(t.AddRow({Value::String("same")}).ok());
  }
  KAnonymityRisk measure;
  LocalSuppression anon;
  CycleOptions options;
  options.risk.k = 2;
  auto audit = RunAuditedRelease(&t, measure, &anon, options);
  ASSERT_TRUE(audit.ok());
  EXPECT_EQ(audit->risk_before.tuples_over_threshold, 0u);
  EXPECT_EQ(audit->cycle.nulls_injected, 0u);
  EXPECT_DOUBLE_EQ(audit->utility.max_total_variation, 0.0);
}

TEST(ReportTest, RealisticDatasetAudit) {
  MicrodataTable t =
      GenerateInflationGrowth("audit", 2000, 4, DistributionKind::kUnbalanced, 41);
  KAnonymityRisk measure;
  LocalSuppression anon;
  CycleOptions options;
  options.risk.k = 2;
  auto audit = RunAuditedRelease(&t, measure, &anon, options);
  ASSERT_TRUE(audit.ok());
  EXPECT_GT(audit->risk_before.sample_uniques, audit->risk_after.sample_uniques);
  EXPECT_LT(audit->utility.max_total_variation, 0.1);
}

}  // namespace
}  // namespace vadasa::core
