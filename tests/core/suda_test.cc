#include "core/suda.h"

#include <gtest/gtest.h>

#include "core/datagen.h"

namespace vadasa::core {
namespace {

int PopcountMask(uint32_t m) { return __builtin_popcount(m); }

TEST(SudaTest, Figure1Tuple20MSUs) {
  // Section 4.2's worked example: over the AnonSet {Area, Sector, Employees,
  // Residential Rev.} tuple 20 has exactly 2 MSUs — {Sector=Financial} and
  // {Employees=1000+, Residential Rev.=30-60}.
  const MicrodataTable t = Figure1Microdata();
  SudaOptions options;
  options.max_search_size = 4;  // Search everything; the example needs size 2.
  SudaRisk suda(options);
  RiskContext ctx;
  ctx.qi_columns = {1, 2, 3, 4};  // The example's 4-attribute AnonSet.
  ctx.k = 3;
  auto details = suda.ComputeDetails(t, ctx);
  ASSERT_TRUE(details.ok());
  const auto& msus = details->msus[19];  // Tuple 20.
  ASSERT_EQ(msus.size(), 2u);
  // The resolved QI order is Area(0), Sector(1), Employees(2), ResRev(3),
  // ExportRev(4) as bit positions.
  bool found_sector = false;
  bool found_emp_res = false;
  for (const auto& msu : msus) {
    if (msu.column_mask == (1u << 1)) found_sector = true;
    if (msu.column_mask == ((1u << 2) | (1u << 3))) found_emp_res = true;
  }
  EXPECT_TRUE(found_sector);
  EXPECT_TRUE(found_emp_res);
}

TEST(SudaTest, MsusAreMinimalAndUnique) {
  const MicrodataTable t = Figure1Microdata();
  SudaOptions options;
  options.max_search_size = 5;
  SudaRisk suda(options);
  RiskContext ctx;
  ctx.k = 3;
  auto details = suda.ComputeDetails(t, ctx);
  ASSERT_TRUE(details.ok());
  const auto qis = ctx.ResolveQiColumns(t);
  for (size_t r = 0; r < t.num_rows(); ++r) {
    for (const auto& msu : details->msus[r]) {
      EXPECT_EQ(msu.size, PopcountMask(msu.column_mask));
      // Uniqueness: no other row shares the projection.
      size_t matches = 0;
      for (size_t s = 0; s < t.num_rows(); ++s) {
        bool same = true;
        for (size_t b = 0; b < qis.size(); ++b) {
          if ((msu.column_mask & (1u << b)) &&
              !t.cell(r, qis[b]).Equals(t.cell(s, qis[b]))) {
            same = false;
            break;
          }
        }
        if (same) ++matches;
      }
      EXPECT_EQ(matches, 1u) << "row " << r << " mask " << msu.column_mask;
      // Minimality: no MSU of the same row is a strict subset of another.
      for (const auto& other : details->msus[r]) {
        if (other.column_mask == msu.column_mask) continue;
        EXPECT_NE(other.column_mask & msu.column_mask, other.column_mask)
            << "nested MSUs for row " << r;
      }
    }
  }
}

TEST(SudaTest, RiskFlagsSmallMsusOnly) {
  const MicrodataTable t = Figure1Microdata();
  SudaRisk suda;
  RiskContext ctx;
  ctx.k = 2;  // Dangerous iff an MSU of size 1 exists.
  auto risks = suda.ComputeRisks(t, ctx);
  ASSERT_TRUE(risks.ok());
  // Tuple 20 is the only Financial-sector company: size-1 MSU -> risky.
  EXPECT_DOUBLE_EQ((*risks)[19], 1.0);
  // Tuple 1 (North, Public Service, 50-200, 0-30, 0-30): every single value
  // occurs elsewhere, so no size-1 MSU.
  EXPECT_DOUBLE_EQ((*risks)[0], 0.0);
}

TEST(SudaTest, NoSampleUniqueNoRisk) {
  MicrodataTable t("dup", {{"A", "", AttributeCategory::kQuasiIdentifier},
                           {"B", "", AttributeCategory::kQuasiIdentifier}});
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(t.AddRow({Value::String("x"), Value::String("y")}).ok());
  }
  SudaRisk suda;
  RiskContext ctx;
  ctx.k = 3;
  auto details = suda.ComputeDetails(t, ctx);
  ASSERT_TRUE(details.ok());
  for (const auto& msus : details->msus) EXPECT_TRUE(msus.empty());
  auto risks = suda.ComputeRisks(t, ctx);
  ASSERT_TRUE(risks.ok());
  for (const double r : *risks) EXPECT_DOUBLE_EQ(r, 0.0);
}

TEST(SudaTest, PruningMatchesExhaustive) {
  const MicrodataTable t =
      GenerateInflationGrowth("suda-prop", 400, 5, DistributionKind::kUnbalanced, 11);
  RiskContext ctx;
  ctx.k = 3;
  SudaOptions pruned_options;
  SudaOptions exhaustive_options;
  exhaustive_options.exhaustive = true;
  SudaRisk pruned(pruned_options);
  SudaRisk exhaustive(exhaustive_options);
  const auto a = pruned.ComputeRisks(t, ctx);
  const auto b = exhaustive.ComputeRisks(t, ctx);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (size_t r = 0; r < t.num_rows(); ++r) {
    EXPECT_DOUBLE_EQ((*a)[r], (*b)[r]) << "row " << r;
  }
  auto da = pruned.ComputeDetails(t, ctx);
  auto db = exhaustive.ComputeDetails(t, ctx);
  ASSERT_TRUE(da.ok());
  ASSERT_TRUE(db.ok());
  EXPECT_LE(da->combos_evaluated, db->combos_evaluated);
  EXPECT_GT(da->combos_pruned + da->combos_evaluated, 0u);
  // MSUs themselves must agree.
  for (size_t r = 0; r < t.num_rows(); ++r) {
    ASSERT_EQ(da->msus[r].size(), db->msus[r].size()) << "row " << r;
  }
}

TEST(SudaTest, ExplainListsMsus) {
  const MicrodataTable t = Figure1Microdata();
  SudaOptions options;
  options.max_search_size = 5;
  SudaRisk suda(options);
  RiskContext ctx;
  ctx.k = 3;
  const std::string text = suda.Explain(t, ctx, 19, 1.0);
  EXPECT_NE(text.find("Financial"), std::string::npos);
  EXPECT_NE(text.find("MSU"), std::string::npos);
}

TEST(SudaScoreTest, SmallerMsusScoreExponentiallyHigher) {
  // Over the example's 4-attribute AnonSet, tuple 20 has MSUs of sizes 1 and
  // 2: score 2^(4-1) + 2^(4-2) = 12.
  const MicrodataTable t = Figure1Microdata();
  SudaOptions options;
  options.max_search_size = 4;
  SudaRisk suda(options);
  RiskContext ctx;
  ctx.qi_columns = {1, 2, 3, 4};
  ctx.k = 3;
  auto scores = suda.ComputeScores(t, ctx);
  ASSERT_TRUE(scores.ok());
  EXPECT_DOUBLE_EQ((*scores)[19], 12.0);
  // Rows without sample uniques score 0.
  for (size_t r = 0; r < scores->size(); ++r) {
    EXPECT_GE((*scores)[r], 0.0);
  }
}

TEST(SudaScoreTest, NormalizationMapsToUnitInterval) {
  const MicrodataTable t = Figure1Microdata();
  SudaOptions options;
  options.max_search_size = 5;
  SudaRisk suda(options);
  RiskContext ctx;
  ctx.k = 3;
  auto scores = suda.ComputeScores(t, ctx);
  ASSERT_TRUE(scores.ok());
  const auto normalized = NormalizeSudaScores(*scores);
  double max_norm = 0.0;
  for (const double s : normalized) {
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
    max_norm = std::max(max_norm, s);
  }
  EXPECT_DOUBLE_EQ(max_norm, 1.0);  // Some Fig. 1 tuple is sample unique.
  // All-zero input stays all-zero.
  const auto zeros = NormalizeSudaScores(std::vector<double>(5, 0.0));
  for (const double s : zeros) EXPECT_DOUBLE_EQ(s, 0.0);
}

TEST(SudaTest, TooManyQisRejected) {
  std::vector<Attribute> attrs;
  for (int i = 0; i < 21; ++i) {
    attrs.push_back({"q" + std::to_string(i), "", AttributeCategory::kQuasiIdentifier});
  }
  MicrodataTable t("wide", attrs);
  std::vector<Value> row;
  for (int i = 0; i < 21; ++i) row.push_back(Value::Int(i));
  ASSERT_TRUE(t.AddRow(row).ok());
  SudaRisk suda;
  RiskContext ctx;
  EXPECT_FALSE(suda.ComputeRisks(t, ctx).ok());
}

TEST(SudaTest, EmptyTable) {
  MicrodataTable t("empty", {{"A", "", AttributeCategory::kQuasiIdentifier}});
  SudaRisk suda;
  RiskContext ctx;
  auto risks = suda.ComputeRisks(t, ctx);
  ASSERT_TRUE(risks.ok());
  EXPECT_TRUE(risks->empty());
}

}  // namespace
}  // namespace vadasa::core
