#include "core/business.h"

#include <gtest/gtest.h>

#include "core/datagen.h"

namespace vadasa::core {
namespace {

TEST(OwnershipGraphTest, DirectMajorityControl) {
  OwnershipGraph g;
  g.AddOwnership("a", "b", 0.6);
  g.AddOwnership("a", "c", 0.4);
  const auto control = g.ComputeControl();
  ASSERT_EQ(control.size(), 1u);
  EXPECT_EQ(control[0].first, "a");
  EXPECT_EQ(control[0].second, "b");
}

TEST(OwnershipGraphTest, JointControlViaSubsidiaries) {
  // Section 4.4: X controls Y if companies X controls jointly own > 50%.
  OwnershipGraph g;
  g.AddOwnership("x", "s1", 0.9);
  g.AddOwnership("x", "s2", 0.9);
  g.AddOwnership("s1", "t", 0.3);
  g.AddOwnership("s2", "t", 0.3);
  const auto control = g.ComputeControl();
  bool x_controls_t = false;
  for (const auto& [a, b] : control) {
    if (a == "x" && b == "t") x_controls_t = true;
  }
  EXPECT_TRUE(x_controls_t);
}

TEST(OwnershipGraphTest, OwnStakePlusSubsidiaryStake) {
  OwnershipGraph g;
  g.AddOwnership("x", "s", 0.8);
  g.AddOwnership("x", "t", 0.3);
  g.AddOwnership("s", "t", 0.3);
  const auto control = g.ComputeControl();
  bool x_controls_t = false;
  for (const auto& [a, b] : control) {
    if (a == "x" && b == "t") x_controls_t = true;
  }
  EXPECT_TRUE(x_controls_t);  // 0.3 direct + 0.3 via s = 0.6.
}

TEST(OwnershipGraphTest, MinorityStakesDoNotControl) {
  OwnershipGraph g;
  g.AddOwnership("a", "b", 0.5);  // Exactly 50%: not a majority.
  EXPECT_TRUE(g.ComputeControl().empty());
}

TEST(OwnershipGraphTest, ClustersAreConnectedComponents) {
  OwnershipGraph g;
  g.AddOwnership("a", "b", 0.7);
  g.AddOwnership("b", "c", 0.8);
  g.AddOwnership("x", "y", 0.9);
  g.AddOwnership("m", "n", 0.1);  // No control: separate singletons.
  const auto clusters = g.ComputeClusters();
  EXPECT_EQ(clusters.at("a"), clusters.at("b"));
  EXPECT_EQ(clusters.at("a"), clusters.at("c"));
  EXPECT_EQ(clusters.at("x"), clusters.at("y"));
  EXPECT_NE(clusters.at("a"), clusters.at("x"));
  EXPECT_NE(clusters.at("m"), clusters.at("n"));
  EXPECT_TRUE(g.SameCluster("a", "c"));
  EXPECT_FALSE(g.SameCluster("a", "m"));
  EXPECT_TRUE(g.SameCluster("z", "z"));  // Unknown but reflexive.
}

TEST(ClusterRiskTransformTest, PropagatesCombinedRisk) {
  // Two linked entities with risks 0.5 each: cluster risk 1-(0.5)² = 0.75.
  MicrodataTable t("biz", {{"Id", "", AttributeCategory::kIdentifier},
                           {"A", "", AttributeCategory::kQuasiIdentifier}});
  ASSERT_TRUE(t.AddRow({Value::String("a"), Value::String("x")}).ok());
  ASSERT_TRUE(t.AddRow({Value::String("b"), Value::String("y")}).ok());
  ASSERT_TRUE(t.AddRow({Value::String("z"), Value::String("w")}).ok());
  OwnershipGraph g;
  g.AddOwnership("a", "b", 0.9);
  const RiskTransform transform = MakeClusterRiskTransform(&g, "Id");
  std::vector<double> risks = {0.5, 0.5, 0.2};
  transform(t, &risks);
  EXPECT_DOUBLE_EQ(risks[0], 0.75);
  EXPECT_DOUBLE_EQ(risks[1], 0.75);
  EXPECT_DOUBLE_EQ(risks[2], 0.2);  // Not in the graph: untouched.
}

TEST(ClusterRiskTransformTest, NeverLowersRisk) {
  MicrodataTable t("biz", {{"Id", "", AttributeCategory::kIdentifier}});
  ASSERT_TRUE(t.AddRow({Value::String("a")}).ok());
  ASSERT_TRUE(t.AddRow({Value::String("b")}).ok());
  OwnershipGraph g;
  g.AddOwnership("a", "b", 0.8);
  const RiskTransform transform = MakeClusterRiskTransform(&g, "Id");
  std::vector<double> risks = {0.9, 0.0};
  transform(t, &risks);
  EXPECT_GE(risks[0], 0.9);
  EXPECT_DOUBLE_EQ(risks[1], 0.9);  // 1 - (1-0.9)(1-0) = 0.9.
}

TEST(ClusterRiskTransformTest, MissingIdColumnIsNoOp) {
  MicrodataTable t("noid", {{"A", "", AttributeCategory::kQuasiIdentifier}});
  ASSERT_TRUE(t.AddRow({Value::String("x")}).ok());
  OwnershipGraph g;
  const RiskTransform transform = MakeClusterRiskTransform(&g, "Id");
  std::vector<double> risks = {0.4};
  transform(t, &risks);
  EXPECT_DOUBLE_EQ(risks[0], 0.4);
}

TEST(ClusterRiskTransformTest, WholeClusterRisk) {
  // 1 - Π(1-ρ) over a three-member cluster.
  MicrodataTable t("biz", {{"Id", "", AttributeCategory::kIdentifier}});
  for (const char* id : {"a", "b", "c"}) {
    ASSERT_TRUE(t.AddRow({Value::String(id)}).ok());
  }
  OwnershipGraph g;
  g.AddOwnership("a", "b", 0.9);
  g.AddOwnership("b", "c", 0.9);
  const RiskTransform transform = MakeClusterRiskTransform(&g, "Id");
  std::vector<double> risks = {0.1, 0.2, 0.3};
  transform(t, &risks);
  const double expected = 1.0 - 0.9 * 0.8 * 0.7;
  for (const double r : risks) EXPECT_NEAR(r, expected, 1e-12);
}

}  // namespace
}  // namespace vadasa::core
