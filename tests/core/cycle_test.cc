#include "core/cycle.h"

#include <gtest/gtest.h>

#include "core/datagen.h"
#include "core/infoloss.h"

namespace vadasa::core {
namespace {

CycleOptions KAnonOptions(int k) {
  CycleOptions options;
  options.threshold = 0.5;
  options.risk.k = k;
  return options;
}

TEST(CycleTest, Figure5ConvergesWithFewNulls) {
  MicrodataTable t = Figure5Microdata();
  KAnonymityRisk risk;
  LocalSuppression anon;
  AnonymizationCycle cycle(&risk, &anon, KAnonOptions(2));
  auto stats = cycle.Run(&t);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->initial_risky, 3u);  // Rows 0, 5, 6.
  EXPECT_EQ(stats->unresolved, 0u);
  EXPECT_GT(stats->nulls_injected, 0u);
  EXPECT_LE(stats->nulls_injected, 3u);
  // Post-condition: nobody is risky anymore.
  RiskContext ctx;
  ctx.k = 2;
  auto final_risks = risk.ComputeRisks(t, ctx);
  ASSERT_TRUE(final_risks.ok());
  for (const double r : *final_risks) EXPECT_LE(r, 0.5);
}

TEST(CycleTest, AlreadySafeTableUntouched) {
  MicrodataTable t("safe", {{"A", "", AttributeCategory::kQuasiIdentifier}});
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(t.AddRow({Value::String("same")}).ok());
  }
  KAnonymityRisk risk;
  LocalSuppression anon;
  AnonymizationCycle cycle(&risk, &anon, KAnonOptions(2));
  auto stats = cycle.Run(&t);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->initial_risky, 0u);
  EXPECT_EQ(stats->nulls_injected, 0u);
  EXPECT_EQ(stats->iterations, 1u);
  EXPECT_DOUBLE_EQ(stats->information_loss, 0.0);
}

TEST(CycleTest, SingleStepModeMatchesBatchedOutcome) {
  // Both modes must end below-threshold; the batched mode exists purely for
  // speed and may differ in exact null counts only by ties.
  for (const bool single_step : {false, true}) {
    MicrodataTable t = Figure5Microdata();
    KAnonymityRisk risk;
    LocalSuppression anon;
    CycleOptions options = KAnonOptions(2);
    options.single_step = single_step;
    AnonymizationCycle cycle(&risk, &anon, options);
    auto stats = cycle.Run(&t);
    ASSERT_TRUE(stats.ok());
    RiskContext ctx;
    ctx.k = 2;
    auto final_risks = risk.ComputeRisks(t, ctx);
    ASSERT_TRUE(final_risks.ok());
    for (const double r : *final_risks) EXPECT_LE(r, 0.5);
  }
}

TEST(CycleTest, StandardSemanticsLeavesUnresolvedTuples) {
  // Under the Skolem null semantics suppression never helps: the cycle must
  // wipe every QI of the risky tuples and give up (Fig. 7c's pathology).
  MicrodataTable t = Figure5Microdata();
  KAnonymityRisk risk;
  LocalSuppression anon;
  CycleOptions options = KAnonOptions(2);
  options.risk.semantics = NullSemantics::kStandard;
  AnonymizationCycle cycle(&risk, &anon, options);
  auto stats = cycle.Run(&t);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->unresolved, 3u);
  // 3 risky tuples × 4 QIs all suppressed.
  EXPECT_EQ(stats->nulls_injected, 12u);
}

TEST(CycleTest, LogStepsExplainsDecisions) {
  MicrodataTable t = Figure5Microdata();
  KAnonymityRisk risk;
  LocalSuppression anon;
  CycleOptions options = KAnonOptions(2);
  options.log_steps = true;
  AnonymizationCycle cycle(&risk, &anon, options);
  auto stats = cycle.Run(&t);
  ASSERT_TRUE(stats.ok());
  ASSERT_FALSE(stats->log.empty());
  EXPECT_NE(stats->log[0].find("local-suppression"), std::string::npos);
  EXPECT_NE(stats->log[0].find("occurs"), std::string::npos);
}

TEST(CycleTest, TimingSplitsRiskComponent) {
  MicrodataTable t =
      GenerateInflationGrowth("timing", 2000, 4, DistributionKind::kUnbalanced, 5);
  KAnonymityRisk risk;
  LocalSuppression anon;
  AnonymizationCycle cycle(&risk, &anon, KAnonOptions(2));
  auto stats = cycle.Run(&t);
  ASSERT_TRUE(stats.ok());
  EXPECT_GT(stats->total_seconds, 0.0);
  EXPECT_GT(stats->risk_eval_seconds, 0.0);
  EXPECT_LE(stats->risk_eval_seconds, stats->total_seconds);
  EXPECT_EQ(stats->risk_evaluations, stats->iterations);
}

TEST(CycleTest, ReidentificationRiskThreshold) {
  // With re-identification risk and T = 0.02, tuples with weight sum < 50
  // get anonymized.
  MicrodataTable t = Figure1Microdata();
  ReidentificationRisk risk;
  LocalSuppression anon;
  CycleOptions options;
  options.threshold = 0.02;
  AnonymizationCycle cycle(&risk, &anon, options);
  auto stats = cycle.Run(&t);
  ASSERT_TRUE(stats.ok());
  EXPECT_GT(stats->initial_risky, 0u);
  RiskContext ctx;
  auto final_risks = risk.ComputeRisks(t, ctx);
  ASSERT_TRUE(final_risks.ok());
  for (size_t r = 0; r < final_risks->size(); ++r) {
    EXPECT_LE((*final_risks)[r], 0.02 + 1e-12) << "row " << r;
  }
}

TEST(CycleTest, GlobalRecodingConverges) {
  MicrodataTable t = Figure5Microdata();
  Hierarchy h = Hierarchy::ItalianGeography();
  h.SetAttributeType("Area", "City");
  KAnonymityRisk risk;
  RecodeThenSuppress anon(&h);
  AnonymizationCycle cycle(&risk, &anon, KAnonOptions(2));
  auto stats = cycle.Run(&t);
  ASSERT_TRUE(stats.ok());
  RiskContext ctx;
  ctx.k = 2;
  auto final_risks = risk.ComputeRisks(t, ctx);
  for (const double r : *final_risks) EXPECT_LE(r, 0.5);
  // Milano/Torino merged by recoding, not suppression.
  EXPECT_GT(stats->cells_recoded, 0u);
}

TEST(CycleTest, NoQuasiIdentifiersFails) {
  MicrodataTable t("noqi", {{"Id", "", AttributeCategory::kIdentifier}});
  ASSERT_TRUE(t.AddRow({Value::Int(1)}).ok());
  KAnonymityRisk risk;
  LocalSuppression anon;
  AnonymizationCycle cycle(&risk, &anon, KAnonOptions(2));
  EXPECT_FALSE(cycle.Run(&t).ok());
}

TEST(CycleTest, RiskTransformHookApplies) {
  // A transform that forces every risk to 0 disables anonymization entirely.
  MicrodataTable t = Figure5Microdata();
  KAnonymityRisk risk;
  LocalSuppression anon;
  CycleOptions options = KAnonOptions(2);
  options.risk_transform = [](const MicrodataTable&, std::vector<double>* risks) {
    for (double& r : *risks) r = 0.0;
  };
  AnonymizationCycle cycle(&risk, &anon, options);
  auto stats = cycle.Run(&t);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->nulls_injected, 0u);
}

TEST(CycleTest, InformationLossUsesPaperMetric) {
  MicrodataTable t = Figure5Microdata();
  KAnonymityRisk risk;
  LocalSuppression anon;
  AnonymizationCycle cycle(&risk, &anon, KAnonOptions(2));
  auto stats = cycle.Run(&t);
  ASSERT_TRUE(stats.ok());
  EXPECT_DOUBLE_EQ(
      stats->information_loss,
      PaperInformationLoss(stats->nulls_injected, stats->initial_risky, 4));
}

TEST(CycleTest, IdempotentOnItsOwnOutput) {
  // Running the cycle on an already-anonymized release must be a no-op: the
  // fixpoint property of Algorithm 2.
  MicrodataTable t =
      GenerateInflationGrowth("idem", 1500, 4, DistributionKind::kVeryUnbalanced, 71);
  KAnonymityRisk risk;
  LocalSuppression anon;
  AnonymizationCycle first(&risk, &anon, KAnonOptions(3));
  auto stats1 = first.Run(&t);
  ASSERT_TRUE(stats1.ok());
  EXPECT_GT(stats1->nulls_injected, 0u);
  LocalSuppression anon2;
  AnonymizationCycle second(&risk, &anon2, KAnonOptions(3));
  auto stats2 = second.Run(&t);
  ASSERT_TRUE(stats2.ok());
  EXPECT_EQ(stats2->nulls_injected, 0u);
  EXPECT_EQ(stats2->initial_risky, 0u);
  EXPECT_EQ(stats2->iterations, 1u);
}

/// Tentpole: the group index is built once and then maintained incrementally
/// — a multi-iteration run must record exactly one from-scratch rebuild, with
/// every later iteration served by UpdateRows.
TEST(CycleTest, GroupIndexBuiltOnceAcrossIterations) {
  MicrodataTable t =
      GenerateInflationGrowth("incr", 1200, 4, DistributionKind::kVeryUnbalanced, 23);
  KAnonymityRisk risk;
  LocalSuppression anon;
  AnonymizationCycle cycle(&risk, &anon, KAnonOptions(3));
  auto stats = cycle.Run(&t);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  ASSERT_GT(stats->iterations, 2u) << "fixture too easy to exercise incrementality";
  EXPECT_EQ(stats->group_rebuilds, 1u);
  // One UpdateRows batch per iteration that changed anything.
  EXPECT_GE(stats->group_updates, stats->iterations - 1);
}

/// The incremental path must converge to the same anonymization as the seed's
/// rebuild-per-iteration cycle did: same null count on the Figure 5 table.
TEST(CycleTest, IncrementalIndexPreservesFigure5Outcome) {
  MicrodataTable t = Figure5Microdata();
  KAnonymityRisk risk;
  LocalSuppression anon;
  AnonymizationCycle cycle(&risk, &anon, KAnonOptions(2));
  auto stats = cycle.Run(&t);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->unresolved, 0u);
  EXPECT_LE(stats->nulls_injected, 3u);
  EXPECT_EQ(stats->group_rebuilds, 1u);
}

/// Parameterized sweep: the cycle converges under every (measure, k,
/// semantics-preserving) combination on generated data.
struct CycleSweepParam {
  const char* measure;
  int k;
  bool single_step;
};

class CycleSweepTest : public ::testing::TestWithParam<CycleSweepParam> {};

TEST_P(CycleSweepTest, ConvergesBelowThreshold) {
  const CycleSweepParam param = GetParam();
  MicrodataTable t =
      GenerateInflationGrowth("sweep", 800, 4, DistributionKind::kUnbalanced, 17);
  auto measure = MakeRiskMeasure(param.measure);
  ASSERT_TRUE(measure.ok());
  LocalSuppression anon;
  CycleOptions options;
  options.threshold = 0.5;
  options.risk.k = param.k;
  options.single_step = param.single_step;
  AnonymizationCycle cycle(measure->get(), &anon, options);
  auto stats = cycle.Run(&t);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  RiskContext ctx;
  ctx.k = param.k;
  auto final_risks = (*measure)->ComputeRisks(t, ctx);
  ASSERT_TRUE(final_risks.ok());
  size_t still_risky = 0;
  for (const double r : *final_risks) still_risky += r > 0.5;
  EXPECT_EQ(still_risky, stats->unresolved);
}

INSTANTIATE_TEST_SUITE_P(
    MeasuresAndModes, CycleSweepTest,
    ::testing::Values(CycleSweepParam{"k-anonymity", 2, false},
                      CycleSweepParam{"k-anonymity", 3, false},
                      CycleSweepParam{"k-anonymity", 2, true},
                      CycleSweepParam{"individual", 2, false},
                      CycleSweepParam{"suda", 2, false}));

}  // namespace
}  // namespace vadasa::core
