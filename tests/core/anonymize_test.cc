#include "core/anonymize.h"

#include <gtest/gtest.h>

#include <set>

#include "core/cycle.h"
#include "core/datagen.h"
#include "core/group_index.h"

namespace vadasa::core {
namespace {

TEST(LocalSuppressionTest, ReplacesCellWithFreshNull) {
  MicrodataTable t = Figure5Microdata();
  LocalSuppression anon;
  ASSERT_TRUE(anon.CanApply(t, 0, 2));
  auto step = anon.Apply(&t, 0, 2);
  ASSERT_TRUE(step.ok());
  EXPECT_TRUE(t.cell(0, 2).is_null());
  EXPECT_EQ(step->before.as_string(), "Textiles");
  EXPECT_TRUE(step->after.is_null());
  EXPECT_EQ(step->nulls_injected, 1u);
  EXPECT_EQ(step->affected_rows, 1u);
  EXPECT_EQ(anon.nulls_created(), 1u);
}

TEST(LocalSuppressionTest, FreshLabelsDiffer) {
  MicrodataTable t = Figure5Microdata();
  LocalSuppression anon;
  auto s1 = anon.Apply(&t, 0, 2);
  auto s2 = anon.Apply(&t, 1, 2);
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());
  EXPECT_NE(t.cell(0, 2).null_label(), t.cell(1, 2).null_label());
}

TEST(LocalSuppressionTest, NotApplicableTwice) {
  MicrodataTable t = Figure5Microdata();
  LocalSuppression anon;
  ASSERT_TRUE(anon.Apply(&t, 0, 2).ok());
  EXPECT_FALSE(anon.CanApply(t, 0, 2));
  EXPECT_FALSE(anon.Apply(&t, 0, 2).ok());
}

TEST(LocalSuppressionTest, OnlyQuasiIdentifiers) {
  MicrodataTable t = Figure5Microdata();
  LocalSuppression anon;
  EXPECT_FALSE(anon.CanApply(t, 0, 0));  // Id is a direct identifier.
  EXPECT_FALSE(anon.CanApply(t, 99, 2));  // Out of range.
  EXPECT_FALSE(anon.CanApply(t, 0, 99));
}

TEST(LocalSuppressionTest, ReproducesFigure5bFrequencies) {
  // Suppressing Sector of tuple 1 gives the Fig. 5b frequencies 5,3,3,3,3.
  MicrodataTable t = Figure5Microdata();
  LocalSuppression anon;
  ASSERT_TRUE(anon.Apply(&t, 0, 2).ok());
  const GroupStats stats =
      ComputeGroupStats(t, t.QuasiIdentifierColumns(), NullSemantics::kMaybeMatch);
  EXPECT_DOUBLE_EQ(stats.frequency[0], 5.0);
  for (size_t r = 1; r <= 4; ++r) EXPECT_DOUBLE_EQ(stats.frequency[r], 3.0);
  EXPECT_DOUBLE_EQ(stats.frequency[5], 1.0);
}

TEST(GlobalRecodingTest, ReplacesEveryOccurrence) {
  MicrodataTable t = Figure5Microdata();
  Hierarchy h = Hierarchy::ItalianGeography();
  h.SetAttributeType("Area", "City");
  GlobalRecoding anon(&h);
  ASSERT_TRUE(anon.CanApply(t, 0, 1));
  auto step = anon.Apply(&t, 0, 1);  // Roma -> Center, on all 5 rows.
  ASSERT_TRUE(step.ok());
  EXPECT_EQ(step->affected_rows, 5u);
  EXPECT_EQ(step->nulls_injected, 0u);
  for (size_t r = 0; r <= 4; ++r) {
    EXPECT_EQ(t.cell(r, 1).as_string(), "Center");
  }
  EXPECT_EQ(t.cell(5, 1).as_string(), "Milano");  // Untouched.
}

TEST(GlobalRecodingTest, ReproducesFigure5bGeography) {
  // Fig. 5b: Milano and Torino both recode to North, merging tuples 6 and 7.
  MicrodataTable t = Figure5Microdata();
  Hierarchy h = Hierarchy::ItalianGeography();
  h.SetAttributeType("Area", "City");
  GlobalRecoding anon(&h);
  ASSERT_TRUE(anon.Apply(&t, 5, 1).ok());
  ASSERT_TRUE(anon.Apply(&t, 6, 1).ok());
  EXPECT_EQ(t.cell(5, 1).as_string(), "North");
  EXPECT_EQ(t.cell(6, 1).as_string(), "North");
  const GroupStats stats =
      ComputeGroupStats(t, t.QuasiIdentifierColumns(), NullSemantics::kMaybeMatch);
  EXPECT_DOUBLE_EQ(stats.frequency[5], 2.0);
  EXPECT_DOUBLE_EQ(stats.frequency[6], 2.0);
}

TEST(GlobalRecodingTest, FailsWithoutHierarchyEntry) {
  MicrodataTable t = Figure5Microdata();
  Hierarchy h = Hierarchy::ItalianGeography();  // No attribute types declared.
  GlobalRecoding anon(&h);
  EXPECT_FALSE(anon.CanApply(t, 0, 1));
  EXPECT_FALSE(anon.Apply(&t, 0, 1).ok());
}

TEST(RecodeThenSuppressTest, PrefersRecodingFallsBackToNulls) {
  MicrodataTable t = Figure5Microdata();
  Hierarchy h = Hierarchy::ItalianGeography();
  h.SetAttributeType("Area", "City");
  RecodeThenSuppress anon(&h);
  // Area is recodable: recoding applies.
  auto step = anon.Apply(&t, 0, 1);
  ASSERT_TRUE(step.ok());
  EXPECT_EQ(step->method, "global-recoding");
  // Sector has no hierarchy: suppression applies.
  step = anon.Apply(&t, 0, 2);
  ASSERT_TRUE(step.ok());
  EXPECT_EQ(step->method, "local-suppression");
  EXPECT_TRUE(t.cell(0, 2).is_null());
}

TEST(PramTest, ReplacesWithCommonValueFromColumn) {
  MicrodataTable t = Figure5Microdata();
  PramPerturbation anon(/*seed=*/7);
  ASSERT_TRUE(anon.CanApply(t, 0, 2));  // Sector "Textiles", unique.
  auto step = anon.Apply(&t, 0, 2);
  ASSERT_TRUE(step.ok());
  EXPECT_EQ(step->method, "pram-perturbation");
  EXPECT_EQ(step->nulls_injected, 0u);
  const Value& after = t.cell(0, 2);
  EXPECT_FALSE(after.is_null());
  EXPECT_FALSE(after.Equals(Value::String("Textiles")));
  // The replacement comes from the column's existing domain.
  bool in_domain = false;
  for (size_t r = 1; r < t.num_rows(); ++r) {
    in_domain |= t.cell(r, 2).Equals(after);
  }
  EXPECT_TRUE(in_domain);
}

TEST(PramTest, DeterministicPerSeed) {
  MicrodataTable a = Figure5Microdata();
  MicrodataTable b = Figure5Microdata();
  PramPerturbation ra(42);
  PramPerturbation rb(42);
  ASSERT_TRUE(ra.Apply(&a, 0, 2).ok());
  ASSERT_TRUE(rb.Apply(&b, 0, 2).ok());
  EXPECT_TRUE(a.cell(0, 2).Equals(b.cell(0, 2)));
}

TEST(PramTest, NotApplicableToConstantColumn) {
  MicrodataTable t("c", {{"A", "", AttributeCategory::kQuasiIdentifier}});
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(t.AddRow({Value::String("same")}).ok());
  }
  PramPerturbation anon(1);
  EXPECT_FALSE(anon.CanApply(t, 0, 0));  // No other value to draw from.
}

TEST(PramTest, CycleWithPerturbationConverges) {
  MicrodataTable t = Figure5Microdata();
  KAnonymityRisk risk;
  PramPerturbation anon(99);
  CycleOptions options;
  options.risk.k = 2;
  AnonymizationCycle cycle(&risk, &anon, options);
  auto stats = cycle.Run(&t);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  // No nulls: perturbation trades truthfulness for utility instead.
  EXPECT_EQ(stats->nulls_injected, 0u);
  EXPECT_EQ(t.CountNullCells(), 0u);
}

TEST(RecordSuppressionTest, WipesAllQuasiIdentifiers) {
  MicrodataTable t = Figure5Microdata();
  RecordSuppression anon;
  ASSERT_TRUE(anon.CanApply(t, 0, 1));
  auto step = anon.Apply(&t, 0, 1);
  ASSERT_TRUE(step.ok());
  EXPECT_EQ(step->nulls_injected, 4u);
  for (const size_t c : t.QuasiIdentifierColumns()) {
    EXPECT_TRUE(t.cell(0, c).is_null());
  }
  // The identifier column is untouched (dropped elsewhere in the pipeline).
  EXPECT_FALSE(t.cell(0, 0).is_null());
  // A fully wiped row cannot be suppressed again.
  EXPECT_FALSE(anon.CanApply(t, 0, 1));
}

TEST(RecordSuppressionTest, DistinctLabelsPerCell) {
  MicrodataTable t = Figure5Microdata();
  RecordSuppression anon;
  ASSERT_TRUE(anon.Apply(&t, 0, 1).ok());
  std::set<uint64_t> labels;
  for (const size_t c : t.QuasiIdentifierColumns()) {
    labels.insert(t.cell(0, c).null_label());
  }
  EXPECT_EQ(labels.size(), 4u);
}

TEST(RecordSuppressionTest, ResolvesAnyCombinationRisk) {
  MicrodataTable t = Figure5Microdata();
  RecordSuppression anon;
  ASSERT_TRUE(anon.Apply(&t, 0, 1).ok());
  const GroupStats stats =
      ComputeGroupStats(t, t.QuasiIdentifierColumns(), NullSemantics::kMaybeMatch);
  // All-wildcards matches every row.
  EXPECT_DOUBLE_EQ(stats.frequency[0], 7.0);
}

TEST(AnonymizationStepTest, ToStringIsReadable) {
  MicrodataTable t = Figure5Microdata();
  LocalSuppression anon;
  auto step = anon.Apply(&t, 0, 2);
  ASSERT_TRUE(step.ok());
  const std::string text = step->ToString(t);
  EXPECT_NE(text.find("local-suppression"), std::string::npos);
  EXPECT_NE(text.find("Sector"), std::string::npos);
  EXPECT_NE(text.find("Textiles"), std::string::npos);
}

}  // namespace
}  // namespace vadasa::core
