#include "core/categorize.h"

#include <gtest/gtest.h>

#include "core/datagen.h"

namespace vadasa::core {
namespace {

TEST(CategorizerTest, BorrowsCategoryFromSimilarEntry) {
  AttributeCategorizer c;
  c.AddExperience("residential revenue", AttributeCategory::kQuasiIdentifier);
  const CategorizationDecision d = c.Categorize("Residential Rev.");
  EXPECT_EQ(d.category, AttributeCategory::kQuasiIdentifier);
  EXPECT_EQ(d.matched_entry, "residential revenue");
  EXPECT_FALSE(d.defaulted);
  EXPECT_GE(d.similarity, 0.82);
}

TEST(CategorizerTest, DefaultsWhenNothingMatches) {
  AttributeCategorizer c;
  const CategorizationDecision d = c.Categorize("zorblax");
  EXPECT_TRUE(d.defaulted);
  EXPECT_EQ(d.category, AttributeCategory::kQuasiIdentifier);  // Conservative.
}

TEST(CategorizerTest, Rule3FeedbackAidsLaterDecisions) {
  // The recursive application of experience: once "Residential Rev." is
  // categorized, the near-identical "Residential Rev" borrows from it even
  // though the original seed may be too far.
  AttributeCategorizer c;
  c.AddExperience("revenue residential", AttributeCategory::kNonIdentifying);
  const CategorizationDecision first = c.Categorize("Residential Rev.");
  ASSERT_TRUE(first.consolidated);
  const CategorizationDecision second = c.Categorize("residential rev");
  EXPECT_EQ(second.category, first.category);
  EXPECT_FALSE(second.defaulted);
}

TEST(CategorizerTest, ConsolidationCanBeDeclined) {
  CategorizerOptions options;
  options.consolidate = [](const CategorizationDecision&) { return false; };
  AttributeCategorizer c(options);
  c.AddExperience("area", AttributeCategory::kQuasiIdentifier);
  const size_t before = c.experience().size();
  const CategorizationDecision d = c.Categorize("Area");
  EXPECT_FALSE(d.consolidated);
  EXPECT_EQ(c.experience().size(), before);
}

TEST(CategorizerTest, EgdConflictSurfaced) {
  // Two similar experience entries with different categories: Rule 4 fires.
  AttributeCategorizer c;
  c.AddExperience("customer id", AttributeCategory::kIdentifier);
  c.AddExperience("customer ids", AttributeCategory::kNonIdentifying);
  c.Categorize("Customer Id");
  ASSERT_GE(c.conflicts().size(), 1u);
  EXPECT_EQ(c.conflicts()[0].attribute, "Customer Id");
}

TEST(CategorizerTest, CustomSimilarityFunction) {
  CategorizerOptions options;
  options.similarity = [](std::string_view a, std::string_view b) {
    return a == b ? 1.0 : 0.0;  // Exact match only.
  };
  AttributeCategorizer c(options);
  c.AddExperience("area", AttributeCategory::kQuasiIdentifier);
  EXPECT_TRUE(c.Categorize("Area").defaulted);  // "Area" != "area" here.
  EXPECT_FALSE(c.Categorize("area").defaulted);
}

TEST(CategorizerTest, DefaultExperienceCategorizesFigure1) {
  AttributeCategorizer c = AttributeCategorizer::WithDefaultExperience();
  MicrodataTable t = Figure1Microdata();
  // Wipe categories; the categorizer must reconstruct sensible ones.
  for (const Attribute& a : std::vector<Attribute>(t.attributes())) {
    ASSERT_TRUE(t.SetCategory(a.name, AttributeCategory::kNonIdentifying).ok());
  }
  MetadataDictionary dict;
  auto decisions = c.CategorizeTable(&t, &dict);
  ASSERT_TRUE(decisions.ok()) << decisions.status().ToString();
  EXPECT_EQ(t.attributes()[t.ColumnIndex("Id")].category,
            AttributeCategory::kIdentifier);
  EXPECT_EQ(t.attributes()[t.ColumnIndex("Area")].category,
            AttributeCategory::kQuasiIdentifier);
  EXPECT_EQ(t.attributes()[t.ColumnIndex("Sector")].category,
            AttributeCategory::kQuasiIdentifier);
  EXPECT_EQ(t.attributes()[t.ColumnIndex("Weight")].category,
            AttributeCategory::kWeight);
  EXPECT_EQ(t.attributes()[t.ColumnIndex("Growth")].category,
            AttributeCategory::kNonIdentifying);
  // The dictionary received the Category facts.
  EXPECT_EQ(*dict.CategoryOf("I&G", "Weight"), AttributeCategory::kWeight);
  ASSERT_TRUE(t.Validate().ok());
}

TEST(CategorizerTest, CategorizeTableRejectsDoubleWeight) {
  AttributeCategorizer c;
  c.AddExperience("weight", AttributeCategory::kWeight);
  MicrodataTable t("bad", {{"weight", "", AttributeCategory::kNonIdentifying},
                           {"Weight", "", AttributeCategory::kNonIdentifying}});
  ASSERT_TRUE(t.AddRow({Value::Int(1), Value::Int(2)}).ok());
  EXPECT_FALSE(c.CategorizeTable(&t, nullptr).ok());
}

}  // namespace
}  // namespace vadasa::core
