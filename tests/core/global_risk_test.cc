#include "core/global_risk.h"

#include <gtest/gtest.h>

#include "core/anonymize.h"
#include "core/cycle.h"
#include "core/datagen.h"

namespace vadasa::core {
namespace {

TEST(GlobalRiskTest, Figure1ExpectedReidentifications) {
  // τ1 = Σ 1/W over the 20 unique tuples; τ2 = τ1/20.
  const MicrodataTable t = Figure1Microdata();
  ReidentificationRisk measure;
  RiskContext ctx;
  auto report = ComputeGlobalRisk(t, measure, ctx, /*threshold=*/0.02);
  ASSERT_TRUE(report.ok());
  double tau1 = 0.0;
  for (size_t r = 0; r < t.num_rows(); ++r) tau1 += 1.0 / t.RowWeight(r);
  EXPECT_NEAR(report->expected_reidentifications, tau1, 1e-9);
  EXPECT_NEAR(report->global_risk_rate, tau1 / 20.0, 1e-9);
  EXPECT_NEAR(report->max_risk, 1.0 / 30, 1e-9);
  EXPECT_EQ(report->sample_uniques, 20u);  // Every Fig. 1 combination is unique.
  // Tuples with weight < 50: only tuple 15 (W=30).
  EXPECT_EQ(report->tuples_over_threshold, 1u);
}

TEST(GlobalRiskTest, AnonymizationLowersTheFileRisk) {
  MicrodataTable t =
      GenerateInflationGrowth("glob", 2000, 4, DistributionKind::kUnbalanced, 31);
  KAnonymityRisk measure;
  RiskContext ctx;
  ctx.k = 2;
  auto before = ComputeGlobalRisk(t, measure, ctx, 0.5);
  ASSERT_TRUE(before.ok());
  ASSERT_GT(before->tuples_over_threshold, 0u);
  LocalSuppression anon;
  CycleOptions options;
  options.risk.k = 2;
  AnonymizationCycle cycle(&measure, &anon, options);
  ASSERT_TRUE(cycle.Run(&t).ok());
  auto after = ComputeGlobalRisk(t, measure, ctx, 0.5);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->tuples_over_threshold, 0u);
  EXPECT_LT(after->expected_reidentifications, before->expected_reidentifications);
  EXPECT_LT(after->sample_uniques, before->sample_uniques);
}

TEST(GlobalRiskTest, ToStringContainsIndicators) {
  const MicrodataTable t = Figure5Microdata();
  KAnonymityRisk measure;
  RiskContext ctx;
  ctx.k = 2;
  auto report = ComputeGlobalRisk(t, measure, ctx, 0.5);
  ASSERT_TRUE(report.ok());
  const std::string text = report->ToString();
  EXPECT_NE(text.find("tau1"), std::string::npos);
  EXPECT_NE(text.find("sample uniques"), std::string::npos);
}

TEST(InferThresholdTest, QuantileOfRiskDistribution) {
  const MicrodataTable t = Figure1Microdata();
  ReidentificationRisk measure;
  RiskContext ctx;
  // 0.95 quantile of the 20 risks: index 19 -> the maximum (1/30).
  auto top = InferThreshold(t, measure, ctx, 0.95);
  ASSERT_TRUE(top.ok());
  EXPECT_NEAR(*top, 1.0 / 30, 1e-9);
  // Median-ish threshold: about half the tuples end up over it.
  auto median = InferThreshold(t, measure, ctx, 0.5);
  ASSERT_TRUE(median.ok());
  auto risks = measure.ComputeRisks(t, ctx);
  ASSERT_TRUE(risks.ok());
  size_t over = 0;
  for (const double r : *risks) over += r > *median;
  EXPECT_GE(over, 7u);
  EXPECT_LE(over, 11u);
}

TEST(InferThresholdTest, InvalidInputs) {
  const MicrodataTable t = Figure1Microdata();
  ReidentificationRisk measure;
  RiskContext ctx;
  EXPECT_FALSE(InferThreshold(t, measure, ctx, 0.0).ok());
  EXPECT_FALSE(InferThreshold(t, measure, ctx, 1.0).ok());
  MicrodataTable empty("e", {{"A", "", AttributeCategory::kQuasiIdentifier}});
  EXPECT_FALSE(InferThreshold(empty, measure, ctx, 0.9).ok());
}

TEST(InferThresholdTest, DrivesTheCycle) {
  // The paper's "active" behavior with a data-driven T: anonymize the top 5%
  // riskiest tuples of an unbalanced dataset.
  MicrodataTable t =
      GenerateInflationGrowth("thr", 2000, 4, DistributionKind::kVeryUnbalanced, 61);
  ReidentificationRisk measure;
  RiskContext ctx;
  auto threshold = InferThreshold(t, measure, ctx, 0.95);
  ASSERT_TRUE(threshold.ok());
  LocalSuppression anon;
  CycleOptions options;
  options.threshold = *threshold;
  AnonymizationCycle cycle(&measure, &anon, options);
  auto stats = cycle.Run(&t);
  ASSERT_TRUE(stats.ok());
  EXPECT_GT(stats->initial_risky, 0u);
  EXPECT_LE(stats->initial_risky, 2000u / 18);  // ≈ top 5%.
}

TEST(IndividualRiskTest, BenedettiFranconiModeIsStricter) {
  const MicrodataTable t = Figure1Microdata();
  IndividualRisk measure;
  RiskContext simple;
  RiskContext bf;
  bf.benedetti_franconi = true;
  const auto r_simple = measure.ComputeRisks(t, simple);
  const auto r_bf = measure.ComputeRisks(t, bf);
  ASSERT_TRUE(r_simple.ok());
  ASSERT_TRUE(r_bf.ok());
  for (size_t r = 0; r < t.num_rows(); ++r) {
    // Every Fig. 1 tuple is a sample unique: BF > simple.
    EXPECT_GT((*r_bf)[r], (*r_simple)[r]) << "row " << r;
    EXPECT_LE((*r_bf)[r], 1.0);
  }
}

TEST(GlobalRiskTest, EmptyTable) {
  MicrodataTable t("empty", {{"A", "", AttributeCategory::kQuasiIdentifier}});
  KAnonymityRisk measure;
  RiskContext ctx;
  auto report = ComputeGlobalRisk(t, measure, ctx, 0.5);
  ASSERT_TRUE(report.ok());
  EXPECT_DOUBLE_EQ(report->expected_reidentifications, 0.0);
  EXPECT_DOUBLE_EQ(report->global_risk_rate, 0.0);
}

}  // namespace
}  // namespace vadasa::core
