#include "core/rdc.h"

#include <gtest/gtest.h>

#include "core/datagen.h"
#include "core/risk.h"

namespace vadasa::core {
namespace {

TEST(RdcTest, IngestCategorizesAndCatalogs) {
  ResearchDataCenter rdc;
  ASSERT_TRUE(rdc.Ingest(Figure1Microdata()).ok());
  ASSERT_TRUE(rdc.Ingest(Figure5Microdata()).ok());
  EXPECT_EQ(rdc.Catalog(), (std::vector<std::string>{"I&G", "Fig5"}));
  auto table = rdc.Lookup("I&G");
  ASSERT_TRUE(table.ok());
  // Categorization re-derived the weight column.
  EXPECT_EQ((*table)->WeightColumn(), (*table)->ColumnIndex("Weight"));
  EXPECT_EQ(*rdc.dictionary().CategoryOf("I&G", "Id"), AttributeCategory::kIdentifier);
}

TEST(RdcTest, DuplicateIngestFails) {
  ResearchDataCenter rdc;
  ASSERT_TRUE(rdc.Ingest(Figure5Microdata()).ok());
  EXPECT_EQ(rdc.Ingest(Figure5Microdata()).code(), StatusCode::kAlreadyExists);
}

TEST(RdcTest, LookupUnknownFails) {
  ResearchDataCenter rdc;
  EXPECT_FALSE(rdc.Lookup("ghost").ok());
  EXPECT_FALSE(rdc.Release("ghost").ok());
}

TEST(RdcTest, ProcessProducesSafeRelease) {
  RdcPolicy policy;
  policy.k = 2;
  ResearchDataCenter rdc(policy);
  ASSERT_TRUE(rdc.Ingest(Figure5Microdata()).ok());
  auto audit = rdc.Process("Fig5");
  ASSERT_TRUE(audit.ok()) << audit.status().ToString();
  EXPECT_EQ(audit->risk_after.tuples_over_threshold, 0u);
  auto release = rdc.Release("Fig5");
  ASSERT_TRUE(release.ok());
  // The registered original is untouched; the release carries the nulls.
  auto original = rdc.Lookup("Fig5");
  ASSERT_TRUE(original.ok());
  EXPECT_EQ((*original)->CountNullCells(), 0u);
  EXPECT_GT((*release)->CountNullCells(), 0u);
}

TEST(RdcTest, ReleaseBeforeProcessFails) {
  ResearchDataCenter rdc;
  ASSERT_TRUE(rdc.Ingest(Figure5Microdata()).ok());
  EXPECT_EQ(rdc.Release("Fig5").status().code(), StatusCode::kFailedPrecondition);
}

TEST(RdcTest, ProcessAllCoversTheCatalog) {
  RdcPolicy policy;
  policy.risk_measure = "reidentification";
  policy.threshold = 0.05;
  ResearchDataCenter rdc(policy);
  ASSERT_TRUE(rdc.Ingest(Figure1Microdata()).ok());
  ASSERT_TRUE(
      rdc.Ingest(GenerateInflationGrowth("batch", 500, 4,
                                         DistributionKind::kUnbalanced, 53))
          .ok());
  auto audits = rdc.ProcessAll();
  ASSERT_TRUE(audits.ok()) << audits.status().ToString();
  ASSERT_EQ(audits->size(), 2u);
  for (const ReleaseAudit& audit : *audits) {
    EXPECT_EQ(audit.risk_after.tuples_over_threshold, 0u) << audit.microdb;
    EXPECT_EQ(audit.risk_measure, "re-identification");
  }
}

TEST(RdcTest, ExpertExperienceChangesCategorization) {
  ResearchDataCenter rdc;
  rdc.AddExperience("growth", AttributeCategory::kQuasiIdentifier);
  ASSERT_TRUE(rdc.Ingest(Figure1Microdata()).ok());
  EXPECT_EQ(*rdc.dictionary().CategoryOf("I&G", "Growth"),
            AttributeCategory::kQuasiIdentifier);
}

TEST(RdcTest, UnknownMeasureInPolicyFailsAtProcess) {
  RdcPolicy policy;
  policy.risk_measure = "quantum";
  ResearchDataCenter rdc(policy);
  ASSERT_TRUE(rdc.Ingest(Figure5Microdata()).ok());
  EXPECT_FALSE(rdc.Process("Fig5").ok());
}

}  // namespace
}  // namespace vadasa::core
