#include "core/heuristics.h"

#include <gtest/gtest.h>

#include "core/datagen.h"

namespace vadasa::core {
namespace {

TEST(TupleOrderTest, LessSignificantFirstSortsByWeight) {
  const MicrodataTable t = Figure1Microdata();
  // All rows risky; ascending weight => tuple 15 (w=30, index 14) first,
  // tuple 7 (w=300, index 6) last.
  std::vector<size_t> risky;
  std::vector<double> risks(t.num_rows(), 1.0);
  for (size_t r = 0; r < t.num_rows(); ++r) risky.push_back(r);
  const auto order =
      OrderRiskyTuples(t, risky, risks, TupleOrder::kLessSignificantFirst);
  EXPECT_EQ(order.front(), 14u);
  EXPECT_EQ(order.back(), 6u);
}

TEST(TupleOrderTest, MostRiskyFirstSortsByRisk) {
  const MicrodataTable t = Figure1Microdata();
  std::vector<size_t> risky = {0, 1, 2};
  std::vector<double> risks(t.num_rows(), 0.0);
  risks[0] = 0.2;
  risks[1] = 0.9;
  risks[2] = 0.5;
  const auto order = OrderRiskyTuples(t, risky, risks, TupleOrder::kMostRiskyFirst);
  EXPECT_EQ(order, (std::vector<size_t>{1, 2, 0}));
}

TEST(TupleOrderTest, FifoKeepsInputOrder) {
  const MicrodataTable t = Figure1Microdata();
  std::vector<size_t> risky = {5, 2, 9};
  std::vector<double> risks(t.num_rows(), 1.0);
  EXPECT_EQ(OrderRiskyTuples(t, risky, risks, TupleOrder::kFifo), risky);
}

TEST(TupleOrderTest, StableOnTies) {
  const MicrodataTable t = Figure5Microdata();  // No weight column: all 1.0.
  std::vector<size_t> risky = {3, 1, 4};
  std::vector<double> risks(t.num_rows(), 1.0);
  EXPECT_EQ(OrderRiskyTuples(t, risky, risks, TupleOrder::kLessSignificantFirst), risky);
}

TEST(QiChoiceTest, MostRiskyFirstPicksWidestReach) {
  // Section 4.4's example: for tuple 1 of Fig. 5a, suppressing Sector lifts
  // its frequency to 5 — better than Area (1), Employees (1) or Res.Rev (1).
  const MicrodataTable t = Figure5Microdata();
  const auto qis = t.QuasiIdentifierColumns();
  LocalSuppression anon;
  const PatternUniverse universe(t, qis, NullSemantics::kMaybeMatch);
  auto col = ChooseQiColumn(t, qis, 0, QiChoice::kMostRiskyFirst, anon, universe);
  ASSERT_TRUE(col.ok());
  EXPECT_EQ(*col, 2u);  // Sector.
}

TEST(QiChoiceTest, FirstApplicableSkipsNulls) {
  MicrodataTable t = Figure5Microdata();
  t.set_cell(0, 1, Value::Null(1));  // Area already suppressed.
  const auto qis = t.QuasiIdentifierColumns();
  LocalSuppression anon;
  const PatternUniverse universe(t, qis, NullSemantics::kMaybeMatch);
  auto col = ChooseQiColumn(t, qis, 0, QiChoice::kFirstApplicable, anon, universe);
  ASSERT_TRUE(col.ok());
  EXPECT_EQ(*col, 2u);
}

TEST(QiChoiceTest, RarestValue) {
  const MicrodataTable t = Figure5Microdata();
  const auto qis = t.QuasiIdentifierColumns();
  LocalSuppression anon;
  const PatternUniverse universe(t, qis, NullSemantics::kMaybeMatch);
  // Row 0: Roma (x5), Textiles (x1), 1000+ (x5), 0-30 (x5): Textiles rarest.
  auto col = ChooseQiColumn(t, qis, 0, QiChoice::kRarestValue, anon, universe);
  ASSERT_TRUE(col.ok());
  EXPECT_EQ(*col, 2u);
}

TEST(QiChoiceTest, NotFoundWhenNothingApplicable) {
  MicrodataTable t = Figure5Microdata();
  for (const size_t c : t.QuasiIdentifierColumns()) {
    t.set_cell(0, c, Value::Null(c + 1));
  }
  const auto qis = t.QuasiIdentifierColumns();
  LocalSuppression anon;
  const PatternUniverse universe(t, qis, NullSemantics::kMaybeMatch);
  const auto col = ChooseQiColumn(t, qis, 0, QiChoice::kMostRiskyFirst, anon, universe);
  EXPECT_FALSE(col.ok());
  EXPECT_EQ(col.status().code(), StatusCode::kNotFound);
}

TEST(HeuristicsParsingTest, FromStringRoundTrips) {
  EXPECT_EQ(*TupleOrderFromString("less-significant-first"),
            TupleOrder::kLessSignificantFirst);
  EXPECT_EQ(*TupleOrderFromString("most-risky-first"), TupleOrder::kMostRiskyFirst);
  EXPECT_EQ(*TupleOrderFromString("fifo"), TupleOrder::kFifo);
  EXPECT_FALSE(TupleOrderFromString("bogus").ok());
  EXPECT_EQ(*QiChoiceFromString("most-risky-first"), QiChoice::kMostRiskyFirst);
  EXPECT_EQ(*QiChoiceFromString("first-applicable"), QiChoice::kFirstApplicable);
  EXPECT_EQ(*QiChoiceFromString("rarest-value"), QiChoice::kRarestValue);
  EXPECT_FALSE(QiChoiceFromString("bogus").ok());
}

}  // namespace
}  // namespace vadasa::core
