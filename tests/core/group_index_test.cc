#include "core/group_index.h"

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/datagen.h"

namespace vadasa::core {
namespace {

/// The Figure 5a table: 4 QI columns, frequencies 1,2,2,2,2,1,1.
TEST(GroupIndexTest, Figure5FrequenciesBeforeSuppression) {
  const MicrodataTable t = Figure5Microdata();
  const auto qis = t.QuasiIdentifierColumns();
  const GroupStats stats = ComputeGroupStats(t, qis, NullSemantics::kMaybeMatch);
  const std::vector<double> expected = {1, 2, 2, 2, 2, 1, 1};
  for (size_t r = 0; r < expected.size(); ++r) {
    EXPECT_DOUBLE_EQ(stats.frequency[r], expected[r]) << "row " << r;
  }
}

/// Figure 5b: suppressing Sector of tuple 1 lifts its frequency to 5 and
/// tuples 2-5 to 3, under the maybe-match semantics.
TEST(GroupIndexTest, Figure5FrequenciesAfterSuppression) {
  MicrodataTable t = Figure5Microdata();
  t.set_cell(0, 2, Value::Null(1));  // Sector of tuple 1 -> ⊥1.
  const auto qis = t.QuasiIdentifierColumns();
  const GroupStats stats = ComputeGroupStats(t, qis, NullSemantics::kMaybeMatch);
  const std::vector<double> expected = {5, 3, 3, 3, 3, 1, 1};
  for (size_t r = 0; r < expected.size(); ++r) {
    EXPECT_DOUBLE_EQ(stats.frequency[r], expected[r]) << "row " << r;
  }
}

TEST(GroupIndexTest, StandardSemanticsIgnoresWildcards) {
  MicrodataTable t = Figure5Microdata();
  t.set_cell(0, 2, Value::Null(1));
  const auto qis = t.QuasiIdentifierColumns();
  const GroupStats stats = ComputeGroupStats(t, qis, NullSemantics::kStandard);
  // Under the Skolem semantics the suppressed tuple stays alone and nobody
  // else's frequency moves: suppression is useless (Fig. 7c).
  const std::vector<double> expected = {1, 2, 2, 2, 2, 1, 1};
  for (size_t r = 0; r < expected.size(); ++r) {
    EXPECT_DOUBLE_EQ(stats.frequency[r], expected[r]) << "row " << r;
  }
}

TEST(GroupIndexTest, StandardSemanticsSameLabelMatches) {
  MicrodataTable t = Figure5Microdata();
  // Make rows 6 and 7 (identical QIs) both carry ⊥1 in Area.
  t.set_cell(5, 1, Value::Null(1));
  t.set_cell(6, 1, Value::Null(1));
  const auto qis = t.QuasiIdentifierColumns();
  const GroupStats stats = ComputeGroupStats(t, qis, NullSemantics::kStandard);
  EXPECT_DOUBLE_EQ(stats.frequency[5], 2.0);
  EXPECT_DOUBLE_EQ(stats.frequency[6], 2.0);
}

TEST(GroupIndexTest, WeightSumsAggregateMatchingRows) {
  const MicrodataTable t = Figure1Microdata();
  const auto qis = t.QuasiIdentifierColumns();
  const GroupStats stats = ComputeGroupStats(t, qis, NullSemantics::kMaybeMatch);
  // Every Figure-1 tuple has a unique 5-QI combination.
  for (size_t r = 0; r < t.num_rows(); ++r) {
    EXPECT_DOUBLE_EQ(stats.frequency[r], 1.0);
    EXPECT_DOUBLE_EQ(stats.weight_sum[r], t.RowWeight(r));
  }
}

TEST(GroupIndexTest, NullOnNullMatching) {
  MicrodataTable t = Figure5Microdata();
  // Two *different* nulls in the same column of rows that agree elsewhere:
  // they maybe-match each other.
  t.set_cell(5, 1, Value::Null(1));  // Milano -> ⊥1
  t.set_cell(6, 1, Value::Null(2));  // Torino -> ⊥2
  const auto qis = t.QuasiIdentifierColumns();
  const GroupStats stats = ComputeGroupStats(t, qis, NullSemantics::kMaybeMatch);
  EXPECT_DOUBLE_EQ(stats.frequency[5], 2.0);
  EXPECT_DOUBLE_EQ(stats.frequency[6], 2.0);
}

TEST(GroupIndexTest, NullsInDifferentColumns) {
  MicrodataTable t = Figure5Microdata();
  t.set_cell(0, 2, Value::Null(1));  // Row 0: Sector suppressed.
  t.set_cell(1, 1, Value::Null(2));  // Row 1: Area suppressed.
  const auto qis = t.QuasiIdentifierColumns();
  const GroupStats stats = ComputeGroupStats(t, qis, NullSemantics::kMaybeMatch);
  // Row 0 (⊥,Roma-ish...) — wait: row 0 = (Roma, ⊥, 1000+, 0-30); row 1 =
  // (⊥, Commerce, 1000+, 0-30). They maybe-match each other (each null
  // covers the other's difference).
  EXPECT_GE(stats.frequency[0], 5.0);
  EXPECT_GE(stats.frequency[1], 3.0);
}

/// Property: maybe-match group stats computed by the class-projection
/// algorithm must equal the naive O(n²) pairwise definition.
TEST(GroupIndexTest, MatchesNaivePairwiseDefinition) {
  Rng rng(99);
  MicrodataTable t("prop", {{"A", "", AttributeCategory::kQuasiIdentifier},
                            {"B", "", AttributeCategory::kQuasiIdentifier},
                            {"C", "", AttributeCategory::kQuasiIdentifier},
                            {"W", "", AttributeCategory::kWeight}});
  const char* vals[] = {"x", "y", "z"};
  for (int i = 0; i < 120; ++i) {
    auto cell = [&](int) -> Value {
      // ~20% labelled nulls with random labels.
      if (rng.NextDouble() < 0.2) return Value::Null(rng.NextBelow(50));
      return Value::String(vals[rng.NextBelow(3)]);
    };
    ASSERT_TRUE(t.AddRow({cell(0), cell(1), cell(2),
                          Value::Int(rng.NextInt(1, 9))}).ok());
  }
  const auto qis = t.QuasiIdentifierColumns();
  for (const NullSemantics sem : {NullSemantics::kMaybeMatch, NullSemantics::kStandard}) {
    const GroupStats fast = ComputeGroupStats(t, qis, sem);
    for (size_t r = 0; r < t.num_rows(); ++r) {
      double freq = 0.0;
      double wsum = 0.0;
      for (size_t s = 0; s < t.num_rows(); ++s) {
        bool match = true;
        for (const size_t c : qis) {
          const Value& a = t.cell(r, c);
          const Value& b = t.cell(s, c);
          match = sem == NullSemantics::kMaybeMatch ? a.MaybeEquals(b) : a.Equals(b);
          if (!match) break;
        }
        if (match) {
          freq += 1.0;
          wsum += t.RowWeight(s);
        }
      }
      ASSERT_DOUBLE_EQ(fast.frequency[r], freq) << "row " << r;
      ASSERT_DOUBLE_EQ(fast.weight_sum[r], wsum) << "row " << r;
    }
  }
}

/// The monotonicity lemma behind Algorithm 2's convergence (§4.3): under the
/// maybe-match semantics, suppressing ANY cell never decreases ANY row's
/// frequency or weight mass.
TEST(GroupIndexTest, SuppressionIsMonotoneForEveryRow) {
  Rng rng(4242);
  MicrodataTable t("mono", {{"A", "", AttributeCategory::kQuasiIdentifier},
                            {"B", "", AttributeCategory::kQuasiIdentifier},
                            {"C", "", AttributeCategory::kQuasiIdentifier},
                            {"W", "", AttributeCategory::kWeight}});
  const char* vals[] = {"x", "y", "z", "w"};
  for (int i = 0; i < 40; ++i) {
    auto cell = [&]() -> Value {
      if (rng.NextDouble() < 0.15) return Value::Null(rng.NextBelow(30));
      return Value::String(vals[rng.NextBelow(4)]);
    };
    ASSERT_TRUE(t.AddRow({cell(), cell(), cell(), Value::Int(rng.NextInt(1, 9))}).ok());
  }
  const auto qis = t.QuasiIdentifierColumns();
  uint64_t next_label = 1000;
  for (int trial = 0; trial < 25; ++trial) {
    const GroupStats before = ComputeGroupStats(t, qis, NullSemantics::kMaybeMatch);
    // Suppress one random non-null cell.
    const size_t row = rng.NextBelow(t.num_rows());
    const size_t col = qis[rng.NextBelow(qis.size())];
    if (t.cell(row, col).is_null()) continue;
    t.set_cell(row, col, Value::Null(next_label++));
    const GroupStats after = ComputeGroupStats(t, qis, NullSemantics::kMaybeMatch);
    for (size_t r = 0; r < t.num_rows(); ++r) {
      ASSERT_GE(after.frequency[r], before.frequency[r])
          << "trial " << trial << " row " << r;
      ASSERT_GE(after.weight_sum[r] + 1e-9, before.weight_sum[r])
          << "trial " << trial << " row " << r;
    }
  }
}

TEST(GroupIndexTest, CountMatchesWildcardPattern) {
  const MicrodataTable t = Figure5Microdata();
  const auto qis = t.QuasiIdentifierColumns();
  // (Roma, *, 1000+, 0-30) matches rows 0-4.
  const std::vector<Value> pattern = {Value::String("Roma"), Value::Null(0),
                                      Value::String("1000+"), Value::String("0-30")};
  EXPECT_DOUBLE_EQ(CountMatches(t, qis, pattern, NullSemantics::kMaybeMatch), 5.0);
  EXPECT_DOUBLE_EQ(CountMatches(t, qis, pattern, NullSemantics::kStandard), 0.0);
}

TEST(PatternUniverseTest, AgreesWithCountMatches) {
  Rng rng(7);
  MicrodataTable t("u", {{"A", "", AttributeCategory::kQuasiIdentifier},
                         {"B", "", AttributeCategory::kQuasiIdentifier}});
  const char* vals[] = {"p", "q", "r", "s"};
  for (int i = 0; i < 80; ++i) {
    auto cell = [&]() -> Value {
      if (rng.NextDouble() < 0.25) return Value::Null(rng.NextBelow(20));
      return Value::String(vals[rng.NextBelow(4)]);
    };
    ASSERT_TRUE(t.AddRow({cell(), cell()}).ok());
  }
  const auto qis = t.QuasiIdentifierColumns();
  const PatternUniverse universe(t, qis, NullSemantics::kMaybeMatch);
  // Query with every row's own pattern plus synthetic wildcard patterns.
  std::vector<std::vector<Value>> queries;
  for (size_t r = 0; r < t.num_rows(); ++r) {
    queries.push_back({t.cell(r, 0), t.cell(r, 1)});
  }
  queries.push_back({Value::Null(0), Value::String("p")});
  queries.push_back({Value::String("q"), Value::Null(0)});
  queries.push_back({Value::Null(0), Value::Null(0)});
  for (const auto& q : queries) {
    EXPECT_DOUBLE_EQ(universe.Query(q).count,
                     CountMatches(t, qis, q, NullSemantics::kMaybeMatch));
  }
}

TEST(PatternUniverseTest, StandardSemanticsExactLookup) {
  const MicrodataTable t = Figure5Microdata();
  const auto qis = t.QuasiIdentifierColumns();
  const PatternUniverse universe(t, qis, NullSemantics::kStandard);
  const std::vector<Value> roma_commerce = {Value::String("Roma"),
                                            Value::String("Commerce"),
                                            Value::String("1000+"), Value::String("0-30")};
  EXPECT_DOUBLE_EQ(universe.Query(roma_commerce).count, 2.0);
}

TEST(PatternUniverseTest, WeightMass) {
  const MicrodataTable t = Figure1Microdata();
  const auto qis = t.QuasiIdentifierColumns();
  const PatternUniverse universe(t, qis, NullSemantics::kMaybeMatch);
  std::vector<Value> p;
  for (const size_t c : qis) p.push_back(t.cell(3, c));  // Tuple 4.
  EXPECT_DOUBLE_EQ(universe.Query(p).weight, 60.0);
}

/// Randomized oracle test: PatternUniverse::Query must agree with the linear
/// CountMatches scan for arbitrary (wildcard-bearing) patterns under BOTH
/// null semantics.
TEST(PatternUniverseTest, RandomizedQueriesMatchCountMatchesBothSemantics) {
  Rng rng(20260806);
  MicrodataTable t("oracle", {{"A", "", AttributeCategory::kQuasiIdentifier},
                              {"B", "", AttributeCategory::kQuasiIdentifier},
                              {"C", "", AttributeCategory::kQuasiIdentifier},
                              {"W", "", AttributeCategory::kWeight}});
  const char* vals[] = {"u", "v", "w"};
  for (int i = 0; i < 150; ++i) {
    auto cell = [&]() -> Value {
      if (rng.NextDouble() < 0.2) return Value::Null(rng.NextBelow(12));
      return Value::String(vals[rng.NextBelow(3)]);
    };
    ASSERT_TRUE(
        t.AddRow({cell(), cell(), cell(), Value::Int(rng.NextInt(1, 5))}).ok());
  }
  const auto qis = t.QuasiIdentifierColumns();
  for (const NullSemantics sem :
       {NullSemantics::kMaybeMatch, NullSemantics::kStandard}) {
    const PatternUniverse universe(t, qis, sem);
    for (int trial = 0; trial < 200; ++trial) {
      std::vector<Value> q;
      for (size_t c = 0; c < qis.size(); ++c) {
        if (rng.NextDouble() < 0.3) {
          q.push_back(Value::Null(rng.NextBelow(12)));
        } else {
          q.push_back(Value::String(vals[rng.NextBelow(3)]));
        }
      }
      const PatternMass got = universe.Query(q);
      ASSERT_DOUBLE_EQ(got.count, CountMatches(t, qis, q, sem))
          << "semantics " << static_cast<int>(sem) << " trial " << trial;
    }
  }
}

/// Regression for the unguarded `1u << i` shift: more than 32 quasi-
/// identifiers used to shift past the mask width (undefined behavior).
/// kStandard must group such tables correctly; kMaybeMatch is rejected
/// upfront by ValidateQiWidth.
TEST(GroupIndexTest, MoreThan32QuasiIdentifiers) {
  std::vector<Attribute> attrs;
  const size_t kCols = 40;
  for (size_t c = 0; c < kCols; ++c) {
    attrs.push_back({"q" + std::to_string(c), "", AttributeCategory::kQuasiIdentifier});
  }
  MicrodataTable t("wide", attrs);
  // Rows 0 and 1 agree everywhere; row 2 differs only in the LAST column —
  // exactly the column an unguarded 32-bit mask would wrap around on.
  for (int r = 0; r < 3; ++r) {
    std::vector<Value> row;
    for (size_t c = 0; c < kCols; ++c) {
      row.push_back(Value::Int(c == kCols - 1 && r == 2 ? 99 : static_cast<int>(c)));
    }
    ASSERT_TRUE(t.AddRow(std::move(row)).ok());
  }
  const auto qis = t.QuasiIdentifierColumns();
  ASSERT_EQ(qis.size(), kCols);
  EXPECT_TRUE(ValidateQiWidth(qis, NullSemantics::kStandard).ok());
  EXPECT_FALSE(ValidateQiWidth(qis, NullSemantics::kMaybeMatch).ok());

  const GroupStats stats = ComputeGroupStats(t, qis, NullSemantics::kStandard);
  EXPECT_DOUBLE_EQ(stats.frequency[0], 2.0);
  EXPECT_DOUBLE_EQ(stats.frequency[1], 2.0);
  EXPECT_DOUBLE_EQ(stats.frequency[2], 1.0);
}

/// The incremental index must track a from-scratch recomputation through a
/// random sequence of cell suppressions, for both semantics: frequencies
/// exactly, weight sums to FP tolerance, and Query against CountMatches.
TEST(GroupIndexTest, IncrementalUpdateMatchesRebuild) {
  for (const NullSemantics sem :
       {NullSemantics::kMaybeMatch, NullSemantics::kStandard}) {
    Rng rng(555 + static_cast<int>(sem));
    MicrodataTable t("incr", {{"A", "", AttributeCategory::kQuasiIdentifier},
                              {"B", "", AttributeCategory::kQuasiIdentifier},
                              {"C", "", AttributeCategory::kQuasiIdentifier},
                              {"W", "", AttributeCategory::kWeight}});
    const char* vals[] = {"x", "y", "z"};
    for (int i = 0; i < 90; ++i) {
      auto cell = [&]() -> Value {
        if (rng.NextDouble() < 0.1) return Value::Null(rng.NextBelow(40));
        return Value::String(vals[rng.NextBelow(3)]);
      };
      ASSERT_TRUE(
          t.AddRow({cell(), cell(), cell(), Value::Int(rng.NextInt(1, 9))}).ok());
    }
    const auto qis = t.QuasiIdentifierColumns();
    GroupIndex index(t, qis, sem);
    uint64_t next_label = 1000;
    for (int step = 0; step < 30; ++step) {
      // Suppress a small random batch of cells, as one anonymization
      // iteration would.
      std::vector<uint32_t> changed;
      const int batch = 1 + static_cast<int>(rng.NextBelow(3));
      for (int b = 0; b < batch; ++b) {
        const uint32_t row = static_cast<uint32_t>(rng.NextBelow(t.num_rows()));
        const size_t col = qis[rng.NextBelow(qis.size())];
        if (!t.cell(row, col).is_null()) {
          t.set_cell(row, col, Value::Null(next_label++));
        }
        changed.push_back(row);
      }
      index.UpdateRows(t, changed);

      const GroupStats expected = ComputeGroupStats(t, qis, sem);
      const GroupStats& got = index.Stats();
      for (size_t r = 0; r < t.num_rows(); ++r) {
        ASSERT_DOUBLE_EQ(got.frequency[r], expected.frequency[r])
            << "sem " << static_cast<int>(sem) << " step " << step << " row " << r;
        ASSERT_NEAR(got.weight_sum[r], expected.weight_sum[r], 1e-9)
            << "sem " << static_cast<int>(sem) << " step " << step << " row " << r;
      }
      // Spot-check the what-if oracle too.
      for (int probe = 0; probe < 5; ++probe) {
        const size_t r = rng.NextBelow(t.num_rows());
        std::vector<Value> q = {t.cell(r, 0), t.cell(r, 1), t.cell(r, 2)};
        if (rng.NextDouble() < 0.5) q[rng.NextBelow(3)] = Value::Null(0);
        ASSERT_DOUBLE_EQ(index.Query(q).count, CountMatches(t, qis, q, sem))
            << "sem " << static_cast<int>(sem) << " step " << step;
      }
    }
    EXPECT_EQ(index.full_builds(), 1u);
    EXPECT_EQ(index.incremental_updates(), 30u);
  }
}

TEST(RiskEvalCacheTest, MemoDroppedOnRowChange) {
  const MicrodataTable t = Figure5Microdata();
  const auto qis = t.QuasiIdentifierColumns();
  RiskEvalCache cache;
  const uint64_t v0 = cache.version();
  cache.SetMemo("probe", std::make_shared<int>(42));
  ASSERT_NE(cache.Memo("probe"), nullptr);
  (void)cache.Stats(t, qis, NullSemantics::kMaybeMatch);
  EXPECT_EQ(cache.full_builds(), 1u);
  cache.NotifyRowsChanged(t, {0});
  EXPECT_EQ(cache.Memo("probe"), nullptr);
  EXPECT_GT(cache.version(), v0);
  // The index survives the notification (incrementally updated, not rebuilt).
  (void)cache.Stats(t, qis, NullSemantics::kMaybeMatch);
  EXPECT_EQ(cache.full_builds(), 1u);
  EXPECT_EQ(cache.incremental_updates(), 1u);
}

/// A bare QI-only table for the degenerate-input checks below.
MicrodataTable QiOnlyTable(size_t num_qi) {
  std::vector<Attribute> attrs;
  for (size_t i = 0; i < num_qi; ++i) {
    attrs.push_back({"Q" + std::to_string(i), "", AttributeCategory::kQuasiIdentifier});
  }
  return MicrodataTable("degenerate", std::move(attrs));
}

TEST(GroupIndexDegenerateTest, EmptyTable) {
  const MicrodataTable t = QiOnlyTable(2);
  const auto qis = t.QuasiIdentifierColumns();
  for (const auto semantics : {NullSemantics::kMaybeMatch, NullSemantics::kStandard}) {
    const GroupStats stats = ComputeGroupStats(t, qis, semantics);
    EXPECT_TRUE(stats.frequency.empty());
    EXPECT_TRUE(stats.weight_sum.empty());
    GroupIndex index(t, qis, semantics);
    EXPECT_EQ(index.num_rows(), 0u);
    EXPECT_EQ(index.num_patterns(), 0u);
    const PatternMass mass = index.Query({Value::String("a"), Value::Null(1)});
    EXPECT_DOUBLE_EQ(mass.count, 0.0);
    EXPECT_DOUBLE_EQ(mass.weight, 0.0);
  }
}

TEST(GroupIndexDegenerateTest, SingleTuple) {
  MicrodataTable t = QiOnlyTable(3);
  ASSERT_TRUE(t.AddRow({Value::String("a"), Value::Int(1), Value::Null(4)}).ok());
  const auto qis = t.QuasiIdentifierColumns();
  for (const auto semantics : {NullSemantics::kMaybeMatch, NullSemantics::kStandard}) {
    const GroupStats stats = ComputeGroupStats(t, qis, semantics);
    ASSERT_EQ(stats.frequency.size(), 1u);
    EXPECT_DOUBLE_EQ(stats.frequency[0], 1.0);
  }
  const auto classes = ComputeEquivalenceClasses(t, qis);
  EXPECT_EQ(classes.num_classes, 1u);
  EXPECT_EQ(classes.uniques, 1u);
  EXPECT_EQ(classes.max_class_size, 1u);
}

TEST(GroupIndexDegenerateTest, AllSuppressedDistinctLabels) {
  MicrodataTable t = QiOnlyTable(2);
  // Three rows, fully suppressed with pairwise-distinct labels — the
  // post-exhaustion state of record suppression.
  for (uint64_t r = 0; r < 3; ++r) {
    ASSERT_TRUE(t.AddRow({Value::Null(2 * r + 1), Value::Null(2 * r + 2)}).ok());
  }
  const auto qis = t.QuasiIdentifierColumns();
  // Maybe-match: every null is a wildcard, so each row maybe-matches all.
  const GroupStats maybe = ComputeGroupStats(t, qis, NullSemantics::kMaybeMatch);
  for (size_t r = 0; r < 3; ++r) EXPECT_DOUBLE_EQ(maybe.frequency[r], 3.0) << r;
  // Standard: ⊥_i = ⊥_j iff i == j, so every row remains unique.
  const GroupStats standard = ComputeGroupStats(t, qis, NullSemantics::kStandard);
  for (size_t r = 0; r < 3; ++r) EXPECT_DOUBLE_EQ(standard.frequency[r], 1.0) << r;
}

TEST(GroupIndexDegenerateTest, AllSuppressedSharedLabels) {
  MicrodataTable t = QiOnlyTable(2);
  // Identical labelled-null rows group together even under standard
  // semantics — the pattern {⊥1, ⊥2} equals itself.
  for (int r = 0; r < 3; ++r) {
    ASSERT_TRUE(t.AddRow({Value::Null(1), Value::Null(2)}).ok());
  }
  const auto qis = t.QuasiIdentifierColumns();
  for (const auto semantics : {NullSemantics::kMaybeMatch, NullSemantics::kStandard}) {
    const GroupStats stats = ComputeGroupStats(t, qis, semantics);
    for (size_t r = 0; r < 3; ++r) EXPECT_DOUBLE_EQ(stats.frequency[r], 3.0) << r;
  }
}

TEST(GroupIndexDegenerateTest, SingleQiColumn) {
  MicrodataTable t = QiOnlyTable(1);
  for (const char* v : {"a", "a", "b"}) {
    ASSERT_TRUE(t.AddRow({Value::String(v)}).ok());
  }
  const auto qis = t.QuasiIdentifierColumns();
  for (const auto semantics : {NullSemantics::kMaybeMatch, NullSemantics::kStandard}) {
    const GroupStats stats = ComputeGroupStats(t, qis, semantics);
    EXPECT_DOUBLE_EQ(stats.frequency[0], 2.0);
    EXPECT_DOUBLE_EQ(stats.frequency[1], 2.0);
    EXPECT_DOUBLE_EQ(stats.frequency[2], 1.0);
  }
}

TEST(GroupIndexDegenerateTest, DuplicateRowsFormOneGroup) {
  MicrodataTable t = QiOnlyTable(2);
  for (int r = 0; r < 4; ++r) {
    ASSERT_TRUE(t.AddRow({Value::String("x"), Value::Int(9)}).ok());
  }
  const auto qis = t.QuasiIdentifierColumns();
  for (const auto semantics : {NullSemantics::kMaybeMatch, NullSemantics::kStandard}) {
    const GroupStats stats = ComputeGroupStats(t, qis, semantics);
    for (size_t r = 0; r < 4; ++r) EXPECT_DOUBLE_EQ(stats.frequency[r], 4.0) << r;
  }
  GroupIndex index(t, qis, NullSemantics::kMaybeMatch);
  EXPECT_EQ(index.num_patterns(), 1u);
  const auto classes = ComputeEquivalenceClasses(t, qis);
  EXPECT_EQ(classes.num_classes, 1u);
  EXPECT_EQ(classes.uniques, 0u);
  EXPECT_EQ(classes.max_class_size, 4u);
}

}  // namespace
}  // namespace vadasa::core
