#include "core/group_index.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/datagen.h"

namespace vadasa::core {
namespace {

/// The Figure 5a table: 4 QI columns, frequencies 1,2,2,2,2,1,1.
TEST(GroupIndexTest, Figure5FrequenciesBeforeSuppression) {
  const MicrodataTable t = Figure5Microdata();
  const auto qis = t.QuasiIdentifierColumns();
  const GroupStats stats = ComputeGroupStats(t, qis, NullSemantics::kMaybeMatch);
  const std::vector<double> expected = {1, 2, 2, 2, 2, 1, 1};
  for (size_t r = 0; r < expected.size(); ++r) {
    EXPECT_DOUBLE_EQ(stats.frequency[r], expected[r]) << "row " << r;
  }
}

/// Figure 5b: suppressing Sector of tuple 1 lifts its frequency to 5 and
/// tuples 2-5 to 3, under the maybe-match semantics.
TEST(GroupIndexTest, Figure5FrequenciesAfterSuppression) {
  MicrodataTable t = Figure5Microdata();
  t.set_cell(0, 2, Value::Null(1));  // Sector of tuple 1 -> ⊥1.
  const auto qis = t.QuasiIdentifierColumns();
  const GroupStats stats = ComputeGroupStats(t, qis, NullSemantics::kMaybeMatch);
  const std::vector<double> expected = {5, 3, 3, 3, 3, 1, 1};
  for (size_t r = 0; r < expected.size(); ++r) {
    EXPECT_DOUBLE_EQ(stats.frequency[r], expected[r]) << "row " << r;
  }
}

TEST(GroupIndexTest, StandardSemanticsIgnoresWildcards) {
  MicrodataTable t = Figure5Microdata();
  t.set_cell(0, 2, Value::Null(1));
  const auto qis = t.QuasiIdentifierColumns();
  const GroupStats stats = ComputeGroupStats(t, qis, NullSemantics::kStandard);
  // Under the Skolem semantics the suppressed tuple stays alone and nobody
  // else's frequency moves: suppression is useless (Fig. 7c).
  const std::vector<double> expected = {1, 2, 2, 2, 2, 1, 1};
  for (size_t r = 0; r < expected.size(); ++r) {
    EXPECT_DOUBLE_EQ(stats.frequency[r], expected[r]) << "row " << r;
  }
}

TEST(GroupIndexTest, StandardSemanticsSameLabelMatches) {
  MicrodataTable t = Figure5Microdata();
  // Make rows 6 and 7 (identical QIs) both carry ⊥1 in Area.
  t.set_cell(5, 1, Value::Null(1));
  t.set_cell(6, 1, Value::Null(1));
  const auto qis = t.QuasiIdentifierColumns();
  const GroupStats stats = ComputeGroupStats(t, qis, NullSemantics::kStandard);
  EXPECT_DOUBLE_EQ(stats.frequency[5], 2.0);
  EXPECT_DOUBLE_EQ(stats.frequency[6], 2.0);
}

TEST(GroupIndexTest, WeightSumsAggregateMatchingRows) {
  const MicrodataTable t = Figure1Microdata();
  const auto qis = t.QuasiIdentifierColumns();
  const GroupStats stats = ComputeGroupStats(t, qis, NullSemantics::kMaybeMatch);
  // Every Figure-1 tuple has a unique 5-QI combination.
  for (size_t r = 0; r < t.num_rows(); ++r) {
    EXPECT_DOUBLE_EQ(stats.frequency[r], 1.0);
    EXPECT_DOUBLE_EQ(stats.weight_sum[r], t.RowWeight(r));
  }
}

TEST(GroupIndexTest, NullOnNullMatching) {
  MicrodataTable t = Figure5Microdata();
  // Two *different* nulls in the same column of rows that agree elsewhere:
  // they maybe-match each other.
  t.set_cell(5, 1, Value::Null(1));  // Milano -> ⊥1
  t.set_cell(6, 1, Value::Null(2));  // Torino -> ⊥2
  const auto qis = t.QuasiIdentifierColumns();
  const GroupStats stats = ComputeGroupStats(t, qis, NullSemantics::kMaybeMatch);
  EXPECT_DOUBLE_EQ(stats.frequency[5], 2.0);
  EXPECT_DOUBLE_EQ(stats.frequency[6], 2.0);
}

TEST(GroupIndexTest, NullsInDifferentColumns) {
  MicrodataTable t = Figure5Microdata();
  t.set_cell(0, 2, Value::Null(1));  // Row 0: Sector suppressed.
  t.set_cell(1, 1, Value::Null(2));  // Row 1: Area suppressed.
  const auto qis = t.QuasiIdentifierColumns();
  const GroupStats stats = ComputeGroupStats(t, qis, NullSemantics::kMaybeMatch);
  // Row 0 (⊥,Roma-ish...) — wait: row 0 = (Roma, ⊥, 1000+, 0-30); row 1 =
  // (⊥, Commerce, 1000+, 0-30). They maybe-match each other (each null
  // covers the other's difference).
  EXPECT_GE(stats.frequency[0], 5.0);
  EXPECT_GE(stats.frequency[1], 3.0);
}

/// Property: maybe-match group stats computed by the class-projection
/// algorithm must equal the naive O(n²) pairwise definition.
TEST(GroupIndexTest, MatchesNaivePairwiseDefinition) {
  Rng rng(99);
  MicrodataTable t("prop", {{"A", "", AttributeCategory::kQuasiIdentifier},
                            {"B", "", AttributeCategory::kQuasiIdentifier},
                            {"C", "", AttributeCategory::kQuasiIdentifier},
                            {"W", "", AttributeCategory::kWeight}});
  const char* vals[] = {"x", "y", "z"};
  for (int i = 0; i < 120; ++i) {
    auto cell = [&](int) -> Value {
      // ~20% labelled nulls with random labels.
      if (rng.NextDouble() < 0.2) return Value::Null(rng.NextBelow(50));
      return Value::String(vals[rng.NextBelow(3)]);
    };
    ASSERT_TRUE(t.AddRow({cell(0), cell(1), cell(2),
                          Value::Int(rng.NextInt(1, 9))}).ok());
  }
  const auto qis = t.QuasiIdentifierColumns();
  for (const NullSemantics sem : {NullSemantics::kMaybeMatch, NullSemantics::kStandard}) {
    const GroupStats fast = ComputeGroupStats(t, qis, sem);
    for (size_t r = 0; r < t.num_rows(); ++r) {
      double freq = 0.0;
      double wsum = 0.0;
      for (size_t s = 0; s < t.num_rows(); ++s) {
        bool match = true;
        for (const size_t c : qis) {
          const Value& a = t.cell(r, c);
          const Value& b = t.cell(s, c);
          match = sem == NullSemantics::kMaybeMatch ? a.MaybeEquals(b) : a.Equals(b);
          if (!match) break;
        }
        if (match) {
          freq += 1.0;
          wsum += t.RowWeight(s);
        }
      }
      ASSERT_DOUBLE_EQ(fast.frequency[r], freq) << "row " << r;
      ASSERT_DOUBLE_EQ(fast.weight_sum[r], wsum) << "row " << r;
    }
  }
}

/// The monotonicity lemma behind Algorithm 2's convergence (§4.3): under the
/// maybe-match semantics, suppressing ANY cell never decreases ANY row's
/// frequency or weight mass.
TEST(GroupIndexTest, SuppressionIsMonotoneForEveryRow) {
  Rng rng(4242);
  MicrodataTable t("mono", {{"A", "", AttributeCategory::kQuasiIdentifier},
                            {"B", "", AttributeCategory::kQuasiIdentifier},
                            {"C", "", AttributeCategory::kQuasiIdentifier},
                            {"W", "", AttributeCategory::kWeight}});
  const char* vals[] = {"x", "y", "z", "w"};
  for (int i = 0; i < 40; ++i) {
    auto cell = [&]() -> Value {
      if (rng.NextDouble() < 0.15) return Value::Null(rng.NextBelow(30));
      return Value::String(vals[rng.NextBelow(4)]);
    };
    ASSERT_TRUE(t.AddRow({cell(), cell(), cell(), Value::Int(rng.NextInt(1, 9))}).ok());
  }
  const auto qis = t.QuasiIdentifierColumns();
  uint64_t next_label = 1000;
  for (int trial = 0; trial < 25; ++trial) {
    const GroupStats before = ComputeGroupStats(t, qis, NullSemantics::kMaybeMatch);
    // Suppress one random non-null cell.
    const size_t row = rng.NextBelow(t.num_rows());
    const size_t col = qis[rng.NextBelow(qis.size())];
    if (t.cell(row, col).is_null()) continue;
    t.set_cell(row, col, Value::Null(next_label++));
    const GroupStats after = ComputeGroupStats(t, qis, NullSemantics::kMaybeMatch);
    for (size_t r = 0; r < t.num_rows(); ++r) {
      ASSERT_GE(after.frequency[r], before.frequency[r])
          << "trial " << trial << " row " << r;
      ASSERT_GE(after.weight_sum[r] + 1e-9, before.weight_sum[r])
          << "trial " << trial << " row " << r;
    }
  }
}

TEST(GroupIndexTest, CountMatchesWildcardPattern) {
  const MicrodataTable t = Figure5Microdata();
  const auto qis = t.QuasiIdentifierColumns();
  // (Roma, *, 1000+, 0-30) matches rows 0-4.
  const std::vector<Value> pattern = {Value::String("Roma"), Value::Null(0),
                                      Value::String("1000+"), Value::String("0-30")};
  EXPECT_DOUBLE_EQ(CountMatches(t, qis, pattern, NullSemantics::kMaybeMatch), 5.0);
  EXPECT_DOUBLE_EQ(CountMatches(t, qis, pattern, NullSemantics::kStandard), 0.0);
}

TEST(PatternUniverseTest, AgreesWithCountMatches) {
  Rng rng(7);
  MicrodataTable t("u", {{"A", "", AttributeCategory::kQuasiIdentifier},
                         {"B", "", AttributeCategory::kQuasiIdentifier}});
  const char* vals[] = {"p", "q", "r", "s"};
  for (int i = 0; i < 80; ++i) {
    auto cell = [&]() -> Value {
      if (rng.NextDouble() < 0.25) return Value::Null(rng.NextBelow(20));
      return Value::String(vals[rng.NextBelow(4)]);
    };
    ASSERT_TRUE(t.AddRow({cell(), cell()}).ok());
  }
  const auto qis = t.QuasiIdentifierColumns();
  const PatternUniverse universe(t, qis, NullSemantics::kMaybeMatch);
  // Query with every row's own pattern plus synthetic wildcard patterns.
  std::vector<std::vector<Value>> queries;
  for (size_t r = 0; r < t.num_rows(); ++r) {
    queries.push_back({t.cell(r, 0), t.cell(r, 1)});
  }
  queries.push_back({Value::Null(0), Value::String("p")});
  queries.push_back({Value::String("q"), Value::Null(0)});
  queries.push_back({Value::Null(0), Value::Null(0)});
  for (const auto& q : queries) {
    EXPECT_DOUBLE_EQ(universe.Query(q).count,
                     CountMatches(t, qis, q, NullSemantics::kMaybeMatch));
  }
}

TEST(PatternUniverseTest, StandardSemanticsExactLookup) {
  const MicrodataTable t = Figure5Microdata();
  const auto qis = t.QuasiIdentifierColumns();
  const PatternUniverse universe(t, qis, NullSemantics::kStandard);
  const std::vector<Value> roma_commerce = {Value::String("Roma"),
                                            Value::String("Commerce"),
                                            Value::String("1000+"), Value::String("0-30")};
  EXPECT_DOUBLE_EQ(universe.Query(roma_commerce).count, 2.0);
}

TEST(PatternUniverseTest, WeightMass) {
  const MicrodataTable t = Figure1Microdata();
  const auto qis = t.QuasiIdentifierColumns();
  const PatternUniverse universe(t, qis, NullSemantics::kMaybeMatch);
  std::vector<Value> p;
  for (const size_t c : qis) p.push_back(t.cell(3, c));  // Tuple 4.
  EXPECT_DOUBLE_EQ(universe.Query(p).weight, 60.0);
}

}  // namespace
}  // namespace vadasa::core
