#include "core/hierarchy.h"

#include <gtest/gtest.h>

#include "core/anonymize.h"
#include "core/datagen.h"

namespace vadasa::core {
namespace {

TEST(HierarchyTest, ItalianGeographyRollUps) {
  const Hierarchy h = Hierarchy::ItalianGeography();
  Hierarchy with_attr = h;
  with_attr.SetAttributeType("Area", "City");
  auto up = with_attr.Generalize("Area", Value::String("Milano"));
  ASSERT_TRUE(up.ok());
  EXPECT_EQ(up->as_string(), "North");
  up = with_attr.Generalize("Area", Value::String("Roma"));
  ASSERT_TRUE(up.ok());
  EXPECT_EQ(up->as_string(), "Center");
}

TEST(HierarchyTest, ClimbsMultipleLevels) {
  Hierarchy h = Hierarchy::ItalianGeography();
  h.SetAttributeType("Area", "City");
  // Milano -> North -> Italy.
  auto north = h.Generalize("Area", Value::String("Milano"));
  ASSERT_TRUE(north.ok());
  auto italy = h.Generalize("Area", *north);
  ASSERT_TRUE(italy.ok());
  EXPECT_EQ(italy->as_string(), "Italy");
  // Italy is the top: no further roll-up.
  EXPECT_FALSE(h.Generalize("Area", *italy).ok());
}

TEST(HierarchyTest, GeneralizationHeight) {
  Hierarchy h = Hierarchy::ItalianGeography();
  h.SetAttributeType("Area", "City");
  EXPECT_EQ(h.GeneralizationHeight("Area", Value::String("Torino")), 2);
  EXPECT_EQ(h.GeneralizationHeight("Area", Value::String("North")), 1);
  EXPECT_EQ(h.GeneralizationHeight("Area", Value::String("Italy")), 0);
}

TEST(HierarchyTest, UndeclaredAttributeFails) {
  const Hierarchy h = Hierarchy::ItalianGeography();
  const auto r = h.Generalize("Sector", Value::String("Milano"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(HierarchyTest, MissingParentFails) {
  Hierarchy h;
  h.SetAttributeType("Area", "City");
  h.AddSubType("City", "Region");
  h.AddInstance(Value::String("Atlantis"), "City");
  EXPECT_FALSE(h.CanGeneralize("Area", Value::String("Atlantis")));
}

TEST(HierarchyTest, ParentMustBelongToSupertype) {
  // The Algorithm-8 join requires TypeOf(Z, Y): a parent outside the declared
  // supertype is rejected.
  Hierarchy h;
  h.SetAttributeType("Area", "City");
  h.AddSubType("City", "Region");
  h.AddInstance(Value::String("Milano"), "City");
  h.AddInstance(Value::String("Lombardia"), "Province");  // Wrong level.
  h.AddIsA(Value::String("Milano"), Value::String("Lombardia"));
  EXPECT_FALSE(h.CanGeneralize("Area", Value::String("Milano")));
}

TEST(HierarchyTest, IntervalHierarchyClimbsLevels) {
  Hierarchy h;
  h.AddIntervalHierarchy("Residential Rev.", {"0-30", "30-60", "60-90", "90+"});
  auto up = h.Generalize("Residential Rev.", Value::String("0-30"));
  ASSERT_TRUE(up.ok());
  EXPECT_EQ(up->as_string(), "0-30|30-60");
  up = h.Generalize("Residential Rev.", Value::String("90+"));
  ASSERT_TRUE(up.ok());
  EXPECT_EQ(up->as_string(), "60-90|90+");
  // Second level: the single top band.
  auto top = h.Generalize("Residential Rev.", Value::String("0-30|30-60"));
  ASSERT_TRUE(top.ok());
  EXPECT_EQ(top->as_string(), "0-30|30-60|60-90|90+");
  EXPECT_FALSE(h.CanGeneralize("Residential Rev.", *top));
  EXPECT_EQ(h.GeneralizationHeight("Residential Rev.", Value::String("0-30")), 2);
}

TEST(HierarchyTest, IntervalHierarchyOddBandCount) {
  Hierarchy h;
  h.AddIntervalHierarchy("Employees", {"50-200", "201-1000", "1000+"});
  // The lone band carries to the next level unchanged and merges there.
  auto up = h.Generalize("Employees", Value::String("1000+"));
  ASSERT_TRUE(up.ok());
  EXPECT_EQ(up->as_string(), "50-200|201-1000|1000+");
  EXPECT_EQ(h.GeneralizationHeight("Employees", Value::String("1000+")), 1);
  EXPECT_EQ(h.GeneralizationHeight("Employees", Value::String("50-200")), 2);
}

TEST(HierarchyTest, SharedBandLabelsStayIndependent) {
  // Both revenue attributes use the label "0-30"; type-scoped roll-ups keep
  // their hierarchies from interfering.
  Hierarchy h;
  h.AddIntervalHierarchy("Residential Rev.", {"0-30", "30-60", "60-90", "90+"});
  h.AddIntervalHierarchy("Export Rev.", {"0-30", "90+"});
  auto res = h.Generalize("Residential Rev.", Value::String("0-30"));
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->as_string(), "0-30|30-60");
  auto exp = h.Generalize("Export Rev.", Value::String("0-30"));
  ASSERT_TRUE(exp.ok());
  EXPECT_EQ(exp->as_string(), "0-30|90+");
}

TEST(HierarchyTest, IntervalHierarchyWithGlobalRecoding) {
  MicrodataTable t = Figure5Microdata();
  Hierarchy h;
  h.AddIntervalHierarchy("Employees", {"0-200", "1000+"});
  GlobalRecoding anon(&h);
  ASSERT_TRUE(anon.CanApply(t, 0, 3));
  auto step = anon.Apply(&t, 0, 3);  // 1000+ -> 0-200|1000+ on rows 0-4.
  ASSERT_TRUE(step.ok());
  EXPECT_EQ(step->affected_rows, 5u);
  EXPECT_EQ(t.cell(0, 3).as_string(), "0-200|1000+");
}

TEST(HierarchyTest, CustomNumericHierarchy) {
  Hierarchy h;
  h.SetAttributeType("Employees", "Band");
  h.AddSubType("Band", "CoarseBand");
  for (const char* band : {"50-200", "201-1000", "1000+"}) {
    h.AddInstance(Value::String(band), "Band");
  }
  h.AddInstance(Value::String("any"), "CoarseBand");
  h.AddIsA(Value::String("50-200"), Value::String("any"));
  h.AddIsA(Value::String("201-1000"), Value::String("any"));
  h.AddIsA(Value::String("1000+"), Value::String("any"));
  auto up = h.Generalize("Employees", Value::String("201-1000"));
  ASSERT_TRUE(up.ok());
  EXPECT_EQ(up->as_string(), "any");
}

}  // namespace
}  // namespace vadasa::core
