#include "core/linkage.h"

#include <gtest/gtest.h>

#include "core/anonymize.h"
#include "core/cycle.h"
#include "core/risk.h"

namespace vadasa::core {
namespace {

struct Fixture {
  IdentityOracle oracle;
  IdentityOracle::Sample sample;
};

Fixture MakeFixture() {
  IdentityOracle::Options options;
  options.population = 5000;
  options.num_qi = 4;
  options.distribution = DistributionKind::kUnbalanced;
  options.seed = 77;
  Fixture f{IdentityOracle::Generate(options), {}};
  f.sample = f.oracle.SampleMicrodata(400, 11).value();
  return f;
}

TEST(LinkageTest, FullKnowledgeBaseline) {
  const Fixture f = MakeFixture();
  LinkageConfig config;
  auto result = RunLinkage(f.sample.table, f.oracle, f.sample.truth, config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->attempted, 400u);
  EXPECT_GT(result->claimed, 0u);
  EXPECT_GT(result->correct, 0u);
  EXPECT_GT(result->avg_block_size, 0.0);
  EXPECT_GE(result->precision, result->recall);
}

TEST(LinkageTest, MoreKnowledgeMeansSmallerBlocks) {
  const Fixture f = MakeFixture();
  auto sweep = SweepAttackerKnowledge(f.sample.table, f.oracle, f.sample.truth, 3);
  ASSERT_TRUE(sweep.ok());
  ASSERT_EQ(sweep->size(), 4u);
  for (size_t i = 1; i < sweep->size(); ++i) {
    EXPECT_LE((*sweep)[i].avg_block_size, (*sweep)[i - 1].avg_block_size)
        << "knowledge level " << i + 1;
  }
  // Re-identification power grows with knowledge (the §2.2 upper-bound
  // argument: full-QI knowledge is the worst case).
  EXPECT_GE(sweep->back().correct, sweep->front().correct);
}

TEST(LinkageTest, BlockingPlusScoringSplit) {
  const Fixture f = MakeFixture();
  LinkageConfig config;
  config.known_qis = 4;
  config.blocking_positions = {0, 1};  // Block on two QIs, score on the rest.
  config.claim_threshold = 1.0;        // Claim only perfect agreement.
  auto result = RunLinkage(f.sample.table, f.oracle, f.sample.truth, config);
  ASSERT_TRUE(result.ok());
  // Perfect-score claims match the pure-blocking cohort of all 4 QIs, so
  // precision equals the expected 1/|full block| average — above random.
  EXPECT_GT(result->claimed, 0u);
  EXPECT_GT(result->precision, 0.0);
  // Blocking on fewer attributes yields larger cohorts than full blocking.
  LinkageConfig full;
  full.known_qis = 4;
  auto full_result = RunLinkage(f.sample.table, f.oracle, f.sample.truth, full);
  ASSERT_TRUE(full_result.ok());
  EXPECT_GT(result->avg_block_size, full_result->avg_block_size);
}

TEST(LinkageTest, InvalidBlockingPositionFails) {
  const Fixture f = MakeFixture();
  LinkageConfig config;
  config.known_qis = 2;
  config.blocking_positions = {3};  // Beyond the attacker's knowledge.
  EXPECT_FALSE(RunLinkage(f.sample.table, f.oracle, f.sample.truth, config).ok());
}

TEST(LinkageTest, AnonymizationDropsLinkagePower) {
  const Fixture f = MakeFixture();
  LinkageConfig config;
  auto before = RunLinkage(f.sample.table, f.oracle, f.sample.truth, config);
  ASSERT_TRUE(before.ok());
  MicrodataTable anonymized = f.sample.table;
  KAnonymityRisk risk;
  LocalSuppression anon;
  CycleOptions options;
  options.risk.k = 3;
  AnonymizationCycle cycle(&risk, &anon, options);
  ASSERT_TRUE(cycle.Run(&anonymized).ok());
  auto after = RunLinkage(anonymized, f.oracle, f.sample.truth, config);
  ASSERT_TRUE(after.ok());
  EXPECT_LE(after->correct, before->correct);
  EXPECT_GE(after->avg_block_size, before->avg_block_size);
}

TEST(LinkageTest, ResultToString) {
  LinkageResult r;
  r.attempted = 5;
  r.claimed = 3;
  r.correct = 2;
  const std::string text = r.ToString();
  EXPECT_NE(text.find("claimed=3"), std::string::npos);
  EXPECT_NE(text.find("correct=2"), std::string::npos);
}

TEST(EquivalenceClassTest, Figure5Partition) {
  const MicrodataTable t = Figure5Microdata();
  const auto stats = ComputeEquivalenceClasses(t, t.QuasiIdentifierColumns());
  // Classes: {1}, {2,3}, {4,5}, {6}, {7} -> 5 classes, 3 uniques.
  EXPECT_EQ(stats.num_classes, 5u);
  EXPECT_EQ(stats.uniques, 3u);
  EXPECT_EQ(stats.min_class_size, 1u);
  EXPECT_EQ(stats.max_class_size, 2u);
  EXPECT_NEAR(stats.mean_class_size, 7.0 / 5, 1e-12);
  EXPECT_EQ(stats.histogram[0], 3u);
  EXPECT_EQ(stats.histogram[1], 2u);
}

TEST(EquivalenceClassTest, EmptyTable) {
  MicrodataTable t("e", {{"A", "", AttributeCategory::kQuasiIdentifier}});
  const auto stats = ComputeEquivalenceClasses(t, t.QuasiIdentifierColumns());
  EXPECT_EQ(stats.num_classes, 0u);
  EXPECT_EQ(stats.uniques, 0u);
}

TEST(EquivalenceClassTest, SingleQiColumnWithDuplicates) {
  MicrodataTable t("d", {{"A", "", AttributeCategory::kQuasiIdentifier}});
  for (const char* v : {"x", "x", "x", "y"}) {
    ASSERT_TRUE(t.AddRow({Value::String(v)}).ok());
  }
  const auto stats = ComputeEquivalenceClasses(t, t.QuasiIdentifierColumns());
  EXPECT_EQ(stats.num_classes, 2u);
  EXPECT_EQ(stats.uniques, 1u);
  EXPECT_EQ(stats.max_class_size, 3u);
  EXPECT_NEAR(stats.mean_class_size, 2.0, 1e-12);
}

/// Small population for the degenerate-release checks: cheap to generate but
/// large enough that a blind guess almost never hits.
IdentityOracle TinyOracle() {
  IdentityOracle::Options options;
  options.population = 300;
  options.num_qi = 3;
  options.seed = 5;
  return IdentityOracle::Generate(options);
}

TEST(LinkageDegenerateTest, EmptyRelease) {
  const IdentityOracle oracle = TinyOracle();
  std::vector<Attribute> attrs;
  for (int i = 0; i < 3; ++i) {
    attrs.push_back({"Q" + std::to_string(i), "", AttributeCategory::kQuasiIdentifier});
  }
  const MicrodataTable released("release", std::move(attrs));
  const auto result = RunLinkage(released, oracle, {}, LinkageConfig{});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->attempted, 0u);
  EXPECT_EQ(result->claimed, 0u);
  // No attempts and no claims must not divide by zero.
  EXPECT_DOUBLE_EQ(result->precision, 0.0);
  EXPECT_DOUBLE_EQ(result->recall, 0.0);
  EXPECT_DOUBLE_EQ(result->avg_block_size, 0.0);
}

TEST(LinkageDegenerateTest, SingleTuple) {
  const IdentityOracle oracle = TinyOracle();
  const auto sample = oracle.SampleMicrodata(1, 9);
  ASSERT_TRUE(sample.ok());
  const auto result = RunLinkage(sample->table, oracle, sample->truth, LinkageConfig{});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->attempted, 1u);
  EXPECT_LE(result->claimed, 1u);
  EXPECT_LE(result->correct, result->claimed);
  EXPECT_GE(result->recall, 0.0);
  EXPECT_LE(result->recall, 1.0);
  EXPECT_GE(result->avg_block_size, 1.0);
}

TEST(LinkageDegenerateTest, AllSuppressedRelease) {
  const IdentityOracle oracle = TinyOracle();
  const auto sample = oracle.SampleMicrodata(20, 9);
  ASSERT_TRUE(sample.ok());
  MicrodataTable released = sample->table;
  uint64_t label = 0;
  for (size_t r = 0; r < released.num_rows(); ++r) {
    for (const size_t c : released.QuasiIdentifierColumns()) {
      released.set_cell(r, c, Value::Null(++label));
    }
  }
  // Demand a perfect matching score before claiming: a fully suppressed
  // release gives the attacker nothing to score against, so the whole
  // population stays in every block.
  LinkageConfig config;
  config.claim_threshold = 1.0;
  config.blocking_positions = {0};
  const auto result = RunLinkage(released, oracle, sample->truth, config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->attempted, 20u);
  EXPECT_DOUBLE_EQ(result->avg_block_size, static_cast<double>(oracle.size()));
  EXPECT_GE(result->precision, 0.0);
  EXPECT_LE(result->precision, 1.0);
}

TEST(LinkageDegenerateTest, KnownQisBeyondReleaseClamps) {
  const IdentityOracle oracle = TinyOracle();
  const auto sample = oracle.SampleMicrodata(5, 9);
  ASSERT_TRUE(sample.ok());
  LinkageConfig config;
  config.known_qis = 99;  // More knowledge than QIs exist: clamp, not crash.
  const auto result = RunLinkage(sample->table, oracle, sample->truth, config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->attempted, 5u);
}

}  // namespace
}  // namespace vadasa::core
