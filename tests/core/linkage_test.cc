#include "core/linkage.h"

#include <gtest/gtest.h>

#include "core/anonymize.h"
#include "core/cycle.h"
#include "core/risk.h"

namespace vadasa::core {
namespace {

struct Fixture {
  IdentityOracle oracle;
  IdentityOracle::Sample sample;
};

Fixture MakeFixture() {
  IdentityOracle::Options options;
  options.population = 5000;
  options.num_qi = 4;
  options.distribution = DistributionKind::kUnbalanced;
  options.seed = 77;
  Fixture f{IdentityOracle::Generate(options), {}};
  f.sample = f.oracle.SampleMicrodata(400, 11).value();
  return f;
}

TEST(LinkageTest, FullKnowledgeBaseline) {
  const Fixture f = MakeFixture();
  LinkageConfig config;
  auto result = RunLinkage(f.sample.table, f.oracle, f.sample.truth, config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->attempted, 400u);
  EXPECT_GT(result->claimed, 0u);
  EXPECT_GT(result->correct, 0u);
  EXPECT_GT(result->avg_block_size, 0.0);
  EXPECT_GE(result->precision, result->recall);
}

TEST(LinkageTest, MoreKnowledgeMeansSmallerBlocks) {
  const Fixture f = MakeFixture();
  auto sweep = SweepAttackerKnowledge(f.sample.table, f.oracle, f.sample.truth, 3);
  ASSERT_TRUE(sweep.ok());
  ASSERT_EQ(sweep->size(), 4u);
  for (size_t i = 1; i < sweep->size(); ++i) {
    EXPECT_LE((*sweep)[i].avg_block_size, (*sweep)[i - 1].avg_block_size)
        << "knowledge level " << i + 1;
  }
  // Re-identification power grows with knowledge (the §2.2 upper-bound
  // argument: full-QI knowledge is the worst case).
  EXPECT_GE(sweep->back().correct, sweep->front().correct);
}

TEST(LinkageTest, BlockingPlusScoringSplit) {
  const Fixture f = MakeFixture();
  LinkageConfig config;
  config.known_qis = 4;
  config.blocking_positions = {0, 1};  // Block on two QIs, score on the rest.
  config.claim_threshold = 1.0;        // Claim only perfect agreement.
  auto result = RunLinkage(f.sample.table, f.oracle, f.sample.truth, config);
  ASSERT_TRUE(result.ok());
  // Perfect-score claims match the pure-blocking cohort of all 4 QIs, so
  // precision equals the expected 1/|full block| average — above random.
  EXPECT_GT(result->claimed, 0u);
  EXPECT_GT(result->precision, 0.0);
  // Blocking on fewer attributes yields larger cohorts than full blocking.
  LinkageConfig full;
  full.known_qis = 4;
  auto full_result = RunLinkage(f.sample.table, f.oracle, f.sample.truth, full);
  ASSERT_TRUE(full_result.ok());
  EXPECT_GT(result->avg_block_size, full_result->avg_block_size);
}

TEST(LinkageTest, InvalidBlockingPositionFails) {
  const Fixture f = MakeFixture();
  LinkageConfig config;
  config.known_qis = 2;
  config.blocking_positions = {3};  // Beyond the attacker's knowledge.
  EXPECT_FALSE(RunLinkage(f.sample.table, f.oracle, f.sample.truth, config).ok());
}

TEST(LinkageTest, AnonymizationDropsLinkagePower) {
  const Fixture f = MakeFixture();
  LinkageConfig config;
  auto before = RunLinkage(f.sample.table, f.oracle, f.sample.truth, config);
  ASSERT_TRUE(before.ok());
  MicrodataTable anonymized = f.sample.table;
  KAnonymityRisk risk;
  LocalSuppression anon;
  CycleOptions options;
  options.risk.k = 3;
  AnonymizationCycle cycle(&risk, &anon, options);
  ASSERT_TRUE(cycle.Run(&anonymized).ok());
  auto after = RunLinkage(anonymized, f.oracle, f.sample.truth, config);
  ASSERT_TRUE(after.ok());
  EXPECT_LE(after->correct, before->correct);
  EXPECT_GE(after->avg_block_size, before->avg_block_size);
}

TEST(LinkageTest, ResultToString) {
  LinkageResult r;
  r.attempted = 5;
  r.claimed = 3;
  r.correct = 2;
  const std::string text = r.ToString();
  EXPECT_NE(text.find("claimed=3"), std::string::npos);
  EXPECT_NE(text.find("correct=2"), std::string::npos);
}

TEST(EquivalenceClassTest, Figure5Partition) {
  const MicrodataTable t = Figure5Microdata();
  const auto stats = ComputeEquivalenceClasses(t, t.QuasiIdentifierColumns());
  // Classes: {1}, {2,3}, {4,5}, {6}, {7} -> 5 classes, 3 uniques.
  EXPECT_EQ(stats.num_classes, 5u);
  EXPECT_EQ(stats.uniques, 3u);
  EXPECT_EQ(stats.min_class_size, 1u);
  EXPECT_EQ(stats.max_class_size, 2u);
  EXPECT_NEAR(stats.mean_class_size, 7.0 / 5, 1e-12);
  EXPECT_EQ(stats.histogram[0], 3u);
  EXPECT_EQ(stats.histogram[1], 2u);
}

TEST(EquivalenceClassTest, EmptyTable) {
  MicrodataTable t("e", {{"A", "", AttributeCategory::kQuasiIdentifier}});
  const auto stats = ComputeEquivalenceClasses(t, t.QuasiIdentifierColumns());
  EXPECT_EQ(stats.num_classes, 0u);
  EXPECT_EQ(stats.uniques, 0u);
}

}  // namespace
}  // namespace vadasa::core
