#include "api/flags.h"

#include <gtest/gtest.h>

namespace vadasa::api {
namespace {

FlagParser TestParser() {
  FlagParser parser;
  parser.Bool("verbose", "chatty output")
      .String("measure", "risk measure")
      .Path("trace", "trace output path")
      .Int("k", "anonymity parameter", 1, 100)
      .Double("threshold", "risk threshold", 0.0, 1.0);
  return parser;
}

TEST(FlagParserTest, ParsesBothSpellings) {
  const auto parsed = TestParser().Parse(
      {"--measure=suda", "--k", "5", "in.csv", "--verbose", "out.csv"});
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->GetString("measure", ""), "suda");
  EXPECT_EQ(parsed->GetInt("k", 0), 5);
  EXPECT_TRUE(parsed->GetBool("verbose"));
  EXPECT_EQ(parsed->positional(),
            (std::vector<std::string>{"in.csv", "out.csv"}));
}

TEST(FlagParserTest, RejectsUnknownFlag) {
  const auto parsed = TestParser().Parse({"--bogus"});
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
}

TEST(FlagParserTest, RejectsMalformedNumbers) {
  for (const auto& args : std::vector<std::vector<std::string>>{
           {"--k", "five"},
           {"--k", "5x"},
           {"--k", ""},
           {"--k", "999999999999999999999"},
           {"--threshold", "0.5abc"},
           {"--threshold", "nan"}}) {
    const auto parsed = TestParser().Parse(args);
    EXPECT_FALSE(parsed.ok()) << args[0] << "=" << args[1];
  }
}

TEST(FlagParserTest, EnforcesRanges) {
  EXPECT_FALSE(TestParser().Parse({"--k", "0"}).ok());
  EXPECT_FALSE(TestParser().Parse({"--k", "101"}).ok());
  EXPECT_FALSE(TestParser().Parse({"--threshold", "1.5"}).ok());
  EXPECT_FALSE(TestParser().Parse({"--threshold", "-0.1"}).ok());
  EXPECT_TRUE(TestParser().Parse({"--threshold", "1.0"}).ok());
}

TEST(FlagParserTest, PathFlagRejectsEmptyValue) {
  // `--trace=` must be a loud usage error, not a silently disabled export.
  EXPECT_FALSE(TestParser().Parse({"--trace="}).ok());
  EXPECT_TRUE(TestParser().Parse({"--trace=out.json"}).ok());
}

TEST(FlagParserTest, BoolFlagTakesNoValue) {
  EXPECT_FALSE(TestParser().Parse({"--verbose=1"}).ok());
}

TEST(FlagParserTest, MissingValueFails) {
  EXPECT_FALSE(TestParser().Parse({"--measure"}).ok());
}

TEST(FlagParserTest, DoubleDashEndsFlags) {
  const auto parsed = TestParser().Parse({"--k=2", "--", "--not-a-flag"});
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->positional(),
            (std::vector<std::string>{"--not-a-flag"}));
}

TEST(FlagParserTest, GetAllKeepsRepeats) {
  FlagParser parser;
  parser.Path("repro", "repro file");
  const auto parsed = parser.Parse({"--repro=a", "--repro=b", "--repro=c"});
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->GetAll("repro"),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(parsed->GetString("repro", ""), "c");  // Last one wins.
}

TEST(FlagParserTest, HelpListsEveryFlag) {
  const std::string help = TestParser().Help();
  for (const char* name : {"--verbose", "--measure", "--trace", "--k",
                           "--threshold"}) {
    EXPECT_NE(help.find(name), std::string::npos) << name;
  }
}

}  // namespace
}  // namespace vadasa::api
