#include "api/vadasa.h"

#include <gtest/gtest.h>

#include "common/csv.h"
#include "core/cycle.h"
#include "core/datagen.h"
#include "core/report.h"

namespace vadasa::api {
namespace {

using core::Figure5Microdata;
using core::MicrodataTable;

TEST(SessionOptionsTest, ValidationCatchesBadPolicies) {
  {
    SessionOptions options;
    options.risk_measure = "nonsense";
    EXPECT_FALSE(ValidateSessionOptions(options).ok());
  }
  {
    SessionOptions options;
    options.k = 0;
    EXPECT_FALSE(ValidateSessionOptions(options).ok());
  }
  {
    SessionOptions options;
    options.threshold = 1.5;
    EXPECT_FALSE(ValidateSessionOptions(options).ok());
  }
  {
    SessionOptions options;
    options.posterior_draws = -1;
    EXPECT_FALSE(ValidateSessionOptions(options).ok());
  }
  EXPECT_TRUE(ValidateSessionOptions(SessionOptions{}).ok());
}

TEST(SessionOptionsTest, GroupKeyTracksNullSemantics) {
  SessionOptions options;
  const std::string maybe = options.GroupKey();
  options.standard_nulls = true;
  EXPECT_NE(maybe, options.GroupKey());
}

TEST(SessionTest, EmptySessionFailsGracefully) {
  Session session;
  EXPECT_EQ(session.Risk().status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(session.Anonymize().status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(session.Warm().code(), StatusCode::kFailedPrecondition);
}

TEST(SessionTest, FromTableRejectsInvalidOptions) {
  SessionOptions options;
  options.risk_measure = "nonsense";
  EXPECT_FALSE(Session::FromTable(Figure5Microdata(), options).ok());
}

TEST(SessionTest, RiskMatchesDirectCorePath) {
  SessionOptions options;
  options.k = 2;
  auto session = Session::FromTable(Figure5Microdata(), options);
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  auto report = session->Risk();
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  const MicrodataTable table = Figure5Microdata();
  auto measure = core::MakeRiskMeasure("k-anonymity");
  ASSERT_TRUE(measure.ok());
  core::RiskContext ctx;
  ctx.k = 2;
  auto direct = (*measure)->ComputeRisks(table, ctx);
  ASSERT_TRUE(direct.ok());
  ASSERT_EQ(report->tuple_risks.size(), direct->size());
  for (size_t r = 0; r < direct->size(); ++r) {
    EXPECT_EQ(report->tuple_risks[r], (*direct)[r]) << "row " << r;
  }
  // Risky rows are exactly the over-threshold ones, with explanations.
  for (const RiskyTuple& risky : report->risky) {
    EXPECT_GT(risky.risk, options.threshold);
    EXPECT_FALSE(risky.explanation.empty());
  }
}

TEST(SessionTest, AnonymizeMatchesDirectCorePath) {
  SessionOptions options;
  options.k = 2;
  auto session = Session::FromTable(Figure5Microdata(), options);
  ASSERT_TRUE(session.ok());
  auto response = session->Anonymize();
  ASSERT_TRUE(response.ok()) << response.status().ToString();

  MicrodataTable direct = Figure5Microdata();
  auto measure = core::MakeRiskMeasure("k-anonymity");
  ASSERT_TRUE(measure.ok());
  core::LocalSuppression anonymizer;
  core::CycleOptions cycle_options;
  cycle_options.threshold = 0.5;
  cycle_options.risk.k = 2;
  auto audit =
      core::RunAuditedRelease(&direct, **measure, &anonymizer, cycle_options);
  ASSERT_TRUE(audit.ok());

  EXPECT_EQ(WriteCsv(response->table.ToCsv()), WriteCsv(direct.ToCsv()));
  EXPECT_FALSE(response->ToText().empty());
}

TEST(SessionTest, AnonymizeDoesNotMutateTheSession) {
  auto session = Session::FromTable(Figure5Microdata(), {});
  ASSERT_TRUE(session.ok());
  const std::string before = WriteCsv(session->table().ToCsv());
  ASSERT_TRUE(session->Anonymize().ok());
  EXPECT_EQ(WriteCsv(session->table().ToCsv()), before);
}

TEST(SessionTest, WarmDoesNotChangeRiskResults) {
  auto cold = Session::FromTable(Figure5Microdata(), {});
  ASSERT_TRUE(cold.ok());
  auto warm = Session::FromTable(Figure5Microdata(), {});
  ASSERT_TRUE(warm.ok());
  ASSERT_TRUE(warm->Warm().ok());
  ASSERT_NE(warm->warm_stats(), nullptr);

  auto cold_report = cold->Risk(/*quantile=*/0.9);
  auto warm_report = warm->Risk(/*quantile=*/0.9);
  ASSERT_TRUE(cold_report.ok());
  ASSERT_TRUE(warm_report.ok());
  ASSERT_EQ(cold_report->tuple_risks.size(), warm_report->tuple_risks.size());
  for (size_t r = 0; r < cold_report->tuple_risks.size(); ++r) {
    EXPECT_EQ(cold_report->tuple_risks[r], warm_report->tuple_risks[r]);
  }
  EXPECT_EQ(cold_report->inferred_threshold, warm_report->inferred_threshold);
  EXPECT_EQ(cold_report->global.expected_reidentifications,
            warm_report->global.expected_reidentifications);
}

TEST(SessionTest, WarmDoesNotChangeAnonymizeResults) {
  auto cold = Session::FromTable(Figure5Microdata(), {});
  ASSERT_TRUE(cold.ok());
  auto warm = Session::FromTable(Figure5Microdata(), {});
  ASSERT_TRUE(warm.ok());
  ASSERT_TRUE(warm->Warm().ok());
  auto cold_response = cold->Anonymize();
  auto warm_response = warm->Anonymize();
  ASSERT_TRUE(cold_response.ok());
  ASSERT_TRUE(warm_response.ok());
  EXPECT_EQ(WriteCsv(warm_response->table.ToCsv()),
            WriteCsv(cold_response->table.ToCsv()));
  EXPECT_EQ(warm_response->ToText(), cold_response->ToText());
}

TEST(SessionTest, PreCancelledTokenShortCircuitsAnonymize) {
  auto session = Session::FromTable(Figure5Microdata(), {});
  ASSERT_TRUE(session.ok());
  CancelToken token;
  token.Cancel();
  AnonymizeRequest request;
  request.cancel = &token;
  EXPECT_EQ(session->Anonymize(request).status().code(),
            StatusCode::kCancelled);
}

TEST(SessionTest, ExpiredDeadlineShortCircuitsAnonymize) {
  auto session = Session::FromTable(Figure5Microdata(), {});
  ASSERT_TRUE(session.ok());
  CancelToken token;
  token.SetDeadline(std::chrono::steady_clock::now() -
                    std::chrono::milliseconds(1));
  AnonymizeRequest request;
  request.cancel = &token;
  EXPECT_EQ(session->Anonymize(request).status().code(),
            StatusCode::kDeadlineExceeded);
}

TEST(SessionTest, SharedTableServesManySessions) {
  auto table = std::make_shared<const MicrodataTable>(Figure5Microdata());
  SessionOptions strict;
  strict.k = 3;
  auto a = Session::FromShared(table, nullptr, {});
  auto b = Session::FromShared(table, nullptr, strict);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->shared_table().get(), b->shared_table().get());
  auto risks_a = a->Risk();
  auto risks_b = b->Risk();
  ASSERT_TRUE(risks_a.ok());
  ASSERT_TRUE(risks_b.ok());
  // Different k policies over the same shared snapshot stay independent.
  EXPECT_GE(risks_b->risky.size(), risks_a->risky.size());
}

}  // namespace
}  // namespace vadasa::api
