#include "api/vadasa.h"

#include <gtest/gtest.h>

#include "common/csv.h"
#include "core/cycle.h"
#include "core/datagen.h"
#include "core/report.h"

namespace vadasa::api {
namespace {

using core::Figure5Microdata;
using core::MicrodataTable;

TEST(SessionOptionsTest, ValidationCatchesBadPolicies) {
  {
    SessionOptions options;
    options.risk_measure = "nonsense";
    EXPECT_FALSE(ValidateSessionOptions(options).ok());
  }
  {
    SessionOptions options;
    options.k = 0;
    EXPECT_FALSE(ValidateSessionOptions(options).ok());
  }
  {
    SessionOptions options;
    options.threshold = 1.5;
    EXPECT_FALSE(ValidateSessionOptions(options).ok());
  }
  {
    SessionOptions options;
    options.posterior_draws = -1;
    EXPECT_FALSE(ValidateSessionOptions(options).ok());
  }
  EXPECT_TRUE(ValidateSessionOptions(SessionOptions{}).ok());
}

TEST(SessionOptionsTest, GroupKeyTracksNullSemantics) {
  SessionOptions options;
  const std::string maybe = options.GroupKey();
  options.standard_nulls = true;
  EXPECT_NE(maybe, options.GroupKey());
}

TEST(SessionTest, EmptySessionFailsGracefully) {
  Session session;
  EXPECT_EQ(session.Risk().status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(session.Anonymize().status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(session.Warm().code(), StatusCode::kFailedPrecondition);
}

TEST(SessionTest, FromTableRejectsInvalidOptions) {
  SessionOptions options;
  options.risk_measure = "nonsense";
  EXPECT_FALSE(Session::FromTable(Figure5Microdata(), options).ok());
}

TEST(SessionTest, RiskMatchesDirectCorePath) {
  SessionOptions options;
  options.k = 2;
  auto session = Session::FromTable(Figure5Microdata(), options);
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  auto report = session->Risk();
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  const MicrodataTable table = Figure5Microdata();
  auto measure = core::MakeRiskMeasure("k-anonymity");
  ASSERT_TRUE(measure.ok());
  core::RiskContext ctx;
  ctx.k = 2;
  auto direct = (*measure)->ComputeRisks(table, ctx);
  ASSERT_TRUE(direct.ok());
  ASSERT_EQ(report->tuple_risks.size(), direct->size());
  for (size_t r = 0; r < direct->size(); ++r) {
    EXPECT_EQ(report->tuple_risks[r], (*direct)[r]) << "row " << r;
  }
  // Risky rows are exactly the over-threshold ones, with explanations.
  for (const RiskyTuple& risky : report->risky) {
    EXPECT_GT(risky.risk, options.threshold);
    EXPECT_FALSE(risky.explanation.empty());
  }
}

TEST(SessionTest, AnonymizeMatchesDirectCorePath) {
  SessionOptions options;
  options.k = 2;
  auto session = Session::FromTable(Figure5Microdata(), options);
  ASSERT_TRUE(session.ok());
  auto response = session->Anonymize();
  ASSERT_TRUE(response.ok()) << response.status().ToString();

  MicrodataTable direct = Figure5Microdata();
  auto measure = core::MakeRiskMeasure("k-anonymity");
  ASSERT_TRUE(measure.ok());
  core::LocalSuppression anonymizer;
  core::CycleOptions cycle_options;
  cycle_options.threshold = 0.5;
  cycle_options.risk.k = 2;
  auto audit =
      core::RunAuditedRelease(&direct, **measure, &anonymizer, cycle_options);
  ASSERT_TRUE(audit.ok());

  EXPECT_EQ(WriteCsv(response->table.ToCsv()), WriteCsv(direct.ToCsv()));
  EXPECT_FALSE(response->ToText().empty());
}

TEST(SessionTest, AnonymizeDoesNotMutateTheSession) {
  auto session = Session::FromTable(Figure5Microdata(), {});
  ASSERT_TRUE(session.ok());
  const std::string before = WriteCsv(session->table().ToCsv());
  ASSERT_TRUE(session->Anonymize().ok());
  EXPECT_EQ(WriteCsv(session->table().ToCsv()), before);
}

TEST(SessionTest, WarmDoesNotChangeRiskResults) {
  auto cold = Session::FromTable(Figure5Microdata(), {});
  ASSERT_TRUE(cold.ok());
  auto warm = Session::FromTable(Figure5Microdata(), {});
  ASSERT_TRUE(warm.ok());
  ASSERT_TRUE(warm->Warm().ok());
  ASSERT_NE(warm->warm_stats(), nullptr);

  auto cold_report = cold->Risk(/*quantile=*/0.9);
  auto warm_report = warm->Risk(/*quantile=*/0.9);
  ASSERT_TRUE(cold_report.ok());
  ASSERT_TRUE(warm_report.ok());
  ASSERT_EQ(cold_report->tuple_risks.size(), warm_report->tuple_risks.size());
  for (size_t r = 0; r < cold_report->tuple_risks.size(); ++r) {
    EXPECT_EQ(cold_report->tuple_risks[r], warm_report->tuple_risks[r]);
  }
  EXPECT_EQ(cold_report->inferred_threshold, warm_report->inferred_threshold);
  EXPECT_EQ(cold_report->global.expected_reidentifications,
            warm_report->global.expected_reidentifications);
}

TEST(SessionTest, WarmDoesNotChangeAnonymizeResults) {
  auto cold = Session::FromTable(Figure5Microdata(), {});
  ASSERT_TRUE(cold.ok());
  auto warm = Session::FromTable(Figure5Microdata(), {});
  ASSERT_TRUE(warm.ok());
  ASSERT_TRUE(warm->Warm().ok());
  auto cold_response = cold->Anonymize();
  auto warm_response = warm->Anonymize();
  ASSERT_TRUE(cold_response.ok());
  ASSERT_TRUE(warm_response.ok());
  EXPECT_EQ(WriteCsv(warm_response->table.ToCsv()),
            WriteCsv(cold_response->table.ToCsv()));
  EXPECT_EQ(warm_response->ToText(), cold_response->ToText());
}

TEST(SessionTest, PreCancelledTokenShortCircuitsAnonymize) {
  auto session = Session::FromTable(Figure5Microdata(), {});
  ASSERT_TRUE(session.ok());
  CancelToken token;
  token.Cancel();
  AnonymizeRequest request;
  request.cancel = &token;
  EXPECT_EQ(session->Anonymize(request).status().code(),
            StatusCode::kCancelled);
}

TEST(SessionTest, ExpiredDeadlineShortCircuitsAnonymize) {
  auto session = Session::FromTable(Figure5Microdata(), {});
  ASSERT_TRUE(session.ok());
  CancelToken token;
  token.SetDeadline(std::chrono::steady_clock::now() -
                    std::chrono::milliseconds(1));
  AnonymizeRequest request;
  request.cancel = &token;
  EXPECT_EQ(session->Anonymize(request).status().code(),
            StatusCode::kDeadlineExceeded);
}

core::DeltaBatch Fig5Delta(const MicrodataTable& t) {
  core::DeltaBatchBuilder builder(t.num_columns());
  std::vector<Value> updated = t.row(1);
  updated[2] = Value::Null(77);
  builder.Update(1, std::move(updated));
  builder.Delete(4);
  builder.Append(t.row(0));
  auto batch = builder.Build();
  EXPECT_TRUE(batch.ok()) << batch.status().ToString();
  return *batch;
}

TEST(SessionTest, ApplyReturnsImmutableSibling) {
  auto parent = Session::FromTable(Figure5Microdata(), {});
  ASSERT_TRUE(parent.ok());
  const std::string before = WriteCsv(parent->table().ToCsv());
  auto child = parent->Apply(Fig5Delta(parent->table()));
  ASSERT_TRUE(child.ok()) << child.status().ToString();
  EXPECT_EQ(WriteCsv(parent->table().ToCsv()), before)
      << "Apply never mutates its session";
  EXPECT_EQ(child->table().num_rows(), parent->table().num_rows());
  EXPECT_TRUE(child->table().cell(1, 2).is_null());
  EXPECT_EQ(child->options().k, parent->options().k);
  EXPECT_EQ(child->options().risk_measure, parent->options().risk_measure);
}

TEST(SessionTest, ApplyRejectsBadBatchesWithoutSideEffects) {
  auto session = Session::FromTable(Figure5Microdata(), {});
  ASSERT_TRUE(session.ok());
  core::DeltaBatchBuilder builder(session->table().num_columns());
  builder.Delete(10'000);
  auto batch = builder.Build();
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(session->Apply(*batch).status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Session().Apply(*batch).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(SessionTest, WarmApplyMatchesColdSessionBitIdentically) {
  auto parent = Session::FromTable(Figure5Microdata(), {});
  ASSERT_TRUE(parent.ok());
  ASSERT_TRUE(parent->Warm().ok());
  ASSERT_NE(parent->delta_index(), nullptr);

  auto child = parent->Apply(Fig5Delta(parent->table()));
  ASSERT_TRUE(child.ok());
  ASSERT_NE(child->warm_stats(), nullptr) << "warm parents hand down warm children";
  ASSERT_NE(child->delta_index(), nullptr);

  // Cold reference: a fresh warmed session over the post-delta table.
  auto cold = Session::FromTable(child->table(), {});
  ASSERT_TRUE(cold.ok());
  ASSERT_TRUE(cold->Warm().ok());
  EXPECT_EQ(child->warm_stats()->frequency, cold->warm_stats()->frequency);
  EXPECT_EQ(child->warm_stats()->weight_sum, cold->warm_stats()->weight_sum);

  auto child_risk = child->Risk();
  auto cold_risk = cold->Risk();
  ASSERT_TRUE(child_risk.ok());
  ASSERT_TRUE(cold_risk.ok());
  EXPECT_EQ(child_risk->tuple_risks, cold_risk->tuple_risks);

  auto child_released = child->Anonymize();
  auto cold_released = cold->Anonymize();
  ASSERT_TRUE(child_released.ok());
  ASSERT_TRUE(cold_released.ok());
  EXPECT_EQ(WriteCsv(child_released->table.ToCsv()),
            WriteCsv(cold_released->table.ToCsv()));
}

TEST(SessionTest, ParentKeepsServingPreDeltaResultsAfterApply) {
  auto parent = Session::FromTable(Figure5Microdata(), {});
  ASSERT_TRUE(parent.ok());
  ASSERT_TRUE(parent->Warm().ok());
  auto before = parent->Risk();
  ASSERT_TRUE(before.ok());

  auto child = parent->Apply(Fig5Delta(parent->table()));
  ASSERT_TRUE(child.ok());

  // The in-flight view of the parent is untouched, bit for bit.
  auto after = parent->Risk();
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->tuple_risks, before->tuple_risks);
  auto reference = Session::FromTable(Figure5Microdata(), {});
  ASSERT_TRUE(reference.ok());
  auto fresh = reference->Risk();
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(after->tuple_risks, fresh->tuple_risks);
}

TEST(SessionTest, FromSharedSessionsAfterParentApplyStayIndependent) {
  auto table = std::make_shared<const MicrodataTable>(Figure5Microdata());
  auto parent = Session::FromShared(table, nullptr, {});
  ASSERT_TRUE(parent.ok());
  ASSERT_TRUE(parent->Warm().ok());

  // A sibling session adopting the parent's warm stats (the scheduler's
  // coalesced-warmup path) before the delta lands.
  auto sibling = Session::FromShared(table, nullptr, {});
  ASSERT_TRUE(sibling.ok());
  sibling->AdoptWarmStats(parent->warm_stats(), parent->warm_view());
  ASSERT_EQ(sibling->delta_index(), nullptr)
      << "adopted stats arrive without an index";

  auto child = parent->Apply(Fig5Delta(parent->table()));
  ASSERT_TRUE(child.ok());

  // The sibling still serves pre-delta results bit-identically...
  auto sibling_risk = sibling->Risk();
  auto parent_risk = parent->Risk();
  ASSERT_TRUE(sibling_risk.ok());
  ASSERT_TRUE(parent_risk.ok());
  EXPECT_EQ(sibling_risk->tuple_risks, parent_risk->tuple_risks);

  // ...and an Apply from the index-less sibling still works (cold child).
  auto cold_child = sibling->Apply(Fig5Delta(sibling->table()));
  ASSERT_TRUE(cold_child.ok());
  EXPECT_EQ(cold_child->warm_stats(), nullptr);
  ASSERT_TRUE(cold_child->Warm().ok());
  auto warm_risk = cold_child->Risk();
  auto child_risk = child->Risk();
  ASSERT_TRUE(warm_risk.ok());
  ASSERT_TRUE(child_risk.ok());
  EXPECT_EQ(warm_risk->tuple_risks, child_risk->tuple_risks)
      << "cold and incremental children agree bit for bit";
}

TEST(SessionTest, SharedTableServesManySessions) {
  auto table = std::make_shared<const MicrodataTable>(Figure5Microdata());
  SessionOptions strict;
  strict.k = 3;
  auto a = Session::FromShared(table, nullptr, {});
  auto b = Session::FromShared(table, nullptr, strict);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->shared_table().get(), b->shared_table().get());
  auto risks_a = a->Risk();
  auto risks_b = b->Risk();
  ASSERT_TRUE(risks_a.ok());
  ASSERT_TRUE(risks_b.ok());
  // Different k policies over the same shared snapshot stay independent.
  EXPECT_GE(risks_b->risky.size(), risks_a->risky.size());
}

}  // namespace
}  // namespace vadasa::api
