// End-to-end pipeline tests: CSV ingestion → categorization → risk
// evaluation → anonymization cycle → release + attack evaluation. This is the
// complete Vada-SA workflow of Figure 3, on the native fast path.

#include <gtest/gtest.h>

#include "common/csv.h"
#include "core/attack.h"
#include "core/business.h"
#include "core/categorize.h"
#include "core/cycle.h"
#include "core/datagen.h"
#include "core/infoloss.h"
#include "core/metadata.h"

namespace vadasa::core {
namespace {

TEST(PipelineTest, CsvToAnonymizedRelease) {
  // 1. A microdata DB arrives as CSV, schema unknown to the framework.
  const std::string csv_text =
      "Company Id,Area,Sector,Employees,Growth,Sampling Weight\n"
      "612276,North,Public Service,50-200,2,230\n"
      "737536,South,Commerce,201-1000,-1,190\n"
      "971906,Center,Commerce,1000+,4,70\n"
      "589681,North,Textiles,1000+,30,60\n"
      "419410,North,Textiles,1000+,300,50\n"
      "972915,North,Commerce,201-1000,50,70\n";
  auto csv = ParseCsv(csv_text);
  ASSERT_TRUE(csv.ok());
  auto table = MicrodataTable::FromCsv("survey", *csv, {}, "");
  ASSERT_TRUE(table.ok());

  // 2. Attribute categorization via the experience base (Algorithm 1).
  AttributeCategorizer categorizer = AttributeCategorizer::WithDefaultExperience();
  MetadataDictionary dictionary;
  auto decisions = categorizer.CategorizeTable(&*table, &dictionary);
  ASSERT_TRUE(decisions.ok()) << decisions.status().ToString();
  EXPECT_EQ(table->attributes()[0].category, AttributeCategory::kIdentifier);
  EXPECT_EQ(*dictionary.CategoryOf("survey", "Sampling Weight"),
            AttributeCategory::kWeight);
  ASSERT_EQ(table->QuasiIdentifierColumns().size(), 3u);

  // 3. Risk evaluation + anonymization cycle (Algorithm 2).
  KAnonymityRisk risk;
  LocalSuppression anon;
  CycleOptions options;
  options.risk.k = 2;
  options.log_steps = true;
  AnonymizationCycle cycle(&risk, &anon, options);
  auto stats = cycle.Run(&*table);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GT(stats->initial_risky, 0u);
  EXPECT_FALSE(stats->log.empty());

  // 4. Released table is k-anonymous; Growth (non-identifying) is untouched.
  RiskContext ctx;
  ctx.k = 2;
  auto final_risks = risk.ComputeRisks(*table, ctx);
  ASSERT_TRUE(final_risks.ok());
  for (const double r : *final_risks) EXPECT_LE(r, 0.5);
  EXPECT_EQ(table->cell(0, 4).as_int(), 2);

  // 5. Round-trip the release through CSV.
  auto reparsed = ParseCsv(WriteCsv(table->ToCsv()));
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->rows.size(), table->num_rows());
}

TEST(PipelineTest, OracleSampleCycleAttack) {
  // Full adversarial loop: sample from a synthetic identity oracle, measure
  // attack success, anonymize, measure again.
  IdentityOracle::Options oracle_options;
  oracle_options.population = 6000;
  oracle_options.num_qi = 4;
  oracle_options.distribution = DistributionKind::kUnbalanced;
  oracle_options.seed = 33;
  const IdentityOracle oracle = IdentityOracle::Generate(oracle_options);
  auto sample = oracle.SampleMicrodata(500, 17);
  ASSERT_TRUE(sample.ok());

  const AttackResult before = RunLinkageAttack(
      sample->table, sample->table.QuasiIdentifierColumns(), oracle, sample->truth, 3);

  MicrodataTable anonymized = sample->table;
  ReidentificationRisk risk;
  LocalSuppression anon;
  CycleOptions options;
  options.threshold = 0.05;  // Tolerate at most 1-in-20 re-identification odds.
  AnonymizationCycle cycle(&risk, &anon, options);
  auto stats = cycle.Run(&anonymized);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();

  const AttackResult after = RunLinkageAttack(
      anonymized, anonymized.QuasiIdentifierColumns(), oracle, sample->truth, 3);
  EXPECT_LT(after.exact_blocks, before.exact_blocks);
  EXPECT_GT(after.avg_block_size, before.avg_block_size);

  const InformationLoss loss =
      MeasureInformationLoss(sample->table, anonymized, nullptr);
  EXPECT_GT(loss.suppressed_cell_fraction, 0.0);
  EXPECT_LT(loss.suppressed_cell_fraction, 0.5);  // Statistics preserved.
}

TEST(PipelineTest, BusinessKnowledgeWidensAnonymization) {
  // Algorithm 9 end-to-end: control relationships propagate risk, forcing
  // strictly more suppression than the plain cycle.
  const MicrodataTable base =
      GenerateInflationGrowth("biz", 2000, 4, DistributionKind::kRealWorld, 77);

  auto run = [&](const OwnershipGraph* graph) -> size_t {
    MicrodataTable t = base;
    KAnonymityRisk risk;
    LocalSuppression anon;
    CycleOptions options;
    options.risk.k = 2;
    if (graph != nullptr) {
      options.risk_transform = MakeClusterRiskTransform(graph, "Id");
    }
    AnonymizationCycle cycle(&risk, &anon, options);
    auto stats = cycle.Run(&t);
    EXPECT_TRUE(stats.ok());
    return stats.ok() ? stats->nulls_injected : 0;
  };

  const size_t without = run(nullptr);

  // Link some safe tuples to risky ones: find a risky row and tie 5 safe
  // companies to it.
  KAnonymityRisk risk;
  RiskContext ctx;
  ctx.k = 2;
  auto risks = risk.ComputeRisks(base, ctx);
  ASSERT_TRUE(risks.ok());
  int risky_row = -1;
  std::vector<int> safe_rows;
  for (size_t r = 0; r < base.num_rows(); ++r) {
    if ((*risks)[r] > 0.5 && risky_row < 0) risky_row = static_cast<int>(r);
    if ((*risks)[r] <= 0.5 && safe_rows.size() < 5) {
      safe_rows.push_back(static_cast<int>(r));
    }
  }
  ASSERT_GE(risky_row, 0);
  ASSERT_EQ(safe_rows.size(), 5u);
  OwnershipGraph graph;
  for (const int s : safe_rows) {
    graph.AddOwnership(base.cell(risky_row, 0).ToString(), base.cell(s, 0).ToString(),
                       0.8);
  }
  const size_t with = run(&graph);
  EXPECT_GT(with, without);
}

}  // namespace
}  // namespace vadasa::core
