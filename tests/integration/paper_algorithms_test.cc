// Runs the paper's Algorithms 3-6 (risk estimation) and the Section-4.4
// company-control rules as actual Vadalog programs in our dialect, and checks
// them against the native C++ implementations on the paper's own tables.

#include <gtest/gtest.h>

#include "core/datagen.h"
#include "core/programs.h"
#include "core/risk.h"
#include "core/suda.h"
#include "vadalog/engine.h"

namespace vadasa::core {
namespace {

using vadalog::Database;
using vadalog::Engine;
using vadalog::FinalAggregateRows;
using vadalog::RunSource;

/// Encodes QI projections as qival(I, Attr, V) plus qweight(I, W) facts.
void EncodeProjections(const MicrodataTable& t, Database* db) {
  const auto qis = t.QuasiIdentifierColumns();
  for (size_t r = 0; r < t.num_rows(); ++r) {
    const Value id = Value::Int(static_cast<int64_t>(r));
    std::vector<Value> pairs;
    for (const size_t c : qis) {
      db->AddFact("qival", {id, Value::String(t.attributes()[c].name), t.cell(r, c)});
      pairs.push_back(Value::List({Value::String(t.attributes()[c].name), t.cell(r, c)}));
    }
    db->AddFact("tuple", {id, Value::Set(std::move(pairs))});
    db->AddFact("qweight", {id, Value::Double(t.RowWeight(r))});
  }
}

TEST(PaperAlgorithmsTest, Algorithm3ReidentificationRisk) {
  // Rule: group tuples by their full VSet, sum weights monotonically, invert.
  const MicrodataTable t = Figure1Microdata();
  Database db;
  EncodeProjections(t, &db);
  Engine engine;
  auto stats = RunSource(
      "tuplea(VSet, S) :- tuple(I, VSet), qweight(I, W), S = msum(W, <I>).\n"
      "riskoutput(I, R) :- tuple(I, VSet), tuplea(VSet, S), R = 1 / S.",
      &db, &engine);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  // Final risk per tuple = minimum of the monotone stream (1/S shrinks).
  const auto rows = FinalAggregateRows(db, "riskoutput", 1, /*take_max=*/false);
  ASSERT_EQ(rows.size(), t.num_rows());
  ReidentificationRisk native;
  RiskContext ctx;
  auto native_risks = native.ComputeRisks(t, ctx);
  ASSERT_TRUE(native_risks.ok());
  for (const auto& row : rows) {
    const size_t r = static_cast<size_t>(row[0].as_int());
    EXPECT_NEAR(row[1].as_double(), (*native_risks)[r], 1e-9) << "tuple " << r;
  }
}

TEST(PaperAlgorithmsTest, Algorithm4KAnonymity) {
  const MicrodataTable t = Figure5Microdata();
  Database db;
  EncodeProjections(t, &db);
  Engine engine;
  auto stats = RunSource(
      "tuplea(VSet, N) :- tuple(I, VSet), N = mcount(<I>).\n"
      "riskoutput(I, R) :- tuple(I, VSet), tuplea(VSet, N), R = if(lt(N, 2), 1, 0).",
      &db, &engine);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  const auto rows = FinalAggregateRows(db, "riskoutput", 1, /*take_max=*/false);
  ASSERT_EQ(rows.size(), t.num_rows());
  // Frequencies 1,2,2,2,2,1,1: rows 0, 5, 6 risky.
  for (const auto& row : rows) {
    const size_t r = static_cast<size_t>(row[0].as_int());
    const double expected = (r == 0 || r == 5 || r == 6) ? 1.0 : 0.0;
    EXPECT_DOUBLE_EQ(row[1].as_double(), expected) << "tuple " << r;
  }
}

TEST(PaperAlgorithmsTest, Algorithm5IndividualRisk) {
  const MicrodataTable t = Figure1Microdata();
  Database db;
  EncodeProjections(t, &db);
  Engine engine;
  auto stats = RunSource(
      "tuplea(VSet, R) :- tuple(I, VSet), qweight(I, W),\n"
      "                   F = mcount(<I>), S = msum(W, <I>), R = F / S.\n"
      "riskoutput(I, R) :- tuple(I, VSet), tuplea(VSet, R).",
      &db, &engine);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  const auto rows = FinalAggregateRows(db, "riskoutput", 1, /*take_max=*/false);
  IndividualRisk native;
  RiskContext ctx;
  auto native_risks = native.ComputeRisks(t, ctx);
  ASSERT_TRUE(native_risks.ok());
  ASSERT_EQ(rows.size(), t.num_rows());
  for (const auto& row : rows) {
    const size_t r = static_cast<size_t>(row[0].as_int());
    EXPECT_NEAR(row[1].as_double(), (*native_risks)[r], 1e-9) << "tuple " << r;
  }
}

TEST(PaperAlgorithmsTest, Algorithm6SudaOnFigure1) {
  // Declarative SUDA: enumerate QI combinations per tuple (Rules 2-5 of
  // Algorithm 6 via recursive set extension), detect sample uniques with
  // mcount + stratified negation, keep the minimal ones.
  const MicrodataTable t = Figure1Microdata();
  Database db;
  // Restrict to the worked example's AnonSet.
  MicrodataTable restricted = t;
  ASSERT_TRUE(restricted.SetCategory("Export Rev.",
                                     AttributeCategory::kNonIdentifying).ok());
  EncodeProjections(restricted, &db);
  Engine engine;
  const std::string program = R"prog(
comb(I, S) :- qival(I, A, V), S = set(list(A, V)).
comb(I, S2) :- comb(I, S1), qival(I, A, V),
               contains(S1, list(A, V)) == false,
               S2 = union(S1, set(list(A, V))).
tuplec(I, S) :- comb(I, S).
su(S, N) :- tuplec(I, S), N = mcount(<I>).
hassu(I, S) :- tuplec(I, S), su(S, 1), not su(S, 2).
nonminimal(I, S) :- hassu(I, S), hassu(I, S1), S1 != S, S1 subset S.
msu(I, S) :- hassu(I, S), not nonminimal(I, S).
)prog";
  auto stats = RunSource(program, &db, &engine);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  // Tuple 20 (id 19): exactly the 2 MSUs of the worked example.
  std::vector<Value> msus_19;
  for (const auto& row : db.Rows("msu")) {
    if (row[0].as_int() == 19) msus_19.push_back(row[1]);
  }
  ASSERT_EQ(msus_19.size(), 2u);
  const Value sector_msu =
      Value::Set({Value::List({Value::String("Sector"), Value::String("Financial")})});
  const Value emp_res_msu = Value::Set(
      {Value::List({Value::String("Employees"), Value::String("1000+")}),
       Value::List({Value::String("Residential Rev."), Value::String("30-60")})});
  bool found_sector = false;
  bool found_emp_res = false;
  for (const Value& m : msus_19) {
    if (m.Equals(sector_msu)) found_sector = true;
    if (m.Equals(emp_res_msu)) found_emp_res = true;
  }
  EXPECT_TRUE(found_sector);
  EXPECT_TRUE(found_emp_res);
  // Cross-check the full MSU relation against the native implementation.
  SudaOptions native_options;
  native_options.max_search_size = 4;
  SudaRisk native(native_options);
  RiskContext ctx;
  auto details = native.ComputeDetails(restricted, ctx);
  ASSERT_TRUE(details.ok());
  std::map<int64_t, size_t> engine_counts;
  for (const auto& row : db.Rows("msu")) engine_counts[row[0].as_int()]++;
  for (size_t r = 0; r < restricted.num_rows(); ++r) {
    const size_t native_count = details->msus[r].size();
    const size_t engine_count =
        engine_counts.count(static_cast<int64_t>(r)) ? engine_counts[r] : 0;
    EXPECT_EQ(engine_count, native_count) << "tuple " << r;
  }
}

TEST(PaperAlgorithmsTest, Algorithm7LocalSuppressionDeclaratively) {
  // Run the shipped Algorithm 7 program on Fig. 5a's tuple 1: one suppressed
  // candidate version per quasi-identifier, each with a fresh labelled null.
  auto p = FindAlgorithmProgram("algorithm7-local-suppression");
  ASSERT_TRUE(p.ok());
  Database db;
  const MicrodataTable t = Figure5Microdata();
  const auto qis = t.QuasiIdentifierColumns();
  std::vector<Value> pairs;
  for (const size_t c : qis) {
    db.AddFact("qid", {Value::String(t.attributes()[c].name)});
    pairs.push_back(Value::List({Value::String(t.attributes()[c].name), t.cell(0, c)}));
  }
  db.AddFact("anonymize", {Value::Int(0), Value::Set(std::move(pairs))});
  Engine engine;
  auto stats = RunSource(p->source, &db, &engine);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  // 4 candidate versions, one per QI; each replaces exactly that QI by ⊥.
  const auto& tuples = db.Rows("tuple");
  ASSERT_EQ(tuples.size(), 4u);
  for (const auto& row : tuples) {
    size_t nulls = 0;
    for (const Value& pair : row[1].items()) {
      if (pair.items()[1].is_null()) ++nulls;
    }
    EXPECT_EQ(nulls, 1u);
  }
  EXPECT_EQ(stats->nulls_created, 4u);
}

TEST(PaperAlgorithmsTest, Algorithm8GlobalRecodingDeclaratively) {
  // The paper's own KB fragment: Area of type City, City ⊑ Region,
  // Milano/Torino IsA North. Recoding tuple 6's Area yields North.
  auto p = FindAlgorithmProgram("algorithm8-global-recoding");
  ASSERT_TRUE(p.ok());
  Database db;
  db.AddFact("qid", {Value::String("Area")});
  db.AddFact("typeof", {Value::String("Area"), Value::String("city")});
  db.AddFact("subtypeof", {Value::String("city"), Value::String("region")});
  db.AddFact("instof", {Value::String("north"), Value::String("region")});
  db.AddFact("isa", {Value::String("milano"), Value::String("north")});
  db.AddFact("isa", {Value::String("torino"), Value::String("north")});
  const Value vset = Value::Set(
      {Value::List({Value::String("Area"), Value::String("milano")}),
       Value::List({Value::String("Sector"), Value::String("construction")})});
  db.AddFact("anonymize", {Value::Int(6), vset});
  Engine engine;
  auto stats = RunSource(p->source, &db, &engine);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  const Value expected = Value::Set(
      {Value::List({Value::String("Area"), Value::String("north")}),
       Value::List({Value::String("Sector"), Value::String("construction")})});
  EXPECT_TRUE(db.Contains("tuple", {Value::Int(6), expected}));
  EXPECT_EQ(db.Rows("tuple").size(), 1u);  // Sector has no hierarchy entry.
}

TEST(PaperAlgorithmsTest, Section44CompanyControl) {
  // The two control rules, verbatim from Section 4.4.
  Database db;
  Engine engine;
  auto stats = RunSource(
      "own(a, b, 0.6). own(b, c, 0.4). own(a, c, 0.2).\n"
      "rel(X, Y) :- own(X, Y, W), W > 0.5.\n"
      "rel(X, Y) :- rel(X, Z), own(Z, Y, W), S = msum(W, <Z>), S > 0.5.",
      &db, &engine);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_TRUE(db.Contains("rel", {Value::String("a"), Value::String("b")}));
  // a's joint stake in c via controlled b is only 0.4 (the direct 0.2 is not
  // part of Rule 2's sum over controlled intermediaries).
  EXPECT_FALSE(db.Contains("rel", {Value::String("a"), Value::String("c")}));
}

TEST(PaperAlgorithmsTest, Algorithm9ClusterRiskFormula) {
  // 1 - mprod(1 - R, <I2>) over a cluster, via the engine's mprod.
  Database db;
  Engine engine;
  auto stats = RunSource(
      "memberrisk(c1, e1, 0.1). memberrisk(c1, e2, 0.2). memberrisk(c1, e3, 0.3).\n"
      "clusterrisk(C, R) :- memberrisk(C, E, Q), S = 1 - Q,\n"
      "                     P = mprod(S, <E>), R = 1 - P.",
      &db, &engine);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  const auto rows = FinalAggregateRows(db, "clusterrisk", 1, /*take_max=*/true);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_NEAR(rows[0][1].as_double(), 1.0 - 0.9 * 0.8 * 0.7, 1e-12);
}

}  // namespace
}  // namespace vadasa::core
