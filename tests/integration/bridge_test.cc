#include "core/vadalog_bridge.h"

#include <gtest/gtest.h>

#include "core/datagen.h"
#include "core/group_index.h"
#include "core/risk.h"
#include "vadalog/parser.h"

namespace vadasa::core {
namespace {

TEST(BridgeTest, EncodeMicrodataProducesDictionaryAndTuples) {
  vadalog::Database db;
  VadalogBridge bridge;
  bridge.EncodeMicrodata(Figure5Microdata(), &db);
  EXPECT_EQ(db.Rows("microdb").size(), 1u);
  EXPECT_EQ(db.Rows("att").size(), 5u);
  EXPECT_EQ(db.Rows("cat").size(), 5u);
  EXPECT_EQ(db.Rows("tuple").size(), 7u);
  EXPECT_EQ(db.Rows("weight").size(), 7u);
  // Each tuple's VSet holds the 4 QI pairs; the Id is dropped.
  for (const auto& row : db.Rows("tuple")) {
    ASSERT_TRUE(row[2].is_set());
    EXPECT_EQ(row[2].items().size(), 4u);
  }
}

TEST(BridgeTest, DeclarativeCycleAnonymizesFigure5) {
  VadalogBridge bridge;  // k-anonymity, k=2, T=0.5, maybe-match.
  vadalog::RunStats stats;
  auto out = bridge.RunDeclarativeCycle(Figure5Microdata(), nullptr, &stats);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_GT(stats.action_invocations, 0u);
  // The released table is 2-anonymous under maybe-match.
  KAnonymityRisk risk;
  RiskContext ctx;
  ctx.k = 2;
  auto risks = risk.ComputeRisks(*out, ctx);
  ASSERT_TRUE(risks.ok());
  for (size_t r = 0; r < risks->size(); ++r) {
    EXPECT_LE((*risks)[r], 0.5) << "row " << r;
  }
  // Direct identifiers were dropped from the release.
  EXPECT_EQ(out->cell(0, 0).ToString(), "<dropped>");
  // Rows that were never risky are untouched.
  EXPECT_EQ(out->cell(1, 2).as_string(), "Commerce");
}

TEST(BridgeTest, DeclarativeAndNativeCyclesAgreeOnRiskyRows) {
  const MicrodataTable input =
      GenerateInflationGrowth("bridge", 120, 4, DistributionKind::kVeryUnbalanced, 9);
  // Which rows does the native path consider risky?
  KAnonymityRisk risk;
  RiskContext ctx;
  ctx.k = 2;
  auto native_risks = risk.ComputeRisks(input, ctx);
  ASSERT_TRUE(native_risks.ok());
  VadalogBridge bridge;
  auto out = bridge.RunDeclarativeCycle(input, nullptr, nullptr);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  // Rows the native risk calls safe are released untouched; risky rows end
  // up in a maybe-match group of size >= k (either via their own nulls or a
  // neighbour's — the decode keeps the least-suppressed passing version).
  const auto qis = out->QuasiIdentifierColumns();
  const GroupStats final_stats =
      ComputeGroupStats(*out, qis, NullSemantics::kMaybeMatch);
  for (size_t r = 0; r < input.num_rows(); ++r) {
    bool has_null = false;
    for (const size_t c : qis) has_null |= out->cell(r, c).is_null();
    if ((*native_risks)[r] > 0.5) {
      EXPECT_GE(final_stats.frequency[r], 2.0) << "risky row " << r;
    } else {
      EXPECT_FALSE(has_null) << "safe row " << r << " was touched";
    }
  }
}

TEST(BridgeTest, CategorizationProgramViaEngine) {
  // Algorithm 1 run declaratively: the existential category of Rule 1 is
  // unified by the EGD with the category borrowed through #similar.
  vadalog::EngineOptions engine_options;
  vadalog::Engine engine(engine_options);
  VadalogBridge bridge;
  bridge.RegisterExternals(&engine, nullptr);
  vadalog::Database db;
  db.AddFact("att", {Value::String("I&G"), Value::String("Residential Rev.")});
  db.AddFact("expbase", {Value::String("residential revenue"),
                         Value::String("Quasi-identifier")});
  auto stats =
      vadalog::RunSource(VadalogBridge::CategorizationProgram(), &db, &engine);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  ASSERT_EQ(db.Rows("cat").size(), 1u);
  EXPECT_TRUE(db.Contains("cat", {Value::String("I&G"),
                                  Value::String("Residential Rev."),
                                  Value::String("Quasi-identifier")}));
  // Rule 3 fed the decision back into the experience base.
  EXPECT_TRUE(db.Contains("expbase", {Value::String("Residential Rev."),
                                      Value::String("Quasi-identifier")}));
}

TEST(BridgeTest, CategorizationUnknownAttributeKeepsNull) {
  vadalog::Engine engine;
  VadalogBridge bridge;
  bridge.RegisterExternals(&engine, nullptr);
  vadalog::Database db;
  db.AddFact("att", {Value::String("I&G"), Value::String("zorblax")});
  auto stats =
      vadalog::RunSource(VadalogBridge::CategorizationProgram(), &db, &engine);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  ASSERT_EQ(db.Rows("cat").size(), 1u);
  // No experience matched: the category stays an existential labelled null —
  // the human-in-the-loop marker.
  EXPECT_TRUE(db.Rows("cat")[0][2].is_null());
}

TEST(BridgeTest, RelExternalEnumeratesClusters) {
  OwnershipGraph graph;
  graph.AddOwnership("a", "b", 0.8);
  vadalog::Engine engine;
  VadalogBridge bridge;
  bridge.RegisterExternals(&engine, &graph);
  vadalog::Database db;
  db.AddFact("company", {Value::String("a")});
  auto stats = vadalog::RunSource(
      "linked(X, Y) :- company(X), #rel(X, Y).", &db, &engine);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_TRUE(db.Contains("linked", {Value::String("a"), Value::String("a")}));
  EXPECT_TRUE(db.Contains("linked", {Value::String("a"), Value::String("b")}));
}

TEST(BridgeTest, EnhancedCyclePropagatesClusterRiskDeclaratively) {
  // Algorithm 9 end-to-end on the engine: a risky outlier drags its
  // #rel-linked partners into anonymization, through the monotone mprod.
  MicrodataTable t("net", {{"Id", "", AttributeCategory::kIdentifier},
                           {"Area", "", AttributeCategory::kQuasiIdentifier},
                           {"Sector", "", AttributeCategory::kQuasiIdentifier}});
  const struct {
    const char* id;
    const char* area;
    const char* sector;
  } kRows[] = {
      {"h", "North", "Financial"},  // Unique: risky outlier.
      {"a", "North", "Commerce"},   // Linked to h, safe alone (pair).
      {"a2", "North", "Commerce"},
      {"z", "South", "Energy"},     // Unlinked pair: safe.
      {"z2", "South", "Energy"},
  };
  for (const auto& r : kRows) {
    ASSERT_TRUE(
        t.AddRow({Value::String(r.id), Value::String(r.area), Value::String(r.sector)})
            .ok());
  }
  OwnershipGraph graph;
  graph.AddOwnership("h", "a", 0.8);

  VadalogBridge bridge;
  vadalog::RunStats baseline_stats;
  OwnershipGraph no_links;
  auto baseline = bridge.RunDeclarativeEnhancedCycle(t, no_links, &baseline_stats);
  ASSERT_TRUE(baseline.ok());
  vadalog::RunStats stats;
  auto out = bridge.RunDeclarativeEnhancedCycle(t, graph, &stats);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  // The link made the partner risky by propagation: strictly more
  // #anonymize invocations than without the link.
  EXPECT_GT(stats.action_invocations, baseline_stats.action_invocations);
  // The release stays safe and untouched where no risk exists.
  KAnonymityRisk risk;
  RiskContext ctx;
  ctx.k = 2;
  auto final_risks = risk.ComputeRisks(*out, ctx);
  ASSERT_TRUE(final_risks.ok());
  for (const double r : *final_risks) EXPECT_LE(r, 0.5);
  auto has_null = [&](size_t row) {
    for (const size_t c : out->QuasiIdentifierColumns()) {
      if (out->cell(row, c).is_null()) return true;
    }
    return false;
  };
  EXPECT_FALSE(has_null(3));  // The unlinked pair is untouched.
  EXPECT_FALSE(has_null(4));
}

TEST(BridgeTest, EnhancedCycleWithoutLinksMatchesBasicCycle) {
  const MicrodataTable input = Figure5Microdata();
  OwnershipGraph empty_graph;
  VadalogBridge bridge;
  auto basic = bridge.RunDeclarativeCycle(input, nullptr, nullptr);
  auto enhanced = bridge.RunDeclarativeEnhancedCycle(input, empty_graph, nullptr);
  ASSERT_TRUE(basic.ok());
  ASSERT_TRUE(enhanced.ok()) << enhanced.status().ToString();
  // With only reflexive #rel pairs the cluster risk equals the base risk:
  // both releases must be 2-anonymous. The enhanced program re-validates
  // original versions once the cluster facts settle, so it may release a
  // release with *fewer* nulls — never more.
  KAnonymityRisk risk;
  RiskContext ctx;
  ctx.k = 2;
  for (const auto* release : {&*basic, &*enhanced}) {
    auto risks = risk.ComputeRisks(*release, ctx);
    ASSERT_TRUE(risks.ok());
    for (const double r : *risks) EXPECT_LE(r, 0.5);
  }
  EXPECT_LE(enhanced->CountNullCells(), basic->CountNullCells());
}

TEST(BridgeTest, StandardSemanticsCycleInjectsMoreNulls) {
  // Fig. 7c at bridge level: with maybe_match disabled the declarative cycle
  // needs to suppress everything on risky tuples.
  const MicrodataTable input = Figure5Microdata();
  VadalogBridge maybe{BridgeOptions{}};
  BridgeOptions standard_options;
  standard_options.maybe_match = false;
  VadalogBridge standard{standard_options};
  auto out_maybe = maybe.RunDeclarativeCycle(input, nullptr, nullptr);
  auto out_standard = standard.RunDeclarativeCycle(input, nullptr, nullptr);
  ASSERT_TRUE(out_maybe.ok());
  ASSERT_TRUE(out_standard.ok());
  EXPECT_GT(out_standard->CountNullCells(), out_maybe->CountNullCells());
}

}  // namespace
}  // namespace vadasa::core
