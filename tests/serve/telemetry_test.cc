// End-to-end telemetry through the serving stack: trace-id echo and
// propagation into spans, the telemetry verb, nanosecond job timings, and the
// slow-request log — plus the invariant that none of it changes results.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/json.h"
#include "core/datagen.h"
#include "obs/metrics.h"
#include "obs/request_log.h"
#include "obs/trace.h"
#include "serve/protocol.h"

namespace vadasa::serve {
namespace {

bool IsTraceHex(const std::string& s) {
  if (s.size() != 16) return false;
  for (const char c : s) {
    const bool ok = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
    if (!ok) return false;
  }
  return true;
}

class ServeTelemetryTest : public ::testing::Test {
 protected:
  ServeTelemetryTest()
      : scheduler_(SchedulerOptions{}), protocol_(&registry_, &scheduler_) {
    EXPECT_TRUE(registry_.Register("fig5", core::Figure5Microdata()).ok());
  }

  Json Call(const std::string& line) {
    bool shutdown = false;
    auto parsed = Json::Parse(protocol_.Handle(line, &shutdown));
    EXPECT_TRUE(parsed.ok());
    return parsed.ok() ? *parsed : Json();
  }

  /// Submits a job and blocks for its terminal result.
  Json SubmitAndWait(const std::string& action) {
    const Json submitted = Call(R"({"op":"submit","dataset":"fig5","action":")" +
                                action + R"("})");
    EXPECT_TRUE(submitted.GetBool("ok", false)) << submitted.Dump();
    return Call(R"({"op":"result","id":)" +
                std::to_string(submitted.GetInt("id", 0)) + "}");
  }

  DatasetRegistry registry_;
  JobScheduler scheduler_;
  Protocol protocol_;
};

TEST_F(ServeTelemetryTest, EveryResponseEchoesATraceId) {
  for (const char* line :
       {R"({"op":"ping"})", R"({"op":"datasets"})", R"({"op":"metrics"})",
        R"({"op":"telemetry"})", R"({"op":"frobnicate"})", "not json"}) {
    const Json response = Call(line);
    EXPECT_TRUE(IsTraceHex(response.GetString("trace_id", "")))
        << line << " -> " << response.Dump();
    EXPECT_NE(response.GetString("trace_id", ""), "0000000000000000") << line;
  }
}

TEST_F(ServeTelemetryTest, InstalledTraceIdIsEchoedVerbatim) {
  const uint64_t trace = obs::MintTraceId();
  obs::ScopedTraceId scope(trace);
  const Json response = Call(R"({"op":"ping"})");
  EXPECT_EQ(response.GetString("trace_id", ""), obs::TraceIdToHex(trace));
}

TEST_F(ServeTelemetryTest, JobCarriesSubmitTraceIntoStatusAndResult) {
  const uint64_t trace = obs::MintTraceId();
  std::string id;
  {
    obs::ScopedTraceId scope(trace);
    const Json submitted =
        Call(R"({"op":"submit","dataset":"fig5","action":"risk"})");
    ASSERT_TRUE(submitted.GetBool("ok", false));
    id = std::to_string(submitted.GetInt("id", 0));
  }
  // Queried from a different (un-traced) context: the job still reports the
  // trace it was submitted under.
  const Json result = Call(R"({"op":"result","id":)" + id + "}");
  ASSERT_TRUE(result.GetBool("ok", false)) << result.Dump();
  EXPECT_EQ(result.GetString("job_trace_id", ""), obs::TraceIdToHex(trace));
  EXPECT_GE(result.GetInt("queued_ns", -1), 0);
  EXPECT_GT(result.GetInt("run_ns", -1), 0);
  const Json status = Call(R"({"op":"status","id":)" + id + "}");
  EXPECT_EQ(status.GetString("job_trace_id", ""), obs::TraceIdToHex(trace));
  EXPECT_GT(status.GetInt("run_ns", -1), 0);
}

TEST_F(ServeTelemetryTest, TelemetryVerbServesPrometheusAndSeries) {
  Call(R"({"op":"ping"})");  // Ensure at least one op latency exists.
  const Json response = Call(R"({"op":"telemetry"})");
  ASSERT_TRUE(response.GetBool("ok", false)) << response.Dump();
  const std::string prom = response.GetString("prometheus", "");
  EXPECT_NE(prom.find("# TYPE "), std::string::npos);
  EXPECT_NE(prom.find("vadasa_serve_op_latency_ms{op=\"ping\""),
            std::string::npos);
  ASSERT_TRUE(response["series"].is_object()) << response.Dump();
  EXPECT_TRUE(response["series"]["t_ms"].is_array());
  EXPECT_TRUE(response["series"]["queue_depth"].is_array());
}

TEST_F(ServeTelemetryTest, OnlyKnownOpsMintLatencyMetrics) {
  Call(R"({"op":"ping"})");
  Call(R"({"op":"frobnicate_xyz"})");
  bool saw_ping = false, saw_invalid = false, saw_frobnicate = false;
  for (const auto& [name, value] :
       obs::MetricsRegistry::Global().Snapshot()) {
    (void)value;
    if (name == "serve.op.ping.latency_ms.count") saw_ping = true;
    if (name == "serve.op.invalid.latency_ms.count") saw_invalid = true;
    if (name.find("frobnicate") != std::string::npos) saw_frobnicate = true;
  }
  EXPECT_TRUE(saw_ping);
  EXPECT_TRUE(saw_invalid);
  EXPECT_FALSE(saw_frobnicate);  // Unknown verbs fold into "invalid".
}

TEST_F(ServeTelemetryTest, SlowLogRecordsTerminalJobs) {
  const std::string path =
      testing::TempDir() + "/serve_slowlog_" + std::to_string(::getpid()) + ".ndjson";
  obs::RequestLog log(path, /*threshold_ms=*/0.0);
  ASSERT_TRUE(log.ok());
  SchedulerOptions options;
  options.slow_log = &log;
  JobScheduler scheduler(options);
  Protocol protocol(&registry_, &scheduler);
  bool shutdown = false;
  auto submitted = Json::Parse(protocol.Handle(
      R"({"op":"submit","dataset":"fig5","action":"risk"})", &shutdown));
  ASSERT_TRUE(submitted.ok());
  protocol.Handle(R"({"op":"result","id":)" +
                      std::to_string(submitted->GetInt("id", 0)) + "}",
                  &shutdown);
  EXPECT_EQ(log.lines_written(), 1u);
  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  auto entry = Json::Parse(line);
  ASSERT_TRUE(entry.ok()) << line;
  EXPECT_EQ(entry->GetString("op", ""), "risk");
  EXPECT_EQ(entry->GetString("dataset", ""), "fig5");
  EXPECT_EQ(entry->GetString("outcome", ""), "done");
  EXPECT_TRUE(IsTraceHex(entry->GetString("trace_id", "")));
  std::remove(path.c_str());
}

#ifndef VADASA_DISABLE_OBS

TEST_F(ServeTelemetryTest, ConcurrentRequestsKeepTraceIdsDistinct) {
  // N concurrent clients, each with its own minted trace id: every job span
  // recorded by the scheduler must carry exactly the trace of the request
  // that submitted it, and every request must see its own id echoed.
  constexpr int kClients = 8;
  obs::StartTracing();
  std::vector<std::string> echoed(kClients);
  std::vector<std::string> expected(kClients);
  {
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (int i = 0; i < kClients; ++i) {
      clients.emplace_back([this, i, &echoed, &expected] {
        const uint64_t trace = obs::MintTraceId();
        expected[i] = obs::TraceIdToHex(trace);
        obs::ScopedTraceId scope(trace);
        bool shutdown = false;
        auto submitted = Json::Parse(protocol_.Handle(
            R"({"op":"submit","dataset":"fig5","action":"risk"})", &shutdown));
        ASSERT_TRUE(submitted.ok());
        auto result = Json::Parse(protocol_.Handle(
            R"({"op":"result","id":)" +
                std::to_string(submitted->GetInt("id", 0)) + "}",
            &shutdown));
        ASSERT_TRUE(result.ok());
        echoed[i] = result->GetString("job_trace_id", "");
      });
    }
    for (std::thread& t : clients) t.join();
  }
  obs::StopTracing();

  // Each client got its own trace back, and all ids are distinct.
  std::set<std::string> distinct;
  for (int i = 0; i < kClients; ++i) {
    EXPECT_EQ(echoed[i], expected[i]) << "client " << i;
    distinct.insert(expected[i]);
  }
  EXPECT_EQ(distinct.size(), static_cast<size_t>(kClients));

  // Every serve.job / serve.queue_wait span maps to exactly one request.
  std::set<std::string> span_traces;
  size_t job_spans = 0;
  for (const obs::SpanEvent& s : obs::CollectSpans()) {
    const std::string name = s.name;
    if (name != "serve.job" && name != "serve.queue_wait") continue;
    const std::string hex = obs::TraceIdToHex(s.trace);
    EXPECT_EQ(distinct.count(hex), 1u)
        << name << " span with unknown trace " << hex;
    span_traces.insert(hex);
    if (name == "serve.job") ++job_spans;
  }
  EXPECT_EQ(job_spans, static_cast<size_t>(kClients));
  EXPECT_EQ(span_traces.size(), static_cast<size_t>(kClients));
}

TEST_F(ServeTelemetryTest, TracingDoesNotChangeAnonymizationBytes) {
  const Json untraced = SubmitAndWait("anonymize");
  ASSERT_EQ(untraced.GetString("state", ""), "done") << untraced.Dump();
  obs::StartTracing();
  const Json traced = SubmitAndWait("anonymize");
  obs::StopTracing();
  ASSERT_EQ(traced.GetString("state", ""), "done") << traced.Dump();
  EXPECT_EQ(traced.GetString("csv", ""), untraced.GetString("csv", ""));
  EXPECT_EQ(traced.GetString("audit", ""), untraced.GetString("audit", ""));
}

#endif  // VADASA_DISABLE_OBS

}  // namespace
}  // namespace vadasa::serve
