#include "serve/scheduler.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "common/csv.h"
#include "core/datagen.h"
#include "obs/metrics.h"

namespace vadasa::serve {
namespace {

using core::Figure5Microdata;

api::Session Fig5Session(int k = 2) {
  api::SessionOptions options;
  options.k = k;
  auto session = api::Session::FromTable(Figure5Microdata(), options);
  EXPECT_TRUE(session.ok()) << session.status().ToString();
  return std::move(*session);
}

JobRequest RiskJob(api::Session session) {
  JobRequest request;
  request.session = std::move(session);
  request.action = JobAction::kRisk;
  return request;
}

JobRequest AnonJob(api::Session session) {
  JobRequest request;
  request.session = std::move(session);
  request.action = JobAction::kAnonymize;
  return request;
}

TEST(JobSchedulerTest, RunsRiskAndAnonymizeJobs) {
  JobScheduler scheduler;
  auto risk_id = scheduler.Submit(RiskJob(Fig5Session()));
  auto anon_id = scheduler.Submit(AnonJob(Fig5Session()));
  ASSERT_TRUE(risk_id.ok());
  ASSERT_TRUE(anon_id.ok());

  auto risk = scheduler.Wait(*risk_id);
  ASSERT_TRUE(risk.ok());
  EXPECT_EQ(risk->state, JobState::kDone);
  EXPECT_TRUE(risk->status.ok());
  auto direct = Fig5Session().Risk();
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(risk->risk.tuple_risks, direct->tuple_risks);

  auto anon = scheduler.Wait(*anon_id);
  ASSERT_TRUE(anon.ok());
  EXPECT_EQ(anon->state, JobState::kDone);
  auto direct_anon = Fig5Session().Anonymize();
  ASSERT_TRUE(direct_anon.ok());
  EXPECT_EQ(WriteCsv(anon->anonymize.table.ToCsv()),
            WriteCsv(direct_anon->table.ToCsv()));
}

TEST(JobSchedulerTest, SaturationRejectsInsteadOfBlocking) {
  SchedulerOptions options;
  options.workers = 1;
  options.max_queue = 2;
  options.start_paused = true;  // Nothing runs: the queue stays full.
  JobScheduler scheduler(options);

  ASSERT_TRUE(scheduler.Submit(RiskJob(Fig5Session())).ok());
  ASSERT_TRUE(scheduler.Submit(RiskJob(Fig5Session())).ok());
  EXPECT_EQ(scheduler.queue_depth(), 2u);

  const auto before = std::chrono::steady_clock::now();
  auto rejected = scheduler.Submit(RiskJob(Fig5Session()));
  const auto elapsed = std::chrono::steady_clock::now() - before;
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kUnavailable);
  // Rejection is immediate — admission control never blocks the caller.
  EXPECT_LT(std::chrono::duration<double>(elapsed).count(), 1.0);
  EXPECT_EQ(scheduler.queue_depth(), 2u);

  // The admitted jobs still complete once execution starts.
  scheduler.Resume();
  scheduler.Shutdown(/*drain=*/true);
  for (uint64_t id : {uint64_t{1}, uint64_t{2}}) {
    auto result = scheduler.Peek(id);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->state, JobState::kDone);
  }
}

TEST(JobSchedulerTest, ShutdownDrainsQueuedJobs) {
  SchedulerOptions options;
  options.workers = 2;
  options.start_paused = true;
  JobScheduler scheduler(options);
  std::vector<uint64_t> ids;
  for (int i = 0; i < 3; ++i) {
    auto id = scheduler.Submit(AnonJob(Fig5Session()));
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  // Drain: queued jobs execute to completion even though they never started
  // before shutdown was requested.
  scheduler.Shutdown(/*drain=*/true);
  for (uint64_t id : ids) {
    auto result = scheduler.Peek(id);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->state, JobState::kDone) << "job " << id;
    EXPECT_GT(result->anonymize.table.num_rows(), 0u);
  }
  EXPECT_EQ(scheduler.queue_depth(), 0u);
}

TEST(JobSchedulerTest, ShutdownWithoutDrainCancelsQueuedJobs) {
  SchedulerOptions options;
  options.start_paused = true;
  JobScheduler scheduler(options);
  auto id = scheduler.Submit(RiskJob(Fig5Session()));
  ASSERT_TRUE(id.ok());
  scheduler.Shutdown(/*drain=*/false);
  auto result = scheduler.Peek(*id);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->state, JobState::kCancelled);
  EXPECT_EQ(result->status.code(), StatusCode::kCancelled);
}

TEST(JobSchedulerTest, SubmitAfterShutdownIsRejected) {
  JobScheduler scheduler;
  scheduler.Shutdown();
  auto id = scheduler.Submit(RiskJob(Fig5Session()));
  ASSERT_FALSE(id.ok());
  EXPECT_EQ(id.status().code(), StatusCode::kUnavailable);
}

TEST(JobSchedulerTest, CancelQueuedJob) {
  SchedulerOptions options;
  options.start_paused = true;
  JobScheduler scheduler(options);
  auto id = scheduler.Submit(RiskJob(Fig5Session()));
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(scheduler.Cancel(*id).ok());
  EXPECT_EQ(scheduler.queue_depth(), 0u);
  scheduler.Resume();
  auto result = scheduler.Wait(*id);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->state, JobState::kCancelled);
}

TEST(JobSchedulerTest, QueuedDeadlineExpires) {
  SchedulerOptions options;
  options.start_paused = true;
  JobScheduler scheduler(options);
  JobOptions job_options;
  job_options.timeout_seconds = 0.005;
  auto id = scheduler.Submit(RiskJob(Fig5Session()), job_options);
  ASSERT_TRUE(id.ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  scheduler.Resume();
  auto result = scheduler.Wait(*id);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->state, JobState::kExpired);
  EXPECT_EQ(result->status.code(), StatusCode::kDeadlineExceeded);
}

TEST(JobSchedulerTest, PriorityRunsFirstOnASingleWorker) {
  SchedulerOptions options;
  options.workers = 1;
  options.start_paused = true;
  JobScheduler scheduler(options);
  JobOptions relaxed;
  relaxed.priority = 0;
  auto low = scheduler.Submit(RiskJob(Fig5Session()), relaxed);
  JobOptions urgent;
  urgent.priority = 5;
  auto high = scheduler.Submit(RiskJob(Fig5Session()), urgent);
  ASSERT_TRUE(low.ok());
  ASSERT_TRUE(high.ok());
  scheduler.Resume();
  scheduler.Shutdown(/*drain=*/true);
  auto low_result = scheduler.Peek(*low);
  auto high_result = scheduler.Peek(*high);
  ASSERT_TRUE(low_result.ok());
  ASSERT_TRUE(high_result.ok());
  // One worker: the high-priority job runs first, so the low one's queue
  // wait includes the high one's run time.
  EXPECT_GE(low_result->queue_seconds, high_result->queue_seconds);
  EXPECT_EQ(low_result->state, JobState::kDone);
  EXPECT_EQ(high_result->state, JobState::kDone);
}

TEST(JobSchedulerTest, UnknownIdsReportNotFound) {
  JobScheduler scheduler;
  EXPECT_EQ(scheduler.State(42).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(scheduler.Peek(42).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(scheduler.Wait(42).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(scheduler.Cancel(42).code(), StatusCode::kNotFound);
}

TEST(JobSchedulerTest, ConcurrentJobsMatchSequentialFacadeCalls) {
  const int kJobs = 8;
  // Sequential reference.
  std::vector<std::string> expected_csv;
  std::vector<std::vector<double>> expected_risks;
  for (int i = 0; i < kJobs; ++i) {
    auto anon = Fig5Session().Anonymize();
    ASSERT_TRUE(anon.ok());
    expected_csv.push_back(WriteCsv(anon->table.ToCsv()));
    auto risk = Fig5Session().Risk();
    ASSERT_TRUE(risk.ok());
    expected_risks.push_back(risk->tuple_risks);
  }
  SchedulerOptions options;
  options.workers = 4;
  JobScheduler scheduler(options);
  std::vector<uint64_t> anon_ids, risk_ids;
  for (int i = 0; i < kJobs; ++i) {
    auto a = scheduler.Submit(AnonJob(Fig5Session()));
    auto r = scheduler.Submit(RiskJob(Fig5Session()));
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(r.ok());
    anon_ids.push_back(*a);
    risk_ids.push_back(*r);
  }
  for (int i = 0; i < kJobs; ++i) {
    auto a = scheduler.Wait(anon_ids[i]);
    ASSERT_TRUE(a.ok());
    ASSERT_EQ(a->state, JobState::kDone) << a->status.ToString();
    EXPECT_EQ(WriteCsv(a->anonymize.table.ToCsv()), expected_csv[i]);
    auto r = scheduler.Wait(risk_ids[i]);
    ASSERT_TRUE(r.ok());
    ASSERT_EQ(r->state, JobState::kDone);
    EXPECT_EQ(r->risk.tuple_risks, expected_risks[i]);
  }
}

TEST(JobSchedulerTest, WarmupCoalescesAcrossJobsOnSharedDataset) {
  auto& registry = obs::MetricsRegistry::Global();
  obs::Counter* warmups = registry.counter("serve.batch.warmups");
  obs::Counter* hits = registry.counter("serve.batch.coalesce_hits");
  const uint64_t warmups_before = warmups->value();
  const uint64_t hits_before = hits->value();

  // One shared table, several sessions with the same semantics: the batch
  // computes group statistics once, every other job adopts them.
  auto table = std::make_shared<const core::MicrodataTable>(Figure5Microdata());
  SchedulerOptions options;
  options.workers = 2;
  options.start_paused = true;
  JobScheduler scheduler(options);
  std::vector<uint64_t> ids;
  for (int i = 0; i < 6; ++i) {
    auto session = api::Session::FromShared(table, nullptr, {});
    ASSERT_TRUE(session.ok());
    auto id = scheduler.Submit(RiskJob(std::move(*session)));
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  scheduler.Resume();
  scheduler.Shutdown(/*drain=*/true);
  for (uint64_t id : ids) {
    auto result = scheduler.Peek(id);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->state, JobState::kDone);
  }
  EXPECT_EQ(warmups->value() - warmups_before, 1u);
  EXPECT_EQ(hits->value() - hits_before, 5u);
}

TEST(JobSchedulerTest, MetricsCountOutcomes) {
  auto& registry = obs::MetricsRegistry::Global();
  const uint64_t completed_before =
      registry.counter("serve.completed")->value();
  const uint64_t rejected_before = registry.counter("serve.rejected")->value();
  SchedulerOptions options;
  options.workers = 1;
  options.max_queue = 1;
  options.start_paused = true;
  JobScheduler scheduler(options);
  ASSERT_TRUE(scheduler.Submit(RiskJob(Fig5Session())).ok());
  ASSERT_FALSE(scheduler.Submit(RiskJob(Fig5Session())).ok());
  scheduler.Resume();
  scheduler.Shutdown(/*drain=*/true);
  EXPECT_EQ(registry.counter("serve.completed")->value() - completed_before, 1u);
  EXPECT_EQ(registry.counter("serve.rejected")->value() - rejected_before, 1u);
}

}  // namespace
}  // namespace vadasa::serve
