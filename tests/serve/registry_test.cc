#include "serve/dataset_registry.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "core/datagen.h"

namespace vadasa::serve {
namespace {

/// Writes a small CSV to a unique temp path; removed at destruction.
class TempCsv {
 public:
  explicit TempCsv(const std::string& contents) {
    path_ = ::testing::TempDir() + "vadasa_registry_" +
            std::to_string(reinterpret_cast<uintptr_t>(this)) + ".csv";
    std::ofstream out(path_);
    out << contents;
  }
  ~TempCsv() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

constexpr const char* kCsv =
    "name,zip,age\nalice,10001,34\nbob,10001,34\ncarol,10002,41\n";

TEST(DatasetRegistryTest, LoadsOnceAndShares) {
  TempCsv csv(kCsv);
  DatasetRegistry registry;
  auto first = registry.Load(csv.path());
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  auto second = registry.Load(csv.path());
  ASSERT_TRUE(second.ok());
  // Same shared snapshot, not a re-parse.
  EXPECT_EQ(first->get(), second->get());
  EXPECT_EQ((*first)->table->num_rows(), 3u);
  EXPECT_EQ(registry.Catalog(), std::vector<std::string>{csv.path()});
}

TEST(DatasetRegistryTest, MissingFileFails) {
  DatasetRegistry registry;
  auto loaded = registry.Load("/does/not/exist.csv");
  EXPECT_FALSE(loaded.ok());
  EXPECT_TRUE(registry.Catalog().empty());
}

TEST(DatasetRegistryTest, RegisterRejectsCollisions) {
  DatasetRegistry registry;
  ASSERT_TRUE(registry.Register("fig5", core::Figure5Microdata()).ok());
  const Status dup = registry.Register("fig5", core::Figure5Microdata());
  EXPECT_EQ(dup.code(), StatusCode::kAlreadyExists);
}

TEST(DatasetRegistryTest, OpenSessionSharesTheSnapshot) {
  DatasetRegistry registry;
  ASSERT_TRUE(registry.Register("fig5", core::Figure5Microdata()).ok());
  auto a = registry.OpenSession("fig5", {});
  auto b = registry.OpenSession("fig5", {});
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->shared_table().get(), b->shared_table().get());
  EXPECT_TRUE(a->Risk().ok());
}

TEST(DatasetRegistryTest, OpenSessionValidatesOptions) {
  DatasetRegistry registry;
  ASSERT_TRUE(registry.Register("fig5", core::Figure5Microdata()).ok());
  api::SessionOptions bad;
  bad.risk_measure = "nonsense";
  EXPECT_FALSE(registry.OpenSession("fig5", bad).ok());
}

TEST(DatasetRegistryTest, ApplyDeltaPublishesANewGenerationAndKeepsOldSnapshots) {
  DatasetRegistry registry;
  ASSERT_TRUE(registry.Register("fig5", core::Figure5Microdata()).ok());
  auto before = registry.Load("fig5");
  ASSERT_TRUE(before.ok());
  // A session over the pre-delta snapshot stands in for an in-flight job.
  auto pre = api::Session::FromShared((*before)->table, (*before)->dictionary, {});
  ASSERT_TRUE(pre.ok());
  auto pre_risk = pre->Risk();
  ASSERT_TRUE(pre_risk.ok());

  core::DeltaBatchBuilder builder((*before)->table->num_columns());
  builder.Delete(6);
  auto batch = builder.Build();
  ASSERT_TRUE(batch.ok());
  auto after = registry.ApplyDelta("fig5", *batch);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ((*after)->version, 2u);
  EXPECT_EQ((*after)->table->num_rows(), 6u);
  EXPECT_NE((*after)->fingerprint, (*before)->fingerprint);

  // The snapshot this test still holds is untouched and keeps serving the
  // exact pre-delta results.
  EXPECT_EQ((*before)->version, 1u);
  EXPECT_EQ((*before)->table->num_rows(), 7u);
  auto replay = api::Session::FromShared((*before)->table, (*before)->dictionary, {});
  ASSERT_TRUE(replay.ok());
  auto replay_risk = replay->Risk();
  ASSERT_TRUE(replay_risk.ok());
  EXPECT_EQ(replay_risk->tuple_risks, pre_risk->tuple_risks);

  // New loads hand out the post-delta generation.
  auto now = registry.Load("fig5");
  ASSERT_TRUE(now.ok());
  EXPECT_EQ(now->get(), after->get());
}

TEST(DatasetRegistryTest, ApplyDeltaValidationLeavesTheSnapshotUntouched) {
  DatasetRegistry registry;
  ASSERT_TRUE(registry.Register("fig5", core::Figure5Microdata()).ok());
  auto before = registry.Load("fig5");
  ASSERT_TRUE(before.ok());
  core::DeltaBatchBuilder builder((*before)->table->num_columns());
  builder.Delete(99);  // Out of range for the 7-row table.
  auto batch = builder.Build();
  ASSERT_TRUE(batch.ok());
  const auto applied = registry.ApplyDelta("fig5", *batch);
  EXPECT_FALSE(applied.ok());
  EXPECT_EQ(applied.status().code(), StatusCode::kInvalidArgument);
  auto still = registry.Load("fig5");
  ASSERT_TRUE(still.ok());
  EXPECT_EQ(still->get(), before->get()) << "rejected deltas publish nothing";
  EXPECT_EQ((*still)->version, 1u);

  core::DeltaBatchBuilder empty_builder(5);
  const auto missing =
      registry.ApplyDelta("not-registered", *empty_builder.Build());
  EXPECT_FALSE(missing.ok());
}

TEST(DatasetRegistryTest, ClearKeepsLiveSnapshotsValid) {
  TempCsv csv(kCsv);
  DatasetRegistry registry;
  auto loaded = registry.Load(csv.path());
  ASSERT_TRUE(loaded.ok());
  registry.Clear();
  EXPECT_TRUE(registry.Catalog().empty());
  // The shared_ptr we hold keeps the dataset alive past the eviction.
  EXPECT_EQ((*loaded)->table->num_rows(), 3u);
}

}  // namespace
}  // namespace vadasa::serve
