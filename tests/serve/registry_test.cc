#include "serve/dataset_registry.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "core/datagen.h"

namespace vadasa::serve {
namespace {

/// Writes a small CSV to a unique temp path; removed at destruction.
class TempCsv {
 public:
  explicit TempCsv(const std::string& contents) {
    path_ = ::testing::TempDir() + "vadasa_registry_" +
            std::to_string(reinterpret_cast<uintptr_t>(this)) + ".csv";
    std::ofstream out(path_);
    out << contents;
  }
  ~TempCsv() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

constexpr const char* kCsv =
    "name,zip,age\nalice,10001,34\nbob,10001,34\ncarol,10002,41\n";

TEST(DatasetRegistryTest, LoadsOnceAndShares) {
  TempCsv csv(kCsv);
  DatasetRegistry registry;
  auto first = registry.Load(csv.path());
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  auto second = registry.Load(csv.path());
  ASSERT_TRUE(second.ok());
  // Same shared snapshot, not a re-parse.
  EXPECT_EQ(first->get(), second->get());
  EXPECT_EQ((*first)->table->num_rows(), 3u);
  EXPECT_EQ(registry.Catalog(), std::vector<std::string>{csv.path()});
}

TEST(DatasetRegistryTest, MissingFileFails) {
  DatasetRegistry registry;
  auto loaded = registry.Load("/does/not/exist.csv");
  EXPECT_FALSE(loaded.ok());
  EXPECT_TRUE(registry.Catalog().empty());
}

TEST(DatasetRegistryTest, RegisterRejectsCollisions) {
  DatasetRegistry registry;
  ASSERT_TRUE(registry.Register("fig5", core::Figure5Microdata()).ok());
  const Status dup = registry.Register("fig5", core::Figure5Microdata());
  EXPECT_EQ(dup.code(), StatusCode::kAlreadyExists);
}

TEST(DatasetRegistryTest, OpenSessionSharesTheSnapshot) {
  DatasetRegistry registry;
  ASSERT_TRUE(registry.Register("fig5", core::Figure5Microdata()).ok());
  auto a = registry.OpenSession("fig5", {});
  auto b = registry.OpenSession("fig5", {});
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->shared_table().get(), b->shared_table().get());
  EXPECT_TRUE(a->Risk().ok());
}

TEST(DatasetRegistryTest, OpenSessionValidatesOptions) {
  DatasetRegistry registry;
  ASSERT_TRUE(registry.Register("fig5", core::Figure5Microdata()).ok());
  api::SessionOptions bad;
  bad.risk_measure = "nonsense";
  EXPECT_FALSE(registry.OpenSession("fig5", bad).ok());
}

TEST(DatasetRegistryTest, ClearKeepsLiveSnapshotsValid) {
  TempCsv csv(kCsv);
  DatasetRegistry registry;
  auto loaded = registry.Load(csv.path());
  ASSERT_TRUE(loaded.ok());
  registry.Clear();
  EXPECT_TRUE(registry.Catalog().empty());
  // The shared_ptr we hold keeps the dataset alive past the eviction.
  EXPECT_EQ((*loaded)->table->num_rows(), 3u);
}

}  // namespace
}  // namespace vadasa::serve
