// Result-cache unit tests (docs/serving.md): keying (content fingerprint +
// canonical policy), LRU eviction against the byte budget, invalidation
// through the registry's quarantine path, and fills raced against reads
// under the serve.cache.fill failpoint. The end-to-end coherence contract
// lives in the cached-result-bit-identical property.

#include "serve/result_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/csv.h"
#include "common/failpoint.h"
#include "core/datagen.h"
#include "obs/metrics.h"
#include "serve/dataset_registry.h"

namespace vadasa::serve {
namespace {

using core::Figure5Microdata;

uint64_t CounterValue(const char* name) {
  return obs::MetricsRegistry::Global().counter(name)->value();
}

/// A risk payload whose ApproxResultBytes is exactly 128 + 8 * doubles.
CachedResult RiskResult(size_t doubles, double fill = 0.5) {
  CachedResult result;
  result.action = JobAction::kRisk;
  result.risk.tuple_risks.assign(doubles, fill);
  return result;
}

class ResultCacheTest : public ::testing::Test {
 protected:
  void TearDown() override { failpoint::DisarmAll(); }
};

// --- Keying -----------------------------------------------------------------

TEST_F(ResultCacheTest, FingerprintFlipsOnAOneCellEdit) {
  const core::MicrodataTable original = Figure5Microdata();
  core::MicrodataTable edited = original;
  ASSERT_GT(edited.num_rows(), 0u);
  edited.set_cell(0, 0, Value::String("edited-cell"));

  EXPECT_EQ(FingerprintTable(original), FingerprintTable(Figure5Microdata()));
  EXPECT_NE(FingerprintTable(original), FingerprintTable(edited));
}

TEST_F(ResultCacheTest, FingerprintCoversSchemaButNotTableName) {
  const core::MicrodataTable table = Figure5Microdata();

  // Same attributes and rows under a different relation name: the registry
  // name is not part of the content, so two names over byte-identical data
  // share cached results.
  core::MicrodataTable renamed("another-name", table.attributes());
  core::MicrodataTable renamed_column("x", [&] {
    std::vector<core::Attribute> attributes = table.attributes();
    attributes[0].name += "_renamed";
    return attributes;
  }());
  core::MicrodataTable recategorized("x", [&] {
    std::vector<core::Attribute> attributes = table.attributes();
    attributes[0].category =
        attributes[0].category == core::AttributeCategory::kQuasiIdentifier
            ? core::AttributeCategory::kNonIdentifying
            : core::AttributeCategory::kQuasiIdentifier;
    return attributes;
  }());
  core::MicrodataTable same_schema("x", table.attributes());
  for (size_t r = 0; r < table.num_rows(); ++r) {
    const auto& row = table.row(r);
    ASSERT_TRUE(renamed.AddRow(row).ok());
    ASSERT_TRUE(renamed_column.AddRow(row).ok());
    ASSERT_TRUE(recategorized.AddRow(row).ok());
    ASSERT_TRUE(same_schema.AddRow(row).ok());
  }

  EXPECT_EQ(FingerprintTable(table), FingerprintTable(renamed));
  EXPECT_EQ(FingerprintTable(renamed), FingerprintTable(same_schema));
  EXPECT_NE(FingerprintTable(table), FingerprintTable(renamed_column));
  EXPECT_NE(FingerprintTable(table), FingerprintTable(recategorized));
}

TEST_F(ResultCacheTest, CanonicalPolicyKeySeparatesEveryPolicyField) {
  const api::SessionOptions base;
  const std::string key =
      CanonicalPolicyKey(base, JobAction::kRisk, -1.0, false);
  // Two identically-spelled policies collide (that is the point of
  // canonicalization: JSON field order and defaulted fields vanish).
  EXPECT_EQ(key, CanonicalPolicyKey(base, JobAction::kRisk, -1.0, false));

  std::vector<std::string> variants;
  {
    api::SessionOptions o = base;
    o.risk_measure = "suda";
    variants.push_back(CanonicalPolicyKey(o, JobAction::kRisk, -1.0, false));
  }
  {
    api::SessionOptions o = base;
    o.k += 1;
    variants.push_back(CanonicalPolicyKey(o, JobAction::kRisk, -1.0, false));
  }
  {
    api::SessionOptions o = base;
    o.threshold = o.threshold * 0.5 + 0.1;
    variants.push_back(CanonicalPolicyKey(o, JobAction::kRisk, -1.0, false));
  }
  {
    api::SessionOptions o = base;
    o.standard_nulls = !o.standard_nulls;
    variants.push_back(CanonicalPolicyKey(o, JobAction::kRisk, -1.0, false));
  }
  {
    api::SessionOptions o = base;
    o.seed += 17;
    variants.push_back(CanonicalPolicyKey(o, JobAction::kRisk, -1.0, false));
  }
  variants.push_back(CanonicalPolicyKey(base, JobAction::kAnonymize, -1.0, false));
  variants.push_back(CanonicalPolicyKey(base, JobAction::kRisk, 0.9, false));
  variants.push_back(CanonicalPolicyKey(base, JobAction::kRisk, -1.0, true));

  for (size_t i = 0; i < variants.size(); ++i) {
    EXPECT_NE(variants[i], key) << "variant " << i;
    for (size_t j = i + 1; j < variants.size(); ++j) {
      EXPECT_NE(variants[i], variants[j]) << i << " vs " << j;
    }
  }
}

TEST_F(ResultCacheTest, CacheKeyPrefixesTheHexFingerprint) {
  const std::string key = ResultCacheKey(0xdeadbeefull, "measure=x");
  EXPECT_EQ(key, "00000000deadbeef|measure=x");
  EXPECT_NE(ResultCacheKey(1, "p"), ResultCacheKey(2, "p"));
}

// --- LRU + byte budget ------------------------------------------------------

TEST_F(ResultCacheTest, EvictsLeastRecentlyUsedFirst) {
  // Three 193-byte entries fit a 600-byte budget; a fourth forces one
  // eviction. Each key is one byte: cost = 128 + 8*8 + 1 = 193.
  ResultCacheOptions options;
  options.byte_budget = 600;
  ResultCache cache(options);
  const size_t cost = 128 + 8 * 8 + 1;

  cache.Put("a", "ds", RiskResult(8, 0.1));
  cache.Put("b", "ds", RiskResult(8, 0.2));
  cache.Put("c", "ds", RiskResult(8, 0.3));
  EXPECT_EQ(cache.entries(), 3u);
  EXPECT_EQ(cache.bytes(), 3 * cost);

  // Touch "a": "b" becomes the coldest entry and must be the victim.
  CachedResult out;
  ASSERT_TRUE(cache.Get("a", &out));
  EXPECT_EQ(out.risk.tuple_risks[0], 0.1);

  const uint64_t evictions_before = CounterValue("serve.cache.evictions");
  cache.Put("d", "ds", RiskResult(8, 0.4));
  EXPECT_EQ(cache.entries(), 3u);
  EXPECT_EQ(cache.bytes(), 3 * cost);
  EXPECT_EQ(CounterValue("serve.cache.evictions") - evictions_before, 1u);
  EXPECT_FALSE(cache.Get("b", &out));
  EXPECT_TRUE(cache.Get("a", &out));
  EXPECT_TRUE(cache.Get("c", &out));
  EXPECT_TRUE(cache.Get("d", &out));
}

TEST_F(ResultCacheTest, RefreshingAKeyReplacesItsBytesNotItsCount) {
  ResultCache cache;
  cache.Put("k", "ds", RiskResult(8, 0.1));
  const size_t small = cache.bytes();
  cache.Put("k", "ds", RiskResult(64, 0.2));
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_EQ(cache.bytes(), small + (64 - 8) * 8);
  CachedResult out;
  ASSERT_TRUE(cache.Get("k", &out));
  EXPECT_EQ(out.risk.tuple_risks.size(), 64u);
  EXPECT_EQ(out.risk.tuple_risks[0], 0.2);
}

TEST_F(ResultCacheTest, OneOversizedEntryIsStillAdmitted) {
  // A single result bigger than the whole budget must not wedge the cache
  // into rejecting everything: it is admitted (alone) and evicted by the
  // next insert.
  ResultCacheOptions options;
  options.byte_budget = 64;
  ResultCache cache(options);
  cache.Put("big", "ds", RiskResult(512));
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_GT(cache.bytes(), options.byte_budget);
  cache.Put("next", "ds", RiskResult(512));
  EXPECT_EQ(cache.entries(), 1u);
  CachedResult out;
  EXPECT_FALSE(cache.Get("big", &out));
  EXPECT_TRUE(cache.Get("next", &out));
}

// --- Invalidation -----------------------------------------------------------

TEST_F(ResultCacheTest, InvalidateDatasetDropsOnlyThatDatasetsEntries) {
  ResultCache cache;
  cache.Put("k1", "alpha", RiskResult(4));
  cache.Put("k2", "alpha", RiskResult(4));
  cache.Put("k3", "beta", RiskResult(4));
  const uint64_t invalidations_before =
      CounterValue("serve.cache.invalidations");
  cache.InvalidateDataset("alpha");
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_EQ(CounterValue("serve.cache.invalidations") - invalidations_before,
            2u);
  CachedResult out;
  EXPECT_FALSE(cache.Get("k1", &out));
  EXPECT_TRUE(cache.Get("k3", &out));

  cache.InvalidateAll();
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.bytes(), 0u);
}

TEST_F(ResultCacheTest, RegistryQuarantineInvalidatesTheDatasetsEntries) {
  const std::string csv_path =
      ::testing::TempDir() + "cache_quarantine_fig5.csv";
  {
    std::ofstream out(csv_path);
    out << WriteCsv(Figure5Microdata().ToCsv());
  }
  ResultCache cache;
  DatasetRegistry registry;
  registry.set_result_cache(&cache);
  registry.set_quarantine_after(2);
  cache.Put("stale|policy", csv_path, RiskResult(4));
  cache.Put("other|policy", "unrelated", RiskResult(4));

  ASSERT_TRUE(failpoint::ArmFromSpec("serve.registry.load=error(io)").ok());
  EXPECT_FALSE(registry.Load(csv_path).ok());
  EXPECT_EQ(cache.entries(), 2u);  // One failure: not quarantined yet.
  EXPECT_FALSE(registry.Load(csv_path).ok());
  ASSERT_TRUE(registry.IsQuarantined(csv_path));

  // The quarantine transition dropped the poisoned dataset's entries and
  // nothing else.
  CachedResult out;
  EXPECT_FALSE(cache.Get("stale|policy", &out));
  EXPECT_TRUE(cache.Get("other|policy", &out));
  std::remove(csv_path.c_str());
}

// --- Fills raced against reads ---------------------------------------------

TEST_F(ResultCacheTest, SlowFillNeverServesAPartialEntry) {
  // serve.cache.fill=delay(25) stretches every fill; concurrent readers must
  // see either a clean miss or the complete entry, never a torn one.
  ASSERT_TRUE(failpoint::ArmFromSpec("serve.cache.fill=delay(25)").ok());
  ResultCache cache;
  std::atomic<bool> done{false};
  std::thread filler([&] {
    cache.Put("hot", "ds", RiskResult(256, 0.25));
    done.store(true);
  });
  size_t hits = 0;
  for (;;) {
    CachedResult out;
    if (cache.Get("hot", &out)) {
      ++hits;
      ASSERT_EQ(out.risk.tuple_risks.size(), 256u);
      for (double r : out.risk.tuple_risks) ASSERT_EQ(r, 0.25);
    }
    if (done.load() && hits > 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  filler.join();
  EXPECT_EQ(cache.entries(), 1u);
}

TEST_F(ResultCacheTest, InjectedFillFailureDropsTheFillNotTheCache) {
  ASSERT_TRUE(failpoint::ArmFromSpec("serve.cache.fill=error").ok());
  ResultCache cache;
  cache.Put("dropped", "ds", RiskResult(8));
  EXPECT_EQ(cache.entries(), 0u);
  CachedResult out;
  EXPECT_FALSE(cache.Get("dropped", &out));

  // The cache itself stays healthy once the fault clears.
  failpoint::DisarmAll();
  cache.Put("kept", "ds", RiskResult(8));
  EXPECT_TRUE(cache.Get("kept", &out));
}

}  // namespace
}  // namespace vadasa::serve
