// Fault-hardening tests (docs/robustness.md): per-client quotas and backoff
// hints, the overdue-job watchdog, registry quarantine, bounded graceful
// drain, and the socket server's oversized-line / dead-peer handling driven
// end-to-end through real failpoints and real Unix sockets.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "common/csv.h"
#include "common/failpoint.h"
#include "common/json.h"
#include "core/datagen.h"
#include "obs/metrics.h"
#include "obs/request_log.h"
#include "serve/dataset_registry.h"
#include "serve/protocol.h"
#include "serve/quota.h"
#include "serve/scheduler.h"
#include "serve/server.h"

namespace vadasa::serve {
namespace {

using core::Figure5Microdata;

api::Session Fig5Session() {
  api::SessionOptions options;
  options.k = 2;
  auto session = api::Session::FromTable(Figure5Microdata(), options);
  EXPECT_TRUE(session.ok()) << session.status().ToString();
  return std::move(*session);
}

JobRequest RiskJob() {
  JobRequest request;
  request.session = Fig5Session();
  request.action = JobAction::kRisk;
  return request;
}

uint64_t CounterValue(const char* name) {
  return obs::MetricsRegistry::Global().counter(name)->value();
}

/// Arms `spec` for the test body and guarantees disarm on exit.
class RobustnessTest : public ::testing::Test {
 protected:
  void TearDown() override { failpoint::DisarmAll(); }
};

// --- ClientQuota ------------------------------------------------------------

TEST_F(RobustnessTest, InFlightCapRejectsImmediatelyNeverBlocks) {
  QuotaOptions options;
  options.max_in_flight = 2;
  ClientQuota quota(options);
  EXPECT_TRUE(quota.Admit().ok());
  EXPECT_TRUE(quota.Admit().ok());
  const auto before = std::chrono::steady_clock::now();
  const Status rejected = quota.Admit();
  const auto elapsed = std::chrono::steady_clock::now() - before;
  EXPECT_EQ(rejected.code(), StatusCode::kUnavailable);
  EXPECT_LT(elapsed, std::chrono::milliseconds(100));
  EXPECT_EQ(quota.in_flight(), 2);
  quota.Release();
  EXPECT_TRUE(quota.Admit().ok());
}

TEST_F(RobustnessTest, RateLimitRefillsOnInjectedClock) {
  QuotaOptions options;
  options.submits_per_second = 1.0;  // burst defaults to 1 token.
  int64_t now_ns = 0;
  ClientQuota quota(options, [&now_ns] { return now_ns; });
  EXPECT_TRUE(quota.Admit().ok());
  const Status rejected = quota.Admit();
  EXPECT_EQ(rejected.code(), StatusCode::kUnavailable);
  now_ns += 1'000'000'000;  // One second refills one token.
  EXPECT_TRUE(quota.Admit().ok());
  EXPECT_FALSE(quota.Admit().ok());
}

TEST_F(RobustnessTest, QuotaStateIsPerConnection) {
  QuotaOptions options;
  options.max_in_flight = 1;
  options.submits_per_second = 1.0;
  ClientQuota first(options);
  EXPECT_TRUE(first.Admit().ok());
  EXPECT_FALSE(first.Admit().ok());
  // A new connection builds a new ClientQuota: fresh bucket, fresh slots.
  ClientQuota second(options);
  EXPECT_TRUE(second.Admit().ok());
}

TEST_F(RobustnessTest, RetryAfterMsIsMonotoneNonNegativeAndCapped) {
  int64_t previous = -1;
  for (size_t depth = 0; depth <= 4096; depth += 64) {
    const int64_t hint = RetryAfterMs(depth, 4);
    EXPECT_GE(hint, 0);
    EXPECT_GE(hint, previous) << "not monotone at depth " << depth;
    EXPECT_LE(hint, 10000);
    previous = hint;
  }
  EXPECT_EQ(RetryAfterMs(0, 0), RetryAfterMs(0, 1));  // workers=0 is safe.
  EXPECT_EQ(RetryAfterMs(1u << 20, 1), 10000);
}

TEST_F(RobustnessTest, SchedulerReturnsQuotaSlotOnTerminalJob) {
  QuotaOptions quota_options;
  quota_options.max_in_flight = 1;
  ClientQuota quota(quota_options);
  SchedulerOptions options;
  options.workers = 1;
  options.start_paused = true;
  JobScheduler scheduler(options);

  ASSERT_TRUE(quota.Admit().ok());
  JobOptions job_options;
  job_options.quota_slot = quota.in_flight_cell();
  auto id = scheduler.Submit(RiskJob(), job_options);
  ASSERT_TRUE(id.ok());
  // While the job is queued the slot stays held.
  EXPECT_EQ(quota.Admit().code(), StatusCode::kUnavailable);
  scheduler.Resume();
  auto result = scheduler.Wait(*id);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->state, JobState::kDone);
  EXPECT_EQ(quota.in_flight(), 0);
  EXPECT_TRUE(quota.Admit().ok());
}

TEST_F(RobustnessTest, OverQuotaSubmitGetsRetryAfterHintThroughProtocol) {
  DatasetRegistry registry;
  ASSERT_TRUE(registry.Register("fig5", Figure5Microdata()).ok());
  SchedulerOptions options;
  options.workers = 1;
  options.start_paused = true;
  JobScheduler scheduler(options);
  Protocol protocol(&registry, &scheduler);
  QuotaOptions quota_options;
  quota_options.max_in_flight = 1;
  ClientQuota quota(quota_options);

  bool shutdown = false;
  const std::string submit =
      "{\"op\":\"submit\",\"dataset\":\"fig5\",\"action\":\"risk\"}";
  auto first = Json::Parse(protocol.Handle(submit, &shutdown, &quota));
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(first->GetBool("ok", false)) << first->Dump();

  auto second = Json::Parse(protocol.Handle(submit, &shutdown, &quota));
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(second->GetBool("ok", true));
  EXPECT_EQ(second->GetString("code", ""), "Unavailable");
  ASSERT_TRUE(second->Has("retry_after_ms")) << second->Dump();
  EXPECT_GE(second->GetInt("retry_after_ms", -1), 0);

  scheduler.Resume();
  const uint64_t id = static_cast<uint64_t>(first->GetInt("id", 0));
  auto result = scheduler.Wait(id);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->state, JobState::kDone);
  // The terminal job returned the slot: the same connection may submit again.
  auto third = Json::Parse(protocol.Handle(submit, &shutdown, &quota));
  ASSERT_TRUE(third.ok());
  EXPECT_TRUE(third->GetBool("ok", false)) << third->Dump();
  scheduler.Shutdown();
}

// --- Watchdog ---------------------------------------------------------------

TEST_F(RobustnessTest, WatchdogFlagsOverdueJobExactlyOnce) {
  const std::string log_path = ::testing::TempDir() + "watchdog_slow.ndjson";
  std::remove(log_path.c_str());
  // Threshold high enough that only the watchdog's forced entry can land.
  obs::RequestLog slow_log(log_path, 1e12);
  ASSERT_TRUE(slow_log.ok());

  SchedulerOptions options;
  options.workers = 1;
  options.watchdog_interval_ms = 5;
  options.watchdog_multiple = 1.0;
  options.slow_log = &slow_log;
  JobScheduler scheduler(options);

  // The injected delay keeps the job running far past its deadline while the
  // watchdog scans every 5ms.
  ASSERT_TRUE(failpoint::ArmFromSpec("serve.scheduler.run=delay(150)").ok());
  const uint64_t flagged_before = CounterValue("serve.watchdog.flagged");
  JobOptions job_options;
  job_options.timeout_seconds = 0.01;
  auto id = scheduler.Submit(RiskJob(), job_options);
  ASSERT_TRUE(id.ok());
  auto result = scheduler.Wait(*id);
  ASSERT_TRUE(result.ok());
  // The deadline or the watchdog's cancel escalation unwinds the job —
  // either way it is terminal and non-successful.
  EXPECT_TRUE(result->state == JobState::kExpired ||
              result->state == JobState::kCancelled)
      << JobStateToString(result->state);
  // A few more scan intervals: a re-flagging bug would show up here.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_EQ(CounterValue("serve.watchdog.flagged") - flagged_before, 1u);

  scheduler.Shutdown();
  std::ifstream log(log_path);
  std::stringstream contents;
  contents << log.rdbuf();
  EXPECT_NE(contents.str().find("\"outcome\": \"overdue\""), std::string::npos)
      << contents.str();
}

TEST_F(RobustnessTest, WatchdogIgnoresJobsWithoutDeadlines) {
  SchedulerOptions options;
  options.workers = 1;
  options.watchdog_interval_ms = 5;
  options.watchdog_multiple = 1.0;
  JobScheduler scheduler(options);
  ASSERT_TRUE(failpoint::ArmFromSpec("serve.scheduler.run=delay(60)").ok());
  const uint64_t flagged_before = CounterValue("serve.watchdog.flagged");
  auto id = scheduler.Submit(RiskJob());  // No timeout: never overdue.
  ASSERT_TRUE(id.ok());
  auto result = scheduler.Wait(*id);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->state, JobState::kDone);
  EXPECT_EQ(CounterValue("serve.watchdog.flagged") - flagged_before, 0u);
}

// --- Registry quarantine ----------------------------------------------------

TEST_F(RobustnessTest, RepeatedLoadFailuresQuarantineTheDataset) {
  const std::string csv_path = ::testing::TempDir() + "quarantine_fig5.csv";
  {
    std::ofstream out(csv_path);
    out << WriteCsv(Figure5Microdata().ToCsv());
  }
  DatasetRegistry registry;
  registry.set_quarantine_after(2);
  ASSERT_TRUE(failpoint::ArmFromSpec("serve.registry.load=error(io)").ok());

  EXPECT_EQ(registry.Load(csv_path).status().code(), StatusCode::kIoError);
  EXPECT_FALSE(registry.IsQuarantined(csv_path));
  EXPECT_EQ(registry.Load(csv_path).status().code(), StatusCode::kIoError);
  EXPECT_TRUE(registry.IsQuarantined(csv_path));

  // Quarantined: the structured error carries the history, and the load path
  // is not retried even after the fault clears.
  failpoint::DisarmAll();
  const Status quarantined = registry.Load(csv_path).status();
  EXPECT_EQ(quarantined.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(quarantined.message().find("quarantined after 2"),
            std::string::npos);
  EXPECT_NE(quarantined.message().find("IoError"), std::string::npos)
      << "expected the last error to be echoed: " << quarantined.message();

  registry.Clear();  // Lifts the quarantine.
  EXPECT_FALSE(registry.IsQuarantined(csv_path));
  EXPECT_TRUE(registry.Load(csv_path).ok());
  std::remove(csv_path.c_str());
}

TEST_F(RobustnessTest, SuccessfulLoadClearsTheFailureStreak) {
  const std::string csv_path = ::testing::TempDir() + "streak_fig5.csv";
  {
    std::ofstream out(csv_path);
    out << WriteCsv(Figure5Microdata().ToCsv());
  }
  DatasetRegistry registry;
  registry.set_quarantine_after(2);
  // One injected failure, then a clean load: the clean load must reset the
  // streak, so the dataset is cached and never reaches the quarantine bar.
  ASSERT_TRUE(failpoint::ArmFromSpec("serve.registry.load=every(1)").ok());
  EXPECT_FALSE(registry.Load(csv_path).ok());
  failpoint::DisarmAll();
  EXPECT_TRUE(registry.Load(csv_path).ok());
  ASSERT_TRUE(failpoint::ArmFromSpec("serve.registry.load=every(1)").ok());
  EXPECT_TRUE(registry.Load(csv_path).ok());  // Cache hit, no load attempted.
  EXPECT_FALSE(registry.IsQuarantined(csv_path));
  std::remove(csv_path.c_str());
}

// --- Bounded drain ----------------------------------------------------------

TEST_F(RobustnessTest, ShutdownWithinDrainsEverythingInsideTheBudget) {
  SchedulerOptions options;
  options.workers = 2;
  JobScheduler scheduler(options);
  std::vector<uint64_t> ids;
  for (int i = 0; i < 4; ++i) {
    auto id = scheduler.Submit(RiskJob());
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  EXPECT_TRUE(scheduler.ShutdownWithin(std::chrono::seconds(30)));
  for (const uint64_t id : ids) {
    auto result = scheduler.Peek(id);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->state, JobState::kDone);
  }
  // Admission stays closed afterwards.
  EXPECT_EQ(scheduler.Submit(RiskJob()).status().code(),
            StatusCode::kUnavailable);
}

TEST_F(RobustnessTest, ShutdownWithinCancelsWhatTheBudgetCannotCover) {
  SchedulerOptions options;
  options.workers = 1;
  JobScheduler scheduler(options);
  // Each run sleeps 200ms; with one worker the second job cannot start
  // inside a 30ms budget.
  ASSERT_TRUE(failpoint::ArmFromSpec("serve.scheduler.run=delay(200)").ok());
  auto running = scheduler.Submit(RiskJob());
  auto queued = scheduler.Submit(RiskJob());
  ASSERT_TRUE(running.ok());
  ASSERT_TRUE(queued.ok());
  // Let the worker pick up the first job before the drain begins.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));

  const auto before = std::chrono::steady_clock::now();
  EXPECT_FALSE(scheduler.ShutdownWithin(std::chrono::milliseconds(30)));
  const auto elapsed = std::chrono::steady_clock::now() - before;
  // The call may join the running job past the budget, but never hangs.
  EXPECT_LT(elapsed, std::chrono::seconds(10));

  auto queued_result = scheduler.Peek(*queued);
  ASSERT_TRUE(queued_result.ok());
  EXPECT_EQ(queued_result->state, JobState::kCancelled);
  EXPECT_NE(queued_result->status.message().find("drain budget"),
            std::string::npos);
  auto running_result = scheduler.Peek(*running);
  ASSERT_TRUE(running_result.ok());
  // The running job was joined; cooperative cancel may or may not have won
  // the race with completion, but it must be terminal.
  EXPECT_NE(running_result->state, JobState::kRunning);
  EXPECT_NE(running_result->state, JobState::kQueued);
}

// --- Socket server hardening ------------------------------------------------

/// Short unique socket path (sun_path is ~108 bytes; TempDir can be long).
std::string SocketPath(const char* tag) {
  return "/tmp/vadasa_rt_" + std::to_string(::getpid()) + "_" + tag + ".sock";
}

int ConnectTo(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  EXPECT_EQ(
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)), 0)
      << std::strerror(errno);
  return fd;
}

bool SendAll(int fd, const std::string& data) {
  size_t written = 0;
  while (written < data.size()) {
    const ssize_t n = ::write(fd, data.data() + written, data.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    written += static_cast<size_t>(n);
  }
  return true;
}

/// Reads until a newline or EOF; returns everything read (no newline).
std::string ReadLine(int fd) {
  std::string line;
  char c;
  for (;;) {
    const ssize_t n = ::read(fd, &c, 1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (n == 0 || c == '\n') break;
    line.push_back(c);
  }
  return line;
}

struct Stack {
  DatasetRegistry registry;
  JobScheduler scheduler;
  Protocol protocol{&registry, &scheduler};
};

/// Runs each socket-hardening test over both transports: the Unix path and
/// an ephemeral loopback TCP port. The NDJSON framing, quotas, failpoints
/// and refusal behavior live above the fd, so every expectation must hold
/// verbatim on both. The CI thread-sanitizer lane runs this binary
/// wholesale, so both transports get the TSan treatment for free.
class TransportTest : public RobustnessTest,
                      public ::testing::WithParamInterface<const char*> {
 protected:
  bool tcp() const { return std::string(GetParam()) == "tcp"; }

  ServerOptions TransportOptions(const char* tag) {
    ServerOptions options;
    if (tcp()) {
      auto spec = ParseListenSpec("tcp:127.0.0.1:0");
      EXPECT_TRUE(spec.ok()) << spec.status().ToString();
      options.listen = *spec;
    } else {
      options.socket_path = SocketPath(tag);
    }
    return options;
  }

  /// Connects to a started server on whichever transport it bound.
  int Connect(const Server& server) {
    if (!tcp()) return ConnectTo(server.listen_spec().path);
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(server.bound_port()));
    EXPECT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
    EXPECT_EQ(
        ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)),
        0)
        << std::strerror(errno);
    return fd;
  }
};

TEST_P(TransportTest, OversizedLineGetsOneRefusalThenClose) {
  Stack stack;
  ServerOptions options = TransportOptions("oversized");
  options.max_line_bytes = 256;
  Server server(&stack.protocol, options);
  ASSERT_TRUE(server.Start().ok());

  const uint64_t oversized_before = CounterValue("serve.conn.oversized");
  const int fd = Connect(server);
  std::string flood(1024, 'x');
  flood.push_back('\n');
  ASSERT_TRUE(SendAll(fd, flood));
  const std::string refusal = ReadLine(fd);
  auto parsed = Json::Parse(refusal);
  ASSERT_TRUE(parsed.ok()) << refusal;
  EXPECT_FALSE(parsed->GetBool("ok", true));
  EXPECT_EQ(parsed->GetString("code", ""), "LimitExceeded");
  // The server hangs up after the refusal.
  EXPECT_TRUE(ReadLine(fd).empty());
  ::close(fd);
  EXPECT_GE(CounterValue("serve.conn.oversized") - oversized_before, 1u);

  // A fresh, well-behaved connection still works: the limit is per
  // connection, not a server wedge.
  const int fd2 = Connect(server);
  ASSERT_TRUE(SendAll(fd2, "{\"op\":\"ping\"}\n"));
  auto pong = Json::Parse(ReadLine(fd2));
  ASSERT_TRUE(pong.ok());
  EXPECT_TRUE(pong->GetBool("ok", false));
  ::close(fd2);
  server.Stop();
}

TEST_P(TransportTest, InjectedWriteFailureKillsOnlyThatConnection) {
  Stack stack;
  ServerOptions options = TransportOptions("deadwrite");
  Server server(&stack.protocol, options);
  ASSERT_TRUE(server.Start().ok());

  ASSERT_TRUE(failpoint::ArmFromSpec("serve.sock.write=error(io)").ok());
  const int fd = Connect(server);
  // Two pipelined requests: the first response write fails, and the handler
  // must stop instead of computing the second on a dead socket.
  ASSERT_TRUE(SendAll(fd, "{\"op\":\"ping\"}\n{\"op\":\"ping\"}\n"));
  EXPECT_TRUE(ReadLine(fd).empty());  // EOF, no partial garbage.
  ::close(fd);

  failpoint::DisarmAll();
  const int fd2 = Connect(server);
  ASSERT_TRUE(SendAll(fd2, "{\"op\":\"ping\"}\n"));
  auto pong = Json::Parse(ReadLine(fd2));
  ASSERT_TRUE(pong.ok());
  EXPECT_TRUE(pong->GetBool("ok", false));
  ::close(fd2);
  server.Stop();
}

TEST_P(TransportTest, ShortReadsAndWritesStillDeliverIntactLines) {
  Stack stack;
  ServerOptions options = TransportOptions("short");
  Server server(&stack.protocol, options);
  ASSERT_TRUE(server.Start().ok());

  // Every server-side read and write is truncated to one byte: requests must
  // reassemble and responses must still arrive whole.
  ASSERT_TRUE(
      failpoint::ArmFromSpec(
          "serve.sock.read.short=error;serve.sock.write.short=error")
          .ok());
  const int fd = Connect(server);
  ASSERT_TRUE(SendAll(fd, "{\"op\":\"ping\"}\n"));
  auto pong = Json::Parse(ReadLine(fd));
  ASSERT_TRUE(pong.ok());
  EXPECT_TRUE(pong->GetBool("ok", false));
  EXPECT_EQ(pong->GetString("op", ""), "ping");
  ::close(fd);
  server.Stop();
}

TEST_P(TransportTest, QuotaRidesTheSocketPath) {
  Stack stack;
  ServerOptions options = TransportOptions("quota");
  options.quota.max_in_flight = 1;
  Server server(&stack.protocol, options);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_TRUE(stack.registry.Register("fig5", Figure5Microdata()).ok());
  // Park the scheduler so the first submit holds its slot.
  ASSERT_TRUE(failpoint::ArmFromSpec("serve.scheduler.run=delay(100)").ok());

  const int fd = Connect(server);
  const std::string submit =
      "{\"op\":\"submit\",\"dataset\":\"fig5\",\"action\":\"risk\"}\n";
  ASSERT_TRUE(SendAll(fd, submit));
  auto first = Json::Parse(ReadLine(fd));
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(first->GetBool("ok", false)) << first->Dump();
  ASSERT_TRUE(SendAll(fd, submit));
  auto second = Json::Parse(ReadLine(fd));
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(second->GetBool("ok", true));
  EXPECT_TRUE(second->Has("retry_after_ms")) << second->Dump();
  ::close(fd);
  server.Stop();
}

INSTANTIATE_TEST_SUITE_P(Transports, TransportTest,
                         ::testing::Values("unix", "tcp"),
                         [](const ::testing::TestParamInfo<const char*>& info) {
                           return std::string(info.param);
                         });

// --- Listen-spec parsing ----------------------------------------------------

TEST(ListenSpecTest, ParsesAndRoundTrips) {
  auto unix_spec = ParseListenSpec("unix:/tmp/x.sock");
  ASSERT_TRUE(unix_spec.ok());
  EXPECT_EQ(unix_spec->kind, ListenSpec::Kind::kUnix);
  EXPECT_EQ(unix_spec->path, "/tmp/x.sock");
  EXPECT_EQ(unix_spec->ToString(), "unix:/tmp/x.sock");

  auto tcp_spec = ParseListenSpec("tcp:127.0.0.1:8080");
  ASSERT_TRUE(tcp_spec.ok());
  EXPECT_EQ(tcp_spec->kind, ListenSpec::Kind::kTcp);
  EXPECT_EQ(tcp_spec->host, "127.0.0.1");
  EXPECT_EQ(tcp_spec->port, 8080);
  EXPECT_EQ(tcp_spec->ToString(), "tcp:127.0.0.1:8080");

  for (const char* bad :
       {"", "unix:", "tcp:", "tcp:localhost", "tcp:localhost:notaport",
        "tcp:localhost:70000", "http:host:1"}) {
    EXPECT_FALSE(ParseListenSpec(bad).ok()) << bad;
  }
  // Host strings parse lazily; a bad IPv4 literal is caught at Bind.
  Listener listener;
  EXPECT_FALSE(listener.Bind(*ParseListenSpec("tcp:256.0.0.1:1"), 4).ok());
}

}  // namespace
}  // namespace vadasa::serve
