#include "serve/protocol.h"

#include <gtest/gtest.h>

#include "common/json.h"
#include "core/datagen.h"

namespace vadasa::serve {
namespace {

class ProtocolTest : public ::testing::Test {
 protected:
  ProtocolTest() : scheduler_(SchedulerOptions{}), protocol_(&registry_, &scheduler_) {
    EXPECT_TRUE(registry_.Register("fig5", core::Figure5Microdata()).ok());
  }

  Json Call(const std::string& line) {
    bool shutdown = false;
    auto parsed = Json::Parse(protocol_.Handle(line, &shutdown));
    EXPECT_TRUE(parsed.ok());
    return parsed.ok() ? *parsed : Json();
  }

  DatasetRegistry registry_;
  JobScheduler scheduler_;
  Protocol protocol_;
};

TEST_F(ProtocolTest, PingAndDatasets) {
  EXPECT_TRUE(Call(R"({"op":"ping"})").GetBool("ok", false));
  const Json datasets = Call(R"({"op":"datasets"})");
  ASSERT_TRUE(datasets.GetBool("ok", false));
  ASSERT_EQ(datasets["datasets"].AsArray().size(), 1u);
  EXPECT_EQ(datasets["datasets"].AsArray()[0].AsString(), "fig5");
}

TEST_F(ProtocolTest, SubmitRiskRoundTrip) {
  const Json submitted =
      Call(R"({"op":"submit","dataset":"fig5","action":"risk","k":2,"explain":true})");
  ASSERT_TRUE(submitted.GetBool("ok", false)) << submitted.Dump();
  const int64_t id = submitted.GetInt("id", -1);
  ASSERT_GT(id, 0);
  const Json result =
      Call(std::string(R"({"op":"result","id":)") + std::to_string(id) + "}");
  ASSERT_TRUE(result.GetBool("ok", false)) << result.Dump();
  EXPECT_EQ(result.GetString("state", ""), "done");
  EXPECT_EQ(result["risk"]["tuple_risks"].AsArray().size(), 7u);
  EXPECT_TRUE(result["risk"].Has("global"));
}

TEST_F(ProtocolTest, SubmitAnonymizeReturnsCsvAndAudit) {
  const Json submitted =
      Call(R"({"op":"submit","dataset":"fig5","action":"anonymize"})");
  ASSERT_TRUE(submitted.GetBool("ok", false));
  const Json result = Call(std::string(R"({"op":"result","id":)") +
                           std::to_string(submitted.GetInt("id", 0)) + "}");
  ASSERT_TRUE(result.GetBool("ok", false)) << result.Dump();
  EXPECT_EQ(result.GetString("state", ""), "done");
  EXPECT_NE(result.GetString("csv", "").find('\n'), std::string::npos);
  EXPECT_FALSE(result.GetString("audit", "").empty());
}

TEST_F(ProtocolTest, StatusReportsTerminalState) {
  const Json submitted =
      Call(R"({"op":"submit","dataset":"fig5","action":"risk"})");
  const std::string id = std::to_string(submitted.GetInt("id", 0));
  Call(R"({"op":"result","id":)" + id + "}");  // Wait for completion.
  const Json status = Call(R"({"op":"status","id":)" + id + "}");
  ASSERT_TRUE(status.GetBool("ok", false));
  EXPECT_EQ(status.GetString("state", ""), "done");
}

TEST_F(ProtocolTest, ErrorsAreStructured) {
  const Json garbage = Call("this is not json");
  EXPECT_FALSE(garbage.GetBool("ok", true));
  EXPECT_EQ(garbage.GetString("code", ""), "ParseError");

  const Json no_op = Call(R"({"dataset":"fig5"})");
  EXPECT_FALSE(no_op.GetBool("ok", true));

  const Json bad_op = Call(R"({"op":"frobnicate"})");
  EXPECT_FALSE(bad_op.GetBool("ok", true));
  EXPECT_EQ(bad_op.GetString("code", ""), "InvalidArgument");

  const Json bad_dataset =
      Call(R"({"op":"submit","dataset":"/missing.csv"})");
  EXPECT_FALSE(bad_dataset.GetBool("ok", true));

  const Json bad_action =
      Call(R"({"op":"submit","dataset":"fig5","action":"delete"})");
  EXPECT_FALSE(bad_action.GetBool("ok", true));

  const Json bad_id = Call(R"({"op":"result","id":999})");
  EXPECT_FALSE(bad_id.GetBool("ok", true));
  EXPECT_EQ(bad_id.GetString("code", ""), "NotFound");

  const Json no_id = Call(R"({"op":"result"})");
  EXPECT_FALSE(no_id.GetBool("ok", true));

  const Json bad_policy =
      Call(R"({"op":"submit","dataset":"fig5","measure":"nonsense"})");
  EXPECT_FALSE(bad_policy.GetBool("ok", true));
}

TEST_F(ProtocolTest, CancelUnknownJobFails) {
  const Json cancelled = Call(R"({"op":"cancel","id":12345})");
  EXPECT_FALSE(cancelled.GetBool("ok", true));
  EXPECT_EQ(cancelled.GetString("code", ""), "NotFound");
}

TEST_F(ProtocolTest, MetricsExposeServeNamespace) {
  Call(R"({"op":"submit","dataset":"fig5","action":"risk"})");
  const Json metrics = Call(R"({"op":"metrics"})");
  ASSERT_TRUE(metrics.GetBool("ok", false));
  EXPECT_TRUE(metrics["metrics"].Has("serve.submitted"));
  EXPECT_TRUE(metrics["metrics"].Has("serve.admitted"));
  EXPECT_TRUE(metrics["metrics"].Has("serve.queue_depth"));
}

TEST_F(ProtocolTest, ShutdownSetsTheFlag) {
  bool shutdown = false;
  const std::string response = protocol_.Handle(R"({"op":"shutdown"})", &shutdown);
  EXPECT_TRUE(shutdown);
  auto parsed = Json::Parse(response);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->GetBool("ok", false));
}

}  // namespace
}  // namespace vadasa::serve
