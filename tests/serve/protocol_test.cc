#include "serve/protocol.h"

#include <gtest/gtest.h>

#include "common/json.h"
#include "core/datagen.h"
#include "serve/result_cache.h"

namespace vadasa::serve {
namespace {

class ProtocolTest : public ::testing::Test {
 protected:
  ProtocolTest() : scheduler_(SchedulerOptions{}), protocol_(&registry_, &scheduler_) {
    EXPECT_TRUE(registry_.Register("fig5", core::Figure5Microdata()).ok());
  }

  Json Call(const std::string& line) {
    bool shutdown = false;
    auto parsed = Json::Parse(protocol_.Handle(line, &shutdown));
    EXPECT_TRUE(parsed.ok());
    return parsed.ok() ? *parsed : Json();
  }

  DatasetRegistry registry_;
  JobScheduler scheduler_;
  Protocol protocol_;
};

TEST_F(ProtocolTest, PingAndDatasets) {
  EXPECT_TRUE(Call(R"({"op":"ping"})").GetBool("ok", false));
  const Json datasets = Call(R"({"op":"datasets"})");
  ASSERT_TRUE(datasets.GetBool("ok", false));
  ASSERT_EQ(datasets["datasets"].AsArray().size(), 1u);
  EXPECT_EQ(datasets["datasets"].AsArray()[0].AsString(), "fig5");
}

TEST_F(ProtocolTest, SubmitRiskRoundTrip) {
  const Json submitted =
      Call(R"({"op":"submit","dataset":"fig5","action":"risk","k":2,"explain":true})");
  ASSERT_TRUE(submitted.GetBool("ok", false)) << submitted.Dump();
  const int64_t id = submitted.GetInt("id", -1);
  ASSERT_GT(id, 0);
  const Json result =
      Call(std::string(R"({"op":"result","id":)") + std::to_string(id) + "}");
  ASSERT_TRUE(result.GetBool("ok", false)) << result.Dump();
  EXPECT_EQ(result.GetString("state", ""), "done");
  EXPECT_EQ(result["risk"]["tuple_risks"].AsArray().size(), 7u);
  EXPECT_TRUE(result["risk"].Has("global"));
}

TEST_F(ProtocolTest, SubmitAnonymizeReturnsCsvAndAudit) {
  const Json submitted =
      Call(R"({"op":"submit","dataset":"fig5","action":"anonymize"})");
  ASSERT_TRUE(submitted.GetBool("ok", false));
  const Json result = Call(std::string(R"({"op":"result","id":)") +
                           std::to_string(submitted.GetInt("id", 0)) + "}");
  ASSERT_TRUE(result.GetBool("ok", false)) << result.Dump();
  EXPECT_EQ(result.GetString("state", ""), "done");
  EXPECT_NE(result.GetString("csv", "").find('\n'), std::string::npos);
  EXPECT_FALSE(result.GetString("audit", "").empty());
}

TEST_F(ProtocolTest, StatusReportsTerminalState) {
  const Json submitted =
      Call(R"({"op":"submit","dataset":"fig5","action":"risk"})");
  const std::string id = std::to_string(submitted.GetInt("id", 0));
  Call(R"({"op":"result","id":)" + id + "}");  // Wait for completion.
  const Json status = Call(R"({"op":"status","id":)" + id + "}");
  ASSERT_TRUE(status.GetBool("ok", false));
  EXPECT_EQ(status.GetString("state", ""), "done");
}

TEST_F(ProtocolTest, ErrorsAreStructured) {
  const Json garbage = Call("this is not json");
  EXPECT_FALSE(garbage.GetBool("ok", true));
  EXPECT_EQ(garbage.GetString("code", ""), "ParseError");

  const Json no_op = Call(R"({"dataset":"fig5"})");
  EXPECT_FALSE(no_op.GetBool("ok", true));

  const Json bad_op = Call(R"({"op":"frobnicate"})");
  EXPECT_FALSE(bad_op.GetBool("ok", true));
  EXPECT_EQ(bad_op.GetString("code", ""), "InvalidArgument");

  const Json bad_dataset =
      Call(R"({"op":"submit","dataset":"/missing.csv"})");
  EXPECT_FALSE(bad_dataset.GetBool("ok", true));

  const Json bad_action =
      Call(R"({"op":"submit","dataset":"fig5","action":"delete"})");
  EXPECT_FALSE(bad_action.GetBool("ok", true));

  const Json bad_id = Call(R"({"op":"result","id":999})");
  EXPECT_FALSE(bad_id.GetBool("ok", true));
  EXPECT_EQ(bad_id.GetString("code", ""), "NotFound");

  const Json no_id = Call(R"({"op":"result"})");
  EXPECT_FALSE(no_id.GetBool("ok", true));

  const Json bad_policy =
      Call(R"({"op":"submit","dataset":"fig5","measure":"nonsense"})");
  EXPECT_FALSE(bad_policy.GetBool("ok", true));
}

TEST_F(ProtocolTest, ResponsesEchoProtocolVersionTwo) {
  EXPECT_EQ(Call(R"({"op":"ping"})").GetInt("v", 0), 2);
  EXPECT_EQ(Call(R"({"op":"ping","v":1})").GetInt("v", 0), 2);
  EXPECT_EQ(Call(R"({"op":"ping","v":2})").GetInt("v", 0), 2);
  const Json error = Call(R"({"op":"frobnicate"})");
  EXPECT_FALSE(error.GetBool("ok", true));
  EXPECT_EQ(error.GetInt("v", 0), 2) << "error lines carry the version too";
}

TEST_F(ProtocolTest, UnknownProtocolVersionsAreRejected) {
  const Json future = Call(R"({"op":"ping","v":3})");
  EXPECT_FALSE(future.GetBool("ok", true));
  EXPECT_EQ(future.GetString("code", ""), "InvalidArgument");
  EXPECT_EQ(future.GetInt("supported_max", 0), 2);
  const Json zero = Call(R"({"op":"submit","dataset":"fig5","v":0})");
  EXPECT_FALSE(zero.GetBool("ok", true));
  const Json stringy = Call(R"({"op":"ping","v":"two"})");
  EXPECT_FALSE(stringy.GetBool("ok", true));
}

TEST_F(ProtocolTest, ApplyDeltaIsGatedOnV2) {
  const std::string ops = R"("ops":[{"kind":"delete","row":6}])";
  const Json implicit_v1 =
      Call(R"({"op":"apply_delta","dataset":"fig5",)" + ops + "}");
  EXPECT_FALSE(implicit_v1.GetBool("ok", true));
  EXPECT_NE(implicit_v1.GetString("error", "").find("v2"), std::string::npos);
  const Json explicit_v1 =
      Call(R"({"op":"apply_delta","v":1,"dataset":"fig5",)" + ops + "}");
  EXPECT_FALSE(explicit_v1.GetBool("ok", true));
  const Json v2 =
      Call(R"({"op":"apply_delta","v":2,"dataset":"fig5",)" + ops + "}");
  EXPECT_TRUE(v2.GetBool("ok", false)) << v2.Dump();
}

TEST_F(ProtocolTest, ApplyDeltaRoundTripVersionsTheDataset) {
  const Json applied = Call(
      R"({"op":"apply_delta","v":2,"dataset":"fig5","ops":[)"
      R"({"kind":"update","row":0,"values":["099876","Roma","Commerce","1000+","0-30"]},)"
      R"({"kind":"delete","row":6},)"
      R"({"kind":"append","values":["555555","Milano","Construction","0-200","60-90"]},)"
      R"({"kind":"append","values":["666666","NULL_3","Commerce","1000+","0-30"]}]})");
  ASSERT_TRUE(applied.GetBool("ok", false)) << applied.Dump();
  EXPECT_EQ(applied.GetInt("version", 0), 2);
  EXPECT_EQ(applied.GetInt("rows", 0), 8);
  EXPECT_EQ(applied.GetString("fingerprint", "").size(), 16u);

  // Jobs submitted after the delta run over the post-delta generation.
  const Json submitted =
      Call(R"({"op":"submit","dataset":"fig5","action":"risk"})");
  ASSERT_TRUE(submitted.GetBool("ok", false));
  const Json result = Call(R"({"op":"result","id":)" +
                           std::to_string(submitted.GetInt("id", 0)) + "}");
  ASSERT_TRUE(result.GetBool("ok", false)) << result.Dump();
  EXPECT_EQ(result["risk"]["tuple_risks"].AsArray().size(), 8u);

  const Json again = Call(
      R"({"op":"apply_delta","v":2,"dataset":"fig5","ops":[{"kind":"delete","row":0}]})");
  ASSERT_TRUE(again.GetBool("ok", false));
  EXPECT_EQ(again.GetInt("version", 0), 3) << "versions are monotonic";
  EXPECT_NE(again.GetString("fingerprint", ""),
            applied.GetString("fingerprint", ""));
}

TEST_F(ProtocolTest, ApplyDeltaRejectsMalformedBatches) {
  const char* kBad[] = {
      R"({"op":"apply_delta","v":2})",
      R"({"op":"apply_delta","v":2,"dataset":"fig5"})",
      R"({"op":"apply_delta","v":2,"dataset":"fig5","ops":[{"kind":"merge"}]})",
      R"({"op":"apply_delta","v":2,"dataset":"fig5","ops":[{"kind":"delete"}]})",
      R"({"op":"apply_delta","v":2,"dataset":"fig5","ops":[{"kind":"update","row":0}]})",
      R"({"op":"apply_delta","v":2,"dataset":"fig5","ops":[{"kind":"append","values":["too","short"]}]})",
      R"({"op":"apply_delta","v":2,"dataset":"fig5","ops":[{"kind":"append","values":[1,2,3,4,5]}]})",
      R"({"op":"apply_delta","v":2,"dataset":"fig5","ops":[{"kind":"delete","row":99}]})",
  };
  for (const char* line : kBad) {
    const Json response = Call(line);
    EXPECT_FALSE(response.GetBool("ok", true)) << line;
    EXPECT_EQ(response.GetString("code", ""), "InvalidArgument") << line;
  }
  // None of the rejected batches touched the dataset.
  const Json submitted =
      Call(R"({"op":"submit","dataset":"fig5","action":"risk"})");
  const Json result = Call(R"({"op":"result","id":)" +
                           std::to_string(submitted.GetInt("id", 0)) + "}");
  EXPECT_EQ(result["risk"]["tuple_risks"].AsArray().size(), 7u);
}

/// Serve-layer coherence: a result-cache entry primed pre-delta must never
/// be replayed for a post-delta submit — the fresh fingerprint re-keys it.
TEST(ProtocolDeltaCacheTest, ApplyDeltaNeverServesStaleCachedResults) {
  ResultCache cache;
  DatasetRegistry registry;
  registry.set_result_cache(&cache);
  ASSERT_TRUE(registry.Register("fig5", core::Figure5Microdata()).ok());
  SchedulerOptions options;
  options.result_cache = &cache;
  JobScheduler scheduler(options);
  Protocol protocol(&registry, &scheduler);
  auto call = [&](const std::string& line) {
    bool shutdown = false;
    auto parsed = Json::Parse(protocol.Handle(line, &shutdown));
    EXPECT_TRUE(parsed.ok());
    return parsed.ok() ? *parsed : Json();
  };
  auto run_risk = [&]() {
    const Json submitted =
        call(R"({"op":"submit","dataset":"fig5","action":"risk"})");
    EXPECT_TRUE(submitted.GetBool("ok", false)) << submitted.Dump();
    return call(R"({"op":"result","id":)" +
                std::to_string(submitted.GetInt("id", 0)) + "}");
  };

  const Json cold = run_risk();
  EXPECT_FALSE(cold.GetBool("cached", true));
  const Json hot = run_risk();
  EXPECT_TRUE(hot.GetBool("cached", false));
  EXPECT_EQ(hot["risk"].Dump(), cold["risk"].Dump());

  // Delete the Torino singleton: the next submit re-keys on the post-delta
  // fingerprint and recomputes instead of replaying the 7-row payload.
  const Json applied = call(
      R"({"op":"apply_delta","v":2,"dataset":"fig5","ops":[{"kind":"delete","row":6}]})");
  ASSERT_TRUE(applied.GetBool("ok", false)) << applied.Dump();
  const Json fresh = run_risk();
  EXPECT_FALSE(fresh.GetBool("cached", true))
      << "stale cache hit after a delta changed the dataset's content";
  EXPECT_EQ(fresh["risk"]["tuple_risks"].AsArray().size(), 6u);
  const Json rehot = run_risk();
  EXPECT_TRUE(rehot.GetBool("cached", false));
  EXPECT_EQ(rehot["risk"].Dump(), fresh["risk"].Dump());
}

TEST_F(ProtocolTest, CancelUnknownJobFails) {
  const Json cancelled = Call(R"({"op":"cancel","id":12345})");
  EXPECT_FALSE(cancelled.GetBool("ok", true));
  EXPECT_EQ(cancelled.GetString("code", ""), "NotFound");
}

TEST_F(ProtocolTest, MetricsExposeServeNamespace) {
  Call(R"({"op":"submit","dataset":"fig5","action":"risk"})");
  const Json metrics = Call(R"({"op":"metrics"})");
  ASSERT_TRUE(metrics.GetBool("ok", false));
  EXPECT_TRUE(metrics["metrics"].Has("serve.submitted"));
  EXPECT_TRUE(metrics["metrics"].Has("serve.admitted"));
  EXPECT_TRUE(metrics["metrics"].Has("serve.queue_depth"));
}

TEST_F(ProtocolTest, ShutdownSetsTheFlag) {
  bool shutdown = false;
  const std::string response = protocol_.Handle(R"({"op":"shutdown"})", &shutdown);
  EXPECT_TRUE(shutdown);
  auto parsed = Json::Parse(response);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->GetBool("ok", false));
}

}  // namespace
}  // namespace vadasa::serve
