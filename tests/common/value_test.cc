#include "common/value.h"

#include <gtest/gtest.h>

namespace vadasa {
namespace {

TEST(ValueTest, KindsAndAccessors) {
  EXPECT_TRUE(Value::Null(3).is_null());
  EXPECT_EQ(Value::Null(3).null_label(), 3u);
  EXPECT_TRUE(Value::Bool(true).as_bool());
  EXPECT_EQ(Value::Int(-7).as_int(), -7);
  EXPECT_DOUBLE_EQ(Value::Double(2.5).as_double(), 2.5);
  EXPECT_EQ(Value::String("abc").as_string(), "abc");
  EXPECT_TRUE(Value().is_null());  // Default is ⊥_0.
}

TEST(ValueTest, NumericCrossKindEquality) {
  EXPECT_TRUE(Value::Int(2).Equals(Value::Double(2.0)));
  EXPECT_FALSE(Value::Int(2).Equals(Value::Double(2.5)));
  EXPECT_EQ(Value::Int(2).Compare(Value::Double(3.0)), -1);
  // Hashes must agree with the cross-kind equality.
  EXPECT_EQ(Value::Int(2).Hash(), Value::Double(2.0).Hash());
}

TEST(ValueTest, StrictNullEquality) {
  EXPECT_TRUE(Value::Null(1).Equals(Value::Null(1)));
  EXPECT_FALSE(Value::Null(1).Equals(Value::Null(2)));
  EXPECT_FALSE(Value::Null(1).Equals(Value::Int(1)));
}

TEST(ValueTest, MaybeMatchSemantics) {
  // The =⊥ relation of Section 4.3: a null matches anything.
  EXPECT_TRUE(Value::Null(1).MaybeEquals(Value::Null(2)));
  EXPECT_TRUE(Value::Null(1).MaybeEquals(Value::String("Textiles")));
  EXPECT_TRUE(Value::String("Textiles").MaybeEquals(Value::Null(9)));
  EXPECT_TRUE(Value::String("a").MaybeEquals(Value::String("a")));
  EXPECT_FALSE(Value::String("a").MaybeEquals(Value::String("b")));
}

TEST(ValueTest, SetsAreCanonical) {
  const Value a = Value::Set({Value::Int(2), Value::Int(1), Value::Int(2)});
  const Value b = Value::Set({Value::Int(1), Value::Int(2)});
  EXPECT_TRUE(a.Equals(b));
  EXPECT_EQ(a.items().size(), 2u);
  EXPECT_EQ(a.Hash(), b.Hash());
}

TEST(ValueTest, ListsPreserveOrder) {
  const Value a = Value::List({Value::Int(2), Value::Int(1)});
  const Value b = Value::List({Value::Int(1), Value::Int(2)});
  EXPECT_FALSE(a.Equals(b));
  EXPECT_EQ(a.items()[0].as_int(), 2);
}

TEST(ValueTest, TotalOrderIsConsistent) {
  std::vector<Value> vals = {
      Value::Null(0),   Value::Null(5),        Value::Bool(false),
      Value::Int(-3),   Value::Double(2.5),    Value::Int(10),
      Value::String(""), Value::String("zz"),  Value::List({Value::Int(1)}),
      Value::Set({Value::Int(1), Value::Int(2)}),
  };
  for (const Value& a : vals) {
    EXPECT_EQ(a.Compare(a), 0) << a.ToString();
    for (const Value& b : vals) {
      EXPECT_EQ(a.Compare(b), -b.Compare(a)) << a.ToString() << " vs " << b.ToString();
      for (const Value& c : vals) {
        if (a.Compare(b) < 0 && b.Compare(c) < 0) {
          EXPECT_LT(a.Compare(c), 0) << "transitivity";
        }
      }
    }
  }
}

TEST(ValueTest, ToStringRendering) {
  EXPECT_EQ(Value::Null(7).ToString(), "⊥_7");
  EXPECT_EQ(Value::Int(42).ToString(), "42");
  EXPECT_EQ(Value::Bool(true).ToString(), "true");
  EXPECT_EQ(Value::String("North").ToString(), "North");
  EXPECT_EQ(Value::List({Value::Int(1), Value::String("a")}).ToString(), "(1,a)");
  EXPECT_EQ(Value::Set({Value::Int(2), Value::Int(1)}).ToString(), "{1,2}");
}

TEST(ValueTest, ToNumeric) {
  EXPECT_DOUBLE_EQ(Value::Int(3).ToNumeric().value(), 3.0);
  EXPECT_DOUBLE_EQ(Value::Double(3.5).ToNumeric().value(), 3.5);
  EXPECT_FALSE(Value::String("x").ToNumeric().ok());
  EXPECT_EQ(Value::String("x").ToNumeric().status().code(), StatusCode::kTypeError);
}

TEST(ValueTest, HashValuesDiffersByContent) {
  const size_t h1 = HashValues({Value::Int(1), Value::Int(2)});
  const size_t h2 = HashValues({Value::Int(2), Value::Int(1)});
  EXPECT_NE(h1, h2);
  EXPECT_EQ(h1, HashValues({Value::Int(1), Value::Int(2)}));
}

TEST(ValueTest, NestedCollections) {
  const Value inner = Value::Set({Value::String("a"), Value::String("b")});
  const Value outer = Value::List({inner, Value::Int(1)});
  EXPECT_TRUE(outer.items()[0].is_set());
  EXPECT_EQ(outer.ToString(), "({a,b},1)");
}

}  // namespace
}  // namespace vadasa
