#include "common/cancel.h"

#include <gtest/gtest.h>

#include <thread>

namespace vadasa {
namespace {

TEST(CancelTokenTest, DefaultIsLive) {
  CancelToken token;
  EXPECT_FALSE(token.cancelled());
  EXPECT_FALSE(token.deadline_expired());
  EXPECT_TRUE(token.Check().ok());
}

TEST(CancelTokenTest, CancelFlips) {
  CancelToken token;
  token.Cancel();
  EXPECT_TRUE(token.cancelled());
  const Status status = token.Check();
  EXPECT_EQ(status.code(), StatusCode::kCancelled);
}

TEST(CancelTokenTest, ExpiredDeadlineReports) {
  CancelToken token;
  token.SetDeadline(std::chrono::steady_clock::now() -
                    std::chrono::milliseconds(1));
  EXPECT_TRUE(token.deadline_expired());
  EXPECT_EQ(token.Check().code(), StatusCode::kDeadlineExceeded);
}

TEST(CancelTokenTest, FutureDeadlineStaysLive) {
  CancelToken token;
  token.SetTimeout(std::chrono::hours(1));
  EXPECT_FALSE(token.deadline_expired());
  EXPECT_TRUE(token.Check().ok());
}

TEST(CancelTokenTest, NonPositiveTimeoutIgnored) {
  CancelToken token;
  token.SetTimeout(std::chrono::nanoseconds(0));
  token.SetTimeout(std::chrono::nanoseconds(-5));
  EXPECT_TRUE(token.Check().ok());
}

TEST(CancelTokenTest, CancelWinsOverDeadline) {
  // A job that is both cancelled and past deadline reports the explicit
  // cancel — the more intentional signal.
  CancelToken token;
  token.SetDeadline(std::chrono::steady_clock::now() -
                    std::chrono::milliseconds(1));
  token.Cancel();
  EXPECT_EQ(token.Check().code(), StatusCode::kCancelled);
}

TEST(CancelTokenTest, VisibleAcrossThreads) {
  CancelToken token;
  std::thread other([&token] { token.Cancel(); });
  other.join();
  EXPECT_TRUE(token.cancelled());
}

}  // namespace
}  // namespace vadasa
