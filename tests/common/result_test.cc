#include "common/result.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace vadasa {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, CarriesCodeAndMessage) {
  const Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad k");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad k");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (const StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kAlreadyExists, StatusCode::kOutOfRange,
        StatusCode::kFailedPrecondition, StatusCode::kParseError,
        StatusCode::kTypeError, StatusCode::kEgdViolation, StatusCode::kLimitExceeded,
        StatusCode::kIoError, StatusCode::kInternal, StatusCode::kNotImplemented}) {
    EXPECT_FALSE(StatusCodeToString(code).empty());
    EXPECT_NE(StatusCodeToString(code), "Unknown");
  }
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  VADASA_ASSIGN_OR_RETURN(const int h, Half(x));
  return Half(h);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.ValueOr(-1), -1);
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(Quarter(8).value(), 2);
  EXPECT_FALSE(Quarter(6).ok());  // 6/2 = 3, odd.
  EXPECT_FALSE(Quarter(7).ok());
}

TEST(ResultTest, MoveOnlyFriendly) {
  Result<std::vector<std::string>> r = std::vector<std::string>{"a", "b"};
  const std::vector<std::string> v = std::move(r).value();
  EXPECT_EQ(v.size(), 2u);
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r = std::string("hello");
  EXPECT_EQ(r->size(), 5u);
}

}  // namespace
}  // namespace vadasa
