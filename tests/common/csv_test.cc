#include "common/csv.h"

#include <gtest/gtest.h>

namespace vadasa {
namespace {

TEST(CsvTest, ParsesSimpleTable) {
  auto table = ParseCsv("a,b,c\n1,2,3\n4,5,6\n");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->header, (std::vector<std::string>{"a", "b", "c"}));
  ASSERT_EQ(table->rows.size(), 2u);
  EXPECT_EQ(table->rows[1][2], "6");
}

TEST(CsvTest, HandlesQuotedFields) {
  auto table = ParseCsv("name,desc\n\"Rossi, Mario\",\"said \"\"ciao\"\"\"\n");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->rows[0][0], "Rossi, Mario");
  EXPECT_EQ(table->rows[0][1], "said \"ciao\"");
}

TEST(CsvTest, HandlesCrLf) {
  auto table = ParseCsv("a,b\r\n1,2\r\n");
  ASSERT_TRUE(table.ok());
  ASSERT_EQ(table->rows.size(), 1u);
  EXPECT_EQ(table->rows[0][1], "2");
}

TEST(CsvTest, RejectsRaggedRows) {
  auto table = ParseCsv("a,b\n1,2,3\n");
  EXPECT_FALSE(table.ok());
  EXPECT_EQ(table.status().code(), StatusCode::kParseError);
}

TEST(CsvTest, RejectsEmptyDocument) {
  EXPECT_FALSE(ParseCsv("").ok());
}

TEST(CsvTest, RoundTrip) {
  CsvTable t;
  t.header = {"x", "y"};
  t.rows = {{"plain", "with,comma"}, {"with\"quote", "multi\nline"}};
  auto parsed = ParseCsv(WriteCsv(t));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->rows, t.rows);
}

TEST(CsvTest, FileRoundTrip) {
  CsvTable t;
  t.header = {"id", "area"};
  t.rows = {{"1", "North"}, {"2", "South"}};
  const std::string path = ::testing::TempDir() + "/vadasa_csv_test.csv";
  ASSERT_TRUE(WriteCsvFile(path, t).ok());
  auto loaded = ReadCsvFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->rows, t.rows);
}

TEST(CsvTest, ReadMissingFileFails) {
  EXPECT_EQ(ReadCsvFile("/nonexistent/file.csv").status().code(), StatusCode::kIoError);
}

TEST(CsvTest, CellToValueDetectsTypes) {
  EXPECT_TRUE(CellToValue("42").is_int());
  EXPECT_TRUE(CellToValue("-3.5").is_double());
  EXPECT_TRUE(CellToValue("North").is_string());
  EXPECT_TRUE(CellToValue("0-30").is_string());  // Range labels stay strings.
  const Value null_cell = CellToValue("NULL_7");
  ASSERT_TRUE(null_cell.is_null());
  EXPECT_EQ(null_cell.null_label(), 7u);
  EXPECT_TRUE(CellToValue("NULL_x").is_string());  // Malformed label: literal.
}

}  // namespace
}  // namespace vadasa
