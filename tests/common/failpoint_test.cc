#include "common/failpoint.h"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

namespace vadasa::failpoint {
namespace {

/// Every test arms uniquely named sites and disarms on exit, so suites can
/// interleave in one process without leaking faults.
class FailpointTest : public ::testing::Test {
 protected:
  void TearDown() override { DisarmAll(); }
};

TEST_F(FailpointTest, ParsePolicyAcceptsEveryForm) {
  struct Case {
    const char* text;
    Mode mode;
    uint64_t arg;
    StatusCode code;
  };
  const Case cases[] = {
      {"off", Mode::kOff, 0, StatusCode::kInternal},
      {"error", Mode::kError, 0, StatusCode::kInternal},
      {"error(io)", Mode::kError, 0, StatusCode::kIoError},
      {"error(unavailable)", Mode::kError, 0, StatusCode::kUnavailable},
      {"delay(25)", Mode::kDelay, 25, StatusCode::kInternal},
      {"crash-once", Mode::kCrashOnce, 0, StatusCode::kInternal},
      {"every(3)", Mode::kEveryNth, 3, StatusCode::kInternal},
      {"every(3,deadline)", Mode::kEveryNth, 3, StatusCode::kDeadlineExceeded},
      {" every( 2 , failed ) ", Mode::kEveryNth, 2,
       StatusCode::kFailedPrecondition},
  };
  for (const Case& c : cases) {
    auto policy = ParsePolicy(c.text);
    ASSERT_TRUE(policy.ok()) << c.text << ": " << policy.status().ToString();
    EXPECT_EQ(policy->mode, c.mode) << c.text;
    EXPECT_EQ(policy->arg, c.arg) << c.text;
    EXPECT_EQ(policy->code, c.code) << c.text;
  }
}

TEST_F(FailpointTest, ParsePolicyRejectsMalformedText) {
  for (const char* text :
       {"", "bogus", "error(nope)", "error(io,extra)", "delay", "delay()",
        "delay(abc)", "every", "every()", "every(0)", "every(2,zzz)",
        "off(1)", "crash-once(1)", "delay(5) junk"}) {
    EXPECT_FALSE(ParsePolicy(text).ok()) << "accepted: " << text;
  }
}

TEST_F(FailpointTest, DisarmedSiteEvaluatesOk) {
  Failpoint* site = GetFailpoint("test.fp.disarmed");
  EXPECT_FALSE(site->armed());
  EXPECT_TRUE(site->Eval().ok());
  EXPECT_FALSE(site->Fires());
}

TEST_F(FailpointTest, HandleIsStableAcrossLookups) {
  EXPECT_EQ(GetFailpoint("test.fp.stable"), GetFailpoint("test.fp.stable"));
  EXPECT_NE(GetFailpoint("test.fp.stable"), GetFailpoint("test.fp.stable2"));
}

TEST_F(FailpointTest, ErrorPolicyInjectsNamedStatus) {
  ASSERT_TRUE(ArmFromSpec("test.fp.error=error(io)").ok());
  Failpoint* site = GetFailpoint("test.fp.error");
  ASSERT_TRUE(site->armed());
  const Status status = site->Eval();
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  EXPECT_NE(status.message().find("test.fp.error"), std::string::npos);
  EXPECT_TRUE(site->Fires());
}

TEST_F(FailpointTest, EveryNthFiresDeterministically) {
  ASSERT_TRUE(ArmFromSpec("test.fp.nth=every(3,unavailable)").ok());
  Failpoint* site = GetFailpoint("test.fp.nth");
  const uint64_t fires_before = site->fires();
  std::vector<bool> fired;
  for (int i = 0; i < 9; ++i) fired.push_back(!site->Eval().ok());
  // Hits 3, 6, 9 of this armed stretch fire (counters persist across
  // re-arms, so measure relative to the hit count at arm time).
  int count = 0;
  for (bool f : fired) count += f ? 1 : 0;
  EXPECT_EQ(count, 3);
  EXPECT_EQ(site->fires() - fires_before, 3u);
}

TEST_F(FailpointTest, DelayPolicySleepsAndSucceeds) {
  ASSERT_TRUE(ArmFromSpec("test.fp.delay=delay(20)").ok());
  Failpoint* site = GetFailpoint("test.fp.delay");
  const auto before = std::chrono::steady_clock::now();
  EXPECT_TRUE(site->Eval().ok());
  const auto elapsed = std::chrono::steady_clock::now() - before;
  EXPECT_GE(elapsed, std::chrono::milliseconds(15));
}

TEST_F(FailpointTest, SpecArmsMultipleSitesAndDisarmAllClears) {
  ASSERT_TRUE(
      ArmFromSpec("test.fp.a=error; test.fp.b=delay(5) ;; test.fp.c=every(2)")
          .ok());
  EXPECT_TRUE(GetFailpoint("test.fp.a")->armed());
  EXPECT_TRUE(GetFailpoint("test.fp.b")->armed());
  EXPECT_TRUE(GetFailpoint("test.fp.c")->armed());
  const auto armed = ArmedSites();
  size_t ours = 0;
  for (const auto& [name, policy] : armed) {
    if (name.rfind("test.fp.", 0) == 0) ++ours;
    (void)policy;
  }
  EXPECT_EQ(ours, 3u);
  DisarmAll();
  EXPECT_FALSE(GetFailpoint("test.fp.a")->armed());
  EXPECT_FALSE(GetFailpoint("test.fp.b")->armed());
  EXPECT_FALSE(GetFailpoint("test.fp.c")->armed());
}

TEST_F(FailpointTest, MalformedSpecStopsAtBadSegmentKeepingEarlierSites) {
  DisarmAll();
  const Status status = ArmFromSpec("test.fp.good=error;test.fp.bad=banana");
  EXPECT_FALSE(status.ok());
  EXPECT_TRUE(GetFailpoint("test.fp.good")->armed());
  EXPECT_FALSE(GetFailpoint("test.fp.bad")->armed());
  EXPECT_FALSE(ArmFromSpec("nosign").ok());
  EXPECT_FALSE(ArmFromSpec("=error").ok());
}

TEST_F(FailpointTest, ScopedFailpointsDisarmOnDestruction) {
  {
    ScopedFailpoints armed("test.fp.scoped=error");
    EXPECT_TRUE(GetFailpoint("test.fp.scoped")->armed());
  }
  EXPECT_FALSE(GetFailpoint("test.fp.scoped")->armed());
}

TEST_F(FailpointTest, ReArmingReplacesThePolicy) {
  ASSERT_TRUE(ArmFromSpec("test.fp.rearm=error(io)").ok());
  EXPECT_EQ(GetFailpoint("test.fp.rearm")->Eval().code(), StatusCode::kIoError);
  ASSERT_TRUE(ArmFromSpec("test.fp.rearm=error(unavailable)").ok());
  EXPECT_EQ(GetFailpoint("test.fp.rearm")->Eval().code(),
            StatusCode::kUnavailable);
  ASSERT_TRUE(ArmFromSpec("test.fp.rearm=off").ok());
  EXPECT_TRUE(GetFailpoint("test.fp.rearm")->Eval().ok());
}

TEST_F(FailpointTest, MacroReturnsInjectedStatusFromEnclosingFunction) {
  auto guarded = []() -> Status {
    VADASA_FAILPOINT("test.fp.macro");
    return Status::OK();
  };
  EXPECT_TRUE(guarded().ok());
  ASSERT_TRUE(ArmFromSpec("test.fp.macro=error(failed)").ok());
  EXPECT_EQ(guarded().code(), StatusCode::kFailedPrecondition);
  DisarmAll();
  EXPECT_TRUE(guarded().ok());
}

TEST_F(FailpointTest, ConcurrentEvalCountsEveryHitExactlyOnce) {
  ASSERT_TRUE(ArmFromSpec("test.fp.mt=every(4)").ok());
  Failpoint* site = GetFailpoint("test.fp.mt");
  const uint64_t hits_before = site->hits();
  const uint64_t fires_before = site->fires();
  constexpr int kThreads = 4;
  constexpr int kPerThread = 400;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([site] {
      for (int i = 0; i < kPerThread; ++i) (void)site->Eval();
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(site->hits() - hits_before,
            static_cast<uint64_t>(kThreads * kPerThread));
  // Every 4th hit fires, and hit numbering is a single atomic stream, so the
  // fire count is exact even under contention.
  EXPECT_EQ(site->fires() - fires_before,
            static_cast<uint64_t>(kThreads * kPerThread / 4));
}

TEST(FailpointCrashDeathTest, CrashOnceAbortsExactlyOnce) {
  EXPECT_DEATH(
      {
        (void)ArmFromSpec("test.fp.crash=crash-once");
        (void)GetFailpoint("test.fp.crash")->Eval();
      },
      "crash-once fired");
}

}  // namespace
}  // namespace vadasa::failpoint
