#include "common/json.h"

#include <gtest/gtest.h>

namespace vadasa {
namespace {

TEST(JsonTest, ParsesScalars) {
  EXPECT_TRUE(Json::Parse("null")->is_null());
  EXPECT_TRUE(Json::Parse("true")->AsBool());
  EXPECT_FALSE(Json::Parse("false")->AsBool(true));
  EXPECT_DOUBLE_EQ(Json::Parse("3.25")->AsDouble(), 3.25);
  EXPECT_EQ(Json::Parse("-17")->AsInt(), -17);
  EXPECT_DOUBLE_EQ(Json::Parse("1e3")->AsDouble(), 1000.0);
  EXPECT_EQ(Json::Parse("\"hi\"")->AsString(), "hi");
}

TEST(JsonTest, ParsesNestedStructures) {
  auto doc = Json::Parse(R"({"op":"submit","k":2,"tags":["a","b"],"inner":{"x":true}})");
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->GetString("op", ""), "submit");
  EXPECT_EQ(doc->GetInt("k", 0), 2);
  EXPECT_EQ((*doc)["tags"].AsArray().size(), 2u);
  EXPECT_EQ((*doc)["tags"].AsArray()[1].AsString(), "b");
  EXPECT_TRUE((*doc)["inner"].GetBool("x", false));
  EXPECT_FALSE(doc->Has("missing"));
  EXPECT_TRUE((*doc)["missing"].is_null());
}

TEST(JsonTest, DecodesStringEscapes) {
  auto doc = Json::Parse(R"("a\"b\\c\nd\u0041\u00e9")");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->AsString(), "a\"b\\c\ndA\xc3\xa9");
}

TEST(JsonTest, DecodesSurrogatePairs) {
  auto doc = Json::Parse(R"("\ud83d\ude00")");  // 😀 U+1F600
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->AsString(), "\xf0\x9f\x98\x80");
}

TEST(JsonTest, RejectsMalformedDocuments) {
  for (const char* bad :
       {"", "{", "[1,]", "{\"a\":}", "nul", "01", "1.", "+1", "\"unterminated",
        "{\"a\":1} trailing", "\"bad\\escape\"", "[1 2]", "{\"a\" 1}",
        "{1:2}"}) {
    auto doc = Json::Parse(bad);
    EXPECT_FALSE(doc.ok()) << "should reject: " << bad;
    if (!doc.ok()) {
      EXPECT_EQ(doc.status().code(), StatusCode::kParseError) << bad;
    }
  }
}

TEST(JsonTest, RejectsExcessiveNesting) {
  std::string deep(200, '[');
  deep += std::string(200, ']');
  EXPECT_FALSE(Json::Parse(deep).ok());
}

TEST(JsonTest, DumpParseRoundTrip) {
  Json::Object object;
  object["s"] = "quote\" slash\\ newline\n";
  object["n"] = 1.5;
  object["b"] = true;
  object["z"] = nullptr;
  object["arr"] = Json::Array{Json(1), Json("two"), Json(false)};
  const Json original{std::move(object)};
  auto reparsed = Json::Parse(original.Dump());
  ASSERT_TRUE(reparsed.ok()) << original.Dump();
  EXPECT_EQ(reparsed->Dump(), original.Dump());
  EXPECT_EQ(reparsed->GetString("s", ""), "quote\" slash\\ newline\n");
}

TEST(JsonTest, IntegersDumpWithoutExponent) {
  // Job ids travel as JSON numbers; they must survive a round trip exactly.
  Json::Object object;
  object["id"] = static_cast<uint64_t>(123456789);
  const std::string text = Json(std::move(object)).Dump();
  auto doc = Json::Parse(text);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->GetInt("id", 0), 123456789);
}

TEST(JsonTest, JsonQuoteEscapesControlCharacters) {
  EXPECT_EQ(JsonQuote("a\tb"), "\"a\\tb\"");
  EXPECT_EQ(JsonQuote(std::string(1, '\x01')), "\"\\u0001\"");
}

}  // namespace
}  // namespace vadasa
