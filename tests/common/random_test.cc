#include "common/random.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace vadasa {
namespace {

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(RngTest, NextBelowRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(13), 13u);
  }
  EXPECT_EQ(rng.NextBelow(0), 0u);
  EXPECT_EQ(rng.NextBelow(1), 0u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(11);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t x = rng.NextInt(-2, 2);
    ASSERT_GE(x, -2);
    ASSERT_LE(x, 2);
    saw_lo |= x == -2;
    saw_hi |= x == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(13);
  const int n = 20000;
  double sum = 0.0;
  double sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.NextGaussian();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, GammaMeanMatches) {
  Rng rng(17);
  const int n = 20000;
  for (const auto& [shape, scale] : std::vector<std::pair<double, double>>{
           {0.5, 2.0}, {1.0, 1.0}, {4.0, 0.5}}) {
    double sum = 0.0;
    for (int i = 0; i < n; ++i) sum += rng.NextGamma(shape, scale);
    EXPECT_NEAR(sum / n, shape * scale, 0.08 * shape * scale + 0.02)
        << "shape=" << shape;
  }
}

TEST(RngTest, PoissonMeanMatches) {
  Rng rng(19);
  const int n = 20000;
  for (const double mean : {0.5, 3.0, 25.0, 80.0}) {
    double sum = 0.0;
    for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.NextPoisson(mean));
    EXPECT_NEAR(sum / n, mean, 0.05 * mean + 0.05) << "mean=" << mean;
  }
}

TEST(RngTest, NegativeBinomialMeanMatches) {
  // NB(r, p) as Gamma–Poisson mixture has mean r(1-p)/p.
  Rng rng(23);
  const double r = 5.0;
  const double p = 0.25;
  const int n = 20000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.NextNegativeBinomial(r, p));
  const double expected = r * (1 - p) / p;
  EXPECT_NEAR(sum / n, expected, 0.05 * expected);
}

TEST(RngTest, CategoricalFollowsWeights) {
  Rng rng(29);
  const std::vector<double> w = {1.0, 3.0, 6.0};
  std::vector<int> counts(3, 0);
  const int n = 30000;
  for (int i = 0; i < n; ++i) counts[rng.NextCategorical(w)]++;
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.02);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.02);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.6, 0.02);
}

TEST(RngTest, ZipfSkewsTowardLowRanks) {
  Rng rng(31);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 20000; ++i) counts[rng.NextZipf(10, 1.5)]++;
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_GT(counts[1], counts[4]);
  EXPECT_GT(counts[4], counts[9]);
}

TEST(RngTest, ZipfZeroExponentIsUniformish) {
  Rng rng(37);
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 20000; ++i) counts[rng.NextZipf(4, 0.0)]++;
  for (const int c : counts) EXPECT_NEAR(c, 5000, 400);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(41);
  std::vector<int> v = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  rng.Shuffle(&v);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 10; ++i) EXPECT_EQ(sorted[i], i);
}

TEST(PosteriorRiskTest, ClosedFormMatchesPaperDefinition) {
  // ρ = f / ΣW clamped to [0,1].
  EXPECT_DOUBLE_EQ(stats::NegBinomialPosteriorRiskClosedForm(1.0, 100.0), 0.01);
  EXPECT_DOUBLE_EQ(stats::NegBinomialPosteriorRiskClosedForm(5.0, 10.0), 0.5);
  EXPECT_DOUBLE_EQ(stats::NegBinomialPosteriorRiskClosedForm(3.0, 2.0), 1.0);
  EXPECT_DOUBLE_EQ(stats::NegBinomialPosteriorRiskClosedForm(1.0, 0.0), 1.0);
}

TEST(PosteriorRiskTest, SampledTracksClosedForm) {
  Rng rng(43);
  for (const auto& [f, w] : std::vector<std::pair<double, double>>{
           {1.0, 50.0}, {2.0, 80.0}, {5.0, 200.0}}) {
    const double closed = stats::NegBinomialPosteriorRiskClosedForm(f, w);
    const double sampled = stats::NegBinomialPosteriorRiskSampled(f, w, 4000, &rng);
    // The Monte-Carlo estimate of E[1/F] is close to (though Jensen-above)
    // 1/E[F]; allow a loose band.
    EXPECT_GT(sampled, 0.3 * closed);
    EXPECT_LT(sampled, 5.0 * closed + 0.01);
  }
}

TEST(BenedettiFranconiTest, KnownShapes) {
  // f = 1, π = 0.01: ρ = π/(1-π) ln(1/π) ≈ 0.04652 — well above the naive π.
  EXPECT_NEAR(stats::BenedettiFranconiRisk(1.0, 100.0),
              (0.01 / 0.99) * std::log(100.0), 1e-9);
  // Sample uniques are always riskier than the simple estimator suggests.
  for (const double w : {20.0, 50.0, 200.0, 1000.0}) {
    EXPECT_GT(stats::BenedettiFranconiRisk(1.0, w),
              stats::NegBinomialPosteriorRiskClosedForm(1.0, w));
  }
  // Degenerate inputs clamp.
  EXPECT_DOUBLE_EQ(stats::BenedettiFranconiRisk(1.0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(stats::BenedettiFranconiRisk(5.0, 5.0), 1.0);
  EXPECT_DOUBLE_EQ(stats::BenedettiFranconiRisk(0.0, 10.0), 1.0);
}

TEST(BenedettiFranconiTest, BoundedAndDecreasingInWeight) {
  for (const double f : {1.0, 2.0, 3.0, 6.0}) {
    double prev = 1.1;
    for (const double w : {2.0 * f, 5.0 * f, 20.0 * f, 100.0 * f, 1000.0 * f}) {
      const double r = stats::BenedettiFranconiRisk(f, w);
      EXPECT_GE(r, 0.0);
      EXPECT_LE(r, 1.0);
      EXPECT_LE(r, prev + 1e-12) << "f=" << f << " w=" << w;
      prev = r;
    }
  }
}

TEST(PosteriorRiskTest, SampledMonotoneInWeight) {
  Rng rng(47);
  const double high = stats::NegBinomialPosteriorRiskSampled(1.0, 5.0, 4000, &rng);
  const double low = stats::NegBinomialPosteriorRiskSampled(1.0, 500.0, 4000, &rng);
  EXPECT_GT(high, low);
}

}  // namespace
}  // namespace vadasa
