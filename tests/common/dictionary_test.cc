#include "common/dictionary.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "common/value.h"

namespace vadasa {
namespace {

TEST(DictionaryTest, CodesAreDenseAndStableInFirstInternOrder) {
  Dictionary dict;
  const uint32_t a = dict.Intern(Value::String("a"));
  const uint32_t b = dict.Intern(Value::String("b"));
  const uint32_t c = dict.Intern(Value::Int(7));
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_EQ(c, 2u);

  // Re-interning never reassigns: the code is part of the columnar contract.
  EXPECT_EQ(dict.Intern(Value::String("b")), b);
  EXPECT_EQ(dict.Intern(Value::String("a")), a);
  EXPECT_EQ(dict.num_values(), 3u);

  uint32_t code = 0;
  EXPECT_TRUE(dict.TryCode(Value::Int(7), &code));
  EXPECT_EQ(code, c);
  EXPECT_FALSE(dict.TryCode(Value::String("absent"), &code));
  EXPECT_EQ(dict.num_values(), 3u) << "TryCode must not intern";
}

TEST(DictionaryTest, CodeEqualityMatchesValueEqualsAcrossNumericKinds) {
  // Value::Equals treats Int(2) and Double(2.0) as the same term; the
  // interner must collapse them to one code or grouping on codes would
  // split groups the row plane merges.
  Dictionary dict;
  const uint32_t i2 = dict.Intern(Value::Int(2));
  const uint32_t d2 = dict.Intern(Value::Double(2.0));
  EXPECT_EQ(i2, d2);
  const uint32_t d25 = dict.Intern(Value::Double(2.5));
  EXPECT_NE(i2, d25);
}

TEST(DictionaryTest, NullLabelsInternIntoReservedBand) {
  Dictionary dict;
  dict.Intern(Value::String("regular"));
  const uint32_t n1 = dict.Intern(Value::Null(1));
  const uint32_t n2 = dict.Intern(Value::Null(2));
  const uint32_t n1_again = dict.Intern(Value::Null(1));

  EXPECT_TRUE(IsNullCode(n1));
  EXPECT_TRUE(IsNullCode(n2));
  EXPECT_FALSE(IsNullCode(dict.Intern(Value::String("regular"))));
  EXPECT_EQ(n1, kNullCodeBase) << "null codes are dense from the band base";
  EXPECT_EQ(n2, kNullCodeBase + 1);
  EXPECT_EQ(n1_again, n1);
  EXPECT_NE(n1, n2) << "distinct labels stay distinct: ⊥_1 != ⊥_2";
  EXPECT_EQ(dict.num_nulls(), 2u);
  EXPECT_EQ(dict.size(), 3u);
}

TEST(DictionaryTest, DecodeRoundTripsBothBands) {
  Dictionary dict;
  const uint32_t s = dict.Intern(Value::String("x"));
  const uint32_t n = dict.Intern(Value::Null(42));
  EXPECT_TRUE(dict.Decode(s).Equals(Value::String("x")));
  const Value null = dict.Decode(n);
  ASSERT_TRUE(null.is_null());
  EXPECT_EQ(null.null_label(), 42u);
}

TEST(DictionaryTest, ConcurrentInternAssignsOneCodePerValue) {
  // Hammer one dictionary from several threads over an overlapping value
  // set; every thread must observe the same value→code mapping.
  Dictionary dict;
  constexpr int kThreads = 4;
  constexpr int kValues = 200;
  std::vector<std::vector<uint32_t>> codes(kThreads,
                                           std::vector<uint32_t>(kValues));
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&dict, &codes, t] {
      for (int v = 0; v < kValues; ++v) {
        codes[t][v] = dict.Intern(Value::Int(v % 64));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(dict.num_values(), 64u);
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(codes[t], codes[0]) << "thread " << t << " saw different codes";
  }
}

}  // namespace
}  // namespace vadasa
