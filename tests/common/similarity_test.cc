#include "common/similarity.h"

#include <gtest/gtest.h>

namespace vadasa {
namespace {

TEST(SimilarityTest, LevenshteinBasics) {
  EXPECT_EQ(LevenshteinDistance("", ""), 0u);
  EXPECT_EQ(LevenshteinDistance("abc", "abc"), 0u);
  EXPECT_EQ(LevenshteinDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(LevenshteinDistance("", "abc"), 3u);
  EXPECT_EQ(LevenshteinDistance("abc", ""), 3u);
}

TEST(SimilarityTest, LevenshteinSimilarityRange) {
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("abc", "xyz"), 0.0);
}

TEST(SimilarityTest, JaroKnownValues) {
  EXPECT_DOUBLE_EQ(JaroSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("abc", ""), 0.0);
  EXPECT_NEAR(JaroSimilarity("MARTHA", "MARHTA"), 0.944444, 1e-5);
  EXPECT_NEAR(JaroSimilarity("DIXON", "DICKSONX"), 0.766667, 1e-5);
}

TEST(SimilarityTest, JaroWinklerBoostsCommonPrefix) {
  const double jaro = JaroSimilarity("employees", "employer");
  const double jw = JaroWinklerSimilarity("employees", "employer");
  EXPECT_GT(jw, jaro);
  EXPECT_LE(jw, 1.0);
  EXPECT_NEAR(JaroWinklerSimilarity("MARTHA", "MARHTA"), 0.961111, 1e-5);
}

TEST(SimilarityTest, TokenJaccardHandlesSeparators) {
  EXPECT_DOUBLE_EQ(TokenJaccardSimilarity("residential_revenue", "Residential Revenue"),
                   1.0);
  EXPECT_DOUBLE_EQ(TokenJaccardSimilarity("a b", "c d"), 0.0);
  EXPECT_NEAR(TokenJaccardSimilarity("export revenue", "residential revenue"), 1.0 / 3,
              1e-9);
}

TEST(SimilarityTest, AttributeNameSimilarityIsCaseInsensitive) {
  EXPECT_DOUBLE_EQ(AttributeNameSimilarity("AREA", "area"), 1.0);
  EXPECT_GE(AttributeNameSimilarity("Residential Rev.", "residential revenue"), 0.8);
  EXPECT_LT(AttributeNameSimilarity("growth", "fiscal code"), 0.7);
}

TEST(SoundexTest, ClassicCodes) {
  EXPECT_EQ(Soundex("Robert"), "R163");
  EXPECT_EQ(Soundex("Rupert"), "R163");
  EXPECT_EQ(Soundex("Ashcraft"), "A261");  // h is transparent.
  EXPECT_EQ(Soundex("Tymczak"), "T522");
  EXPECT_EQ(Soundex("Pfister"), "P236");
  EXPECT_EQ(Soundex("Honeyman"), "H555");
}

TEST(SoundexTest, EdgeCases) {
  EXPECT_EQ(Soundex(""), "0000");
  EXPECT_EQ(Soundex("123"), "0000");
  EXPECT_EQ(Soundex("a"), "A000");
  EXPECT_EQ(Soundex("robert"), Soundex("ROBERT"));  // Case-insensitive.
}

TEST(SimilarityTest, SymmetryProperty) {
  const char* names[] = {"area", "sector", "employees", "residential revenue",
                         "fiscal code", "id", "growth", ""};
  for (const char* a : names) {
    for (const char* b : names) {
      EXPECT_NEAR(AttributeNameSimilarity(a, b), AttributeNameSimilarity(b, a), 1e-12);
      EXPECT_NEAR(JaroSimilarity(a, b), JaroSimilarity(b, a), 1e-12);
    }
  }
}

TEST(SimilarityTest, BoundedInUnitInterval) {
  const char* names[] = {"a", "ab", "abc", "abcd", "zzzz", "Area 51", "x_y-z"};
  for (const char* a : names) {
    for (const char* b : names) {
      for (const double s : {JaroSimilarity(a, b), JaroWinklerSimilarity(a, b),
                             TokenJaccardSimilarity(a, b), AttributeNameSimilarity(a, b),
                             LevenshteinSimilarity(a, b)}) {
        EXPECT_GE(s, 0.0);
        EXPECT_LE(s, 1.0);
      }
    }
  }
}

}  // namespace
}  // namespace vadasa
