#include "common/string_util.h"

#include <gtest/gtest.h>

namespace vadasa {
namespace {

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  a b \t\n"), "a b");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("x"), "x");
}

TEST(StringUtilTest, ToLower) {
  EXPECT_EQ(ToLower("Residential Rev."), "residential rev.");
  EXPECT_EQ(ToLower(""), "");
}

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  const auto parts = Split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringUtilTest, SplitWhitespaceDropsEmpty) {
  const auto parts = SplitWhitespace("  alpha\tbeta  gamma ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[2], "gamma");
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"x"}, ","), "x");
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("NULL_12", "NULL_"));
  EXPECT_FALSE(StartsWith("NUL", "NULL_"));
  EXPECT_TRUE(EndsWith("risk.vada", ".vada"));
  EXPECT_FALSE(EndsWith("vada", ".vada"));
}

TEST(StringUtilTest, NumberDetection) {
  EXPECT_TRUE(LooksLikeInt("42"));
  EXPECT_TRUE(LooksLikeInt("-7"));
  EXPECT_FALSE(LooksLikeInt("4.2"));
  EXPECT_FALSE(LooksLikeInt("90+"));
  EXPECT_FALSE(LooksLikeInt(""));
  EXPECT_TRUE(LooksLikeDouble("4.2"));
  EXPECT_TRUE(LooksLikeDouble("-1e3"));
  EXPECT_FALSE(LooksLikeDouble("0-30"));
  EXPECT_FALSE(LooksLikeDouble("30-60"));
}

}  // namespace
}  // namespace vadasa
