#include "common/thread_pool.h"

#include <atomic>
#include <mutex>
#include <numeric>
#include <set>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

namespace vadasa {
namespace {

TEST(ThreadPoolTest, CoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(0, hits.size(), 64, [&](size_t lo, size_t hi, size_t) {
    for (size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ShardDecompositionIsFixedByRangeAndGrain) {
  // The same (range, grain) must produce the same shards for any pool size —
  // the determinism contract every risk estimator builds on.
  for (const size_t threads : {1, 2, 7}) {
    ThreadPool pool(threads);
    std::mutex mu;
    std::set<std::tuple<size_t, size_t, size_t>> shards;
    pool.ParallelFor(5, 103, 10, [&](size_t lo, size_t hi, size_t shard) {
      std::lock_guard<std::mutex> lock(mu);
      shards.insert({lo, hi, shard});
    });
    std::set<std::tuple<size_t, size_t, size_t>> expected;
    for (size_t s = 0; 5 + s * 10 < 103; ++s) {
      expected.insert({5 + s * 10, std::min<size_t>(103, 5 + (s + 1) * 10), s});
    }
    EXPECT_EQ(shards, expected) << "threads=" << threads;
  }
}

TEST(ThreadPoolTest, EmptyRangeCallsNothing) {
  ThreadPool pool(3);
  std::atomic<int> calls{0};
  pool.ParallelFor(7, 7, 4, [&](size_t, size_t, size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPoolTest, NestedParallelForRunsInline) {
  // Re-entering ParallelFor from a worker must not deadlock waiting for the
  // (occupied) pool; it degrades to an inline loop.
  ThreadPool pool(4);
  std::atomic<int> total{0};
  pool.ParallelFor(0, 8, 1, [&](size_t, size_t, size_t) {
    pool.ParallelFor(0, 8, 1,
                     [&](size_t, size_t, size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 64);
}

TEST(ThreadPoolTest, ParallelSumMatchesSequential) {
  const size_t n = 4321;
  std::vector<double> values(n);
  std::iota(values.begin(), values.end(), 1.0);
  double sequential = 0.0;
  for (const double v : values) sequential += v;

  ThreadPool pool(5);
  const size_t grain = 100;
  const size_t num_shards = (n + grain - 1) / grain;
  std::vector<double> partial(num_shards, 0.0);
  pool.ParallelFor(0, n, grain, [&](size_t lo, size_t hi, size_t shard) {
    for (size_t i = lo; i < hi; ++i) partial[shard] += values[i];
  });
  // Merging shards in order replays the sequential association exactly.
  double merged = 0.0;
  for (const double p : partial) merged += p;
  EXPECT_EQ(merged, sequential);
}

TEST(ThreadPoolTest, SetGlobalThreadsResizes) {
  const size_t before = ThreadPool::SetGlobalThreads(3);
  EXPECT_EQ(ThreadPool::Global().num_threads(), 3u);
  ThreadPool::SetGlobalThreads(before == 0 ? 1 : before);
}

TEST(ThreadPoolTest, SingleThreadPoolStillCovers) {
  ThreadPool pool(1);
  std::vector<int> hits(100, 0);
  pool.ParallelFor(0, hits.size(), 7, [&](size_t lo, size_t hi, size_t) {
    for (size_t i = lo; i < hi; ++i) hits[i]++;
  });
  for (const int h : hits) EXPECT_EQ(h, 1);
}

}  // namespace
}  // namespace vadasa
