#include "testing/properties.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "testing/harness.h"

namespace vadasa::testing {
namespace {

std::vector<std::string> PropertyNames() {
  std::vector<std::string> names;
  for (const Property& property : PropertyCatalog()) names.push_back(property.name);
  return names;
}

TEST(PropCatalogTest, LookupWorks) {
  EXPECT_GE(PropertyCatalog().size(), 10u);
  for (const Property& property : PropertyCatalog()) {
    ASSERT_NE(FindProperty(property.name), nullptr);
    EXPECT_EQ(FindProperty(property.name)->name, property.name);
    EXPECT_FALSE(property.summary.empty()) << property.name;
  }
  EXPECT_EQ(FindProperty("no-such-property"), nullptr);
  ReproCase unknown;
  unknown.property = "no-such-property";
  EXPECT_FALSE(EvaluateRepro(unknown).ok());
}

TEST(PropCatalogTest, GenerationIsDeterministic) {
  for (const Property& property : PropertyCatalog()) {
    Rng a(7), b(7);
    const ReproCase ca = property.generate(&a, 0);
    const ReproCase cb = property.generate(&b, 0);
    EXPECT_EQ(ReproToString(ca), ReproToString(cb)) << property.name;
  }
}

TEST(PropCatalogTest, DefaultRunCoversAtLeast200Cases) {
  const HarnessOptions options = HarnessOptionsFromEnv();
  EXPECT_GE(PropertyCatalog().size() * options.cases_per_property, 200u)
      << "the prop suite must generate at least 200 cases per run";
}

/// The columnar data plane's acceptance bar: 220+ generated cases (labelled
/// nulls, weights, duplicate rows) where the dictionary-coded plane must
/// reproduce the row plane byte-for-byte — risks of all four measures plus a
/// full audited cycle. A wider sweep than the per-property default because
/// the plane switch silently rewires every grouping hot path.
TEST(PropCatalogTest, ColumnarRowDifferentialWideSweep) {
  const Property* property = FindProperty("columnar-vs-row-bit-identical");
  ASSERT_NE(property, nullptr);
  HarnessOptions options;
  options.cases_per_property = 220;
  const HarnessReport report = RunProperty(*property, options);
  EXPECT_EQ(report.cases_run, 220u);
  std::string diagnostics;
  for (const ReproCase& repro : report.repros) {
    diagnostics += "\n--- shrunk repro ---\n" + ReproToString(repro);
  }
  EXPECT_EQ(report.failures, 0u)
      << "columnar plane diverged from the row plane on " << report.failures
      << "/" << report.cases_run << " cases" << diagnostics;
}

/// The fault-hardening acceptance bar (docs/robustness.md): 220+ generated
/// chaos cases, each arming a random deterministic failpoint assignment over
/// the registry/scheduler sites and rerunning a full protocol conversation.
/// Every response must stay well-formed, nothing may hang, and the jobs that
/// still succeed must be bit-identical to the fault-free reference pass.
TEST(PropCatalogTest, ChaosServeNeverCorruptsWideSweep) {
  const Property* property = FindProperty("chaos-serve-never-corrupts");
  ASSERT_NE(property, nullptr);
  HarnessOptions options;
  options.cases_per_property = 220;
  const HarnessReport report = RunProperty(*property, options);
  EXPECT_EQ(report.cases_run, 220u);
  std::string diagnostics;
  for (const ReproCase& repro : report.repros) {
    diagnostics += "\n--- shrunk repro ---\n" + ReproToString(repro);
  }
  EXPECT_EQ(report.failures, 0u)
      << "faulted serving corrupted or wedged " << report.failures << "/"
      << report.cases_run << " cases" << diagnostics;
}

/// The incremental-maintenance acceptance bar (docs/api.md §"Streaming
/// deltas"): 220+ generated cases, each streaming chained random delta
/// batches (appends, updates, deletes, labelled-null suppressions) through
/// Session::Apply on both data planes. Every step's risks, released bytes,
/// and audit text must be byte-identical to a cold session built from
/// scratch over the post-delta table.
TEST(PropCatalogTest, DeltaVsFullRecomputeWideSweep) {
  const Property* property = FindProperty("delta-vs-full-recompute-bit-identical");
  ASSERT_NE(property, nullptr);
  HarnessOptions options;
  options.cases_per_property = 220;
  const HarnessReport report = RunProperty(*property, options);
  EXPECT_EQ(report.cases_run, 220u);
  std::string diagnostics;
  for (const ReproCase& repro : report.repros) {
    diagnostics += "\n--- shrunk repro ---\n" + ReproToString(repro);
  }
  EXPECT_EQ(report.failures, 0u)
      << "incremental delta maintenance diverged from the cold rebuild on "
      << report.failures << "/" << report.cases_run << " cases" << diagnostics;
}

/// The result-cache coherence acceptance bar (docs/serving.md): 220+
/// generated cases, each priming hot policies, interleaving them with
/// unique-policy traffic, and replacing the dataset's content mid-stream —
/// on both data planes. Every hit must replay the cold run's exact bytes,
/// every unique policy must miss, and the first request after a one-cell
/// edit must miss and match the edited table's cold reference.
TEST(PropCatalogTest, CachedResultBitIdenticalWideSweep) {
  const Property* property = FindProperty("cached-result-bit-identical");
  ASSERT_NE(property, nullptr);
  HarnessOptions options;
  options.cases_per_property = 220;
  const HarnessReport report = RunProperty(*property, options);
  EXPECT_EQ(report.cases_run, 220u);
  std::string diagnostics;
  for (const ReproCase& repro : report.repros) {
    diagnostics += "\n--- shrunk repro ---\n" + ReproToString(repro);
  }
  EXPECT_EQ(report.failures, 0u)
      << "result cache served wrong or stale bytes on " << report.failures
      << "/" << report.cases_run << " cases" << diagnostics;
}

/// One discovered ctest entry per property; each runs its full generated-case
/// budget (cases × properties >= 200 per full suite run).
class PropertyRunTest : public ::testing::TestWithParam<std::string> {};

TEST_P(PropertyRunTest, HoldsOnGeneratedCases) {
  const Property* property = FindProperty(GetParam());
  ASSERT_NE(property, nullptr);
  const HarnessOptions options = HarnessOptionsFromEnv();
  const HarnessReport report = RunProperty(*property, options);
  EXPECT_GT(report.cases_run, 0u);
  if (options.budget_ms == 0) {
    EXPECT_EQ(report.cases_run, options.cases_per_property);
  }
  std::string diagnostics;
  for (const ReproCase& repro : report.repros) {
    diagnostics += "\n--- shrunk repro ---\n" + ReproToString(repro);
  }
  EXPECT_EQ(report.failures, 0u)
      << property->name << " violated on " << report.failures << "/"
      << report.cases_run << " generated cases (seed " << options.seed << ")"
      << diagnostics;
}

std::string SanitizeName(const ::testing::TestParamInfo<std::string>& info) {
  std::string name = info.param;
  for (char& c : name) {
    if (c == '-') c = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(Catalog, PropertyRunTest,
                         ::testing::ValuesIn(PropertyNames()), SanitizeName);

/// Replays a failure file from a previous run:
///   VADASA_PROP_REPRO=case.repro ctest -R prop
/// The test fails while the bug reproduces and passes once it is fixed.
TEST(PropReplayTest, EnvRepro) {
  const char* path = std::getenv("VADASA_PROP_REPRO");
  if (path == nullptr || *path == '\0') {
    GTEST_SKIP() << "VADASA_PROP_REPRO not set";
  }
  const Status verdict = ReplayReproFile(path);
  EXPECT_TRUE(verdict.ok()) << verdict.ToString();
}

}  // namespace
}  // namespace vadasa::testing
