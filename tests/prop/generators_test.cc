#include "testing/generators.h"

#include <gtest/gtest.h>

#include <set>

#include "common/csv.h"
#include "core/microdata.h"
#include "vadalog/parser.h"

namespace vadasa::testing {
namespace {

using core::AttributeCategory;

TEST(RandomTableTest, DeterministicInSeed) {
  Rng a(42), b(42);
  const auto ta = RandomTable(&a);
  const auto tb = RandomTable(&b);
  EXPECT_EQ(WriteCsv(ta.ToCsv()), WriteCsv(tb.ToCsv()));
}

TEST(RandomTableTest, RespectsShapeBounds) {
  TableGenOptions options;
  options.min_rows = 3;
  options.max_rows = 9;
  options.min_qi = 2;
  options.max_qi = 4;
  Rng rng(7);
  for (int i = 0; i < 50; ++i) {
    const auto table = RandomTable(&rng, options);
    EXPECT_GE(table.num_rows(), 3u);
    EXPECT_LE(table.num_rows(), 9u);
    const size_t qis = table.QuasiIdentifierColumns().size();
    EXPECT_GE(qis, 2u);
    EXPECT_LE(qis, 4u);
    EXPECT_EQ(table.ColumnsWithCategory(AttributeCategory::kIdentifier).size(), 1u);
    EXPECT_EQ(table.ColumnsWithCategory(AttributeCategory::kWeight).size(), 1u);
  }
}

TEST(RandomTableTest, OptionalColumnsCanBeDisabled) {
  TableGenOptions options;
  options.with_identifier = false;
  options.with_weight = false;
  options.with_non_identifying = false;
  Rng rng(11);
  const auto table = RandomTable(&rng, options);
  EXPECT_TRUE(table.ColumnsWithCategory(AttributeCategory::kIdentifier).empty());
  EXPECT_TRUE(table.ColumnsWithCategory(AttributeCategory::kWeight).empty());
  EXPECT_EQ(table.QuasiIdentifierColumns().size(), table.num_columns());
}

TEST(RandomTableTest, NullLabelsAreDistinct) {
  TableGenOptions options;
  options.null_probability = 0.5;
  options.duplicate_probability = 0.0;  // Duplicates legitimately share labels.
  options.min_rows = 20;
  options.max_rows = 20;
  Rng rng(3);
  const auto table = RandomTable(&rng, options);
  std::set<uint64_t> labels;
  size_t nulls = 0;
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (const size_t c : table.QuasiIdentifierColumns()) {
      if (table.cell(r, c).is_null()) {
        ++nulls;
        labels.insert(table.cell(r, c).null_label());
      }
    }
  }
  EXPECT_GT(nulls, 0u);
  EXPECT_EQ(labels.size(), nulls) << "pre-suppressed cells must carry fresh labels";
}

TEST(RandomHierarchyTest, CoversStringQiValues) {
  Rng rng(5);
  const auto table = RandomTable(&rng);
  const auto hierarchy = RandomHierarchy(&rng, table);
  for (const size_t c : table.QuasiIdentifierColumns()) {
    std::set<std::string> values;
    for (size_t r = 0; r < table.num_rows(); ++r) {
      if (table.cell(r, c).is_string()) values.insert(table.cell(r, c).as_string());
    }
    if (values.size() < 2) continue;  // Too few values to fold.
    for (const std::string& v : values) {
      EXPECT_TRUE(
          hierarchy.CanGeneralize(table.attributes()[c].name, Value::String(v)))
          << table.attributes()[c].name << "=" << v;
    }
  }
}

TEST(RandomOwnershipGraphTest, DeterministicAndClusterable) {
  Rng a(9), b(9);
  const auto table = RandomTable(&a);
  Rng a2(13), b2(13);
  const auto ga = RandomOwnershipGraph(&a2, table);
  const auto gb = RandomOwnershipGraph(&b2, table);
  EXPECT_EQ(ga.ComputeClusters().size(), gb.ComputeClusters().size());
}

TEST(RandomProgramTest, AlwaysParses) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    const std::string src = RandomVadalogProgram(&rng);
    const auto program = vadalog::Parse(src);
    ASSERT_TRUE(program.ok()) << program.status().ToString() << "\n" << src;
  }
}

TEST(RandomProgramTest, PositiveFragmentStaysPositive) {
  ProgramGenOptions options;
  options.positive_fragment_only = true;
  Rng rng(23);
  for (int i = 0; i < 50; ++i) {
    const std::string src = RandomVadalogProgram(&rng, options);
    EXPECT_EQ(src.find("not "), std::string::npos) << src;
    EXPECT_EQ(src.find("mcount"), std::string::npos) << src;
    EXPECT_EQ(src.find("E0"), std::string::npos) << src;
  }
}

TEST(RandomNoiseTest, DeterministicInSeed) {
  Rng a(31), b(31);
  EXPECT_EQ(RandomTokenSoup(&a), RandomTokenSoup(&b));
  EXPECT_EQ(RandomBytes(&a), RandomBytes(&b));
}

}  // namespace
}  // namespace vadasa::testing
