#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "testing/harness.h"
#include "testing/properties.h"
#include "testing/repro.h"

namespace vadasa::testing {
namespace {

/// Every shrunk repro committed under tests/prop/regressions/ documents a
/// real invariant violation the harness once surfaced. Replaying them must
/// stay clean: a failure here means the original bug regressed.
TEST(PropRegressionsTest, CommittedReprosStayFixed) {
  const std::filesystem::path dir = VADASA_PROP_REGRESSION_DIR;
  ASSERT_TRUE(std::filesystem::is_directory(dir)) << dir;
  std::vector<std::filesystem::path> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".repro") files.push_back(entry.path());
  }
  ASSERT_FALSE(files.empty()) << "no committed regression repros found in " << dir;
  for (const auto& file : files) {
    const auto repro = LoadRepro(file.string());
    ASSERT_TRUE(repro.ok()) << file << ": " << repro.status().ToString();
    ASSERT_NE(FindProperty(repro->property), nullptr)
        << file << " names unknown property \"" << repro->property << "\"";
    const Status verdict = EvaluateRepro(*repro);
    EXPECT_TRUE(verdict.ok()) << file << " regressed: " << verdict.ToString();
  }
}

}  // namespace
}  // namespace vadasa::testing
