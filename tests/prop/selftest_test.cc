#include <gtest/gtest.h>

#include <fstream>
#include <string>

#include "core/group_index.h"
#include "core/microdata.h"
#include "testing/generators.h"
#include "testing/harness.h"
#include "testing/properties.h"

namespace vadasa::testing {
namespace {

using core::MicrodataTable;
using core::NullSemantics;

/// Mutation smoke-checks: the harness is only trustworthy if a deliberately
/// broken invariant is (a) caught, (b) shrunk to a minimal input, and (c)
/// saved as a repro that still fails when replayed from disk.

Property BrokenRowCountProperty() {
  Property broken;
  broken.name = "selftest-broken";
  broken.summary = "deliberately false: every table has fewer than 2 rows";
  broken.generate = [](Rng* rng, uint64_t i) {
    ReproCase repro;
    repro.property = "selftest-broken";
    repro.seed = rng->Next();
    repro.case_index = i;
    TableGenOptions options;
    options.min_rows = 5;
    repro.table = RandomTable(rng, options);
    return repro;
  };
  broken.evaluate = [](const ReproCase& repro) {
    if (repro.table.num_rows() >= 2 &&
        !repro.table.QuasiIdentifierColumns().empty()) {
      return Status::FailedPrecondition(
          "mutation: table has " + std::to_string(repro.table.num_rows()) +
          " rows and a quasi-identifier");
    }
    return Status::OK();
  };
  return broken;
}

TEST(HarnessSelfTest, BrokenInvariantIsCaughtShrunkAndReplayable) {
  const Property broken = BrokenRowCountProperty();
  HarnessOptions options;
  options.seed = 2021;
  options.cases_per_property = 5;
  options.repro_dir = ::testing::TempDir();
  const HarnessReport report = RunProperty(broken, options);

  // (a) Caught: every generated table trips the mutated invariant.
  EXPECT_EQ(report.failures, report.cases_run);
  ASSERT_FALSE(report.repros.empty());

  // (b) Shrunk to the minimal failing input: 2 rows, 1 quasi-identifier.
  const ReproCase& shrunk = report.repros[0];
  EXPECT_EQ(shrunk.table.num_rows(), 2u);
  EXPECT_EQ(shrunk.table.num_columns(), 1u);
  EXPECT_FALSE(shrunk.message.empty());
  EXPECT_FALSE(broken.evaluate(shrunk).ok());

  // (c) Replayable: the saved file reproduces the identical case.
  ASSERT_FALSE(report.saved_paths.empty());
  const auto loaded = LoadRepro(report.saved_paths[0]);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(ReproToString(*loaded), ReproToString(shrunk));
  EXPECT_FALSE(broken.evaluate(*loaded).ok())
      << "the shrunk repro must still fail after a disk round-trip";
}

/// Emulates the pre-fix LocalSuppression behavior — always injecting ⊥_1
/// regardless of labels already present — and checks that the
/// fresh-labels oracle logic detects the resulting group merge. This is the
/// harness-level regression for the label-collision bug fixed in
/// src/core/anonymize.cc (see tests/prop/regressions/).
Property BuggySuppressionProperty() {
  Property buggy;
  buggy.name = "selftest-buggy-suppression";
  buggy.summary = "deliberately reintroduces the ⊥-label collision bug";
  buggy.generate = [](Rng* rng, uint64_t i) {
    ReproCase repro;
    repro.property = "selftest-buggy-suppression";
    repro.seed = rng->Next();
    repro.case_index = i;
    TableGenOptions options;
    options.min_qi = 1;
    options.max_qi = 1;
    options.min_rows = 6;
    options.max_rows = 12;
    options.max_domain = 3;
    options.null_probability = 0.3;
    repro.table = RandomTable(rng, options);
    return repro;
  };
  buggy.evaluate = [](const ReproCase& repro) {
    const auto qis = repro.table.QuasiIdentifierColumns();
    if (qis.empty() || repro.table.num_rows() == 0) return Status::OK();
    // First non-null QI cell: content-based, so the pick is stable while the
    // shrinker removes rows and the minimal 2-row case is reachable.
    size_t row = repro.table.num_rows();
    const size_t col = qis[0];
    for (size_t r = 0; r < repro.table.num_rows(); ++r) {
      if (!repro.table.cell(r, col).is_null()) {
        row = r;
        break;
      }
    }
    if (row == repro.table.num_rows()) return Status::OK();
    const auto before =
        core::ComputeGroupStats(repro.table, qis, NullSemantics::kStandard);
    MicrodataTable suppressed = repro.table;
    suppressed.set_cell(row, col, Value::Null(1));  // Pre-fix: label reuse.
    const auto after =
        core::ComputeGroupStats(suppressed, qis, NullSemantics::kStandard);
    for (size_t r = 0; r < repro.table.num_rows(); ++r) {
      if (after.frequency[r] > before.frequency[r] + 1e-9) {
        return Status::FailedPrecondition(
            "label collision merged groups at row " + std::to_string(r));
      }
    }
    return Status::OK();
  };
  return buggy;
}

TEST(HarnessSelfTest, HistoricalLabelCollisionBugIsCaught) {
  const Property buggy = BuggySuppressionProperty();
  HarnessOptions options;
  options.seed = 2021;
  options.cases_per_property = 60;
  const HarnessReport report = RunProperty(buggy, options);
  ASSERT_GT(report.failures, 0u)
      << "the fresh-labels oracle must catch reused null labels";
  const ReproCase& shrunk = report.repros[0];
  EXPECT_FALSE(buggy.evaluate(shrunk).ok());
  EXPECT_EQ(shrunk.table.num_columns(), 1u);
  EXPECT_EQ(shrunk.table.num_rows(), 2u)
      << "minimal collision: the suppressed row plus the pre-existing ⊥_1 row";
}

TEST(HarnessSelfTest, FixedSuppressionPassesSameCases) {
  // The identical generator run against the real (fixed) LocalSuppression —
  // via the catalog's fresh-labels property evaluator — must be clean.
  const Property buggy = BuggySuppressionProperty();
  const Property* fixed = FindProperty("suppression-fresh-labels");
  ASSERT_NE(fixed, nullptr);
  Rng rng(2021);
  for (uint64_t i = 0; i < 60; ++i) {
    ReproCase repro = buggy.generate(&rng, i);
    repro.property = fixed->name;
    EXPECT_TRUE(fixed->evaluate(repro).ok())
        << "case " << i << " failed against the fixed suppression";
  }
}

TEST(HarnessSelfTest, BudgetStopsGeneration) {
  const Property broken = BrokenRowCountProperty();
  HarnessOptions options;
  options.seed = 2021;
  options.cases_per_property = 1000000;  // Would run forever without a budget.
  options.budget_ms = 1;
  const HarnessReport report = RunProperty(broken, options);
  EXPECT_LT(report.cases_run, 1000000u);
}

}  // namespace
}  // namespace vadasa::testing
