#include "testing/repro.h"

#include <gtest/gtest.h>

#include "core/microdata.h"

namespace vadasa::testing {
namespace {

using core::Attribute;
using core::AttributeCategory;
using core::MicrodataTable;

ReproCase MakeCase() {
  ReproCase repro;
  repro.property = "suppression-monotone";
  repro.seed = 123456789;
  repro.case_index = 7;
  repro.message = "row 1 had its group shrunk";
  repro.params["k"] = "3";
  repro.params["semantics"] = "maybe";
  MicrodataTable table(
      "t", {{"Id", "", AttributeCategory::kIdentifier},
            {"Q1", "", AttributeCategory::kQuasiIdentifier},
            {"Q2", "", AttributeCategory::kQuasiIdentifier},
            {"W", "", AttributeCategory::kWeight}});
  EXPECT_TRUE(table.AddRow({Value::String("e0"), Value::String("v1"),
                            Value::Int(4), Value::Double(2.5)})
                  .ok());
  EXPECT_TRUE(table.AddRow({Value::String("e1"), Value::Null(3), Value::Int(4),
                            Value::Double(1.0)})
                  .ok());
  repro.table = std::move(table);
  return repro;
}

TEST(ReproTest, RoundTripsTableCase) {
  const ReproCase original = MakeCase();
  const auto loaded = ReproFromString(ReproToString(original));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->property, original.property);
  EXPECT_EQ(loaded->seed, original.seed);
  EXPECT_EQ(loaded->case_index, original.case_index);
  EXPECT_EQ(loaded->message, original.message);
  EXPECT_EQ(loaded->params, original.params);
  ASSERT_EQ(loaded->table.num_rows(), original.table.num_rows());
  ASSERT_EQ(loaded->table.num_columns(), original.table.num_columns());
  for (size_t c = 0; c < original.table.num_columns(); ++c) {
    EXPECT_EQ(loaded->table.attributes()[c].name, original.table.attributes()[c].name);
    EXPECT_EQ(loaded->table.attributes()[c].category,
              original.table.attributes()[c].category);
  }
  for (size_t r = 0; r < original.table.num_rows(); ++r) {
    for (size_t c = 0; c < original.table.num_columns(); ++c) {
      const Value& want = original.table.cell(r, c);
      const Value& got = loaded->table.cell(r, c);
      EXPECT_TRUE(got.Equals(want)) << "(" << r << "," << c << ")";
      if (want.is_null()) {
        EXPECT_EQ(got.null_label(), want.null_label());
      }
    }
  }
}

TEST(ReproTest, RoundTripsProgramCase) {
  ReproCase repro;
  repro.property = "vadalog-determinism";
  repro.seed = 99;
  repro.program = "p(a).\nq(X) :- p(X).\n";
  const auto loaded = ReproFromString(ReproToString(repro));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->program, repro.program);
  EXPECT_EQ(loaded->table.num_columns(), 0u);
}

TEST(ReproTest, SerializationIsStable) {
  const ReproCase repro = MakeCase();
  const std::string once = ReproToString(repro);
  const auto loaded = ReproFromString(once);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(ReproToString(*loaded), once) << "repro files must be canonical";
}

TEST(ReproTest, RejectsMalformedInput) {
  EXPECT_FALSE(ReproFromString("").ok());
  EXPECT_FALSE(ReproFromString("not a repro\n").ok());
  EXPECT_FALSE(ReproFromString("# vadasa-prop-repro v1\nbogus line\n").ok());
  EXPECT_FALSE(
      ReproFromString("# vadasa-prop-repro v1\nproperty: x\ntable:\nQ1\n").ok())
      << "unterminated table section must be rejected";
  EXPECT_FALSE(ReproFromString("# vadasa-prop-repro v1\nseed: 1\n").ok())
      << "a repro without a property is unusable";
}

TEST(ReproTest, SaveAndLoadFile) {
  const std::string path = ::testing::TempDir() + "repro_roundtrip.repro";
  const ReproCase repro = MakeCase();
  ASSERT_TRUE(SaveRepro(repro, path).ok());
  const auto loaded = LoadRepro(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(ReproToString(*loaded), ReproToString(repro));
  EXPECT_FALSE(LoadRepro(path + ".missing").ok());
}

}  // namespace
}  // namespace vadasa::testing
