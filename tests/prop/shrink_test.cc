#include "testing/shrink.h"

#include <gtest/gtest.h>

#include "core/microdata.h"

namespace vadasa::testing {
namespace {

using core::Attribute;
using core::AttributeCategory;
using core::MicrodataTable;

MicrodataTable TenRows() {
  MicrodataTable table("t", {{"Q1", "", AttributeCategory::kQuasiIdentifier},
                             {"Q2", "", AttributeCategory::kQuasiIdentifier},
                             {"Q3", "", AttributeCategory::kQuasiIdentifier}});
  for (int r = 0; r < 10; ++r) {
    const std::string v = (r == 3 || r == 8) ? "dup" : "u" + std::to_string(r);
    EXPECT_TRUE(table
                    .AddRow({Value::String(v), Value::Int(r),
                             Value::String("x" + std::to_string(r))})
                    .ok());
  }
  return table;
}

size_t CountDup(const MicrodataTable& table) {
  size_t count = 0;
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (size_t c = 0; c < table.num_columns(); ++c) {
      const Value& v = table.cell(r, c);
      if (v.is_string() && v.as_string() == "dup") ++count;
    }
  }
  return count;
}

TEST(ShrinkTableTest, ReachesMinimalFailingInput) {
  ShrinkStats stats;
  const auto shrunk = ShrinkTable(
      TenRows(), [](const MicrodataTable& t) { return CountDup(t) >= 2; }, &stats);
  // Exactly the two "dup" rows survive, and only the column carrying them.
  EXPECT_EQ(shrunk.num_rows(), 2u);
  EXPECT_EQ(shrunk.num_columns(), 1u);
  EXPECT_EQ(CountDup(shrunk), 2u);
  EXPECT_EQ(stats.rows_removed, 8u);
  EXPECT_EQ(stats.columns_removed, 2u);
  EXPECT_GT(stats.evaluations, 0u);
}

TEST(ShrinkTableTest, ResultAlwaysFails) {
  // A predicate with a non-contiguous trigger set: both Q2==2 and Q2==7 rows.
  const auto shrunk = ShrinkTable(TenRows(), [](const MicrodataTable& t) {
    bool two = false, seven = false;
    for (size_t r = 0; r < t.num_rows(); ++r) {
      for (size_t c = 0; c < t.num_columns(); ++c) {
        const Value& v = t.cell(r, c);
        if (v.is_int() && v.as_int() == 2) two = true;
        if (v.is_int() && v.as_int() == 7) seven = true;
      }
    }
    return two && seven;
  });
  EXPECT_EQ(shrunk.num_rows(), 2u);
  EXPECT_EQ(shrunk.num_columns(), 1u);
}

TEST(ShrinkTableTest, DeterministicAcrossRuns) {
  const auto predicate = [](const MicrodataTable& t) { return CountDup(t) >= 1; };
  const auto a = ShrinkTable(TenRows(), predicate);
  const auto b = ShrinkTable(TenRows(), predicate);
  ASSERT_EQ(a.num_rows(), b.num_rows());
  ASSERT_EQ(a.num_columns(), b.num_columns());
  for (size_t r = 0; r < a.num_rows(); ++r) {
    for (size_t c = 0; c < a.num_columns(); ++c) {
      EXPECT_TRUE(a.cell(r, c).Equals(b.cell(r, c)));
    }
  }
}

TEST(ShrinkProgramTest, DropsIrrelevantLines) {
  const std::string failing = "p(a).\nq(b).\nkeep(me).\nr(c).\n";
  ShrinkStats stats;
  const std::string shrunk = ShrinkProgram(
      failing,
      [](const std::string& s) { return s.find("keep") != std::string::npos; },
      &stats);
  EXPECT_EQ(shrunk, "keep(me).\n");
  EXPECT_EQ(stats.lines_removed, 3u);
}

TEST(DropHelpersTest, DropRowAndColumn) {
  const auto table = TenRows();
  const auto no_row0 = DropRow(table, 0);
  EXPECT_EQ(no_row0.num_rows(), 9u);
  EXPECT_TRUE(no_row0.cell(0, 1).Equals(Value::Int(1)));
  const auto no_col1 = DropColumn(table, 1);
  EXPECT_EQ(no_col1.num_columns(), 2u);
  EXPECT_EQ(no_col1.attributes()[1].name, "Q3");
  EXPECT_EQ(no_col1.num_rows(), 10u);
}

}  // namespace
}  // namespace vadasa::testing
