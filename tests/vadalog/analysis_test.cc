#include "vadalog/analysis.h"

#include <gtest/gtest.h>

#include "vadalog/parser.h"

namespace vadasa::vadalog {
namespace {

Program MustParse(const std::string& src) {
  auto p = Parse(src);
  EXPECT_TRUE(p.ok()) << p.status().ToString();
  return *p;
}

TEST(SafetyTest, AcceptsSafeRules) {
  const Program p = MustParse(
      "p(X, Y) :- q(X), r(X, Y), not s(Y), Y > 3.\n"
      "t(X, Z) :- q(X), Z = X + 1.\n"
      "u(X, W) :- r(X, V), W = msum(V, <X>).");
  EXPECT_TRUE(CheckSafety(p).ok());
}

TEST(SafetyTest, RejectsUnboundNegation) {
  const Program p = MustParse("p(X) :- q(X), not s(Y).");
  const Status s = CheckSafety(p);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
}

TEST(SafetyTest, RejectsUnboundCondition) {
  EXPECT_FALSE(CheckSafety(MustParse("p(X) :- q(X), Y > 2.")).ok());
}

TEST(SafetyTest, RejectsUnboundAssignmentInput) {
  EXPECT_FALSE(CheckSafety(MustParse("p(X, Z) :- q(X), Z = Y + 1.")).ok());
}

TEST(SafetyTest, AcceptsChainedAssignments) {
  EXPECT_TRUE(CheckSafety(MustParse("p(X, B) :- q(X), A = X + 1, B = A * 2.")).ok());
}

TEST(SafetyTest, AcceptsPostAggregateAssignment) {
  EXPECT_TRUE(CheckSafety(MustParse(
                  "p(G, R) :- q(G, I), N = mcount(<I>), R = if(lt(N, 2), 1, 0)."))
                  .ok());
}

TEST(SafetyTest, ExistentialHeadsAreAllowed) {
  EXPECT_TRUE(CheckSafety(MustParse("p(X, Z) :- q(X).")).ok());
}

TEST(StratificationTest, PositiveRecursionSingleStratum) {
  const Program p = MustParse(
      "path(X,Y) :- edge(X,Y).\n"
      "path(X,Z) :- path(X,Y), edge(Y,Z).");
  auto strat = Stratify(p);
  ASSERT_TRUE(strat.ok());
  EXPECT_EQ(strat->num_strata, 1);
  EXPECT_EQ(strat->rules_by_stratum[0].size(), 2u);
}

TEST(StratificationTest, NegationRaisesStratum) {
  const Program p = MustParse(
      "reach(X) :- start(X).\n"
      "reach(Y) :- reach(X), edge(X,Y).\n"
      "unreached(X) :- node(X), not reach(X).");
  auto strat = Stratify(p);
  ASSERT_TRUE(strat.ok());
  EXPECT_EQ(strat->num_strata, 2);
  EXPECT_EQ(strat->stratum.at("reach"), 0);
  EXPECT_EQ(strat->stratum.at("unreached"), 1);
}

TEST(StratificationTest, RejectsNegativeCycle) {
  const Program p = MustParse(
      "p(X) :- q(X), not r(X).\n"
      "r(X) :- q(X), not p(X).");
  EXPECT_FALSE(Stratify(p).ok());
}

TEST(StratificationTest, ThreeLayerChain) {
  const Program p = MustParse(
      "a(X) :- base(X).\n"
      "b(X) :- base(X), not a(X).\n"
      "c(X) :- base(X), not b(X).");
  auto strat = Stratify(p);
  ASSERT_TRUE(strat.ok());
  EXPECT_EQ(strat->num_strata, 3);
}

TEST(WardednessTest, DatalogProgramIsWarded) {
  // No existentials at all → nothing affected → trivially warded.
  const Program p = MustParse(
      "path(X,Y) :- edge(X,Y).\n"
      "path(X,Z) :- path(X,Y), edge(Y,Z).");
  const WardednessReport report = AnalyzeWardedness(p);
  EXPECT_TRUE(report.program_warded);
  EXPECT_TRUE(report.affected_positions.empty());
}

TEST(WardednessTest, AffectedPositionsPropagate) {
  const Program p = MustParse(
      "p(X, Z) :- q(X).\n"       // Z existential → p[1] affected.
      "r(Z) :- p(X, Z).");       // Z flows on → r[0] affected.
  const WardednessReport report = AnalyzeWardedness(p);
  EXPECT_TRUE(report.affected_positions.count({"p", 1}) > 0);
  EXPECT_TRUE(report.affected_positions.count({"r", 0}) > 0);
  EXPECT_FALSE(report.affected_positions.count({"p", 0}) > 0);
  EXPECT_TRUE(report.program_warded);  // Single-atom bodies ward themselves.
}

TEST(WardednessTest, DangerousJoinOutsideWardIsNotWarded) {
  // Z is harmful (only affected positions) and joins two body atoms while
  // appearing in the head: not warded.
  const Program p = MustParse(
      "p(X, Z) :- q(X).\n"
      "s(Z) :- p(X, Z), p(Y, Z).");
  const WardednessReport report = AnalyzeWardedness(p);
  EXPECT_FALSE(report.program_warded);
}

TEST(WardednessTest, HarmlessJoinIsWarded) {
  // The join variable X occurs at unaffected positions: fine.
  const Program p = MustParse(
      "p(X, Z) :- q(X).\n"
      "s(X) :- p(X, Z), q(X).");
  const WardednessReport report = AnalyzeWardedness(p);
  EXPECT_TRUE(report.program_warded);
}

TEST(WardednessTest, WardIndexReported) {
  const Program p = MustParse(
      "p(X, Z) :- q(X).\n"
      "t(Z, X) :- p(X, Z), q(X).");
  const WardednessReport report = AnalyzeWardedness(p);
  ASSERT_EQ(report.rules.size(), 2u);
  EXPECT_TRUE(report.rules[1].warded);
  EXPECT_EQ(report.rules[1].ward, 0);  // p(X,Z) hosts dangerous Z.
  ASSERT_EQ(report.rules[1].dangerous_vars.size(), 1u);
  EXPECT_EQ(report.rules[1].dangerous_vars[0], "Z");
}

}  // namespace
}  // namespace vadasa::vadalog
