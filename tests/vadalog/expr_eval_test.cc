#include "vadalog/expr_eval.h"

#include <gtest/gtest.h>

#include <map>

#include "vadalog/parser.h"

namespace vadasa::vadalog {
namespace {

/// Parses `target = <expr>` inside a dummy rule and evaluates the expression
/// against a variable map.
Result<Value> Eval(const std::string& expr_src,
                   const std::map<std::string, Value>& vars = {}) {
  auto program = Parse("out(R) :- dummy(X, Y, S, P), R = " + expr_src + ".");
  if (!program.ok()) return program.status();
  if (program->rules.empty() || program->rules[0].assignments.empty()) {
    return Status::Internal("no assignment parsed");
  }
  VarLookup lookup = [&vars](const std::string& name) -> const Value* {
    auto it = vars.find(name);
    return it == vars.end() ? nullptr : &it->second;
  };
  return EvalExpr(*program->rules[0].assignments[0].expr, lookup);
}

TEST(ExprEvalTest, Arithmetic) {
  EXPECT_EQ(Eval("1 + 2 * 3")->as_int(), 7);
  EXPECT_DOUBLE_EQ(Eval("7 / 2")->as_double(), 3.5);
  EXPECT_EQ(Eval("-(3 + 4)")->as_int(), -7);
  EXPECT_EQ(Eval("mod(7, 3)")->as_int(), 1);
  EXPECT_FALSE(Eval("1 / 0").ok());
  EXPECT_FALSE(Eval("mod(1, 0)").ok());
}

TEST(ExprEvalTest, IntDoublePromotion) {
  EXPECT_TRUE(Eval("1 + 2")->is_int());
  EXPECT_TRUE(Eval("1 + 2.0")->is_double());
}

TEST(ExprEvalTest, Variables) {
  EXPECT_DOUBLE_EQ(Eval("X * 2", {{"X", Value::Double(1.5)}})->as_double(), 3.0);
  const auto unbound = Eval("X + 1");
  EXPECT_FALSE(unbound.ok());
  EXPECT_EQ(unbound.status().code(), StatusCode::kFailedPrecondition);
}

TEST(ExprEvalTest, StringFunctions) {
  EXPECT_EQ(Eval("concat(\"a\", 1, \"b\")")->as_string(), "a1b");
  EXPECT_EQ(Eval("lower(\"NoRTH\")")->as_string(), "north");
  EXPECT_EQ(Eval("upper(\"abc\")")->as_string(), "ABC");
  EXPECT_EQ(Eval("strlen(\"abcd\")")->as_int(), 4);
  EXPECT_DOUBLE_EQ(Eval("similarity(\"area\", \"area\")")->as_double(), 1.0);
}

TEST(ExprEvalTest, LogicFunctions) {
  EXPECT_TRUE(Eval("lt(1, 2)")->as_bool());
  EXPECT_FALSE(Eval("gt(1, 2)")->as_bool());
  EXPECT_TRUE(Eval("and(lt(1,2), ge(2,2))")->as_bool());
  EXPECT_TRUE(Eval("or(eq(1,2), ne(1,2))")->as_bool());
  EXPECT_TRUE(Eval("not(eq(1,2))")->as_bool());
  // The paper's "case R1 < k then 1 else 0" shape:
  EXPECT_EQ(Eval("if(lt(1, 2), 1, 0)")->as_int(), 1);
  EXPECT_EQ(Eval("if(lt(3, 2), 1, 0)")->as_int(), 0);
  EXPECT_FALSE(Eval("if(1, 2, 3)").ok());  // Condition must be boolean.
}

TEST(ExprEvalTest, MathFunctions) {
  EXPECT_EQ(Eval("abs(-4)")->as_int(), 4);
  EXPECT_EQ(Eval("min(3, 5)")->as_int(), 3);
  EXPECT_EQ(Eval("max(3, 5)")->as_int(), 5);
  EXPECT_DOUBLE_EQ(Eval("sqrt(16)")->as_double(), 4.0);
  EXPECT_EQ(Eval("floor(2.7)")->as_int(), 2);
  EXPECT_EQ(Eval("ceil(2.2)")->as_int(), 3);
  EXPECT_EQ(Eval("round(2.5)")->as_int(), 3);
  EXPECT_FALSE(Eval("sqrt(-1)").ok());
}

TEST(ExprEvalTest, CollectionsBasics) {
  EXPECT_EQ(Eval("size(set(1, 2, 2, 3))")->as_int(), 3);
  EXPECT_EQ(Eval("size(list(1, 2, 2))")->as_int(), 3);
  EXPECT_TRUE(Eval("contains(set(1,2), 2)")->as_bool());
  EXPECT_FALSE(Eval("contains(set(1,2), 5)")->as_bool());
  EXPECT_EQ(Eval("size(union(set(1,2), set(2,3)))")->as_int(), 3);
  EXPECT_EQ(Eval("size(intersection(set(1,2), set(2,3)))")->as_int(), 1);
  EXPECT_EQ(Eval("size(difference(set(1,2,3), set(2)))")->as_int(), 2);
}

TEST(ExprEvalTest, PairsetOperations) {
  // VSet-style pairsets: the access operator VSet[A] of the paper maps to
  // get(VSet, A), projection to project(VSet, keyset).
  const std::string vset = "set(pair(\"Area\",\"North\"), pair(\"Sector\",\"Textiles\"))";
  EXPECT_EQ(Eval("get(" + vset + ", \"Area\")")->as_string(), "North");
  EXPECT_FALSE(Eval("get(" + vset + ", \"Missing\")").ok());
  EXPECT_TRUE(Eval("has_key(" + vset + ", \"Sector\")")->as_bool());
  EXPECT_FALSE(Eval("has_key(" + vset + ", \"Missing\")")->as_bool());
  EXPECT_EQ(Eval("size(without(" + vset + ", \"Area\"))")->as_int(), 1);
  EXPECT_EQ(Eval("get(with(" + vset + ", \"Area\", \"Center\"), \"Area\")")->as_string(),
            "Center");
  EXPECT_EQ(Eval("size(keys(" + vset + "))")->as_int(), 2);
  EXPECT_EQ(Eval("size(project(" + vset + ", set(\"Area\")))")->as_int(), 1);
  EXPECT_EQ(Eval("first(pair(1, 2))")->as_int(), 1);
  EXPECT_EQ(Eval("second(pair(1, 2))")->as_int(), 2);
}

TEST(ExprEvalTest, NullInspection) {
  const std::map<std::string, Value> vars = {{"X", Value::Null(9)}};
  EXPECT_TRUE(Eval("is_null(X)", vars)->as_bool());
  EXPECT_FALSE(Eval("is_null(1)")->as_bool());
  EXPECT_EQ(Eval("null_label(X)", vars)->as_int(), 9);
  EXPECT_TRUE(Eval("maybe_eq(X, 42)", vars)->as_bool());
  EXPECT_FALSE(Eval("eq(X, 42)", vars)->as_bool());
}

TEST(ExprEvalTest, UnknownFunctionFails) {
  const auto r = Eval("frobnicate(1)");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ExprEvalTest, ArityErrors) {
  EXPECT_FALSE(Eval("abs(1, 2)").ok());
  EXPECT_FALSE(Eval("pair(1)").ok());
}

Result<bool> EvalCond(const std::string& src,
                      const std::map<std::string, Value>& vars = {}) {
  auto program = Parse("out(X) :- dummy(X, S), " + src + ".");
  if (!program.ok()) return program.status();
  if (program->rules[0].conditions.empty()) {
    return Status::Internal("no condition parsed");
  }
  VarLookup lookup = [&vars](const std::string& name) -> const Value* {
    auto it = vars.find(name);
    return it == vars.end() ? nullptr : &it->second;
  };
  return EvalCondition(program->rules[0].conditions[0], lookup);
}

TEST(ConditionTest, Comparisons) {
  EXPECT_TRUE(EvalCond("1 < 2").value());
  EXPECT_TRUE(EvalCond("2 <= 2").value());
  EXPECT_FALSE(EvalCond("2 > 2").value());
  EXPECT_TRUE(EvalCond("3 >= 2").value());
  EXPECT_TRUE(EvalCond("2 == 2.0").value());
  EXPECT_TRUE(EvalCond("1 != 2").value());
}

TEST(ConditionTest, InAndSubset) {
  EXPECT_TRUE(EvalCond("2 in set(1, 2, 3)").value());
  EXPECT_FALSE(EvalCond("9 in set(1, 2, 3)").value());
  EXPECT_TRUE(EvalCond("set(1, 2) subset set(1, 2, 3)").value());
  EXPECT_FALSE(EvalCond("set(1, 9) subset set(1, 2, 3)").value());
  EXPECT_FALSE(EvalCond("1 in 2").ok());
}

}  // namespace
}  // namespace vadasa::vadalog
