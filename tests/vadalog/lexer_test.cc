#include "vadalog/lexer.h"

#include <gtest/gtest.h>

namespace vadasa::vadalog {
namespace {

std::vector<TokenKind> Kinds(const std::string& src) {
  auto tokens = Lex(src);
  EXPECT_TRUE(tokens.ok()) << tokens.status().ToString();
  std::vector<TokenKind> kinds;
  for (const Token& t : *tokens) kinds.push_back(t.kind);
  return kinds;
}

TEST(LexerTest, BasicRule) {
  const auto kinds = Kinds("p(X) :- q(X).");
  const std::vector<TokenKind> expected = {
      TokenKind::kIdent, TokenKind::kLParen, TokenKind::kVariable, TokenKind::kRParen,
      TokenKind::kImplies, TokenKind::kIdent, TokenKind::kLParen, TokenKind::kVariable,
      TokenKind::kRParen, TokenKind::kDot, TokenKind::kEof};
  EXPECT_EQ(kinds, expected);
}

TEST(LexerTest, VariablesVsConstants) {
  auto tokens = Lex("Foo foo _bar BAR");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kVariable);
  EXPECT_EQ((*tokens)[1].kind, TokenKind::kIdent);
  EXPECT_EQ((*tokens)[2].kind, TokenKind::kVariable);  // '_' starts a variable.
  EXPECT_EQ((*tokens)[3].kind, TokenKind::kVariable);
}

TEST(LexerTest, Numbers) {
  auto tokens = Lex("42 3.25 1e3 7");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kInt);
  EXPECT_EQ((*tokens)[0].int_value, 42);
  EXPECT_EQ((*tokens)[1].kind, TokenKind::kDouble);
  EXPECT_DOUBLE_EQ((*tokens)[1].double_value, 3.25);
  EXPECT_EQ((*tokens)[2].kind, TokenKind::kDouble);
  EXPECT_DOUBLE_EQ((*tokens)[2].double_value, 1000.0);
  EXPECT_EQ((*tokens)[3].int_value, 7);
}

TEST(LexerTest, StringsWithEscapes) {
  auto tokens = Lex(R"("I&G" "a\"b" "tab\there")");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "I&G");
  EXPECT_EQ((*tokens)[1].text, "a\"b");
  EXPECT_EQ((*tokens)[2].text, "tab\there");
}

TEST(LexerTest, UnterminatedStringFails) {
  EXPECT_EQ(Lex("\"oops").status().code(), StatusCode::kParseError);
}

TEST(LexerTest, ExternalPredicates) {
  auto tokens = Lex("#risk(I, R)");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kExternal);
  EXPECT_EQ((*tokens)[0].text, "risk");
}

TEST(LexerTest, BareHashFails) {
  EXPECT_EQ(Lex("# risk").status().code(), StatusCode::kParseError);
}

TEST(LexerTest, Comments) {
  const auto kinds = Kinds("p(a). % trailing comment\n// full line\nq(b).");
  size_t idents = 0;
  for (const TokenKind k : kinds) {
    if (k == TokenKind::kIdent) ++idents;
  }
  EXPECT_EQ(idents, 4u);  // p, a, q, b — comments dropped.
}

TEST(LexerTest, ComparisonOperators) {
  const auto kinds = Kinds("< <= > >= == != =");
  const std::vector<TokenKind> expected = {
      TokenKind::kLt, TokenKind::kLe, TokenKind::kGt, TokenKind::kGe,
      TokenKind::kEq, TokenKind::kNe, TokenKind::kAssign, TokenKind::kEof};
  EXPECT_EQ(kinds, expected);
}

TEST(LexerTest, TracksLineNumbers) {
  auto tokens = Lex("p(a).\nq(b).\n\nr(c).");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].line, 1);
  EXPECT_EQ((*tokens)[5].line, 2);   // q
  EXPECT_EQ((*tokens)[10].line, 4);  // r
}

TEST(LexerTest, UnexpectedCharacterFails) {
  EXPECT_EQ(Lex("p(a) ? q(b)").status().code(), StatusCode::kParseError);
}

}  // namespace
}  // namespace vadasa::vadalog
