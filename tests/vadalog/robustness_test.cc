// Robustness: malformed, adversarial and random inputs must produce Status
// errors (or parse to harmless programs), never crashes or hangs.

#include <gtest/gtest.h>

#include <string>

#include "common/random.h"
#include "vadalog/engine.h"
#include "vadalog/parser.h"

namespace vadasa::vadalog {
namespace {

TEST(RobustnessTest, MalformedProgramsErrorCleanly) {
  const char* kBad[] = {
      "p(",
      "p(X :- q(X).",
      ":- q(X).",
      "p(X) :-",
      "p(X) :- q(X)",                      // Missing dot.
      "p(X) q(X).",
      "p(X) :- q(X), .",
      "p(X) :- X = .",
      "p(X) :- S = msum(.",
      "p(X) :- S = msum(W, I).",           // Missing contributor brackets.
      "@input.",
      "@bind(\"p\").",                      // Wrong arity.
      "@nonsense(\"p\").",
      "p(X) :- q(X), not .",
      "= :- p(X).",
      "p(\"unterminated).",
      "p(X,) :- q(X).",
  };
  for (const char* src : kBad) {
    const auto result = Parse(src);
    EXPECT_FALSE(result.ok()) << "should reject: " << src;
    EXPECT_EQ(result.status().code(), StatusCode::kParseError) << src;
  }
}

TEST(RobustnessTest, RandomTokenSoupNeverCrashes) {
  const char* kTokens[] = {"p",  "q",  "X",  "Y",   "(",   ")",    ",",   ".",
                           ":-", "=",  "==", "<",   ">",   "not",  "in",  "1",
                           "2.5", "\"s\"", "#e", "msum", "<",  ">",   "@",   "+"};
  Rng rng(777);
  for (int trial = 0; trial < 500; ++trial) {
    std::string src;
    const size_t len = 1 + rng.NextBelow(30);
    for (size_t i = 0; i < len; ++i) {
      src += kTokens[rng.NextBelow(std::size(kTokens))];
      src += " ";
    }
    // Must terminate with either a Program or a ParseError — never crash.
    const auto result = Parse(src);
    if (result.ok()) {
      // If it happens to parse, evaluation must also behave.
      Engine engine;
      Database db;
      const auto run = engine.Run(*result, &db);
      (void)run;
    }
  }
}

TEST(RobustnessTest, RandomBytesNeverCrash) {
  Rng rng(888);
  for (int trial = 0; trial < 300; ++trial) {
    std::string src;
    const size_t len = rng.NextBelow(200);
    for (size_t i = 0; i < len; ++i) {
      src += static_cast<char>(32 + rng.NextBelow(95));  // Printable ASCII.
    }
    const auto result = Parse(src);
    (void)result;
  }
}

TEST(RobustnessTest, DeepExpressionNesting) {
  std::string expr = "1";
  for (int i = 0; i < 200; ++i) expr = "(" + expr + " + 1)";
  const auto result = Parse("p(Y) :- q(X), Y = " + expr + ".");
  ASSERT_TRUE(result.ok());
  Engine engine;
  Database db;
  db.AddFact("q", {Value::Int(0)});
  ASSERT_TRUE(engine.Run(*result, &db).ok());
  EXPECT_TRUE(db.Contains("p", {Value::Int(201)}));
}

TEST(RobustnessTest, ManyPredicatesManyRules) {
  std::string src;
  for (int i = 0; i < 200; ++i) {
    src += "p" + std::to_string(i) + "(a).\n";
    if (i > 0) {
      src += "p" + std::to_string(i) + "(X) :- p" + std::to_string(i - 1) + "(X).\n";
    }
  }
  auto program = Parse(src);
  ASSERT_TRUE(program.ok());
  Engine engine;
  Database db;
  ASSERT_TRUE(engine.Run(*program, &db).ok());
  EXPECT_TRUE(db.Contains("p199", {Value::String("a")}));
}

TEST(RobustnessTest, ZeroArityAtomsRejectedOrHandled) {
  // The dialect requires parentheses; `p()` is a zero-arity atom.
  const auto result = Parse("p().\nq() :- p().");
  if (result.ok()) {
    Engine engine;
    Database db;
    EXPECT_TRUE(engine.Run(*result, &db).ok());
    EXPECT_EQ(db.Rows("q").size(), 1u);
  }
}

TEST(RobustnessTest, ConditionErrorsSurfaceAsStatus) {
  // Type error inside a condition: the run must fail, not crash.
  Engine engine;
  Database db;
  const auto run = RunSource("p(a, 1).\nbad(X) :- p(X, V), strlen(V) > 2.", &db, &engine);
  EXPECT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kTypeError);
}

TEST(RobustnessTest, ExternalErrorPropagates) {
  Engine engine;
  engine.externals()->RegisterPredicate(
      "#boom", [](const std::vector<std::optional<Value>>&, const Database&)
                   -> Result<std::vector<std::vector<Value>>> {
        return Status::Internal("boom");
      });
  Database db;
  const auto run = RunSource("p(a).\nq(X) :- p(X), #boom(X).", &db, &engine);
  EXPECT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kInternal);
}

TEST(RobustnessTest, ActionErrorPropagates) {
  Engine engine;
  engine.externals()->RegisterAction(
      "#explode", [](const std::vector<Value>&, ActionContext*) {
        return Status::Internal("kaboom");
      });
  Database db;
  const auto run = RunSource("p(a).\n#explode(X) :- p(X).", &db, &engine);
  EXPECT_FALSE(run.ok());
}

}  // namespace
}  // namespace vadasa::vadalog
