#include "vadalog/query.h"

#include <gtest/gtest.h>

#include <fstream>

#include "vadalog/bindings.h"
#include "vadalog/explain.h"
#include "vadalog/parser.h"

namespace vadasa::vadalog {
namespace {

Database EdgeDb() {
  Database db;
  db.AddFact("edge", {Value::String("a"), Value::String("b")});
  db.AddFact("edge", {Value::String("b"), Value::String("c")});
  db.AddFact("edge", {Value::String("c"), Value::String("a")});
  db.AddFact("blocked", {Value::String("c")});
  db.AddFact("w", {Value::String("a"), Value::Int(10)});
  db.AddFact("w", {Value::String("b"), Value::Int(20)});
  return db;
}

TEST(QueryTest, SimpleSelection) {
  const Database db = EdgeDb();
  auto rows = EvaluateQuery(db, "q(Y) :- edge(a, Y).");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0][0].as_string(), "b");
}

TEST(QueryTest, JoinWithNegationAndCondition) {
  const Database db = EdgeDb();
  auto rows = EvaluateQuery(db, "q(X, Z) :- edge(X, Y), edge(Y, Z), not blocked(Z).");
  ASSERT_TRUE(rows.ok());
  // a->b->c blocked; b->c->a ok; c->a->b ok.
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[0][0].as_string(), "b");
  EXPECT_EQ((*rows)[1][0].as_string(), "c");
}

TEST(QueryTest, DatabaseIsNotModified) {
  const Database db = EdgeDb();
  const size_t before = db.size();
  ASSERT_TRUE(EvaluateQuery(db, "q(X) :- edge(X, Y).").ok());
  EXPECT_EQ(db.size(), before);
  EXPECT_TRUE(db.Rows("q").empty());
}

TEST(QueryTest, AggregateQueryFinalized) {
  const Database db = EdgeDb();
  auto rows = EvaluateQuery(db, "q(S) :- w(X, V), S = msum(V, <X>).");
  ASSERT_TRUE(rows.ok());
  // Only the final value of the monotone stream survives.
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0][0].as_int(), 30);
}

TEST(QueryTest, CertainAnswersDropNullRows) {
  Database db;
  db.AddFact("employee", {Value::String("alice")});
  db.AddFact("worksin", {Value::String("bob"), Value::String("sales")});
  db.AddFact("employee", {Value::String("bob")});
  Engine engine;
  // Materialize the existential first so the query sees the nulls.
  auto stats = RunSource("worksin(X, D) :- employee(X).", &db, &engine);
  ASSERT_TRUE(stats.ok());
  QueryOptions all;
  QueryOptions certain;
  certain.certain_only = true;
  auto everything = EvaluateQuery(db, "q(X, D) :- worksin(X, D).", nullptr, all);
  auto certain_rows = EvaluateQuery(db, "q(X, D) :- worksin(X, D).", nullptr, certain);
  ASSERT_TRUE(everything.ok());
  ASSERT_TRUE(certain_rows.ok());
  EXPECT_EQ(everything->size(), 2u);     // bob/sales + alice/⊥.
  ASSERT_EQ(certain_rows->size(), 1u);   // Only bob/sales is certain.
  EXPECT_EQ((*certain_rows)[0][0].as_string(), "bob");
}

TEST(QueryTest, CountQuery) {
  const Database db = EdgeDb();
  auto n = CountQuery(db, "q(X, Y) :- edge(X, Y).");
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 3u);
}

TEST(QueryTest, RejectsMalformedQueries) {
  const Database db = EdgeDb();
  EXPECT_FALSE(EvaluateQuery(db, "edge(a, b).").ok());                // Fact.
  EXPECT_FALSE(EvaluateQuery(db, "p(X) :- edge(X, Y).").ok());       // Wrong head name.
  EXPECT_FALSE(
      EvaluateQuery(db, "q(X) :- edge(X, Y).\nq(Y) :- edge(X, Y).").ok());  // Two rules.
}

TEST(ExplainExportTest, DotContainsNodesAndRuleEdges) {
  Engine engine;
  Database db;
  auto program = Parse(
      "edge(a, b). edge(b, c).\n"
      "path(X,Y) :- edge(X,Y).\n"
      "path(X,Z) :- path(X,Y), edge(Y,Z).");
  ASSERT_TRUE(program.ok());
  ASSERT_TRUE(engine.Run(*program, &db).ok());
  const FactId id = FindFact(db, "path", {Value::String("a"), Value::String("c")});
  ASSERT_NE(id, kInvalidFactId);
  const std::string dot = ExplainFactDot(db, *program, id);
  EXPECT_NE(dot.find("digraph explanation"), std::string::npos);
  EXPECT_NE(dot.find("path(a,c)"), std::string::npos);
  EXPECT_NE(dot.find("edge(b,c)"), std::string::npos);
  EXPECT_NE(dot.find("shape=box"), std::string::npos);      // Asserted facts.
  EXPECT_NE(dot.find("shape=ellipse"), std::string::npos);  // Derived facts.
  EXPECT_NE(dot.find("->"), std::string::npos);
}

TEST(ExplainExportTest, JsonIsWellFormedish) {
  Engine engine;
  Database db;
  auto program = Parse("edge(a, b).\npath(X,Y) :- edge(X,Y).");
  ASSERT_TRUE(program.ok());
  ASSERT_TRUE(engine.Run(*program, &db).ok());
  const FactId id = FindFact(db, "path", {Value::String("a"), Value::String("b")});
  const std::string json = ExplainFactJson(db, *program, id);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"fact\":\"path(a,b)\""), std::string::npos);
  EXPECT_NE(json.find("\"rule\":\"rule 1\""), std::string::npos);
  EXPECT_NE(json.find("\"support\":[{\"fact\":\"edge(a,b)\",\"rule\":null"),
            std::string::npos);
  // Balanced braces/brackets.
  int depth = 0;
  for (const char c : json) {
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(BindingsTest, LoadsCsvFacts) {
  const std::string path = ::testing::TempDir() + "/vadasa_bind_test.csv";
  {
    std::ofstream out(path);
    out << "src,dst,weight\n";
    out << "a,b,0.6\n";
    out << "b,c,0.7\n";
  }
  auto program = Parse("@bind(\"own\", \"" + path + "\").\n"
                       "rel(X, Y) :- own(X, Y, W), W > 0.5.");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  ASSERT_EQ(program->bindings.size(), 1u);
  Database db;
  ASSERT_TRUE(LoadBindings(*program, &db).ok());
  EXPECT_EQ(db.Rows("own").size(), 2u);
  Engine engine;
  ASSERT_TRUE(engine.Run(*program, &db).ok());
  EXPECT_TRUE(db.Contains("rel", {Value::String("a"), Value::String("b")}));
}

TEST(BindingsTest, MissingFileFails) {
  auto program = Parse("@bind(\"p\", \"/nonexistent/file.csv\").");
  ASSERT_TRUE(program.ok());
  Database db;
  EXPECT_EQ(LoadBindings(*program, &db).code(), StatusCode::kIoError);
}

TEST(BindingsTest, RoundTripsThroughToString) {
  auto program = Parse("@bind(\"p\", \"data.csv\").\n@output(\"p\").");
  ASSERT_TRUE(program.ok());
  const std::string text = program->ToString();
  EXPECT_NE(text.find("@bind(\"p\", \"data.csv\")."), std::string::npos);
  auto reparsed = Parse(text);
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->bindings.size(), 1u);
}

}  // namespace
}  // namespace vadasa::vadalog
