#include "vadalog/storage.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "vadalog/engine.h"
#include "vadalog/parser.h"

namespace vadasa::vadalog {
namespace {

std::string TempDir(const char* name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

TEST(StorageTest, RoundTripPlainFacts) {
  Database db;
  db.AddFact("edge", {Value::String("a"), Value::String("b")});
  db.AddFact("edge", {Value::String("b"), Value::String("c")});
  db.AddFact("w", {Value::String("a"), Value::Int(10), Value::Double(0.5)});
  const std::string dir = TempDir("storage_plain");
  ASSERT_TRUE(SaveDatabase(db, dir).ok());
  Database loaded;
  ASSERT_TRUE(LoadDatabase(dir, &loaded).ok());
  EXPECT_EQ(loaded.Rows("edge").size(), 2u);
  EXPECT_TRUE(loaded.Contains("w", {Value::String("a"), Value::Int(10),
                                    Value::Double(0.5)}));
}

TEST(StorageTest, LabelledNullsSurvive) {
  Database db;
  db.AddFact("cat", {Value::String("Area"), Value::Null(7)});
  const std::string dir = TempDir("storage_nulls");
  ASSERT_TRUE(SaveDatabase(db, dir).ok());
  Database loaded;
  ASSERT_TRUE(LoadDatabase(dir, &loaded).ok());
  ASSERT_EQ(loaded.Rows("cat").size(), 1u);
  const Value& v = loaded.Rows("cat")[0][1];
  ASSERT_TRUE(v.is_null());
  EXPECT_EQ(v.null_label(), 7u);
}

TEST(StorageTest, ChaseResultRebindsAsExtensionalComponent) {
  // Phase 1: derive the control closure and save it.
  Engine engine;
  Database db;
  auto stats = RunSource(
      "own(a, b, 0.9). own(b, c, 0.8).\n"
      "rel(X, Y) :- own(X, Y, W), W > 0.5.\n"
      "rel(X, Z) :- rel(X, Y), rel(Y, Z).",
      &db, &engine);
  ASSERT_TRUE(stats.ok());
  const std::string dir = TempDir("storage_phase");
  ASSERT_TRUE(SaveDatabase(db, dir).ok());
  // Phase 2: a fresh reasoning task loads the saved facts as its EDB.
  Database next;
  ASSERT_TRUE(LoadDatabase(dir, &next).ok());
  Engine engine2;
  auto program = Parse("cluster(X, Y) :- rel(X, Y).\ncluster(Y, X) :- rel(X, Y).");
  ASSERT_TRUE(program.ok());
  ASSERT_TRUE(engine2.Run(*program, &next).ok());
  EXPECT_TRUE(next.Contains("cluster", {Value::String("c"), Value::String("a")}));
}

TEST(StorageTest, LoadMissingDirectoryFails) {
  Database db;
  EXPECT_EQ(LoadDatabase("/nonexistent/dir", &db).code(), StatusCode::kNotFound);
}

TEST(StorageTest, EmptyDatabaseSavesNothing) {
  Database db;
  const std::string dir = TempDir("storage_empty");
  ASSERT_TRUE(SaveDatabase(db, dir).ok());
  Database loaded;
  ASSERT_TRUE(LoadDatabase(dir, &loaded).ok());
  EXPECT_EQ(loaded.size(), 0u);
}

}  // namespace
}  // namespace vadasa::vadalog
