// Differential testing of the semi-naive chase: a deliberately naive
// fixpoint interpreter (recompute everything every round, no deltas, no
// indexes) evaluates randomly generated positive Datalog programs, and the
// engine must produce exactly the same facts.

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/random.h"
#include "vadalog/engine.h"
#include "vadalog/parser.h"

namespace vadasa::vadalog {
namespace {

using Row = std::vector<std::string>;
using Relation = std::set<Row>;
using Db = std::map<std::string, Relation>;

/// Reference: naive bottom-up evaluation of parsed positive rules with
/// (in)equality conditions between variables (the generator stays in this
/// fragment).
bool ConditionsHold(const Rule& rule,
                    const std::map<std::string, std::string>& binding) {
  for (const Condition& cond : rule.conditions) {
    // The generator only emits VAR op VAR conditions.
    const std::string& a = binding.at(cond.lhs->var);
    const std::string& b = binding.at(cond.rhs->var);
    bool ok = true;
    switch (cond.op) {
      case CompareOp::kEq: ok = a == b; break;
      case CompareOp::kNe: ok = a != b; break;
      case CompareOp::kLt: ok = a < b; break;
      case CompareOp::kLe: ok = a <= b; break;
      case CompareOp::kGt: ok = a > b; break;
      case CompareOp::kGe: ok = a >= b; break;
      default: ok = true; break;
    }
    if (!ok) return false;
  }
  return true;
}

Db NaiveFixpoint(const Program& program) {
  Db db;
  for (const Atom& f : program.facts) {
    Row row;
    for (const Term& t : f.args) row.push_back(t.constant.ToString());
    db[f.predicate].insert(row);
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Rule& rule : program.rules) {
      // Enumerate all bindings by brute-force nested iteration.
      std::vector<std::map<std::string, std::string>> bindings = {{}};
      for (const Literal& lit : rule.body) {
        std::vector<std::map<std::string, std::string>> next;
        for (const auto& binding : bindings) {
          for (const Row& row : db[lit.atom.predicate]) {
            if (row.size() != lit.atom.args.size()) continue;
            std::map<std::string, std::string> extended = binding;
            bool ok = true;
            for (size_t i = 0; i < row.size() && ok; ++i) {
              const Term& t = lit.atom.args[i];
              if (t.is_constant()) {
                ok = t.constant.ToString() == row[i];
              } else {
                auto it = extended.find(t.var);
                if (it == extended.end()) {
                  extended[t.var] = row[i];
                } else {
                  ok = it->second == row[i];
                }
              }
            }
            if (ok) next.push_back(std::move(extended));
          }
        }
        bindings = std::move(next);
      }
      for (const auto& binding : bindings) {
        if (!ConditionsHold(rule, binding)) continue;
        for (const Atom& h : rule.head) {
          Row row;
          for (const Term& t : h.args) {
            row.push_back(t.is_constant() ? t.constant.ToString()
                                          : binding.at(t.var));
          }
          if (db[h.predicate].insert(row).second) changed = true;
        }
      }
    }
  }
  // operator[] lookups above create empty relations; drop them so the map
  // compares cleanly against the engine's (which only stores real facts).
  for (auto it = db.begin(); it != db.end();) {
    it = it->second.empty() ? db.erase(it) : std::next(it);
  }
  return db;
}

Db EngineFixpoint(const Program& program) {
  Engine engine;
  Database db;
  auto stats = engine.Run(program, &db);
  EXPECT_TRUE(stats.ok()) << stats.status().ToString();
  Db out;
  for (const std::string& predicate : db.Predicates()) {
    for (const auto& row : db.Rows(predicate)) {
      Row r;
      for (const Value& v : row) r.push_back(v.ToString());
      out[predicate].insert(r);
    }
  }
  return out;
}

/// Generates a random safe positive Datalog program.
std::string RandomProgram(Rng* rng) {
  const std::vector<std::string> preds = {"p", "q", "r", "s"};
  const std::vector<std::string> consts = {"a", "b", "c", "d", "e"};
  const std::vector<std::string> vars = {"X", "Y", "Z", "W"};
  std::map<std::string, int> arity;
  for (const auto& p : preds) arity[p] = 1 + static_cast<int>(rng->NextBelow(2));

  std::string src;
  // Facts.
  const size_t num_facts = 4 + rng->NextBelow(10);
  for (size_t i = 0; i < num_facts; ++i) {
    const std::string& p = preds[rng->NextBelow(preds.size())];
    src += p + "(";
    for (int a = 0; a < arity[p]; ++a) {
      if (a > 0) src += ", ";
      src += consts[rng->NextBelow(consts.size())];
    }
    src += ").\n";
  }
  // Rules: head vars drawn from body vars (safety by construction).
  const size_t num_rules = 2 + rng->NextBelow(4);
  for (size_t i = 0; i < num_rules; ++i) {
    const size_t body_len = 1 + rng->NextBelow(3);
    std::vector<std::string> body;
    std::vector<std::string> bound_vars;
    for (size_t b = 0; b < body_len; ++b) {
      const std::string& p = preds[rng->NextBelow(preds.size())];
      std::string atom = p + "(";
      for (int a = 0; a < arity[p]; ++a) {
        if (a > 0) atom += ", ";
        if (rng->NextDouble() < 0.8) {
          const std::string& v = vars[rng->NextBelow(vars.size())];
          atom += v;
          bound_vars.push_back(v);
        } else {
          atom += consts[rng->NextBelow(consts.size())];
        }
      }
      atom += ")";
      body.push_back(std::move(atom));
    }
    if (bound_vars.empty()) continue;  // Head would be ground; skip.
    // Occasionally add a comparison between two bound variables.
    std::string condition;
    if (bound_vars.size() >= 2 && rng->NextDouble() < 0.4) {
      const char* ops[] = {"!=", "==", "<", ">="};
      condition = ", " + bound_vars[rng->NextBelow(bound_vars.size())] + " " +
                  ops[rng->NextBelow(4)] + " " +
                  bound_vars[rng->NextBelow(bound_vars.size())];
    }
    const std::string& h = preds[rng->NextBelow(preds.size())];
    std::string head = h + "(";
    for (int a = 0; a < arity[h]; ++a) {
      if (a > 0) head += ", ";
      head += bound_vars[rng->NextBelow(bound_vars.size())];
    }
    head += ")";
    src += head + " :- ";
    for (size_t b = 0; b < body.size(); ++b) {
      if (b > 0) src += ", ";
      src += body[b];
    }
    src += condition + ".\n";
  }
  return src;
}

TEST(DifferentialTest, RandomPositiveProgramsAgreeWithNaiveEvaluation) {
  Rng rng(20210323);
  for (int trial = 0; trial < 60; ++trial) {
    const std::string src = RandomProgram(&rng);
    auto program = Parse(src);
    ASSERT_TRUE(program.ok()) << src;
    if (!CheckSafety(*program).ok()) continue;  // Generator occasionally unsafe.
    const Db expected = NaiveFixpoint(*program);
    const Db actual = EngineFixpoint(*program);
    ASSERT_EQ(actual, expected) << "program:\n" << src;
  }
}

TEST(DifferentialTest, HandCraftedMutualRecursion) {
  const std::string src =
      "p(a, b). q(b, c). q(c, d).\n"
      "p(X, Z) :- p(X, Y), q(Y, Z).\n"
      "q(X, Z) :- q(X, Y), p(Y, Z).\n"
      "r(X) :- p(X, Y), q(Y, X).";
  auto program = Parse(src);
  ASSERT_TRUE(program.ok());
  EXPECT_EQ(EngineFixpoint(*program), NaiveFixpoint(*program));
}

TEST(DifferentialTest, ConstantsInHeads) {
  const std::string src =
      "p(a). p(b).\n"
      "q(X, marked) :- p(X).\n"
      "r(marked) :- q(X, marked).";
  auto program = Parse(src);
  ASSERT_TRUE(program.ok());
  EXPECT_EQ(EngineFixpoint(*program), NaiveFixpoint(*program));
}

TEST(DifferentialTest, CartesianProducts) {
  const std::string src =
      "p(a). p(b). p(c). q(x). q(y).\n"
      "pair(X, Y) :- p(X), q(Y).\n"
      "trip(X, Y, Z) :- pair(X, Y), p(Z).";
  auto program = Parse(src);
  ASSERT_TRUE(program.ok());
  const Db expected = NaiveFixpoint(*program);
  EXPECT_EQ(expected.at("pair").size(), 6u);
  EXPECT_EQ(expected.at("trip").size(), 18u);
  EXPECT_EQ(EngineFixpoint(*program), expected);
}

}  // namespace
}  // namespace vadasa::vadalog
