#include "vadalog/engine.h"

#include <gtest/gtest.h>

#include "vadalog/explain.h"
#include "vadalog/parser.h"

namespace vadasa::vadalog {
namespace {

/// Parses and runs a program on a fresh database.
Result<Database> RunProgram(const std::string& src, EngineOptions options = {}) {
  Engine engine(options);
  Database db;
  auto stats = RunSource(src, &db, &engine);
  if (!stats.ok()) return stats.status();
  return db;
}

TEST(EngineTest, FactsOnly) {
  auto db = RunProgram("edge(a, b). edge(b, c).");
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->Rows("edge").size(), 2u);
}

TEST(EngineTest, SimpleJoin) {
  auto db = RunProgram(
      "parent(alice, bob). parent(bob, carol).\n"
      "grandparent(X, Z) :- parent(X, Y), parent(Y, Z).");
  ASSERT_TRUE(db.ok());
  ASSERT_EQ(db->Rows("grandparent").size(), 1u);
  EXPECT_TRUE(db->Contains("grandparent",
                           {Value::String("alice"), Value::String("carol")}));
}

TEST(EngineTest, TransitiveClosure) {
  std::string src;
  for (int i = 0; i < 20; ++i) {
    src += "edge(n" + std::to_string(i) + ", n" + std::to_string(i + 1) + ").\n";
  }
  src += "path(X,Y) :- edge(X,Y).\npath(X,Z) :- path(X,Y), edge(Y,Z).";
  auto db = RunProgram(src);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->Rows("path").size(), 21u * 20u / 2u);  // n(n+1)/2 pairs for a chain.
}

TEST(EngineTest, ConstantsInBodyFilter) {
  auto db = RunProgram(
      "val(a, 1). val(b, 2). val(a, 3).\n"
      "ofa(V) :- val(a, V).");
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->Rows("ofa").size(), 2u);
}

TEST(EngineTest, ConditionsFilterBindings) {
  auto db = RunProgram(
      "w(x, 10). w(y, 2).\n"
      "big(X) :- w(X, V), V > 5.");
  ASSERT_TRUE(db.ok());
  ASSERT_EQ(db->Rows("big").size(), 1u);
  EXPECT_TRUE(db->Contains("big", {Value::String("x")}));
}

TEST(EngineTest, AssignmentsComputeValues) {
  auto db = RunProgram(
      "w(x, 10).\n"
      "r(X, R) :- w(X, V), R = 1 / V.");
  ASSERT_TRUE(db.ok());
  EXPECT_TRUE(db->Contains("r", {Value::String("x"), Value::Double(0.1)}));
}

TEST(EngineTest, AssignmentUsedInLaterJoin) {
  auto db = RunProgram(
      "n(1). n(2). m(2). m(3).\n"
      "chain(X, Y) :- n(X), Y = X + 1, m(Y).");
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->Rows("chain").size(), 2u);
}

TEST(EngineTest, StratifiedNegation) {
  auto db = RunProgram(
      "node(a). node(b). node(c). edge(a, b). start(a).\n"
      "reach(X) :- start(X).\n"
      "reach(Y) :- reach(X), edge(X, Y).\n"
      "unreached(X) :- node(X), not reach(X).");
  ASSERT_TRUE(db.ok());
  ASSERT_EQ(db->Rows("unreached").size(), 1u);
  EXPECT_TRUE(db->Contains("unreached", {Value::String("c")}));
}

TEST(EngineTest, UnstratifiableProgramFails) {
  auto db = RunProgram(
      "q(a).\n"
      "p(X) :- q(X), not r(X).\n"
      "r(X) :- q(X), not p(X).");
  EXPECT_FALSE(db.ok());
}

TEST(EngineTest, ExistentialsCreateLabelledNulls) {
  auto db = RunProgram(
      "employee(alice). employee(bob).\n"
      "worksin(X, D) :- employee(X).");
  ASSERT_TRUE(db.ok());
  const auto& rows = db->Rows("worksin");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_TRUE(rows[0][1].is_null());
  EXPECT_TRUE(rows[1][1].is_null());
  // Different frontier values → different nulls (Skolem).
  EXPECT_NE(rows[0][1].null_label(), rows[1][1].null_label());
}

TEST(EngineTest, SkolemMemoizationReusesNulls) {
  // Two rules deriving employee twice must not create two departments.
  auto db = RunProgram(
      "employee(alice).\n"
      "person(X) :- employee(X).\n"
      "worksin(X, D) :- employee(X).\n"
      "worksin2(X, D) :- person(X), worksin(X, D).");
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->Rows("worksin").size(), 1u);
}

TEST(EngineTest, RestrictedChaseSkipsSatisfiedHeads) {
  EngineOptions options;
  options.restricted_chase = true;
  auto db = RunProgram(
      "worksin(alice, sales).\n"
      "employee(alice).\n"
      "worksin(X, D) :- employee(X).",
      options);
  ASSERT_TRUE(db.ok());
  // alice already works somewhere: no null introduced.
  EXPECT_EQ(db->Rows("worksin").size(), 1u);
}

TEST(EngineTest, ObliviousChaseCreatesNullWhenUnrestricted) {
  EngineOptions options;
  options.restricted_chase = false;
  auto db = RunProgram(
      "worksin(alice, sales).\n"
      "employee(alice).\n"
      "worksin(X, D) :- employee(X).",
      options);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->Rows("worksin").size(), 2u);
}

TEST(EngineTest, NonTerminatingChaseHitsFactGuard) {
  // The classic infinite chase: every person needs a parent who is a person.
  // Neither the restricted check nor Skolem memoization can make this finite;
  // the termination guard must fire instead of hanging.
  EngineOptions options;
  options.max_facts = 200;
  auto db = RunProgram(
      "person(adam).\n"
      "hasparent(X, Y) :- person(X).\n"
      "person(Y) :- hasparent(X, Y).",
      options);
  EXPECT_FALSE(db.ok());
  EXPECT_EQ(db.status().code(), StatusCode::kLimitExceeded);
}

TEST(EngineTest, EgdUnifiesNullWithConstant) {
  auto db = RunProgram(
      "att(area).\n"
      "cat(A, C) :- att(A).\n"          // Existential category.
      "cat(area, quasi) :- att(area).\n"
      "C1 = C2 :- cat(A, C1), cat(A, C2).");
  ASSERT_TRUE(db.ok());
  // The labelled null collapsed into "quasi".
  ASSERT_EQ(db->Rows("cat").size(), 1u);
  EXPECT_TRUE(db->Contains("cat", {Value::String("area"), Value::String("quasi")}));
}

TEST(EngineTest, EgdConstantClashFails) {
  EngineOptions options;
  options.egd_mode = EgdMode::kFail;
  auto db = RunProgram(
      "cat(area, quasi). cat(area, identifier).\n"
      "C1 = C2 :- cat(A, C1), cat(A, C2).",
      options);
  EXPECT_FALSE(db.ok());
  EXPECT_EQ(db.status().code(), StatusCode::kEgdViolation);
}

TEST(EngineTest, EgdCollectModeRecordsViolations) {
  EngineOptions options;
  options.egd_mode = EgdMode::kCollect;
  Database db;
  Engine engine(options);
  auto stats = RunSource(
      "cat(area, quasi). cat(area, identifier).\n"
      "C1 = C2 :- cat(A, C1), cat(A, C2).",
      &db, &engine);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GE(stats->egd_violations.size(), 1u);
}

TEST(EngineTest, EgdUnifiesTwoNulls) {
  auto db = RunProgram(
      "p(a). q(a).\n"
      "r(X, Z) :- p(X).\n"
      "s(X, W) :- q(X).\n"
      "Z = W :- r(X, Z), s(X, W).");
  ASSERT_TRUE(db.ok());
  const auto& r = db->Rows("r");
  const auto& s = db->Rows("s");
  ASSERT_EQ(r.size(), 1u);
  ASSERT_EQ(s.size(), 1u);
  EXPECT_TRUE(r[0][1].Equals(s[0][1]));
}

TEST(EngineTest, MonotonicSum) {
  auto db = RunProgram(
      "item(g1, a, 10). item(g1, b, 20). item(g2, c, 5).\n"
      "total(G, S) :- item(G, I, W), S = msum(W, <I>).");
  ASSERT_TRUE(db.ok());
  const auto finals = FinalAggregateRows(*db, "total", 1, /*take_max=*/true);
  ASSERT_EQ(finals.size(), 2u);
  // Sorted by group key: g1 then g2.
  EXPECT_EQ(finals[0][1].as_int(), 30);
  EXPECT_EQ(finals[1][1].as_int(), 5);
}

TEST(EngineTest, MonotonicCountDistinctContributors) {
  auto db = RunProgram(
      "obs(g, t1). obs(g, t2). obs(g, t2).\n"
      "cnt(G, N) :- obs(G, I), N = mcount(<I>).");
  ASSERT_TRUE(db.ok());
  const auto finals = FinalAggregateRows(*db, "cnt", 1, true);
  ASSERT_EQ(finals.size(), 1u);
  EXPECT_EQ(finals[0][1].as_int(), 2);  // Distinct contributors only.
}

TEST(EngineTest, ContributorReplacementKeepsExtremal) {
  // The same contributor delivering a larger value replaces its old
  // contribution instead of double counting (Section 4.3 semantics).
  auto db = RunProgram(
      "v(g, i1, 10). v(g, i1, 25). v(g, i2, 5).\n"
      "total(G, S) :- v(G, I, W), S = msum(W, <I>).");
  ASSERT_TRUE(db.ok());
  const auto finals = FinalAggregateRows(*db, "total", 1, true);
  ASSERT_EQ(finals.size(), 1u);
  EXPECT_EQ(finals[0][1].as_int(), 30);  // 25 + 5, not 40.
}

TEST(EngineTest, MonotonicProd) {
  auto db = RunProgram(
      "risk(c, e1, 0.5). risk(c, e2, 0.5).\n"
      "combined(G, P) :- risk(G, E, R), S = 1 - R, P = mprod(S, <E>).");
  ASSERT_TRUE(db.ok());
  const auto finals = FinalAggregateRows(*db, "combined", 1, /*take_max=*/false);
  ASSERT_EQ(finals.size(), 1u);
  EXPECT_DOUBLE_EQ(finals[0][1].as_double(), 0.25);
}

TEST(EngineTest, MonotonicMinAndMax) {
  auto db = RunProgram(
      "v(g, a, 7). v(g, b, 3). v(g, c, 9). v(h, d, 5).\n"
      "lo(G, M) :- v(G, I, W), M = mmin(W, <I>).\n"
      "hi(G, M) :- v(G, I, W), M = mmax(W, <I>).");
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  const auto lo = FinalAggregateRows(*db, "lo", 1, /*take_max=*/false);
  ASSERT_EQ(lo.size(), 2u);
  EXPECT_EQ(lo[0][1].as_int(), 3);  // Group g.
  EXPECT_EQ(lo[1][1].as_int(), 5);  // Group h.
  const auto hi = FinalAggregateRows(*db, "hi", 1, /*take_max=*/true);
  EXPECT_EQ(hi[0][1].as_int(), 9);
  EXPECT_EQ(hi[1][1].as_int(), 5);
}

TEST(EngineTest, MinContributorReplacementKeepsSmallest) {
  // mmin keeps the minimum per contributor: a contributor re-delivering a
  // larger value must not raise the minimum.
  auto db = RunProgram(
      "v(g, i1, 4). v(g, i1, 9). v(g, i2, 6).\n"
      "lo(G, M) :- v(G, I, W), M = mmin(W, <I>).");
  ASSERT_TRUE(db.ok());
  const auto lo = FinalAggregateRows(*db, "lo", 1, false);
  ASSERT_EQ(lo.size(), 1u);
  EXPECT_EQ(lo[0][1].as_int(), 4);
}

TEST(EngineTest, AggregateGroupKeyWithConstants) {
  auto db = RunProgram(
      "v(a, 1). v(b, 2).\n"
      "total(fixed, S) :- v(X, W), S = msum(W, <X>).");
  ASSERT_TRUE(db.ok());
  const auto rows = FinalAggregateRows(*db, "total", 1, true);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0].as_string(), "fixed");
  EXPECT_EQ(rows[0][1].as_int(), 3);
}

TEST(EngineTest, MonotonicUnionBuildsVSet) {
  auto db = RunProgram(
      "val(m, 1, area, north). val(m, 1, sector, textiles).\n"
      "tuple(M, I, VSet) :- val(M, I, A, V), VSet = munion(pair(A, V), <A>).");
  ASSERT_TRUE(db.ok());
  // The monotone stream ends with the full 2-pair set.
  size_t best = 0;
  for (const auto& row : db->Rows("tuple")) {
    best = std::max(best, row[2].items().size());
  }
  EXPECT_EQ(best, 2u);
}

TEST(EngineTest, AggregationThroughRecursionConverges) {
  // Company-control example from Section 4.4: joint ownership via msum
  // inside recursion.
  auto db = RunProgram(
      "own(a, b, 0.6). own(a, c, 0.4). own(b, c, 0.3).\n"
      "rel(X, Y) :- own(X, Y, W), W > 0.5.\n"
      "rel(X, Y) :- rel(X, Z), own(Z, Y, W), S = msum(W, <Z>), S > 0.5.");
  ASSERT_TRUE(db.ok());
  EXPECT_TRUE(db->Contains("rel", {Value::String("a"), Value::String("b")}));
  // a controls c jointly: own(b,c) counted via rel(a,b)... only b's 0.3 feeds
  // the msum (the rule sums over controlled intermediaries Z), so a does NOT
  // control c through this rule alone.
  EXPECT_FALSE(db->Contains("rel", {Value::String("a"), Value::String("c")}));
}

TEST(EngineTest, JointControlThroughSubsidiaries) {
  // d owns 30% of t directly-ish via two controlled subsidiaries: 0.3 + 0.3.
  auto db = RunProgram(
      "own(d, s1, 0.9). own(d, s2, 0.9). own(s1, t, 0.3). own(s2, t, 0.3).\n"
      "rel(X, Y) :- own(X, Y, W), W > 0.5.\n"
      "rel(X, Y) :- rel(X, Z), own(Z, Y, W), S = msum(W, <Z>), S > 0.5.");
  ASSERT_TRUE(db.ok());
  EXPECT_TRUE(db->Contains("rel", {Value::String("d"), Value::String("t")}));
}

TEST(EngineTest, ExternalPredicateBindsValues) {
  Engine engine;
  engine.externals()->RegisterPredicate(
      "#double",
      [](const std::vector<std::optional<Value>>& args,
         const Database&) -> Result<std::vector<std::vector<Value>>> {
        if (!args[0] || !args[0]->is_int()) return std::vector<std::vector<Value>>{};
        return std::vector<std::vector<Value>>{
            {*args[0], Value::Int(args[0]->as_int() * 2)}};
      });
  Database db;
  auto stats = RunSource("n(3). n(5).\nd(X, Y) :- n(X), #double(X, Y).", &db, &engine);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_TRUE(db.Contains("d", {Value::Int(3), Value::Int(6)}));
  EXPECT_TRUE(db.Contains("d", {Value::Int(5), Value::Int(10)}));
}

TEST(EngineTest, UnregisteredExternalFails) {
  auto db = RunProgram("n(1).\np(X) :- n(X), #mystery(X).");
  EXPECT_FALSE(db.ok());
  EXPECT_EQ(db.status().code(), StatusCode::kNotFound);
}

TEST(EngineTest, ExternalActionEmitsFacts) {
  Engine engine;
  int invocations = 0;
  engine.externals()->RegisterAction(
      "#mark", [&invocations](const std::vector<Value>& args, ActionContext* ctx) {
        ++invocations;
        ctx->Emit("marked", {args[0]});
        return Status::OK();
      });
  Database db;
  auto stats = RunSource("n(1). n(2).\n#mark(X) :- n(X).", &db, &engine);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(invocations, 2);
  EXPECT_EQ(db.Rows("marked").size(), 2u);
}

TEST(EngineTest, ActionNotReinvokedOnSameBinding) {
  Engine engine;
  int invocations = 0;
  engine.externals()->RegisterAction(
      "#poke", [&invocations](const std::vector<Value>& args, ActionContext* ctx) {
        ++invocations;
        // Re-emitting the trigger must not loop forever.
        ctx->Emit("n", {args[0]});
        return Status::OK();
      });
  Database db;
  auto stats = RunSource("n(1).\n#poke(X) :- n(X).", &db, &engine);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(invocations, 1);
}

TEST(EngineTest, ProvenanceExplainsDerivations) {
  Engine engine;
  Database db;
  auto program = Parse(
      "edge(a, b). edge(b, c).\n"
      "path(X,Y) :- edge(X,Y).\n"
      "path(X,Z) :- path(X,Y), edge(Y,Z).");
  ASSERT_TRUE(program.ok());
  auto stats = engine.Run(*program, &db);
  ASSERT_TRUE(stats.ok());
  const FactId id =
      FindFact(db, "path", {Value::String("a"), Value::String("c")});
  ASSERT_NE(id, kInvalidFactId);
  const std::string explanation = ExplainFact(db, *program, id);
  EXPECT_NE(explanation.find("path(a,c)"), std::string::npos);
  EXPECT_NE(explanation.find("edge(b,c)"), std::string::npos);
  EXPECT_NE(explanation.find("[asserted]"), std::string::npos);
}

TEST(EngineTest, MaxFactsGuard) {
  EngineOptions options;
  options.max_facts = 50;
  options.restricted_chase = false;
  auto db = RunProgram(
      "n(0).\n"
      "n(Y) :- n(X), X < 1000000, Y = X + 1.",
      options);
  EXPECT_FALSE(db.ok());
  EXPECT_EQ(db.status().code(), StatusCode::kLimitExceeded);
}

TEST(EngineTest, ArithmeticRecursionWithBound) {
  auto db = RunProgram(
      "n(0).\n"
      "n(Y) :- n(X), X < 10, Y = X + 1.");
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->Rows("n").size(), 11u);
}

TEST(EngineTest, RunStatsCounters) {
  Engine engine;
  Database db;
  auto stats = RunSource(
      "q(a).\n"
      "p(X, Z) :- q(X).",
      &db, &engine);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->nulls_created, 1u);
  EXPECT_GE(stats->facts_derived, 1u);
  EXPECT_GE(stats->rounds, 1u);
}

TEST(EngineTest, RequireWardedRejectsUnwardedProgram) {
  EngineOptions options;
  options.require_warded = true;
  auto db = RunProgram(
      "q(a). q(b).\n"
      "p(X, Z) :- q(X).\n"
      "s(Z) :- p(X, Z), p(Y, Z).",
      options);
  EXPECT_FALSE(db.ok());
  EXPECT_EQ(db.status().code(), StatusCode::kFailedPrecondition);
}

TEST(EngineTest, RuleFiringsCountEmissionsPerRuleInProgramOrder) {
  Engine engine;
  Database db;
  auto stats = RunSource(
      "n(1). n(2). n(3).\n"
      "pair(X, Y) :- n(X), n(Y).\n"
      "id(X) :- n(X).",
      &db, &engine);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  ASSERT_EQ(stats->rule_firings.size(), 2u);  // Facts are not rules.
  EXPECT_EQ(stats->rule_firings[0], 9u);      // 3 × 3 complete bindings.
  EXPECT_EQ(stats->rule_firings[1], 3u);
}

TEST(EngineTest, RuleFiringsAccumulateAcrossChaseRounds) {
  Engine engine;
  Database db;
  auto stats = RunSource(
      "edge(n0, n1). edge(n1, n2). edge(n2, n3).\n"
      "path(X, Y) :- edge(X, Y).\n"
      "path(X, Z) :- path(X, Y), edge(Y, Z).",
      &db, &engine);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  ASSERT_EQ(stats->rule_firings.size(), 2u);
  EXPECT_EQ(stats->rule_firings[0], 3u);
  // Semi-naive: each of the 3 length-≥2 paths is emitted exactly once.
  EXPECT_EQ(stats->rule_firings[1], 3u);
  EXPECT_EQ(stats->termination_check_seconds, 0.0);  // Untraced run.
}

TEST(EngineTest, FinalAggregateRowsPicksExtremes) {
  Database db;
  db.AddFact("out", {Value::String("g"), Value::Int(1)});
  db.AddFact("out", {Value::String("g"), Value::Int(3)});
  db.AddFact("out", {Value::String("h"), Value::Int(2)});
  const auto maxes = FinalAggregateRows(db, "out", 1, true);
  ASSERT_EQ(maxes.size(), 2u);
  EXPECT_EQ(maxes[0][1].as_int(), 3);
  const auto mins = FinalAggregateRows(db, "out", 1, false);
  EXPECT_EQ(mins[0][1].as_int(), 1);
}

}  // namespace
}  // namespace vadasa::vadalog
