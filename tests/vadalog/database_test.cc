#include "vadalog/database.h"

#include <gtest/gtest.h>

namespace vadasa::vadalog {
namespace {

TEST(DatabaseTest, AddAndContains) {
  Database db;
  const FactId id = db.AddFact("edge", {Value::String("a"), Value::String("b")});
  EXPECT_TRUE(db.Contains("edge", {Value::String("a"), Value::String("b")}));
  EXPECT_FALSE(db.Contains("edge", {Value::String("b"), Value::String("a")}));
  EXPECT_FALSE(db.Contains("node", {Value::String("a")}));
  EXPECT_EQ(db.fact(id).predicate, "edge");
  EXPECT_EQ(db.size(), 1u);
}

TEST(DatabaseTest, DuplicateInsertReturnsExistingId) {
  Database db;
  const FactId a = db.AddFact("p", {Value::Int(1)});
  const FactId b = db.AddFact("p", {Value::Int(1)});
  EXPECT_EQ(a, b);
  EXPECT_EQ(db.size(), 1u);
}

TEST(DatabaseTest, ProvenanceIsStored) {
  Database db;
  const FactId base = db.AddFact("q", {Value::Int(7)});
  Provenance prov;
  prov.rule_index = 3;
  prov.support = {base};
  const FactId derived = db.AddFact("p", {Value::Int(7)}, prov);
  EXPECT_EQ(db.provenance(derived).rule_index, 3);
  ASSERT_EQ(db.provenance(derived).support.size(), 1u);
  EXPECT_EQ(db.provenance(derived).support[0], base);
  EXPECT_EQ(db.provenance(base).rule_index, -1);  // Asserted.
}

TEST(DatabaseTest, RowsWithValueIndex) {
  Database db;
  for (int i = 0; i < 10; ++i) {
    db.AddFact("edge", {Value::Int(i % 3), Value::Int(i)});
  }
  const Relation* rel = db.relation("edge");
  ASSERT_NE(rel, nullptr);
  size_t verified = 0;
  for (const uint32_t r : rel->RowsWithValue(0, Value::Int(1))) {
    if (rel->row(r)[0].Equals(Value::Int(1))) ++verified;
  }
  EXPECT_EQ(verified, 3u);  // i = 1, 4, 7.
}

TEST(DatabaseTest, RowsWithValueIndexExactCount) {
  Database db;
  for (int i = 0; i < 9; ++i) {
    db.AddFact("edge", {Value::Int(i % 3), Value::Int(i)});
  }
  const Relation* rel = db.relation("edge");
  size_t verified = 0;
  for (const uint32_t r : rel->RowsWithValue(0, Value::Int(2))) {
    if (rel->row(r)[0].Equals(Value::Int(2))) ++verified;
  }
  EXPECT_EQ(verified, 3u);  // i = 2, 5, 8.
}

TEST(DatabaseTest, IndexSeesLaterInsertions) {
  Database db;
  db.AddFact("p", {Value::Int(1), Value::Int(10)});
  const Relation* rel = db.relation("p");
  EXPECT_EQ(rel->RowsWithValue(0, Value::Int(1)).size(), 1u);
  db.AddFact("p", {Value::Int(1), Value::Int(20)});
  EXPECT_EQ(rel->RowsWithValue(0, Value::Int(1)).size(), 2u);
}

TEST(DatabaseTest, FreshNullLabelsAreUnique) {
  Database db;
  const uint64_t a = db.FreshNullLabel();
  const uint64_t b = db.FreshNullLabel();
  EXPECT_NE(a, b);
}

TEST(DatabaseTest, SubstituteNullsRewritesAndMerges) {
  Database db;
  db.AddFact("cat", {Value::String("Area"), Value::Null(5)});
  db.AddFact("cat", {Value::String("Area"), Value::String("Quasi-identifier")});
  EXPECT_EQ(db.Rows("cat").size(), 2u);
  db.SubstituteNulls({{5, Value::String("Quasi-identifier")}});
  // The two facts collapse into one.
  EXPECT_EQ(db.Rows("cat").size(), 1u);
  EXPECT_TRUE(db.Contains(
      "cat", {Value::String("Area"), Value::String("Quasi-identifier")}));
}

TEST(DatabaseTest, SubstituteNullsFollowsChains) {
  Database db;
  db.AddFact("p", {Value::Null(1)});
  db.SubstituteNulls({{1, Value::Null(2)}, {2, Value::Int(9)}});
  EXPECT_TRUE(db.Contains("p", {Value::Int(9)}));
}

TEST(DatabaseTest, SubstituteNullsInsideCollections) {
  Database db;
  db.AddFact("t", {Value::Set({Value::List({Value::String("Area"), Value::Null(3)})})});
  db.SubstituteNulls({{3, Value::String("North")}});
  EXPECT_TRUE(db.Contains(
      "t", {Value::Set({Value::List({Value::String("Area"), Value::String("North")})})}));
}

TEST(DatabaseTest, PredicatesSorted) {
  Database db;
  db.AddFact("zeta", {Value::Int(1)});
  db.AddFact("alpha", {Value::Int(1)});
  const auto preds = db.Predicates();
  ASSERT_EQ(preds.size(), 2u);
  EXPECT_EQ(preds[0], "alpha");
  EXPECT_EQ(preds[1], "zeta");
}

TEST(DatabaseTest, DumpPredicateSorted) {
  Database db;
  db.AddFact("p", {Value::Int(2)});
  db.AddFact("p", {Value::Int(1)});
  EXPECT_EQ(db.DumpPredicate("p"), "p(1)\np(2)\n");
  EXPECT_EQ(db.DumpPredicate("missing"), "");
}

}  // namespace
}  // namespace vadasa::vadalog
