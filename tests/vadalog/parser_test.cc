#include "vadalog/parser.h"

#include <gtest/gtest.h>

namespace vadasa::vadalog {
namespace {

Program MustParse(const std::string& src) {
  auto p = Parse(src);
  EXPECT_TRUE(p.ok()) << p.status().ToString();
  return p.ok() ? *p : Program{};
}

TEST(ParserTest, FactsAndRules) {
  const Program p = MustParse("edge(a, b).\nedge(b, c).\npath(X,Y) :- edge(X,Y).");
  EXPECT_EQ(p.facts.size(), 2u);
  EXPECT_EQ(p.rules.size(), 1u);
  EXPECT_EQ(p.facts[0].predicate, "edge");
  EXPECT_TRUE(p.facts[0].args[0].constant.is_string());
  EXPECT_EQ(p.rules[0].head[0].predicate, "path");
}

TEST(ParserTest, TypedFactArguments) {
  const Program p = MustParse("w(\"I&G\", 1, 2.5, -3, true).");
  ASSERT_EQ(p.facts.size(), 1u);
  const auto& args = p.facts[0].args;
  EXPECT_EQ(args[0].constant.as_string(), "I&G");
  EXPECT_EQ(args[1].constant.as_int(), 1);
  EXPECT_DOUBLE_EQ(args[2].constant.as_double(), 2.5);
  EXPECT_EQ(args[3].constant.as_int(), -3);
  EXPECT_TRUE(args[4].constant.as_bool());
}

TEST(ParserTest, NegationAndConditions) {
  const Program p = MustParse("safe(X) :- tuple(X, V), not risky(X), V >= 10.");
  ASSERT_EQ(p.rules.size(), 1u);
  const Rule& r = p.rules[0];
  ASSERT_EQ(r.body.size(), 2u);
  EXPECT_FALSE(r.body[0].negated);
  EXPECT_TRUE(r.body[1].negated);
  ASSERT_EQ(r.conditions.size(), 1u);
  EXPECT_EQ(r.conditions[0].op, CompareOp::kGe);
}

TEST(ParserTest, AssignmentsAndExpressions) {
  const Program p = MustParse("out(X, R) :- in(X, W), R = 1 / (W + 2) * 3.");
  ASSERT_EQ(p.rules.size(), 1u);
  ASSERT_EQ(p.rules[0].assignments.size(), 1u);
  EXPECT_EQ(p.rules[0].assignments[0].target, "R");
  // Precedence: 1/(W+2) then *3.
  EXPECT_EQ(p.rules[0].assignments[0].expr->ToString(), "((1 / (W + 2)) * 3)");
}

TEST(ParserTest, AggregatesWithContributors) {
  const Program p = MustParse(
      "total(G, S) :- item(G, I, W), S = msum(W, <I>).\n"
      "cnt(G, N) :- item(G, I, W), N = mcount(<I>).\n"
      "all(G, U) :- item(G, I, W), U = munion(pair(I, W), <>).");
  ASSERT_EQ(p.rules.size(), 3u);
  EXPECT_EQ(p.rules[0].aggregates[0].func, AggregateFunc::kSum);
  ASSERT_TRUE(p.rules[0].aggregates[0].value != nullptr);
  EXPECT_EQ(p.rules[0].aggregates[0].contributors.size(), 1u);
  EXPECT_EQ(p.rules[1].aggregates[0].func, AggregateFunc::kCount);
  EXPECT_TRUE(p.rules[1].aggregates[0].value == nullptr);
  EXPECT_EQ(p.rules[2].aggregates[0].func, AggregateFunc::kUnion);
  EXPECT_TRUE(p.rules[2].aggregates[0].contributors.empty());
}

TEST(ParserTest, SumWithoutValueFails) {
  EXPECT_FALSE(Parse("t(G,S) :- i(G,W), S = msum(<G>).").ok());
}

TEST(ParserTest, EgdHead) {
  const Program p = MustParse("C1 = C2 :- cat(M, A, C1), cat(M, A, C2).");
  ASSERT_EQ(p.rules.size(), 1u);
  EXPECT_TRUE(p.rules[0].is_egd);
  EXPECT_EQ(p.rules[0].egd_lhs, "C1");
  EXPECT_EQ(p.rules[0].egd_rhs, "C2");
  EXPECT_TRUE(p.rules[0].head.empty());
}

TEST(ParserTest, MultiAtomHead) {
  const Program p = MustParse("a(X), b(X) :- c(X).");
  ASSERT_EQ(p.rules.size(), 1u);
  EXPECT_EQ(p.rules[0].head.size(), 2u);
}

TEST(ParserTest, ExternalAtoms) {
  const Program p = MustParse("#anonymize(I) :- t(I, V), #risk(I, R), R > 0.5.");
  const Rule& r = p.rules[0];
  EXPECT_TRUE(r.head[0].is_external());
  EXPECT_EQ(r.head[0].predicate, "#anonymize");
  EXPECT_TRUE(r.body[1].atom.is_external());
}

TEST(ParserTest, Annotations) {
  const Program p = MustParse("@input(\"edge\").\n@output(\"path\").\npath(X,Y) :- edge(X,Y).");
  ASSERT_EQ(p.inputs.size(), 1u);
  ASSERT_EQ(p.outputs.size(), 1u);
  EXPECT_EQ(p.inputs[0], "edge");
  EXPECT_EQ(p.outputs[0], "path");
}

TEST(ParserTest, UnknownAnnotationFails) {
  EXPECT_FALSE(Parse("@magic(\"x\").").ok());
}

TEST(ParserTest, NonGroundFactFails) {
  EXPECT_FALSE(Parse("p(X).").ok());
}

TEST(ParserTest, InAndSubsetConditions) {
  const Program p =
      MustParse("r(X) :- s(X, S), X in S.\nq(A) :- t(A, S1, S2), S1 subset S2.");
  EXPECT_EQ(p.rules[0].conditions[0].op, CompareOp::kIn);
  EXPECT_EQ(p.rules[1].conditions[0].op, CompareOp::kSubset);
}

TEST(ParserTest, RoundTripToString) {
  const std::string src = "path(X,Z) :- path(X,Y), edge(Y,Z), not blocked(Y,Z).";
  const Program p1 = MustParse(src);
  const Program p2 = MustParse(p1.ToString());
  EXPECT_EQ(p1.ToString(), p2.ToString());
}

TEST(ParserTest, ParseFactHelper) {
  auto atom = ParseFact("att(\"I&G\", \"Area\")");
  ASSERT_TRUE(atom.ok());
  EXPECT_EQ(atom->predicate, "att");
  EXPECT_EQ(atom->args[1].constant.as_string(), "Area");
  EXPECT_FALSE(ParseFact("att(X)").ok());
}

TEST(ParserTest, MissingDotFails) {
  EXPECT_FALSE(Parse("p(a)").ok());
  EXPECT_FALSE(Parse("p(X) :- q(X)").ok());
}

TEST(ParserTest, ExistentialHeadVariableParses) {
  // Head variable Z not bound in the body: existential quantification.
  const Program p = MustParse("person(X, Z) :- name(X).");
  EXPECT_EQ(p.rules.size(), 1u);
}

}  // namespace
}  // namespace vadasa::vadalog
