# Empty compiler generated dependencies file for vadasa_common.
# This may be replaced when dependencies are built.
