file(REMOVE_RECURSE
  "libvadasa_common.a"
)
