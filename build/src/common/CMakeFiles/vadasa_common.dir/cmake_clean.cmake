file(REMOVE_RECURSE
  "CMakeFiles/vadasa_common.dir/csv.cc.o"
  "CMakeFiles/vadasa_common.dir/csv.cc.o.d"
  "CMakeFiles/vadasa_common.dir/random.cc.o"
  "CMakeFiles/vadasa_common.dir/random.cc.o.d"
  "CMakeFiles/vadasa_common.dir/similarity.cc.o"
  "CMakeFiles/vadasa_common.dir/similarity.cc.o.d"
  "CMakeFiles/vadasa_common.dir/status.cc.o"
  "CMakeFiles/vadasa_common.dir/status.cc.o.d"
  "CMakeFiles/vadasa_common.dir/string_util.cc.o"
  "CMakeFiles/vadasa_common.dir/string_util.cc.o.d"
  "CMakeFiles/vadasa_common.dir/value.cc.o"
  "CMakeFiles/vadasa_common.dir/value.cc.o.d"
  "libvadasa_common.a"
  "libvadasa_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vadasa_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
