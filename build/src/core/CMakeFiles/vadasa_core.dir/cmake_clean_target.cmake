file(REMOVE_RECURSE
  "libvadasa_core.a"
)
