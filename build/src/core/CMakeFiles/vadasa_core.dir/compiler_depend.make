# Empty compiler generated dependencies file for vadasa_core.
# This may be replaced when dependencies are built.
