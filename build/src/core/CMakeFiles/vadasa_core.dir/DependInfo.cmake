
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/anonymize.cc" "src/core/CMakeFiles/vadasa_core.dir/anonymize.cc.o" "gcc" "src/core/CMakeFiles/vadasa_core.dir/anonymize.cc.o.d"
  "/root/repo/src/core/attack.cc" "src/core/CMakeFiles/vadasa_core.dir/attack.cc.o" "gcc" "src/core/CMakeFiles/vadasa_core.dir/attack.cc.o.d"
  "/root/repo/src/core/business.cc" "src/core/CMakeFiles/vadasa_core.dir/business.cc.o" "gcc" "src/core/CMakeFiles/vadasa_core.dir/business.cc.o.d"
  "/root/repo/src/core/categorize.cc" "src/core/CMakeFiles/vadasa_core.dir/categorize.cc.o" "gcc" "src/core/CMakeFiles/vadasa_core.dir/categorize.cc.o.d"
  "/root/repo/src/core/cycle.cc" "src/core/CMakeFiles/vadasa_core.dir/cycle.cc.o" "gcc" "src/core/CMakeFiles/vadasa_core.dir/cycle.cc.o.d"
  "/root/repo/src/core/datagen.cc" "src/core/CMakeFiles/vadasa_core.dir/datagen.cc.o" "gcc" "src/core/CMakeFiles/vadasa_core.dir/datagen.cc.o.d"
  "/root/repo/src/core/diversity.cc" "src/core/CMakeFiles/vadasa_core.dir/diversity.cc.o" "gcc" "src/core/CMakeFiles/vadasa_core.dir/diversity.cc.o.d"
  "/root/repo/src/core/global_risk.cc" "src/core/CMakeFiles/vadasa_core.dir/global_risk.cc.o" "gcc" "src/core/CMakeFiles/vadasa_core.dir/global_risk.cc.o.d"
  "/root/repo/src/core/group_index.cc" "src/core/CMakeFiles/vadasa_core.dir/group_index.cc.o" "gcc" "src/core/CMakeFiles/vadasa_core.dir/group_index.cc.o.d"
  "/root/repo/src/core/heuristics.cc" "src/core/CMakeFiles/vadasa_core.dir/heuristics.cc.o" "gcc" "src/core/CMakeFiles/vadasa_core.dir/heuristics.cc.o.d"
  "/root/repo/src/core/hierarchy.cc" "src/core/CMakeFiles/vadasa_core.dir/hierarchy.cc.o" "gcc" "src/core/CMakeFiles/vadasa_core.dir/hierarchy.cc.o.d"
  "/root/repo/src/core/infoloss.cc" "src/core/CMakeFiles/vadasa_core.dir/infoloss.cc.o" "gcc" "src/core/CMakeFiles/vadasa_core.dir/infoloss.cc.o.d"
  "/root/repo/src/core/linkage.cc" "src/core/CMakeFiles/vadasa_core.dir/linkage.cc.o" "gcc" "src/core/CMakeFiles/vadasa_core.dir/linkage.cc.o.d"
  "/root/repo/src/core/metadata.cc" "src/core/CMakeFiles/vadasa_core.dir/metadata.cc.o" "gcc" "src/core/CMakeFiles/vadasa_core.dir/metadata.cc.o.d"
  "/root/repo/src/core/microdata.cc" "src/core/CMakeFiles/vadasa_core.dir/microdata.cc.o" "gcc" "src/core/CMakeFiles/vadasa_core.dir/microdata.cc.o.d"
  "/root/repo/src/core/oracle.cc" "src/core/CMakeFiles/vadasa_core.dir/oracle.cc.o" "gcc" "src/core/CMakeFiles/vadasa_core.dir/oracle.cc.o.d"
  "/root/repo/src/core/programs.cc" "src/core/CMakeFiles/vadasa_core.dir/programs.cc.o" "gcc" "src/core/CMakeFiles/vadasa_core.dir/programs.cc.o.d"
  "/root/repo/src/core/rdc.cc" "src/core/CMakeFiles/vadasa_core.dir/rdc.cc.o" "gcc" "src/core/CMakeFiles/vadasa_core.dir/rdc.cc.o.d"
  "/root/repo/src/core/report.cc" "src/core/CMakeFiles/vadasa_core.dir/report.cc.o" "gcc" "src/core/CMakeFiles/vadasa_core.dir/report.cc.o.d"
  "/root/repo/src/core/risk.cc" "src/core/CMakeFiles/vadasa_core.dir/risk.cc.o" "gcc" "src/core/CMakeFiles/vadasa_core.dir/risk.cc.o.d"
  "/root/repo/src/core/suda.cc" "src/core/CMakeFiles/vadasa_core.dir/suda.cc.o" "gcc" "src/core/CMakeFiles/vadasa_core.dir/suda.cc.o.d"
  "/root/repo/src/core/utility.cc" "src/core/CMakeFiles/vadasa_core.dir/utility.cc.o" "gcc" "src/core/CMakeFiles/vadasa_core.dir/utility.cc.o.d"
  "/root/repo/src/core/vadalog_bridge.cc" "src/core/CMakeFiles/vadasa_core.dir/vadalog_bridge.cc.o" "gcc" "src/core/CMakeFiles/vadasa_core.dir/vadalog_bridge.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vadasa_common.dir/DependInfo.cmake"
  "/root/repo/build/src/vadalog/CMakeFiles/vadasa_vadalog.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
