# Empty dependencies file for vadasa_vadalog.
# This may be replaced when dependencies are built.
