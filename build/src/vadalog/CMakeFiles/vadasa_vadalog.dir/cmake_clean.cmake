file(REMOVE_RECURSE
  "CMakeFiles/vadasa_vadalog.dir/analysis.cc.o"
  "CMakeFiles/vadasa_vadalog.dir/analysis.cc.o.d"
  "CMakeFiles/vadasa_vadalog.dir/ast.cc.o"
  "CMakeFiles/vadasa_vadalog.dir/ast.cc.o.d"
  "CMakeFiles/vadasa_vadalog.dir/bindings.cc.o"
  "CMakeFiles/vadasa_vadalog.dir/bindings.cc.o.d"
  "CMakeFiles/vadasa_vadalog.dir/database.cc.o"
  "CMakeFiles/vadasa_vadalog.dir/database.cc.o.d"
  "CMakeFiles/vadasa_vadalog.dir/engine.cc.o"
  "CMakeFiles/vadasa_vadalog.dir/engine.cc.o.d"
  "CMakeFiles/vadasa_vadalog.dir/explain.cc.o"
  "CMakeFiles/vadasa_vadalog.dir/explain.cc.o.d"
  "CMakeFiles/vadasa_vadalog.dir/expr_eval.cc.o"
  "CMakeFiles/vadasa_vadalog.dir/expr_eval.cc.o.d"
  "CMakeFiles/vadasa_vadalog.dir/lexer.cc.o"
  "CMakeFiles/vadasa_vadalog.dir/lexer.cc.o.d"
  "CMakeFiles/vadasa_vadalog.dir/parser.cc.o"
  "CMakeFiles/vadasa_vadalog.dir/parser.cc.o.d"
  "CMakeFiles/vadasa_vadalog.dir/query.cc.o"
  "CMakeFiles/vadasa_vadalog.dir/query.cc.o.d"
  "CMakeFiles/vadasa_vadalog.dir/storage.cc.o"
  "CMakeFiles/vadasa_vadalog.dir/storage.cc.o.d"
  "libvadasa_vadalog.a"
  "libvadasa_vadalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vadasa_vadalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
