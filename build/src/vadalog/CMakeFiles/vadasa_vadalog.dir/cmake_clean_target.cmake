file(REMOVE_RECURSE
  "libvadasa_vadalog.a"
)
