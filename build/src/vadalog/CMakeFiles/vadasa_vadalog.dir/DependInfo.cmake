
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vadalog/analysis.cc" "src/vadalog/CMakeFiles/vadasa_vadalog.dir/analysis.cc.o" "gcc" "src/vadalog/CMakeFiles/vadasa_vadalog.dir/analysis.cc.o.d"
  "/root/repo/src/vadalog/ast.cc" "src/vadalog/CMakeFiles/vadasa_vadalog.dir/ast.cc.o" "gcc" "src/vadalog/CMakeFiles/vadasa_vadalog.dir/ast.cc.o.d"
  "/root/repo/src/vadalog/bindings.cc" "src/vadalog/CMakeFiles/vadasa_vadalog.dir/bindings.cc.o" "gcc" "src/vadalog/CMakeFiles/vadasa_vadalog.dir/bindings.cc.o.d"
  "/root/repo/src/vadalog/database.cc" "src/vadalog/CMakeFiles/vadasa_vadalog.dir/database.cc.o" "gcc" "src/vadalog/CMakeFiles/vadasa_vadalog.dir/database.cc.o.d"
  "/root/repo/src/vadalog/engine.cc" "src/vadalog/CMakeFiles/vadasa_vadalog.dir/engine.cc.o" "gcc" "src/vadalog/CMakeFiles/vadasa_vadalog.dir/engine.cc.o.d"
  "/root/repo/src/vadalog/explain.cc" "src/vadalog/CMakeFiles/vadasa_vadalog.dir/explain.cc.o" "gcc" "src/vadalog/CMakeFiles/vadasa_vadalog.dir/explain.cc.o.d"
  "/root/repo/src/vadalog/expr_eval.cc" "src/vadalog/CMakeFiles/vadasa_vadalog.dir/expr_eval.cc.o" "gcc" "src/vadalog/CMakeFiles/vadasa_vadalog.dir/expr_eval.cc.o.d"
  "/root/repo/src/vadalog/lexer.cc" "src/vadalog/CMakeFiles/vadasa_vadalog.dir/lexer.cc.o" "gcc" "src/vadalog/CMakeFiles/vadasa_vadalog.dir/lexer.cc.o.d"
  "/root/repo/src/vadalog/parser.cc" "src/vadalog/CMakeFiles/vadasa_vadalog.dir/parser.cc.o" "gcc" "src/vadalog/CMakeFiles/vadasa_vadalog.dir/parser.cc.o.d"
  "/root/repo/src/vadalog/query.cc" "src/vadalog/CMakeFiles/vadasa_vadalog.dir/query.cc.o" "gcc" "src/vadalog/CMakeFiles/vadasa_vadalog.dir/query.cc.o.d"
  "/root/repo/src/vadalog/storage.cc" "src/vadalog/CMakeFiles/vadasa_vadalog.dir/storage.cc.o" "gcc" "src/vadalog/CMakeFiles/vadasa_vadalog.dir/storage.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vadasa_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
