# Empty dependencies file for inflation_growth.
# This may be replaced when dependencies are built.
