file(REMOVE_RECURSE
  "CMakeFiles/inflation_growth.dir/inflation_growth.cpp.o"
  "CMakeFiles/inflation_growth.dir/inflation_growth.cpp.o.d"
  "inflation_growth"
  "inflation_growth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inflation_growth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
