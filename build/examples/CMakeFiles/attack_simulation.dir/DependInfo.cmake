
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/attack_simulation.cpp" "examples/CMakeFiles/attack_simulation.dir/attack_simulation.cpp.o" "gcc" "examples/CMakeFiles/attack_simulation.dir/attack_simulation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/vadasa_core.dir/DependInfo.cmake"
  "/root/repo/build/src/vadalog/CMakeFiles/vadasa_vadalog.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vadasa_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
