# Empty compiler generated dependencies file for company_network.
# This may be replaced when dependencies are built.
