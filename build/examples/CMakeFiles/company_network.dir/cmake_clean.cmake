file(REMOVE_RECURSE
  "CMakeFiles/company_network.dir/company_network.cpp.o"
  "CMakeFiles/company_network.dir/company_network.cpp.o.d"
  "company_network"
  "company_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/company_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
