file(REMOVE_RECURSE
  "CMakeFiles/vadalog_shell.dir/vadalog_shell.cpp.o"
  "CMakeFiles/vadalog_shell.dir/vadalog_shell.cpp.o.d"
  "vadalog_shell"
  "vadalog_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vadalog_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
