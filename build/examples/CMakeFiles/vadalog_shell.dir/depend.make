# Empty dependencies file for vadalog_shell.
# This may be replaced when dependencies are built.
