# Empty compiler generated dependencies file for anti_money_laundering.
# This may be replaced when dependencies are built.
