file(REMOVE_RECURSE
  "CMakeFiles/anti_money_laundering.dir/anti_money_laundering.cpp.o"
  "CMakeFiles/anti_money_laundering.dir/anti_money_laundering.cpp.o.d"
  "anti_money_laundering"
  "anti_money_laundering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anti_money_laundering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
