file(REMOVE_RECURSE
  "CMakeFiles/research_data_center.dir/research_data_center.cpp.o"
  "CMakeFiles/research_data_center.dir/research_data_center.cpp.o.d"
  "research_data_center"
  "research_data_center.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/research_data_center.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
