# Empty compiler generated dependencies file for research_data_center.
# This may be replaced when dependencies are built.
