# Empty compiler generated dependencies file for vadasa_cli.
# This may be replaced when dependencies are built.
