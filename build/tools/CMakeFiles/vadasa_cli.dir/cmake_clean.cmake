file(REMOVE_RECURSE
  "CMakeFiles/vadasa_cli.dir/vadasa_cli.cpp.o"
  "CMakeFiles/vadasa_cli.dir/vadasa_cli.cpp.o.d"
  "vadasa"
  "vadasa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vadasa_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
