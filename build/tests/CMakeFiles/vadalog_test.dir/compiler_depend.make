# Empty compiler generated dependencies file for vadalog_test.
# This may be replaced when dependencies are built.
