
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/vadalog/analysis_test.cc" "tests/CMakeFiles/vadalog_test.dir/vadalog/analysis_test.cc.o" "gcc" "tests/CMakeFiles/vadalog_test.dir/vadalog/analysis_test.cc.o.d"
  "/root/repo/tests/vadalog/database_test.cc" "tests/CMakeFiles/vadalog_test.dir/vadalog/database_test.cc.o" "gcc" "tests/CMakeFiles/vadalog_test.dir/vadalog/database_test.cc.o.d"
  "/root/repo/tests/vadalog/differential_test.cc" "tests/CMakeFiles/vadalog_test.dir/vadalog/differential_test.cc.o" "gcc" "tests/CMakeFiles/vadalog_test.dir/vadalog/differential_test.cc.o.d"
  "/root/repo/tests/vadalog/engine_test.cc" "tests/CMakeFiles/vadalog_test.dir/vadalog/engine_test.cc.o" "gcc" "tests/CMakeFiles/vadalog_test.dir/vadalog/engine_test.cc.o.d"
  "/root/repo/tests/vadalog/expr_eval_test.cc" "tests/CMakeFiles/vadalog_test.dir/vadalog/expr_eval_test.cc.o" "gcc" "tests/CMakeFiles/vadalog_test.dir/vadalog/expr_eval_test.cc.o.d"
  "/root/repo/tests/vadalog/lexer_test.cc" "tests/CMakeFiles/vadalog_test.dir/vadalog/lexer_test.cc.o" "gcc" "tests/CMakeFiles/vadalog_test.dir/vadalog/lexer_test.cc.o.d"
  "/root/repo/tests/vadalog/parser_test.cc" "tests/CMakeFiles/vadalog_test.dir/vadalog/parser_test.cc.o" "gcc" "tests/CMakeFiles/vadalog_test.dir/vadalog/parser_test.cc.o.d"
  "/root/repo/tests/vadalog/query_test.cc" "tests/CMakeFiles/vadalog_test.dir/vadalog/query_test.cc.o" "gcc" "tests/CMakeFiles/vadalog_test.dir/vadalog/query_test.cc.o.d"
  "/root/repo/tests/vadalog/robustness_test.cc" "tests/CMakeFiles/vadalog_test.dir/vadalog/robustness_test.cc.o" "gcc" "tests/CMakeFiles/vadalog_test.dir/vadalog/robustness_test.cc.o.d"
  "/root/repo/tests/vadalog/storage_test.cc" "tests/CMakeFiles/vadalog_test.dir/vadalog/storage_test.cc.o" "gcc" "tests/CMakeFiles/vadalog_test.dir/vadalog/storage_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/vadasa_core.dir/DependInfo.cmake"
  "/root/repo/build/src/vadalog/CMakeFiles/vadasa_vadalog.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vadasa_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
