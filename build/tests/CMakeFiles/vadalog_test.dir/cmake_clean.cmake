file(REMOVE_RECURSE
  "CMakeFiles/vadalog_test.dir/vadalog/analysis_test.cc.o"
  "CMakeFiles/vadalog_test.dir/vadalog/analysis_test.cc.o.d"
  "CMakeFiles/vadalog_test.dir/vadalog/database_test.cc.o"
  "CMakeFiles/vadalog_test.dir/vadalog/database_test.cc.o.d"
  "CMakeFiles/vadalog_test.dir/vadalog/differential_test.cc.o"
  "CMakeFiles/vadalog_test.dir/vadalog/differential_test.cc.o.d"
  "CMakeFiles/vadalog_test.dir/vadalog/engine_test.cc.o"
  "CMakeFiles/vadalog_test.dir/vadalog/engine_test.cc.o.d"
  "CMakeFiles/vadalog_test.dir/vadalog/expr_eval_test.cc.o"
  "CMakeFiles/vadalog_test.dir/vadalog/expr_eval_test.cc.o.d"
  "CMakeFiles/vadalog_test.dir/vadalog/lexer_test.cc.o"
  "CMakeFiles/vadalog_test.dir/vadalog/lexer_test.cc.o.d"
  "CMakeFiles/vadalog_test.dir/vadalog/parser_test.cc.o"
  "CMakeFiles/vadalog_test.dir/vadalog/parser_test.cc.o.d"
  "CMakeFiles/vadalog_test.dir/vadalog/query_test.cc.o"
  "CMakeFiles/vadalog_test.dir/vadalog/query_test.cc.o.d"
  "CMakeFiles/vadalog_test.dir/vadalog/robustness_test.cc.o"
  "CMakeFiles/vadalog_test.dir/vadalog/robustness_test.cc.o.d"
  "CMakeFiles/vadalog_test.dir/vadalog/storage_test.cc.o"
  "CMakeFiles/vadalog_test.dir/vadalog/storage_test.cc.o.d"
  "vadalog_test"
  "vadalog_test.pdb"
  "vadalog_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vadalog_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
