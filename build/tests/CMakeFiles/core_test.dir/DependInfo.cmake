
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/anonymize_test.cc" "tests/CMakeFiles/core_test.dir/core/anonymize_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/anonymize_test.cc.o.d"
  "/root/repo/tests/core/attack_test.cc" "tests/CMakeFiles/core_test.dir/core/attack_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/attack_test.cc.o.d"
  "/root/repo/tests/core/business_test.cc" "tests/CMakeFiles/core_test.dir/core/business_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/business_test.cc.o.d"
  "/root/repo/tests/core/categorize_test.cc" "tests/CMakeFiles/core_test.dir/core/categorize_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/categorize_test.cc.o.d"
  "/root/repo/tests/core/cycle_test.cc" "tests/CMakeFiles/core_test.dir/core/cycle_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/cycle_test.cc.o.d"
  "/root/repo/tests/core/datagen_test.cc" "tests/CMakeFiles/core_test.dir/core/datagen_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/datagen_test.cc.o.d"
  "/root/repo/tests/core/diversity_test.cc" "tests/CMakeFiles/core_test.dir/core/diversity_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/diversity_test.cc.o.d"
  "/root/repo/tests/core/global_risk_test.cc" "tests/CMakeFiles/core_test.dir/core/global_risk_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/global_risk_test.cc.o.d"
  "/root/repo/tests/core/group_index_test.cc" "tests/CMakeFiles/core_test.dir/core/group_index_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/group_index_test.cc.o.d"
  "/root/repo/tests/core/heuristics_test.cc" "tests/CMakeFiles/core_test.dir/core/heuristics_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/heuristics_test.cc.o.d"
  "/root/repo/tests/core/hierarchy_test.cc" "tests/CMakeFiles/core_test.dir/core/hierarchy_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/hierarchy_test.cc.o.d"
  "/root/repo/tests/core/infoloss_test.cc" "tests/CMakeFiles/core_test.dir/core/infoloss_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/infoloss_test.cc.o.d"
  "/root/repo/tests/core/linkage_test.cc" "tests/CMakeFiles/core_test.dir/core/linkage_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/linkage_test.cc.o.d"
  "/root/repo/tests/core/metadata_test.cc" "tests/CMakeFiles/core_test.dir/core/metadata_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/metadata_test.cc.o.d"
  "/root/repo/tests/core/microdata_test.cc" "tests/CMakeFiles/core_test.dir/core/microdata_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/microdata_test.cc.o.d"
  "/root/repo/tests/core/programs_test.cc" "tests/CMakeFiles/core_test.dir/core/programs_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/programs_test.cc.o.d"
  "/root/repo/tests/core/rdc_test.cc" "tests/CMakeFiles/core_test.dir/core/rdc_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/rdc_test.cc.o.d"
  "/root/repo/tests/core/report_test.cc" "tests/CMakeFiles/core_test.dir/core/report_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/report_test.cc.o.d"
  "/root/repo/tests/core/risk_test.cc" "tests/CMakeFiles/core_test.dir/core/risk_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/risk_test.cc.o.d"
  "/root/repo/tests/core/suda_test.cc" "tests/CMakeFiles/core_test.dir/core/suda_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/suda_test.cc.o.d"
  "/root/repo/tests/core/utility_test.cc" "tests/CMakeFiles/core_test.dir/core/utility_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/utility_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/vadasa_core.dir/DependInfo.cmake"
  "/root/repo/build/src/vadalog/CMakeFiles/vadasa_vadalog.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vadasa_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
