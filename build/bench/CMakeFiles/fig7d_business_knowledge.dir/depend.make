# Empty dependencies file for fig7d_business_knowledge.
# This may be replaced when dependencies are built.
