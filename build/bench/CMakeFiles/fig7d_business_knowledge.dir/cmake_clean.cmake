file(REMOVE_RECURSE
  "CMakeFiles/fig7d_business_knowledge.dir/fig7d_business_knowledge.cc.o"
  "CMakeFiles/fig7d_business_knowledge.dir/fig7d_business_knowledge.cc.o.d"
  "fig7d_business_knowledge"
  "fig7d_business_knowledge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7d_business_knowledge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
