file(REMOVE_RECURSE
  "CMakeFiles/fig7c_null_semantics.dir/fig7c_null_semantics.cc.o"
  "CMakeFiles/fig7c_null_semantics.dir/fig7c_null_semantics.cc.o.d"
  "fig7c_null_semantics"
  "fig7c_null_semantics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7c_null_semantics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
