# Empty dependencies file for fig7c_null_semantics.
# This may be replaced when dependencies are built.
