# Empty compiler generated dependencies file for fig1_microdata_risk.
# This may be replaced when dependencies are built.
