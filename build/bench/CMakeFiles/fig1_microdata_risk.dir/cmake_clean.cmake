file(REMOVE_RECURSE
  "CMakeFiles/fig1_microdata_risk.dir/fig1_microdata_risk.cc.o"
  "CMakeFiles/fig1_microdata_risk.dir/fig1_microdata_risk.cc.o.d"
  "fig1_microdata_risk"
  "fig1_microdata_risk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_microdata_risk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
