# Empty dependencies file for fig7a_nulls_by_k.
# This may be replaced when dependencies are built.
