file(REMOVE_RECURSE
  "CMakeFiles/fig7f_scalability_qis.dir/fig7f_scalability_qis.cc.o"
  "CMakeFiles/fig7f_scalability_qis.dir/fig7f_scalability_qis.cc.o.d"
  "fig7f_scalability_qis"
  "fig7f_scalability_qis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7f_scalability_qis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
