# Empty dependencies file for fig7f_scalability_qis.
# This may be replaced when dependencies are built.
