# Empty dependencies file for fig5_suppression_recoding.
# This may be replaced when dependencies are built.
