file(REMOVE_RECURSE
  "CMakeFiles/fig5_suppression_recoding.dir/fig5_suppression_recoding.cc.o"
  "CMakeFiles/fig5_suppression_recoding.dir/fig5_suppression_recoding.cc.o.d"
  "fig5_suppression_recoding"
  "fig5_suppression_recoding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_suppression_recoding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
