# Empty dependencies file for fig4_metadata_dictionary.
# This may be replaced when dependencies are built.
