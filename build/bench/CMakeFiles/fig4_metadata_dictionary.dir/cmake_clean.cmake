file(REMOVE_RECURSE
  "CMakeFiles/fig4_metadata_dictionary.dir/fig4_metadata_dictionary.cc.o"
  "CMakeFiles/fig4_metadata_dictionary.dir/fig4_metadata_dictionary.cc.o.d"
  "fig4_metadata_dictionary"
  "fig4_metadata_dictionary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_metadata_dictionary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
