# Empty compiler generated dependencies file for fig2_attack_strategy.
# This may be replaced when dependencies are built.
