file(REMOVE_RECURSE
  "CMakeFiles/fig2_attack_strategy.dir/fig2_attack_strategy.cc.o"
  "CMakeFiles/fig2_attack_strategy.dir/fig2_attack_strategy.cc.o.d"
  "fig2_attack_strategy"
  "fig2_attack_strategy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_attack_strategy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
