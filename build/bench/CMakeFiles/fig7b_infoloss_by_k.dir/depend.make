# Empty dependencies file for fig7b_infoloss_by_k.
# This may be replaced when dependencies are built.
