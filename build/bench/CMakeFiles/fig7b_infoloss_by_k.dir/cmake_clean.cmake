file(REMOVE_RECURSE
  "CMakeFiles/fig7b_infoloss_by_k.dir/fig7b_infoloss_by_k.cc.o"
  "CMakeFiles/fig7b_infoloss_by_k.dir/fig7b_infoloss_by_k.cc.o.d"
  "fig7b_infoloss_by_k"
  "fig7b_infoloss_by_k.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7b_infoloss_by_k.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
