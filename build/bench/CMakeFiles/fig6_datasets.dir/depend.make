# Empty dependencies file for fig6_datasets.
# This may be replaced when dependencies are built.
