file(REMOVE_RECURSE
  "CMakeFiles/fig6_datasets.dir/fig6_datasets.cc.o"
  "CMakeFiles/fig6_datasets.dir/fig6_datasets.cc.o.d"
  "fig6_datasets"
  "fig6_datasets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_datasets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
