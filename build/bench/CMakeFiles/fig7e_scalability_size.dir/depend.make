# Empty dependencies file for fig7e_scalability_size.
# This may be replaced when dependencies are built.
