file(REMOVE_RECURSE
  "CMakeFiles/fig7e_scalability_size.dir/fig7e_scalability_size.cc.o"
  "CMakeFiles/fig7e_scalability_size.dir/fig7e_scalability_size.cc.o.d"
  "fig7e_scalability_size"
  "fig7e_scalability_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7e_scalability_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
