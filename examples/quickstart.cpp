// Quickstart: the minimal Vada-SA workflow on a CSV microdata DB —
// categorize attributes, evaluate statistical disclosure risk, run the
// anonymization cycle, and write the anonymized release.
//
//   ./quickstart [input.csv] [output.csv]
//
// Without arguments, a small embedded survey is used.

#include <cstdio>
#include <string>

#include "common/csv.h"
#include "core/anonymize.h"
#include "core/categorize.h"
#include "core/cycle.h"

namespace {

constexpr char kEmbeddedSurvey[] =
    "Company Id,Area,Sector,Employees,Growth,Sampling Weight\n"
    "612276,North,Public Service,50-200,2,230\n"
    "737536,South,Commerce,201-1000,-1,190\n"
    "971906,Center,Commerce,1000+,4,70\n"
    "589681,North,Textiles,1000+,30,60\n"
    "419410,North,Textiles,1000+,300,50\n"
    "972915,North,Commerce,201-1000,50,70\n"
    "501118,South,Commerce,201-1000,-20,300\n"
    "815363,Center,Textiles,50-200,2,230\n";

}  // namespace

int main(int argc, char** argv) {
  using namespace vadasa;
  using namespace vadasa::core;

  // 1. Load the microdata.
  Result<CsvTable> csv = argc > 1 ? ReadCsvFile(argv[1]) : ParseCsv(kEmbeddedSurvey);
  if (!csv.ok()) {
    std::fprintf(stderr, "load failed: %s\n", csv.status().ToString().c_str());
    return 1;
  }
  auto table = MicrodataTable::FromCsv("survey", *csv, {}, "");
  if (!table.ok()) {
    std::fprintf(stderr, "%s\n", table.status().ToString().c_str());
    return 1;
  }

  // 2. Categorize attributes from the experience base (Algorithm 1).
  AttributeCategorizer categorizer = AttributeCategorizer::WithDefaultExperience();
  auto decisions = categorizer.CategorizeTable(&*table, nullptr);
  if (!decisions.ok()) {
    std::fprintf(stderr, "%s\n", decisions.status().ToString().c_str());
    return 1;
  }
  std::printf("attribute categories:\n");
  for (const Attribute& a : table->attributes()) {
    std::printf("  %-16s %s\n", a.name.c_str(),
                AttributeCategoryToString(a.category).c_str());
  }

  // 3. Evaluate risk and anonymize until 2-anonymous (T = 0.5).
  KAnonymityRisk risk;
  LocalSuppression anonymizer;
  CycleOptions options;
  options.risk.k = 2;
  options.log_steps = true;
  AnonymizationCycle cycle(&risk, &anonymizer, options);
  auto stats = cycle.Run(&*table);
  if (!stats.ok()) {
    std::fprintf(stderr, "%s\n", stats.status().ToString().c_str());
    return 1;
  }
  std::printf("\nanonymization cycle: %zu risky tuple(s), %zu null(s) injected, "
              "information loss %.1f%%\n",
              stats->initial_risky, stats->nulls_injected,
              100.0 * stats->information_loss);
  for (const std::string& line : stats->log) {
    std::printf("  %s\n", line.c_str());
  }

  // 4. Release.
  std::printf("\n%s", table->ToText().c_str());
  if (argc > 2) {
    const Status st = WriteCsvFile(argv[2], table->ToCsv());
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("\nwrote %s\n", argv[2]);
  }
  return 0;
}
