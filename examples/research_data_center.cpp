// The industrial setting of Section 2: a Research Data Center receiving
// microdata DBs from several business domains, each with its own (unknown)
// schema. The framework's schema independence in action: every dataset goes
// through the same metadata dictionary, Algorithm-1 categorization, audited
// anonymization cycle and file-level sign-off — no per-schema code.

#include <cstdio>

#include "core/datagen.h"
#include "core/rdc.h"

namespace {

using namespace vadasa;
using namespace vadasa::core;

/// A microdata DB from a different business domain than the I&G survey:
/// household finance, with its own attribute vocabulary.
MicrodataTable HouseholdSurvey() {
  MicrodataTable t("household-finance",
                   {{"Fiscal Code", "Respondent fiscal code", AttributeCategory::kNonIdentifying},
                    {"Region", "Region of residence", AttributeCategory::kNonIdentifying},
                    {"Age", "Age band", AttributeCategory::kNonIdentifying},
                    {"Occupation", "Occupation group", AttributeCategory::kNonIdentifying},
                    {"Notes", "Interviewer notes", AttributeCategory::kNonIdentifying},
                    {"Sampling Weight", "", AttributeCategory::kNonIdentifying}});
  const struct {
    const char* code;
    const char* region;
    const char* age;
    const char* job;
    const char* notes;
    int weight;
  } kRows[] = {
      {"RSSMRA80A01H501U", "North", "30-45", "Clerk", "n/a", 120},
      {"VRDLGU75B02F205X", "North", "30-45", "Clerk", "n/a", 120},
      {"BNCGNN60C03L219Y", "South", "60+", "Retired", "n/a", 200},
      {"NREPLA85D04H501Z", "South", "60+", "Retired", "n/a", 200},
      {"GLLMRC90E05F839W", "Center", "18-29", "Astronaut", "rare job", 2},
      {"FRRLNZ70F06G273V", "North", "46-60", "Teacher", "n/a", 150},
      {"CSTSFN82G07H501T", "North", "46-60", "Teacher", "n/a", 150},
  };
  for (const auto& r : kRows) {
    (void)t.AddRow({Value::String(r.code), Value::String(r.region),
                    Value::String(r.age), Value::String(r.job),
                    Value::String(r.notes), Value::Int(r.weight)});
  }
  return t;
}

}  // namespace

int main() {
  // The RDC: one release policy, one dictionary, one experience base.
  RdcPolicy policy;
  policy.k = 2;
  ResearchDataCenter rdc(policy);

  // Domain experts extend the experience base without touching any code
  // (desideratum (vii): business-friendly extensibility).
  rdc.AddExperience("fiscal code", AttributeCategory::kIdentifier);
  rdc.AddExperience("notes", AttributeCategory::kNonIdentifying);

  for (Status st : {rdc.Ingest(Figure1Microdata()), rdc.Ingest(HouseholdSurvey())}) {
    if (!st.ok()) {
      std::fprintf(stderr, "ingest failed: %s\n", st.ToString().c_str());
      return 1;
    }
  }
  for (const auto& conflict : rdc.conflicts()) {
    std::printf("!! category conflict on %s: %s vs %s (manual review)\n",
                conflict.attribute.c_str(),
                AttributeCategoryToString(conflict.first).c_str(),
                AttributeCategoryToString(conflict.second).c_str());
  }

  auto audits = rdc.ProcessAll();
  if (!audits.ok()) {
    std::fprintf(stderr, "release failed: %s\n", audits.status().ToString().c_str());
    return 1;
  }
  for (const ReleaseAudit& audit : *audits) {
    std::printf("=============================================================\n");
    std::printf("%s\n", rdc.dictionary().ToText(audit.microdb).c_str());
    std::printf("%s\n", audit.ToText().c_str());
    auto release = rdc.Release(audit.microdb);
    if (release.ok()) {
      std::printf("released table (first rows):\n%s\n", (*release)->ToText(8).c_str());
    }
  }
  std::printf("=============================================================\n");
  std::printf("catalog: %zu microdata DBs processed by the identical pipeline —\n"
              "the schema independence of the metadata-dictionary approach "
              "(Section 4.1).\n",
              rdc.Catalog().size());
  return 0;
}
