// Adversarial evaluation: synthesize an identity oracle, sample a microdata
// DB from it (sampling weights = population combination counts, Section 2.1),
// and run the Figure-2 record-linkage attack against increasingly strict
// releases — raw, 2-anonymous, 3-anonymous, 5-anonymous — printing the
// privacy/utility frontier.

#include <cstdio>

#include "core/attack.h"
#include "core/cycle.h"
#include "core/infoloss.h"

int main() {
  using namespace vadasa;
  using namespace vadasa::core;

  IdentityOracle::Options oracle_options;
  oracle_options.population = 40000;
  oracle_options.num_qi = 4;
  oracle_options.distribution = DistributionKind::kUnbalanced;
  oracle_options.seed = 7;
  const IdentityOracle oracle = IdentityOracle::Generate(oracle_options);
  auto sample = oracle.SampleMicrodata(1500, 99);
  if (!sample.ok()) {
    std::fprintf(stderr, "%s\n", sample.status().ToString().c_str());
    return 1;
  }
  std::printf("oracle population: %zu entities\nreleased sample:   %zu tuples\n\n",
              oracle.size(), sample->table.num_rows());
  std::printf("%-12s  %-8s  %-12s  %-14s  %-12s  %-10s\n", "release", "nulls",
              "exact blocks", "avg block size", "reidentified", "info loss");

  auto report = [&](const char* label, const MicrodataTable& release,
                    size_t nulls) {
    const AttackResult attack = RunLinkageAttack(
        release, release.QuasiIdentifierColumns(), oracle, sample->truth, 13);
    const InformationLoss loss =
        MeasureInformationLoss(sample->table, release, nullptr);
    std::printf("%-12s  %-8zu  %-12zu  %-14.1f  %-12zu  %.2f%%\n", label, nulls,
                attack.exact_blocks, attack.avg_block_size, attack.reidentified,
                100.0 * loss.suppressed_cell_fraction);
  };

  report("raw", sample->table, 0);
  for (const int k : {2, 3, 5}) {
    MicrodataTable release = sample->table;
    KAnonymityRisk risk;
    LocalSuppression anon;
    CycleOptions options;
    options.risk.k = k;
    AnonymizationCycle cycle(&risk, &anon, options);
    auto stats = cycle.Run(&release);
    if (!stats.ok()) {
      std::fprintf(stderr, "%s\n", stats.status().ToString().c_str());
      return 1;
    }
    const std::string label = "k=" + std::to_string(k);
    report(label.c_str(), release, stats->nulls_injected);
  }
  std::printf("\nreading: stricter k removes the exactly-blockable tuples while the\n"
              "suppressed-cell fraction (statistical damage) stays small.\n");
  return 0;
}
