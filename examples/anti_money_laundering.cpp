// Anti-money-laundering data exchange — one of the paper's motivating
// settings (§1): an FIU shares suspicious-activity features with an external
// analytics unit. The analysts need the high-level features (amount bands,
// channels, sectors); the identities of the involved subjects must stay with
// the FIU until a judicial act authorizes disclosure.
//
// This example composes most of the framework: control-relationship closure
// on the reasoning engine, cluster risk propagation (Algorithm 9), the
// audited anonymization cycle, and a linkage-attack evaluation of the final
// exchange file.

#include <cstdio>

#include "core/business.h"
#include "core/linkage.h"
#include "core/report.h"
#include "vadalog/engine.h"

namespace {

using namespace vadasa;
using namespace vadasa::core;

/// Suspicious-activity features, one row per reported subject.
MicrodataTable SuspiciousActivity() {
  MicrodataTable t("suspicious-activity",
                   {{"Subject", "Subject identifier", AttributeCategory::kIdentifier},
                    {"Area", "", AttributeCategory::kQuasiIdentifier},
                    {"Sector", "", AttributeCategory::kQuasiIdentifier},
                    {"Channel", "Payment channel", AttributeCategory::kQuasiIdentifier},
                    {"Amount", "Band of flagged volume", AttributeCategory::kQuasiIdentifier},
                    {"Score", "Internal alert score", AttributeCategory::kNonIdentifying},
                    {"Weight", "", AttributeCategory::kWeight}});
  const struct {
    const char* subject;
    const char* area;
    const char* sector;
    const char* channel;
    const char* amount;
    int score;
    int weight;
  } kRows[] = {
      {"s01", "North", "Commerce", "wire", "10-50k", 12, 90},
      {"s02", "North", "Commerce", "wire", "10-50k", 48, 90},
      {"s03", "North", "Commerce", "cash", "10-50k", 33, 60},
      {"s04", "South", "Construction", "cash", "50-250k", 71, 40},
      {"s05", "South", "Construction", "cash", "50-250k", 64, 40},
      {"s06", "Center", "Gambling", "crypto", "250k+", 95, 2},   // The outlier.
      {"s07", "North", "Financial", "wire", "50-250k", 58, 25},
      {"s08", "North", "Financial", "wire", "50-250k", 41, 25},
      {"s09", "South", "Commerce", "cash", "10-50k", 22, 70},
      {"s10", "South", "Commerce", "cash", "10-50k", 19, 70},
  };
  for (const auto& r : kRows) {
    (void)t.AddRow({Value::String(r.subject), Value::String(r.area),
                    Value::String(r.sector), Value::String(r.channel),
                    Value::String(r.amount), Value::Int(r.score),
                    Value::Int(r.weight)});
  }
  return t;
}

}  // namespace

int main() {
  const MicrodataTable activity = SuspiciousActivity();
  std::printf("%s\n", activity.ToText().c_str());

  // 1. The FIU's intelligence: ownership links among reported subjects,
  //    closed into control clusters on the reasoning engine (§4.4 rules).
  vadalog::Engine engine;
  vadalog::Database kb;
  auto stats = vadalog::RunSource(
      "own(s06, shell1, 0.9). own(shell1, s07, 0.4). own(s06, shell2, 0.8).\n"
      "own(shell2, s07, 0.3). own(s06, s08, 0.6).\n"
      "rel(X, Y) :- own(X, Y, W), W > 0.5.\n"
      "rel(X, Y) :- rel(X, Z), own(Z, Y, W), S = msum(W, <Z>), S > 0.5.",
      &kb, &engine);
  if (!stats.ok()) {
    std::fprintf(stderr, "%s\n", stats.status().ToString().c_str());
    return 1;
  }
  std::printf("derived control relationships (via shells, joint stakes):\n%s\n",
              kb.DumpPredicate("rel").c_str());

  OwnershipGraph graph;
  for (const auto& row : kb.Rows("rel")) {
    // Feed the closure back as direct control edges for clustering.
    graph.AddOwnership(row[0].ToString(), row[1].ToString(), 1.0);
  }

  // 2. Audited anonymization with cluster risk propagation: the gambling
  //    outlier s06 drags its controlled subjects s07/s08 into anonymization.
  MicrodataTable release = activity;
  KAnonymityRisk measure;
  LocalSuppression anonymizer;
  CycleOptions options;
  options.risk.k = 2;
  options.risk_transform = MakeClusterRiskTransform(&graph, "Subject");
  auto audit = RunAuditedRelease(&release, measure, &anonymizer, options);
  if (!audit.ok()) {
    std::fprintf(stderr, "%s\n", audit.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", audit->ToText().c_str());
  std::printf("exchange file:\n%s\n", release.ToText().c_str());

  // 3. Adversarial check: a mock identity oracle the size of the sector
  //    registry; the exchanged file must not link back.
  IdentityOracle::Options oracle_options;
  oracle_options.population = 20000;
  oracle_options.num_qi = 4;
  oracle_options.seed = 5;
  const IdentityOracle oracle = IdentityOracle::Generate(oracle_options);
  LinkageConfig config;
  // Ground truth unknown here; measure cohort sizes only.
  std::vector<size_t> no_truth;
  auto linkage = RunLinkage(release, oracle, no_truth, config);
  if (linkage.ok()) {
    std::printf("linkage probe vs %zu-entity registry: %s\n", oracle.size(),
                linkage->ToString().c_str());
  }
  std::printf("\nreading: the alert scores (the analytically useful signal) are\n"
              "exchanged intact; identities and the outlier's selective profile\n"
              "are not. The cluster rule anonymized the outlier's network, not\n"
              "just the outlier.\n");
  return 0;
}
