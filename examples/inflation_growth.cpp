// The paper's running example end-to-end: the Figure-1 Inflation & Growth
// microdata DB, its metadata dictionary (Figure 4), per-tuple risks
// (Section 2.2), and a fully explained anonymization run — including the
// declarative execution through the Vadalog engine with #risk/#anonymize
// plug-ins (Algorithm 2).

#include <cstdio>

#include "core/cycle.h"
#include "core/datagen.h"
#include "core/metadata.h"
#include "core/vadalog_bridge.h"

int main() {
  using namespace vadasa;
  using namespace vadasa::core;

  MicrodataTable table = Figure1Microdata();
  std::printf("%s\n", table.ToText(20).c_str());

  MetadataDictionary dictionary;
  dictionary.IngestTable(table, /*include_categories=*/true);
  std::printf("%s\n", dictionary.ToText("I&G").c_str());

  // Per-tuple re-identification risk (Section 2.2).
  ReidentificationRisk reid;
  RiskContext ctx;
  auto risks = reid.ComputeRisks(table, ctx);
  if (!risks.ok()) return 1;
  std::printf("re-identification risk: max %.4f (tuple 15), min %.4f (tuple 7)\n\n",
              (*risks)[14], (*risks)[6]);

  // Native anonymization cycle with explanations.
  {
    MicrodataTable t = table;
    KAnonymityRisk risk;
    LocalSuppression anon;
    CycleOptions options;
    options.risk.k = 2;
    options.log_steps = true;
    AnonymizationCycle cycle(&risk, &anon, options);
    auto stats = cycle.Run(&t);
    if (!stats.ok()) return 1;
    std::printf("native cycle (k=2): %zu risky, %zu nulls\n", stats->initial_risky,
                stats->nulls_injected);
    for (const auto& line : stats->log) std::printf("  %s\n", line.c_str());
  }

  // The same cycle as a pure reasoning task on the Vadalog engine.
  {
    VadalogBridge bridge;
    std::printf("\ndeclarative cycle program:\n%s\n", bridge.CycleProgram().c_str());
    vadalog::RunStats stats;
    auto out = bridge.RunDeclarativeCycle(table, nullptr, &stats);
    if (!out.ok()) {
      std::fprintf(stderr, "%s\n", out.status().ToString().c_str());
      return 1;
    }
    std::printf("engine run: %zu rounds, %zu facts derived, %zu nulls created, "
                "%zu #anonymize invocations\n",
                stats.rounds, stats.facts_derived, stats.nulls_created,
                stats.action_invocations);
    std::printf("\nanonymized release (identifiers dropped):\n%s",
                out->ToText(20).c_str());
  }
  return 0;
}
