// A small shell for the Vadalog dialect: run a program from a file (or stdin)
// and dump the derived facts — with optional provenance explanations.
//
//   ./vadalog_shell program.vada [--explain predicate] [--dot predicate]
//                   [--save directory] [--warded]
//
// Example program:
//   own(a,b,0.6). own(b,c,0.6).
//   rel(X,Y) :- own(X,Y,W), W > 0.5.
//   rel(X,Z) :- rel(X,Y), rel(Y,Z).
//   @output("rel").

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "vadalog/analysis.h"
#include "vadalog/bindings.h"
#include "vadalog/engine.h"
#include "vadalog/explain.h"
#include "vadalog/parser.h"
#include "vadalog/storage.h"

int main(int argc, char** argv) {
  using namespace vadasa;
  using namespace vadasa::vadalog;

  std::string source;
  std::string explain_predicate;
  std::string dot_predicate;
  std::string save_directory;
  bool check_warded = false;
  bool from_stdin = true;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--explain" && i + 1 < argc) {
      explain_predicate = argv[++i];
    } else if (arg == "--dot" && i + 1 < argc) {
      dot_predicate = argv[++i];
    } else if (arg == "--save" && i + 1 < argc) {
      save_directory = argv[++i];
    } else if (arg == "--warded") {
      check_warded = true;
    } else {
      std::ifstream in(arg);
      if (!in) {
        std::fprintf(stderr, "cannot open %s\n", arg.c_str());
        return 1;
      }
      std::ostringstream buf;
      buf << in.rdbuf();
      source = buf.str();
      from_stdin = false;
    }
  }
  if (from_stdin) {
    std::ostringstream buf;
    buf << std::cin.rdbuf();
    source = buf.str();
  }

  auto program = Parse(source);
  if (!program.ok()) {
    std::fprintf(stderr, "parse error: %s\n", program.status().ToString().c_str());
    return 1;
  }
  if (check_warded) {
    const WardednessReport report = AnalyzeWardedness(*program);
    std::printf("wardedness: %s\n", report.program_warded ? "warded" : "NOT warded");
    for (size_t i = 0; i < report.rules.size(); ++i) {
      if (!report.rules[i].warded) {
        std::printf("  rule %zu: %s\n", i + 1, report.rules[i].diagnostic.c_str());
      }
    }
  }

  Engine engine;
  Database db;
  if (const Status bound = LoadBindings(*program, &db); !bound.ok()) {
    std::fprintf(stderr, "binding failed: %s\n", bound.ToString().c_str());
    return 1;
  }
  auto stats = engine.Run(*program, &db);
  if (!stats.ok()) {
    std::fprintf(stderr, "chase failed: %s\n", stats.status().ToString().c_str());
    return 1;
  }
  std::printf("chase: %zu rounds, %zu facts derived, %zu nulls, %zu EGD "
              "substitutions\n\n",
              stats->rounds, stats->facts_derived, stats->nulls_created,
              stats->egd_substitutions);

  const auto outputs =
      program->outputs.empty() ? db.Predicates() : program->outputs;
  for (const std::string& predicate : outputs) {
    std::printf("%s", db.DumpPredicate(predicate).c_str());
  }

  if (!explain_predicate.empty()) {
    const Relation* rel = db.relation(explain_predicate);
    if (rel != nullptr && rel->size() > 0) {
      std::printf("\nexplanation of the first %s fact:\n%s", explain_predicate.c_str(),
                  ExplainFact(db, *program, rel->fact_id(0)).c_str());
    }
  }
  if (!dot_predicate.empty()) {
    const Relation* rel = db.relation(dot_predicate);
    if (rel != nullptr && rel->size() > 0) {
      std::printf("\n%s", ExplainFactDot(db, *program, rel->fact_id(0)).c_str());
    }
  }
  if (!save_directory.empty()) {
    const Status saved = SaveDatabase(db, save_directory);
    if (!saved.ok()) {
      std::fprintf(stderr, "save failed: %s\n", saved.ToString().c_str());
      return 1;
    }
    std::printf("\nsaved derived database to %s\n", save_directory.c_str());
  }
  return 0;
}
