// Business-knowledge-aware anonymization (Section 4.4 / Algorithm 9): company
// control relationships propagate disclosure risk along ownership chains —
// re-identifying one member of a group effectively re-identifies the others.
// Shows the control-closure rules both natively and on the Vadalog engine,
// then compares anonymization with and without the business knowledge.

#include <cstdio>

#include "core/business.h"
#include "core/cycle.h"
#include "core/datagen.h"
#include "vadalog/engine.h"

int main() {
  using namespace vadasa;
  using namespace vadasa::core;

  // A small ownership network: holding h controls a and (jointly) b.
  OwnershipGraph graph;
  graph.AddOwnership("h", "a", 0.7);
  graph.AddOwnership("h", "s1", 0.9);
  graph.AddOwnership("h", "s2", 0.6);
  graph.AddOwnership("s1", "b", 0.3);
  graph.AddOwnership("s2", "b", 0.3);
  graph.AddOwnership("z", "w", 0.2);  // Minority stake: no control.

  std::printf("control closure (native):\n");
  for (const auto& [x, y] : graph.ComputeControl()) {
    std::printf("  %s controls %s\n", x.c_str(), y.c_str());
  }

  // The same two rules, verbatim, on the reasoning engine.
  vadalog::Engine engine;
  vadalog::Database db;
  auto stats = vadalog::RunSource(
      "own(h, a, 0.7). own(h, s1, 0.9). own(h, s2, 0.6).\n"
      "own(s1, b, 0.3). own(s2, b, 0.3). own(z, w, 0.2).\n"
      "rel(X, Y) :- own(X, Y, W), W > 0.5.\n"
      "rel(X, Y) :- rel(X, Z), own(Z, Y, W), S = msum(W, <Z>), S > 0.5.",
      &db, &engine);
  if (!stats.ok()) {
    std::fprintf(stderr, "%s\n", stats.status().ToString().c_str());
    return 1;
  }
  std::printf("\ncontrol closure (Vadalog engine):\n%s", db.DumpPredicate("rel").c_str());

  // Risk propagation on a microdata DB whose Id column names these companies.
  MicrodataTable t("network", {{"Id", "Company", AttributeCategory::kIdentifier},
                               {"Area", "", AttributeCategory::kQuasiIdentifier},
                               {"Sector", "", AttributeCategory::kQuasiIdentifier}});
  const struct {
    const char* id;
    const char* area;
    const char* sector;
  } kRows[] = {
      {"h", "North", "Financial"},   // Unique: risky outlier.
      {"a", "North", "Commerce"},    // Shares a pair: safe alone.
      {"a2", "North", "Commerce"},
      {"b", "South", "Commerce"},    // Shares a pair: safe alone.
      {"b2", "South", "Commerce"},
      {"z", "Center", "Textiles"},   // Unique but unlinked.
      {"z2", "Center", "Energy"},
  };
  for (const auto& r : kRows) {
    (void)t.AddRow({Value::String(r.id), Value::String(r.area), Value::String(r.sector)});
  }

  for (const bool with_knowledge : {false, true}) {
    MicrodataTable copy = t;
    KAnonymityRisk risk;
    LocalSuppression anon;
    CycleOptions options;
    options.risk.k = 2;
    options.log_steps = true;
    if (with_knowledge) {
      options.risk_transform = MakeClusterRiskTransform(&graph, "Id");
    }
    AnonymizationCycle cycle(&risk, &anon, options);
    auto run = cycle.Run(&copy);
    if (!run.ok()) return 1;
    std::printf("\n%s business knowledge: %zu risky, %zu nulls\n",
                with_knowledge ? "WITH" : "without", run->initial_risky,
                run->nulls_injected);
    for (const auto& line : run->log) std::printf("  %s\n", line.c_str());
  }
  std::printf("\nreading: once h is linked to a and b, their cluster inherits h's\n"
              "risk (1 - Π(1-ρ)) and gets anonymized too.\n");
  return 0;
}
