// Figure 7c: maybe-matching (=⊥) vs the standard Skolem labelled-null
// semantics. Under the standard semantics a fresh null never matches
// anything, so suppression cannot enlarge a tuple's group: the cycle keeps
// suppressing until every quasi-identifier of every risky tuple is gone —
// the "proliferation of symbols" that makes the standard semantics unusable.

#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace vadasa;
  using namespace vadasa::core;

  std::vector<std::vector<std::string>> rows;
  for (const char* name : {"R25A4W", "R25A4U", "R25A4V"}) {
    auto spec = FindDataset(name);
    if (!spec.ok()) return 1;
    const MicrodataTable base = GenerateDataset(*spec);
    for (int k = 2; k <= 5; ++k) {
      const CycleStats maybe =
          bench::RunStandardCycle(base, k, NullSemantics::kMaybeMatch);
      const CycleStats standard =
          bench::RunStandardCycle(base, k, NullSemantics::kStandard);
      rows.push_back({name, std::to_string(k), std::to_string(maybe.nulls_injected),
                      std::to_string(standard.nulls_injected),
                      std::to_string(standard.unresolved),
                      bench::Fmt(static_cast<double>(standard.nulls_injected) /
                                     std::max<size_t>(1, maybe.nulls_injected),
                                 1) +
                          "x"});
    }
  }
  bench::PrintTable(
      "Figure 7c: nulls injected — maybe-match vs standard null semantics",
      {"dataset", "k", "maybe-match", "standard", "standard unresolved", "blowup"},
      rows);
  std::printf("\nexpected shape: the standard semantics injects #risky x #QI nulls and\n"
              "still leaves every risky tuple unresolved — far above maybe-match.\n");
  return 0;
}
