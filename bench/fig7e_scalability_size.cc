// Figure 7e: execution time of the full anonymization cycle (and of its risk
// estimation component — the RiskSeconds counter) by dataset size, for the
// three risk estimation techniques: individual risk (with the sampled
// negative-binomial posterior standing in for the paper's off-the-shelf
// statistical library), k-anonymity (k=2) and SUDA (MSU threshold 3), on the
// unbalanced A4U datasets, T = 0.5.
//
// Expected shape (paper): risk estimation dominates the elapsed time;
// k-anonymity is the cheapest and ~linear in the number of tuples;
// individual risk pays a per-tuple sampling overhead; SUDA sits above
// k-anonymity but avoids any combinatorial blowup.

#include <benchmark/benchmark.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench_json.h"
#include "obs/trace.h"
#include "core/anonymize.h"
#include "core/cycle.h"
#include "core/datagen.h"
#include "core/suda.h"

namespace {

using namespace vadasa;
using namespace vadasa::core;

bench::JsonWriter* g_json = nullptr;

/// The million-tuple extrapolation point behind --large: same unbalanced A4U
/// family as Fig. 6, one decade beyond the paper's largest dataset.
DatasetSpec LargeDatasetSpec() {
  return {"R1MA4U", 4, 1000000, DistributionKind::kUnbalanced, true};
}

const MicrodataTable& CachedDataset(const std::string& name) {
  static std::map<std::string, MicrodataTable>* cache =
      new std::map<std::string, MicrodataTable>();
  auto it = cache->find(name);
  if (it == cache->end()) {
    auto spec = name == LargeDatasetSpec().name ? Result<DatasetSpec>(LargeDatasetSpec())
                                                : FindDataset(name);
    it = cache->emplace(name, GenerateDataset(*spec)).first;
  }
  return it->second;
}

std::unique_ptr<RiskMeasure> MakeMeasure(const std::string& technique) {
  if (technique == "suda") {
    return std::make_unique<SudaRisk>();
  }
  return std::move(MakeRiskMeasure(technique).value());
}

void BM_CycleBySize(benchmark::State& state, const std::string& dataset,
                    const std::string& technique) {
  const MicrodataTable& base = CachedDataset(dataset);
  for (auto _ : state) {
    MicrodataTable table = base;
    auto measure = MakeMeasure(technique);
    LocalSuppression anon;
    CycleOptions options;
    options.threshold = 0.5;
    options.risk.k = technique == "suda" ? 3 : 2;
    if (technique == "individual") {
      options.risk.posterior_draws = 32;  // The "statistical library" mode.
    }
    AnonymizationCycle cycle(measure.get(), &anon, options);
    auto stats = cycle.Run(&table);
    if (!stats.ok()) {
      state.SkipWithError(stats.status().ToString().c_str());
      return;
    }
    state.SetIterationTime(stats->total_seconds);
    state.counters["RiskSeconds"] = stats->risk_eval_seconds;
    state.counters["Nulls"] = static_cast<double>(stats->nulls_injected);
    state.counters["Risky"] = static_cast<double>(stats->initial_risky);
    state.counters["Tuples"] = static_cast<double>(base.num_rows());
    if (g_json != nullptr) {
      g_json->Add({{"dataset", dataset},
                   {"technique", technique},
                   {"tuples", base.num_rows()},
                   {"wall_seconds", stats->total_seconds},
                   {"risk_eval_seconds", stats->risk_eval_seconds},
                   {"iterations", stats->iterations},
                   {"nulls", stats->nulls_injected},
                   {"group_rebuilds", stats->group_rebuilds},
                   {"group_updates", stats->group_updates}});
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonWriter json = bench::JsonWriter::FromArgs("fig7e", &argc, argv);
  g_json = &json;
  const vadasa::obs::TraceArgs trace_args = vadasa::obs::ExtractTraceArgs(&argc, argv);
  if (trace_args.tracing_requested()) vadasa::obs::StartTracing();
  // --large appends the 1M-tuple point (minutes of generation + cycle time;
  // off by default so CI and quick local sweeps stay fast).
  bool large = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--large") {
      large = true;
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      break;
    }
  }
  std::vector<std::string> datasets = {"R6A4U", "R12A4U", "R50A4U", "R100A4U"};
  if (large) datasets.push_back(LargeDatasetSpec().name);
  for (const std::string& dataset : datasets) {
    for (const char* technique : {"individual", "k-anonymity", "suda"}) {
      benchmark::RegisterBenchmark(
          (std::string("fig7e/") + dataset + "/" + technique).c_str(),
          [dataset, technique](benchmark::State& state) {
            BM_CycleBySize(state, dataset, technique);
          })
          ->Iterations(1)
          ->UseManualTime()
          ->Unit(benchmark::kMillisecond);
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!vadasa::obs::ExportRequested(trace_args)) return 1;
  return json.Flush() ? 0 : 1;
}
