// Incremental delta maintenance vs full re-warm (docs/api.md §"Streaming
// deltas"): on the 100k-tuple R100A4U dataset, apply small random delta
// batches (0.1% and 1% of the rows — the streaming-feed regime) through
//   (a) api::Session::Apply over a warm parent — table rebuild plus
//       copy-on-write GroupIndex patching of only the dirtied groups, and
//   (b) the full path — ApplyDeltaToTable, a fresh session, and a cold
//       Warm() over the post-delta table.
// Both produce bit-identical warm state (the
// delta-vs-full-recompute-bit-identical property pins that); this bench
// pins the payoff: incremental must be >= 5x faster for small deltas.
// The --json document embeds the delta.* metrics (groups_dirtied,
// groups_recomputed, rows_touched) the CI delta-smoke lane asserts on.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <memory>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "api/vadasa.h"
#include "bench_json.h"
#include "core/datagen.h"
#include "core/delta.h"
#include "obs/trace.h"

namespace {

using namespace vadasa;
using namespace vadasa::core;

bench::JsonWriter* g_json = nullptr;
constexpr const char* kDataset = "R100A4U";

const std::shared_ptr<const MicrodataTable>& SharedDataset() {
  static const auto* table = new std::shared_ptr<const MicrodataTable>(
      std::make_shared<const MicrodataTable>(
          GenerateDataset(*FindDataset(kDataset))));
  return *table;
}

/// The warm parent every incremental iteration patches from — warmed once,
/// outside all timed regions, exactly like a long-lived serving session.
const api::Session& WarmParent() {
  static const api::Session* session = [] {
    auto opened = api::Session::FromShared(SharedDataset(), nullptr, {});
    if (!opened.ok()) std::abort();
    auto* owned = new api::Session(std::move(*opened));
    if (!owned->Warm().ok()) std::abort();
    return owned;
  }();
  return *session;
}

/// A random batch of `delta_rows` mutations (40% updates, 30% appends, 30%
/// deletes of distinct rows) whose new rows copy existing rows — the
/// group-churn shape of a real feed. Deterministic per (delta_rows, round).
DeltaBatch RandomBatch(const MicrodataTable& table, size_t delta_rows,
                       uint64_t round) {
  std::mt19937_64 rng(0x5eedULL * (delta_rows + 1) + round);
  std::uniform_int_distribution<size_t> pick_row(0, table.num_rows() - 1);
  std::uniform_real_distribution<double> roll(0.0, 1.0);
  DeltaBatchBuilder builder(table.num_columns());
  std::set<size_t> deleted;
  for (size_t i = 0; i < delta_rows; ++i) {
    const double r = roll(rng);
    if (r < 0.4) {
      builder.Update(pick_row(rng), table.row(pick_row(rng)));
    } else if (r < 0.7) {
      builder.Append(table.row(pick_row(rng)));
    } else {
      size_t victim = pick_row(rng);
      while (!deleted.insert(victim).second) victim = pick_row(rng);
      builder.Delete(victim);
    }
  }
  auto batch = builder.Build();
  if (!batch.ok()) std::abort();
  return std::move(*batch);
}

double Seconds(std::chrono::steady_clock::time_point from,
               std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

void BM_DeltaVsFullRewarm(benchmark::State& state, size_t delta_rows) {
  const api::Session& parent = WarmParent();
  for (auto _ : state) {
    // Best-of-3 per path: small deltas are milliseconds, and the minimum is
    // the stable statistic on shared runners.
    constexpr int kReps = 3;
    double incremental = 1e300, full = 1e300;
    size_t post_rows = 0;
    for (int rep = 0; rep < kReps; ++rep) {
      const DeltaBatch batch =
          RandomBatch(*parent.shared_table(), delta_rows, rep);

      auto t0 = std::chrono::steady_clock::now();
      auto child = parent.Apply(batch);
      auto t1 = std::chrono::steady_clock::now();
      if (!child.ok()) {
        state.SkipWithError(child.status().ToString().c_str());
        return;
      }
      incremental = std::min(incremental, Seconds(t0, t1));
      post_rows = child->shared_table()->num_rows();

      // The full path re-derives the identical warm state from scratch.
      auto t2 = std::chrono::steady_clock::now();
      auto next = ApplyDeltaToTable(*parent.shared_table(), batch);
      if (!next.ok()) {
        state.SkipWithError(next.status().ToString().c_str());
        return;
      }
      auto cold = api::Session::FromShared(
          std::make_shared<const MicrodataTable>(std::move(*next)), nullptr,
          {});
      if (!cold.ok() || !cold->Warm().ok()) {
        state.SkipWithError("cold re-warm failed");
        return;
      }
      auto t3 = std::chrono::steady_clock::now();
      full = std::min(full, Seconds(t2, t3));
    }

    const double speedup = full / incremental;
    state.SetIterationTime(incremental);
    state.counters["FullSeconds"] = full;
    state.counters["Speedup"] = speedup;
    state.counters["DeltaRows"] = static_cast<double>(delta_rows);
    if (g_json != nullptr) {
      const std::string size_tag = "delta" + std::to_string(delta_rows);
      g_json->Add({{"dataset", kDataset},
                   {"technique", size_tag + "-incremental"},
                   {"tuples", parent.shared_table()->num_rows()},
                   {"delta_rows", delta_rows},
                   {"post_rows", post_rows},
                   {"wall_seconds", incremental},
                   {"speedup_vs_full", speedup}});
      g_json->Add({{"dataset", kDataset},
                   {"technique", size_tag + "-full-rewarm"},
                   {"tuples", parent.shared_table()->num_rows()},
                   {"delta_rows", delta_rows},
                   {"wall_seconds", full}});
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonWriter json = bench::JsonWriter::FromArgs("bench_delta", &argc, argv);
  g_json = &json;
  const obs::TraceArgs trace_args = obs::ExtractTraceArgs(&argc, argv);
  if (trace_args.tracing_requested()) obs::StartTracing();
  // 0.1% and 1% of the 100k rows: the ISSUE's "small delta" regime.
  for (const size_t delta_rows : {100, 1000}) {
    benchmark::RegisterBenchmark(
        ("bench_delta/" + std::string(kDataset) + "/d" +
         std::to_string(delta_rows))
            .c_str(),
        [delta_rows](benchmark::State& state) {
          BM_DeltaVsFullRewarm(state, delta_rows);
        })
        ->Iterations(1)
        ->UseManualTime()
        ->Unit(benchmark::kMillisecond);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!obs::ExportRequested(trace_args)) return 1;
  return json.Flush() ? 0 : 1;
}
