#ifndef VADASA_BENCH_BENCH_JSON_H_
#define VADASA_BENCH_BENCH_JSON_H_

#include <string>
#include <vector>

namespace vadasa::bench {

/// One key/value field of a benchmark record. Values are either strings
/// (JSON-escaped on output) or numbers (rendered with enough digits to
/// round-trip doubles).
struct JsonField {
  JsonField(std::string k, const std::string& value);
  JsonField(std::string k, const char* value);
  JsonField(std::string k, double value);
  JsonField(std::string k, size_t value);
  JsonField(std::string k, int value);

  std::string key;
  std::string literal;  ///< Pre-rendered JSON literal (quoted or numeric).
};

/// Dependency-free collector for machine-readable benchmark baselines.
/// Activated by a `--json=PATH` argument; writes a document of the form
///   {"bench": "...", "threads": N, "records": [{...}, ...],
///    "metrics": {...}, "telemetry": {...}}
/// where `threads` is the global thread-pool size the run used and
/// `telemetry` is the continuous sampler's time series over the run.
class JsonWriter {
 public:
  /// Scans argv for `--json=PATH` and strips it (google-benchmark rejects
  /// unknown flags). The returned writer is inactive when the flag is absent;
  /// Add/Flush become no-ops then. Also strips `--sample-ms=N` (default 50,
  /// 0 disables) and, when the writer is active, starts the global telemetry
  /// sampler at that interval so Flush can embed the series.
  static JsonWriter FromArgs(std::string bench_name, int* argc, char** argv);

  bool active() const { return !path_.empty(); }
  void Add(std::vector<JsonField> fields);

  /// Writes the collected document to the path. Returns true on success or
  /// when inactive.
  bool Flush() const;

 private:
  std::string bench_;
  std::string path_;
  std::vector<std::vector<JsonField>> records_;
};

}  // namespace vadasa::bench

#endif  // VADASA_BENCH_BENCH_JSON_H_
