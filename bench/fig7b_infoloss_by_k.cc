// Figure 7b: information loss (injected nulls weighted by the maximum number
// of theoretically removable values — the QI cells of the risky tuples) by
// k-anonymity threshold, on R25A4W / R25A4U / R25A4V.
//
// Expected shape (paper): W and U roughly flat and below ~20%; V higher at
// high tolerance but *dropping* at stricter runs, because risky tuples
// collapse into shared null groups.

#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace vadasa;
  using namespace vadasa::core;

  std::vector<std::vector<std::string>> rows;
  for (const char* name : {"R25A4W", "R25A4U", "R25A4V"}) {
    auto spec = FindDataset(name);
    if (!spec.ok()) return 1;
    const MicrodataTable base = GenerateDataset(*spec);
    std::vector<std::string> row = {name};
    for (int k = 2; k <= 5; ++k) {
      const CycleStats stats =
          bench::RunStandardCycle(base, k, NullSemantics::kMaybeMatch);
      row.push_back(bench::Fmt(100.0 * stats.information_loss, 1) + "%");
    }
    rows.push_back(std::move(row));
  }
  bench::PrintTable("Figure 7b: information loss by k-anonymity threshold",
                    {"dataset", "k=2", "k=3", "k=4", "k=5"}, rows);
  std::printf("\nexpected shape: W/U mostly flat and modest; V highest, with the\n"
              "greedy suppression amortizing as k (and the risky set) grows.\n");
  return 0;
}
