#ifndef VADASA_BENCH_BENCH_UTIL_H_
#define VADASA_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

#include "core/anonymize.h"
#include "core/cycle.h"
#include "core/datagen.h"
#include "core/risk.h"

namespace vadasa::bench {

/// Prints an aligned table: header row + string cells.
inline void PrintTable(const std::string& title,
                       const std::vector<std::string>& header,
                       const std::vector<std::vector<std::string>>& rows) {
  std::printf("\n== %s ==\n", title.c_str());
  std::vector<size_t> widths(header.size());
  for (size_t c = 0; c < header.size(); ++c) widths[c] = header[c].size();
  for (const auto& row : rows) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      std::printf("%-*s  ", static_cast<int>(widths[c]), row[c].c_str());
    }
    std::printf("\n");
  };
  print_row(header);
  for (const auto& row : rows) print_row(row);
}

inline std::string Fmt(double v, int precision = 3) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

/// Runs the standard experimental cycle of Section 5.1: k-anonymity risk,
/// local suppression, T = 0.5, less-significant-first routing,
/// most-risky-first QI choice. Returns the stats; `table` is consumed.
inline core::CycleStats RunStandardCycle(core::MicrodataTable table, int k,
                                         core::NullSemantics semantics,
                                         core::RiskTransform transform = nullptr) {
  core::KAnonymityRisk risk;
  core::LocalSuppression anon;
  core::CycleOptions options;
  options.threshold = 0.5;
  options.risk.k = k;
  options.risk.semantics = semantics;
  options.tuple_order = core::TupleOrder::kLessSignificantFirst;
  options.qi_choice = core::QiChoice::kMostRiskyFirst;
  options.risk_transform = std::move(transform);
  core::AnonymizationCycle cycle(&risk, &anon, options);
  auto stats = cycle.Run(&table);
  if (!stats.ok()) {
    std::fprintf(stderr, "cycle failed: %s\n", stats.status().ToString().c_str());
    return {};
  }
  return *stats;
}

}  // namespace vadasa::bench

#endif  // VADASA_BENCH_BENCH_UTIL_H_
