// Figure 7d: anonymization with explicit business knowledge (Section 4.4 /
// Algorithm 9). Derived company-control relationships form clusters that
// share the combined risk 1 - Π(1-ρ), so risky outliers drag their linked
// companies into anonymization: the number of injected nulls grows with the
// number of relationships, the more so the more unbalanced the dataset.

#include <cstdio>

#include "bench_util.h"
#include "common/random.h"
#include "core/business.h"

namespace {

/// Builds `n` inferred control relationships over the dataset's company ids:
/// ownership edges strong enough (0.8) to be control links. Following the
/// paper's setting — where the derived relationships "disclose many cases
/// that deserve anonymization" — one endpoint of 10% of the edges is drawn
/// from the risky (outlier) companies: holding structures concentrate among
/// the special entities, not uniformly across the survey.
vadasa::core::OwnershipGraph MakeRelationships(const vadasa::core::MicrodataTable& t,
                                               const std::vector<size_t>& risky_rows,
                                               size_t n, uint64_t seed) {
  vadasa::core::OwnershipGraph graph;
  vadasa::Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    size_t a = rng.NextBelow(t.num_rows());
    if (!risky_rows.empty() && rng.NextDouble() < 0.10) {
      a = risky_rows[rng.NextBelow(risky_rows.size())];
    }
    const size_t b = rng.NextBelow(t.num_rows());
    if (a == b) continue;
    graph.AddOwnership(t.cell(a, 0).ToString(), t.cell(b, 0).ToString(), 0.8);
  }
  return graph;
}

}  // namespace

int main() {
  using namespace vadasa;
  using namespace vadasa::core;

  std::vector<std::vector<std::string>> rows;
  for (const char* name : {"R25A4W", "R25A4U", "R25A4V"}) {
    auto spec = FindDataset(name);
    if (!spec.ok()) return 1;
    const MicrodataTable base = GenerateDataset(*spec);
    std::vector<size_t> risky_rows;
    {
      KAnonymityRisk risk;
      RiskContext ctx;
      ctx.k = 2;
      const auto risks = risk.ComputeRisks(base, ctx).value();
      for (size_t r = 0; r < risks.size(); ++r) {
        if (risks[r] > 0.5) risky_rows.push_back(r);
      }
    }
    std::vector<std::string> row = {name};
    for (const size_t rels : {0u, 100u, 200u, 300u, 400u}) {
      OwnershipGraph graph = MakeRelationships(base, risky_rows, rels, 4242);
      RiskTransform transform =
          rels == 0 ? RiskTransform() : MakeClusterRiskTransform(&graph, "Id");
      const CycleStats stats = bench::RunStandardCycle(
          base, /*k=*/2, NullSemantics::kMaybeMatch, std::move(transform));
      row.push_back(std::to_string(stats.nulls_injected));
    }
    rows.push_back(std::move(row));
  }
  bench::PrintTable(
      "Figure 7d: nulls injected by number of inferred control relationships "
      "(k=2, T=0.5)",
      {"dataset", "rels=0", "rels=100", "rels=200", "rels=300", "rels=400"}, rows);
  std::printf("\nexpected shape: monotone growth with the number of relationships;\n"
              "the unbalanced datasets amplify the propagation of outlier risk.\n");
  return 0;
}
