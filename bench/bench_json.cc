#include "bench_json.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <utility>

#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/sampler.h"

namespace vadasa::bench {

namespace {

std::string Escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

std::string Number(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

}  // namespace

JsonField::JsonField(std::string k, const std::string& value)
    : key(std::move(k)), literal(Escape(value)) {}
JsonField::JsonField(std::string k, const char* value)
    : key(std::move(k)), literal(Escape(value)) {}
JsonField::JsonField(std::string k, double value)
    : key(std::move(k)), literal(Number(value)) {}
JsonField::JsonField(std::string k, size_t value)
    : key(std::move(k)), literal(std::to_string(value)) {}
JsonField::JsonField(std::string k, int value)
    : key(std::move(k)), literal(std::to_string(value)) {}

JsonWriter JsonWriter::FromArgs(std::string bench_name, int* argc, char** argv) {
  JsonWriter writer;
  writer.bench_ = std::move(bench_name);
  const std::string prefix = "--json=";
  const std::string sample_prefix = "--sample-ms=";
  long sample_ms = 50;
  int kept = 1;
  for (int i = 1; i < *argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) {
      writer.path_ = arg.substr(prefix.size());
    } else if (arg.rfind(sample_prefix, 0) == 0) {
      sample_ms = std::strtol(arg.c_str() + sample_prefix.size(), nullptr, 10);
    } else {
      argv[kept++] = argv[i];
    }
  }
  *argc = kept;
  if (writer.active() && sample_ms > 0) {
    obs::TelemetrySampler::Global().Start(sample_ms);
  }
  return writer;
}

void JsonWriter::Add(std::vector<JsonField> fields) {
  if (!active()) return;
  records_.push_back(std::move(fields));
}

bool JsonWriter::Flush() const {
  if (!active()) return true;
  std::ofstream out(path_);
  if (!out) return false;
  out << "{\n  \"bench\": " << Escape(bench_) << ",\n  \"threads\": "
      << ThreadPool::Global().num_threads() << ",\n  \"records\": [";
  for (size_t i = 0; i < records_.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n") << "    {";
    for (size_t f = 0; f < records_[i].size(); ++f) {
      if (f > 0) out << ", ";
      out << Escape(records_[i][f].key) << ": " << records_[i][f].literal;
    }
    out << "}";
  }
  // Process-wide metrics accumulated over the run (cycle.*, group_index.*,
  // risk_cache.*, vadalog.*) — the flat exporter view, embedded so baseline
  // JSONs carry the counters alongside the timings.
  out << "\n  ],\n  \"metrics\": " << obs::MetricsRegistry::Global().ToJson();
  // The sampler's gauge series over the run (RSS growth, metric cardinality);
  // stopped here so the document captures a complete window.
  obs::TelemetrySampler& sampler = obs::TelemetrySampler::Global();
  if (sampler.running()) sampler.Stop();
  out << ",\n  \"telemetry\": " << sampler.TimeSeriesJson() << "\n}\n";
  return static_cast<bool>(out);
}

}  // namespace vadasa::bench
