// Microbenchmarks of the reasoning substrate itself — the scalability the
// framework inherits from the engine (Section 3's "very good characteristics
// of scalability"): transitive closure, monotonic aggregation through
// recursion, existential chains under the restricted chase, and grouping.

#include <benchmark/benchmark.h>

#include <chrono>
#include <string>

#include "bench_json.h"
#include "obs/trace.h"
#include "vadalog/engine.h"
#include "vadalog/parser.h"

namespace {

using namespace vadasa;
using namespace vadasa::vadalog;

bench::JsonWriter* g_json = nullptr;

void RunOrSkip(benchmark::State& state, const char* name, const std::string& src) {
  double seconds = 0.0;
  size_t iterations = 0;
  double facts = 0.0;
  double rounds = 0.0;
  for (auto _ : state) {
    const auto t0 = std::chrono::steady_clock::now();
    Engine engine;
    Database db;
    auto stats = RunSource(src, &db, &engine);
    if (!stats.ok()) {
      state.SkipWithError(stats.status().ToString().c_str());
      return;
    }
    seconds += std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                   .count();
    ++iterations;
    facts = static_cast<double>(db.size());
    rounds = static_cast<double>(stats->rounds);
    state.counters["Facts"] = facts;
    state.counters["Rounds"] = rounds;
  }
  if (g_json != nullptr && iterations > 0) {
    g_json->Add({{"name", name},
                 {"arg", static_cast<size_t>(state.range(0))},
                 {"wall_seconds", seconds / static_cast<double>(iterations)},
                 {"facts", facts},
                 {"rounds", rounds}});
  }
}

void BM_TransitiveClosureChain(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::string src;
  for (int i = 0; i < n; ++i) {
    src += "edge(n" + std::to_string(i) + ", n" + std::to_string(i + 1) + ").\n";
  }
  src += "path(X,Y) :- edge(X,Y).\npath(X,Z) :- path(X,Y), edge(Y,Z).\n";
  RunOrSkip(state, "transitive-closure-chain", src);
}
BENCHMARK(BM_TransitiveClosureChain)->Arg(64)->Arg(128)->Arg(256)
    ->Unit(benchmark::kMillisecond);

void BM_TransitiveClosureGrid(benchmark::State& state) {
  // A k x k grid: |path| grows quadratically in the node count.
  const int k = static_cast<int>(state.range(0));
  std::string src;
  for (int x = 0; x < k; ++x) {
    for (int y = 0; y < k; ++y) {
      const std::string from = "n" + std::to_string(x) + "_" + std::to_string(y);
      if (x + 1 < k) {
        src += "edge(" + from + ", n" + std::to_string(x + 1) + "_" +
               std::to_string(y) + ").\n";
      }
      if (y + 1 < k) {
        src += "edge(" + from + ", n" + std::to_string(x) + "_" +
               std::to_string(y + 1) + ").\n";
      }
    }
  }
  src += "path(X,Y) :- edge(X,Y).\npath(X,Z) :- path(X,Y), edge(Y,Z).\n";
  RunOrSkip(state, "transitive-closure-grid", src);
}
BENCHMARK(BM_TransitiveClosureGrid)->Arg(6)->Arg(8)->Arg(10)
    ->Unit(benchmark::kMillisecond);

void BM_MonotonicAggregationGroups(benchmark::State& state) {
  // n contributions spread over n/8 groups, summed monotonically.
  const int n = static_cast<int>(state.range(0));
  std::string src;
  for (int i = 0; i < n; ++i) {
    src += "obs(g" + std::to_string(i % (n / 8)) + ", i" + std::to_string(i) + ", " +
           std::to_string(1 + i % 7) + ").\n";
  }
  src += "total(G, S) :- obs(G, I, W), S = msum(W, <I>).\n";
  RunOrSkip(state, "monotonic-aggregation-groups", src);
}
BENCHMARK(BM_MonotonicAggregationGroups)->Arg(512)->Arg(2048)->Arg(8192)
    ->Unit(benchmark::kMillisecond);

void BM_ExistentialChainRestricted(benchmark::State& state) {
  // Every employee needs a department; every department a manager; the
  // restricted chase reuses satisfied heads.
  const int n = static_cast<int>(state.range(0));
  std::string src;
  for (int i = 0; i < n; ++i) {
    src += "employee(e" + std::to_string(i) + ").\n";
  }
  src +=
      "worksin(X, D) :- employee(X).\n"
      "managed(D, M) :- worksin(X, D).\n";
  RunOrSkip(state, "existential-chain-restricted", src);
}
BENCHMARK(BM_ExistentialChainRestricted)->Arg(256)->Arg(1024)->Arg(4096)
    ->Unit(benchmark::kMillisecond);

void BM_StratifiedNegation(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::string src;
  for (int i = 0; i < n; ++i) {
    src += "node(n" + std::to_string(i) + ").\n";
    if (i + 1 < n && i % 3 != 0) {
      src += "edge(n" + std::to_string(i) + ", n" + std::to_string(i + 1) + ").\n";
    }
  }
  src +=
      "start(n0).\n"
      "reach(X) :- start(X).\n"
      "reach(Y) :- reach(X), edge(X, Y).\n"
      "unreached(X) :- node(X), not reach(X).\n";
  RunOrSkip(state, "stratified-negation", src);
}
BENCHMARK(BM_StratifiedNegation)->Arg(512)->Arg(2048)->Arg(8192)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  vadasa::bench::JsonWriter json =
      vadasa::bench::JsonWriter::FromArgs("engine_microbench", &argc, argv);
  g_json = &json;
  const vadasa::obs::TraceArgs trace_args = vadasa::obs::ExtractTraceArgs(&argc, argv);
  if (trace_args.tracing_requested()) vadasa::obs::StartTracing();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!vadasa::obs::ExportRequested(trace_args)) return 1;
  return json.Flush() ? 0 : 1;
}
