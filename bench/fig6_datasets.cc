// Figure 6: the experimental dataset corpus. Regenerates every dataset from
// its fixed seed and reports the observable properties the experiments rely
// on: distinct QI combinations, sample uniques and risky-tuple counts.

#include <cstdio>

#include <unordered_map>

#include "bench_util.h"
#include "core/group_index.h"

int main() {
  using namespace vadasa;
  using namespace vadasa::core;

  std::vector<std::vector<std::string>> rows;
  for (const DatasetSpec& spec : Figure6Corpus()) {
    const MicrodataTable t = GenerateDataset(spec);
    const auto qis = t.QuasiIdentifierColumns();
    const GroupStats stats = ComputeGroupStats(t, qis, NullSemantics::kMaybeMatch);
    size_t uniques = 0;
    size_t risky_k2 = 0;
    for (size_t r = 0; r < t.num_rows(); ++r) {
      if (stats.frequency[r] == 1.0) ++uniques;
      if (stats.frequency[r] < 2.0) ++risky_k2;
    }
    const EquivalenceClassStats classes = ComputeEquivalenceClasses(t, qis);
    rows.push_back({spec.name, std::to_string(spec.num_qi),
                    std::to_string(spec.num_tuples),
                    DistributionKindToString(spec.distribution),
                    spec.synthetic ? "Synth" : "Real-world/Realistic",
                    std::to_string(classes.num_classes), std::to_string(uniques),
                    std::to_string(risky_k2),
                    bench::Fmt(classes.mean_class_size, 1),
                    std::to_string(classes.max_class_size)});
  }
  bench::PrintTable("Figure 6: dataset corpus (regenerated, fixed seeds)",
                    {"Dataset", "No. Att.", "No. Tuples", "Dist.", "Data",
                     "classes", "sample uniques", "risky (k=2)", "mean |class|",
                     "max |class|"},
                    rows);
  std::printf("\nnote: the paper's real-world R25A4W is substituted by a synthetic\n"
              "fit of the I&G survey shape (see DESIGN.md, substitution table).\n");
  return 0;
}
