// Figure 1 + Section 2.2: the Inflation & Growth microdata fragment with its
// per-tuple re-identification and statistical disclosure risks. Checks the
// paper's worked numbers: max risk 1/30 at tuple 15, min 1/300 at tuple 7,
// tuple 4 unique on (North, Textiles, 1000+) with risk 1/60.

#include <cstdio>

#include "bench_util.h"
#include "core/suda.h"

int main() {
  using namespace vadasa;
  using namespace vadasa::core;

  const MicrodataTable t = Figure1Microdata();
  std::printf("%s", t.ToText(20).c_str());

  ReidentificationRisk reid;
  IndividualRisk individual;
  KAnonymityRisk kanon;
  SudaOptions suda_options;
  suda_options.max_search_size = 5;
  SudaRisk suda(suda_options);

  RiskContext ctx;
  ctx.k = 3;
  const auto r_reid = reid.ComputeRisks(t, ctx).value();
  const auto r_ind = individual.ComputeRisks(t, ctx).value();
  RiskContext kctx;
  kctx.k = 2;
  const auto r_kanon = kanon.ComputeRisks(t, kctx).value();
  const auto r_suda = suda.ComputeRisks(t, ctx).value();

  std::vector<std::vector<std::string>> rows;
  for (size_t r = 0; r < t.num_rows(); ++r) {
    rows.push_back({std::to_string(r + 1), bench::Fmt(t.RowWeight(r), 0),
                    bench::Fmt(r_reid[r], 4), bench::Fmt(r_ind[r], 4),
                    bench::Fmt(r_kanon[r], 0), bench::Fmt(r_suda[r], 0)});
  }
  bench::PrintTable("Figure 1: statistical disclosure risk per tuple",
                    {"tuple", "W", "re-id", "individual", "k-anon(k=2)", "SUDA(k=3)"},
                    rows);

  // The paper's reference points.
  std::printf("\npaper check: tuple 15 risk %.4f (expected 0.0333), tuple 7 risk %.4f "
              "(expected 0.0033), tuple 4 risk %.4f (expected 0.0166)\n",
              r_reid[14], r_reid[6], r_reid[3]);
  std::printf("explain(tuple 4):  %s\n",
              reid.Explain(t, ctx, 3, r_reid[3]).c_str());
  // The Section 4.2 worked example restricts the AnonSet to
  // {Area, Sector, Employees, Residential Rev.}: exactly 2 MSUs.
  RiskContext example_ctx;
  example_ctx.qi_columns = {1, 2, 3, 4};
  example_ctx.k = 3;
  std::printf("explain(tuple 20, example AnonSet): %s\n",
              suda.Explain(t, example_ctx, 19, 1.0).c_str());
  return 0;
}
