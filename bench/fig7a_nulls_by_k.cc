// Figure 7a: number of labelled nulls injected by the anonymization cycle as
// the k-anonymity threshold grows from 2 to 5, on R25A4W / R25A4U / R25A4V
// (T = 0.5, local suppression, less-significant-first routing,
// most-risky-first QI choice).
//
// Expected shape (paper): null count grows ~linearly with k; the real-world
// dataset needs < 50 nulls at k = 5, the unbalanced variants more (V >= U).

#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace vadasa;
  using namespace vadasa::core;

  std::vector<std::vector<std::string>> rows;
  for (const char* name : {"R25A4W", "R25A4U", "R25A4V"}) {
    auto spec = FindDataset(name);
    if (!spec.ok()) return 1;
    const MicrodataTable base = GenerateDataset(*spec);
    std::vector<std::string> row = {name};
    for (int k = 2; k <= 5; ++k) {
      const CycleStats stats =
          bench::RunStandardCycle(base, k, NullSemantics::kMaybeMatch);
      row.push_back(std::to_string(stats.nulls_injected));
    }
    rows.push_back(std::move(row));
  }
  bench::PrintTable("Figure 7a: nulls injected by k-anonymity threshold",
                    {"dataset", "k=2", "k=3", "k=4", "k=5"}, rows);
  std::printf("\nexpected shape: ~linear growth in k; W < 50 nulls at k=5; V >= U >= W.\n");
  return 0;
}
