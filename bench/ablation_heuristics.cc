// Ablation of the design choices DESIGN.md §5 calls out:
//   1. runtime heuristics (Section 4.4): tuple routing and QI choice
//      strategies vs the naive baselines — fewer nulls / less loss;
//   2. SUDA minimality pruning vs exhaustive combination enumeration;
//   3. paper-literal single-step cycle vs the batched default.

#include <chrono>
#include <cstdio>

#include "bench_util.h"
#include "core/suda.h"
#include "core/utility.h"

int main() {
  using namespace vadasa;
  using namespace vadasa::core;

  auto spec = FindDataset("R25A4U");
  if (!spec.ok()) return 1;
  const MicrodataTable base = GenerateDataset(*spec);

  // --- 1. Heuristics sweep. ---
  std::vector<std::vector<std::string>> rows;
  const struct {
    const char* label;
    TupleOrder order;
    QiChoice qi;
    bool single_step;
  } kConfigs[] = {
      {"less-significant + most-risky (paper)", TupleOrder::kLessSignificantFirst,
       QiChoice::kMostRiskyFirst, false},
      {"fifo + most-risky", TupleOrder::kFifo, QiChoice::kMostRiskyFirst, false},
      {"less-significant + first-applicable", TupleOrder::kLessSignificantFirst,
       QiChoice::kFirstApplicable, false},
      {"less-significant + rarest-value", TupleOrder::kLessSignificantFirst,
       QiChoice::kRarestValue, false},
      {"paper heuristics, single-step cycle", TupleOrder::kLessSignificantFirst,
       QiChoice::kMostRiskyFirst, true},
  };
  for (const auto& config : kConfigs) {
    MicrodataTable t = base;
    KAnonymityRisk risk;
    LocalSuppression anon;
    CycleOptions options;
    options.risk.k = 3;
    options.tuple_order = config.order;
    options.qi_choice = config.qi;
    options.single_step = config.single_step;
    AnonymizationCycle cycle(&risk, &anon, options);
    auto stats = cycle.Run(&t);
    if (!stats.ok()) return 1;
    // Data utility destroyed: total sampling weight of the touched tuples —
    // the quantity the "less significant first" routing minimizes.
    double suppressed_weight = 0.0;
    for (size_t r = 0; r < t.num_rows(); ++r) {
      for (const size_t c : t.QuasiIdentifierColumns()) {
        if (t.cell(r, c).is_null()) {
          suppressed_weight += t.RowWeight(r);
          break;
        }
      }
    }
    rows.push_back({config.label, std::to_string(stats->nulls_injected),
                    bench::Fmt(100.0 * stats->information_loss, 1) + "%",
                    bench::Fmt(suppressed_weight, 0),
                    std::to_string(stats->iterations),
                    bench::Fmt(stats->total_seconds, 2) + "s"});
  }
  bench::PrintTable("Ablation 1: routing heuristics (R25A4U, k=3, T=0.5)",
                    {"configuration", "nulls", "info loss", "suppressed weight",
                     "iterations", "time"},
                    rows);

  // --- 2. SUDA pruning (needs a wide AnonSet for the lattice to matter). ---
  rows.clear();
  const MicrodataTable wide =
      GenerateInflationGrowth("ablation-wide", 25000, 8,
                              DistributionKind::kRealWorld, 4242);
  for (const bool exhaustive : {false, true}) {
    SudaOptions suda_options;
    suda_options.exhaustive = exhaustive;
    suda_options.max_search_size = 6;
    SudaRisk suda(suda_options);
    RiskContext ctx;
    ctx.k = 3;
    const auto t0 = std::chrono::steady_clock::now();
    auto details = suda.ComputeDetails(wide, ctx);
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    if (!details.ok()) return 1;
    size_t msus = 0;
    for (const auto& m : details->msus) msus += m.size();
    rows.push_back({exhaustive ? "exhaustive" : "pruned (paper)",
                    std::to_string(details->combos_evaluated),
                    std::to_string(details->combos_pruned), std::to_string(msus),
                    bench::Fmt(secs, 3) + "s"});
  }
  bench::PrintTable("Ablation 2: SUDA minimality pruning (25k x 8 QIs W, sizes <= 6)",
                    {"mode", "combos evaluated", "combos pruned", "MSUs found", "time"},
                    rows);

  // --- 3. Anonymization methods. ---
  rows.clear();
  Hierarchy hierarchy;
  hierarchy.AddIntervalHierarchy("Employees", {"50-200", "201-1000", "1000+"});
  hierarchy.AddIntervalHierarchy("Residential Rev.", {"0-30", "30-60", "60-90", "90+"});
  LocalSuppression local;
  RecordSuppression record;
  RecodeThenSuppress recode(&hierarchy);
  const struct {
    const char* label;
    Anonymizer* anonymizer;
  } kMethods[] = {
      {"local suppression (paper default)", &local},
      {"record suppression", &record},
      {"global recoding, then suppression", &recode},
  };
  for (const auto& method : kMethods) {
    MicrodataTable t = base;
    KAnonymityRisk risk;
    CycleOptions options;
    options.risk.k = 3;
    AnonymizationCycle cycle(&risk, method.anonymizer, options);
    auto stats = cycle.Run(&t);
    if (!stats.ok()) return 1;
    auto utility = MeasureUtility(base, t);
    if (!utility.ok()) return 1;
    rows.push_back({method.label, std::to_string(stats->nulls_injected),
                    std::to_string(stats->cells_recoded),
                    bench::Fmt(utility->max_total_variation, 3),
                    bench::Fmt(stats->total_seconds, 2) + "s"});
  }
  bench::PrintTable(
      "Ablation 3: anonymization methods (R25A4U, k=3, T=0.5)",
      {"method", "nulls", "cells recoded", "max marginal TV", "time"}, rows);
  return 0;
}
