// Figure 7f: execution time by number of quasi-identifiers (datasets
// R50A4W-R50A9W, 50k tuples, real-world-like distribution) for individual
// risk, k-anonymity and SUDA.
//
// Expected shape (paper): individual risk and k-anonymity are only marginally
// affected by the number of quasi-identifiers (they group on the full
// combination); SUDA inspects combinations of at most k attributes, so it
// grows — but the minimality pruning preempts redundant combinations and no
// combinatorial blowup appears. Compare the "suda-exhaustive" series, which
// disables the pruning (the ablation of DESIGN.md §5.3).

#include <benchmark/benchmark.h>

#include <map>
#include <memory>

#include "bench_json.h"
#include "obs/trace.h"
#include "core/anonymize.h"
#include "core/cycle.h"
#include "core/datagen.h"
#include "core/suda.h"

namespace {

using namespace vadasa;
using namespace vadasa::core;

bench::JsonWriter* g_json = nullptr;

const MicrodataTable& CachedDataset(const std::string& name) {
  static std::map<std::string, MicrodataTable>* cache =
      new std::map<std::string, MicrodataTable>();
  auto it = cache->find(name);
  if (it == cache->end()) {
    auto spec = FindDataset(name);
    it = cache->emplace(name, GenerateDataset(*spec)).first;
  }
  return it->second;
}

void BM_CycleByQis(benchmark::State& state, const std::string& dataset,
                   const std::string& technique) {
  const MicrodataTable& base = CachedDataset(dataset);
  for (auto _ : state) {
    MicrodataTable table = base;
    std::unique_ptr<RiskMeasure> measure;
    if (technique == "suda") {
      measure = std::make_unique<SudaRisk>();
    } else if (technique == "suda-exhaustive") {
      SudaOptions suda_options;
      suda_options.exhaustive = true;
      measure = std::make_unique<SudaRisk>(suda_options);
    } else {
      measure = std::move(MakeRiskMeasure(technique).value());
    }
    LocalSuppression anon;
    CycleOptions options;
    options.threshold = 0.5;
    options.risk.k = technique.rfind("suda", 0) == 0 ? 3 : 2;
    if (technique == "individual") options.risk.posterior_draws = 32;
    AnonymizationCycle cycle(measure.get(), &anon, options);
    auto stats = cycle.Run(&table);
    if (!stats.ok()) {
      state.SkipWithError(stats.status().ToString().c_str());
      return;
    }
    state.SetIterationTime(stats->total_seconds);
    state.counters["RiskSeconds"] = stats->risk_eval_seconds;
    state.counters["Nulls"] = static_cast<double>(stats->nulls_injected);
    state.counters["QIs"] =
        static_cast<double>(base.QuasiIdentifierColumns().size());
    if (g_json != nullptr) {
      g_json->Add({{"dataset", dataset},
                   {"technique", technique},
                   {"qis", base.QuasiIdentifierColumns().size()},
                   {"tuples", base.num_rows()},
                   {"wall_seconds", stats->total_seconds},
                   {"risk_eval_seconds", stats->risk_eval_seconds},
                   {"iterations", stats->iterations},
                   {"nulls", stats->nulls_injected},
                   {"group_rebuilds", stats->group_rebuilds},
                   {"group_updates", stats->group_updates}});
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonWriter json = bench::JsonWriter::FromArgs("fig7f", &argc, argv);
  g_json = &json;
  const vadasa::obs::TraceArgs trace_args = vadasa::obs::ExtractTraceArgs(&argc, argv);
  if (trace_args.tracing_requested()) vadasa::obs::StartTracing();
  for (const char* dataset : {"R50A4W", "R50A5W", "R50A6W", "R50A8W", "R50A9W"}) {
    for (const char* technique :
         {"individual", "k-anonymity", "suda", "suda-exhaustive"}) {
      benchmark::RegisterBenchmark(
          (std::string("fig7f/") + dataset + "/" + technique).c_str(),
          [dataset, technique](benchmark::State& state) {
            BM_CycleByQis(state, dataset, technique);
          })
          ->Iterations(1)
          ->UseManualTime()
          ->Unit(benchmark::kMillisecond);
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!vadasa::obs::ExportRequested(trace_args)) return 1;
  return json.Flush() ? 0 : 1;
}
