// Figure 2: the attack strategy (blocking against the identity oracle along
// the quasi-identifiers, then matching) — executed against a raw release and
// against the Vada-SA anonymized release, showing how suppression blows up
// the blocking cohorts and defeats re-identification.

#include <cstdio>

#include "bench_util.h"
#include "core/attack.h"
#include "core/linkage.h"

int main() {
  using namespace vadasa;
  using namespace vadasa::core;

  IdentityOracle::Options oracle_options;
  oracle_options.population = 50000;
  oracle_options.num_qi = 4;
  oracle_options.distribution = DistributionKind::kUnbalanced;
  oracle_options.seed = 2021;
  const IdentityOracle oracle = IdentityOracle::Generate(oracle_options);
  auto sample = oracle.SampleMicrodata(2000, 66);
  if (!sample.ok()) {
    std::fprintf(stderr, "%s\n", sample.status().ToString().c_str());
    return 1;
  }
  std::printf("identity oracle: %zu entities; released microdata: %zu tuples\n",
              oracle.size(), sample->table.num_rows());

  const AttackResult raw = RunLinkageAttack(
      sample->table, sample->table.QuasiIdentifierColumns(), oracle, sample->truth, 1);

  MicrodataTable anonymized = sample->table;
  {
    KAnonymityRisk risk;
    LocalSuppression anon;
    CycleOptions options;
    options.risk.k = 2;
    AnonymizationCycle cycle(&risk, &anon, options);
    auto stats = cycle.Run(&anonymized);
    if (!stats.ok()) {
      std::fprintf(stderr, "%s\n", stats.status().ToString().c_str());
      return 1;
    }
    std::printf("anonymization: %zu risky tuples, %zu nulls injected, info loss %.3f\n",
                stats->initial_risky, stats->nulls_injected, stats->information_loss);
  }
  const AttackResult after = RunLinkageAttack(
      anonymized, anonymized.QuasiIdentifierColumns(), oracle, sample->truth, 1);

  bench::PrintTable(
      "Figure 2: record-linkage attack before/after anonymization",
      {"release", "attempted", "exact blocks", "avg block size", "re-identified",
       "success rate"},
      {{"raw", std::to_string(raw.attempted), std::to_string(raw.exact_blocks),
        bench::Fmt(raw.avg_block_size, 1), std::to_string(raw.reidentified),
        bench::Fmt(raw.success_rate, 4)},
       {"anonymized", std::to_string(after.attempted),
        std::to_string(after.exact_blocks), bench::Fmt(after.avg_block_size, 1),
        std::to_string(after.reidentified), bench::Fmt(after.success_rate, 4)}});
  std::printf("\nexpected shape: anonymized release has no exact blocks among the "
              "previously risky tuples, larger cohorts, lower success rate.\n");

  // Section 2.2: the real disclosure risk depends on the subset q̂ of
  // quasi-identifiers the attacker knows; the full-QI case is the upper
  // bound. Sweep the attacker's knowledge on both releases.
  std::vector<std::vector<std::string>> sweep_rows;
  for (const auto& [label, release] :
       std::vector<std::pair<std::string, const MicrodataTable*>>{
           {"raw", &sample->table}, {"anonymized", &anonymized}}) {
    auto sweep = SweepAttackerKnowledge(*release, oracle, sample->truth, 5);
    if (!sweep.ok()) {
      std::fprintf(stderr, "%s\n", sweep.status().ToString().c_str());
      return 1;
    }
    for (size_t known = 0; known < sweep->size(); ++known) {
      const LinkageResult& r = (*sweep)[known];
      sweep_rows.push_back({label, std::to_string(known + 1),
                            bench::Fmt(r.avg_block_size, 1),
                            std::to_string(r.correct), bench::Fmt(r.recall, 4)});
    }
  }
  bench::PrintTable(
      "Section 2.2: attack power by attacker knowledge (subset q̂ of QIs)",
      {"release", "QIs known", "avg block size", "re-identified", "recall"},
      sweep_rows);
  std::printf("\nexpected shape: blocks shrink and re-identifications grow with the\n"
              "attacker's knowledge; anonymization caps the full-knowledge case.\n");
  return 0;
}
