// Figure 5: local suppression with labelled nulls and global recoding on the
// 7-row example — reproducing the before/after tables including the
// frequency columns (1,2,2,2,2,1,1 -> 5,3,3,3,3,2,2).

#include <cstdio>

#include "bench_util.h"
#include "core/group_index.h"

namespace {

void PrintWithFrequencies(const vadasa::core::MicrodataTable& t, const char* title) {
  using namespace vadasa;
  using namespace vadasa::core;
  const auto qis = t.QuasiIdentifierColumns();
  const GroupStats stats = ComputeGroupStats(t, qis, NullSemantics::kMaybeMatch);
  std::vector<std::vector<std::string>> rows;
  for (size_t r = 0; r < t.num_rows(); ++r) {
    std::vector<std::string> row = {std::to_string(r + 1)};
    for (size_t c = 0; c < t.num_columns(); ++c) {
      row.push_back(t.cell(r, c).ToString());
    }
    row.push_back(bench::Fmt(stats.frequency[r], 0));
    rows.push_back(std::move(row));
  }
  std::vector<std::string> header = {"#"};
  for (const auto& a : t.attributes()) header.push_back(a.name);
  header.push_back("F");
  bench::PrintTable(title, header, rows);
}

}  // namespace

int main() {
  using namespace vadasa;
  using namespace vadasa::core;

  MicrodataTable t = Figure5Microdata();
  PrintWithFrequencies(t, "Figure 5a: original microdata DB");

  // Local suppression on tuple 1's Sector (the most-risky-first choice).
  LocalSuppression suppress;
  auto step = suppress.Apply(&t, 0, 2);
  if (!step.ok()) return 1;
  std::printf("\nstep: %s\n", step->ToString(t).c_str());

  // Global recoding of the geography: Milano/Torino -> North; Roma -> Center.
  Hierarchy h = Hierarchy::ItalianGeography();
  h.SetAttributeType("Area", "City");
  GlobalRecoding recode(&h);
  for (const size_t row : {5u, 6u, 1u}) {
    if (recode.CanApply(t, row, 1)) {
      auto s = recode.Apply(&t, row, 1);
      if (s.ok()) std::printf("step: %s\n", s->ToString(t).c_str());
    }
  }
  PrintWithFrequencies(t, "Figure 5b: after suppression + recoding");
  std::printf("\nexpected shape: tuple 1 now matches the whole Roma/Center block "
              "(F=5); tuples 6-7 collapse into one North group (F=2).\n");
  return 0;
}
