// Figure 4: the metadata dictionary (Attribute + Category tables) for the
// I&G microdata DB, with the Category facts produced by the Algorithm-1
// categorizer rather than hand-written — including the declarative run
// through the Vadalog engine.

#include <cstdio>

#include "core/categorize.h"
#include "core/datagen.h"
#include "core/vadalog_bridge.h"
#include "vadalog/engine.h"

int main() {
  using namespace vadasa;
  using namespace vadasa::core;

  MicrodataTable t = Figure1Microdata();
  // Forget the schema's categories; re-derive them from experience.
  for (const Attribute& a : std::vector<Attribute>(t.attributes())) {
    (void)t.SetCategory(a.name, AttributeCategory::kNonIdentifying);
  }
  AttributeCategorizer categorizer = AttributeCategorizer::WithDefaultExperience();
  MetadataDictionary dictionary;
  auto decisions = categorizer.CategorizeTable(&t, &dictionary);
  if (!decisions.ok()) {
    std::fprintf(stderr, "%s\n", decisions.status().ToString().c_str());
    return 1;
  }
  dictionary.IngestTable(t, /*include_categories=*/true);
  std::printf("%s\n", dictionary.ToText("I&G").c_str());

  std::printf("categorization decisions (Algorithm 1):\n");
  for (const auto& d : *decisions) {
    const std::string why =
        d.defaulted ? "[defaulted: no similar experience]"
                    : "[~ \"" + d.matched_entry + "\", sim " +
                          std::to_string(d.similarity).substr(0, 4) + "]";
    std::printf("  %-18s -> %-18s %s\n", d.attribute.c_str(),
                AttributeCategoryToString(d.category).c_str(), why.c_str());
  }

  // The same categorization as a reasoning task (Rule 1 existential + Rule 2
  // similarity borrow + Rule 3 feedback + Rule 4 EGD).
  vadalog::Engine engine;
  VadalogBridge bridge;
  bridge.RegisterExternals(&engine, nullptr);
  vadalog::Database db;
  for (const Attribute& a : t.attributes()) {
    db.AddFact("att", {Value::String("I&G"), Value::String(a.name)});
  }
  for (const auto& [name, cat] :
       std::vector<std::pair<std::string, std::string>>{
           {"id", "Identifier"},
           {"area", "Quasi-identifier"},
           {"sector", "Quasi-identifier"},
           {"employees", "Quasi-identifier"},
           {"residential revenue", "Quasi-identifier"},
           {"export revenue", "Quasi-identifier"},
           {"growth", "Non-identifying"},
           {"sampling weight", "Sampling Weight"}}) {
    db.AddFact("expbase", {Value::String(name), Value::String(cat)});
  }
  auto stats = vadalog::RunSource(VadalogBridge::CategorizationProgram(), &db, &engine);
  if (!stats.ok()) {
    std::fprintf(stderr, "%s\n", stats.status().ToString().c_str());
    return 1;
  }
  std::printf("\ndeclarative run (Vadalog engine, %zu facts derived, %zu EGD "
              "unifications):\n%s",
              stats->facts_derived, stats->egd_substitutions,
              db.DumpPredicate("cat").c_str());
  return 0;
}
