#!/usr/bin/env python3
"""Smoke-test client for vadasa_serve (docs/serving.md).

Default mode drives the full smoke scenario CI runs: N concurrent clients
submit anonymize + risk jobs over one shared dataset, every job must come
back "done", all anonymize jobs must return byte-identical CSVs, and the
metrics endpoint must expose the serve.* namespace. With --expect-csv the
released bytes are also compared against a reference file (produced by
`vadasa anonymize`).

Telemetry checks (docs/observability.md): every response must echo a 16-hex
"trace_id", every job result must report the trace id of its submit request
as "job_trace_id" plus queued_ns/run_ns timings, and {"op":"telemetry"} is
scraped MID-LOAD — while jobs are still in flight — and its Prometheus
exposition validated line-by-line (# TYPE headers, name alphabet, numeric
samples, the labelled per-op latency family).

With --raw it is a plain NDJSON pipe instead: requests are read from stdin
one JSON object per line, responses are printed to stdout — the minimal
reference client.

With --chaos the server is expected to be running with VADASA_FAILPOINTS
armed (docs/robustness.md), so individual submits may be rejected and jobs
may fail — that is the point. The checks weaken from "everything succeeds"
to "nothing corrupts": every response must still be one well-formed JSON
line with an "ok" bool and a 16-hex trace_id, rejections must carry an
"error", every accepted job must reach a terminal state, all successful
anonymize jobs must still release byte-identical CSVs, and the telemetry
scrape must still parse. The SIGTERM/drain check rides in CI around this
script: the workflow signals the server afterwards and asserts exit 0
within the drain budget.

With --load N it is a load harness instead (docs/serving.md): N requests
against one dataset, half "hot" (one fixed policy, so after the first fill
every request is a result-cache hit) and half "cold" (a unique seed per
request busts the cache key while computing identical work). It reports
throughput plus hot/cold p50/p99 latencies, optionally writes them as JSON
(--json-out), compares wall time against a committed baseline with a slack
ratio (--baseline/--max-ratio), and asserts the cache actually pays
(--min-cache-speedup: cold p50 must be at least that multiple of hot p50).

Endpoints: --socket accepts a bare Unix socket path, unix:PATH, or
tcp:HOST:PORT — the same spellings as vadasa_serve --listen.

Exit codes: 0 success, 1 any check failed.
"""

import argparse
import concurrent.futures
import json
import re
import socket
import statistics
import sys
import time


def connect(endpoint, timeout):
    """Opens a socket to a bare unix path, unix:PATH, or tcp:HOST:PORT."""
    if endpoint.startswith("tcp:"):
        host, _, port = endpoint[4:].rpartition(":")
        if host in ("", "0.0.0.0", "localhost"):
            host = "127.0.0.1"
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.settimeout(timeout)
        sock.connect((host, int(port)))
        return sock
    path = endpoint[5:] if endpoint.startswith("unix:") else endpoint
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    sock.settimeout(timeout)
    sock.connect(path)
    return sock


def request(endpoint, payload, timeout=120.0, raw=False):
    """One connection, one request line, one response line. `raw` sends the
    payload string verbatim (chaos mode's malformed-line probe)."""
    line = payload if raw else json.dumps(payload)
    with connect(endpoint, timeout) as sock:
        sock.sendall((line + "\n").encode())
        buf = b""
        while b"\n" not in buf:
            chunk = sock.recv(65536)
            if not chunk:
                break
            buf += chunk
    return json.loads(buf.split(b"\n", 1)[0].decode())


def fail(message):
    print(f"serve_smoke: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


TRACE_RE = re.compile(r"^[0-9a-f]{16}$")


PROTOCOL_VERSION = 2


def check_trace(response, context):
    """Every protocol response echoes a non-zero 16-hex trace_id and states
    the server's protocol version as "v" (docs/serving.md: v2 added the
    apply_delta verb; ok and error lines both carry it)."""
    trace = response.get("trace_id", "")
    if not TRACE_RE.match(trace) or trace == "0" * 16:
        fail(f"{context}: bad trace_id {trace!r} in {response}")
    if response.get("v") != PROTOCOL_VERSION:
        fail(f"{context}: response does not state protocol v{PROTOCOL_VERSION}: "
             f"{response}")
    return trace


# Prometheus text exposition 0.0.4: `# TYPE <name> <kind>` headers, sample
# lines `name{labels} value`. Names use [a-zA-Z_:][a-zA-Z0-9_:]*.
PROM_TYPE_RE = re.compile(r"^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) "
                          r"(counter|gauge|summary|histogram|untyped)$")
PROM_SAMPLE_RE = re.compile(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)"
                            r'(\{[a-zA-Z0-9_]+="[^"]*"'
                            r'(,[a-zA-Z0-9_]+="[^"]*")*\})? (\S+)$')


def check_prometheus(text):
    """Validates exposition line-by-line; returns the declared families."""
    families = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line or line.startswith("# HELP"):
            continue
        if line.startswith("#"):
            m = PROM_TYPE_RE.match(line)
            if not m:
                fail(f"prometheus line {lineno}: bad comment {line!r}")
            families[m.group(1)] = m.group(2)
            continue
        m = PROM_SAMPLE_RE.match(line)
        if not m:
            fail(f"prometheus line {lineno}: unparsable sample {line!r}")
        name = m.group(1)
        # _sum/_count/_min/_max belong to the base family's TYPE header.
        base = re.sub(r"_(sum|count|min|max)$", "", name)
        if name not in families and base not in families:
            fail(f"prometheus line {lineno}: sample {name} has no # TYPE")
        try:
            float(m.group(4))
        except ValueError:
            fail(f"prometheus line {lineno}: non-numeric value {line!r}")
    if not families:
        fail("prometheus exposition declared no families")
    return families


def check_telemetry(sock_path):
    """Scrapes {"op":"telemetry"} and validates exposition + time series."""
    telemetry = request(sock_path, {"op": "telemetry"})
    if not telemetry.get("ok"):
        fail(f"telemetry op failed: {telemetry}")
    check_trace(telemetry, "telemetry")
    families = check_prometheus(telemetry.get("prometheus", ""))
    for needed in ("vadasa_serve_submitted", "vadasa_serve_queue_depth",
                   "vadasa_serve_op_latency_ms"):
        if needed not in families:
            fail(f"prometheus missing family {needed} "
                 f"(have {sorted(families)})")
    if 'vadasa_serve_op_latency_ms{op="submit",quantile="0.5"}' not in \
            telemetry["prometheus"]:
        fail("per-op latency family has no op=\"submit\" series")
    series = telemetry.get("series")
    if not isinstance(series, dict):
        fail(f"telemetry has no series block: {telemetry}")
    count = series.get("count", -1)
    columns = ("t_ms", "queue_depth", "running", "workers", "rss_mb",
               "metric_count")
    for column in columns:
        values = series.get(column)
        if not isinstance(values, list) or len(values) != count:
            fail(f"series column {column} misaligned: "
                 f"{len(values) if isinstance(values, list) else values} "
                 f"values for count={count}")
    return families


def check_wellformed(response, context):
    """Chaos-mode floor: ok bool, trace id, and an error string on failure."""
    if not isinstance(response, dict) or not isinstance(response.get("ok"), bool):
        fail(f"{context}: malformed response {response!r}")
    check_trace(response, context)
    if not response["ok"] and not response.get("error"):
        fail(f"{context}: rejection without an error message: {response}")


def percentile(samples, q):
    """Nearest-rank percentile of a non-empty sample list."""
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[rank]


def load_main(args):
    """Load harness: a hot/cold request mix that measures what the result
    cache buys and gates the serving stack's wall time against a baseline."""
    ping = request(args.socket, {"op": "ping"})
    if not ping.get("ok"):
        fail(f"ping failed: {ping}")

    # Anonymize, not risk: a full suppression cycle is compute-heavy enough
    # that a cache hit (serialize-only) is an order of magnitude faster than
    # the cold run, which is exactly the contrast this harness gates on.
    hot = {"op": "submit", "dataset": args.dataset, "action": "anonymize",
           "k": args.k}

    def run_one(submit_payload):
        """Submit + result on fresh connections; returns (seconds, cached)."""
        start = time.monotonic()
        submitted = request(args.socket, submit_payload)
        if not submitted.get("ok"):
            fail(f"load submit rejected: {submitted}")
        result = request(args.socket, {"op": "result", "id": submitted["id"]})
        elapsed = time.monotonic() - start
        if not result.get("ok") or result.get("state") != "done":
            fail(f"load job {submitted['id']} did not finish: {result}")
        return elapsed, bool(result.get("cached"))

    # Warmup fill: the first hot request is the one legitimate miss.
    warm_seconds, warm_cached = run_one(hot)
    if warm_cached:
        fail("warmup request hit a cache that should have been empty")

    hot_ms, cold_ms = [], []
    wall_start = time.monotonic()
    for i in range(args.load):
        if i % 2 == 0:
            seconds, cached = run_one(hot)
            if not cached:
                fail(f"hot request {i} missed the result cache after warmup")
            hot_ms.append(seconds * 1000.0)
        else:
            # A unique seed mints a unique policy key: guaranteed miss, same
            # computation as the hot policy (seed is unused by this measure).
            cold = dict(hot, seed=1000 + i)
            seconds, cached = run_one(cold)
            if cached:
                fail(f"cold request {i} (unique seed) claimed a cache hit")
            cold_ms.append(seconds * 1000.0)
    wall_seconds = time.monotonic() - wall_start

    report = {
        "bench": "serve_load",
        "requests": args.load,
        "wall_seconds": wall_seconds,
        "throughput_rps": args.load / wall_seconds if wall_seconds > 0 else 0.0,
        "hot_p50_ms": percentile(hot_ms, 0.50),
        "hot_p99_ms": percentile(hot_ms, 0.99),
        "cold_p50_ms": percentile(cold_ms, 0.50),
        "cold_p99_ms": percentile(cold_ms, 0.99),
        "warmup_ms": warm_seconds * 1000.0,
    }
    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as out:
            json.dump(report, out, indent=2)
            out.write("\n")

    speedup = report["cold_p50_ms"] / max(report["hot_p50_ms"], 1e-9)
    print(f"serve_smoke: load — {args.load} requests in "
          f"{wall_seconds:.2f}s ({report['throughput_rps']:.1f} rps); "
          f"hot p50 {report['hot_p50_ms']:.2f}ms p99 "
          f"{report['hot_p99_ms']:.2f}ms; cold p50 "
          f"{report['cold_p50_ms']:.2f}ms p99 {report['cold_p99_ms']:.2f}ms; "
          f"cache speedup {speedup:.1f}x")

    if args.min_cache_speedup > 0 and speedup < args.min_cache_speedup:
        fail(f"cache speedup {speedup:.1f}x below the "
             f"--min-cache-speedup {args.min_cache_speedup:g}x bar")
    if args.baseline:
        with open(args.baseline, encoding="utf-8") as ref:
            baseline = json.load(ref)
        # Same shared-runner slack philosophy as perf_smoke: wall time is the
        # stable aggregate; per-request percentiles are too noisy to gate.
        scale = args.load / max(baseline.get("requests", args.load), 1)
        budget = baseline["wall_seconds"] * scale * args.max_ratio
        if wall_seconds > budget:
            fail(f"wall {wall_seconds:.2f}s exceeds {args.max_ratio:g}x the "
                 f"committed baseline ({baseline['wall_seconds']:.2f}s for "
                 f"{baseline.get('requests')} requests => budget "
                 f"{budget:.2f}s)")
        print(f"serve_smoke: OK (load) — within {args.max_ratio:g}x of the "
              f"baseline ({wall_seconds:.2f}s <= {budget:.2f}s)")
    else:
        print("serve_smoke: OK (load)")


def chaos_main(args):
    """Faulted-server sweep: responses stay well-formed, no result corrupts."""
    ping = request(args.socket, {"op": "ping"})
    check_wellformed(ping, "ping")
    if not ping["ok"]:
        fail(f"ping rejected: {ping}")

    accepted, rejected = [], 0
    for j in range(args.jobs):
        action = "anonymize" if j % 2 == 0 else "risk"
        response = request(args.socket,
                           {"op": "submit", "dataset": args.dataset,
                            "action": action, "k": args.k})
        check_wellformed(response, f"chaos submit {j}")
        if response["ok"]:
            accepted.append((action, response["id"]))
        else:
            rejected += 1

    csvs = set()
    done = failed = 0
    for action, job_id in accepted:
        result = request(args.socket, {"op": "result", "id": job_id})
        check_wellformed(result, f"chaos result {job_id}")
        if not result["ok"]:
            fail(f"accepted job {job_id} lost by the scheduler: {result}")
        state = result.get("state")
        if state == "done":
            done += 1
            if action == "anonymize":
                csvs.add(result["csv"])
        elif state in ("failed", "cancelled", "expired"):
            failed += 1  # Injected faults land here; that is fine.
        else:
            fail(f"job {job_id} in non-terminal state {state!r}: {result}")

    if len(csvs) > 1:
        fail(f"{len(csvs)} distinct releases across identical jobs under "
             f"faults (corruption — want at most 1)")

    # Unknown ids and garbage must still come back as structured errors.
    unknown = request(args.socket, {"op": "status", "id": 2**53})
    check_wellformed(unknown, "chaos unknown-id")
    if unknown["ok"]:
        fail(f"status of an unknown id claimed ok: {unknown}")
    garbled = request(args.socket, "{definitely not json", raw=True)
    check_wellformed(garbled, "chaos garbled line")
    if garbled["ok"]:
        fail(f"garbled request claimed ok: {garbled}")

    check_telemetry(args.socket)  # The scrape must survive armed faults too.

    print(f"serve_smoke: OK (chaos) — {args.jobs} submits: {len(accepted)} "
          f"accepted ({done} done, {failed} faulted), {rejected} rejected; "
          f"all responses well-formed")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--socket", required=True,
                        help="endpoint: unix socket path, unix:PATH, or "
                             "tcp:HOST:PORT")
    parser.add_argument("--dataset", help="CSV path to submit jobs against")
    parser.add_argument("--jobs", type=int, default=8, help="concurrent jobs")
    parser.add_argument("--k", type=int, default=2)
    parser.add_argument("--load", type=int, default=0,
                        help="load-harness mode: this many hot/cold requests")
    parser.add_argument("--json-out", help="write the load report as JSON")
    parser.add_argument("--baseline",
                        help="committed load baseline JSON to gate against")
    parser.add_argument("--max-ratio", type=float, default=2.0,
                        help="wall-time slack multiple over the baseline")
    parser.add_argument("--min-cache-speedup", type=float, default=0.0,
                        help="require cold p50 >= this multiple of hot p50")
    parser.add_argument("--expect-csv", help="reference release CSV to compare against")
    parser.add_argument("--shutdown", action="store_true",
                        help="send {\"op\":\"shutdown\"} at the end")
    parser.add_argument("--raw", action="store_true",
                        help="pipe NDJSON requests from stdin instead")
    parser.add_argument("--chaos", action="store_true",
                        help="faulted-server mode: jobs may fail, but every "
                             "response must stay well-formed and successful "
                             "releases identical (docs/robustness.md)")
    args = parser.parse_args()

    if args.raw:
        for line in sys.stdin:
            line = line.strip()
            if line:
                print(json.dumps(request(args.socket, json.loads(line))))
        return

    if not args.dataset:
        fail("--dataset is required outside --raw mode")

    if args.load > 0:
        load_main(args)
        return

    if args.chaos:
        chaos_main(args)
        return

    ping = request(args.socket, {"op": "ping"})
    if not ping.get("ok"):
        fail("ping failed")
    check_trace(ping, "ping")

    # Half anonymize, half risk, all over the same dataset + policy so the
    # scheduler's warmup coalescing path is exercised too. All jobs are
    # submitted up front so the telemetry scrape below happens mid-load,
    # while the scheduler still has queued/running work.
    submits = []
    for j in range(args.jobs):
        action = "anonymize" if j % 2 == 0 else "risk"
        submits.append({"op": "submit", "dataset": args.dataset,
                        "action": action, "k": args.k, "priority": j % 3})
    submitted = [request(args.socket, s) for s in submits]
    for s, response in zip(submits, submitted):
        if not response.get("ok"):
            fail(f"submit {s} -> {response}")
        check_trace(response, "submit")

    check_telemetry(args.socket)  # Mid-load: jobs are still in flight.

    with concurrent.futures.ThreadPoolExecutor(max_workers=args.jobs) as pool:
        results = list(pool.map(
            lambda r: request(args.socket, {"op": "result", "id": r["id"]}),
            submitted))

    csvs = set()
    for submit, accepted, result in zip(submits, submitted, results):
        if not result.get("ok") or result.get("state") != "done":
            fail(f"job {submit} -> {result}")
        check_trace(result, "result")
        # The job reports the trace of the request that submitted it, plus
        # nanosecond queue/run timings from the scheduler.
        if result.get("job_trace_id") != accepted["trace_id"]:
            fail(f"job_trace_id {result.get('job_trace_id')!r} != submit "
                 f"trace {accepted['trace_id']!r}")
        # A result-cache hit completes at admission: it legitimately reports
        # zero queue/run time (and "cached": true). Cold runs must not.
        if result.get("cached"):
            if result.get("run_ns", -1) != 0:
                fail(f"cached result claims nonzero run_ns: {result}")
        elif result.get("queued_ns", -1) < 0 or result.get("run_ns", 0) <= 0:
            fail(f"missing queued_ns/run_ns in {result}")
        if submit["action"] == "anonymize":
            csvs.add(result["csv"])
            if not result.get("audit"):
                fail("anonymize result has no audit")
        else:
            risks = result["risk"]["tuple_risks"]
            if not risks or any(not 0.0 <= r <= 1.0 for r in risks):
                fail(f"bad tuple_risks: {risks[:5]}...")
    if len(csvs) != 1:
        fail(f"{len(csvs)} distinct releases across identical jobs (want 1)")
    if args.expect_csv:
        with open(args.expect_csv, encoding="utf-8") as ref:
            if csvs.pop() != ref.read():
                fail("release differs from the vadasa_cli reference")
        csvs = set()

    metrics = request(args.socket, {"op": "metrics"})
    if not metrics.get("ok"):
        fail("metrics op failed")
    serve_keys = [k for k in metrics["metrics"] if k.startswith("serve.")]
    for needed in ("serve.submitted", "serve.completed", "serve.queue_depth"):
        if needed not in metrics["metrics"]:
            fail(f"missing metric {needed} (have {serve_keys})")

    families = check_telemetry(args.socket)  # Post-load scrape still valid.

    if args.shutdown and not request(args.socket, {"op": "shutdown"}).get("ok"):
        fail("shutdown op failed")

    print(f"serve_smoke: OK — {args.jobs} jobs done, "
          f"{len(serve_keys)} serve.* metrics, "
          f"{len(families)} prometheus families")


if __name__ == "__main__":
    main()
