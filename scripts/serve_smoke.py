#!/usr/bin/env python3
"""Smoke-test client for vadasa_serve (docs/serving.md).

Default mode drives the full smoke scenario CI runs: N concurrent clients
submit anonymize + risk jobs over one shared dataset, every job must come
back "done", all anonymize jobs must return byte-identical CSVs, and the
metrics endpoint must expose the serve.* namespace. With --expect-csv the
released bytes are also compared against a reference file (produced by
`vadasa anonymize`).

With --raw it is a plain NDJSON pipe instead: requests are read from stdin
one JSON object per line, responses are printed to stdout — the minimal
reference client.

Exit codes: 0 success, 1 any check failed.
"""

import argparse
import concurrent.futures
import json
import socket
import sys


def request(sock_path, payload, timeout=120.0):
    """One connection, one request line, one response line."""
    with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sock:
        sock.settimeout(timeout)
        sock.connect(sock_path)
        sock.sendall((json.dumps(payload) + "\n").encode())
        buf = b""
        while b"\n" not in buf:
            chunk = sock.recv(65536)
            if not chunk:
                break
            buf += chunk
    return json.loads(buf.split(b"\n", 1)[0].decode())


def run_job(sock_path, submit):
    submitted = request(sock_path, submit)
    if not submitted.get("ok"):
        return submitted
    return request(sock_path, {"op": "result", "id": submitted["id"]})


def fail(message):
    print(f"serve_smoke: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--socket", required=True, help="vadasa_serve socket path")
    parser.add_argument("--dataset", help="CSV path to submit jobs against")
    parser.add_argument("--jobs", type=int, default=8, help="concurrent jobs")
    parser.add_argument("--k", type=int, default=2)
    parser.add_argument("--expect-csv", help="reference release CSV to compare against")
    parser.add_argument("--shutdown", action="store_true",
                        help="send {\"op\":\"shutdown\"} at the end")
    parser.add_argument("--raw", action="store_true",
                        help="pipe NDJSON requests from stdin instead")
    args = parser.parse_args()

    if args.raw:
        for line in sys.stdin:
            line = line.strip()
            if line:
                print(json.dumps(request(args.socket, json.loads(line))))
        return

    if not args.dataset:
        fail("--dataset is required outside --raw mode")

    if not request(args.socket, {"op": "ping"}).get("ok"):
        fail("ping failed")

    # Half anonymize, half risk, all over the same dataset + policy so the
    # scheduler's warmup coalescing path is exercised too.
    submits = []
    for j in range(args.jobs):
        action = "anonymize" if j % 2 == 0 else "risk"
        submits.append({"op": "submit", "dataset": args.dataset,
                        "action": action, "k": args.k, "priority": j % 3})
    with concurrent.futures.ThreadPoolExecutor(max_workers=args.jobs) as pool:
        results = list(pool.map(lambda s: run_job(args.socket, s), submits))

    csvs = set()
    for submit, result in zip(submits, results):
        if not result.get("ok") or result.get("state") != "done":
            fail(f"job {submit} -> {result}")
        if submit["action"] == "anonymize":
            csvs.add(result["csv"])
            if not result.get("audit"):
                fail("anonymize result has no audit")
        else:
            risks = result["risk"]["tuple_risks"]
            if not risks or any(not 0.0 <= r <= 1.0 for r in risks):
                fail(f"bad tuple_risks: {risks[:5]}...")
    if len(csvs) != 1:
        fail(f"{len(csvs)} distinct releases across identical jobs (want 1)")
    if args.expect_csv:
        with open(args.expect_csv, encoding="utf-8") as ref:
            if csvs.pop() != ref.read():
                fail("release differs from the vadasa_cli reference")
        csvs = set()

    metrics = request(args.socket, {"op": "metrics"})
    if not metrics.get("ok"):
        fail("metrics op failed")
    serve_keys = [k for k in metrics["metrics"] if k.startswith("serve.")]
    for needed in ("serve.submitted", "serve.completed", "serve.queue_depth"):
        if needed not in metrics["metrics"]:
            fail(f"missing metric {needed} (have {serve_keys})")

    if args.shutdown and not request(args.socket, {"op": "shutdown"}).get("ok"):
        fail("shutdown op failed")

    print(f"serve_smoke: OK — {args.jobs} jobs done, "
          f"{len(serve_keys)} serve.* metrics")


if __name__ == "__main__":
    main()
