#!/usr/bin/env python3
"""CI perf-smoke gate: compare a fresh fig7e --json run against the
committed baseline and fail on a >2x wall-clock regression.

Usage:
    perf_smoke.py --baseline bench/baselines/BENCH_fig7e.json \
                  --current fig7e-smoke.json [--max-ratio 2.0]

Only records present in BOTH files are compared (the smoke run covers the
small 6k/12k datasets; the baseline also holds the big sweep points). The
threshold is deliberately loose — 2x absorbs shared-runner noise while still
catching an accidental O(n) -> O(n^2) slip or a plane misconfiguration.
Sub-10ms rows are skipped: at that scale timer and scheduler jitter dwarf
any real signal.
"""

import argparse
import json
import sys


def load_records(path):
    with open(path) as f:
        doc = json.load(f)
    return {(r["dataset"], r["technique"]): r for r in doc["records"]}


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--current", required=True)
    parser.add_argument("--max-ratio", type=float, default=2.0)
    parser.add_argument("--min-seconds", type=float, default=0.01,
                        help="skip rows whose baseline wall time is below "
                             "this (pure noise on shared runners)")
    args = parser.parse_args()

    baseline = load_records(args.baseline)
    current = load_records(args.current)
    shared = sorted(set(baseline) & set(current))
    if not shared:
        print("perf-smoke: no overlapping (dataset, technique) records", file=sys.stderr)
        return 2

    failures = []
    for key in shared:
        base = baseline[key]["wall_seconds"]
        now = current[key]["wall_seconds"]
        if base < args.min_seconds:
            print(f"  {key[0]}/{key[1]}: baseline {base:.4f}s below noise floor, skipped")
            continue
        ratio = now / base
        marker = "FAIL" if ratio > args.max_ratio else "ok"
        print(f"  {key[0]}/{key[1]}: {base:.4f}s -> {now:.4f}s ({ratio:.2f}x) {marker}")
        if ratio > args.max_ratio:
            failures.append((key, ratio))

    if failures:
        print(f"perf-smoke: {len(failures)} row(s) regressed beyond "
              f"{args.max_ratio}x the committed baseline", file=sys.stderr)
        return 1
    print(f"perf-smoke: {len(shared)} row(s) within {args.max_ratio}x — OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
