#!/usr/bin/env python3
"""CI perf-smoke gate: compare a fresh fig7e --json run against the
committed baseline and fail on a >2x wall-clock regression.

Usage:
    perf_smoke.py --baseline bench/baselines/BENCH_fig7e.json \
                  --current fig7e-smoke.json [--max-ratio 2.0]

Only records present in BOTH files are compared (the smoke run covers the
small 6k/12k datasets; the baseline also holds the big sweep points). The
threshold is deliberately loose — 2x absorbs shared-runner noise while still
catching an accidental O(n) -> O(n^2) slip or a plane misconfiguration.
Sub-10ms rows are skipped: at that scale timer and scheduler jitter dwarf
any real signal.

Sampler-overhead mode (docs/observability.md):

    perf_smoke.py --overhead-on with-sampler.json \
                  --overhead-off without-sampler.json

compares the summed wall time of the same bench run with the telemetry
sampler on (default --sample-ms) vs off (--sample-ms=0) and fails when the
sampler costs more than --overhead-max-pct of wall time beyond an absolute
noise floor (--overhead-floor-s) — the "<1% overhead" contract.
"""

import argparse
import json
import sys


def load_records(path):
    with open(path) as f:
        doc = json.load(f)
    return {(r["dataset"], r["technique"]): r for r in doc["records"]}


def check_overhead(args):
    on = load_records(args.overhead_on)
    off = load_records(args.overhead_off)
    shared = sorted(set(on) & set(off))
    if not shared:
        print("perf-smoke: no overlapping records in overhead runs", file=sys.stderr)
        return 2
    on_total = sum(on[k]["wall_seconds"] for k in shared)
    off_total = sum(off[k]["wall_seconds"] for k in shared)
    delta = on_total - off_total
    budget = max(args.overhead_floor_s,
                 off_total * args.overhead_max_pct / 100.0)
    print(f"perf-smoke: sampler overhead over {len(shared)} row(s): "
          f"{off_total:.4f}s off -> {on_total:.4f}s on "
          f"(delta {delta:+.4f}s, budget {budget:.4f}s)")
    if delta > budget:
        print(f"perf-smoke: telemetry sampler costs {delta:.4f}s > "
              f"budget {budget:.4f}s "
              f"({args.overhead_max_pct}% of wall, floor "
              f"{args.overhead_floor_s}s)", file=sys.stderr)
        return 1
    print("perf-smoke: sampler overhead within budget — OK")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline")
    parser.add_argument("--current")
    parser.add_argument("--max-ratio", type=float, default=2.0)
    parser.add_argument("--min-seconds", type=float, default=0.01,
                        help="skip rows whose baseline wall time is below "
                             "this (pure noise on shared runners)")
    parser.add_argument("--overhead-on",
                        help="bench --json output with the sampler enabled")
    parser.add_argument("--overhead-off",
                        help="bench --json output with --sample-ms=0")
    parser.add_argument("--overhead-max-pct", type=float, default=1.0)
    parser.add_argument("--overhead-floor-s", type=float, default=0.05,
                        help="absolute slack absorbing scheduler jitter on "
                             "runs too short for a stable percentage")
    args = parser.parse_args()

    if bool(args.overhead_on) != bool(args.overhead_off):
        parser.error("--overhead-on and --overhead-off go together")
    if args.overhead_on:
        return check_overhead(args)
    if not args.baseline or not args.current:
        parser.error("--baseline and --current are required outside "
                     "overhead mode")

    baseline = load_records(args.baseline)
    current = load_records(args.current)
    shared = sorted(set(baseline) & set(current))
    if not shared:
        print("perf-smoke: no overlapping (dataset, technique) records", file=sys.stderr)
        return 2

    failures = []
    for key in shared:
        base = baseline[key]["wall_seconds"]
        now = current[key]["wall_seconds"]
        if base < args.min_seconds:
            print(f"  {key[0]}/{key[1]}: baseline {base:.4f}s below noise floor, skipped")
            continue
        ratio = now / base
        marker = "FAIL" if ratio > args.max_ratio else "ok"
        print(f"  {key[0]}/{key[1]}: {base:.4f}s -> {now:.4f}s ({ratio:.2f}x) {marker}")
        if ratio > args.max_ratio:
            failures.append((key, ratio))

    if failures:
        print(f"perf-smoke: {len(failures)} row(s) regressed beyond "
              f"{args.max_ratio}x the committed baseline", file=sys.stderr)
        return 1
    print(f"perf-smoke: {len(shared)} row(s) within {args.max_ratio}x — OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
