#include "api/flags.h"

#include <cerrno>
#include <cstdlib>

namespace vadasa::api {

namespace {

/// Full-consumption strtol: "12x", "", " 12" all fail.
Result<long> ParseLong(const std::string& text) {
  if (text.empty()) return Status::InvalidArgument("empty integer");
  errno = 0;
  char* end = nullptr;
  const long value = std::strtol(text.c_str(), &end, 10);
  if (errno == ERANGE) return Status::InvalidArgument("integer out of range");
  if (end == nullptr || *end != '\0' || end == text.c_str()) {
    return Status::InvalidArgument("not an integer");
  }
  return value;
}

Result<double> ParseDouble(const std::string& text) {
  if (text.empty()) return Status::InvalidArgument("empty number");
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (errno == ERANGE) return Status::InvalidArgument("number out of range");
  if (end == nullptr || *end != '\0' || end == text.c_str()) {
    return Status::InvalidArgument("not a number");
  }
  return value;
}

}  // namespace

FlagParser& FlagParser::Bool(const std::string& name, const std::string& help) {
  specs_[name] = {Kind::kBool, help, 0, 0, 0.0, 0.0};
  order_.push_back(name);
  return *this;
}

FlagParser& FlagParser::String(const std::string& name, const std::string& help) {
  specs_[name] = {Kind::kString, help, 0, 0, 0.0, 0.0};
  order_.push_back(name);
  return *this;
}

FlagParser& FlagParser::Path(const std::string& name, const std::string& help) {
  specs_[name] = {Kind::kPath, help, 0, 0, 0.0, 0.0};
  order_.push_back(name);
  return *this;
}

FlagParser& FlagParser::Int(const std::string& name, const std::string& help,
                            long min_value, long max_value) {
  specs_[name] = {Kind::kInt, help, min_value, max_value, 0.0, 0.0};
  order_.push_back(name);
  return *this;
}

FlagParser& FlagParser::Double(const std::string& name, const std::string& help,
                               double min_value, double max_value) {
  specs_[name] = {Kind::kDouble, help, 0, 0, min_value, max_value};
  order_.push_back(name);
  return *this;
}

std::string FlagParser::Help(const std::string& indent) const {
  std::string out;
  for (const std::string& name : order_) {
    const Spec& spec = specs_.at(name);
    out += indent + "--" + name;
    switch (spec.kind) {
      case Kind::kBool: break;
      case Kind::kString:
      case Kind::kPath: out += "=VALUE"; break;
      case Kind::kInt:
        out += "=N (" + std::to_string(spec.int_min) + ".." +
               std::to_string(spec.int_max) + ")";
        break;
      case Kind::kDouble:
        out += "=X [" + std::to_string(spec.double_min) + ", " +
               std::to_string(spec.double_max) + "]";
        break;
    }
    out += "  " + spec.help + "\n";
  }
  return out;
}

Status FlagParser::ValidateValue(const std::string& name, const Spec& spec,
                                 const std::string& value) const {
  switch (spec.kind) {
    case Kind::kBool:
      return Status::InvalidArgument("flag --" + name + " takes no value");
    case Kind::kString:
      return Status::OK();
    case Kind::kPath:
      if (value.empty()) {
        return Status::InvalidArgument("flag --" + name +
                                       " requires a non-empty path");
      }
      return Status::OK();
    case Kind::kInt: {
      auto parsed = ParseLong(value);
      if (!parsed.ok()) {
        return Status::InvalidArgument("flag --" + name + "=" + value + ": " +
                                       parsed.status().message());
      }
      if (*parsed < spec.int_min || *parsed > spec.int_max) {
        return Status::InvalidArgument(
            "flag --" + name + "=" + value + ": must be in [" +
            std::to_string(spec.int_min) + ", " + std::to_string(spec.int_max) + "]");
      }
      return Status::OK();
    }
    case Kind::kDouble: {
      auto parsed = ParseDouble(value);
      if (!parsed.ok()) {
        return Status::InvalidArgument("flag --" + name + "=" + value + ": " +
                                       parsed.status().message());
      }
      // Negated form so NaN (never inside any range) is rejected too.
      if (!(*parsed >= spec.double_min && *parsed <= spec.double_max)) {
        return Status::InvalidArgument(
            "flag --" + name + "=" + value + ": must be in [" +
            std::to_string(spec.double_min) + ", " +
            std::to_string(spec.double_max) + "]");
      }
      return Status::OK();
    }
  }
  return Status::Internal("unreachable flag kind");
}

Result<FlagParser::Parsed> FlagParser::Parse(int argc, const char* const* argv,
                                             int first) const {
  std::vector<std::string> args;
  for (int i = first; i < argc; ++i) args.emplace_back(argv[i]);
  return Parse(args);
}

Result<FlagParser::Parsed> FlagParser::Parse(
    const std::vector<std::string>& args) const {
  Parsed parsed;
  bool flags_done = false;
  for (size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (flags_done || arg.rfind("--", 0) != 0) {
      parsed.positional_.push_back(arg);
      continue;
    }
    if (arg == "--") {
      flags_done = true;
      continue;
    }
    std::string name = arg.substr(2);
    std::string value;
    bool has_value = false;
    const size_t eq = name.find('=');
    if (eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_value = true;
    }
    auto it = specs_.find(name);
    if (it == specs_.end()) {
      return Status::InvalidArgument("unknown flag --" + name);
    }
    const Spec& spec = it->second;
    if (spec.kind == Kind::kBool) {
      if (has_value) {
        return Status::InvalidArgument("flag --" + name + " takes no value");
      }
      parsed.values_[name] = "1";
      continue;
    }
    if (!has_value) {
      if (i + 1 >= args.size()) {
        return Status::InvalidArgument("flag --" + name + " requires a value");
      }
      value = args[++i];
    }
    VADASA_RETURN_NOT_OK(ValidateValue(name, spec, value));
    parsed.values_[name] = value;
    parsed.occurrences_.emplace_back(name, value);
  }
  return parsed;
}

std::string FlagParser::Parsed::GetString(const std::string& name,
                                          const std::string& fallback) const {
  auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

long FlagParser::Parsed::GetInt(const std::string& name, long fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return std::strtol(it->second.c_str(), nullptr, 10);
}

double FlagParser::Parsed::GetDouble(const std::string& name, double fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return std::strtod(it->second.c_str(), nullptr);
}

std::vector<std::string> FlagParser::Parsed::GetAll(const std::string& name) const {
  std::vector<std::string> values;
  for (const auto& [flag, value] : occurrences_) {
    if (flag == name) values.push_back(value);
  }
  return values;
}

}  // namespace vadasa::api
