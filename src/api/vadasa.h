#ifndef VADASA_API_VADASA_H_
#define VADASA_API_VADASA_H_

#include <memory>
#include <string>
#include <vector>

#include "common/cancel.h"
#include "common/result.h"
#include "core/business.h"
#include "core/categorize.h"
#include "core/delta.h"
#include "core/global_risk.h"
#include "core/group_index.h"
#include "core/metadata.h"
#include "core/microdata.h"
#include "core/report.h"
#include "core/risk.h"
#include "vadalog/engine.h"

namespace vadasa::api {

/// The stable public facade of the Vada-SA framework.
///
/// Everything an embedder (CLI, serving layer, notebook binding) needs lives
/// behind this header: open a dataset, score its disclosure risk, run the
/// audited anonymization cycle. Callers never touch GroupIndex, RiskEvalCache
/// or the cycle plumbing — those remain internal and free to change. All
/// entry points report failure via Status/Result (no bools, no sentinels);
/// see docs/api.md for the facade reference and migration notes.

/// Per-session knobs: the dataset-independent release policy.
struct SessionOptions {
  /// "k-anonymity", "reidentification", "individual" or "suda".
  std::string risk_measure = "k-anonymity";
  /// k of k-anonymity / the MSU size bound of SUDA. >= 1.
  int k = 2;
  /// Risk threshold T in [0,1]; a tuple is anonymized while risk > T.
  double threshold = 0.5;
  /// Use standard (Skolem) null semantics instead of the paper's =⊥.
  bool standard_nulls = false;
  /// Paper-literal single-step cycle (re-evaluate risk after every step).
  bool single_step = false;
  /// Route Anonymize through the Vadalog reasoning engine (the paper's
  /// declarative pipeline) instead of the native cycle.
  bool declarative = false;
  /// Monte-Carlo draws for the sampled individual-risk estimator (0 = closed
  /// form), and its seed.
  int posterior_draws = 0;
  uint64_t seed = 7;

  /// Canonical fingerprint of the fields that determine grouped risk state
  /// (semantics for now; the AnonSet is the table's own QI set). Jobs whose
  /// sessions share a dataset and this key can share warmed group statistics.
  std::string GroupKey() const;
};

/// Validates measure name, k and threshold ranges; returns the options
/// unchanged on success.
Result<SessionOptions> ValidateSessionOptions(SessionOptions options);

/// One over-threshold tuple with the measure's human-readable justification.
struct RiskyTuple {
  size_t row = 0;
  double risk = 0.0;
  std::string explanation;
};

/// Outcome of Session::Risk — per-tuple and file-level disclosure risk.
struct RiskReport {
  std::vector<double> tuple_risks;
  core::GlobalRiskReport global;
  double threshold = 0.0;
  /// Tuples with risk > threshold, in row order, with explanations.
  std::vector<RiskyTuple> risky;
  /// Threshold inferred at the requested quantile; < 0 when not requested.
  double inferred_threshold = -1.0;
};

/// Per-call knobs of Session::Anonymize.
struct AnonymizeRequest {
  /// Business-knowledge hook (Algorithm 9): propagate risk along control
  /// clusters of this graph. `ownership_id_column` names the identifier
  /// column holding company ids; empty = the table's first identifier column.
  const core::OwnershipGraph* ownership = nullptr;
  std::string ownership_id_column;
  /// Cooperative cancellation / deadline; nullptr = never cancelled.
  const CancelToken* cancel = nullptr;
};

/// The released table plus its accountability artifacts.
struct AnonymizeResponse {
  core::MicrodataTable table;
  /// Full audit (native path); default-constructed on the declarative path.
  core::ReleaseAudit audit;
  bool declarative = false;
  vadalog::RunStats declarative_stats;

  /// The audit text (native) or a one-line engine summary (declarative).
  std::string ToText() const;
};

/// An immutable dataset + policy pair, cheap to copy and safe to share
/// across threads: the table, dictionary and warmed statistics are
/// refcounted const snapshots; every operation works on copies. This is the
/// unit the serving layer schedules — N concurrent jobs over one Session
/// produce byte-identical results to N sequential calls.
class Session {
 public:
  /// An empty session — the moved-from/not-yet-opened state. Every real
  /// session comes from Open/FromTable/FromShared; calling Risk/Anonymize on
  /// an empty session returns FailedPrecondition.
  Session() = default;

  /// Loads a CSV, categorizes attributes via the default experience base and
  /// validates the options.
  static Result<Session> Open(const std::string& csv_path, SessionOptions options);

  /// Wraps an already-categorized table (tests, generators, RDC pipelines).
  static Result<Session> FromTable(core::MicrodataTable table, SessionOptions options);

  /// Wraps shared immutable state directly (the DatasetRegistry path — one
  /// load serves many sessions).
  static Result<Session> FromShared(
      std::shared_ptr<const core::MicrodataTable> table,
      std::shared_ptr<const core::MetadataDictionary> dictionary,
      SessionOptions options);

  const core::MicrodataTable& table() const { return *table_; }
  const std::shared_ptr<const core::MicrodataTable>& shared_table() const {
    return table_;
  }
  /// The metadata dictionary recorded at categorization; may be empty for
  /// FromTable sessions.
  const core::MetadataDictionary& dictionary() const { return *dictionary_; }
  /// Categorization conflicts pending manual review (EGD violations).
  const std::vector<core::CategorizationConflict>& conflicts() const {
    return conflicts_;
  }
  const SessionOptions& options() const { return options_; }

  /// Per-tuple + file-level risk under the session policy. `quantile` in
  /// (0,1) additionally infers the threshold at that quantile (< 0 = skip).
  /// `explain` attaches justifications to the over-threshold tuples.
  Result<RiskReport> Risk(double quantile = -1.0, bool explain = true) const;

  /// The statistically inferred threshold at `quantile` (Section 1).
  Result<double> InferThreshold(double quantile) const;

  /// Runs the audited anonymization cycle (or the declarative pipeline) on a
  /// copy of the dataset. The session itself never mutates.
  Result<AnonymizeResponse> Anonymize(const AnonymizeRequest& request = {}) const;

  /// Applies a validated DeltaBatch (docs/api.md §"Streaming deltas") and
  /// returns a NEW session over the post-delta table. Sessions stay
  /// immutable: this session is untouched and keeps serving pre-delta
  /// results bit-identically, so in-flight jobs holding it are never
  /// disturbed — the returned session is a sibling snapshot, not a mutation.
  ///
  /// Semantics (see core/delta.h): update/delete indices address THIS
  /// session's row numbering; updates apply first (last write per row wins),
  /// then deletes, then appends; surviving rows keep their relative order.
  /// The batch is validated before any state is touched — a column-count
  /// mismatch or out-of-range row returns InvalidArgument and a non-numeric
  /// sampling weight returns TypeError, in both cases leaving nothing to
  /// observe.
  ///
  /// Warm-state maintenance: when this session is Warm()ed on the active
  /// data plane, the child inherits a delta-patched group index — only
  /// groups the batch touches are re-aggregated, and the child's warm stats
  /// are bit-identical to a cold Warm() over the post-delta table (the
  /// delta-vs-full-recompute-bit-identical property pins this on both data
  /// planes). Otherwise the child starts cold and the next Warm() pays the
  /// full collapse. Dictionary, conflicts and options carry over unchanged.
  Result<Session> Apply(const core::DeltaBatch& batch) const;

  /// Precomputes the group statistics for this session's (table, AnonSet,
  /// semantics) and keeps them for every subsequent Risk call — the handle
  /// the serving layer shares across a batch. No-op if already warm.
  Status Warm();

  /// Adopts warm statistics (and, optionally, the columnar view they were
  /// computed through) produced elsewhere — the scheduler's coalesced warmup.
  /// They must come from ComputeWarmGroupStats over this session's table and
  /// semantics.
  void AdoptWarmStats(std::shared_ptr<const core::GroupStats> stats,
                      std::shared_ptr<const core::ColumnarView> view = nullptr) {
    warm_ = std::move(stats);
    if (view != nullptr) warm_view_ = std::move(view);
  }
  const std::shared_ptr<const core::GroupStats>& warm_stats() const { return warm_; }
  /// The shared columnar materialization created by Warm() under the
  /// columnar plane (null otherwise) — handed to sibling sessions alongside
  /// the warm stats so a batch interns each column once.
  const std::shared_ptr<const core::ColumnarView>& warm_view() const {
    return warm_view_;
  }

  /// The incrementally maintainable group index behind the warm stats —
  /// non-null after Warm() (not after AdoptWarmStats, whose stats arrive
  /// without an index) and after an index-backed Apply(). Exposed for
  /// observability and tests; treat as opaque.
  const std::shared_ptr<const core::GroupIndex>& delta_index() const {
    return delta_index_;
  }

 private:
  Status CheckOpen() const;
  core::RiskContext MakeRiskContext() const;

  std::shared_ptr<const core::MicrodataTable> table_;
  std::shared_ptr<const core::MetadataDictionary> dictionary_;
  std::vector<core::CategorizationConflict> conflicts_;
  SessionOptions options_;
  std::shared_ptr<const core::GroupStats> warm_;
  std::shared_ptr<const core::ColumnarView> warm_view_;
  std::shared_ptr<const core::GroupIndex> delta_index_;
};

}  // namespace vadasa::api

#endif  // VADASA_API_VADASA_H_
