#include "api/vadasa.h"

#include <utility>

#include "common/csv.h"
#include "core/anonymize.h"
#include "core/cycle.h"
#include "core/vadalog_bridge.h"
#include "obs/trace.h"

namespace vadasa::api {

using core::MicrodataTable;

std::string SessionOptions::GroupKey() const {
  return standard_nulls ? "standard" : "maybe";
}

Result<SessionOptions> ValidateSessionOptions(SessionOptions options) {
  // MakeRiskMeasure is the single source of truth for valid measure names.
  VADASA_RETURN_NOT_OK(core::MakeRiskMeasure(options.risk_measure).status());
  if (options.k < 1) {
    return Status::InvalidArgument("k must be >= 1, got " +
                                   std::to_string(options.k));
  }
  if (!(options.threshold >= 0.0 && options.threshold <= 1.0)) {
    return Status::InvalidArgument("threshold must be in [0, 1], got " +
                                   std::to_string(options.threshold));
  }
  if (options.posterior_draws < 0) {
    return Status::InvalidArgument("posterior_draws must be >= 0");
  }
  return options;
}

std::string AnonymizeResponse::ToText() const {
  if (!declarative) return audit.ToText();
  return "declarative cycle: " + std::to_string(declarative_stats.rounds) +
         " rounds, " + std::to_string(declarative_stats.facts_derived) +
         " facts derived, " + std::to_string(declarative_stats.nulls_created) +
         " nulls\n";
}

Result<Session> Session::Open(const std::string& csv_path, SessionOptions options) {
  VADASA_ASSIGN_OR_RETURN(SessionOptions validated,
                          ValidateSessionOptions(std::move(options)));
  VADASA_ASSIGN_OR_RETURN(const CsvTable csv, ReadCsvFile(csv_path));
  VADASA_ASSIGN_OR_RETURN(MicrodataTable table,
                          MicrodataTable::FromCsv(csv_path, csv, {}, ""));
  core::AttributeCategorizer categorizer =
      core::AttributeCategorizer::WithDefaultExperience();
  auto dictionary = std::make_shared<core::MetadataDictionary>();
  VADASA_RETURN_NOT_OK(
      categorizer.CategorizeTable(&table, dictionary.get()).status());
  Session session;
  session.table_ = std::make_shared<const MicrodataTable>(std::move(table));
  session.dictionary_ = std::move(dictionary);
  session.conflicts_ = categorizer.conflicts();
  session.options_ = std::move(validated);
  return session;
}

Result<Session> Session::FromTable(MicrodataTable table, SessionOptions options) {
  VADASA_RETURN_NOT_OK(table.Validate());
  return FromShared(std::make_shared<const MicrodataTable>(std::move(table)),
                    nullptr, std::move(options));
}

Result<Session> Session::FromShared(
    std::shared_ptr<const MicrodataTable> table,
    std::shared_ptr<const core::MetadataDictionary> dictionary,
    SessionOptions options) {
  if (table == nullptr) {
    return Status::InvalidArgument("Session::FromShared: null table");
  }
  VADASA_ASSIGN_OR_RETURN(SessionOptions validated,
                          ValidateSessionOptions(std::move(options)));
  Session session;
  session.table_ = std::move(table);
  session.dictionary_ = dictionary != nullptr
                            ? std::move(dictionary)
                            : std::make_shared<core::MetadataDictionary>();
  session.options_ = std::move(validated);
  return session;
}

Status Session::CheckOpen() const {
  if (table_ == nullptr) {
    return Status::FailedPrecondition(
        "empty Session: construct one via Open/FromTable/FromShared");
  }
  return Status::OK();
}

core::RiskContext Session::MakeRiskContext() const {
  core::RiskContext ctx;
  ctx.k = options_.k;
  ctx.semantics = options_.standard_nulls ? core::NullSemantics::kStandard
                                          : core::NullSemantics::kMaybeMatch;
  ctx.posterior_draws = options_.posterior_draws;
  ctx.seed = options_.seed;
  ctx.warm_stats = warm_;
  ctx.warm_view = warm_view_;
  return ctx;
}

Status Session::Warm() {
  VADASA_RETURN_NOT_OK(CheckOpen());
  if (warm_ != nullptr) return Status::OK();
  const core::RiskContext ctx = MakeRiskContext();
  const auto qis = ctx.ResolveQiColumns(*table_);
  VADASA_RETURN_NOT_OK(core::ValidateQiWidth(qis, ctx.semantics));
  // Build the incremental group index over (table, AnonSet, semantics). Its
  // Stats() go through the same collapse/aggregation machinery in the same
  // order as ComputeWarmGroupStats, so the warm stats are unchanged — but
  // keeping the index makes this session a delta base: Apply() patches it
  // instead of re-collapsing the whole table. Under the columnar plane the
  // index also materializes the shared view every later evaluation reads.
  auto index =
      std::make_shared<core::GroupIndex>(*table_, qis, ctx.semantics);
  warm_ = std::shared_ptr<const core::GroupStats>(index, &index->Stats());
  warm_view_ = index->shared_view();
  delta_index_ = std::move(index);
  return Status::OK();
}

Result<Session> Session::Apply(const core::DeltaBatch& batch) const {
  obs::Span span("api.apply_delta");
  VADASA_RETURN_NOT_OK(CheckOpen());
  core::DeltaRowPlan plan;
  VADASA_ASSIGN_OR_RETURN(MicrodataTable next,
                          core::ApplyDeltaToTable(*table_, batch, &plan));
  Session child;
  child.table_ = std::make_shared<const MicrodataTable>(std::move(next));
  child.dictionary_ = dictionary_;
  child.conflicts_ = conflicts_;
  child.options_ = options_;
  // Incremental warm-state maintenance: a warmed parent on the active plane
  // hands the child a delta-patched index — only groups the batch touched are
  // re-aggregated. Stats() is forced before the child is published so the
  // shared state is immutable from here on.
  if (delta_index_ != nullptr &&
      delta_index_->data_plane() == core::ActiveDataPlane()) {
    std::shared_ptr<core::GroupIndex> next_index =
        delta_index_->ApplyDelta(*child.table_, plan);
    child.warm_ = std::shared_ptr<const core::GroupStats>(next_index,
                                                          &next_index->Stats());
    child.warm_view_ = next_index->shared_view();
    child.delta_index_ = std::move(next_index);
  }
  return child;
}

Result<RiskReport> Session::Risk(double quantile, bool explain) const {
  obs::Span span("api.risk");
  VADASA_RETURN_NOT_OK(CheckOpen());
  VADASA_ASSIGN_OR_RETURN(const auto measure,
                          core::MakeRiskMeasure(options_.risk_measure));
  const core::RiskContext ctx = MakeRiskContext();
  RiskReport report;
  report.threshold = options_.threshold;
  VADASA_ASSIGN_OR_RETURN(report.tuple_risks, measure->ComputeRisks(*table_, ctx));
  VADASA_ASSIGN_OR_RETURN(
      report.global,
      core::ComputeGlobalRisk(*table_, *measure, ctx, options_.threshold));
  for (size_t r = 0; r < report.tuple_risks.size(); ++r) {
    if (report.tuple_risks[r] > options_.threshold) {
      RiskyTuple risky;
      risky.row = r;
      risky.risk = report.tuple_risks[r];
      if (explain) {
        risky.explanation = measure->Explain(*table_, ctx, r, risky.risk);
      }
      report.risky.push_back(std::move(risky));
    }
  }
  if (quantile > 0.0) {
    VADASA_ASSIGN_OR_RETURN(report.inferred_threshold,
                            core::InferThreshold(*table_, *measure, ctx, quantile));
  }
  return report;
}

Result<double> Session::InferThreshold(double quantile) const {
  VADASA_RETURN_NOT_OK(CheckOpen());
  VADASA_ASSIGN_OR_RETURN(const auto measure,
                          core::MakeRiskMeasure(options_.risk_measure));
  return core::InferThreshold(*table_, *measure, MakeRiskContext(), quantile);
}

Result<AnonymizeResponse> Session::Anonymize(const AnonymizeRequest& request) const {
  obs::Span span("api.anonymize");
  VADASA_RETURN_NOT_OK(CheckOpen());
  if (request.cancel != nullptr) {
    VADASA_RETURN_NOT_OK(request.cancel->Check());
  }
  AnonymizeResponse response;

  // Resolve the Algorithm-9 hook up front so both paths agree on the column.
  std::string id_column = request.ownership_id_column;
  if (request.ownership != nullptr && id_column.empty()) {
    const auto ids =
        table_->ColumnsWithCategory(core::AttributeCategory::kIdentifier);
    if (ids.empty()) {
      return Status::FailedPrecondition(
          "ownership graph supplied but the table has no identifier column");
    }
    id_column = table_->attributes()[ids[0]].name;
  }

  if (options_.declarative) {
    core::BridgeOptions bridge_options;
    bridge_options.risk_measure = options_.risk_measure;
    bridge_options.k = options_.k;
    bridge_options.threshold = options_.threshold;
    bridge_options.maybe_match = !options_.standard_nulls;
    const core::VadalogBridge bridge(bridge_options);
    response.declarative = true;
    if (request.ownership != nullptr) {
      VADASA_ASSIGN_OR_RETURN(
          response.table,
          bridge.RunDeclarativeEnhancedCycle(*table_, *request.ownership,
                                             &response.declarative_stats));
    } else {
      VADASA_ASSIGN_OR_RETURN(
          response.table,
          bridge.RunDeclarativeCycle(*table_, nullptr,
                                     &response.declarative_stats));
    }
    return response;
  }

  VADASA_ASSIGN_OR_RETURN(const auto measure,
                          core::MakeRiskMeasure(options_.risk_measure));
  core::LocalSuppression anonymizer;
  core::CycleOptions cycle_options;
  cycle_options.threshold = options_.threshold;
  cycle_options.risk = MakeRiskContext();
  cycle_options.single_step = options_.single_step;
  cycle_options.cancel = request.cancel;
  if (request.ownership != nullptr) {
    cycle_options.risk_transform =
        core::MakeClusterRiskTransform(request.ownership, id_column);
  }
  MicrodataTable released = *table_;
  VADASA_ASSIGN_OR_RETURN(
      response.audit,
      core::RunAuditedRelease(&released, *measure, &anonymizer, cycle_options));
  response.table = std::move(released);
  return response;
}

}  // namespace vadasa::api
