#ifndef VADASA_API_FLAGS_H_
#define VADASA_API_FLAGS_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"

namespace vadasa::api {

/// A strict, declarative command-line flag parser shared by the vadasa tools
/// (vadasa_cli, vadasa_prop_replay, vadasa_serve). Strict means: unknown
/// `--flags` are errors, typed values are fully validated (`--k twelve`,
/// `--threshold 1.5`, `--trace=` with an empty path all fail), and the error
/// Status carries a message suitable for stderr. Tools map InvalidArgument to
/// the conventional usage exit code 2.
///
/// Both `--flag value` and `--flag=value` spellings are accepted; boolean
/// flags take no value. `--` ends flag parsing (everything after is
/// positional).
class FlagParser {
 public:
  FlagParser& Bool(const std::string& name, const std::string& help);
  FlagParser& String(const std::string& name, const std::string& help);
  /// String flag whose value must be non-empty (e.g. output paths, so a bare
  /// `--trace=` is rejected instead of silently disabling the export).
  FlagParser& Path(const std::string& name, const std::string& help);
  FlagParser& Int(const std::string& name, const std::string& help,
                  long min_value, long max_value);
  FlagParser& Double(const std::string& name, const std::string& help,
                     double min_value, double max_value);

  /// One line per flag, for usage messages.
  std::string Help(const std::string& indent = "  ") const;

  class Parsed {
   public:
    const std::vector<std::string>& positional() const { return positional_; }
    bool Has(const std::string& name) const { return values_.count(name) > 0; }
    bool GetBool(const std::string& name) const { return Has(name); }
    std::string GetString(const std::string& name, const std::string& fallback) const;
    long GetInt(const std::string& name, long fallback) const;
    double GetDouble(const std::string& name, double fallback) const;
    /// Every occurrence of a repeatable flag, in command-line order (the
    /// single-value getters return the last one).
    std::vector<std::string> GetAll(const std::string& name) const;

   private:
    friend class FlagParser;
    std::vector<std::string> positional_;
    std::map<std::string, std::string> values_;
    std::vector<std::pair<std::string, std::string>> occurrences_;
  };

  /// Parses argv[first..argc). Fails with InvalidArgument on the first
  /// unknown flag, missing value, or malformed/out-of-range typed value.
  Result<Parsed> Parse(int argc, const char* const* argv, int first = 1) const;

  /// Convenience overload for a pre-split argument vector (tests).
  Result<Parsed> Parse(const std::vector<std::string>& args) const;

 private:
  enum class Kind { kBool, kString, kPath, kInt, kDouble };
  struct Spec {
    Kind kind = Kind::kString;
    std::string help;
    long int_min = 0, int_max = 0;
    double double_min = 0.0, double_max = 0.0;
  };
  Status ValidateValue(const std::string& name, const Spec& spec,
                       const std::string& value) const;

  std::map<std::string, Spec> specs_;
  std::vector<std::string> order_;
};

}  // namespace vadasa::api

#endif  // VADASA_API_FLAGS_H_
