#ifndef VADASA_TESTING_SHRINK_H_
#define VADASA_TESTING_SHRINK_H_

#include <cstddef>
#include <functional>
#include <string>

#include "core/microdata.h"

namespace vadasa::testing {

/// Greedy failure minimization: given a failing input and a predicate that
/// re-runs the property ("does this candidate still fail?"), remove as much
/// as possible while the failure persists. Deterministic — no randomness, so
/// a shrink of the same input against the same predicate always lands on the
/// same minimal case.

/// Returns true when the candidate still violates the property.
using TableStillFails = std::function<bool(const core::MicrodataTable&)>;
using ProgramStillFails = std::function<bool(const std::string&)>;

struct ShrinkStats {
  size_t evaluations = 0;
  size_t rows_removed = 0;
  size_t columns_removed = 0;
  size_t lines_removed = 0;
};

/// Shrinks a failing table: first drops row chunks (halves, quarters, …,
/// single rows, ddmin-style), then drops quasi-identifier columns, then
/// repeats until a fixpoint.
core::MicrodataTable ShrinkTable(const core::MicrodataTable& failing,
                                 const TableStillFails& still_fails,
                                 ShrinkStats* stats = nullptr);

/// Shrinks a failing program by greedily dropping lines (rules/facts), then
/// repeats until a fixpoint.
std::string ShrinkProgram(const std::string& failing,
                          const ProgramStillFails& still_fails,
                          ShrinkStats* stats = nullptr);

/// A copy of `table` without the given row (helper shared with tests).
core::MicrodataTable DropRow(const core::MicrodataTable& table, size_t row);

/// A copy of `table` without the given column.
core::MicrodataTable DropColumn(const core::MicrodataTable& table, size_t column);

}  // namespace vadasa::testing

#endif  // VADASA_TESTING_SHRINK_H_
