#include "testing/harness.h"

#include <chrono>
#include <cstdlib>
#include <string>

#include "testing/shrink.h"

namespace vadasa::testing {

namespace {

uint64_t EnvU64(const char* name, uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::strtoull(value, nullptr, 10);
}

uint64_t NowMs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

HarnessOptions HarnessOptionsFromEnv() {
  HarnessOptions options;
  options.seed = EnvU64("VADASA_PROP_SEED", options.seed);
  options.cases_per_property =
      static_cast<size_t>(EnvU64("VADASA_PROP_CASES", options.cases_per_property));
  options.budget_ms = EnvU64("VADASA_PROP_BUDGET_MS", options.budget_ms);
  const char* dir = std::getenv("VADASA_PROP_REPRO_DIR");
  if (dir != nullptr) options.repro_dir = dir;
  return options;
}

ReproCase ShrinkCase(const Property& property, const ReproCase& failing) {
  ReproCase shrunk = failing;
  if (property.shrink_program) {
    shrunk.program = ShrinkProgram(failing.program, [&](const std::string& candidate) {
      ReproCase probe = failing;
      probe.program = candidate;
      return !property.evaluate(probe).ok();
    });
  } else {
    shrunk.table =
        ShrinkTable(failing.table, [&](const core::MicrodataTable& candidate) {
          ReproCase probe = failing;
          probe.table = candidate;
          return !property.evaluate(probe).ok();
        });
  }
  Status verdict = property.evaluate(shrunk);
  // The shrunk case must still fail; fall back to the original otherwise
  // (a non-reproducing "repro" would be worse than a big one).
  if (verdict.ok()) return failing;
  shrunk.message = verdict.ToString();
  return shrunk;
}

HarnessReport RunProperty(const Property& property, const HarnessOptions& options) {
  HarnessReport report;
  Rng rng(options.seed ^ std::hash<std::string>{}(property.name));
  const uint64_t deadline =
      options.budget_ms == 0 ? 0 : NowMs() + options.budget_ms;
  for (uint64_t i = 0; i < options.cases_per_property; ++i) {
    if (deadline != 0 && NowMs() >= deadline) break;
    ReproCase repro = property.generate(&rng, i);
    ++report.cases_run;
    Status verdict = property.evaluate(repro);
    if (verdict.ok()) continue;
    ++report.failures;
    repro.message = verdict.ToString();
    ReproCase shrunk = ShrinkCase(property, repro);
    if (!options.repro_dir.empty()) {
      const std::string path = options.repro_dir + "/" + property.name + "-case" +
                               std::to_string(i) + ".repro";
      if (SaveRepro(shrunk, path).ok()) report.saved_paths.push_back(path);
    }
    report.repros.push_back(std::move(shrunk));
  }
  return report;
}

Status ReplayReproFile(const std::string& path) {
  VADASA_ASSIGN_OR_RETURN(const ReproCase repro, LoadRepro(path));
  return EvaluateRepro(repro);
}

}  // namespace vadasa::testing
