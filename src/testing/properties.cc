#include "testing/properties.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "api/vadasa.h"
#include "common/csv.h"
#include "common/failpoint.h"
#include "common/thread_pool.h"
#include "core/anonymize.h"
#include "core/business.h"
#include "core/columnar.h"
#include "core/cycle.h"
#include "core/delta.h"
#include "core/group_index.h"
#include "core/microdata.h"
#include "core/risk.h"
#include "core/vadalog_bridge.h"
#include "serve/dataset_registry.h"
#include "serve/protocol.h"
#include "serve/result_cache.h"
#include "serve/scheduler.h"
#include "testing/differential.h"
#include "testing/generators.h"
#include "testing/oracles.h"
#include "vadalog/engine.h"
#include "vadalog/parser.h"

namespace vadasa::testing {

using core::AttributeCategory;
using core::MicrodataTable;
using core::NullSemantics;
using core::RiskContext;

namespace {

std::string Param(const ReproCase& repro, const std::string& key,
                  const std::string& fallback) {
  auto it = repro.params.find(key);
  return it == repro.params.end() ? fallback : it->second;
}

uint64_t ParamU64(const ReproCase& repro, const std::string& key, uint64_t fallback) {
  auto it = repro.params.find(key);
  return it == repro.params.end() ? fallback : std::stoull(it->second);
}

double ParamDouble(const ReproCase& repro, const std::string& key, double fallback) {
  auto it = repro.params.find(key);
  return it == repro.params.end() ? fallback : std::stod(it->second);
}

/// Seeds a base case: fresh aux seed plus a generated table.
ReproCase TableCase(const std::string& property, Rng* rng, uint64_t case_index,
                    const TableGenOptions& options = {}) {
  ReproCase repro;
  repro.property = property;
  repro.seed = rng->Next();
  repro.case_index = case_index;
  repro.table = RandomTable(rng, options);
  return repro;
}

RiskContext ContextFrom(const ReproCase& repro) {
  RiskContext ctx;
  ctx.k = static_cast<int>(ParamU64(repro, "k", 2));
  ctx.semantics = Param(repro, "semantics", "maybe") == "standard"
                      ? NullSemantics::kStandard
                      : NullSemantics::kMaybeMatch;
  return ctx;
}

/// Picks a suppressible cell from the table's current shape. Deterministic in
/// (seed, table) so shrunk candidates re-pick a valid cell.
bool PickQiCell(const ReproCase& repro, size_t* row, size_t* column) {
  const std::vector<size_t> qis = repro.table.QuasiIdentifierColumns();
  if (qis.empty() || repro.table.num_rows() == 0) return false;
  Rng aux(repro.seed);
  *row = aux.NextBelow(repro.table.num_rows());
  *column = qis[aux.NextBelow(qis.size())];
  return true;
}

// --- Evaluators. Each is a pure function of the ReproCase. ---

Status EvalRiskUnitRange(const ReproCase& repro) {
  RiskContext ctx = ContextFrom(repro);
  for (const char* name : {"reidentification", "k-anonymity", "individual", "suda"}) {
    VADASA_ASSIGN_OR_RETURN(const auto measure, core::MakeRiskMeasure(name));
    VADASA_ASSIGN_OR_RETURN(const std::vector<double> risks,
                            measure->ComputeRisks(repro.table, ctx));
    Status st = CheckRisksInUnitRange(risks);
    if (!st.ok()) {
      return Status::FailedPrecondition(std::string(name) + ": " + st.ToString());
    }
  }
  return Status::OK();
}

Status EvalPostCycleSafety(const ReproCase& repro) {
  const std::string measure_name = Param(repro, "measure", "k-anonymity");
  const double threshold = ParamDouble(repro, "threshold", 0.5);
  VADASA_ASSIGN_OR_RETURN(const auto measure, core::MakeRiskMeasure(measure_name));
  core::CycleOptions options;
  options.threshold = threshold;
  options.risk = ContextFrom(repro);
  core::LocalSuppression suppression;
  core::AnonymizationCycle cycle(measure.get(), &suppression, options);
  MicrodataTable released = repro.table;
  VADASA_RETURN_NOT_OK(cycle.Run(&released).status());
  return CheckPostCycleRisks(released, *measure, options.risk, threshold);
}

Status EvalSuppressionMonotone(const ReproCase& repro) {
  size_t row = 0, column = 0;
  if (!PickQiCell(repro, &row, &column)) return Status::OK();
  return CheckSuppressionMonotone(repro.table, row, column, ContextFrom(repro));
}

Status EvalSuppressionFreshLabels(const ReproCase& repro) {
  size_t row = 0, column = 0;
  if (!PickQiCell(repro, &row, &column)) return Status::OK();
  return CheckSuppressionFreshLabels(repro.table, row, column);
}

Status EvalSudaPermutation(const ReproCase& repro) {
  Rng aux(repro.seed);
  return CheckSudaPermutationInvariance(repro.table, ContextFrom(repro), &aux);
}

Status EvalClusterRiskBounds(const ReproCase& repro) {
  const auto id_cols = repro.table.ColumnsWithCategory(AttributeCategory::kIdentifier);
  if (id_cols.empty() || repro.table.num_rows() == 0) return Status::OK();
  Rng aux(repro.seed);
  const core::OwnershipGraph graph =
      RandomOwnershipGraph(&aux, repro.table, ParamDouble(repro, "edge_p", 0.15));
  VADASA_ASSIGN_OR_RETURN(const auto measure,
                          core::MakeRiskMeasure("reidentification"));
  VADASA_ASSIGN_OR_RETURN(const std::vector<double> base,
                          measure->ComputeRisks(repro.table, ContextFrom(repro)));
  return CheckClusterRiskBounds(repro.table, graph,
                                repro.table.attributes()[id_cols[0]].name, base);
}

Status EvalInfoLossMonotone(const ReproCase& repro) {
  Rng aux(repro.seed);
  const size_t steps = 1 + aux.NextBelow(24);
  return CheckInfoLossMonotone(repro.table, steps, &aux);
}

Status EvalCycleDifferential(const ReproCase& repro) {
  core::BridgeOptions options;
  options.risk_measure = Param(repro, "measure", "k-anonymity");
  options.k = static_cast<int>(ParamU64(repro, "k", 2));
  options.threshold = ParamDouble(repro, "threshold", 0.5);
  options.maybe_match = Param(repro, "semantics", "maybe") != "standard";
  if (ParamU64(repro, "with_graph", 0) != 0) {
    Rng aux(repro.seed);
    const core::OwnershipGraph graph =
        RandomOwnershipGraph(&aux, repro.table, ParamDouble(repro, "edge_p", 0.15));
    return CheckCycleDifferential(repro.table, options, &graph).status();
  }
  return CheckCycleDifferential(repro.table, options, nullptr).status();
}

Status EvalParallelDeterminism(const ReproCase& repro) {
  core::CycleOptions options;
  options.threshold = ParamDouble(repro, "threshold", 0.5);
  options.risk = ContextFrom(repro);
  const size_t threads = ParamU64(repro, "threads", 4);
  return CheckParallelDeterminism(repro.table, options,
                                  Param(repro, "measure", "k-anonymity"), threads);
}

Status EvalServeConcurrentBitIdentical(const ReproCase& repro) {
  api::SessionOptions options;
  options.risk_measure = Param(repro, "measure", "k-anonymity");
  options.k = static_cast<int>(ParamU64(repro, "k", 2));
  options.threshold = ParamDouble(repro, "threshold", 0.5);
  options.standard_nulls = Param(repro, "semantics", "maybe") == "standard";

  const auto shared =
      std::make_shared<const MicrodataTable>(repro.table);
  VADASA_ASSIGN_OR_RETURN(api::Session session,
                          api::Session::FromShared(shared, nullptr, options));

  const size_t njobs = ParamU64(repro, "njobs", 4);
  // Alternate actions so one case exercises both result paths.
  auto action_for = [](size_t j) {
    return j % 2 == 1 ? serve::JobAction::kRisk : serve::JobAction::kAnonymize;
  };

  // References: sequential facade calls on a single library thread.
  struct Reference {
    std::string csv;
    std::vector<double> risks;
  };
  const size_t previous = ThreadPool::SetGlobalThreads(1);
  auto run = [&]() -> Status {
    std::vector<Reference> expected(njobs);
    for (size_t j = 0; j < njobs; ++j) {
      if (action_for(j) == serve::JobAction::kRisk) {
        VADASA_ASSIGN_OR_RETURN(const api::RiskReport report, session.Risk());
        expected[j].risks = report.tuple_risks;
      } else {
        VADASA_ASSIGN_OR_RETURN(const api::AnonymizeResponse response,
                                session.Anonymize());
        expected[j].csv = WriteCsv(response.table.ToCsv());
      }
    }

    // Same jobs through the scheduler, concurrently, with data-parallel shards.
    ThreadPool::SetGlobalThreads(ParamU64(repro, "threads", 2));
    serve::SchedulerOptions scheduler_options;
    scheduler_options.workers = ParamU64(repro, "workers", 2);
    scheduler_options.max_queue = njobs;
    serve::JobScheduler scheduler(scheduler_options);
    std::vector<uint64_t> ids(njobs);
    for (size_t j = 0; j < njobs; ++j) {
      serve::JobRequest request;
      request.session = session;
      request.action = action_for(j);
      VADASA_ASSIGN_OR_RETURN(ids[j], scheduler.Submit(std::move(request)));
    }
    for (size_t j = 0; j < njobs; ++j) {
      VADASA_ASSIGN_OR_RETURN(const serve::JobResult result,
                              scheduler.Wait(ids[j]));
      if (result.state != serve::JobState::kDone) {
        return Status::FailedPrecondition(
            "job " + std::to_string(j) + " ended " +
            serve::JobStateToString(result.state) + ": " +
            result.status.ToString());
      }
      if (action_for(j) == serve::JobAction::kRisk) {
        if (result.risk.tuple_risks != expected[j].risks) {
          return Status::FailedPrecondition(
              "job " + std::to_string(j) +
              ": scheduler risks differ from the sequential facade call");
        }
      } else {
        const std::string csv = WriteCsv(result.anonymize.table.ToCsv());
        if (csv != expected[j].csv) {
          return Status::FailedPrecondition(
              "job " + std::to_string(j) +
              ": scheduler release is not byte-identical to the facade call");
        }
      }
    }
    scheduler.Shutdown(/*drain=*/true);
    return Status::OK();
  };
  const Status status = run();
  ThreadPool::SetGlobalThreads(previous);
  return status;
}

Status EvalChaosServeNeverCorrupts(const ReproCase& repro) {
  // Chaos harness (docs/robustness.md): one fault-free reference pass
  // through the live protocol+scheduler stack, then `rounds` passes with
  // random failpoint policies armed. Faults may fail any individual request,
  // but every response must stay one well-formed JSON line, nothing may
  // hang, and every request that still succeeds must return a payload
  // byte-identical to the reference.
  failpoint::DisarmAll();  // A fault leaked from elsewhere would taint the reference.

  const size_t njobs = ParamU64(repro, "njobs", 3);
  const size_t rounds = ParamU64(repro, "rounds", 3);
  const size_t workers = ParamU64(repro, "workers", 2);

  // An on-disk copy of the table: jobs alternate between the in-memory
  // registration and this path so the registry's load/categorize failpoints
  // and its quarantine bookkeeping see real traffic. Some generated tables
  // do not survive a CSV round trip through the categorizer; probe once and
  // keep those cases in-memory only.
  const std::string csv_path = "/tmp/vadasa-chaos-" +
                               std::to_string(repro.seed) + "-" +
                               std::to_string(repro.case_index) + ".csv";
  {
    std::ofstream out(csv_path);
    out << WriteCsv(repro.table.ToCsv());
  }
  bool csv_usable = false;
  {
    serve::DatasetRegistry probe;
    csv_usable = probe.Load(csv_path).ok();
  }
  auto dataset_for = [&](size_t j) {
    return (csv_usable && j % 3 == 2) ? csv_path : std::string("chaos-mem");
  };
  auto action_for = [](size_t j) { return j % 2 == 1 ? "risk" : "anonymize"; };
  auto submit_line = [&](size_t j) {
    Json::Object req;
    req["op"] = "submit";
    req["dataset"] = dataset_for(j);
    req["action"] = action_for(j);
    req["measure"] = Param(repro, "measure", "k-anonymity");
    req["k"] = Json(static_cast<int64_t>(ParamU64(repro, "k", 2)));
    req["threshold"] = ParamDouble(repro, "threshold", 0.5);
    req["standard_nulls"] = Param(repro, "semantics", "maybe") == "standard";
    return Json(std::move(req)).Dump();
  };

  // The response-line contract every pass must honor, faulted or not.
  auto check_wellformed = [](const std::string& line) -> Result<Json> {
    auto parsed = Json::Parse(line);
    if (!parsed.ok()) {
      return Status::FailedPrecondition("response is not JSON: " + line);
    }
    if (!parsed->Has("ok") || !(*parsed)["ok"].is_bool()) {
      return Status::FailedPrecondition("response has no boolean \"ok\": " +
                                        line);
    }
    if (parsed->GetString("trace_id", "").size() != 16) {
      return Status::FailedPrecondition("response has no trace_id: " + line);
    }
    return parsed;
  };
  // The result fields that must match across runs (timings and trace ids
  // legitimately differ).
  auto payload_of = [](const Json& response) {
    Json::Object payload;
    for (const char* key : {"csv", "audit", "risk"}) {
      if (response.Has(key)) payload[key] = response[key];
    }
    return Json(std::move(payload)).Dump();
  };

  // One pass over a fresh stack; records the payload of every job that
  // reached kDone.
  auto run_pass = [&](serve::ClientQuota* quota,
                      std::map<size_t, std::string>* done) -> Status {
    serve::DatasetRegistry registry;
    VADASA_RETURN_NOT_OK(registry.Register("chaos-mem", repro.table));
    serve::SchedulerOptions scheduler_options;
    scheduler_options.workers = workers;
    scheduler_options.max_queue = njobs + 2;
    serve::JobScheduler scheduler(scheduler_options);
    serve::Protocol protocol(&registry, &scheduler);
    bool shutdown_requested = false;

    VADASA_RETURN_NOT_OK(
        check_wellformed(protocol.Handle("{\"op\":\"ping\"}",
                                         &shutdown_requested))
            .status());
    for (size_t j = 0; j < njobs; ++j) {
      VADASA_ASSIGN_OR_RETURN(
          const Json submitted,
          check_wellformed(protocol.Handle(submit_line(j), &shutdown_requested,
                                           quota)));
      if (!submitted.GetBool("ok", false)) continue;  // A clean injected rejection.
      Json::Object result_req;
      result_req["op"] = "result";
      result_req["id"] = submitted["id"];
      VADASA_ASSIGN_OR_RETURN(
          const Json result,
          check_wellformed(protocol.Handle(Json(std::move(result_req)).Dump(),
                                           &shutdown_requested)));
      if (!result.GetBool("ok", false)) {
        return Status::FailedPrecondition(
            "result for submitted job " + std::to_string(j) +
            " errored instead of reporting a terminal state");
      }
      if (result.GetString("state", "") == "done") {
        (*done)[j] = payload_of(result);
      }
    }
    // Malformed input and unknown ids must also stay clean errors mid-chaos.
    VADASA_ASSIGN_OR_RETURN(
        const Json unknown,
        check_wellformed(protocol.Handle("{\"op\":\"status\",\"id\":999999999}",
                                         &shutdown_requested)));
    if (unknown.GetBool("ok", false)) {
      return Status::FailedPrecondition("unknown job id did not error");
    }
    VADASA_ASSIGN_OR_RETURN(
        const Json garbled,
        check_wellformed(protocol.Handle("{not json", &shutdown_requested)));
    if (garbled.GetBool("ok", false)) {
      return Status::FailedPrecondition("garbled request did not error");
    }
    scheduler.Shutdown(/*drain=*/true);
    return Status::OK();
  };

  // Reference pass: no faults, no quota. Every job must finish kDone — a
  // fault-free stack that fails is itself a bug this property catches.
  std::map<size_t, std::string> reference;
  VADASA_RETURN_NOT_OK(run_pass(nullptr, &reference));
  for (size_t j = 0; j < njobs; ++j) {
    if (reference.find(j) == reference.end()) {
      return Status::FailedPrecondition(
          "fault-free reference pass did not finish job " + std::to_string(j));
    }
  }

  // Chaos rounds: deterministic random policies from the case's aux stream.
  // crash-once is deliberately excluded — aborting the test runner is the
  // one injected behavior a property cannot observe.
  const char* kSites[] = {"serve.registry.load", "serve.registry.categorize",
                          "serve.scheduler.submit", "serve.scheduler.run"};
  const char* kCodes[] = {"internal",  "io",        "unavailable",
                          "failed",    "cancelled", "deadline"};
  Rng aux(repro.seed);
  for (size_t r = 0; r < rounds; ++r) {
    std::string spec;
    for (const char* site : kSites) {
      const double roll = aux.NextDouble();
      const char* code = kCodes[aux.NextBelow(6)];
      const uint64_t arg = aux.NextBelow(8);
      if (roll < 0.45) continue;  // This site stays healthy this round.
      std::string policy;
      if (roll < 0.65) {
        policy = std::string("error(") + code + ")";
      } else if (roll < 0.80) {
        policy = "delay(" + std::to_string(1 + arg) + ")";
      } else {
        policy = std::string("every(") + std::to_string(2 + arg % 3) + "," +
                 code + ")";
      }
      if (!spec.empty()) spec += ";";
      spec += std::string(site) + "=" + policy;
    }
    failpoint::ScopedFailpoints armed(spec);
    serve::QuotaOptions quota_options;
    if (aux.NextDouble() < 0.5) {
      quota_options.max_in_flight = 1 + aux.NextBelow(3);
    }
    serve::ClientQuota quota(quota_options);
    std::map<size_t, std::string> observed;
    Status round_status = run_pass(&quota, &observed);
    if (!round_status.ok()) {
      return Status::FailedPrecondition("chaos round " + std::to_string(r) +
                                        " [" + spec + "]: " +
                                        round_status.ToString());
    }
    for (const auto& [j, payload] : observed) {
      if (payload != reference[j]) {
        return Status::FailedPrecondition(
            "chaos round " + std::to_string(r) + " [" + spec + "]: job " +
            std::to_string(j) +
            " succeeded with a payload different from the fault-free run");
      }
    }
  }
  std::remove(csv_path.c_str());
  return Status::OK();
}

Status EvalColumnarRowBitIdentical(const ReproCase& repro) {
  // The columnar plane is a pure representation change (docs/performance.md):
  // every risk vector and every released byte must match the row plane
  // exactly. Run the four measures plus a full audited cycle under each
  // plane and compare.
  const std::string measure_name = Param(repro, "measure", "k-anonymity");
  core::CycleOptions options;
  options.threshold = ParamDouble(repro, "threshold", 0.5);
  options.risk = ContextFrom(repro);

  struct PlaneOutput {
    std::vector<std::vector<double>> risks;  // One vector per measure.
    std::string released_csv;
  };
  const char* kMeasures[] = {"k-anonymity", "reidentification", "individual",
                             "suda"};
  auto run_on_plane = [&](core::DataPlane plane) -> Result<PlaneOutput> {
    const core::DataPlane previous = core::ActiveDataPlane();
    core::SetDataPlane(plane);
    auto run = [&]() -> Result<PlaneOutput> {
      PlaneOutput out;
      for (const char* name : kMeasures) {
        VADASA_ASSIGN_OR_RETURN(const auto measure, core::MakeRiskMeasure(name));
        VADASA_ASSIGN_OR_RETURN(std::vector<double> risks,
                                measure->ComputeRisks(repro.table, options.risk));
        out.risks.push_back(std::move(risks));
      }
      VADASA_ASSIGN_OR_RETURN(const auto cycle_measure,
                              core::MakeRiskMeasure(measure_name));
      core::LocalSuppression suppression;
      core::AnonymizationCycle cycle(cycle_measure.get(), &suppression, options);
      MicrodataTable released = repro.table;
      VADASA_RETURN_NOT_OK(cycle.Run(&released).status());
      out.released_csv = WriteCsv(released.ToCsv());
      return out;
    };
    Result<PlaneOutput> result = run();
    core::SetDataPlane(previous);
    return result;
  };

  VADASA_ASSIGN_OR_RETURN(const PlaneOutput row,
                          run_on_plane(core::DataPlane::kRow));
  VADASA_ASSIGN_OR_RETURN(const PlaneOutput columnar,
                          run_on_plane(core::DataPlane::kColumnar));
  for (size_t m = 0; m < std::size(kMeasures); ++m) {
    // Bit-identical, not approximately equal: memcmp via the == on doubles.
    if (row.risks[m] != columnar.risks[m]) {
      return Status::FailedPrecondition(
          std::string(kMeasures[m]) +
          ": columnar risks differ from the row plane");
    }
  }
  if (row.released_csv != columnar.released_csv) {
    return Status::FailedPrecondition(
        "cycle(" + measure_name +
        "): columnar release is not byte-identical to the row plane");
  }
  return Status::OK();
}

/// Builds a random DeltaBatch against `table`'s current shape from `aux`.
/// Appended/updated rows usually copy an existing row and perturb one cell,
/// sometimes to a labelled null — the suppression-shaped mutations a
/// streaming feed actually carries. Deterministic in (aux state, table).
Result<core::DeltaBatch> RandomDelta(Rng* aux, const MicrodataTable& table) {
  auto random_row = [&]() {
    std::vector<Value> row;
    if (table.num_rows() > 0 && aux->NextDouble() < 0.8) {
      row = table.row(aux->NextBelow(table.num_rows()));
    } else {
      for (const auto& attribute : table.attributes()) {
        row.push_back(attribute.category == AttributeCategory::kWeight
                          ? Value::Double(1.0 + aux->NextBelow(4))
                          : Value::String("d" + std::to_string(aux->NextBelow(6))));
      }
    }
    // Perturb one non-weight cell so deltas actually move groups around.
    const size_t c = aux->NextBelow(table.num_columns());
    if (table.attributes()[c].category != AttributeCategory::kWeight) {
      row[c] = aux->NextDouble() < 0.3
                   ? Value::Null(static_cast<int>(aux->NextBelow(50)))
                   : Value::String("delta-" + std::to_string(aux->NextBelow(8)));
    }
    return row;
  };
  core::DeltaBatchBuilder builder(table.num_columns());
  const size_t nops = 1 + aux->NextBelow(4);
  for (size_t o = 0; o < nops; ++o) {
    const double roll = aux->NextDouble();
    if (table.num_rows() == 0 || roll < 0.4) {
      builder.Append(random_row());
    } else if (roll < 0.75) {
      builder.Update(aux->NextBelow(table.num_rows()), random_row());
    } else {
      builder.Delete(aux->NextBelow(table.num_rows()));
    }
  }
  return builder.Build();
}

Status EvalDeltaVsFullRecompute(const ReproCase& repro) {
  // The incremental-maintenance contract (docs/api.md §"Streaming deltas"):
  // a session maintained through Session::Apply must be indistinguishable —
  // risk vectors, released bytes, audit text — from a cold session built
  // from scratch over the exact post-delta table, on both data planes and
  // across chained delta steps.
  api::SessionOptions options;
  options.risk_measure = Param(repro, "measure", "k-anonymity");
  options.k = static_cast<int>(ParamU64(repro, "k", 2));
  options.threshold = ParamDouble(repro, "threshold", 0.5);
  options.standard_nulls = Param(repro, "semantics", "maybe") == "standard";
  const size_t steps = ParamU64(repro, "steps", 2);

  auto run_on_plane = [&](core::DataPlane plane) -> Status {
    const core::DataPlane previous = core::ActiveDataPlane();
    core::SetDataPlane(plane);
    auto run = [&]() -> Status {
      Rng aux(repro.seed);
      const auto shared = std::make_shared<const MicrodataTable>(repro.table);
      VADASA_ASSIGN_OR_RETURN(
          api::Session session,
          api::Session::FromShared(shared, nullptr, options));
      VADASA_RETURN_NOT_OK(session.Warm());
      for (size_t s = 0; s < steps; ++s) {
        VADASA_ASSIGN_OR_RETURN(const core::DeltaBatch batch,
                                RandomDelta(&aux, *session.shared_table()));
        VADASA_ASSIGN_OR_RETURN(api::Session child, session.Apply(batch));
        VADASA_ASSIGN_OR_RETURN(
            api::Session cold,
            api::Session::FromShared(child.shared_table(), nullptr, options));
        VADASA_RETURN_NOT_OK(cold.Warm());
        VADASA_ASSIGN_OR_RETURN(const api::RiskReport incremental, child.Risk());
        VADASA_ASSIGN_OR_RETURN(const api::RiskReport reference, cold.Risk());
        if (incremental.tuple_risks != reference.tuple_risks) {
          return Status::FailedPrecondition(
              "step " + std::to_string(s) +
              ": incremental risks differ from the cold rebuild");
        }
        VADASA_ASSIGN_OR_RETURN(const api::AnonymizeResponse inc_release,
                                child.Anonymize());
        VADASA_ASSIGN_OR_RETURN(const api::AnonymizeResponse ref_release,
                                cold.Anonymize());
        if (WriteCsv(inc_release.table.ToCsv()) !=
            WriteCsv(ref_release.table.ToCsv())) {
          return Status::FailedPrecondition(
              "step " + std::to_string(s) +
              ": incremental release is not byte-identical to the cold rebuild");
        }
        if (inc_release.ToText() != ref_release.ToText()) {
          return Status::FailedPrecondition(
              "step " + std::to_string(s) +
              ": incremental audit text differs from the cold rebuild");
        }
        session = std::move(child);
      }
      return Status::OK();
    };
    const Status status = run();
    core::SetDataPlane(previous);
    return status;
  };

  VADASA_RETURN_NOT_OK(run_on_plane(core::DataPlane::kRow));
  return run_on_plane(core::DataPlane::kColumnar);
}

Status EvalCachedResultBitIdentical(const ReproCase& repro) {
  // The result-cache coherence contract (docs/serving.md): a hit replays the
  // exact bytes of the cold run it memoized, a primed hot policy keeps
  // hitting across interleaved unique-policy traffic, and replacing the
  // dataset's content can never serve a stale payload — the first hot
  // request after a one-cell edit must miss and match the edited table's
  // cold run. Checked through the live protocol stack on both data planes.
  failpoint::DisarmAll();  // A leaked serve.cache.fill fault would drop fills.

  const size_t storm = ParamU64(repro, "njobs", 4);
  const size_t workers = ParamU64(repro, "workers", 2);
  const size_t shards = ParamU64(repro, "shards", 1);

  // The one-cell edit for the replace phase. Tables with no editable QI cell
  // skip that phase; the prime/storm interleaving checks still run.
  MicrodataTable edited = repro.table;
  size_t edit_row = 0, edit_col = 0;
  const bool can_edit = PickQiCell(repro, &edit_row, &edit_col);
  if (can_edit) {
    edited.set_cell(edit_row, edit_col,
                    Value::String("cache-coherence-edit"));
  }

  // `seed` participates in the canonical policy key, so a nonzero per-job
  // seed mints a unique policy (a guaranteed miss) over the same dataset.
  auto submit_line = [&](const std::string& action, uint64_t seed) {
    Json::Object req;
    req["op"] = "submit";
    req["dataset"] = "cache-mem";
    req["action"] = action;
    req["measure"] = Param(repro, "measure", "k-anonymity");
    req["k"] = Json(static_cast<int64_t>(ParamU64(repro, "k", 2)));
    req["threshold"] = ParamDouble(repro, "threshold", 0.5);
    req["standard_nulls"] = Param(repro, "semantics", "maybe") == "standard";
    if (seed != 0) req["seed"] = Json(static_cast<int64_t>(seed));
    return Json(std::move(req)).Dump();
  };
  auto submit = [](serve::Protocol* protocol,
                   const std::string& line) -> Result<uint64_t> {
    bool shutdown = false;
    VADASA_ASSIGN_OR_RETURN(const Json response,
                            Json::Parse(protocol->Handle(line, &shutdown)));
    if (!response.GetBool("ok", false)) {
      return Status::FailedPrecondition("submit rejected: " +
                                        response.GetString("error", "?"));
    }
    return static_cast<uint64_t>(response.GetInt("id", 0));
  };
  // One terminal result: the cached bit plus the payload fields that must be
  // byte-stable (timings and trace ids legitimately differ).
  struct Outcome {
    bool cached = false;
    std::string payload;
  };
  auto result_of = [](serve::Protocol* protocol,
                      uint64_t id) -> Result<Outcome> {
    Json::Object req;
    req["op"] = "result";
    req["id"] = Json(id);
    bool shutdown = false;
    VADASA_ASSIGN_OR_RETURN(
        const Json response,
        Json::Parse(protocol->Handle(Json(std::move(req)).Dump(), &shutdown)));
    if (!response.GetBool("ok", false) ||
        response.GetString("state", "") != "done") {
      return Status::FailedPrecondition(
          "job " + std::to_string(id) + " did not finish kDone: " +
          response.GetString("error", response.GetString("state", "?")));
    }
    Outcome out;
    out.cached = response.GetBool("cached", false);
    Json::Object payload;
    for (const char* key : {"csv", "audit", "risk"}) {
      if (response.Has(key)) payload[key] = response[key];
    }
    out.payload = Json(std::move(payload)).Dump();
    return out;
  };
  auto run_job = [&](serve::Protocol* protocol, const std::string& action,
                     uint64_t seed) -> Result<Outcome> {
    VADASA_ASSIGN_OR_RETURN(const uint64_t id,
                            submit(protocol, submit_line(action, seed)));
    return result_of(protocol, id);
  };

  const char* kActions[] = {"risk", "anonymize"};
  auto run_on_plane = [&](core::DataPlane plane) -> Status {
    const core::DataPlane previous = core::ActiveDataPlane();
    core::SetDataPlane(plane);
    auto run = [&]() -> Status {
      // References: the identical protocol stack with caching disabled,
      // before and after the content edit.
      std::map<std::string, std::string> reference;
      {
        serve::DatasetRegistry registry;
        VADASA_RETURN_NOT_OK(registry.Register("cache-mem", repro.table));
        serve::SchedulerOptions scheduler_options;
        scheduler_options.workers = workers;
        scheduler_options.shards = shards;
        scheduler_options.max_queue = storm + 4;
        serve::JobScheduler scheduler(scheduler_options);
        serve::Protocol protocol(&registry, &scheduler);
        for (const char* action : kActions) {
          VADASA_ASSIGN_OR_RETURN(const Outcome cold,
                                  run_job(&protocol, action, 0));
          if (cold.cached) {
            return Status::FailedPrecondition(
                "cache-free stack reported cached:true");
          }
          reference[action] = cold.payload;
        }
        if (can_edit) {
          VADASA_RETURN_NOT_OK(registry.Replace("cache-mem", edited));
          for (const char* action : kActions) {
            VADASA_ASSIGN_OR_RETURN(const Outcome cold,
                                    run_job(&protocol, action, 0));
            reference[std::string(action) + "+edit"] = cold.payload;
          }
        }
        scheduler.Shutdown(/*drain=*/true);
      }
      // The cached stack under test.
      serve::ResultCache cache;
      serve::DatasetRegistry registry;
      registry.set_result_cache(&cache);
      VADASA_RETURN_NOT_OK(registry.Register("cache-mem", repro.table));
      serve::SchedulerOptions scheduler_options;
      scheduler_options.workers = workers;
      scheduler_options.shards = shards;
      scheduler_options.max_queue = storm + 4;
      scheduler_options.result_cache = &cache;
      serve::JobScheduler scheduler(scheduler_options);
      serve::Protocol protocol(&registry, &scheduler);

      // Prime both hot policies: each first run is a miss whose payload must
      // already match the cache-free reference.
      for (const char* action : kActions) {
        VADASA_ASSIGN_OR_RETURN(const Outcome prime,
                                run_job(&protocol, action, 0));
        if (prime.cached) {
          return Status::FailedPrecondition(std::string(action) +
                                            ": first run hit an empty cache");
        }
        if (prime.payload != reference[action]) {
          return Status::FailedPrecondition(
              std::string(action) +
              ": cold run differs from the cache-free stack");
        }
      }

      // Storm: interleave hot submits with unique-policy submits, then
      // collect the results in a shuffled order. Primed hot policies must
      // hit with the reference bytes; unique policies must miss.
      Rng aux(repro.seed);
      struct StormJob {
        uint64_t id = 0;
        bool hot = false;
        std::string action;
      };
      std::vector<StormJob> jobs(storm);
      for (size_t j = 0; j < storm; ++j) {
        jobs[j].hot = aux.NextDouble() < 0.6;
        jobs[j].action = kActions[aux.NextBelow(2)];
        const uint64_t seed = jobs[j].hot ? 0 : 1000 + j;
        VADASA_ASSIGN_OR_RETURN(
            jobs[j].id, submit(&protocol, submit_line(jobs[j].action, seed)));
      }
      for (size_t j = storm; j > 1; --j) {
        std::swap(jobs[j - 1], jobs[aux.NextBelow(j)]);
      }
      for (const StormJob& job : jobs) {
        VADASA_ASSIGN_OR_RETURN(const Outcome outcome,
                                result_of(&protocol, job.id));
        if (outcome.cached != job.hot) {
          return Status::FailedPrecondition(
              job.action + " job " + std::to_string(job.id) + ": expected " +
              (job.hot ? "a hit on the primed policy" :
                         "a miss on a unique policy") +
              ", got cached:" + (outcome.cached ? "true" : "false"));
        }
        if (job.hot && outcome.payload != reference[job.action]) {
          return Status::FailedPrecondition(
              job.action + " job " + std::to_string(job.id) +
              ": cache hit is not byte-identical to the cold run");
        }
      }

      // Replace the dataset's content: the very next hot request must MISS
      // (a stale hit would serve the old table's bytes) and match the edited
      // table's cold reference; the request after it must hit those bytes.
      if (can_edit) {
        VADASA_RETURN_NOT_OK(registry.Replace("cache-mem", edited));
        for (const char* action : kActions) {
          VADASA_ASSIGN_OR_RETURN(const Outcome first,
                                  run_job(&protocol, action, 0));
          if (first.cached) {
            return Status::FailedPrecondition(
                std::string(action) +
                ": stale cache hit after the dataset content changed");
          }
          if (first.payload != reference[std::string(action) + "+edit"]) {
            return Status::FailedPrecondition(
                std::string(action) +
                ": post-replace run differs from the edited table's reference");
          }
          VADASA_ASSIGN_OR_RETURN(const Outcome second,
                                  run_job(&protocol, action, 0));
          if (!second.cached || second.payload != first.payload) {
            return Status::FailedPrecondition(
                std::string(action) +
                ": re-primed entry did not replay the post-replace bytes");
          }
        }
      }
      scheduler.Shutdown(/*drain=*/true);
      return Status::OK();
    };
    const Status status = run();
    core::SetDataPlane(previous);
    return status;
  };

  VADASA_RETURN_NOT_OK(run_on_plane(core::DataPlane::kRow));
  return run_on_plane(core::DataPlane::kColumnar);
}

vadalog::EngineOptions BoundedEngineOptions() {
  vadalog::EngineOptions options;
  options.max_rounds = 200;
  options.max_facts = 20000;
  options.track_provenance = false;
  return options;
}

Status EvalVadalogDeterminism(const ReproCase& repro) {
  auto program = vadalog::Parse(repro.program);
  if (!program.ok()) {
    // The grammar is parseable by construction; a shrunk fragment may not be.
    return Status::OK();
  }
  auto run_once = [&](vadalog::Database* db) {
    vadalog::Engine engine(BoundedEngineOptions());
    return engine.Run(*program, db);
  };
  vadalog::Database db1, db2;
  auto r1 = run_once(&db1);
  auto r2 = run_once(&db2);
  if (r1.ok() != r2.ok()) {
    return Status::FailedPrecondition(
        "engine nondeterministic: one run succeeded, the other failed with " +
        (r1.ok() ? r2.status() : r1.status()).ToString());
  }
  if (!r1.ok()) return Status::OK();  // Same failure both times: deterministic.
  if (db1.size() != db2.size()) {
    return Status::FailedPrecondition(
        "engine nondeterministic: " + std::to_string(db1.size()) + " vs " +
        std::to_string(db2.size()) + " facts across two identical runs");
  }
  for (const std::string& predicate : db1.Predicates()) {
    if (db1.DumpPredicate(predicate) != db2.DumpPredicate(predicate)) {
      return Status::FailedPrecondition(
          "engine nondeterministic: relation \"" + predicate +
          "\" differs across two identical runs");
    }
  }
  return Status::OK();
}

Status EvalVadalogRobustness(const ReproCase& repro) {
  // Must not crash; any Status outcome is acceptable.
  auto program = vadalog::Parse(repro.program);
  if (!program.ok()) return Status::OK();
  vadalog::Database db;
  vadalog::Engine engine(BoundedEngineOptions());
  (void)engine.Run(*program, &db);
  return Status::OK();
}

// --- Generators. ---

const char* PickMeasure(Rng* rng) {
  return rng->NextDouble() < 0.5 ? "k-anonymity" : "reidentification";
}

const char* PickSemantics(Rng* rng, double maybe_probability) {
  return rng->NextDouble() < maybe_probability ? "maybe" : "standard";
}

std::vector<Property> BuildCatalog() {
  std::vector<Property> catalog;

  catalog.push_back(
      {"risk-unit-range",
       "every measure's per-tuple risk is a probability in [0,1] (Section 4.2)",
       false,
       [](Rng* rng, uint64_t i) {
         ReproCase repro = TableCase("risk-unit-range", rng, i);
         repro.params["k"] = std::to_string(rng->NextInt(2, 4));
         repro.params["semantics"] = PickSemantics(rng, 0.5);
         return repro;
       },
       EvalRiskUnitRange});

  catalog.push_back(
      {"post-cycle-safety",
       "after Algorithm 2 every released tuple is safe (risk <= T) or exhausted",
       false,
       [](Rng* rng, uint64_t i) {
         ReproCase repro = TableCase("post-cycle-safety", rng, i);
         repro.params["measure"] = PickMeasure(rng);
         repro.params["k"] = std::to_string(rng->NextInt(2, 4));
         repro.params["threshold"] =
             std::to_string(rng->NextDouble() < 0.5 ? 0.34 : 0.5);
         repro.params["semantics"] = PickSemantics(rng, 0.7);
         return repro;
       },
       EvalPostCycleSafety});

  catalog.push_back(
      {"suppression-monotone",
       "suppression never shrinks a =⊥ group nor raises k-anonymity risk",
       false,
       [](Rng* rng, uint64_t i) {
         ReproCase repro = TableCase("suppression-monotone", rng, i);
         repro.params["k"] = std::to_string(rng->NextInt(2, 4));
         return repro;
       },
       EvalSuppressionMonotone});

  catalog.push_back(
      {"suppression-fresh-labels",
       "an injected null is fresh: standard-semantics groups never grow",
       false,
       [](Rng* rng, uint64_t i) {
         TableGenOptions options;
         options.null_probability = 0.15;  // Pre-suppressed inputs are the point.
         return TableCase("suppression-fresh-labels", rng, i, options);
       },
       EvalSuppressionFreshLabels});

  catalog.push_back(
      {"suda-permutation",
       "SUDA scores are invariant under row permutation (Algorithm 6)",
       false,
       [](Rng* rng, uint64_t i) { return TableCase("suda-permutation", rng, i); },
       EvalSudaPermutation});

  catalog.push_back(
      {"cluster-risk-bounds",
       "cluster risk equals 1 - prod(1-rho), bounds members, caps at 1 (Alg. 9)",
       false,
       [](Rng* rng, uint64_t i) {
         ReproCase repro = TableCase("cluster-risk-bounds", rng, i);
         repro.params["edge_p"] = "0.15";
         repro.params["semantics"] = PickSemantics(rng, 0.5);
         return repro;
       },
       EvalClusterRiskBounds});

  catalog.push_back(
      {"infoloss-monotone",
       "information loss is monotone in anonymization steps (Fig. 7b)",
       false,
       [](Rng* rng, uint64_t i) { return TableCase("infoloss-monotone", rng, i); },
       EvalInfoLossMonotone});

  catalog.push_back(
      {"cycle-differential",
       "imperative cycle and declarative Vadalog cycle agree on the release contract",
       false,
       [](Rng* rng, uint64_t i) {
         TableGenOptions options;
         options.max_rows = 16;  // Each case spins a full chase; keep it small.
         options.max_qi = 3;
         ReproCase repro = TableCase("cycle-differential", rng, i, options);
         repro.params["measure"] = PickMeasure(rng);
         repro.params["k"] = std::to_string(rng->NextInt(2, 3));
         repro.params["threshold"] =
             std::to_string(rng->NextDouble() < 0.5 ? 0.34 : 0.5);
         repro.params["semantics"] = PickSemantics(rng, 0.7);
         repro.params["with_graph"] = rng->NextDouble() < 0.3 ? "1" : "0";
         repro.params["edge_p"] = "0.15";
         return repro;
       },
       EvalCycleDifferential});

  catalog.push_back(
      {"parallel-determinism",
       "sequential and VADASA_THREADS=N runs are bit-identical",
       false,
       [](Rng* rng, uint64_t i) {
         ReproCase repro = TableCase("parallel-determinism", rng, i);
         repro.params["measure"] = PickMeasure(rng);
         repro.params["threads"] = std::to_string(rng->NextInt(2, 5));
         repro.params["semantics"] = PickSemantics(rng, 0.5);
         return repro;
       },
       EvalParallelDeterminism});

  catalog.push_back(
      {"serve-concurrent-jobs-bit-identical",
       "N concurrent scheduler jobs match N sequential facade calls byte-for-byte",
       false,
       [](Rng* rng, uint64_t i) {
         TableGenOptions options;
         options.max_rows = 20;  // njobs full cycles per case; keep each cheap.
         options.max_qi = 3;
         ReproCase repro =
             TableCase("serve-concurrent-jobs-bit-identical", rng, i, options);
         repro.params["measure"] = PickMeasure(rng);
         repro.params["k"] = std::to_string(rng->NextInt(2, 4));
         repro.params["threshold"] =
             std::to_string(rng->NextDouble() < 0.5 ? 0.34 : 0.5);
         repro.params["semantics"] = PickSemantics(rng, 0.5);
         repro.params["njobs"] = std::to_string(rng->NextInt(2, 6));
         repro.params["workers"] = std::to_string(rng->NextInt(1, 4));
         repro.params["threads"] = std::to_string(rng->NextInt(2, 5));
         return repro;
       },
       EvalServeConcurrentBitIdentical});

  catalog.push_back(
      {"chaos-serve-never-corrupts",
       "random failpoint storms leave every response well-formed and every "
       "success bit-identical to the fault-free run",
       false,
       [](Rng* rng, uint64_t i) {
         TableGenOptions options;
         options.max_rows = 16;  // Each case runs several full passes.
         options.max_qi = 3;
         ReproCase repro =
             TableCase("chaos-serve-never-corrupts", rng, i, options);
         repro.params["measure"] = PickMeasure(rng);
         repro.params["k"] = std::to_string(rng->NextInt(2, 4));
         repro.params["threshold"] =
             std::to_string(rng->NextDouble() < 0.5 ? 0.34 : 0.5);
         repro.params["semantics"] = PickSemantics(rng, 0.5);
         repro.params["njobs"] = std::to_string(rng->NextInt(2, 4));
         repro.params["rounds"] = std::to_string(rng->NextInt(2, 3));
         repro.params["workers"] = std::to_string(rng->NextInt(1, 3));
         return repro;
       },
       EvalChaosServeNeverCorrupts});

  catalog.push_back(
      {"columnar-vs-row-bit-identical",
       "the dictionary-coded columnar plane reproduces the row plane byte-for-byte",
       false,
       [](Rng* rng, uint64_t i) {
         TableGenOptions options;
         options.null_probability = 0.12;  // Exercise the reserved null band.
         ReproCase repro =
             TableCase("columnar-vs-row-bit-identical", rng, i, options);
         repro.params["measure"] = PickMeasure(rng);
         repro.params["k"] = std::to_string(rng->NextInt(2, 4));
         repro.params["threshold"] =
             std::to_string(rng->NextDouble() < 0.5 ? 0.34 : 0.5);
         repro.params["semantics"] = PickSemantics(rng, 0.6);
         return repro;
       },
       EvalColumnarRowBitIdentical});

  catalog.push_back(
      {"delta-vs-full-recompute-bit-identical",
       "incrementally maintained sessions match a cold rebuild of the "
       "post-delta table byte-for-byte, on both data planes",
       false,
       [](Rng* rng, uint64_t i) {
         TableGenOptions options;
         options.max_rows = 18;  // Each case runs `steps` full cycles per plane.
         options.max_qi = 3;
         options.null_probability = 0.1;
         ReproCase repro = TableCase("delta-vs-full-recompute-bit-identical",
                                     rng, i, options);
         repro.params["measure"] = PickMeasure(rng);
         repro.params["k"] = std::to_string(rng->NextInt(2, 4));
         repro.params["threshold"] =
             std::to_string(rng->NextDouble() < 0.5 ? 0.34 : 0.5);
         repro.params["semantics"] = PickSemantics(rng, 0.6);
         repro.params["steps"] = std::to_string(rng->NextInt(1, 3));
         return repro;
       },
       EvalDeltaVsFullRecompute});

  catalog.push_back(
      {"cached-result-bit-identical",
       "result-cache hits replay the cold run's exact bytes and a content "
       "edit never serves a stale payload, on both data planes",
       false,
       [](Rng* rng, uint64_t i) {
         TableGenOptions options;
         options.max_rows = 18;  // Each case runs several full cycles per plane.
         options.max_qi = 3;
         ReproCase repro =
             TableCase("cached-result-bit-identical", rng, i, options);
         repro.params["measure"] = PickMeasure(rng);
         repro.params["k"] = std::to_string(rng->NextInt(2, 4));
         repro.params["threshold"] =
             std::to_string(rng->NextDouble() < 0.5 ? 0.34 : 0.5);
         repro.params["semantics"] = PickSemantics(rng, 0.5);
         repro.params["njobs"] = std::to_string(rng->NextInt(3, 6));
         repro.params["workers"] = std::to_string(rng->NextInt(1, 3));
         repro.params["shards"] = std::to_string(rng->NextInt(1, 3));
         return repro;
       },
       EvalCachedResultBitIdentical});

  catalog.push_back(
      {"vadalog-determinism",
       "two chases of the same generated warded program agree fact-for-fact",
       true,
       [](Rng* rng, uint64_t i) {
         ReproCase repro;
         repro.property = "vadalog-determinism";
         repro.seed = rng->Next();
         repro.case_index = i;
         repro.program = RandomVadalogProgram(rng);
         return repro;
       },
       EvalVadalogDeterminism});

  catalog.push_back(
      {"vadalog-robustness",
       "token soup and byte noise never crash the lexer, parser, or engine",
       true,
       [](Rng* rng, uint64_t i) {
         ReproCase repro;
         repro.property = "vadalog-robustness";
         repro.seed = rng->Next();
         repro.case_index = i;
         repro.program = rng->NextDouble() < 0.5 ? RandomTokenSoup(rng)
                                                 : RandomBytes(rng);
         return repro;
       },
       EvalVadalogRobustness});

  return catalog;
}

}  // namespace

const std::vector<Property>& PropertyCatalog() {
  static const std::vector<Property>* catalog =
      new std::vector<Property>(BuildCatalog());
  return *catalog;
}

const Property* FindProperty(const std::string& name) {
  for (const Property& property : PropertyCatalog()) {
    if (property.name == name) return &property;
  }
  return nullptr;
}

Status EvaluateRepro(const ReproCase& repro) {
  const Property* property = FindProperty(repro.property);
  if (property == nullptr) {
    return Status::NotFound("unknown property \"" + repro.property + "\"");
  }
  return property->evaluate(repro);
}

}  // namespace vadasa::testing
