#include "testing/repro.h"

#include <fstream>
#include <sstream>
#include <vector>

#include "common/csv.h"
#include "common/string_util.h"

namespace vadasa::testing {

using core::Attribute;
using core::AttributeCategory;
using core::MicrodataTable;

namespace {

constexpr const char* kMagic = "# vadasa-prop-repro v1";

std::string OneLine(std::string s) {
  for (char& c : s) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  return s;
}

}  // namespace

std::string ReproToString(const ReproCase& repro) {
  std::ostringstream os;
  os << kMagic << "\n";
  os << "property: " << OneLine(repro.property) << "\n";
  os << "seed: " << repro.seed << "\n";
  os << "case: " << repro.case_index << "\n";
  if (!repro.message.empty()) os << "message: " << OneLine(repro.message) << "\n";
  for (const auto& [key, value] : repro.params) {
    os << "param." << OneLine(key) << ": " << OneLine(value) << "\n";
  }
  if (repro.table.num_columns() > 0) {
    os << "table-name: " << OneLine(repro.table.name()) << "\n";
    std::vector<std::string> columns;
    for (const Attribute& a : repro.table.attributes()) {
      columns.push_back(a.name + "=" + AttributeCategoryToString(a.category));
    }
    os << "columns: " << Join(columns, "|") << "\n";
    os << "table:\n" << WriteCsv(repro.table.ToCsv()) << "end-table\n";
  }
  if (!repro.program.empty()) {
    std::string program = repro.program;
    if (program.back() != '\n') program += '\n';
    os << "program:\n" << program << "end-program\n";
  }
  return os.str();
}

Result<ReproCase> ReproFromString(const std::string& text) {
  std::vector<std::string> lines = Split(text, '\n');
  if (lines.empty() || Trim(lines[0]) != kMagic) {
    return Status::ParseError("not a vadasa prop repro file");
  }
  ReproCase repro;
  std::string table_name = "repro";
  std::string columns_spec;
  std::string table_csv;
  size_t i = 1;
  for (; i < lines.size(); ++i) {
    const std::string line = lines[i];
    if (Trim(line).empty()) continue;
    if (line == "table:") {
      for (++i; i < lines.size() && lines[i] != "end-table"; ++i) {
        table_csv += lines[i] + "\n";
      }
      if (i >= lines.size()) return Status::ParseError("unterminated table section");
      continue;
    }
    if (line == "program:") {
      for (++i; i < lines.size() && lines[i] != "end-program"; ++i) {
        repro.program += lines[i] + "\n";
      }
      if (i >= lines.size()) return Status::ParseError("unterminated program section");
      continue;
    }
    const size_t colon = line.find(": ");
    if (colon == std::string::npos) {
      return Status::ParseError("malformed repro line: " + line);
    }
    const std::string key = line.substr(0, colon);
    const std::string value = line.substr(colon + 2);
    if (key == "property") {
      repro.property = value;
    } else if (key == "seed") {
      repro.seed = std::stoull(value);
    } else if (key == "case") {
      repro.case_index = std::stoull(value);
    } else if (key == "message") {
      repro.message = value;
    } else if (key == "table-name") {
      table_name = value;
    } else if (key == "columns") {
      columns_spec = value;
    } else if (StartsWith(key, "param.")) {
      repro.params[key.substr(6)] = value;
    } else {
      return Status::ParseError("unknown repro key: " + key);
    }
  }
  if (repro.property.empty()) return Status::ParseError("repro has no property");

  if (!columns_spec.empty()) {
    std::vector<Attribute> attrs;
    for (const std::string& spec : Split(columns_spec, '|')) {
      const size_t eq = spec.find('=');
      if (eq == std::string::npos) {
        return Status::ParseError("malformed column spec: " + spec);
      }
      VADASA_ASSIGN_OR_RETURN(const AttributeCategory category,
                              core::AttributeCategoryFromString(spec.substr(eq + 1)));
      attrs.push_back({spec.substr(0, eq), "", category});
    }
    repro.table = MicrodataTable(table_name, std::move(attrs));
    if (!Trim(table_csv).empty()) {
      VADASA_ASSIGN_OR_RETURN(const CsvTable csv, ParseCsv(table_csv));
      if (csv.header.size() != repro.table.num_columns()) {
        return Status::ParseError("repro CSV width disagrees with columns spec");
      }
      for (const auto& row : csv.rows) {
        std::vector<Value> cells;
        for (const std::string& cell : row) cells.push_back(CellToValue(cell));
        VADASA_RETURN_NOT_OK(repro.table.AddRow(std::move(cells)));
      }
    }
  }
  return repro;
}

Status SaveRepro(const ReproCase& repro, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot write repro file " + path);
  out << ReproToString(repro);
  out.close();
  if (!out) return Status::IoError("failed writing repro file " + path);
  return Status::OK();
}

Result<ReproCase> LoadRepro(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot read repro file " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ReproFromString(buffer.str());
}

}  // namespace vadasa::testing
