#ifndef VADASA_TESTING_REPRO_H_
#define VADASA_TESTING_REPRO_H_

#include <cstdint>
#include <map>
#include <string>

#include "common/result.h"
#include "core/microdata.h"

namespace vadasa::testing {

/// A self-contained, replayable failure case: the property that failed, the
/// seed of its auxiliary randomness, the (shrunk) input table and/or program,
/// and free-form parameters for diagnostics. Serialized to a single text file
/// so a failing CI run can be replayed locally with
///   VADASA_PROP_REPRO=case.repro ctest -R prop
/// or
///   vadasa_prop_replay --repro=case.repro
struct ReproCase {
  std::string property;
  /// Seed of the property's auxiliary Rng (row choices, permutations, …).
  uint64_t seed = 0;
  /// Index of the generated case within its run, for provenance.
  uint64_t case_index = 0;
  /// Free-form diagnostics (measure, k, threshold, …). Written and read
  /// back; properties may consult them on replay.
  std::map<std::string, std::string> params;
  /// The failing microdata table (empty for program-only cases).
  core::MicrodataTable table;
  /// The failing Vadalog program ("" for table-only cases).
  std::string program;
  /// The violation message captured when the case failed.
  std::string message;
};

/// Renders a repro case to its file format.
std::string ReproToString(const ReproCase& repro);

/// Parses a repro case; fails with ParseError on malformed input.
Result<ReproCase> ReproFromString(const std::string& text);

Status SaveRepro(const ReproCase& repro, const std::string& path);
Result<ReproCase> LoadRepro(const std::string& path);

}  // namespace vadasa::testing

#endif  // VADASA_TESTING_REPRO_H_
