#ifndef VADASA_TESTING_GENERATORS_H_
#define VADASA_TESTING_GENERATORS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/business.h"
#include "core/hierarchy.h"
#include "core/microdata.h"

namespace vadasa::testing {

/// Knobs of the random-microdata generator. The defaults produce small,
/// collision-heavy tables (tiny value domains, skewed draws, duplicates,
/// pre-suppressed cells) — the regime where grouping, maybe-match and the
/// anonymization cycle actually have work to do.
struct TableGenOptions {
  size_t min_rows = 1;
  size_t max_rows = 48;
  int min_qi = 1;
  int max_qi = 5;
  /// Distinct values per quasi-identifier column (domain size is drawn
  /// uniformly in [2, max_domain]).
  int max_domain = 6;
  /// Probability that a generated QI cell starts out as a labelled null
  /// (models partially pre-anonymized inputs).
  double null_probability = 0.04;
  /// Probability that a row copies the QI projection of an earlier row.
  double duplicate_probability = 0.25;
  /// Probability that a QI column is integer-valued instead of string-valued.
  double int_column_probability = 0.2;
  bool with_identifier = true;
  bool with_weight = true;
  bool with_non_identifying = true;
  /// Zipf exponent for value draws (0 = uniform; higher = more uniques).
  double skew = 1.1;
};

/// A random microdata table drawn from `options`. Deterministic in `*rng`.
core::MicrodataTable RandomTable(Rng* rng, const TableGenOptions& options = {});

/// A random generalization hierarchy covering every string-valued
/// quasi-identifier column of `table`: per column, the distinct values are
/// folded into interval-style roll-ups with a random fan-in.
core::Hierarchy RandomHierarchy(Rng* rng, const core::MicrodataTable& table);

/// A random ownership graph over the identifier values of `table`.
/// `edge_probability` is the chance that a given ordered company pair gets an
/// ownership edge; shares are drawn in (0.2, 1.0], so some edges confer
/// control (> 0.5) and some do not.
core::OwnershipGraph RandomOwnershipGraph(Rng* rng, const core::MicrodataTable& table,
                                          double edge_probability = 0.06);

/// Grammar knobs of the random Vadalog program generator.
struct ProgramGenOptions {
  /// Stay in the fragment the naive reference evaluator understands
  /// (positive Datalog with variable comparisons) — required for
  /// differential testing; turn off for fuzzing.
  bool positive_fragment_only = false;
  /// Allow existential head variables (warded by construction: existential
  /// rules are stratified, never recursive through the existential).
  bool allow_existentials = true;
  /// Allow a monotonic msum aggregation rule.
  bool allow_aggregates = true;
  /// Allow stratified negation in rule bodies.
  bool allow_negation = true;
  size_t max_facts = 14;
  size_t max_rules = 6;
};

/// A random Vadalog program from a small warded-by-construction grammar:
/// EDB facts, positive join rules with optional comparisons, optional linear
/// recursion, and (outside the positive fragment) existential heads,
/// stratified negation and monotonic aggregation. Deterministic in `*rng`.
std::string RandomVadalogProgram(Rng* rng, const ProgramGenOptions& options = {});

/// A whitespace-joined soup of Vadalog-ish tokens — parser stress input.
std::string RandomTokenSoup(Rng* rng, size_t max_tokens = 40);

/// Random printable-ASCII bytes — lexer stress input.
std::string RandomBytes(Rng* rng, size_t max_len = 200);

}  // namespace vadasa::testing

#endif  // VADASA_TESTING_GENERATORS_H_
