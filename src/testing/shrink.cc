#include "testing/shrink.h"

#include <algorithm>
#include <vector>

#include "common/string_util.h"

namespace vadasa::testing {

using core::MicrodataTable;

namespace {

MicrodataTable KeepRows(const MicrodataTable& table, const std::vector<bool>& keep) {
  MicrodataTable out(table.name(), table.attributes());
  for (size_t r = 0; r < table.num_rows(); ++r) {
    if (keep[r]) {
      Status st = out.AddRow(table.row(r));
      (void)st;
    }
  }
  return out;
}

/// One pass of chunked row removal; returns true when anything was removed.
bool ShrinkRowsOnce(MicrodataTable* table, const TableStillFails& still_fails,
                    ShrinkStats* stats) {
  bool removed_any = false;
  for (size_t chunk = std::max<size_t>(1, table->num_rows() / 2); chunk >= 1;
       chunk /= 2) {
    bool removed_at_this_size = true;
    while (removed_at_this_size && table->num_rows() > chunk) {
      removed_at_this_size = false;
      for (size_t start = 0; start + chunk <= table->num_rows(); start += chunk) {
        std::vector<bool> keep(table->num_rows(), true);
        for (size_t r = start; r < start + chunk; ++r) keep[r] = false;
        MicrodataTable candidate = KeepRows(*table, keep);
        ++stats->evaluations;
        if (still_fails(candidate)) {
          stats->rows_removed += chunk;
          *table = std::move(candidate);
          removed_at_this_size = true;
          removed_any = true;
          break;  // Offsets shifted; rescan at this chunk size.
        }
      }
    }
    if (chunk == 1) break;
  }
  return removed_any;
}

/// One pass of column removal; returns true when anything was removed.
bool ShrinkColumnsOnce(MicrodataTable* table, const TableStillFails& still_fails,
                       ShrinkStats* stats) {
  bool removed_any = false;
  for (size_t c = 0; c < table->num_columns();) {
    MicrodataTable candidate = DropColumn(*table, c);
    ++stats->evaluations;
    if (still_fails(candidate)) {
      ++stats->columns_removed;
      *table = std::move(candidate);
      removed_any = true;
      // Re-test the same index: a new column shifted into it.
    } else {
      ++c;
    }
  }
  return removed_any;
}

}  // namespace

core::MicrodataTable DropRow(const core::MicrodataTable& table, size_t row) {
  std::vector<bool> keep(table.num_rows(), true);
  if (row < keep.size()) keep[row] = false;
  return KeepRows(table, keep);
}

core::MicrodataTable DropColumn(const core::MicrodataTable& table, size_t column) {
  std::vector<core::Attribute> attrs;
  for (size_t c = 0; c < table.num_columns(); ++c) {
    if (c != column) attrs.push_back(table.attributes()[c]);
  }
  MicrodataTable out(table.name(), std::move(attrs));
  for (size_t r = 0; r < table.num_rows(); ++r) {
    std::vector<Value> row;
    for (size_t c = 0; c < table.num_columns(); ++c) {
      if (c != column) row.push_back(table.cell(r, c));
    }
    Status st = out.AddRow(std::move(row));
    (void)st;
  }
  return out;
}

core::MicrodataTable ShrinkTable(const core::MicrodataTable& failing,
                                 const TableStillFails& still_fails,
                                 ShrinkStats* stats) {
  ShrinkStats local;
  if (stats == nullptr) stats = &local;
  MicrodataTable current = failing;
  // Alternate row and column passes until neither makes progress.
  for (bool progress = true; progress;) {
    progress = ShrinkRowsOnce(&current, still_fails, stats);
    progress |= ShrinkColumnsOnce(&current, still_fails, stats);
  }
  return current;
}

std::string ShrinkProgram(const std::string& failing,
                          const ProgramStillFails& still_fails,
                          ShrinkStats* stats) {
  ShrinkStats local;
  if (stats == nullptr) stats = &local;
  std::vector<std::string> lines = Split(failing, '\n');
  // Drop a trailing empty segment so the fixpoint does not chase it.
  while (!lines.empty() && Trim(lines.back()).empty()) lines.pop_back();
  for (bool progress = true; progress;) {
    progress = false;
    for (size_t i = 0; i < lines.size();) {
      std::vector<std::string> candidate_lines = lines;
      candidate_lines.erase(candidate_lines.begin() + static_cast<long>(i));
      std::string candidate;
      for (const auto& l : candidate_lines) candidate += l + "\n";
      ++stats->evaluations;
      if (still_fails(candidate)) {
        lines = std::move(candidate_lines);
        ++stats->lines_removed;
        progress = true;
      } else {
        ++i;
      }
    }
  }
  std::string out;
  for (const auto& l : lines) out += l + "\n";
  return out;
}

}  // namespace vadasa::testing
