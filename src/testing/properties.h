#ifndef VADASA_TESTING_PROPERTIES_H_
#define VADASA_TESTING_PROPERTIES_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "testing/repro.h"

namespace vadasa::testing {

/// A named, replayable property: a generator that draws one case from a
/// master Rng, and an evaluator that re-derives every auxiliary input (cell
/// choices, permutations, ownership graphs) from the case's own seed — so
/// evaluation is a pure function of the ReproCase. That makes the same
/// evaluator serve three roles: the live check, the shrinking predicate, and
/// the replay of a saved repro file.
struct Property {
  std::string name;
  /// One-line description, mirrored in docs/testing.md.
  std::string summary;
  /// Shrink the program (line drops) instead of the table (row/column drops).
  bool shrink_program = false;
  std::function<ReproCase(Rng*, uint64_t case_index)> generate;
  std::function<Status(const ReproCase&)> evaluate;
};

/// All registered properties, in catalog order.
const std::vector<Property>& PropertyCatalog();

/// Looks up a property by name; nullptr when unknown.
const Property* FindProperty(const std::string& name);

/// Re-evaluates a (possibly loaded-from-disk) repro case by dispatching on
/// its property name. NotFound for an unknown property.
Status EvaluateRepro(const ReproCase& repro);

}  // namespace vadasa::testing

#endif  // VADASA_TESTING_PROPERTIES_H_
