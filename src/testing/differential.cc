#include "testing/differential.h"

#include <cmath>

#include "common/thread_pool.h"
#include "core/anonymize.h"
#include "core/group_index.h"
#include "core/risk.h"
#include "testing/oracles.h"

namespace vadasa::testing {

using core::AnonymizationCycle;
using core::AttributeCategory;
using core::CycleOptions;
using core::CycleStats;
using core::MicrodataTable;

namespace {

/// The native RiskContext mirroring a BridgeOptions configuration.
core::RiskContext ContextFor(const core::BridgeOptions& options) {
  core::RiskContext ctx;
  ctx.k = options.k;
  ctx.semantics = options.maybe_match ? core::NullSemantics::kMaybeMatch
                                      : core::NullSemantics::kStandard;
  return ctx;
}

Status CheckRelease(const std::string& label, const MicrodataTable& input,
                    const MicrodataTable& released,
                    const std::vector<double>& input_risks,
                    const core::RiskMeasure& measure, const core::RiskContext& ctx,
                    double threshold) {
  const std::vector<size_t> qis = input.QuasiIdentifierColumns();
  // (3) Released tuples are safe or exhausted.
  Status post = CheckPostCycleRisks(released, measure, ctx, threshold);
  if (!post.ok()) {
    return Status::FailedPrecondition(label + ": " + post.ToString());
  }
  // (2) + (4): under =⊥ risk is monotone non-increasing in suppression, so
  // initially safe tuples are never anonymized — they must be released
  // cell-identical (which also proves only risky tuples carry new nulls).
  // Under standard semantics suppression can *raise* a neighbour's risk
  // (Fig. 7c), so the untouched guarantee only holds for maybe-match.
  if (ctx.semantics != core::NullSemantics::kMaybeMatch) return Status::OK();
  for (size_t r = 0; r < input.num_rows(); ++r) {
    if (input_risks[r] > threshold) continue;
    for (const size_t c : qis) {
      if (!released.cell(r, c).Equals(input.cell(r, c))) {
        return Status::FailedPrecondition(
            label + ": safe row " + std::to_string(r) + " had \"" +
            input.attributes()[c].name + "\" rewritten from " +
            input.cell(r, c).ToString() + " to " + released.cell(r, c).ToString());
      }
    }
  }
  return Status::OK();
}

}  // namespace

Result<DifferentialReport> CheckCycleDifferential(const core::MicrodataTable& input,
                                                  const core::BridgeOptions& options,
                                                  const core::OwnershipGraph* graph) {
  DifferentialReport report;
  const core::RiskContext ctx = ContextFor(options);
  const std::string measure_name =
      options.risk_measure == "reidentification" ? "reidentification" : "k-anonymity";
  VADASA_ASSIGN_OR_RETURN(const auto measure, core::MakeRiskMeasure(measure_name));

  // The cluster transform keys rows by the first identifier column.
  std::string id_column;
  const auto id_cols = input.ColumnsWithCategory(AttributeCategory::kIdentifier);
  if (!id_cols.empty()) id_column = input.attributes()[id_cols[0]].name;

  VADASA_ASSIGN_OR_RETURN(std::vector<double> input_risks,
                          measure->ComputeRisks(input, ctx));
  if (graph != nullptr && !id_column.empty()) {
    core::MakeClusterRiskTransform(graph, id_column)(input, &input_risks);
  }
  for (const double r : input_risks) {
    if (r > options.threshold) ++report.initially_risky;
  }

  // --- Imperative path. ---
  CycleOptions cycle_options;
  cycle_options.threshold = options.threshold;
  cycle_options.risk = ctx;
  if (graph != nullptr && !id_column.empty()) {
    cycle_options.risk_transform = core::MakeClusterRiskTransform(graph, id_column);
  }
  core::LocalSuppression suppression;
  AnonymizationCycle cycle(measure.get(), &suppression, cycle_options);
  report.imperative = input;
  VADASA_ASSIGN_OR_RETURN(report.imperative_stats, cycle.Run(&report.imperative));

  // --- Declarative path. ---
  core::VadalogBridge bridge(options);
  if (graph != nullptr) {
    VADASA_ASSIGN_OR_RETURN(report.declarative,
                            bridge.RunDeclarativeEnhancedCycle(input, *graph, nullptr));
  } else {
    VADASA_ASSIGN_OR_RETURN(report.declarative,
                            bridge.RunDeclarativeCycle(input, nullptr, nullptr));
  }

  // The enhanced declarative release drops identifiers; the cluster-risk
  // recheck below needs them, so restore the input's identifier cells (they
  // are metadata for the check, not part of the released QIs).
  for (const size_t c : id_cols) {
    for (size_t r = 0; r < input.num_rows(); ++r) {
      report.declarative.set_cell(r, c, input.cell(r, c));
    }
  }

  VADASA_RETURN_NOT_OK(CheckRelease("imperative", input, report.imperative,
                                    input_risks, *measure, ctx, options.threshold));
  VADASA_RETURN_NOT_OK(CheckRelease("declarative", input, report.declarative,
                                    input_risks, *measure, ctx, options.threshold));
  return report;
}

Status CheckParallelDeterminism(const core::MicrodataTable& input,
                                const core::CycleOptions& options,
                                const std::string& measure_name, size_t threads) {
  VADASA_ASSIGN_OR_RETURN(const auto measure, core::MakeRiskMeasure(measure_name));

  struct Run {
    MicrodataTable table;
    CycleStats stats;
    std::vector<double> risks;
  };
  const size_t previous = ThreadPool::SetGlobalThreads(1);
  auto run_with = [&](size_t n) -> Result<Run> {
    ThreadPool::SetGlobalThreads(n);
    Run run;
    run.table = input;
    VADASA_ASSIGN_OR_RETURN(run.risks, measure->ComputeRisks(input, options.risk));
    core::LocalSuppression suppression;
    AnonymizationCycle cycle(measure.get(), &suppression, options);
    VADASA_ASSIGN_OR_RETURN(run.stats, cycle.Run(&run.table));
    return run;
  };

  auto sequential = run_with(1);
  auto parallel = run_with(threads);
  ThreadPool::SetGlobalThreads(previous);
  VADASA_RETURN_NOT_OK(sequential.status());
  VADASA_RETURN_NOT_OK(parallel.status());

  for (size_t r = 0; r < sequential->risks.size(); ++r) {
    if (sequential->risks[r] != parallel->risks[r]) {  // Bit-identity, not approx.
      return Status::FailedPrecondition(
          measure_name + " risk differs at row " + std::to_string(r) +
          " between 1 and " + std::to_string(threads) + " threads: " +
          std::to_string(sequential->risks[r]) + " vs " +
          std::to_string(parallel->risks[r]));
    }
  }
  for (size_t r = 0; r < input.num_rows(); ++r) {
    for (size_t c = 0; c < input.num_columns(); ++c) {
      const Value& a = sequential->table.cell(r, c);
      const Value& b = parallel->table.cell(r, c);
      // Strict equality including null labels.
      if (!a.Equals(b) || (a.is_null() && a.null_label() != b.null_label())) {
        return Status::FailedPrecondition(
            "released cell (" + std::to_string(r) + "," + std::to_string(c) +
            ") differs between 1 and " + std::to_string(threads) +
            " threads: " + a.ToString() + " vs " + b.ToString());
      }
    }
  }
  const CycleStats& s = sequential->stats;
  const CycleStats& p = parallel->stats;
  if (s.iterations != p.iterations || s.anonymization_steps != p.anonymization_steps ||
      s.nulls_injected != p.nulls_injected || s.initial_risky != p.initial_risky ||
      s.unresolved != p.unresolved) {
    return Status::FailedPrecondition(
        "cycle counters differ between 1 and " + std::to_string(threads) +
        " threads (iterations " + std::to_string(s.iterations) + " vs " +
        std::to_string(p.iterations) + ", steps " +
        std::to_string(s.anonymization_steps) + " vs " +
        std::to_string(p.anonymization_steps) + ")");
  }
  return Status::OK();
}

}  // namespace vadasa::testing
