#include "testing/generators.h"

#include <algorithm>
#include <map>
#include <set>

namespace vadasa::testing {

using core::Attribute;
using core::AttributeCategory;
using core::Hierarchy;
using core::MicrodataTable;
using core::OwnershipGraph;

core::MicrodataTable RandomTable(Rng* rng, const TableGenOptions& options) {
  const size_t rows =
      options.min_rows + rng->NextBelow(options.max_rows - options.min_rows + 1);
  const int num_qi =
      options.min_qi + static_cast<int>(rng->NextBelow(
                           static_cast<uint64_t>(options.max_qi - options.min_qi + 1)));

  std::vector<Attribute> attrs;
  if (options.with_identifier) {
    attrs.push_back({"Id", "Entity identifier", AttributeCategory::kIdentifier});
  }
  std::vector<bool> int_column;
  for (int q = 0; q < num_qi; ++q) {
    attrs.push_back({"Q" + std::to_string(q + 1), "Generated quasi-identifier",
                     AttributeCategory::kQuasiIdentifier});
    int_column.push_back(rng->NextDouble() < options.int_column_probability);
  }
  if (options.with_non_identifying) {
    attrs.push_back({"Growth", "Non-identifying payload",
                     AttributeCategory::kNonIdentifying});
  }
  if (options.with_weight) {
    attrs.push_back({"W", "Sampling weight", AttributeCategory::kWeight});
  }
  MicrodataTable table("prop", std::move(attrs));

  // Per-column domain sizes; small domains force group collisions.
  std::vector<int> domain;
  for (int q = 0; q < num_qi; ++q) {
    domain.push_back(2 + static_cast<int>(rng->NextBelow(
                             static_cast<uint64_t>(options.max_domain - 1))));
  }

  uint64_t null_label = 1;
  std::vector<std::vector<Value>> qi_history;
  for (size_t r = 0; r < rows; ++r) {
    std::vector<Value> qis;
    if (!qi_history.empty() && rng->NextDouble() < options.duplicate_probability) {
      qis = qi_history[rng->NextBelow(qi_history.size())];
    } else {
      for (int q = 0; q < num_qi; ++q) {
        const int v = static_cast<int>(
            rng->NextZipf(static_cast<size_t>(domain[q]), options.skew));
        qis.push_back(int_column[q] ? Value::Int(v)
                                    : Value::String("v" + std::to_string(v)));
      }
    }
    for (auto& cell : qis) {
      if (rng->NextDouble() < options.null_probability) {
        cell = Value::Null(null_label++);
      }
    }
    qi_history.push_back(qis);

    std::vector<Value> row;
    if (options.with_identifier) {
      row.push_back(Value::String("e" + std::to_string(r)));
    }
    for (auto& cell : qis) row.push_back(std::move(cell));
    if (options.with_non_identifying) {
      row.push_back(Value::Int(rng->NextInt(-30, 300)));
    }
    if (options.with_weight) {
      row.push_back(Value::Double(1.0 + static_cast<double>(rng->NextBelow(50))));
    }
    Status st = table.AddRow(std::move(row));
    (void)st;  // Row width is correct by construction.
  }
  return table;
}

core::Hierarchy RandomHierarchy(Rng* rng, const core::MicrodataTable& table) {
  Hierarchy h;
  for (const size_t c : table.QuasiIdentifierColumns()) {
    std::set<std::string> values;
    for (size_t r = 0; r < table.num_rows(); ++r) {
      const Value& cell = table.cell(r, c);
      if (cell.is_string()) values.insert(cell.as_string());
    }
    if (values.size() < 2) continue;
    std::vector<std::string> bands(values.begin(), values.end());
    const size_t fan_in = 2 + rng->NextBelow(2);
    h.AddIntervalHierarchy(table.attributes()[c].name, bands, fan_in);
  }
  return h;
}

core::OwnershipGraph RandomOwnershipGraph(Rng* rng, const core::MicrodataTable& table,
                                          double edge_probability) {
  OwnershipGraph graph;
  const auto ids = table.ColumnsWithCategory(AttributeCategory::kIdentifier);
  if (ids.empty()) return graph;
  std::vector<std::string> companies;
  for (size_t r = 0; r < table.num_rows(); ++r) {
    companies.push_back(table.cell(r, ids[0]).ToString());
  }
  for (const std::string& owner : companies) {
    for (const std::string& owned : companies) {
      if (owner == owned) continue;
      if (rng->NextDouble() < edge_probability) {
        graph.AddOwnership(owner, owned, 0.2 + 0.8 * rng->NextDouble());
      }
    }
  }
  return graph;
}

namespace {

/// Shared vocabulary of the program grammar.
const std::vector<std::string> kPreds = {"p", "q", "r", "s", "t"};
const std::vector<std::string> kConsts = {"a", "b", "c", "d", "e"};
const std::vector<std::string> kVars = {"X", "Y", "Z", "W", "V"};

}  // namespace

std::string RandomVadalogProgram(Rng* rng, const ProgramGenOptions& options) {
  std::map<std::string, int> arity;
  for (const auto& p : kPreds) arity[p] = 1 + static_cast<int>(rng->NextBelow(2));

  std::string src;
  const size_t num_facts = 3 + rng->NextBelow(options.max_facts - 2);
  for (size_t i = 0; i < num_facts; ++i) {
    const std::string& p = kPreds[rng->NextBelow(kPreds.size())];
    src += p + "(";
    for (int a = 0; a < arity[p]; ++a) {
      if (a > 0) src += ", ";
      src += kConsts[rng->NextBelow(kConsts.size())];
    }
    src += ").\n";
  }

  const size_t num_rules = 1 + rng->NextBelow(options.max_rules);
  for (size_t i = 0; i < num_rules; ++i) {
    const size_t body_len = 1 + rng->NextBelow(3);
    std::vector<std::string> body;
    std::vector<std::string> bound_vars;
    for (size_t b = 0; b < body_len; ++b) {
      const std::string& p = kPreds[rng->NextBelow(kPreds.size())];
      std::string atom = p + "(";
      for (int a = 0; a < arity[p]; ++a) {
        if (a > 0) atom += ", ";
        if (rng->NextDouble() < 0.8) {
          const std::string& v = kVars[rng->NextBelow(kVars.size())];
          atom += v;
          bound_vars.push_back(v);
        } else {
          atom += kConsts[rng->NextBelow(kConsts.size())];
        }
      }
      atom += ")";
      body.push_back(std::move(atom));
    }
    if (bound_vars.empty()) continue;  // Head would be ground; skip.

    // Negated extra literal: stratified by construction when it only guards
    // (its variables are already positively bound).
    if (!options.positive_fragment_only && options.allow_negation &&
        rng->NextDouble() < 0.25) {
      const std::string& p = kPreds[rng->NextBelow(kPreds.size())];
      std::string atom = "not " + p + "(";
      for (int a = 0; a < arity[p]; ++a) {
        if (a > 0) atom += ", ";
        atom += bound_vars[rng->NextBelow(bound_vars.size())];
      }
      atom += ")";
      body.push_back(std::move(atom));
    }

    std::string condition;
    if (bound_vars.size() >= 2 && rng->NextDouble() < 0.4) {
      const char* ops[] = {"!=", "==", "<", ">="};
      condition = ", " + bound_vars[rng->NextBelow(bound_vars.size())] + " " +
                  ops[rng->NextBelow(4)] + " " +
                  bound_vars[rng->NextBelow(bound_vars.size())];
    }

    const std::string& h = kPreds[rng->NextBelow(kPreds.size())];
    std::string head = h + "(";
    for (int a = 0; a < arity[h]; ++a) {
      if (a > 0) head += ", ";
      if (!options.positive_fragment_only && options.allow_existentials &&
          rng->NextDouble() < 0.15) {
        head += "E" + std::to_string(rng->NextBelow(3));  // Existential variable.
      } else {
        head += bound_vars[rng->NextBelow(bound_vars.size())];
      }
    }
    head += ")";
    src += head + " :- ";
    for (size_t b = 0; b < body.size(); ++b) {
      if (b > 0) src += ", ";
      src += body[b];
    }
    src += condition + ".\n";
  }

  // One msum aggregation over a fresh output predicate — monotone, so it
  // cannot interfere with the rules above.
  if (!options.positive_fragment_only && options.allow_aggregates &&
      rng->NextDouble() < 0.3) {
    const std::string& p = kPreds[rng->NextBelow(kPreds.size())];
    if (arity[p] == 2) {
      src += "agg(X, S) :- " + p + "(X, Y), S = mcount(<Y>).\n";
    } else {
      src += "agg(X, S) :- " + p + "(X), S = mcount(<X>).\n";
    }
  }
  return src;
}

std::string RandomTokenSoup(Rng* rng, size_t max_tokens) {
  static const char* kTokens[] = {
      "p",   "q",    "X",     "Y",   "(",    ")",    ",",   ".",  ":-",   "=",
      "==",  "!=",   "<",     ">",   "<=",   ">=",   "not", "1",  "2.5",  "-3",
      "\"s\"", "#risk", "msum", "mprod", "mcount", "<X>", "@output", "@bind",
      "%",   "+",    "*",     "/",   "_",    "⊥",    "E0",  "agg"};
  std::string src;
  const size_t len = 1 + rng->NextBelow(max_tokens);
  for (size_t i = 0; i < len; ++i) {
    src += kTokens[rng->NextBelow(std::size(kTokens))];
    src += " ";
  }
  return src;
}

std::string RandomBytes(Rng* rng, size_t max_len) {
  std::string src;
  const size_t len = rng->NextBelow(max_len + 1);
  for (size_t i = 0; i < len; ++i) {
    // Mostly printable ASCII with occasional raw bytes.
    if (rng->NextDouble() < 0.9) {
      src += static_cast<char>(32 + rng->NextBelow(95));
    } else {
      src += static_cast<char>(rng->NextBelow(256));
    }
  }
  return src;
}

}  // namespace vadasa::testing
