#ifndef VADASA_TESTING_DIFFERENTIAL_H_
#define VADASA_TESTING_DIFFERENTIAL_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/business.h"
#include "core/cycle.h"
#include "core/microdata.h"
#include "core/vadalog_bridge.h"

namespace vadasa::testing {

/// Differential drivers: the same input through two implementations that the
/// paper claims compute the same thing, with the agreement contract asserted.

/// Outcome of one imperative-vs-declarative run, for diagnostics.
struct DifferentialReport {
  core::MicrodataTable imperative;
  core::MicrodataTable declarative;
  core::CycleStats imperative_stats;
  size_t initially_risky = 0;
};

/// Runs `input` through the imperative AnonymizationCycle and through the
/// bridge's RunDeclarativeCycle (same measure, k, T, =⊥ semantics) and checks
/// the agreement contract of the paper's Algorithm 2:
///   1. both converge;
///   2. tuples safe in the input are released bit-identical by both paths
///      (quasi-identifier cells; the declarative release drops identifiers);
///   3. every released tuple is safe (risk <= T) or exhausted, in both
///      releases;
///   4. only initially risky tuples carry labelled nulls, in both releases.
/// `graph` switches both paths to the Algorithm-9 enhanced cycle (cluster
/// risk transform / RunDeclarativeEnhancedCycle).
Result<DifferentialReport> CheckCycleDifferential(const core::MicrodataTable& input,
                                                  const core::BridgeOptions& options,
                                                  const core::OwnershipGraph* graph);

/// Runs the imperative cycle (and risk evaluation) sequentially and with an
/// `n`-thread global pool on copies of `input` and checks bit-identity:
/// identical released cells (including null labels), identical risk vectors
/// (double ==) and identical cycle counters. Restores the previous global
/// pool size on exit.
Status CheckParallelDeterminism(const core::MicrodataTable& input,
                                const core::CycleOptions& options,
                                const std::string& measure_name, size_t threads);

}  // namespace vadasa::testing

#endif  // VADASA_TESTING_DIFFERENTIAL_H_
