#include "testing/oracles.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "core/anonymize.h"
#include "core/group_index.h"
#include "core/infoloss.h"
#include "core/suda.h"

namespace vadasa::testing {

using core::GroupStats;
using core::KAnonymityRisk;
using core::MicrodataTable;
using core::NullSemantics;

namespace {

constexpr double kEps = 1e-9;

std::string RowTag(size_t row) { return "row " + std::to_string(row); }

}  // namespace

Status CheckRisksInUnitRange(const std::vector<double>& risks) {
  for (size_t r = 0; r < risks.size(); ++r) {
    if (!(risks[r] >= -kEps && risks[r] <= 1.0 + kEps) || std::isnan(risks[r])) {
      return Status::FailedPrecondition("risk outside [0,1] at " + RowTag(r) + ": " +
                                        std::to_string(risks[r]));
    }
  }
  return Status::OK();
}

Status CheckPostCycleRisks(const core::MicrodataTable& released,
                           const core::RiskMeasure& measure,
                           const core::RiskContext& context, double threshold) {
  VADASA_ASSIGN_OR_RETURN(const std::vector<double> risks,
                          measure.ComputeRisks(released, context));
  VADASA_RETURN_NOT_OK(CheckRisksInUnitRange(risks));
  const std::vector<size_t> qis = context.ResolveQiColumns(released);
  for (size_t r = 0; r < risks.size(); ++r) {
    if (risks[r] <= threshold) continue;
    // Over threshold: only acceptable when the tuple is exhausted — every
    // quasi-identifier already suppressed, no further step exists.
    for (const size_t c : qis) {
      if (!released.cell(r, c).is_null()) {
        return Status::FailedPrecondition(
            RowTag(r) + " released with risk " + std::to_string(risks[r]) +
            " > T=" + std::to_string(threshold) + " but quasi-identifier \"" +
            released.attributes()[c].name + "\" is not suppressed");
      }
    }
  }
  return Status::OK();
}

Status CheckSuppressionMonotone(const core::MicrodataTable& table, size_t row,
                                size_t column, const core::RiskContext& context) {
  core::RiskContext ctx = context;
  ctx.semantics = NullSemantics::kMaybeMatch;  // The invariant is a =⊥ property.
  const std::vector<size_t> qis = ctx.ResolveQiColumns(table);
  VADASA_RETURN_NOT_OK(core::ValidateQiWidth(qis, ctx.semantics));
  if (std::find(qis.begin(), qis.end(), column) == qis.end() ||
      row >= table.num_rows() || table.cell(row, column).is_null()) {
    return Status::OK();  // Nothing to suppress: trivially monotone.
  }

  const GroupStats before = core::ComputeGroupStats(table, qis, ctx.semantics);
  KAnonymityRisk k_anon;
  VADASA_ASSIGN_OR_RETURN(const std::vector<double> risks_before,
                          k_anon.ComputeRisks(table, ctx));

  MicrodataTable suppressed = table;
  // Labels must stay fresh: continue past the highest label in the table.
  uint64_t max_label = 0;
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (const size_t c : qis) {
      if (table.cell(r, c).is_null()) {
        max_label = std::max(max_label, table.cell(r, c).null_label());
      }
    }
  }
  suppressed.set_cell(row, column, Value::Null(max_label + 1));

  const GroupStats after = core::ComputeGroupStats(suppressed, qis, ctx.semantics);
  VADASA_ASSIGN_OR_RETURN(const std::vector<double> risks_after,
                          k_anon.ComputeRisks(suppressed, ctx));

  for (size_t r = 0; r < table.num_rows(); ++r) {
    if (after.frequency[r] + kEps < before.frequency[r]) {
      return Status::FailedPrecondition(
          "suppressing (" + std::to_string(row) + "," + std::to_string(column) +
          ") shrank the maybe-match group of " + RowTag(r) + ": " +
          std::to_string(before.frequency[r]) + " -> " +
          std::to_string(after.frequency[r]));
    }
    if (risks_after[r] > risks_before[r] + kEps) {
      return Status::FailedPrecondition(
          "suppressing (" + std::to_string(row) + "," + std::to_string(column) +
          ") raised the k-anonymity risk of " + RowTag(r) + ": " +
          std::to_string(risks_before[r]) + " -> " + std::to_string(risks_after[r]));
    }
  }
  return Status::OK();
}

Status CheckSuppressionFreshLabels(const core::MicrodataTable& table, size_t row,
                                   size_t column) {
  const std::vector<size_t> qis = table.QuasiIdentifierColumns();
  if (std::find(qis.begin(), qis.end(), column) == qis.end() ||
      row >= table.num_rows() || table.cell(row, column).is_null()) {
    return Status::OK();  // Nothing to suppress.
  }
  const GroupStats before =
      core::ComputeGroupStats(table, qis, NullSemantics::kStandard);

  MicrodataTable suppressed = table;
  core::LocalSuppression method;
  if (!method.CanApply(suppressed, row, column)) return Status::OK();
  auto step = method.Apply(&suppressed, row, column);
  VADASA_RETURN_NOT_OK(step.status());

  const GroupStats after =
      core::ComputeGroupStats(suppressed, qis, NullSemantics::kStandard);
  for (size_t r = 0; r < table.num_rows(); ++r) {
    if (after.frequency[r] > before.frequency[r] + kEps) {
      return Status::FailedPrecondition(
          "suppressing (" + std::to_string(row) + "," + std::to_string(column) +
          ") with label ⊥_" + std::to_string(suppressed.cell(row, column).null_label()) +
          " grew the standard-semantics group of " + RowTag(r) + " from " +
          std::to_string(before.frequency[r]) + " to " +
          std::to_string(after.frequency[r]) +
          " — the injected null collides with a pre-existing label");
    }
  }
  return Status::OK();
}

Status CheckSudaPermutationInvariance(const core::MicrodataTable& table,
                                      const core::RiskContext& context, Rng* rng) {
  if (table.num_rows() < 2) return Status::OK();
  core::SudaRisk suda;
  VADASA_ASSIGN_OR_RETURN(const std::vector<double> scores,
                          suda.ComputeScores(table, context));
  VADASA_ASSIGN_OR_RETURN(const std::vector<double> risks,
                          suda.ComputeRisks(table, context));

  std::vector<size_t> perm(table.num_rows());
  for (size_t i = 0; i < perm.size(); ++i) perm[i] = i;
  rng->Shuffle(&perm);

  MicrodataTable permuted(table.name(), table.attributes());
  for (const size_t r : perm) {
    VADASA_RETURN_NOT_OK(permuted.AddRow(table.row(r)));
  }
  VADASA_ASSIGN_OR_RETURN(const std::vector<double> scores_perm,
                          suda.ComputeScores(permuted, context));
  VADASA_ASSIGN_OR_RETURN(const std::vector<double> risks_perm,
                          suda.ComputeRisks(permuted, context));

  for (size_t i = 0; i < perm.size(); ++i) {
    if (std::abs(scores_perm[i] - scores[perm[i]]) > kEps) {
      return Status::FailedPrecondition(
          "SUDA score not permutation-invariant: original " + RowTag(perm[i]) +
          " scored " + std::to_string(scores[perm[i]]) + ", permuted copy scored " +
          std::to_string(scores_perm[i]));
    }
    if (std::abs(risks_perm[i] - risks[perm[i]]) > kEps) {
      return Status::FailedPrecondition(
          "SUDA risk not permutation-invariant at original " + RowTag(perm[i]));
    }
  }
  return Status::OK();
}

Status CheckClusterRiskBounds(const core::MicrodataTable& table,
                              const core::OwnershipGraph& graph,
                              const std::string& id_column,
                              const std::vector<double>& base_risks) {
  const int id_col = table.ColumnIndex(id_column);
  if (id_col < 0 || base_risks.size() != table.num_rows()) {
    return Status::InvalidArgument("cluster oracle: bad id column or risk vector");
  }
  std::vector<double> transformed = base_risks;
  core::MakeClusterRiskTransform(&graph, id_column)(table, &transformed);

  // Independent recomputation of the closed form 1 − Π_c (1 − ρ_c).
  const auto clusters = graph.ComputeClusters();
  std::unordered_map<int, double> survive;
  std::vector<int> row_cluster(table.num_rows(), -1);
  for (size_t r = 0; r < table.num_rows(); ++r) {
    auto it = clusters.find(table.cell(r, static_cast<size_t>(id_col)).ToString());
    if (it == clusters.end()) continue;
    row_cluster[r] = it->second;
    auto [sit, ignore] = survive.try_emplace(it->second, 1.0);
    (void)ignore;
    sit->second *= 1.0 - std::clamp(base_risks[r], 0.0, 1.0);
  }

  for (size_t r = 0; r < table.num_rows(); ++r) {
    const double t = transformed[r];
    if (std::isnan(t) || t > 1.0 + kEps) {
      return Status::FailedPrecondition("cluster risk exceeds 1 at " + RowTag(r) +
                                        ": " + std::to_string(t));
    }
    if (t + kEps < base_risks[r]) {
      return Status::FailedPrecondition(
          "cluster risk below the member's own risk at " + RowTag(r) + ": " +
          std::to_string(base_risks[r]) + " -> " + std::to_string(t));
    }
    if (row_cluster[r] < 0) {
      if (std::abs(t - base_risks[r]) > kEps) {
        return Status::FailedPrecondition(
            "unlinked " + RowTag(r) + " had its risk rewritten: " +
            std::to_string(base_risks[r]) + " -> " + std::to_string(t));
      }
      continue;
    }
    const double expected =
        std::max(base_risks[r], 1.0 - survive[row_cluster[r]]);
    if (std::abs(t - expected) > 1e-6) {
      return Status::FailedPrecondition(
          "cluster risk at " + RowTag(r) + " is " + std::to_string(t) +
          ", expected 1 - prod(1-rho) = " + std::to_string(expected));
    }
  }
  return Status::OK();
}

Status CheckInfoLossMonotone(const core::MicrodataTable& table, size_t steps,
                             Rng* rng) {
  const std::vector<size_t> qis = table.QuasiIdentifierColumns();
  if (qis.empty() || table.num_rows() == 0) return Status::OK();

  MicrodataTable working = table;
  core::LocalSuppression method;
  double last_fraction = -1.0;
  double last_paper = -1.0;
  size_t nulls = 0;
  // Treat every tuple as initially risky for the paper metric's denominator:
  // monotonicity must hold for any fixed denominator.
  const size_t denom_tuples = table.num_rows();
  for (size_t s = 0; s < steps; ++s) {
    const size_t row = rng->NextBelow(working.num_rows());
    const size_t col = qis[rng->NextBelow(qis.size())];
    if (method.CanApply(working, row, col)) {
      auto step = method.Apply(&working, row, col);
      VADASA_RETURN_NOT_OK(step.status());
      nulls += step->nulls_injected;
    }
    const core::InformationLoss loss =
        core::MeasureInformationLoss(table, working, nullptr);
    const double paper = core::PaperInformationLoss(nulls, denom_tuples, qis.size());
    if (loss.suppressed_cell_fraction + kEps < last_fraction) {
      return Status::FailedPrecondition(
          "suppressed-cell fraction decreased after step " + std::to_string(s) +
          ": " + std::to_string(last_fraction) + " -> " +
          std::to_string(loss.suppressed_cell_fraction));
    }
    if (paper + kEps < last_paper) {
      return Status::FailedPrecondition(
          "paper information loss decreased after step " + std::to_string(s));
    }
    if (loss.suppressed_cell_fraction < -kEps ||
        loss.suppressed_cell_fraction > 1.0 + kEps || paper < -kEps ||
        paper > 1.0 + kEps) {
      return Status::FailedPrecondition("information loss left [0,1] after step " +
                                        std::to_string(s));
    }
    last_fraction = loss.suppressed_cell_fraction;
    last_paper = paper;
  }
  return Status::OK();
}

}  // namespace vadasa::testing
