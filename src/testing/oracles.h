#ifndef VADASA_TESTING_ORACLES_H_
#define VADASA_TESTING_ORACLES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "core/business.h"
#include "core/cycle.h"
#include "core/microdata.h"
#include "core/risk.h"

namespace vadasa::testing {

/// Invariant oracles: each checks one property the paper (or the SDC
/// literature) guarantees, on arbitrary inputs, and returns OK or a
/// FailedPrecondition status whose message pinpoints the violating row.
/// docs/testing.md carries the catalog with paper-algorithm references.

/// Every per-tuple risk is a probability: 0 <= rho <= 1 (Section 4.2 — all
/// four measures are defined as probabilities of re-identification).
Status CheckRisksInUnitRange(const std::vector<double>& risks);

/// After an anonymization cycle (Algorithm 2) every tuple's risk is within
/// the threshold T, or the tuple is exhausted (every quasi-identifier cell
/// suppressed — nothing left to remove). Checks the released table directly,
/// independent of how the cycle got there.
Status CheckPostCycleRisks(const core::MicrodataTable& released,
                           const core::RiskMeasure& measure,
                           const core::RiskContext& context, double threshold);

/// Suppressing one more cell never shrinks any maybe-match QI group
/// (=⊥ semantics, Section 4.3: a null matches anything, so wildcarding a
/// cell only widens match sets) — hence k-anonymity risk is monotone
/// non-increasing under suppression (Algorithms 4 and 7). Verifies both the
/// group frequencies and the k-anonymity risk vector across one suppression
/// of cell (row, column) applied to a copy of `table`.
Status CheckSuppressionMonotone(const core::MicrodataTable& table, size_t row,
                                size_t column, const core::RiskContext& context);

/// Under standard null semantics (⊥_i = ⊥_j iff i = j) a suppression must
/// inject a *fresh* labelled null: a fresh label matches nothing, so no
/// row's group frequency may grow when a cell is wildcarded away. A label
/// collision with a null already present in the input silently merges
/// unrelated groups and under-reports risk. Applies a real LocalSuppression
/// step to a copy of `table` at (row, column) and compares frequencies.
Status CheckSuppressionFreshLabels(const core::MicrodataTable& table, size_t row,
                                   size_t column);

/// SUDA scores (Algorithm 6) depend only on the multiset of QI projections,
/// never on row order: permuting the rows must permute the scores.
Status CheckSudaPermutationInvariance(const core::MicrodataTable& table,
                                      const core::RiskContext& context, Rng* rng);

/// Cluster risk (Algorithm 9): for every company cluster, the propagated
/// risk 1 − Π_c (1 − ρ_c) bounds each member's base risk from below, never
/// exceeds 1, and matches the closed form recomputed from the base risks.
Status CheckClusterRiskBounds(const core::MicrodataTable& table,
                              const core::OwnershipGraph& graph,
                              const std::string& id_column,
                              const std::vector<double>& base_risks);

/// Information loss is monotone in the number of anonymization steps applied
/// (Fig. 7b: every suppressed cell adds loss, none ever removes it). Checks
/// the paper metric and the suppressed-cell fraction across a sequence of
/// suppressions.
Status CheckInfoLossMonotone(const core::MicrodataTable& table, size_t steps,
                             Rng* rng);

}  // namespace vadasa::testing

#endif  // VADASA_TESTING_ORACLES_H_
