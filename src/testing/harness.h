#ifndef VADASA_TESTING_HARNESS_H_
#define VADASA_TESTING_HARNESS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "testing/properties.h"
#include "testing/repro.h"

namespace vadasa::testing {

/// Run-time knobs of the property harness, normally taken from the
/// environment so CI lanes can widen the search without recompiling:
///   VADASA_PROP_SEED       master seed (default fixed — runs are reproducible)
///   VADASA_PROP_CASES      generated cases per property
///   VADASA_PROP_BUDGET_MS  soft wall-clock budget per property (0 = none)
///   VADASA_PROP_REPRO_DIR  where shrunk failure repros are written
///   VADASA_PROP_REPRO      a repro file to replay instead of generating
struct HarnessOptions {
  uint64_t seed = 20210406;  // EDBT 2021 — fixed so every run regenerates
                             // the same cases unless VADASA_PROP_SEED is set.
  size_t cases_per_property = 20;
  uint64_t budget_ms = 0;
  std::string repro_dir;
};

/// Reads the VADASA_PROP_* environment, falling back to the defaults above.
HarnessOptions HarnessOptionsFromEnv();

/// Outcome of running one property over many generated cases.
struct HarnessReport {
  size_t cases_run = 0;
  size_t failures = 0;
  /// Shrunk repro for each failure, in discovery order.
  std::vector<ReproCase> repros;
  /// Paths the repros were saved to (when options.repro_dir is set).
  std::vector<std::string> saved_paths;
};

/// Generates and evaluates up to `options.cases_per_property` cases of
/// `property` (stopping early when the time budget runs out). Every failure
/// is shrunk with the property's own evaluator as the predicate and, when
/// `options.repro_dir` is set, saved as a self-contained repro file.
HarnessReport RunProperty(const Property& property, const HarnessOptions& options);

/// Greedily shrinks one failing case (table rows/columns or program lines,
/// per the property) until the failure no longer reproduces on any smaller
/// input. The returned case still fails, with its message refreshed.
ReproCase ShrinkCase(const Property& property, const ReproCase& failing);

/// Loads a repro file and re-evaluates it; the Status is the property's
/// verdict (OK = the bug no longer reproduces).
Status ReplayReproFile(const std::string& path);

}  // namespace vadasa::testing

#endif  // VADASA_TESTING_HARNESS_H_
