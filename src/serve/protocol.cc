#include "serve/protocol.h"

#include <chrono>
#include <cstdio>
#include <optional>
#include <utility>

#include "common/csv.h"
#include "core/delta.h"
#include "obs/metrics.h"
#include "obs/prometheus.h"
#include "obs/sampler.h"
#include "obs/trace.h"
#include "serve/result_cache.h"

namespace vadasa::serve {

namespace {

/// The protocol version this server speaks, echoed as "v" in every response.
/// v2 added dataset versioning and the "apply_delta" verb.
constexpr int64_t kProtocolVersion = 2;

/// Every response line echoes the trace id installed on the handling thread,
/// joining it to the request's spans and slow-log line.
std::string OkLine(Json::Object fields) {
  Json::Object object = std::move(fields);
  object["ok"] = true;
  object["v"] = kProtocolVersion;
  object["trace_id"] = obs::TraceIdToHex(obs::CurrentTraceId());
  return Json(std::move(object)).Dump();
}

std::string ErrorLine(const Status& status, Json::Object extra = {}) {
  Json::Object object = std::move(extra);
  object["ok"] = false;
  object["v"] = kProtocolVersion;
  object["error"] = status.message();
  object["code"] = std::string(StatusCodeToString(status.code()));
  object["trace_id"] = obs::TraceIdToHex(obs::CurrentTraceId());
  return Json(std::move(object)).Dump();
}

/// 16-hex-digit rendering of a content fingerprint (same shape as trace ids).
std::string FingerprintHex(uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(v));
  return std::string(buf, 16);
}

/// Latency histograms keyed by verb. Only known verbs get a metric —
/// arbitrary op strings must not mint unbounded registry entries.
bool IsKnownOp(const std::string& op) {
  return op == "ping" || op == "datasets" || op == "submit" || op == "status" ||
         op == "result" || op == "cancel" || op == "apply_delta" ||
         op == "metrics" || op == "telemetry" || op == "shutdown";
}

Json RiskJson(const api::RiskReport& report) {
  Json::Object risk;
  Json::Array tuple_risks;
  tuple_risks.reserve(report.tuple_risks.size());
  for (double r : report.tuple_risks) tuple_risks.emplace_back(r);
  risk["tuple_risks"] = std::move(tuple_risks);
  risk["threshold"] = report.threshold;
  if (report.inferred_threshold >= 0.0) {
    risk["inferred_threshold"] = report.inferred_threshold;
  }
  Json::Array risky;
  risky.reserve(report.risky.size());
  for (const api::RiskyTuple& tuple : report.risky) {
    Json::Object entry;
    entry["row"] = static_cast<int64_t>(tuple.row);
    entry["risk"] = tuple.risk;
    if (!tuple.explanation.empty()) entry["explanation"] = tuple.explanation;
    risky.push_back(std::move(entry));
  }
  risk["risky"] = std::move(risky);
  Json::Object global;
  global["expected_reidentifications"] = report.global.expected_reidentifications;
  global["global_risk_rate"] = report.global.global_risk_rate;
  global["tuples_over_threshold"] =
      static_cast<int64_t>(report.global.tuples_over_threshold);
  global["max_risk"] = report.global.max_risk;
  global["sample_uniques"] = static_cast<int64_t>(report.global.sample_uniques);
  risk["global"] = std::move(global);
  return Json(std::move(risk));
}

/// Decodes the SessionOptions fields of a submit request; unknown measure
/// names and out-of-range k/threshold are caught by ValidateSessionOptions
/// inside Session construction.
api::SessionOptions OptionsFrom(const Json& request) {
  api::SessionOptions options;
  options.risk_measure = request.GetString("measure", options.risk_measure);
  options.k = static_cast<int>(request.GetInt("k", options.k));
  options.threshold = request.GetDouble("threshold", options.threshold);
  options.standard_nulls =
      request.GetBool("standard_nulls", options.standard_nulls);
  options.single_step = request.GetBool("single_step", options.single_step);
  options.declarative = request.GetBool("declarative", options.declarative);
  options.posterior_draws =
      static_cast<int>(request.GetInt("posterior_draws", options.posterior_draws));
  options.seed = static_cast<uint64_t>(request.GetInt("seed", static_cast<int64_t>(options.seed)));
  return options;
}

}  // namespace

std::string Protocol::ErrorResponse(const Status& status) {
  return ErrorLine(status);
}

std::string Protocol::Handle(const std::string& line, bool* shutdown_requested,
                             ClientQuota* quota) {
  // The server installs a freshly minted trace id per request line; when the
  // protocol is embedded directly (tests, tools) Handle mints its own so
  // every response still carries one.
  std::optional<obs::ScopedTraceId> minted;
  if (obs::CurrentTraceId() == 0) minted.emplace(obs::MintTraceId());
  obs::Span span("serve.request");
  const auto start = std::chrono::steady_clock::now();
  std::string op;
  std::string response = Dispatch(line, shutdown_requested, &op, quota);
  const double ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                start)
          .count();
  auto& registry = obs::MetricsRegistry::Global();
  registry.counter("serve.requests")->Add(1);
  registry.histogram("serve.op." + (IsKnownOp(op) ? op : "invalid") +
                     ".latency_ms")
      ->Record(ms);
  return response;
}

std::string Protocol::Dispatch(const std::string& line, bool* shutdown_requested,
                               std::string* op_out, ClientQuota* quota) {
  auto parsed = Json::Parse(line);
  if (!parsed.ok()) {
    return ErrorLine(parsed.status());
  }
  const Json& request = *parsed;
  const std::string op = request.GetString("op", "");
  *op_out = op;
  if (op.empty()) {
    return ErrorLine(Status::InvalidArgument("request has no \"op\" field"));
  }

  // Version negotiation: no "v" means v1 (every pre-delta verb is accepted);
  // a "v" the server does not speak fails loudly, before any verb runs.
  int64_t version = 1;
  if (request.Has("v")) {
    if (!request["v"].is_number()) {
      return ErrorLine(
          Status::InvalidArgument("\"v\" must be a protocol version number"));
    }
    version = request.GetInt("v", 1);
    if (version < 1 || version > kProtocolVersion) {
      return ErrorLine(
          Status::InvalidArgument(
              "unsupported protocol version " + std::to_string(version) +
              " (this server speaks 1.." + std::to_string(kProtocolVersion) +
              ")"),
          {{"supported_max", kProtocolVersion}});
    }
  }

  if (op == "ping") {
    return OkLine({{"op", Json("ping")}});
  }
  if (op == "datasets") {
    Json::Array names;
    for (const std::string& name : registry_->Catalog()) names.emplace_back(name);
    return OkLine({{"datasets", Json(std::move(names))}});
  }
  if (op == "submit") {
    return HandleSubmit(request, quota);
  }
  if (op == "apply_delta") {
    if (version < 2) {
      return ErrorLine(Status::InvalidArgument(
          "\"apply_delta\" requires protocol v2: send \"v\":2"));
    }
    return HandleApplyDelta(request);
  }
  if (op == "metrics") {
    auto metrics = Json::Parse(obs::MetricsRegistry::Global().ToJson());
    if (!metrics.ok()) return ErrorLine(metrics.status());
    return OkLine({{"metrics", std::move(*metrics)}});
  }
  if (op == "telemetry") {
    // One scrape: the Prometheus exposition plus the sampler's time series
    // (vadasa_top polls this; serve_smoke validates the exposition).
    auto series =
        Json::Parse(obs::TelemetrySampler::Global().TimeSeriesJson());
    if (!series.ok()) return ErrorLine(series.status());
    return OkLine(
        {{"prometheus", Json(obs::ToPrometheusText(obs::MetricsRegistry::Global()))},
         {"series", std::move(*series)},
         {"sampler_running", Json(obs::TelemetrySampler::Global().running())}});
  }
  if (op == "shutdown") {
    if (shutdown_requested != nullptr) *shutdown_requested = true;
    return OkLine({});
  }

  // The remaining operations address a job by id.
  if (op != "status" && op != "result" && op != "cancel") {
    return ErrorLine(Status::InvalidArgument("unknown op \"" + op + "\""));
  }
  if (!request.Has("id") || !request["id"].is_number()) {
    return ErrorLine(
        Status::InvalidArgument("op \"" + op + "\" requires a numeric \"id\""));
  }
  const uint64_t id = static_cast<uint64_t>(request.GetInt("id", 0));
  if (op == "status") {
    auto state = scheduler_->State(id);
    if (!state.ok()) return ErrorLine(state.status());
    auto snapshot = scheduler_->Peek(id);
    if (!snapshot.ok()) return ErrorLine(snapshot.status());
    return OkLine({{"id", Json(id)},
                   {"state", Json(JobStateToString(*state))},
                   {"queue_seconds", Json(snapshot->queue_seconds)},
                   {"run_seconds", Json(snapshot->run_seconds)},
                   {"queued_ns", Json(snapshot->queued_ns)},
                   {"run_ns", Json(snapshot->run_ns)},
                   {"job_trace_id", Json(obs::TraceIdToHex(snapshot->trace))}});
  }
  if (op == "result") {
    return HandleResult(id);
  }
  // op == "cancel"
  Status status = scheduler_->Cancel(id);
  if (!status.ok()) return ErrorLine(status);
  return OkLine({{"id", Json(id)}});
}

std::string Protocol::HandleSubmit(const Json& request, ClientQuota* quota) {
  const std::string dataset = request.GetString("dataset", "");
  if (dataset.empty()) {
    return ErrorLine(Status::InvalidArgument("submit requires a \"dataset\""));
  }
  const std::string action = request.GetString("action", "anonymize");
  if (action != "risk" && action != "anonymize") {
    return ErrorLine(Status::InvalidArgument(
        "unknown action \"" + action + "\" (want \"risk\" or \"anonymize\")"));
  }
  // Quota admission runs before any per-request work (the session open parses
  // CSV on a cold cache) so an abusive client cannot buy compute with
  // rejected submits. Unavailable rejections carry a backoff hint.
  const auto retry_hint = [this] {
    return Json(RetryAfterMs(scheduler_->queue_depth(),
                             scheduler_->options().workers));
  };
  if (quota != nullptr) {
    Status admitted = quota->Admit();
    if (!admitted.ok()) {
      return ErrorLine(admitted, {{"retry_after_ms", retry_hint()}});
    }
  }
  // Load first (not OpenSession) so the dataset's content fingerprint is in
  // hand for the cache key; the session still shares the same snapshot.
  auto loaded = registry_->Load(dataset);
  if (!loaded.ok()) {
    if (quota != nullptr) quota->Release();
    return ErrorLine(loaded.status());
  }
  auto session = api::Session::FromShared((*loaded)->table,
                                          (*loaded)->dictionary,
                                          OptionsFrom(request));
  if (!session.ok()) {
    if (quota != nullptr) quota->Release();
    return ErrorLine(session.status());
  }

  JobRequest job;
  job.session = std::move(*session);
  job.label = dataset;
  job.action = action == "risk" ? JobAction::kRisk : JobAction::kAnonymize;
  job.quantile = request.GetDouble("quantile", -1.0);
  job.explain = request.GetBool("explain", false);
  if (scheduler_->options().result_cache != nullptr) {
    // Keyed on the *validated* options (JSON field order and spelled-out
    // defaults canonicalize away) plus the dataset's content bytes.
    job.cache_key = ResultCacheKey(
        (*loaded)->fingerprint,
        CanonicalPolicyKey(job.session.options(), job.action, job.quantile,
                           job.explain));
  }
  JobOptions options;
  options.priority = static_cast<int>(request.GetInt("priority", 0));
  options.timeout_seconds = request.GetDouble("timeout_seconds", 0.0);
  if (quota != nullptr) options.quota_slot = quota->in_flight_cell();
  auto id = scheduler_->Submit(std::move(job), options);
  if (!id.ok()) {
    // The scheduler never saw the job (full queue, drain, injected fault):
    // hand the in-flight slot back — FinishLocked will not run for it.
    if (quota != nullptr) quota->Release();
    if (id.status().code() == StatusCode::kUnavailable) {
      return ErrorLine(id.status(), {{"retry_after_ms", retry_hint()}});
    }
    return ErrorLine(id.status());
  }
  return OkLine({{"id", Json(*id)}, {"state", Json("queued")}});
}

std::string Protocol::HandleApplyDelta(const Json& request) {
  const std::string dataset = request.GetString("dataset", "");
  if (dataset.empty()) {
    return ErrorLine(
        Status::InvalidArgument("apply_delta requires a \"dataset\""));
  }
  if (!request.Has("ops") || !request["ops"].is_array()) {
    return ErrorLine(
        Status::InvalidArgument("apply_delta requires an \"ops\" array"));
  }
  // The current snapshot pins the expected row width. All validation — op
  // shape here, arity in the builder, row bounds and weight types in
  // ApplyDeltaToTable — completes before any registry state changes.
  auto loaded = registry_->Load(dataset);
  if (!loaded.ok()) return ErrorLine(loaded.status());
  core::DeltaBatchBuilder builder((*loaded)->table->num_columns());
  for (const Json& op_json : request["ops"].AsArray()) {
    const std::string kind = op_json.GetString("kind", "");
    if (kind != "append" && kind != "update" && kind != "delete") {
      return ErrorLine(Status::InvalidArgument(
          "unknown delta op kind \"" + kind +
          "\" (want \"append\", \"update\" or \"delete\")"));
    }
    uint32_t row = 0;
    if (kind != "append") {
      if (!op_json.Has("row") || !op_json["row"].is_number() ||
          op_json.GetInt("row", -1) < 0) {
        return ErrorLine(Status::InvalidArgument(
            "delta op \"" + kind +
            "\" requires a non-negative numeric \"row\""));
      }
      row = static_cast<uint32_t>(op_json.GetInt("row", 0));
    }
    std::vector<Value> values;
    if (kind != "delete") {
      if (!op_json.Has("values") || !op_json["values"].is_array()) {
        return ErrorLine(Status::InvalidArgument(
            "delta op \"" + kind + "\" requires a \"values\" array"));
      }
      for (const Json& cell : op_json["values"].AsArray()) {
        if (!cell.is_string()) {
          return ErrorLine(Status::InvalidArgument(
              "delta cells are CSV-format strings (e.g. \"12\", \"Roma\", "
              "\"NULL_3\")"));
        }
        values.push_back(CellToValue(cell.AsString()));
      }
    }
    if (kind == "append") {
      builder.Append(std::move(values));
    } else if (kind == "update") {
      builder.Update(row, std::move(values));
    } else {
      builder.Delete(row);
    }
  }
  auto batch = builder.Build();
  if (!batch.ok()) return ErrorLine(batch.status());
  auto applied = registry_->ApplyDelta(dataset, *batch);
  if (!applied.ok()) return ErrorLine(applied.status());
  return OkLine(
      {{"dataset", Json(dataset)},
       {"version", Json((*applied)->version)},
       {"rows", Json(static_cast<int64_t>((*applied)->table->num_rows()))},
       {"fingerprint", Json(FingerprintHex((*applied)->fingerprint))}});
}

std::string Protocol::HandleResult(uint64_t id) {
  auto result = scheduler_->Wait(id);
  if (!result.ok()) return ErrorLine(result.status());
  Json::Object fields;
  fields["id"] = Json(id);
  fields["state"] = JobStateToString(result->state);
  fields["queue_seconds"] = result->queue_seconds;
  fields["run_seconds"] = result->run_seconds;
  fields["queued_ns"] = Json(result->queued_ns);
  fields["run_ns"] = Json(result->run_ns);
  fields["job_trace_id"] = obs::TraceIdToHex(result->trace);
  if (result->state == JobState::kDone) {
    // Whether the payload came from the result cache. Cached or cold, the
    // bytes below are serialized by the same code from the same structs —
    // the cached-result-bit-identical property holds the two identical.
    fields["cached"] = Json(result->from_cache);
    if (result->action == JobAction::kRisk) {
      fields["risk"] = RiskJson(result->risk);
    } else {
      fields["csv"] = WriteCsv(result->anonymize.table.ToCsv());
      fields["audit"] = result->anonymize.ToText();
    }
  } else {
    fields["error"] = result->status.message();
    fields["code"] = std::string(StatusCodeToString(result->status.code()));
  }
  return OkLine(std::move(fields));
}

}  // namespace vadasa::serve
