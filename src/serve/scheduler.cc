#include "serve/scheduler.h"

#include <cstdio>
#include <utility>

#include "common/failpoint.h"
#include "obs/metrics.h"
#include "obs/request_log.h"
#include "obs/trace.h"
#include "serve/result_cache.h"

namespace vadasa::serve {

namespace {

double SecondsBetween(std::chrono::steady_clock::time_point a,
                      std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

int64_t NsBetween(std::chrono::steady_clock::time_point a,
                  std::chrono::steady_clock::time_point b) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(b - a).count();
}

/// Steady-clock nanoseconds since epoch — the tracer's timeline, so scheduler
/// timestamps can feed obs::EmitSpan directly.
int64_t ToTraceNs(std::chrono::steady_clock::time_point t) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             t.time_since_epoch())
      .count();
}

/// Handles resolved once; every instance meters into the global registry.
struct ServeMeters {
  obs::Counter* submitted;
  obs::Counter* admitted;
  obs::Counter* rejected;
  obs::Counter* completed;
  obs::Counter* failed;
  obs::Counter* cancelled;
  obs::Counter* expired;
  obs::Counter* warmups;
  obs::Counter* coalesce_hits;
  obs::Counter* watchdog_flagged;
  obs::Gauge* queue_depth;
  obs::Gauge* running;
  obs::Gauge* workers;
  obs::Histogram* queue_wait_ms;
  obs::Histogram* job_ms;

  static ServeMeters& Get() {
    static ServeMeters* meters = [] {
      auto& registry = obs::MetricsRegistry::Global();
      auto* m = new ServeMeters();
      m->submitted = registry.counter("serve.submitted");
      m->admitted = registry.counter("serve.admitted");
      m->rejected = registry.counter("serve.rejected");
      m->completed = registry.counter("serve.completed");
      m->failed = registry.counter("serve.failed");
      m->cancelled = registry.counter("serve.cancelled");
      m->expired = registry.counter("serve.expired");
      m->warmups = registry.counter("serve.batch.warmups");
      m->coalesce_hits = registry.counter("serve.batch.coalesce_hits");
      m->watchdog_flagged = registry.counter("serve.watchdog.flagged");
      m->queue_depth = registry.gauge("serve.queue_depth");
      m->running = registry.gauge("serve.running");
      m->workers = registry.gauge("serve.workers");
      m->queue_wait_ms = registry.histogram("serve.queue_wait_ms");
      m->job_ms = registry.histogram("serve.job_ms");
      return m;
    }();
    return *meters;
  }
};

}  // namespace

std::string JobStateToString(JobState state) {
  switch (state) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
    case JobState::kFailed: return "failed";
    case JobState::kCancelled: return "cancelled";
    case JobState::kExpired: return "expired";
  }
  return "unknown";
}

struct JobScheduler::Job {
  uint64_t id = 0;
  uint64_t trace = 0;  ///< Trace id of the submitting request (0 = none).
  JobRequest request;
  JobOptions options;
  CancelToken cancel;
  JobState state = JobState::kQueued;
  Status status;
  api::RiskReport risk;
  api::AnonymizeResponse anonymize;
  std::chrono::steady_clock::time_point submitted;
  std::chrono::steady_clock::time_point started;
  double queue_seconds = 0.0;
  double run_seconds = 0.0;
  int64_t queued_ns = 0;
  int64_t run_ns = 0;
  bool watchdog_flagged = false;  ///< The watchdog flags a job at most once.
  bool from_cache = false;        ///< Completed from the result cache.
  size_t shard = 0;               ///< Ready-queue shard (label-hashed).
};

/// One coalesced warmup per (dataset, semantics): the first job computes the
/// shared group statistics, concurrent peers block briefly and adopt them.
struct JobScheduler::WarmSlot {
  std::mutex mutex;
  std::condition_variable ready_cv;
  bool computing = false;
  bool ready = false;
  Status status;
  std::shared_ptr<const core::GroupStats> stats;
  std::shared_ptr<const core::ColumnarView> view;
};

JobScheduler::JobScheduler(SchedulerOptions options) : options_(options) {
  if (options_.workers < 1) options_.workers = 1;
  if (options_.max_queue < 1) options_.max_queue = 1;
  // Every shard needs at least one dedicated worker or its queue would
  // never drain.
  if (options_.shards < 1) options_.shards = 1;
  if (options_.shards > options_.workers) options_.shards = options_.workers;
  paused_ = options_.start_paused;
  ServeMeters::Get().workers->Set(static_cast<double>(options_.workers));
  shards_.reserve(options_.shards);
  auto& registry = obs::MetricsRegistry::Global();
  for (size_t i = 0; i < options_.shards; ++i) {
    auto shard = std::make_unique<Shard>();
    // Bounded cardinality: one gauge per shard, shards <= workers.
    shard->depth_gauge =
        registry.gauge("serve.shard." + std::to_string(i) + ".queue_depth");
    shard->depth_gauge->Set(0.0);
    shards_.push_back(std::move(shard));
  }
  workers_.reserve(options_.workers);
  for (size_t i = 0; i < options_.workers; ++i) {
    // Round-robin worker->shard assignment: every shard gets
    // floor(workers/shards) threads, the first (workers % shards) one more.
    const size_t shard_index = i % shards_.size();
    workers_.emplace_back([this, shard_index] { WorkerLoop(shard_index); });
  }
  if (options_.watchdog_interval_ms > 0) {
    watchdog_ = std::thread([this] { WatchdogLoop(); });
  }
}

JobScheduler::~JobScheduler() { Shutdown(/*drain=*/true); }

size_t JobScheduler::ShardForLabel(const std::string& label) const {
  // FNV-1a of the *name*, not the content: a registry reload that changes a
  // dataset's bytes (and so its cache fingerprint) must not migrate its
  // in-flight traffic to a different worker pool.
  uint64_t hash = 1469598103934665603ull;
  for (char c : label) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  return static_cast<size_t>(hash % shards_.size());
}

size_t JobScheduler::TotalQueuedLocked() const {
  size_t total = 0;
  for (const auto& shard : shards_) total += shard->queue.size();
  return total;
}

void JobScheduler::UpdateDepthGaugesLocked(size_t shard_index) {
  shards_[shard_index]->depth_gauge->Set(
      static_cast<double>(shards_[shard_index]->queue.size()));
  ServeMeters::Get().queue_depth->Set(
      static_cast<double>(TotalQueuedLocked()));
}

void JobScheduler::NotifyAllShards() {
  for (auto& shard : shards_) shard->work_cv.notify_all();
}

Result<uint64_t> JobScheduler::Submit(JobRequest request, JobOptions options) {
  auto& meters = ServeMeters::Get();
  meters.submitted->Add(1);
  // Injected admission failure: surfaces to the client as a structured error
  // (the protocol layer releases any quota slot it reserved), never a wedge.
  VADASA_FAILPOINT("serve.scheduler.submit");
  auto job = std::make_shared<Job>();
  job->trace = obs::CurrentTraceId();
  job->request = std::move(request);
  job->options = options;
  job->submitted = std::chrono::steady_clock::now();
  // Probe the result cache before queueing (and before arming the deadline:
  // a hit needs neither). The payload copy happens outside the scheduler
  // lock; byte-identity of the served response is pinned by the
  // cached-result-bit-identical property.
  if (options_.result_cache != nullptr && !job->request.cache_key.empty()) {
    CachedResult hit;
    if (options_.result_cache->Get(job->request.cache_key, &hit)) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (draining_) {
        meters.rejected->Add(1);
        return Status::Unavailable("scheduler is shutting down");
      }
      job->id = next_id_++;
      job->shard = ShardForLabel(job->request.label);
      job->from_cache = true;
      job->risk = std::move(hit.risk);
      job->anonymize = std::move(hit.anonymize);
      // Terminal immediately: never queued, never run — both phases are
      // zero on the job's own timeline.
      job->started = job->submitted;
      jobs_.emplace(job->id, job);
      meters.admitted->Add(1);
      FinishLocked(job.get(), JobState::kDone, Status::OK());
      return job->id;
    }
  }
  if (options.timeout_seconds > 0.0) {
    job->cancel.SetTimeout(std::chrono::nanoseconds(
        static_cast<int64_t>(options.timeout_seconds * 1e9)));
  }
  size_t shard_index = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (draining_) {
      meters.rejected->Add(1);
      return Status::Unavailable("scheduler is shutting down");
    }
    const size_t queued = TotalQueuedLocked();
    if (queued >= options_.max_queue) {
      meters.rejected->Add(1);
      return Status::Unavailable(
          "admission queue full (" + std::to_string(queued) + "/" +
          std::to_string(options_.max_queue) + " jobs queued)");
    }
    job->id = next_id_++;
    shard_index = ShardForLabel(job->request.label);
    job->shard = shard_index;
    shards_[shard_index]->queue.emplace(
        std::make_pair(-options.priority, job->id), job);
    jobs_.emplace(job->id, job);
    meters.admitted->Add(1);
    UpdateDepthGaugesLocked(shard_index);
  }
  shards_[shard_index]->work_cv.notify_one();
  return job->id;
}

Result<JobState> JobScheduler::State(uint64_t id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return Status::NotFound("unknown job id " + std::to_string(id));
  }
  return it->second->state;
}

/// Snapshot helpers shared by Peek/Wait; caller holds the scheduler mutex.
namespace {

JobResult MakeSnapshot(uint64_t id, JobAction action, JobState state,
                       const Status& status, const api::RiskReport& risk,
                       const api::AnonymizeResponse& anonymize,
                       double queue_seconds, double run_seconds,
                       int64_t queued_ns, int64_t run_ns, uint64_t trace,
                       bool from_cache) {
  JobResult result;
  result.id = id;
  result.action = action;
  result.state = state;
  result.status = status;
  if (state == JobState::kDone) {
    result.risk = risk;
    result.anonymize = anonymize;
  }
  result.queue_seconds = queue_seconds;
  result.run_seconds = run_seconds;
  result.queued_ns = queued_ns;
  result.run_ns = run_ns;
  result.trace = trace;
  result.from_cache = from_cache;
  return result;
}

bool IsTerminal(JobState state) {
  return state == JobState::kDone || state == JobState::kFailed ||
         state == JobState::kCancelled || state == JobState::kExpired;
}

}  // namespace

Result<JobResult> JobScheduler::Peek(uint64_t id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return Status::NotFound("unknown job id " + std::to_string(id));
  }
  const Job& job = *it->second;
  return MakeSnapshot(id, job.request.action, job.state, job.status, job.risk,
                      job.anonymize, job.queue_seconds, job.run_seconds,
                      job.queued_ns, job.run_ns, job.trace, job.from_cache);
}

Result<JobResult> JobScheduler::Wait(uint64_t id) {
  std::unique_lock<std::mutex> lock(mutex_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return Status::NotFound("unknown job id " + std::to_string(id));
  }
  std::shared_ptr<Job> job = it->second;
  done_cv_.wait(lock, [&] { return IsTerminal(job->state); });
  return MakeSnapshot(id, job->request.action, job->state, job->status,
                      job->risk, job->anonymize, job->queue_seconds,
                      job->run_seconds, job->queued_ns, job->run_ns,
                      job->trace, job->from_cache);
}

Status JobScheduler::Cancel(uint64_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return Status::NotFound("unknown job id " + std::to_string(id));
  }
  Job* job = it->second.get();
  if (job->state == JobState::kQueued) {
    shards_[job->shard]->queue.erase(
        std::make_pair(-job->options.priority, job->id));
    UpdateDepthGaugesLocked(job->shard);
    FinishLocked(job, JobState::kCancelled,
                 Status::Cancelled("cancelled while queued"));
    return Status::OK();
  }
  if (job->state == JobState::kRunning) {
    job->cancel.Cancel();  // The job unwinds at its next iteration boundary.
  }
  return Status::OK();
}

void JobScheduler::Shutdown(bool drain) {
  std::unique_lock<std::mutex> lock(mutex_);
  draining_ = true;
  if (!drain) {
    for (size_t i = 0; i < shards_.size(); ++i) {
      for (auto& [key, job] : shards_[i]->queue) {
        (void)key;
        FinishLocked(job.get(), JobState::kCancelled,
                     Status::Cancelled("cancelled at shutdown"));
      }
      shards_[i]->queue.clear();
      UpdateDepthGaugesLocked(i);
    }
  }
  JoinThreadsLocked(&lock);
}

bool JobScheduler::ShutdownWithin(std::chrono::milliseconds budget) {
  const auto deadline = std::chrono::steady_clock::now() + budget;
  std::unique_lock<std::mutex> lock(mutex_);
  draining_ = true;    // No new admissions while we wait.
  paused_ = false;     // A paused scheduler still has to run out its queue.
  NotifyAllShards();
  const bool drained = done_cv_.wait_until(lock, deadline, [&] {
    return TotalQueuedLocked() == 0 && running_ == 0;
  });
  if (!drained) {
    // Budget exhausted: queued jobs are cancelled outright, running jobs get
    // a cooperative cancel and are still joined below (they unwind at their
    // next iteration boundary).
    for (size_t i = 0; i < shards_.size(); ++i) {
      for (auto& [key, job] : shards_[i]->queue) {
        (void)key;
        FinishLocked(job.get(), JobState::kCancelled,
                     Status::Cancelled("cancelled: drain budget exhausted"));
      }
      shards_[i]->queue.clear();
      UpdateDepthGaugesLocked(i);
    }
    for (auto& [id, job] : jobs_) {
      (void)id;
      if (job->state == JobState::kRunning) job->cancel.Cancel();
    }
  }
  JoinThreadsLocked(&lock);
  return drained;
}

/// Sets shutdown_, drops the lock, and joins workers + watchdog. Idempotent;
/// `lock` must hold mutex_ on entry and is released on exit.
void JobScheduler::JoinThreadsLocked(std::unique_lock<std::mutex>* lock) {
  shutdown_ = true;
  lock->unlock();
  NotifyAllShards();
  watchdog_cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  if (watchdog_.joinable()) watchdog_.join();
}

void JobScheduler::Resume() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    paused_ = false;
  }
  NotifyAllShards();
}

size_t JobScheduler::queue_depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return TotalQueuedLocked();
}

size_t JobScheduler::shard_queue_depth(size_t shard) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (shard >= shards_.size()) return 0;
  return shards_[shard]->queue.size();
}

size_t JobScheduler::running_jobs() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return running_;
}

/// Transition to a terminal state; caller holds the mutex.
void JobScheduler::FinishLocked(Job* job, JobState state, Status status) {
  auto& meters = ServeMeters::Get();
  if (job->started == std::chrono::steady_clock::time_point{}) {
    // Never dequeued (cancelled/expired while queued): the whole lifetime
    // was queue wait.
    const auto now = std::chrono::steady_clock::now();
    job->queue_seconds = SecondsBetween(job->submitted, now);
    job->queued_ns = NsBetween(job->submitted, now);
  }
  job->state = state;
  job->status = std::move(status);
  switch (state) {
    case JobState::kDone: meters.completed->Add(1); break;
    case JobState::kFailed: meters.failed->Add(1); break;
    case JobState::kCancelled: meters.cancelled->Add(1); break;
    case JobState::kExpired: meters.expired->Add(1); break;
    default: break;
  }
  if (options_.slow_log != nullptr) {
    obs::RequestLogEntry entry;
    entry.trace_id = job->trace;
    entry.op = job->request.action == JobAction::kRisk ? "risk" : "anonymize";
    entry.dataset = job->request.label;
    entry.queue_ms = job->queue_seconds * 1e3;
    entry.run_ms = job->run_seconds * 1e3;
    entry.outcome = JobStateToString(state);
    options_.slow_log->Record(entry);
  }
  if (job->options.quota_slot != nullptr) {
    // Exactly once per terminal transition: the client's in-flight slot
    // frees the moment the job stops occupying the scheduler.
    job->options.quota_slot->fetch_sub(1, std::memory_order_relaxed);
    job->options.quota_slot.reset();
  }
  done_cv_.notify_all();
}

void JobScheduler::WatchdogLoop() {
  auto& meters = ServeMeters::Get();
  const auto interval = std::chrono::milliseconds(options_.watchdog_interval_ms);
  std::unique_lock<std::mutex> lock(mutex_);
  while (!shutdown_) {
    watchdog_cv_.wait_for(lock, interval, [&] { return shutdown_; });
    if (shutdown_) return;
    const auto now = std::chrono::steady_clock::now();
    for (auto& [id, job] : jobs_) {
      (void)id;
      if (job->state != JobState::kRunning || job->watchdog_flagged) continue;
      if (job->options.timeout_seconds <= 0.0) continue;
      const double overdue_s =
          job->options.timeout_seconds * options_.watchdog_multiple;
      const double running_s = SecondsBetween(job->started, now);
      if (running_s < overdue_s) continue;
      // Flag exactly once: metric, forced slow-log line, cancel escalation
      // for jobs that stopped polling their own deadline.
      job->watchdog_flagged = true;
      meters.watchdog_flagged->Add(1);
      if (options_.slow_log != nullptr) {
        obs::RequestLogEntry entry;
        entry.trace_id = job->trace;
        entry.op =
            job->request.action == JobAction::kRisk ? "risk" : "anonymize";
        entry.dataset = job->request.label;
        entry.queue_ms = job->queue_seconds * 1e3;
        entry.run_ms = running_s * 1e3;
        entry.outcome = "overdue";
        options_.slow_log->Record(entry, /*force=*/true);
      }
      job->cancel.Cancel();
    }
  }
}

void JobScheduler::WorkerLoop(size_t shard_index) {
  auto& meters = ServeMeters::Get();
  Shard& shard = *shards_[shard_index];
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      // shutdown_ overrides paused_ so a drain always completes. Each worker
      // only ever pops its own shard's queue — a hot dataset flooding one
      // shard cannot consume another shard's threads.
      shard.work_cv.wait(lock, [&] {
        return shutdown_ || (!paused_ && !shard.queue.empty());
      });
      if (shard.queue.empty()) {
        if (shutdown_) return;  // Drained: nothing left to run.
        continue;
      }
      auto it = shard.queue.begin();
      job = it->second;
      shard.queue.erase(it);
      UpdateDepthGaugesLocked(shard_index);
      job->started = std::chrono::steady_clock::now();
      job->queue_seconds = SecondsBetween(job->submitted, job->started);
      job->queued_ns = NsBetween(job->submitted, job->started);
      meters.queue_wait_ms->Record(job->queue_seconds * 1e3);
      if (!job->cancel.Check().ok()) {
        // Cancelled or expired while queued; never starts.
        const Status verdict = job->cancel.Check();
        FinishLocked(job.get(),
                     verdict.code() == StatusCode::kDeadlineExceeded
                         ? JobState::kExpired
                         : JobState::kCancelled,
                     verdict);
        continue;
      }
      job->state = JobState::kRunning;
      ++running_;
      meters.running->Set(static_cast<double>(running_));
    }
    Execute(job);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --running_;
      meters.running->Set(static_cast<double>(running_));
    }
    // ShutdownWithin waits for queue empty AND running == 0; the terminal
    // FinishLocked notified before this decrement, so notify again.
    done_cv_.notify_all();
  }
}

void JobScheduler::WarmUp(Job* job) {
  // SUDA never reads group statistics; warming would be wasted work.
  if (!options_.coalesce_warmup ||
      job->request.session.options().risk_measure == "suda") {
    return;
  }
  char key[64];
  std::snprintf(key, sizeof(key), "%p|%s",
                static_cast<const void*>(job->request.session.shared_table().get()),
                job->request.session.options().GroupKey().c_str());
  std::shared_ptr<WarmSlot> slot;
  {
    std::lock_guard<std::mutex> lock(warm_mutex_);
    auto& entry = warm_[key];
    if (entry == nullptr) entry = std::make_shared<WarmSlot>();
    slot = entry;
  }
  auto& meters = ServeMeters::Get();
  std::unique_lock<std::mutex> lock(slot->mutex);
  if (slot->ready) {
    meters.coalesce_hits->Add(1);
  } else if (slot->computing) {
    meters.coalesce_hits->Add(1);
    slot->ready_cv.wait(lock, [&] { return slot->ready; });
  } else {
    slot->computing = true;
    lock.unlock();
    obs::Span span("serve.warmup");
    meters.warmups->Add(1);
    Status status = job->request.session.Warm();
    lock.lock();
    slot->status = status;
    slot->stats = job->request.session.warm_stats();
    slot->view = job->request.session.warm_view();
    slot->ready = true;
    slot->ready_cv.notify_all();
    return;  // This session is already warm.
  }
  if (slot->status.ok() && slot->stats != nullptr) {
    job->request.session.AdoptWarmStats(slot->stats, slot->view);
  }
  // A failed warmup (e.g. too many QI columns for the semantics) is not a job
  // failure: the un-warmed call path will surface the same error itself.
}

void JobScheduler::Execute(const std::shared_ptr<Job>& job) {
  // Re-install the submitting request's trace id on the executor thread so
  // the job/warmup spans (and the ParallelFor shards under them) group with
  // the protocol spans of the same request in one trace.
  obs::ScopedTraceId trace_scope(job->trace);
  obs::EmitSpan("serve.queue_wait", ToTraceNs(job->submitted),
                ToTraceNs(job->started));
  obs::Span span("serve.job");
  auto& meters = ServeMeters::Get();
  WarmUp(job.get());

  Status verdict = job->cancel.Check();
  if (verdict.ok()) {
    // Injected mid-run failure/delay: the job finishes through the normal
    // terminal path (clean error + trace id), and a delay policy here is how
    // tests manufacture an overdue job for the watchdog.
    static failpoint::Failpoint* run_fp =
        failpoint::GetFailpoint("serve.scheduler.run");
    if (run_fp->armed()) verdict = run_fp->Eval();
    if (verdict.ok()) verdict = job->cancel.Check();
  }
  api::RiskReport risk;
  api::AnonymizeResponse anonymize;
  if (verdict.ok()) {
    if (job->request.action == JobAction::kRisk) {
      auto result = job->request.session.Risk(job->request.quantile,
                                              job->request.explain);
      if (result.ok()) {
        risk = std::move(*result);
      } else {
        verdict = result.status();
      }
    } else {
      api::AnonymizeRequest anonymize_request;
      anonymize_request.cancel = &job->cancel;
      auto result = job->request.session.Anonymize(anonymize_request);
      if (result.ok()) {
        anonymize = std::move(*result);
      } else {
        verdict = result.status();
      }
    }
  }

  // Fill the cache before taking the scheduler lock: ApproxResultBytes
  // serializes the payload for the byte accounting and must not stall other
  // workers. A failed job never fills — the cache only ever holds payloads a
  // cold run produced successfully.
  if (verdict.ok() && options_.result_cache != nullptr &&
      !job->request.cache_key.empty()) {
    CachedResult entry;
    entry.action = job->request.action;
    entry.risk = risk;
    entry.anonymize = anonymize;
    options_.result_cache->Put(job->request.cache_key, job->request.label,
                               std::move(entry));
  }

  std::lock_guard<std::mutex> lock(mutex_);
  const auto finished = std::chrono::steady_clock::now();
  job->run_seconds = SecondsBetween(job->started, finished);
  job->run_ns = NsBetween(job->started, finished);
  meters.job_ms->Record(job->run_seconds * 1e3);
  if (verdict.ok()) {
    job->risk = std::move(risk);
    job->anonymize = std::move(anonymize);
    FinishLocked(job.get(), JobState::kDone, Status::OK());
  } else if (verdict.code() == StatusCode::kCancelled) {
    FinishLocked(job.get(), JobState::kCancelled, verdict);
  } else if (verdict.code() == StatusCode::kDeadlineExceeded) {
    FinishLocked(job.get(), JobState::kExpired, verdict);
  } else {
    FinishLocked(job.get(), JobState::kFailed, verdict);
  }
}

}  // namespace vadasa::serve
