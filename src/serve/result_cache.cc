#include "serve/result_cache.h"

#include <cstdio>
#include <utility>

#include "common/csv.h"
#include "common/failpoint.h"
#include "obs/metrics.h"

namespace vadasa::serve {

namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

void FnvMix(uint64_t* hash, const char* data, size_t size) {
  uint64_t h = *hash;
  for (size_t i = 0; i < size; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= kFnvPrime;
  }
  *hash = h;
}

void FnvMixString(uint64_t* hash, const std::string& s) {
  FnvMix(hash, s.data(), s.size());
  // Field separator outside the byte alphabet of the data, so ("ab","c")
  // and ("a","bc") hash differently.
  const char sep = '\x1f';
  FnvMix(hash, &sep, 1);
}

/// Shortest round-trippable spelling of a double for key strings.
std::string DoubleKey(double v) {
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.17g", v);
  return buffer;
}

struct CacheMeters {
  obs::Counter* hits;
  obs::Counter* misses;
  obs::Counter* evictions;
  obs::Counter* invalidations;
  obs::Gauge* bytes;
  obs::Gauge* entries;

  static CacheMeters& Get() {
    static CacheMeters* meters = [] {
      auto& registry = obs::MetricsRegistry::Global();
      auto* m = new CacheMeters();
      m->hits = registry.counter("serve.cache.hits");
      m->misses = registry.counter("serve.cache.misses");
      m->evictions = registry.counter("serve.cache.evictions");
      m->invalidations = registry.counter("serve.cache.invalidations");
      m->bytes = registry.gauge("serve.cache.bytes");
      m->entries = registry.gauge("serve.cache.entries");
      return m;
    }();
    return *meters;
  }
};

}  // namespace

uint64_t FingerprintTable(const core::MicrodataTable& table) {
  uint64_t hash = kFnvOffset;
  for (const core::Attribute& attribute : table.attributes()) {
    FnvMixString(&hash, attribute.name);
    FnvMixString(&hash, core::AttributeCategoryToString(attribute.category));
  }
  // The CSV serialization covers every cell (weights included) in row-major
  // order; a one-cell edit lands in the stream and flips the fingerprint.
  FnvMixString(&hash, WriteCsv(table.ToCsv()));
  return hash;
}

std::string CanonicalPolicyKey(const api::SessionOptions& options,
                               JobAction action, double quantile,
                               bool explain) {
  std::string key;
  key.reserve(160);
  key += "measure=" + options.risk_measure;
  key += ";k=" + std::to_string(options.k);
  key += ";threshold=" + DoubleKey(options.threshold);
  key += options.standard_nulls ? ";standard_nulls=1" : ";standard_nulls=0";
  key += options.single_step ? ";single_step=1" : ";single_step=0";
  key += options.declarative ? ";declarative=1" : ";declarative=0";
  key += ";posterior_draws=" + std::to_string(options.posterior_draws);
  key += ";seed=" + std::to_string(options.seed);
  key += action == JobAction::kRisk ? ";action=risk" : ";action=anonymize";
  key += ";quantile=" + DoubleKey(quantile);
  key += explain ? ";explain=1" : ";explain=0";
  return key;
}

std::string ResultCacheKey(uint64_t fingerprint,
                           const std::string& policy_key) {
  char prefix[24];
  std::snprintf(prefix, sizeof(prefix), "%016llx|",
                static_cast<unsigned long long>(fingerprint));
  return prefix + policy_key;
}

size_t ApproxResultBytes(const CachedResult& value) {
  size_t bytes = 128;  // Struct + map-node overhead.
  if (value.action == JobAction::kRisk) {
    bytes += value.risk.tuple_risks.size() * sizeof(double);
    for (const api::RiskyTuple& tuple : value.risk.risky) {
      bytes += sizeof(tuple) + tuple.explanation.size();
    }
  } else {
    // The bytes a hit actually serves: released CSV + audit text.
    bytes += WriteCsv(value.anonymize.table.ToCsv()).size();
    bytes += value.anonymize.ToText().size();
  }
  return bytes;
}

ResultCache::ResultCache(ResultCacheOptions options) : options_(options) {
  // Touch the meters so scrapes carry them before the first request.
  CacheMeters::Get();
}

bool ResultCache::Get(const std::string& key, CachedResult* out) {
  auto& meters = CacheMeters::Get();
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    meters.misses->Add(1);
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  meters.hits->Add(1);
  *out = it->second.value;
  return true;
}

void ResultCache::Put(const std::string& key, const std::string& dataset,
                      CachedResult value) {
  // Injected slow/failed fill: a delay policy stretches the window the
  // concurrency tests race Get against; an error policy drops the fill (a
  // cache that stays cold is merely slower, never wrong).
  static failpoint::Failpoint* fill_fp =
      failpoint::GetFailpoint("serve.cache.fill");
  if (fill_fp->armed() && fill_fp->Fires()) return;
  const size_t cost = ApproxResultBytes(value) + key.size();
  auto& meters = CacheMeters::Get();
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(key);
  if (it != entries_.end()) EraseLocked(it);
  // Evict from the cold end until this entry fits. The newest entry itself
  // is always admitted, even over budget: rejecting it would pin whatever
  // happened to load first and starve the hot set.
  while (!entries_.empty() && bytes_ + cost > options_.byte_budget) {
    auto victim = entries_.find(lru_.back());
    EraseLocked(victim);
    meters.evictions->Add(1);
  }
  lru_.push_front(key);
  Entry entry;
  entry.dataset = dataset;
  entry.value = std::move(value);
  entry.cost = cost;
  entry.lru_it = lru_.begin();
  entries_.emplace(key, std::move(entry));
  bytes_ += cost;
  meters.bytes->Set(static_cast<double>(bytes_));
  meters.entries->Set(static_cast<double>(entries_.size()));
}

void ResultCache::InvalidateDataset(const std::string& dataset) {
  auto& meters = CacheMeters::Get();
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.dataset == dataset) {
      EraseLocked(it++);
      meters.invalidations->Add(1);
    } else {
      ++it;
    }
  }
  meters.bytes->Set(static_cast<double>(bytes_));
  meters.entries->Set(static_cast<double>(entries_.size()));
}

void ResultCache::InvalidateAll() {
  auto& meters = CacheMeters::Get();
  std::lock_guard<std::mutex> lock(mutex_);
  meters.invalidations->Add(entries_.size());
  entries_.clear();
  lru_.clear();
  bytes_ = 0;
  meters.bytes->Set(0.0);
  meters.entries->Set(0.0);
}

size_t ResultCache::entries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

size_t ResultCache::bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return bytes_;
}

void ResultCache::EraseLocked(std::map<std::string, Entry>::iterator it) {
  bytes_ -= it->second.cost;
  lru_.erase(it->second.lru_it);
  entries_.erase(it);
}

}  // namespace vadasa::serve
