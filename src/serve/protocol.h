#ifndef VADASA_SERVE_PROTOCOL_H_
#define VADASA_SERVE_PROTOCOL_H_

#include <string>

#include "common/json.h"
#include "serve/dataset_registry.h"
#include "serve/quota.h"
#include "serve/scheduler.h"

namespace vadasa::serve {

/// The newline-delimited JSON request/response protocol of vadasa_serve
/// (docs/serving.md). Each request is one JSON object on one line; each
/// response is one JSON object on one line with an "ok" bool — protocol-level
/// failures carry "error" and "code", job-level failures arrive as terminal
/// job states inside an ok:true envelope.
///
/// Versioning: every response states the server's protocol version as "v"
/// (currently 2). Requests may carry "v"; absent means 1 (the pre-delta
/// protocol, fully accepted). A "v" the server does not speak is rejected
/// with a structured InvalidArgument carrying "supported_max", so old servers
/// fail new clients loudly instead of mis-parsing their requests. The
/// "apply_delta" verb is v2-only: a request must say "v":2 (or higher, up to
/// the server's version) to use it.
///
/// Operations:
///   {"op":"ping"}
///   {"op":"datasets"}
///   {"op":"submit","dataset":PATH,"action":"risk"|"anonymize", ...options}
///   {"op":"status","id":N}
///   {"op":"result","id":N}        — blocks until the job is terminal
///   {"op":"cancel","id":N}
///   {"op":"apply_delta","v":2,"dataset":PATH,"ops":[...]}
///       — streams a DeltaBatch into the registry (docs/serving.md:
///         "Streaming deltas"). Each element of "ops" is
///         {"kind":"append","values":[CELLS]} |
///         {"kind":"update","row":N,"values":[CELLS]} |
///         {"kind":"delete","row":N}, cells in the CSV cell format
///         ("12", "3.5", "Roma", "NULL_7"). Responds with the dataset's new
///         monotonic "version", "rows" and content "fingerprint"; in-flight
///         jobs keep serving the pre-delta snapshot bit-identically.
///   {"op":"metrics"}              — serve.* / cycle.* metrics snapshot
///   {"op":"telemetry"}            — Prometheus exposition + sampler series
///   {"op":"shutdown"}
///
/// Telemetry (docs/observability.md): every response echoes the request's
/// trace id as `"trace_id"` (16 hex digits) — minted per connection line by
/// the server, or by Handle itself when none is installed — and each known
/// verb meters its handling latency into `serve.op.<verb>.latency_ms`.
///
/// The class is stateless beyond its two collaborators and safe to call from
/// concurrent connection threads.
class Protocol {
 public:
  Protocol(DatasetRegistry* registry, JobScheduler* scheduler)
      : registry_(registry), scheduler_(scheduler) {}

  /// Handles one request line, returning the response line (no trailing
  /// newline). Sets *shutdown_requested on {"op":"shutdown"}; never throws.
  /// `quota` is the calling connection's admission quota (null = unmetered,
  /// the embedded-use default): over-quota submits are rejected with
  /// Unavailable plus a "retry_after_ms" backoff hint scaled by the
  /// scheduler's backlog (docs/robustness.md).
  std::string Handle(const std::string& line, bool* shutdown_requested,
                     ClientQuota* quota = nullptr);

  /// One response line for a failure detected outside Handle (e.g. an
  /// oversized request line the server refuses to buffer further).
  static std::string ErrorResponse(const Status& status);

 private:
  std::string Dispatch(const std::string& line, bool* shutdown_requested,
                       std::string* op_out, ClientQuota* quota);
  std::string HandleSubmit(const Json& request, ClientQuota* quota);
  std::string HandleApplyDelta(const Json& request);
  std::string HandleResult(uint64_t id);

  DatasetRegistry* registry_;
  JobScheduler* scheduler_;
};

}  // namespace vadasa::serve

#endif  // VADASA_SERVE_PROTOCOL_H_
