#ifndef VADASA_SERVE_RESULT_CACHE_H_
#define VADASA_SERVE_RESULT_CACHE_H_

#include <cstdint>
#include <list>
#include <map>
#include <mutex>
#include <string>

#include "api/vadasa.h"
#include "core/microdata.h"
#include "serve/scheduler.h"

namespace vadasa::serve {

/// FNV-1a content fingerprint of a categorized table: attribute schema
/// (names + categories) plus every cell, via the canonical CSV serialization.
/// Editing a single cell, renaming a column or recategorizing an attribute
/// all change the fingerprint; the dataset's registry name does not — two
/// names over byte-identical content share cached results safely.
uint64_t FingerprintTable(const core::MicrodataTable& table);

/// Canonical string form of everything besides the dataset that determines a
/// job's payload: the validated SessionOptions in a fixed field order plus
/// the action and its risk extras. Two submits that spell the same policy
/// with different JSON field orders (or rely on defaults) map to one key.
/// The data plane and thread count are deliberately absent — results are
/// bit-identical across them (pinned by the columnar/parallel properties).
std::string CanonicalPolicyKey(const api::SessionOptions& options,
                               JobAction action, double quantile, bool explain);

/// The full cache key: hex fingerprint | canonical policy.
std::string ResultCacheKey(uint64_t fingerprint, const std::string& policy_key);

/// One cached terminal payload, stored as the same structs the scheduler
/// hands to the protocol — a hit is serialized by the identical RiskJson /
/// WriteCsv / ToText code path as a cold run, which is what makes cached
/// responses byte-identical by construction (and property-pinned anyway).
struct CachedResult {
  JobAction action = JobAction::kAnonymize;
  api::RiskReport risk;
  api::AnonymizeResponse anonymize;
};

/// Deterministic size estimate of one entry: the bytes a hit would serve
/// (risk vector + explanations, released CSV + audit text) plus fixed
/// per-entry overhead. This is the unit of the byte budget.
size_t ApproxResultBytes(const CachedResult& value);

struct ResultCacheOptions {
  /// Total ApproxResultBytes (plus key sizes) the cache may hold; inserting
  /// past it evicts least-recently-used entries first. Minimum one entry is
  /// always admitted so a single oversized result cannot wedge the cache.
  size_t byte_budget = 64u << 20;
};

/// A bounded LRU of terminal job payloads keyed on (dataset content
/// fingerprint, canonical policy). Thread-safe; the scheduler probes it at
/// admission and fills it after each successful cold run, and the
/// DatasetRegistry invalidates it on reload/replace/quarantine/Clear.
/// Correctness never depends on invalidation — keys carry the content
/// fingerprint, so changed data simply misses — but invalidation keeps dead
/// entries from squatting on the byte budget and is metered:
/// serve.cache.{hits,misses,evictions,invalidations}, plus
/// serve.cache.{bytes,entries} gauges.
///
/// Failpoint site `serve.cache.fill` runs inside Put: a delay policy makes
/// fills slow (the concurrency tests race Get against it), an error policy
/// drops the fill entirely (the cache stays consistent, merely colder).
class ResultCache {
 public:
  explicit ResultCache(ResultCacheOptions options = {});
  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// Copies the entry for `key` into *out and marks it most recently used.
  /// Counts serve.cache.hits / serve.cache.misses.
  bool Get(const std::string& key, CachedResult* out);

  /// Inserts (or refreshes) `key`, evicting LRU entries until the budget
  /// holds. `dataset` is the registry name the entry was computed under —
  /// the handle InvalidateDataset uses.
  void Put(const std::string& key, const std::string& dataset,
           CachedResult value);

  /// Drops every entry recorded under `dataset`. Counts one
  /// serve.cache.invalidations per dropped entry.
  void InvalidateDataset(const std::string& dataset);

  /// Drops everything (registry Clear()).
  void InvalidateAll();

  size_t entries() const;
  size_t bytes() const;
  size_t byte_budget() const { return options_.byte_budget; }

 private:
  struct Entry {
    std::string dataset;
    CachedResult value;
    size_t cost = 0;
    std::list<std::string>::iterator lru_it;  ///< Position in lru_.
  };

  /// Caller holds mutex_. Removes one entry and fixes the accounting.
  void EraseLocked(std::map<std::string, Entry>::iterator it);

  ResultCacheOptions options_;
  mutable std::mutex mutex_;
  size_t bytes_ = 0;
  std::list<std::string> lru_;  ///< Front = most recently used.
  std::map<std::string, Entry> entries_;
};

}  // namespace vadasa::serve

#endif  // VADASA_SERVE_RESULT_CACHE_H_
