#ifndef VADASA_SERVE_DATASET_REGISTRY_H_
#define VADASA_SERVE_DATASET_REGISTRY_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "api/vadasa.h"
#include "common/result.h"
#include "core/delta.h"
#include "core/metadata.h"
#include "core/microdata.h"

namespace vadasa::serve {

class ResultCache;

/// One loaded, categorized, immutable dataset — the unit the registry shares
/// (refcounted) across every job that names the same path.
struct LoadedDataset {
  std::string path;
  std::shared_ptr<const core::MicrodataTable> table;
  std::shared_ptr<const core::MetadataDictionary> dictionary;
  /// Content fingerprint (serve/result_cache.h): schema + every cell.
  /// Computed once per load; the result-cache key embeds it, so a reloaded
  /// dataset with different bytes can never serve a stale cached payload.
  uint64_t fingerprint = 0;
  /// Monotonic dataset version: 1 at first load/registration, +1 per applied
  /// delta (ApplyDelta). Purely informational — cache correctness rides the
  /// fingerprint; the version lets clients confirm which generation of a
  /// streamed dataset served their job.
  uint64_t version = 1;
};

/// Loads microdata tables + metadata dictionaries once and hands out shared
/// const snapshots, so a thousand jobs against the same CSV parse and
/// categorize it exactly once. Thread-safe; lookups after the first load are
/// a map hit under a mutex. Metrics: serve.registry.loads / .hits /
/// .load_failures / .quarantined.
///
/// Fault containment (docs/robustness.md): a dataset whose load or
/// categorization fails `quarantine_after` consecutive times is quarantined —
/// further loads return a structured FailedPrecondition carrying the last
/// error instead of re-parsing a poisoned file forever. A successful load
/// clears the failure streak; Clear() lifts every quarantine. Failpoint
/// sites: serve.registry.load, serve.registry.categorize.
class DatasetRegistry {
 public:
  DatasetRegistry();
  DatasetRegistry(const DatasetRegistry&) = delete;
  DatasetRegistry& operator=(const DatasetRegistry&) = delete;

  /// The dataset at `path`, loading and categorizing on first use.
  Result<std::shared_ptr<const LoadedDataset>> Load(const std::string& path);

  /// Registers an in-memory table under a name (tests, generated corpora).
  /// Fails on a name collision.
  Status Register(const std::string& name, core::MicrodataTable table);

  /// Drops the cached snapshot for `path` (and its result-cache entries) and
  /// loads it fresh — the operator's "the file changed on disk" hook.
  /// In-flight jobs keep their old snapshot refcounts.
  Result<std::shared_ptr<const LoadedDataset>> Reload(const std::string& path);

  /// Replaces (or creates) an in-memory registration, invalidating the
  /// dataset's result-cache entries — the reload path for Register()ed
  /// tables.
  Status Replace(const std::string& name, core::MicrodataTable table);

  /// Applies a validated DeltaBatch to the dataset's current snapshot and
  /// publishes the post-delta generation under the same name: version + 1,
  /// fresh content fingerprint (so ResultCache keys stay coherent — a job
  /// submitted after the delta can never hit a pre-delta payload), result
  /// cache invalidated as hygiene. In-flight jobs keep their pre-delta
  /// snapshot refcounts and serve bit-identical pre-delta results. Concurrent
  /// ApplyDelta calls against one name are last-write-wins; serialize on the
  /// caller side when deltas must compose. Returns the new snapshot.
  Result<std::shared_ptr<const LoadedDataset>> ApplyDelta(
      const std::string& name, const core::DeltaBatch& batch);

  /// A Session over the dataset at `path` with the given policy.
  Result<api::Session> OpenSession(const std::string& path,
                                   api::SessionOptions options);

  /// Paths/names currently cached, in load order.
  std::vector<std::string> Catalog() const;

  /// Drops every cached dataset (in-flight shared_ptrs stay valid) and
  /// lifts every quarantine.
  void Clear();

  /// Consecutive failures before a path is quarantined (default 3; minimum 1).
  void set_quarantine_after(size_t n) { quarantine_after_ = n < 1 ? 1 : n; }
  /// Whether `path` is currently quarantined.
  bool IsQuarantined(const std::string& path) const;

  /// Attach the serving result cache: Reload/Replace/Clear and a quarantine
  /// transition invalidate the affected entries (hygiene — correctness
  /// already rides the content fingerprint in every key). Not owned; must
  /// outlive the registry. Null detaches.
  void set_result_cache(ResultCache* cache);

 private:
  /// The uncached load+categorize pipeline (no bookkeeping).
  Result<std::shared_ptr<const LoadedDataset>> LoadUncached(
      const std::string& path);

  /// Load-failure streak for one path.
  struct FailureRecord {
    size_t failures = 0;
    bool quarantined = false;
    Status last_error;
  };

  mutable std::mutex mutex_;
  ResultCache* result_cache_ = nullptr;
  size_t quarantine_after_ = 3;
  std::vector<std::string> order_;
  std::map<std::string, std::shared_ptr<const LoadedDataset>> datasets_;
  std::map<std::string, FailureRecord> failures_;
};

}  // namespace vadasa::serve

#endif  // VADASA_SERVE_DATASET_REGISTRY_H_
