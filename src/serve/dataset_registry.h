#ifndef VADASA_SERVE_DATASET_REGISTRY_H_
#define VADASA_SERVE_DATASET_REGISTRY_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "api/vadasa.h"
#include "common/result.h"
#include "core/metadata.h"
#include "core/microdata.h"

namespace vadasa::serve {

/// One loaded, categorized, immutable dataset — the unit the registry shares
/// (refcounted) across every job that names the same path.
struct LoadedDataset {
  std::string path;
  std::shared_ptr<const core::MicrodataTable> table;
  std::shared_ptr<const core::MetadataDictionary> dictionary;
};

/// Loads microdata tables + metadata dictionaries once and hands out shared
/// const snapshots, so a thousand jobs against the same CSV parse and
/// categorize it exactly once. Thread-safe; lookups after the first load are
/// a map hit under a mutex. Metrics: serve.registry.loads / .hits.
class DatasetRegistry {
 public:
  DatasetRegistry() = default;
  DatasetRegistry(const DatasetRegistry&) = delete;
  DatasetRegistry& operator=(const DatasetRegistry&) = delete;

  /// The dataset at `path`, loading and categorizing on first use.
  Result<std::shared_ptr<const LoadedDataset>> Load(const std::string& path);

  /// Registers an in-memory table under a name (tests, generated corpora).
  /// Fails on a name collision.
  Status Register(const std::string& name, core::MicrodataTable table);

  /// A Session over the dataset at `path` with the given policy.
  Result<api::Session> OpenSession(const std::string& path,
                                   api::SessionOptions options);

  /// Paths/names currently cached, in load order.
  std::vector<std::string> Catalog() const;

  /// Drops every cached dataset (in-flight shared_ptrs stay valid).
  void Clear();

 private:
  mutable std::mutex mutex_;
  std::vector<std::string> order_;
  std::map<std::string, std::shared_ptr<const LoadedDataset>> datasets_;
};

}  // namespace vadasa::serve

#endif  // VADASA_SERVE_DATASET_REGISTRY_H_
