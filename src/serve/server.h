#ifndef VADASA_SERVE_SERVER_H_
#define VADASA_SERVE_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "serve/protocol.h"
#include "serve/quota.h"

namespace vadasa::serve {

struct ServerOptions {
  /// Filesystem path of the Unix domain socket. An existing stale socket
  /// file at this path is unlinked before binding.
  std::string socket_path;
  /// listen(2) backlog.
  int backlog = 16;
  /// Per-connection admission quota (docs/robustness.md); the zero defaults
  /// leave connections unmetered.
  QuotaOptions quota;
  /// Longest request line a connection may send, bytes. A connection whose
  /// buffered line crosses this gets one structured LimitExceeded error line
  /// and is closed (metric: serve.conn.oversized).
  size_t max_line_bytes = 4u << 20;
};

/// A newline-delimited-JSON server over a Unix domain socket: one thread per
/// connection, each line handed to Protocol::Handle. `{"op":"shutdown"}`
/// (or Stop()) stops the accept loop, closes the listener and joins every
/// connection thread. Single-use: Serve() then Stop().
class Server {
 public:
  Server(Protocol* protocol, ServerOptions options)
      : protocol_(protocol), options_(std::move(options)) {}
  ~Server() { Stop(); }

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds and listens. Returns once the socket is accepting, with the
  /// accept loop running on a background thread.
  Status Start();

  /// Blocks until shutdown is requested (protocol op or Stop()).
  void AwaitShutdown();

  /// Like AwaitShutdown with a timeout; returns whether shutdown was
  /// requested. Lets a signal-driven main loop poll an atomic flag between
  /// waits (a signal handler cannot safely notify a condition variable).
  bool AwaitShutdownFor(std::chrono::milliseconds timeout);

  /// Idempotent: closes the listener, joins the accept loop and every
  /// connection thread, unlinks the socket file.
  void Stop();

  const std::string& socket_path() const { return options_.socket_path; }

 private:
  void AcceptLoop();
  void HandleConnection(int fd);

  Protocol* protocol_;
  ServerOptions options_;

  int listen_fd_ = -1;
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;
  std::mutex conn_mutex_;
  std::vector<std::thread> connections_;
  std::set<int> live_fds_;  ///< Open connection sockets, for Stop() to poke.

  std::mutex shutdown_mutex_;
  std::condition_variable shutdown_cv_;
  bool shutdown_requested_ = false;
};

}  // namespace vadasa::serve

#endif  // VADASA_SERVE_SERVER_H_
