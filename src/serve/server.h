#ifndef VADASA_SERVE_SERVER_H_
#define VADASA_SERVE_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "serve/protocol.h"
#include "serve/quota.h"

namespace vadasa::serve {

/// Where a server listens: a Unix-domain socket path or an IPv4 TCP
/// host:port. The transports are interchangeable above the fd — one NDJSON
/// protocol, quota, failpoint and drain path serves both.
struct ListenSpec {
  enum class Kind { kUnix, kTcp };
  Kind kind = Kind::kUnix;
  /// kUnix: filesystem path (a stale socket file is unlinked before bind).
  std::string path;
  /// kTcp: an IPv4 literal, "localhost", or ""/"0.0.0.0" for any interface.
  std::string host;
  /// kTcp: port; 0 binds an ephemeral port (tests read it back via
  /// Listener::bound_port).
  int port = 0;

  /// The flag spelling: "unix:PATH" or "tcp:HOST:PORT".
  std::string ToString() const;
};

/// Parses "unix:PATH" | "tcp:HOST:PORT" (the --listen flag syntax).
Result<ListenSpec> ParseListenSpec(const std::string& spec);

/// One bound, listening socket behind either backend. Accept() blocks until
/// a connection arrives or Close() tears the listener down (from any
/// thread); accepted TCP sockets get TCP_NODELAY so one-line requests are
/// not Nagle-delayed. Close() unlinks a Unix path. Single-use.
class Listener {
 public:
  Listener() = default;
  ~Listener() { Close(); }
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  Status Bind(const ListenSpec& spec, int backlog);
  /// The next connection fd; an error once the listener is closed.
  Result<int> Accept();
  void Close();  ///< Idempotent; wakes a blocked Accept().

  bool bound() const { return fd_ >= 0; }
  const ListenSpec& spec() const { return spec_; }
  /// TCP: the actual port after Bind (resolves an ephemeral 0). Unix: 0.
  int bound_port() const { return bound_port_; }

 private:
  ListenSpec spec_;
  int fd_ = -1;
  int bound_port_ = 0;
};

struct ServerOptions {
  /// Where to listen. Ignored when the legacy `socket_path` below is set.
  ListenSpec listen;
  /// Legacy spelling of listen={kUnix, path}: filesystem path of the Unix
  /// domain socket. When non-empty it wins over `listen`.
  std::string socket_path;
  /// listen(2) backlog.
  int backlog = 16;
  /// Per-connection admission quota (docs/robustness.md); the zero defaults
  /// leave connections unmetered.
  QuotaOptions quota;
  /// Longest request line a connection may send, bytes. A connection whose
  /// buffered line crosses this gets one structured LimitExceeded error line
  /// and is closed (metric: serve.conn.oversized).
  size_t max_line_bytes = 4u << 20;
};

/// A newline-delimited-JSON server over a Unix domain or TCP socket: one
/// thread per connection, each line handed to Protocol::Handle.
/// `{"op":"shutdown"}` (or Stop()) stops the accept loop, closes the
/// listener and joins every connection thread. Single-use: Start() then
/// Stop().
class Server {
 public:
  Server(Protocol* protocol, ServerOptions options)
      : protocol_(protocol), options_(std::move(options)) {}
  ~Server() { Stop(); }

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds and listens. Returns once the socket is accepting, with the
  /// accept loop running on a background thread.
  Status Start();

  /// Blocks until shutdown is requested (protocol op or Stop()).
  void AwaitShutdown();

  /// Like AwaitShutdown with a timeout; returns whether shutdown was
  /// requested. Lets a signal-driven main loop poll an atomic flag between
  /// waits (a signal handler cannot safely notify a condition variable).
  bool AwaitShutdownFor(std::chrono::milliseconds timeout);

  /// Idempotent: closes the listener, joins the accept loop and every
  /// connection thread, unlinks the socket file.
  void Stop();

  const std::string& socket_path() const { return options_.socket_path; }
  /// The resolved listen spec (after the legacy socket_path override).
  const ListenSpec& listen_spec() const { return listener_.spec(); }
  /// TCP: the port actually bound (an ephemeral `tcp:HOST:0` resolves here
  /// after Start). Unix: 0.
  int bound_port() const { return listener_.bound_port(); }

 private:
  void AcceptLoop();
  void HandleConnection(int fd);

  Protocol* protocol_;
  ServerOptions options_;

  Listener listener_;
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;
  std::mutex conn_mutex_;
  std::vector<std::thread> connections_;
  std::set<int> live_fds_;  ///< Open connection sockets, for Stop() to poke.

  std::mutex shutdown_mutex_;
  std::condition_variable shutdown_cv_;
  bool shutdown_requested_ = false;
};

}  // namespace vadasa::serve

#endif  // VADASA_SERVE_SERVER_H_
