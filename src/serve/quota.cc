#include "serve/quota.h"

#include <algorithm>
#include <chrono>
#include <string>
#include <utility>

#include "obs/trace.h"

namespace vadasa::serve {

namespace {

int64_t SteadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

ClientQuota::ClientQuota(QuotaOptions options, std::function<int64_t()> now_ns)
    : options_(options),
      now_ns_(now_ns ? std::move(now_ns) : SteadyNowNs),
      in_flight_(std::make_shared<std::atomic<int64_t>>(0)) {
  if (options_.submits_per_second > 0.0 && options_.burst <= 0.0) {
    options_.burst = std::max(1.0, options_.submits_per_second);
  }
  tokens_ = options_.burst;  // A fresh connection starts with a full bucket.
  last_refill_ns_ = now_ns_();
}

Status ClientQuota::Admit() {
  if (options_.max_in_flight > 0) {
    // Optimistic reserve: bump, and roll back if that crossed the cap. The
    // cell is also decremented by scheduler workers, so this stays a single
    // atomic RMW instead of a CAS loop over a racing value.
    const int64_t now_holding =
        in_flight_->fetch_add(1, std::memory_order_relaxed) + 1;
    if (now_holding > static_cast<int64_t>(options_.max_in_flight)) {
      in_flight_->fetch_sub(1, std::memory_order_relaxed);
      VADASA_METRIC_COUNT("serve.quota.rejected.in_flight", 1);
      return Status::Unavailable(
          "client quota: " + std::to_string(options_.max_in_flight) +
          " job(s) already in flight on this connection");
    }
  }
  if (options_.submits_per_second > 0.0) {
    std::lock_guard<std::mutex> lock(mutex_);
    const int64_t now = now_ns_();
    const double elapsed_s =
        static_cast<double>(std::max<int64_t>(0, now - last_refill_ns_)) * 1e-9;
    last_refill_ns_ = now;
    tokens_ = std::min(options_.burst,
                       tokens_ + elapsed_s * options_.submits_per_second);
    if (tokens_ < 1.0) {
      if (options_.max_in_flight > 0) {
        in_flight_->fetch_sub(1, std::memory_order_relaxed);
      }
      VADASA_METRIC_COUNT("serve.quota.rejected.rate", 1);
      return Status::Unavailable(
          "client quota: submit rate above " +
          std::to_string(options_.submits_per_second) + "/s on this connection");
    }
    tokens_ -= 1.0;
  }
  VADASA_METRIC_COUNT("serve.quota.admitted", 1);
  return Status::OK();
}

void ClientQuota::Release() {
  if (options_.max_in_flight > 0) {
    in_flight_->fetch_sub(1, std::memory_order_relaxed);
  }
}

int64_t RetryAfterMs(size_t queue_depth, size_t workers) {
  // 10ms floor so clients never busy-loop, plus ~25ms per queued job per
  // worker — roughly "how many scheduling rounds stand between you and a
  // free slot" — capped at 10s so hints stay actionable.
  const size_t per_worker = queue_depth / std::max<size_t>(1, workers);
  const int64_t hint = 10 + static_cast<int64_t>(per_worker) * 25;
  return std::min<int64_t>(hint, 10000);
}

}  // namespace vadasa::serve
