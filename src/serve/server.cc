#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "common/failpoint.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace vadasa::serve {

namespace {

/// Writes the whole buffer, riding out EINTR and short writes. Failpoints:
/// serve.sock.write (a fire is an injected EPIPE — the caller must treat the
/// connection as dead), serve.sock.write.short (a fire truncates this pass
/// to one byte, exercising the resume-from-short-write path).
bool WriteAll(int fd, const char* data, size_t size) {
  static failpoint::Failpoint* fp_write =
      failpoint::GetFailpoint("serve.sock.write");
  static failpoint::Failpoint* fp_short =
      failpoint::GetFailpoint("serve.sock.write.short");
  size_t written = 0;
  while (written < size) {
    if (fp_write->armed() && fp_write->Fires()) return false;
    size_t want = size - written;
    if (want > 1 && fp_short->armed() && fp_short->Fires()) want = 1;
    ssize_t n = ::write(fd, data + written, want);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;  // EPIPE/ECONNRESET: the peer is gone.
    }
    written += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

std::string ListenSpec::ToString() const {
  if (kind == Kind::kUnix) return "unix:" + path;
  return "tcp:" + (host.empty() ? std::string("0.0.0.0") : host) + ":" +
         std::to_string(port);
}

Result<ListenSpec> ParseListenSpec(const std::string& spec) {
  ListenSpec parsed;
  if (spec.rfind("unix:", 0) == 0) {
    parsed.kind = ListenSpec::Kind::kUnix;
    parsed.path = spec.substr(5);
    if (parsed.path.empty()) {
      return Status::InvalidArgument("listen spec \"" + spec +
                                     "\" has an empty socket path");
    }
    return parsed;
  }
  if (spec.rfind("tcp:", 0) == 0) {
    parsed.kind = ListenSpec::Kind::kTcp;
    const std::string rest = spec.substr(4);
    const size_t colon = rest.rfind(':');
    if (colon == std::string::npos) {
      return Status::InvalidArgument("listen spec \"" + spec +
                                     "\" wants tcp:HOST:PORT");
    }
    parsed.host = rest.substr(0, colon);
    const std::string port = rest.substr(colon + 1);
    if (port.empty() ||
        port.find_first_not_of("0123456789") != std::string::npos) {
      return Status::InvalidArgument("listen spec \"" + spec +
                                     "\" has a non-numeric port");
    }
    const long value = std::strtol(port.c_str(), nullptr, 10);
    if (value < 0 || value > 65535) {
      return Status::InvalidArgument("listen spec \"" + spec +
                                     "\" port out of range");
    }
    parsed.port = static_cast<int>(value);
    return parsed;
  }
  return Status::InvalidArgument("listen spec \"" + spec +
                                 "\" must be unix:PATH or tcp:HOST:PORT");
}

Status Listener::Bind(const ListenSpec& spec, int backlog) {
  if (fd_ >= 0) return Status::FailedPrecondition("listener already bound");
  spec_ = spec;
  if (spec.kind == ListenSpec::Kind::kUnix) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (spec.path.size() >= sizeof(addr.sun_path)) {
      return Status::InvalidArgument("socket path too long: " + spec.path);
    }
    std::strncpy(addr.sun_path, spec.path.c_str(), sizeof(addr.sun_path) - 1);
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) {
      return Status::IoError(std::string("socket: ") + std::strerror(errno));
    }
    ::unlink(spec.path.c_str());
    if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      Status status =
          Status::IoError("bind " + spec.path + ": " + std::strerror(errno));
      ::close(fd_);
      fd_ = -1;
      return status;
    }
  } else {
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(spec.port));
    if (spec.host.empty() || spec.host == "0.0.0.0") {
      addr.sin_addr.s_addr = htonl(INADDR_ANY);
    } else if (spec.host == "localhost") {
      addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    } else if (::inet_pton(AF_INET, spec.host.c_str(), &addr.sin_addr) != 1) {
      return Status::InvalidArgument("not an IPv4 listen address: " +
                                     spec.host);
    }
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) {
      return Status::IoError(std::string("socket: ") + std::strerror(errno));
    }
    // Restarts must not wait out TIME_WAIT on the previous instance's port.
    int one = 1;
    ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      Status status = Status::IoError("bind " + spec.ToString() + ": " +
                                      std::strerror(errno));
      ::close(fd_);
      fd_ = -1;
      return status;
    }
    sockaddr_in bound{};
    socklen_t bound_len = sizeof(bound);
    if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len) ==
        0) {
      bound_port_ = static_cast<int>(ntohs(bound.sin_port));
      spec_.port = bound_port_;
    }
  }
  if (::listen(fd_, backlog) != 0) {
    Status status =
        Status::IoError(std::string("listen: ") + std::strerror(errno));
    Close();
    return status;
  }
  return Status::OK();
}

Result<int> Listener::Accept() {
  for (;;) {
    int fd = ::accept(fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("accept: ") + std::strerror(errno));
    }
    if (spec_.kind == ListenSpec::Kind::kTcp) {
      // One request line, one response line: never let Nagle sit on either.
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    }
    return fd;
  }
}

void Listener::Close() {
  if (fd_ < 0) return;
  ::shutdown(fd_, SHUT_RDWR);
  ::close(fd_);
  fd_ = -1;
  if (spec_.kind == ListenSpec::Kind::kUnix && !spec_.path.empty()) {
    ::unlink(spec_.path.c_str());
  }
}

Status Server::Start() {
  ListenSpec spec = options_.listen;
  if (!options_.socket_path.empty()) {
    spec.kind = ListenSpec::Kind::kUnix;
    spec.path = options_.socket_path;
  }
  if (spec.kind == ListenSpec::Kind::kUnix && spec.path.empty()) {
    return Status::InvalidArgument("server needs a socket path or listen spec");
  }
  // Touch the degraded-mode counters so scrapes carry them before any fault.
  obs::MetricsRegistry::Global().counter("serve.conn.oversized");
  obs::MetricsRegistry::Global().counter("serve.quota.admitted");
  obs::MetricsRegistry::Global().counter("serve.quota.rejected.in_flight");
  obs::MetricsRegistry::Global().counter("serve.quota.rejected.rate");
  VADASA_RETURN_NOT_OK(listener_.Bind(spec, options_.backlog));
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void Server::AcceptLoop() {
  for (;;) {
    auto accepted = listener_.Accept();
    if (!accepted.ok()) {
      return;  // Listener closed (Stop) or fatal; either way we are done.
    }
    const int fd = *accepted;
    if (stopping_.load()) {
      ::close(fd);
      return;
    }
    VADASA_METRIC_COUNT("serve.connections", 1);
    std::lock_guard<std::mutex> lock(conn_mutex_);
    live_fds_.insert(fd);
    connections_.emplace_back([this, fd] { HandleConnection(fd); });
  }
}

void Server::HandleConnection(int fd) {
  // Read-side failpoints: serve.sock.read (a fire is an injected
  // ECONNRESET), serve.sock.read.eagain (a fire is an injected EAGAIN —
  // retried, but bounded so an always-fire policy cannot spin the loop
  // forever), serve.sock.read.short (a fire shrinks this pass's read request
  // to one byte, exercising line reassembly across reads).
  static failpoint::Failpoint* fp_read =
      failpoint::GetFailpoint("serve.sock.read");
  static failpoint::Failpoint* fp_eagain =
      failpoint::GetFailpoint("serve.sock.read.eagain");
  static failpoint::Failpoint* fp_rshort =
      failpoint::GetFailpoint("serve.sock.read.short");
  constexpr int kMaxInjectedEagainStreak = 1000;

  ClientQuota quota(options_.quota);
  std::string buffer;
  char chunk[4096];
  bool shutdown_requested = false;
  bool dead = false;       ///< Socket unusable (write failed / oversized line).
  bool oversized = false;  ///< The line limit tripped; owed one refusal line.
  int eagain_streak = 0;
  while (!dead && !shutdown_requested) {
    if (fp_read->armed() && fp_read->Fires()) break;
    if (fp_eagain->armed() && fp_eagain->Fires()) {
      if (++eagain_streak > kMaxInjectedEagainStreak) break;
      continue;
    }
    // Shrink the *request*, not the result: truncating after the read would
    // drop bytes the kernel already handed over.
    size_t want = sizeof(chunk);
    if (fp_rshort->armed() && fp_rshort->Fires()) want = 1;
    ssize_t n = ::read(fd, chunk, want);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (n == 0) break;  // Client hung up.
    eagain_streak = 0;
    buffer.append(chunk, static_cast<size_t>(n));
    size_t newline;
    while (!dead && !shutdown_requested &&
           (newline = buffer.find('\n')) != std::string::npos) {
      std::string line = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      if (line.empty()) continue;
      if (line.size() > options_.max_line_bytes) {
        oversized = true;
        dead = true;
        break;
      }
      std::string response;
      {
        // One trace id per request line: every span opened while handling —
        // including job spans re-installed on scheduler workers — and the
        // response's "trace_id" echo share it.
        obs::ScopedTraceId trace_scope(obs::MintTraceId());
        response = protocol_->Handle(line, &shutdown_requested, &quota);
      }
      response.push_back('\n');
      if (!WriteAll(fd, response.data(), response.size())) {
        // The peer is gone: stop parsing — later lines in the buffer would
        // compute answers nobody can receive.
        dead = true;
        shutdown_requested = false;
        break;
      }
    }
    if (!dead && buffer.size() > options_.max_line_bytes) {
      // A partial line already past the limit can never complete legally.
      oversized = true;
      dead = true;
    }
    if (oversized) {
      // One structured refusal, then hang up: the client learns why instead
      // of watching the server buffer its flood.
      VADASA_METRIC_COUNT("serve.conn.oversized", 1);
      std::string refusal = Protocol::ErrorResponse(Status::LimitExceeded(
          "request line exceeds " + std::to_string(options_.max_line_bytes) +
          " bytes (--max-line-bytes)"));
      refusal.push_back('\n');
      (void)WriteAll(fd, refusal.data(), refusal.size());
    }
  }
  {
    std::lock_guard<std::mutex> lock(conn_mutex_);
    live_fds_.erase(fd);
  }
  ::close(fd);
  if (shutdown_requested) {
    std::lock_guard<std::mutex> lock(shutdown_mutex_);
    shutdown_requested_ = true;
    shutdown_cv_.notify_all();
  }
}

void Server::AwaitShutdown() {
  std::unique_lock<std::mutex> lock(shutdown_mutex_);
  shutdown_cv_.wait(lock, [this] { return shutdown_requested_; });
}

bool Server::AwaitShutdownFor(std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lock(shutdown_mutex_);
  return shutdown_cv_.wait_for(lock, timeout,
                               [this] { return shutdown_requested_; });
}

void Server::Stop() {
  if (stopping_.exchange(true)) {
    // Second caller still wants the joins below to have happened; the first
    // call does them, so just fall through when the thread is already gone.
  }
  listener_.Close();
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> connections;
  {
    // Kick idle connections out of their blocking read; each thread closes
    // its own fd on the way out.
    std::lock_guard<std::mutex> lock(conn_mutex_);
    for (int fd : live_fds_) ::shutdown(fd, SHUT_RDWR);
    connections.swap(connections_);
  }
  for (std::thread& connection : connections) {
    if (connection.joinable()) connection.join();
  }
  {
    std::lock_guard<std::mutex> lock(shutdown_mutex_);
    shutdown_requested_ = true;
    shutdown_cv_.notify_all();
  }
}

}  // namespace vadasa::serve
