#include "serve/server.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace vadasa::serve {

namespace {

/// Writes the whole buffer, riding out EINTR and short writes.
bool WriteAll(int fd, const char* data, size_t size) {
  size_t written = 0;
  while (written < size) {
    ssize_t n = ::write(fd, data + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    written += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

Status Server::Start() {
  if (options_.socket_path.empty()) {
    return Status::InvalidArgument("server needs a socket path");
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (options_.socket_path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("socket path too long: " +
                                   options_.socket_path);
  }
  std::strncpy(addr.sun_path, options_.socket_path.c_str(),
               sizeof(addr.sun_path) - 1);

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  ::unlink(options_.socket_path.c_str());
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    Status status = Status::IoError("bind " + options_.socket_path + ": " +
                                    std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  if (::listen(listen_fd_, options_.backlog) != 0) {
    Status status =
        Status::IoError(std::string("listen: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void Server::AcceptLoop() {
  for (;;) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // Listener closed (Stop) or fatal; either way we are done.
    }
    if (stopping_.load()) {
      ::close(fd);
      return;
    }
    VADASA_METRIC_COUNT("serve.connections", 1);
    std::lock_guard<std::mutex> lock(conn_mutex_);
    live_fds_.insert(fd);
    connections_.emplace_back([this, fd] { HandleConnection(fd); });
  }
}

void Server::HandleConnection(int fd) {
  std::string buffer;
  char chunk[4096];
  bool shutdown_requested = false;
  while (!shutdown_requested) {
    ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (n == 0) break;  // Client hung up.
    buffer.append(chunk, static_cast<size_t>(n));
    size_t newline;
    while (!shutdown_requested &&
           (newline = buffer.find('\n')) != std::string::npos) {
      std::string line = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      if (line.empty()) continue;
      std::string response;
      {
        // One trace id per request line: every span opened while handling —
        // including job spans re-installed on scheduler workers — and the
        // response's "trace_id" echo share it.
        obs::ScopedTraceId trace_scope(obs::MintTraceId());
        response = protocol_->Handle(line, &shutdown_requested);
      }
      response.push_back('\n');
      if (!WriteAll(fd, response.data(), response.size())) {
        shutdown_requested = false;
        break;
      }
    }
  }
  {
    std::lock_guard<std::mutex> lock(conn_mutex_);
    live_fds_.erase(fd);
  }
  ::close(fd);
  if (shutdown_requested) {
    std::lock_guard<std::mutex> lock(shutdown_mutex_);
    shutdown_requested_ = true;
    shutdown_cv_.notify_all();
  }
}

void Server::AwaitShutdown() {
  std::unique_lock<std::mutex> lock(shutdown_mutex_);
  shutdown_cv_.wait(lock, [this] { return shutdown_requested_; });
}

void Server::Stop() {
  if (stopping_.exchange(true)) {
    // Second caller still wants the joins below to have happened; the first
    // call does them, so just fall through when the thread is already gone.
  }
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> connections;
  {
    // Kick idle connections out of their blocking read; each thread closes
    // its own fd on the way out.
    std::lock_guard<std::mutex> lock(conn_mutex_);
    for (int fd : live_fds_) ::shutdown(fd, SHUT_RDWR);
    connections.swap(connections_);
  }
  for (std::thread& connection : connections) {
    if (connection.joinable()) connection.join();
  }
  if (!options_.socket_path.empty()) {
    ::unlink(options_.socket_path.c_str());
  }
  {
    std::lock_guard<std::mutex> lock(shutdown_mutex_);
    shutdown_requested_ = true;
    shutdown_cv_.notify_all();
  }
}

}  // namespace vadasa::serve
