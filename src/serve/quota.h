#ifndef VADASA_SERVE_QUOTA_H_
#define VADASA_SERVE_QUOTA_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>

#include "common/result.h"

/// Per-client admission quotas for the serving front end
/// (docs/robustness.md). The scheduler's bounded queue protects the process;
/// quotas protect it from any *single* client: a connection may hold at most
/// `max_in_flight` unfinished jobs and submit at most `submits_per_second`
/// jobs sustained (token bucket, so short bursts up to `burst` pass). Over-
/// quota submits are rejected immediately with Unavailable — never blocked —
/// and the protocol attaches a `retry_after_ms` backoff hint scaled by how
/// backed up the scheduler is.

namespace vadasa::serve {

struct QuotaOptions {
  /// Unfinished (queued or running) jobs one connection may hold. 0 = no cap.
  size_t max_in_flight = 0;
  /// Sustained submit rate per connection, jobs/second. 0 = no cap.
  double submits_per_second = 0.0;
  /// Token-bucket capacity (burst size). <= 0 defaults to
  /// max(1, submits_per_second).
  double burst = 0.0;
};

/// One connection's quota state. Admit() consumes a rate token and reserves
/// an in-flight slot; the slot is released when the job reaches a terminal
/// state (the scheduler decrements `in_flight_cell()`), so quotas reset
/// naturally as a client's jobs finish — and die with the connection.
/// Thread-safe; a ClientQuota is cheap enough to build per connection.
class ClientQuota {
 public:
  /// `now_ns` overrides the token-bucket clock (tests); default steady_clock.
  explicit ClientQuota(QuotaOptions options,
                       std::function<int64_t()> now_ns = nullptr);

  ClientQuota(const ClientQuota&) = delete;
  ClientQuota& operator=(const ClientQuota&) = delete;

  /// Reserves one submit: Unavailable when the connection is at its
  /// in-flight cap or out of rate tokens; OK reserves the slot. Never blocks.
  Status Admit();

  /// Returns the reserved slot without submitting (the scheduler rejected
  /// the job after Admit() passed). The rate token is deliberately not
  /// refunded — a rejected submit still spent server attention.
  void Release();

  /// The shared in-flight counter the scheduler decrements once the job is
  /// terminal (JobOptions::quota_slot).
  std::shared_ptr<std::atomic<int64_t>> in_flight_cell() const {
    return in_flight_;
  }

  int64_t in_flight() const {
    return in_flight_->load(std::memory_order_relaxed);
  }
  const QuotaOptions& options() const { return options_; }

 private:
  QuotaOptions options_;
  std::function<int64_t()> now_ns_;
  std::shared_ptr<std::atomic<int64_t>> in_flight_;
  std::mutex mutex_;       ///< Guards the token bucket.
  double tokens_ = 0.0;
  int64_t last_refill_ns_ = 0;
};

/// Backoff hint for a rejected submit, milliseconds: how long the client
/// should wait before retrying, growing with the scheduler's backlog per
/// worker so a drowning server pushes clients off harder. Monotone
/// non-decreasing in `queue_depth`, non-negative, capped at 10 seconds.
int64_t RetryAfterMs(size_t queue_depth, size_t workers);

}  // namespace vadasa::serve

#endif  // VADASA_SERVE_QUOTA_H_
