#ifndef VADASA_SERVE_SCHEDULER_H_
#define VADASA_SERVE_SCHEDULER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "api/vadasa.h"
#include "common/cancel.h"
#include "common/result.h"

namespace vadasa::obs {
class Gauge;
class RequestLog;
}

namespace vadasa::serve {

class ResultCache;

/// Lifecycle of a job. Terminal states: kDone, kFailed, kCancelled, kExpired.
/// (Jobs refused at admission never get an id or a state — Submit returns
/// Unavailable instead; that is the rejection the metrics count.)
enum class JobState {
  kQueued,
  kRunning,
  kDone,
  kFailed,     ///< The library call returned a non-OK, non-cancel Status.
  kCancelled,  ///< Cancelled while queued, or cooperatively while running.
  kExpired,    ///< The deadline fired (while queued or mid-run).
};

std::string JobStateToString(JobState state);

/// What to run against the session.
enum class JobAction { kRisk, kAnonymize };

/// One unit of work: an immutable Session (shared dataset + policy) plus the
/// action. Executing it is a pure function of this struct, which is what
/// keeps N concurrent jobs bit-identical to N sequential facade calls.
struct JobRequest {
  api::Session session;
  JobAction action = JobAction::kAnonymize;
  /// Risk-only: infer the threshold at this quantile (< 0 = skip) and attach
  /// per-tuple explanations.
  double quantile = -1.0;
  bool explain = false;
  /// Operator-facing name (dataset) carried into the slow-request log; also
  /// the shard-assignment key, so every job against one dataset lands on the
  /// same worker pool (and stays there across registry reloads — the name is
  /// stable even when the content fingerprint changes).
  std::string label;
  /// Result-cache key (serve/result_cache.h): dataset content fingerprint +
  /// canonical policy. Empty = this job never probes or fills the cache.
  /// Ignored unless the scheduler was built with a result_cache.
  std::string cache_key;
};

/// Per-job scheduling knobs.
struct JobOptions {
  /// Higher runs earlier; ties broken FIFO by admission order.
  int priority = 0;
  /// End-to-end deadline (queue wait + execution), seconds. 0 = none.
  double timeout_seconds = 0.0;
  /// Per-client in-flight accounting (serve/quota.h): decremented exactly
  /// once when the job reaches a terminal state. May be null.
  std::shared_ptr<std::atomic<int64_t>> quota_slot;
};

/// Terminal snapshot of a job.
struct JobResult {
  uint64_t id = 0;
  JobAction action = JobAction::kAnonymize;
  JobState state = JobState::kQueued;
  Status status;  ///< Failure/cancel reason; OK for kDone.
  api::RiskReport risk;            ///< kRisk jobs.
  api::AnonymizeResponse anonymize;  ///< kAnonymize jobs.
  double queue_seconds = 0.0;
  double run_seconds = 0.0;
  /// Integer-nanosecond spellings of the phases above (protocol timing
  /// fields; exact on the steady-clock timeline).
  int64_t queued_ns = 0;
  int64_t run_ns = 0;
  /// Trace id current on the submitting thread at Submit (0 = none).
  uint64_t trace = 0;
  /// kDone only: the payload came from the result cache — the job never
  /// entered a queue or ran. The protocol echoes this as "cached":true.
  bool from_cache = false;
};

struct SchedulerOptions {
  /// Executor threads. Each runs one job at a time; the data-parallel work
  /// inside a job still rides ThreadPool::Global()'s deterministic shards.
  size_t workers = 2;
  /// Bound of the admission queue (jobs queued, not counting running ones).
  /// Submission beyond it is *rejected* with Unavailable, never blocked —
  /// backpressure surfaces at the edge instead of wedging clients.
  size_t max_queue = 64;
  /// Coalesce group-statistics warmup across jobs that share a dataset and
  /// null semantics (the batching of docs/serving.md).
  bool coalesce_warmup = true;
  /// Admit jobs but do not run any until Resume() — deterministic setup for
  /// tests and warm server starts. Shutdown(drain=true) implies Resume.
  bool start_paused = false;
  /// When set, terminal jobs crossing the log's threshold append one NDJSON
  /// line (trace_id, op, dataset, queue_ms, run_ms, outcome). Not owned;
  /// must outlive the scheduler.
  obs::RequestLog* slow_log = nullptr;
  /// Worker-pool shards. Datasets are hash-assigned by label (FNV-1a of the
  /// name, stable across registry reloads), each shard owns its own ready
  /// queue and `workers/shards` threads, so a flood of jobs against one hot
  /// dataset saturates only its shard instead of starving every other
  /// dataset's queue position. Clamped to [1, workers]; 1 = the classic
  /// single shared queue. Admission (`max_queue`) stays a global bound.
  /// Per-shard depth gauges: serve.shard.<i>.queue_depth.
  size_t shards = 1;
  /// When set, Submit probes it by JobRequest::cache_key and a hit completes
  /// the job immediately (kDone, JobResult::from_cache) without queueing;
  /// each successful cold run fills it. Not owned; must outlive the
  /// scheduler. Null = no caching (the default).
  ResultCache* result_cache = nullptr;
  /// Watchdog scan interval, milliseconds; 0 disables the watchdog thread.
  /// Each scan flags — exactly once per job — any running job older than
  /// `watchdog_multiple` times its own deadline: serve.watchdog.flagged is
  /// incremented, an "overdue" slow-log entry is written, and the job's
  /// cancel token is flipped (cooperative-cancel escalation for jobs that
  /// stopped polling their deadline).
  int watchdog_interval_ms = 0;
  double watchdog_multiple = 3.0;
};

/// A bounded, prioritized, cancellable job executor over api::Session calls —
/// the long-lived serving core. Admission control rejects overflow instead of
/// blocking; per-job CancelTokens give cooperative cancellation and deadline
/// enforcement; jobs that share a dataset+semantics coalesce their group-index
/// warmup. All serve.* metrics flow through obs::MetricsRegistry::Global().
class JobScheduler {
 public:
  explicit JobScheduler(SchedulerOptions options = {});
  ~JobScheduler();  ///< Shutdown(/*drain=*/true).

  JobScheduler(const JobScheduler&) = delete;
  JobScheduler& operator=(const JobScheduler&) = delete;

  /// Admits a job or rejects it (Unavailable when the queue is full or the
  /// scheduler is shutting down). Never blocks on a full queue.
  Result<uint64_t> Submit(JobRequest request, JobOptions options = {});

  /// Current state; NotFound for unknown ids.
  Result<JobState> State(uint64_t id) const;

  /// Non-blocking snapshot (results only populated in terminal states).
  Result<JobResult> Peek(uint64_t id) const;

  /// Blocks until the job reaches a terminal state; returns the snapshot.
  Result<JobResult> Wait(uint64_t id);

  /// Queued job: removed and marked kCancelled. Running job: its token is
  /// flipped and the job unwinds at the next cycle-iteration boundary.
  /// Terminal job: no-op. NotFound for unknown ids.
  Status Cancel(uint64_t id);

  /// Stops admission, then either drains the queue (drain=true: queued jobs
  /// still execute) or cancels every queued job; running jobs always finish
  /// (their tokens are left alone — drain=false only cancels queued work).
  /// Joins the workers. Idempotent.
  void Shutdown(bool drain = true);

  /// Bounded-time drain for graceful exit (SIGTERM handling): stops
  /// admission, lets queued + running jobs finish for up to `budget`, then
  /// cancels whatever is left (queued jobs marked kCancelled, running jobs
  /// cooperatively cancelled and still joined). Returns true when everything
  /// drained inside the budget, false when the cancel path fired. Idempotent
  /// with Shutdown().
  bool ShutdownWithin(std::chrono::milliseconds budget);

  /// Starts execution after a start_paused construction. No-op otherwise.
  void Resume();

  size_t queue_depth() const;
  size_t running_jobs() const;
  const SchedulerOptions& options() const { return options_; }

  /// Shards actually built (options().shards after clamping to workers).
  size_t shard_count() const { return shards_.size(); }
  /// The shard a dataset label hash-assigns to.
  size_t ShardForLabel(const std::string& label) const;
  /// Queued jobs on one shard (operator/test visibility; the gauges mirror
  /// this).
  size_t shard_queue_depth(size_t shard) const;

 private:
  struct Job;
  struct WarmSlot;

  /// One worker pool: its own ready queue and wakeup cv (still under the
  /// scheduler-wide mutex_ — sharding isolates *scheduling*, not locking;
  /// queue operations are microseconds against multi-ms jobs).
  struct Shard {
    /// Ready queue keyed by (-priority, admission seq): begin() is next.
    std::map<std::pair<int, uint64_t>, std::shared_ptr<Job>> queue;
    std::condition_variable work_cv;  ///< Workers: queue non-empty / shutdown.
    obs::Gauge* depth_gauge = nullptr;  ///< serve.shard.<i>.queue_depth.
  };

  void WorkerLoop(size_t shard_index);
  void WatchdogLoop();
  void Execute(const std::shared_ptr<Job>& job);
  void WarmUp(Job* job);
  void FinishLocked(Job* job, JobState state, Status status);
  void JoinThreadsLocked(std::unique_lock<std::mutex>* lock);
  /// Sum of shard queue depths; caller holds mutex_.
  size_t TotalQueuedLocked() const;
  /// Refreshes one shard's depth gauge and the global queue-depth gauge;
  /// caller holds mutex_.
  void UpdateDepthGaugesLocked(size_t shard_index);
  void NotifyAllShards();

  SchedulerOptions options_;

  mutable std::mutex mutex_;
  std::condition_variable done_cv_;   ///< Waiters: some job reached terminal.
  /// Admission order within a priority band; also the id source.
  uint64_t next_id_ = 1;
  bool draining_ = false;   ///< Admission closed.
  bool shutdown_ = false;   ///< Workers told to exit once the queue is empty.
  bool paused_ = false;     ///< Workers admit but do not pop until Resume.
  std::vector<std::unique_ptr<Shard>> shards_;
  std::map<uint64_t, std::shared_ptr<Job>> jobs_;
  size_t running_ = 0;

  std::mutex warm_mutex_;
  std::map<std::string, std::shared_ptr<WarmSlot>> warm_;

  std::condition_variable watchdog_cv_;  ///< Wakes the watchdog early on exit.
  std::vector<std::thread> workers_;
  std::thread watchdog_;
};

}  // namespace vadasa::serve

#endif  // VADASA_SERVE_SCHEDULER_H_
