#include "serve/dataset_registry.h"

#include <utility>

#include "common/csv.h"
#include "common/failpoint.h"
#include "core/categorize.h"
#include "obs/trace.h"
#include "serve/result_cache.h"

namespace vadasa::serve {

DatasetRegistry::DatasetRegistry() {
  // Touch the degraded-mode counters so the Prometheus exposition carries
  // them from the first scrape, not only after the first fault.
  obs::MetricsRegistry::Global().counter("serve.registry.load_failures");
  obs::MetricsRegistry::Global().counter("serve.registry.quarantined");
}

Result<std::shared_ptr<const LoadedDataset>> DatasetRegistry::LoadUncached(
    const std::string& path) {
  obs::Span span("serve.registry.load");
  VADASA_FAILPOINT("serve.registry.load");
  VADASA_ASSIGN_OR_RETURN(const CsvTable csv, ReadCsvFile(path));
  VADASA_ASSIGN_OR_RETURN(core::MicrodataTable table,
                          core::MicrodataTable::FromCsv(path, csv, {}, ""));
  VADASA_FAILPOINT("serve.registry.categorize");
  core::AttributeCategorizer categorizer =
      core::AttributeCategorizer::WithDefaultExperience();
  auto dictionary = std::make_shared<core::MetadataDictionary>();
  VADASA_RETURN_NOT_OK(
      categorizer.CategorizeTable(&table, dictionary.get()).status());
  auto loaded = std::make_shared<LoadedDataset>();
  loaded->path = path;
  loaded->table = std::make_shared<const core::MicrodataTable>(std::move(table));
  loaded->dictionary = std::move(dictionary);
  loaded->fingerprint = FingerprintTable(*loaded->table);
  return std::shared_ptr<const LoadedDataset>(std::move(loaded));
}

Result<std::shared_ptr<const LoadedDataset>> DatasetRegistry::Load(
    const std::string& path) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = datasets_.find(path);
    if (it != datasets_.end()) {
      VADASA_METRIC_COUNT("serve.registry.hits", 1);
      return it->second;
    }
    auto failed = failures_.find(path);
    if (failed != failures_.end() && failed->second.quarantined) {
      // A poisoned dataset is not retried on every request: the structured
      // error tells the client (and the slow log) why, until Clear().
      return Status::FailedPrecondition(
          "dataset \"" + path + "\" quarantined after " +
          std::to_string(failed->second.failures) +
          " failed load(s); last error: " +
          failed->second.last_error.ToString());
    }
  }
  // Load outside the lock: parsing a big CSV must not serialize lookups of
  // already-cached datasets. A racing double-load is benign — last one wins
  // and both snapshots are correct.
  auto loaded = LoadUncached(path);
  std::lock_guard<std::mutex> lock(mutex_);
  if (!loaded.ok()) {
    VADASA_METRIC_COUNT("serve.registry.load_failures", 1);
    FailureRecord& record = failures_[path];
    record.failures += 1;
    record.last_error = loaded.status();
    if (!record.quarantined && record.failures >= quarantine_after_) {
      record.quarantined = true;
      VADASA_METRIC_COUNT("serve.registry.quarantined", 1);
      // A quarantined dataset stops serving, so its cached payloads (keyed
      // to whatever fingerprint it last loaded with) stop squatting on the
      // cache budget.
      if (result_cache_ != nullptr) result_cache_->InvalidateDataset(path);
    }
    return loaded.status();
  }
  failures_.erase(path);  // A clean load ends the streak.
  VADASA_METRIC_COUNT("serve.registry.loads", 1);
  auto [it, inserted] = datasets_.emplace(path, std::move(*loaded));
  if (inserted) order_.push_back(path);
  return it->second;
}

Status DatasetRegistry::Register(const std::string& name,
                                 core::MicrodataTable table) {
  VADASA_RETURN_NOT_OK(table.Validate());
  auto loaded = std::make_shared<LoadedDataset>();
  loaded->path = name;
  loaded->table = std::make_shared<const core::MicrodataTable>(std::move(table));
  loaded->dictionary = std::make_shared<core::MetadataDictionary>();
  loaded->fingerprint = FingerprintTable(*loaded->table);
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = datasets_.emplace(name, std::move(loaded));
  (void)it;
  if (!inserted) {
    return Status::AlreadyExists("dataset \"" + name + "\" already registered");
  }
  order_.push_back(name);
  return Status::OK();
}

Result<std::shared_ptr<const LoadedDataset>> DatasetRegistry::Reload(
    const std::string& path) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    datasets_.erase(path);
    // Keep the name's position in order_; Load re-inserts if it vanished.
    if (result_cache_ != nullptr) result_cache_->InvalidateDataset(path);
  }
  return Load(path);
}

Status DatasetRegistry::Replace(const std::string& name,
                                core::MicrodataTable table) {
  VADASA_RETURN_NOT_OK(table.Validate());
  auto loaded = std::make_shared<LoadedDataset>();
  loaded->path = name;
  loaded->table = std::make_shared<const core::MicrodataTable>(std::move(table));
  loaded->dictionary = std::make_shared<core::MetadataDictionary>();
  loaded->fingerprint = FingerprintTable(*loaded->table);
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = datasets_.insert_or_assign(name, std::move(loaded));
  (void)it;
  if (inserted) order_.push_back(name);
  // Invalidation is hygiene: jobs submitted from now on carry the new
  // fingerprint and would miss anyway.
  if (result_cache_ != nullptr) result_cache_->InvalidateDataset(name);
  return Status::OK();
}

Result<std::shared_ptr<const LoadedDataset>> DatasetRegistry::ApplyDelta(
    const std::string& name, const core::DeltaBatch& batch) {
  obs::Span span("serve.registry.apply_delta");
  VADASA_ASSIGN_OR_RETURN(const auto base, Load(name));
  // The table rebuild happens outside the lock, like Load(): a delta against
  // a wide dataset must not serialize lookups of other datasets.
  VADASA_ASSIGN_OR_RETURN(core::MicrodataTable next,
                          core::ApplyDeltaToTable(*base->table, batch));
  auto loaded = std::make_shared<LoadedDataset>();
  loaded->path = name;
  loaded->table = std::make_shared<const core::MicrodataTable>(std::move(next));
  loaded->dictionary = base->dictionary;  // Schema unchanged by a delta.
  loaded->fingerprint = FingerprintTable(*loaded->table);
  loaded->version = base->version + 1;
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = datasets_.insert_or_assign(name, std::move(loaded));
  if (inserted) order_.push_back(name);
  // Invalidation is hygiene: jobs submitted from now on carry the post-delta
  // fingerprint and would miss anyway, but the pre-delta payloads stop
  // squatting on the cache budget.
  if (result_cache_ != nullptr) result_cache_->InvalidateDataset(name);
  VADASA_METRIC_COUNT("serve.registry.delta_applies", 1);
  return it->second;
}

void DatasetRegistry::set_result_cache(ResultCache* cache) {
  std::lock_guard<std::mutex> lock(mutex_);
  result_cache_ = cache;
}

Result<api::Session> DatasetRegistry::OpenSession(const std::string& path,
                                                  api::SessionOptions options) {
  VADASA_ASSIGN_OR_RETURN(const auto dataset, Load(path));
  return api::Session::FromShared(dataset->table, dataset->dictionary,
                                  std::move(options));
}

std::vector<std::string> DatasetRegistry::Catalog() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return order_;
}

bool DatasetRegistry::IsQuarantined(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = failures_.find(path);
  return it != failures_.end() && it->second.quarantined;
}

void DatasetRegistry::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  datasets_.clear();
  order_.clear();
  failures_.clear();
  if (result_cache_ != nullptr) result_cache_->InvalidateAll();
}

}  // namespace vadasa::serve
