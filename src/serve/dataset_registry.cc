#include "serve/dataset_registry.h"

#include <utility>

#include "common/csv.h"
#include "core/categorize.h"
#include "obs/trace.h"

namespace vadasa::serve {

Result<std::shared_ptr<const LoadedDataset>> DatasetRegistry::Load(
    const std::string& path) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = datasets_.find(path);
    if (it != datasets_.end()) {
      VADASA_METRIC_COUNT("serve.registry.hits", 1);
      return it->second;
    }
  }
  // Load outside the lock: parsing a big CSV must not serialize lookups of
  // already-cached datasets. A racing double-load is benign — last one wins
  // and both snapshots are correct.
  obs::Span span("serve.registry.load");
  VADASA_ASSIGN_OR_RETURN(const CsvTable csv, ReadCsvFile(path));
  VADASA_ASSIGN_OR_RETURN(core::MicrodataTable table,
                          core::MicrodataTable::FromCsv(path, csv, {}, ""));
  core::AttributeCategorizer categorizer =
      core::AttributeCategorizer::WithDefaultExperience();
  auto dictionary = std::make_shared<core::MetadataDictionary>();
  VADASA_RETURN_NOT_OK(
      categorizer.CategorizeTable(&table, dictionary.get()).status());
  auto loaded = std::make_shared<LoadedDataset>();
  loaded->path = path;
  loaded->table = std::make_shared<const core::MicrodataTable>(std::move(table));
  loaded->dictionary = std::move(dictionary);
  VADASA_METRIC_COUNT("serve.registry.loads", 1);
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = datasets_.emplace(path, std::move(loaded));
  if (inserted) order_.push_back(path);
  return it->second;
}

Status DatasetRegistry::Register(const std::string& name,
                                 core::MicrodataTable table) {
  VADASA_RETURN_NOT_OK(table.Validate());
  auto loaded = std::make_shared<LoadedDataset>();
  loaded->path = name;
  loaded->table = std::make_shared<const core::MicrodataTable>(std::move(table));
  loaded->dictionary = std::make_shared<core::MetadataDictionary>();
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = datasets_.emplace(name, std::move(loaded));
  (void)it;
  if (!inserted) {
    return Status::AlreadyExists("dataset \"" + name + "\" already registered");
  }
  order_.push_back(name);
  return Status::OK();
}

Result<api::Session> DatasetRegistry::OpenSession(const std::string& path,
                                                  api::SessionOptions options) {
  VADASA_ASSIGN_OR_RETURN(const auto dataset, Load(path));
  return api::Session::FromShared(dataset->table, dataset->dictionary,
                                  std::move(options));
}

std::vector<std::string> DatasetRegistry::Catalog() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return order_;
}

void DatasetRegistry::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  datasets_.clear();
  order_.clear();
}

}  // namespace vadasa::serve
