#ifndef VADASA_CORE_DELTA_H_
#define VADASA_CORE_DELTA_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/value.h"
#include "core/microdata.h"

namespace vadasa::core {

/// One row mutation of a streaming microdata feed (docs/api.md §"Streaming
/// deltas"): append a new row, rewrite an existing row, or delete one.
enum class DeltaOpKind {
  kAppend,
  kUpdate,
  kDelete,
};

/// One validated delta operation. `row` is a *parent-table* row index
/// (meaningful for kUpdate/kDelete); `values` is the full replacement row
/// (kAppend/kUpdate).
struct DeltaOp {
  DeltaOpKind kind = DeltaOpKind::kAppend;
  uint32_t row = 0;
  std::vector<Value> values;
};

/// An immutable, pre-validated batch of row mutations against one table
/// shape. Built via DeltaBatchBuilder; applied via ApplyDeltaToTable /
/// api::Session::Apply / the serve-layer "apply_delta" verb.
///
/// Application semantics (fixed, documented here once): all Update/Delete
/// row indices address the *parent* table's numbering. Updates apply first
/// (last write per row wins), then deletes (duplicates collapse; deleting an
/// updated row discards the update), then appends at the end of the table.
/// Surviving rows keep their relative order (order-preserving compaction),
/// which is what makes incremental group maintenance bit-identical to a cold
/// rebuild — untouched groups re-accumulate their weights in the same order.
/// Rows appended by a batch are not addressable within that same batch.
class DeltaBatch {
 public:
  const std::vector<DeltaOp>& ops() const { return ops_; }
  /// The column count every Append/Update row was validated against.
  size_t num_columns() const { return num_columns_; }
  bool empty() const { return ops_.empty(); }
  size_t size() const { return ops_.size(); }

 private:
  friend class DeltaBatchBuilder;
  size_t num_columns_ = 0;
  std::vector<DeltaOp> ops_;
};

/// Builder with build-time validation, mirroring ValidateSessionOptions'
/// fail-before-any-state-is-touched contract: a row whose width does not
/// match the declared column count poisons the builder immediately, Build()
/// returns InvalidArgument, and nothing downstream (table, index, session)
/// ever observes a partial batch. Row-index bounds are checked against the
/// concrete table at apply time (the builder has no table).
class DeltaBatchBuilder {
 public:
  /// `num_columns` is the schema width the batch targets (table.num_columns()).
  explicit DeltaBatchBuilder(size_t num_columns);

  DeltaBatchBuilder& Append(std::vector<Value> row);
  DeltaBatchBuilder& Update(size_t row, std::vector<Value> values);
  DeltaBatchBuilder& Delete(size_t row);

  /// The validated batch, or the first recorded validation error.
  Result<DeltaBatch> Build();

 private:
  DeltaBatch batch_;
  Status error_ = Status::OK();
};

/// How a batch's row operations land in the post-delta row numbering —
/// the contract between ApplyDeltaToTable and GroupIndex::ApplyDelta.
struct DeltaRowPlan {
  /// Updated rows that survived the batch's deletes, as *new-table* indices,
  /// ascending. Their cell contents must be re-projected.
  std::vector<uint32_t> updated_new_rows;
  /// Deleted rows as *old-table* indices, ascending, deduplicated.
  std::vector<uint32_t> deleted_old_rows;
  /// Rows appended at the end of the new table.
  size_t appended_rows = 0;
};

/// Applies `batch` to a copy of `table` under the semantics documented on
/// DeltaBatch, returning the post-delta table. Fails with InvalidArgument
/// (before touching anything) when the batch's column count does not match
/// the table or any row index is out of range; fails with TypeError when a
/// new/updated row carries a non-numeric sampling weight. `plan`, when
/// non-null, receives the old→new row bookkeeping incremental maintenance
/// needs.
Result<MicrodataTable> ApplyDeltaToTable(const MicrodataTable& table,
                                         const DeltaBatch& batch,
                                         DeltaRowPlan* plan = nullptr);

}  // namespace vadasa::core

#endif  // VADASA_CORE_DELTA_H_
