#include "core/delta.h"

#include <algorithm>
#include <string>
#include <utility>

#include "obs/trace.h"

namespace vadasa::core {

DeltaBatchBuilder::DeltaBatchBuilder(size_t num_columns) {
  batch_.num_columns_ = num_columns;
}

DeltaBatchBuilder& DeltaBatchBuilder::Append(std::vector<Value> row) {
  if (!error_.ok()) return *this;
  if (row.size() != batch_.num_columns_) {
    error_ = Status::InvalidArgument(
        "DeltaBatch::Append: row has " + std::to_string(row.size()) +
        " cells, table has " + std::to_string(batch_.num_columns_) +
        " columns");
    return *this;
  }
  DeltaOp op;
  op.kind = DeltaOpKind::kAppend;
  op.values = std::move(row);
  batch_.ops_.push_back(std::move(op));
  return *this;
}

DeltaBatchBuilder& DeltaBatchBuilder::Update(size_t row, std::vector<Value> values) {
  if (!error_.ok()) return *this;
  if (values.size() != batch_.num_columns_) {
    error_ = Status::InvalidArgument(
        "DeltaBatch::Update(" + std::to_string(row) + "): row has " +
        std::to_string(values.size()) + " cells, table has " +
        std::to_string(batch_.num_columns_) + " columns");
    return *this;
  }
  DeltaOp op;
  op.kind = DeltaOpKind::kUpdate;
  op.row = static_cast<uint32_t>(row);
  op.values = std::move(values);
  batch_.ops_.push_back(std::move(op));
  return *this;
}

DeltaBatchBuilder& DeltaBatchBuilder::Delete(size_t row) {
  if (!error_.ok()) return *this;
  DeltaOp op;
  op.kind = DeltaOpKind::kDelete;
  op.row = static_cast<uint32_t>(row);
  batch_.ops_.push_back(std::move(op));
  return *this;
}

Result<DeltaBatch> DeltaBatchBuilder::Build() {
  VADASA_RETURN_NOT_OK(error_);
  return std::move(batch_);
}

Result<MicrodataTable> ApplyDeltaToTable(const MicrodataTable& table,
                                         const DeltaBatch& batch,
                                         DeltaRowPlan* plan) {
  obs::Span span("delta.apply_table");
  const size_t n = table.num_rows();
  if (batch.num_columns() != table.num_columns()) {
    return Status::InvalidArgument(
        "DeltaBatch targets " + std::to_string(batch.num_columns()) +
        " columns, table \"" + table.name() + "\" has " +
        std::to_string(table.num_columns()));
  }
  // Validate every op before touching anything: a half-applied batch must be
  // unobservable.
  const int weight_col = table.WeightColumn();
  for (const DeltaOp& op : batch.ops()) {
    if (op.kind != DeltaOpKind::kAppend && op.row >= n) {
      return Status::InvalidArgument(
          "DeltaBatch row index " + std::to_string(op.row) +
          " out of range for table of " + std::to_string(n) + " rows");
    }
    if (op.kind != DeltaOpKind::kDelete && weight_col >= 0 &&
        !op.values[static_cast<size_t>(weight_col)].is_numeric()) {
      return Status::TypeError(
          "DeltaBatch row carries a non-numeric sampling weight");
    }
  }

  // Resolve the batch: last update per row wins; deletes deduplicate.
  std::vector<const std::vector<Value>*> update_of(n, nullptr);
  std::vector<bool> deleted(n, false);
  size_t appended = 0;
  for (const DeltaOp& op : batch.ops()) {
    switch (op.kind) {
      case DeltaOpKind::kUpdate:
        update_of[op.row] = &op.values;
        break;
      case DeltaOpKind::kDelete:
        deleted[op.row] = true;
        break;
      case DeltaOpKind::kAppend:
        ++appended;
        break;
    }
  }

  DeltaRowPlan local_plan;
  DeltaRowPlan* out_plan = plan != nullptr ? plan : &local_plan;
  out_plan->updated_new_rows.clear();
  out_plan->deleted_old_rows.clear();
  out_plan->appended_rows = appended;

  size_t num_deleted = 0;
  for (size_t r = 0; r < n; ++r) {
    if (deleted[r]) {
      out_plan->deleted_old_rows.push_back(static_cast<uint32_t>(r));
      ++num_deleted;
    } else if (update_of[r] != nullptr) {
      // Order-preserving compaction: a surviving row's new index is its old
      // index minus the deletions before it.
      out_plan->updated_new_rows.push_back(static_cast<uint32_t>(r - num_deleted));
    }
  }

  VADASA_METRIC_COUNT("delta.batches_applied", 1);
  VADASA_METRIC_COUNT("delta.rows_touched",
                      out_plan->updated_new_rows.size() + num_deleted + appended);

  // Materialize the post-delta table by structural sharing: surviving rows
  // alias the source table's row storage (one refcount bump each — rows are
  // immutable-unless-detached, see MicrodataTable::set_cell), and only the
  // touched rows allocate. This makes the rebuild O(rows) pointer work plus
  // O(delta) copies, which is what keeps the incremental Session::Apply path
  // several times cheaper than a cold re-warm even on one core.
  MicrodataTable out(table.name(), table.attributes());
  out.rows_.reserve(n - num_deleted + appended);
  for (size_t r = 0; r < n; ++r) {
    if (deleted[r]) continue;
    if (update_of[r] != nullptr) {
      out.rows_.push_back(std::make_shared<std::vector<Value>>(*update_of[r]));
    } else {
      out.rows_.push_back(table.rows_[r]);
    }
  }
  for (const DeltaOp& op : batch.ops()) {
    if (op.kind == DeltaOpKind::kAppend) {
      out.rows_.push_back(std::make_shared<std::vector<Value>>(op.values));
    }
  }
  return out;
}

}  // namespace vadasa::core
