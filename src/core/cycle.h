#ifndef VADASA_CORE_CYCLE_H_
#define VADASA_CORE_CYCLE_H_

#include <functional>
#include <string>
#include <vector>

#include "common/cancel.h"
#include "common/result.h"
#include "core/anonymize.h"
#include "core/heuristics.h"
#include "core/microdata.h"
#include "core/risk.h"

namespace vadasa::core {

/// Optional hook that rewrites the per-row risk vector after the base
/// estimation — the business-knowledge injection point of Algorithm 9 (e.g.
/// cluster risk propagation along company-control links).
using RiskTransform =
    std::function<void(const MicrodataTable& table, std::vector<double>* risks)>;

/// Configuration of the anonymization cycle (Algorithm 2).
struct CycleOptions {
  /// Risk threshold T in [0,1]; a tuple is anonymized while its risk > T.
  double threshold = 0.5;
  RiskContext risk;
  TupleOrder tuple_order = TupleOrder::kLessSignificantFirst;
  QiChoice qi_choice = QiChoice::kMostRiskyFirst;
  /// Outer-iteration guard.
  size_t max_iterations = 10000;
  /// Paper-literal mode: re-evaluate risk after every single anonymization
  /// step. Slower; the default batches steps within an iteration and skips
  /// tuples whose group was already touched, which yields the same greedy
  /// minimality up to ties.
  bool single_step = false;
  /// Record a human-readable justification for every step.
  bool log_steps = false;
  /// Upper bound on buffered log entries (log_steps mode). Long runs on big
  /// tables would otherwise grow CycleStats.log without bound; once the cap
  /// is hit a single "… log truncated" sentinel entry is appended and
  /// further justifications are dropped (counted in CycleStats.log_dropped).
  size_t max_log_steps = 10000;
  RiskTransform risk_transform;
  /// Cooperative cancellation / deadline token, polled at every iteration
  /// boundary (before each risk evaluation). When it fires, Run unwinds with
  /// Cancelled/DeadlineExceeded and the table is left mid-anonymization —
  /// callers must treat the table as scratch on a non-OK result. Not owned;
  /// nullptr = never cancelled.
  const CancelToken* cancel = nullptr;
};

/// Outcome and accounting of a cycle run.
///
/// The numeric fields are a *view over the run's metrics registry*: the cycle
/// meters every counter and timer into a local obs::MetricsRegistry (also
/// folded into obs::MetricsRegistry::Global() under the "cycle." prefix) and
/// derives this struct from one snapshot at the end of Run — the struct and
/// the exported metrics can never disagree. All timers are steady_clock.
struct CycleStats {
  size_t iterations = 0;
  size_t risk_evaluations = 0;
  size_t anonymization_steps = 0;
  size_t nulls_injected = 0;
  size_t cells_recoded = 0;
  /// Tuples over threshold at the first evaluation.
  size_t initial_risky = 0;
  /// Tuples still risky but with no applicable anonymization left (e.g. all
  /// quasi-identifiers already suppressed under standard null semantics).
  size_t unresolved = 0;
  /// The paper's Fig. 7b loss metric: nulls / (initial_risky × #QI).
  double information_loss = 0.0;
  double risk_eval_seconds = 0.0;
  double total_seconds = 0.0;
  /// From-scratch group-index constructions during the run. 1 proves the
  /// index was reused incrementally across iterations instead of being
  /// rebuilt per iteration; 0 when the measure never groups (e.g. SUDA-only
  /// runs build it lazily for the QI-choice heuristic).
  size_t group_rebuilds = 0;
  /// Incremental UpdateRows batches absorbed by the index.
  size_t group_updates = 0;
  /// Justifications dropped by the CycleOptions.max_log_steps cap.
  size_t log_dropped = 0;
  /// Step-by-step explanations (log_steps only). Capped at
  /// CycleOptions.max_log_steps entries plus one truncation sentinel.
  std::vector<std::string> log;
};

/// The sentinel appended to CycleStats.log when max_log_steps is exceeded.
inline constexpr const char* kLogTruncatedSentinel = "… log truncated";

/// The anonymization cycle: iterative risk evaluation + minimal anonymization
/// until every tuple's statistical disclosure risk is within the threshold
/// (or provably cannot be reduced further).
class AnonymizationCycle {
 public:
  AnonymizationCycle(const RiskMeasure* risk, Anonymizer* anonymizer,
                     CycleOptions options)
      : risk_(risk), anonymizer_(anonymizer), options_(std::move(options)) {}

  /// Runs in place on `table`.
  Result<CycleStats> Run(MicrodataTable* table);

 private:
  const RiskMeasure* risk_;
  Anonymizer* anonymizer_;
  CycleOptions options_;
};

}  // namespace vadasa::core

#endif  // VADASA_CORE_CYCLE_H_
