#ifndef VADASA_CORE_ATTACK_H_
#define VADASA_CORE_ATTACK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/oracle.h"

namespace vadasa::core {

/// Outcome of a re-identification attack against a released microdata DB.
struct AttackResult {
  size_t attempted = 0;
  /// Rows whose best-fit oracle candidate was the true respondent.
  size_t reidentified = 0;
  /// Rows whose blocking cohort contained a single candidate (certain hit).
  size_t exact_blocks = 0;
  /// Mean size of the blocking cohort (∞-proxy: population size when a row's
  /// pattern is all-null).
  double avg_block_size = 0.0;
  double success_rate = 0.0;

  std::string ToString() const;
};

/// The attack strategy of Figure 2, built from the record-linkage toolbox:
///   1. blocking — filter the oracle rows matching the tuple's (possibly
///      suppressed) quasi-identifiers;
///   2. matching — pick the candidate that best fits the remaining
///      attributes (here: deterministically the first, i.e. an attacker with
///      no side information — a lower bound on attack power);
///   3. score — a hit when the chosen candidate is the true respondent.
///
/// Anonymization aims to make step 1 return large cohorts, making the attack
/// both expensive and uncertain.
AttackResult RunLinkageAttack(const MicrodataTable& released,
                              const std::vector<size_t>& released_qi_columns,
                              const IdentityOracle& oracle,
                              const std::vector<size_t>& truth, uint64_t seed);

}  // namespace vadasa::core

#endif  // VADASA_CORE_ATTACK_H_
