#ifndef VADASA_CORE_DIVERSITY_H_
#define VADASA_CORE_DIVERSITY_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "core/risk.h"

namespace vadasa::core {

/// Attribute-disclosure risk measures from the wider SDC toolbox (ARX ships
/// both): beyond re-identification, an attacker who narrows a respondent to
/// a QI group learns the *sensitive* attribute if the group is homogeneous.
/// The paper's plug-in architecture (polymorphic #risk) is exactly where
/// such measures slot in; these two are the standard representatives.

/// Per-row sensitive-attribute statistics over the row's (maybe-match) QI
/// group.
struct SensitiveStats {
  /// Distinct sensitive values among the rows matching this row's QIs.
  std::vector<size_t> distinct_values;
  /// Total variation distance between the group's sensitive-value
  /// distribution and the whole table's.
  std::vector<double> distribution_distance;
};

/// Computes both statistics in one pass. `sensitive_column` must not be a
/// quasi-identifier.
Result<SensitiveStats> ComputeSensitiveStats(const MicrodataTable& table,
                                             const std::vector<size_t>& qi_columns,
                                             size_t sensitive_column,
                                             NullSemantics semantics);

/// Distinct l-diversity: a tuple is risky (risk 1) when its QI group carries
/// fewer than `l` distinct values of the sensitive attribute — the attacker
/// learns the attribute (near-)certainly even without re-identification.
class LDiversityRisk : public RiskMeasure {
 public:
  /// `sensitive_attribute` names the column to protect; `l` >= 2.
  LDiversityRisk(std::string sensitive_attribute, int l)
      : sensitive_attribute_(std::move(sensitive_attribute)), l_(l) {}

  std::string name() const override { return "l-diversity"; }
  Result<std::vector<double>> ComputeRisks(const MicrodataTable& table,
                                           const RiskContext& context,
                                           RiskEvalCache* cache = nullptr) const override;
  std::string Explain(const MicrodataTable& table, const RiskContext& context,
                      size_t row, double risk,
                      RiskEvalCache* cache = nullptr) const override;

 private:
  std::string sensitive_attribute_;
  int l_;
};

/// t-closeness: a tuple is risky when the distribution of the sensitive
/// attribute within its QI group strays more than `t` (total variation) from
/// the table-wide distribution — the group leaks a skewed posterior.
class TClosenessRisk : public RiskMeasure {
 public:
  TClosenessRisk(std::string sensitive_attribute, double t)
      : sensitive_attribute_(std::move(sensitive_attribute)), t_(t) {}

  std::string name() const override { return "t-closeness"; }
  Result<std::vector<double>> ComputeRisks(const MicrodataTable& table,
                                           const RiskContext& context,
                                           RiskEvalCache* cache = nullptr) const override;

 private:
  std::string sensitive_attribute_;
  double t_;
};

}  // namespace vadasa::core

#endif  // VADASA_CORE_DIVERSITY_H_
