#include "core/metadata.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace vadasa::core {

void MetadataDictionary::RegisterMicrodb(const std::string& name) {
  if (std::find(microdbs_.begin(), microdbs_.end(), name) == microdbs_.end()) {
    microdbs_.push_back(name);
  }
}

void MetadataDictionary::RegisterAttribute(AttributeEntry entry) {
  RegisterMicrodb(entry.microdb);
  for (const AttributeEntry& e : attributes_) {
    if (e.microdb == entry.microdb && e.attribute == entry.attribute) return;
  }
  attributes_.push_back(std::move(entry));
}

void MetadataDictionary::SetCategory(CategoryEntry entry) {
  for (CategoryEntry& e : categories_) {
    if (e.microdb == entry.microdb && e.attribute == entry.attribute) {
      e.category = entry.category;
      return;
    }
  }
  categories_.push_back(std::move(entry));
}

std::vector<AttributeEntry> MetadataDictionary::AttributesOf(
    const std::string& microdb) const {
  std::vector<AttributeEntry> out;
  for (const AttributeEntry& e : attributes_) {
    if (e.microdb == microdb) out.push_back(e);
  }
  return out;
}

Result<AttributeCategory> MetadataDictionary::CategoryOf(
    const std::string& microdb, const std::string& attribute) const {
  for (const CategoryEntry& e : categories_) {
    if (e.microdb == microdb && e.attribute == attribute) return e.category;
  }
  return Status::NotFound("no category for " + microdb + "." + attribute);
}

void MetadataDictionary::IngestTable(const MicrodataTable& table,
                                     bool include_categories) {
  RegisterMicrodb(table.name());
  for (const Attribute& a : table.attributes()) {
    RegisterAttribute({table.name(), a.name, a.description});
    if (include_categories) {
      SetCategory({table.name(), a.name, a.category});
    }
  }
}

Status MetadataDictionary::ApplyCategories(MicrodataTable* table) const {
  for (const CategoryEntry& e : categories_) {
    if (e.microdb != table->name()) continue;
    VADASA_RETURN_NOT_OK(table->SetCategory(e.attribute, e.category));
  }
  return table->Validate();
}

std::string MetadataDictionary::ToText(const std::string& microdb) const {
  size_t db_width = 14;
  size_t attr_width = 20;
  for (const AttributeEntry& e : attributes_) {
    if (e.microdb != microdb) continue;
    db_width = std::max(db_width, e.microdb.size() + 2);
    attr_width = std::max(attr_width, e.attribute.size() + 2);
  }
  const int dw = static_cast<int>(db_width);
  const int aw = static_cast<int>(attr_width);
  std::ostringstream os;
  os << "Attribute\n";
  os << "  " << std::left << std::setw(dw) << "Microdata DB" << std::setw(aw)
     << "Attribute Name" << "Description\n";
  for (const AttributeEntry& e : attributes_) {
    if (e.microdb != microdb) continue;
    os << "  " << std::left << std::setw(dw) << e.microdb << std::setw(aw)
       << e.attribute << e.description << "\n";
  }
  os << "\nCategory\n";
  os << "  " << std::left << std::setw(dw) << "Microdata DB" << std::setw(aw)
     << "Attribute Name" << "Category\n";
  for (const CategoryEntry& e : categories_) {
    if (e.microdb != microdb) continue;
    os << "  " << std::left << std::setw(dw) << e.microdb << std::setw(aw)
       << e.attribute << AttributeCategoryToString(e.category) << "\n";
  }
  return os.str();
}

}  // namespace vadasa::core
