#include "core/rdc.h"

#include "core/anonymize.h"
#include "core/suda.h"

namespace vadasa::core {

ResearchDataCenter::ResearchDataCenter(RdcPolicy policy)
    : policy_(std::move(policy)),
      categorizer_(AttributeCategorizer::WithDefaultExperience()) {}

void ResearchDataCenter::AddExperience(const std::string& attribute,
                                       AttributeCategory category) {
  categorizer_.AddExperience(attribute, category);
}

Status ResearchDataCenter::Ingest(MicrodataTable table) {
  if (tables_.count(table.name()) > 0) {
    return Status::AlreadyExists("microdata DB " + table.name() +
                                 " is already registered");
  }
  VADASA_RETURN_NOT_OK(categorizer_.CategorizeTable(&table, &dictionary_).status());
  order_.push_back(table.name());
  tables_.emplace(table.name(), std::move(table));
  return Status::OK();
}

std::vector<std::string> ResearchDataCenter::Catalog() const { return order_; }

Result<const MicrodataTable*> ResearchDataCenter::Lookup(
    const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("no microdata DB named " + name);
  return &it->second;
}

Result<ReleaseAudit> ResearchDataCenter::Process(const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("no microdata DB named " + name);
  VADASA_ASSIGN_OR_RETURN(auto measure, MakeRiskMeasure(policy_.risk_measure));
  LocalSuppression anonymizer;
  CycleOptions options;
  options.threshold = policy_.threshold;
  options.risk.k = policy_.k;
  options.risk.semantics = policy_.semantics;
  options.tuple_order = policy_.tuple_order;
  options.qi_choice = policy_.qi_choice;
  MicrodataTable release = it->second;
  VADASA_ASSIGN_OR_RETURN(ReleaseAudit audit,
                          RunAuditedRelease(&release, *measure, &anonymizer, options));
  releases_.insert_or_assign(name, std::move(release));
  return audit;
}

Result<std::vector<ReleaseAudit>> ResearchDataCenter::ProcessAll() {
  std::vector<ReleaseAudit> audits;
  for (const std::string& name : order_) {
    VADASA_ASSIGN_OR_RETURN(ReleaseAudit audit, Process(name));
    audits.push_back(std::move(audit));
  }
  return audits;
}

Result<const MicrodataTable*> ResearchDataCenter::Release(
    const std::string& name) const {
  auto it = releases_.find(name);
  if (it == releases_.end()) {
    return Status::FailedPrecondition("microdata DB " + name +
                                      " has not been processed yet");
  }
  return &it->second;
}

}  // namespace vadasa::core
