#ifndef VADASA_CORE_REPORT_H_
#define VADASA_CORE_REPORT_H_

#include <string>

#include "common/result.h"
#include "core/cycle.h"
#include "core/global_risk.h"
#include "core/utility.h"

namespace vadasa::core {

/// A release audit: the accountability artifact a financial authority files
/// alongside an anonymized dataset (the paper's explainability desideratum
/// (vi) in document form). Bundles the file-level risk before and after,
/// the cycle's accounting and explained steps, and the utility damage.
struct ReleaseAudit {
  std::string microdb;
  size_t tuples = 0;
  size_t quasi_identifiers = 0;
  std::string risk_measure;
  double threshold = 0.0;
  GlobalRiskReport risk_before;
  GlobalRiskReport risk_after;
  CycleStats cycle;
  UtilityReport utility;

  /// Renders the full report as readable text.
  std::string ToText() const;
};

/// Runs the complete audited release: evaluates global risk, runs the cycle
/// (with step logging forced on), re-evaluates, and measures utility.
/// `table` is anonymized in place.
Result<ReleaseAudit> RunAuditedRelease(MicrodataTable* table,
                                       const RiskMeasure& measure,
                                       Anonymizer* anonymizer, CycleOptions options);

}  // namespace vadasa::core

#endif  // VADASA_CORE_REPORT_H_
