#ifndef VADASA_CORE_SUDA_H_
#define VADASA_CORE_SUDA_H_

#include <cstdint>
#include <vector>

#include "core/risk.h"

namespace vadasa::core {

/// One minimal sample unique of a row: the set of quasi-identifier columns
/// (as indices into the AnonSet) whose values jointly identify the row and
/// such that no proper subset does.
struct MinimalSampleUnique {
  uint32_t column_mask = 0;  ///< Bit i = i-th resolved QI column.
  int size = 0;
};

/// Full per-row output of the MSU search, for explanation and tests.
struct SudaDetails {
  /// Per row: its MSUs (empty if the row is not sample-unique at all).
  std::vector<std::vector<MinimalSampleUnique>> msus;
  /// Number of column combinations whose frequencies were actually counted.
  size_t combos_evaluated = 0;
  /// Number of combinations skipped by the minimality pruning.
  size_t combos_pruned = 0;
};

/// Options of the SUDA estimator.
struct SudaOptions {
  /// Largest combination size searched; 0 means "use context.k" (risk only
  /// depends on MSUs smaller than k, and every subset of such a combination
  /// is also smaller than k, so size k-1 suffices — we search up to k to
  /// also report boundary MSUs).
  int max_search_size = 0;
  /// Ablation switch: evaluate every combination even when pruning proves it
  /// cannot yield a new MSU (Fig. 7f "blowup" baseline).
  bool exhaustive = false;
};

/// The Special Unique Detection Algorithm (Algorithm 6): a tuple is risky
/// (risk 1) when it has a minimal sample unique of size below the threshold
/// k, i.e. very few attributes suffice to single it out.
///
/// The search walks the column-combination lattice bottom-up. Only rows that
/// are unique on the full AnonSet can have any sample unique, and a
/// combination is skipped when every candidate row already owns a unique
/// proper subset of it — the greedy preemption the paper credits for the
/// absence of combinatorial blowup (Section 5.2). Within one combination
/// size, evaluated combinations are independent (a same-size combination is
/// never a proper subset of another), so each lattice level fans out over the
/// global thread pool and merges its sample uniques back in combination
/// order — the details are identical for any thread count.
class SudaRisk : public RiskMeasure {
 public:
  explicit SudaRisk(SudaOptions options = {}) : options_(options) {}

  std::string name() const override { return "suda"; }
  Result<std::vector<double>> ComputeRisks(const MicrodataTable& table,
                                           const RiskContext& context,
                                           RiskEvalCache* cache = nullptr) const override;
  std::string Explain(const MicrodataTable& table, const RiskContext& context,
                      size_t row, double risk,
                      RiskEvalCache* cache = nullptr) const override;

  /// Runs the MSU search and returns per-row details. With a cache, the
  /// details of the current table version are memoized, so ComputeRisks +
  /// per-row Explain within one cycle iteration share a single search.
  Result<SudaDetails> ComputeDetails(const MicrodataTable& table,
                                     const RiskContext& context,
                                     RiskEvalCache* cache = nullptr) const;

  /// Continuous SUDA scores (Elliot/Manning-style): each MSU of size s over
  /// M searched attributes contributes 2^(M-s) — smaller sample uniques are
  /// exponentially more dangerous. Returned per row, un-normalized (0 for
  /// rows without sample uniques). Use NormalizeSudaScores for a [0,1]
  /// DIS-style relative score.
  Result<std::vector<double>> ComputeScores(const MicrodataTable& table,
                                            const RiskContext& context,
                                            RiskEvalCache* cache = nullptr) const;

 private:
  SudaOptions options_;
};

/// Rescales raw SUDA scores into [0,1] by the table maximum (all-zero stays
/// all-zero) — a pragmatic stand-in for the DIS-SUDA intrusion-simulation
/// calibration.
std::vector<double> NormalizeSudaScores(std::vector<double> scores);

}  // namespace vadasa::core

#endif  // VADASA_CORE_SUDA_H_
