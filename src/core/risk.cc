#include "core/risk.h"

#include <algorithm>
#include <cmath>

#include "core/suda.h"

namespace vadasa::core {

std::vector<size_t> RiskContext::ResolveQiColumns(const MicrodataTable& table) const {
  if (!qi_columns.empty()) return qi_columns;
  return table.QuasiIdentifierColumns();
}

std::string RiskMeasure::Explain(const MicrodataTable& table, const RiskContext& context,
                                 size_t row, double risk) const {
  const auto qis = context.ResolveQiColumns(table);
  std::string combo;
  for (const size_t c : qis) {
    if (!combo.empty()) combo += ", ";
    combo += table.attributes()[c].name + "=" + table.cell(row, c).ToString();
  }
  return name() + " risk " + std::to_string(risk) + " for combination {" + combo + "}";
}

Result<std::vector<double>> ReidentificationRisk::ComputeRisks(
    const MicrodataTable& table, const RiskContext& context) const {
  const auto qis = context.ResolveQiColumns(table);
  const GroupStats stats = ComputeGroupStats(table, qis, context.semantics);
  std::vector<double> risks(table.num_rows());
  for (size_t r = 0; r < risks.size(); ++r) {
    const double w = stats.weight_sum[r];
    risks[r] = w <= 1.0 ? 1.0 : std::min(1.0, 1.0 / w);
  }
  return risks;
}

Result<std::vector<double>> KAnonymityRisk::ComputeRisks(
    const MicrodataTable& table, const RiskContext& context) const {
  const auto qis = context.ResolveQiColumns(table);
  const GroupStats stats = ComputeGroupStats(table, qis, context.semantics);
  std::vector<double> risks(table.num_rows());
  for (size_t r = 0; r < risks.size(); ++r) {
    risks[r] = stats.frequency[r] < static_cast<double>(context.k) ? 1.0 : 0.0;
  }
  return risks;
}

std::string KAnonymityRisk::Explain(const MicrodataTable& table,
                                    const RiskContext& context, size_t row,
                                    double risk) const {
  const auto qis = context.ResolveQiColumns(table);
  const GroupStats stats = ComputeGroupStats(table, qis, context.semantics);
  std::string combo;
  for (const size_t c : qis) {
    if (!combo.empty()) combo += ", ";
    combo += table.attributes()[c].name + "=" + table.cell(row, c).ToString();
  }
  const double freq = stats.frequency[row];
  std::string verdict;
  if (risk <= 0.5) {
    verdict = " -> safe";
  } else if (freq < static_cast<double>(context.k)) {
    verdict = " -> below k, risky";
  } else {
    // The base frequency is fine, so the risk was raised externally (e.g.
    // cluster propagation along control relationships, Algorithm 9).
    verdict = " -> risky by propagation (business knowledge)";
  }
  return "combination {" + combo + "} occurs " +
         std::to_string(static_cast<int64_t>(freq)) +
         " time(s); k=" + std::to_string(context.k) + verdict;
}

Result<std::vector<double>> IndividualRisk::ComputeRisks(
    const MicrodataTable& table, const RiskContext& context) const {
  const auto qis = context.ResolveQiColumns(table);
  const GroupStats stats = ComputeGroupStats(table, qis, context.semantics);
  std::vector<double> risks(table.num_rows());
  if (context.posterior_draws <= 0) {
    for (size_t r = 0; r < risks.size(); ++r) {
      risks[r] = context.benedetti_franconi
                     ? stats::BenedettiFranconiRisk(stats.frequency[r],
                                                    stats.weight_sum[r])
                     : stats::NegBinomialPosteriorRiskClosedForm(
                           stats.frequency[r], stats.weight_sum[r]);
    }
    return risks;
  }
  Rng rng(context.seed);
  for (size_t r = 0; r < risks.size(); ++r) {
    risks[r] = stats::NegBinomialPosteriorRiskSampled(
        stats.frequency[r], stats.weight_sum[r], context.posterior_draws, &rng);
  }
  return risks;
}

Result<std::unique_ptr<RiskMeasure>> MakeRiskMeasure(const std::string& name) {
  if (name == "reidentification" || name == "re-identification") {
    return std::unique_ptr<RiskMeasure>(new ReidentificationRisk());
  }
  if (name == "k-anonymity" || name == "kanonymity") {
    return std::unique_ptr<RiskMeasure>(new KAnonymityRisk());
  }
  if (name == "individual" || name == "individual-risk") {
    return std::unique_ptr<RiskMeasure>(new IndividualRisk());
  }
  if (name == "suda") {
    return std::unique_ptr<RiskMeasure>(new SudaRisk());
  }
  return Status::NotFound("unknown risk measure: " + name);
}

}  // namespace vadasa::core
