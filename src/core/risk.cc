#include "core/risk.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <unordered_map>
#include <utility>

#include "common/thread_pool.h"
#include "core/suda.h"
#include "obs/trace.h"

namespace vadasa::core {

namespace {

/// Distinct (frequency, weight_sum) pairs per sampling shard of the
/// Monte-Carlo individual-risk estimator. Fixed (independent of the pool
/// size) so each shard's Rng stream — and therefore the risk vector — is
/// identical for any thread count.
constexpr size_t kSampleShardPairs = 64;

/// splitmix64 of (seed, shard): decorrelates the per-shard Rng streams.
uint64_t ShardSeed(uint64_t seed, uint64_t shard) {
  uint64_t z = seed + 0x9E3779B97F4A7C15ULL * (shard + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Group stats via the cache (incremental index, shared across the iteration),
/// via the context's shared warm stats (cache-less serving calls on an
/// immutable table), or a one-shot computation into `scratch`. The cache takes
/// precedence: it tracks mutations, while warm stats are only valid for the
/// exact table contents they were computed from (guarded by a row-count check
/// — the caller owns the stronger same-contents contract, see risk.h).
const GroupStats& CachedStats(const MicrodataTable& table,
                              const std::vector<size_t>& qis, NullSemantics semantics,
                              const RiskContext& context, RiskEvalCache* cache,
                              GroupStats* scratch) {
  if (cache != nullptr) return cache->Stats(table, qis, semantics);
  if (context.warm_stats != nullptr &&
      context.warm_stats->frequency.size() == table.num_rows()) {
    VADASA_METRIC_COUNT("risk.warm_stats_hits", 1);
    return *context.warm_stats;
  }
  *scratch = ComputeGroupStats(table, qis, semantics, context.warm_view);
  return *scratch;
}

}  // namespace

std::vector<size_t> RiskContext::ResolveQiColumns(const MicrodataTable& table) const {
  if (!qi_columns.empty()) return qi_columns;
  return table.QuasiIdentifierColumns();
}

std::string RiskMeasure::Explain(const MicrodataTable& table, const RiskContext& context,
                                 size_t row, double risk, RiskEvalCache* cache) const {
  (void)cache;
  const auto qis = context.ResolveQiColumns(table);
  std::string combo;
  for (const size_t c : qis) {
    if (!combo.empty()) combo += ", ";
    combo += table.attributes()[c].name + "=" + table.cell(row, c).ToString();
  }
  return name() + " risk " + std::to_string(risk) + " for combination {" + combo + "}";
}

Result<std::vector<double>> ReidentificationRisk::ComputeRisks(
    const MicrodataTable& table, const RiskContext& context,
    RiskEvalCache* cache) const {
  obs::Span span("risk.compute.reidentification");
  const auto qis = context.ResolveQiColumns(table);
  VADASA_RETURN_NOT_OK(ValidateQiWidth(qis, context.semantics));
  GroupStats scratch;
  const GroupStats& stats = CachedStats(table, qis, context.semantics, context, cache, &scratch);
  std::vector<double> risks(table.num_rows());
  for (size_t r = 0; r < risks.size(); ++r) {
    const double w = stats.weight_sum[r];
    risks[r] = w <= 1.0 ? 1.0 : std::min(1.0, 1.0 / w);
  }
  return risks;
}

Result<std::vector<double>> KAnonymityRisk::ComputeRisks(const MicrodataTable& table,
                                                         const RiskContext& context,
                                                         RiskEvalCache* cache) const {
  obs::Span span("risk.compute.k_anonymity");
  const auto qis = context.ResolveQiColumns(table);
  VADASA_RETURN_NOT_OK(ValidateQiWidth(qis, context.semantics));
  GroupStats scratch;
  const GroupStats& stats = CachedStats(table, qis, context.semantics, context, cache, &scratch);
  std::vector<double> risks(table.num_rows());
  for (size_t r = 0; r < risks.size(); ++r) {
    risks[r] = stats.frequency[r] < static_cast<double>(context.k) ? 1.0 : 0.0;
  }
  return risks;
}

std::string KAnonymityRisk::Explain(const MicrodataTable& table,
                                    const RiskContext& context, size_t row, double risk,
                                    RiskEvalCache* cache) const {
  const auto qis = context.ResolveQiColumns(table);
  if (const Status width = ValidateQiWidth(qis, context.semantics); !width.ok()) {
    return "k-anonymity: " + width.ToString();
  }
  // With a cache this is one incremental-index lookup; without one it falls
  // back to a full O(n) group-stats pass per explained row.
  GroupStats scratch;
  const GroupStats& stats = CachedStats(table, qis, context.semantics, context, cache, &scratch);
  std::string combo;
  for (const size_t c : qis) {
    if (!combo.empty()) combo += ", ";
    combo += table.attributes()[c].name + "=" + table.cell(row, c).ToString();
  }
  const double freq = stats.frequency[row];
  std::string verdict;
  if (risk <= 0.5) {
    verdict = " -> safe";
  } else if (freq < static_cast<double>(context.k)) {
    verdict = " -> below k, risky";
  } else {
    // The base frequency is fine, so the risk was raised externally (e.g.
    // cluster propagation along control relationships, Algorithm 9).
    verdict = " -> risky by propagation (business knowledge)";
  }
  return "combination {" + combo + "} occurs " +
         std::to_string(static_cast<int64_t>(freq)) +
         " time(s); k=" + std::to_string(context.k) + verdict;
}

Result<std::vector<double>> IndividualRisk::ComputeRisks(const MicrodataTable& table,
                                                         const RiskContext& context,
                                                         RiskEvalCache* cache) const {
  obs::Span span("risk.compute.individual");
  const auto qis = context.ResolveQiColumns(table);
  VADASA_RETURN_NOT_OK(ValidateQiWidth(qis, context.semantics));
  GroupStats scratch;
  const GroupStats& stats = CachedStats(table, qis, context.semantics, context, cache, &scratch);
  std::vector<double> risks(table.num_rows());
  if (context.posterior_draws <= 0) {
    for (size_t r = 0; r < risks.size(); ++r) {
      risks[r] = context.benedetti_franconi
                     ? stats::BenedettiFranconiRisk(stats.frequency[r],
                                                    stats.weight_sum[r])
                     : stats::NegBinomialPosteriorRiskClosedForm(
                           stats.frequency[r], stats.weight_sum[r]);
    }
    return risks;
  }
  // Monte-Carlo mode. Rows with identical (frequency, weight_sum) describe
  // the same equivalence-class posterior, so each distinct pair is sampled
  // once and the estimate broadcast to its rows — exactly as the closed form
  // maps equal group stats to equal risk. At scale that collapses millions
  // of row draws into thousands of pair draws per evaluation. Pair ids are
  // assigned in first-row order and sampled in fixed shards with one Rng
  // stream each, so the vector is deterministic in (table, seed) and
  // bit-identical for any thread count (and either data plane).
  const int draws = context.posterior_draws;
  const uint64_t seed = context.seed;
  struct PairHash {
    size_t operator()(const std::pair<uint64_t, uint64_t>& p) const {
      uint64_t z = p.first ^ (p.second * 0x9E3779B97F4A7C15ULL);
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      return static_cast<size_t>(z ^ (z >> 27));
    }
  };
  auto bits = [](double d) {
    uint64_t u;
    std::memcpy(&u, &d, sizeof(u));
    return u;
  };
  std::unordered_map<std::pair<uint64_t, uint64_t>, uint32_t, PairHash> pair_ids;
  pair_ids.reserve(risks.size() / 4);
  std::vector<std::pair<double, double>> distinct;
  std::vector<uint32_t> row_pair(risks.size());
  for (size_t r = 0; r < risks.size(); ++r) {
    const auto [it, inserted] = pair_ids.emplace(
        std::make_pair(bits(stats.frequency[r]), bits(stats.weight_sum[r])),
        static_cast<uint32_t>(distinct.size()));
    if (inserted) distinct.emplace_back(stats.frequency[r], stats.weight_sum[r]);
    row_pair[r] = it->second;
  }
  std::vector<double> pair_risk(distinct.size());
  ThreadPool::Global().ParallelFor(
      0, distinct.size(), kSampleShardPairs,
      [&](size_t lo, size_t hi, size_t shard) {
        Rng rng(ShardSeed(seed, shard));
        for (size_t i = lo; i < hi; ++i) {
          pair_risk[i] = stats::NegBinomialPosteriorRiskSampled(
              distinct[i].first, distinct[i].second, draws, &rng);
        }
      });
  for (size_t r = 0; r < risks.size(); ++r) risks[r] = pair_risk[row_pair[r]];
  return risks;
}

Result<std::shared_ptr<const GroupStats>> ComputeWarmGroupStats(
    const MicrodataTable& table, const RiskContext& context) {
  obs::Span span("risk.warm_group_stats");
  const auto qis = context.ResolveQiColumns(table);
  VADASA_RETURN_NOT_OK(ValidateQiWidth(qis, context.semantics));
  auto stats = std::make_shared<GroupStats>(
      ComputeGroupStats(table, qis, context.semantics, context.warm_view));
  return std::shared_ptr<const GroupStats>(std::move(stats));
}

Result<std::unique_ptr<RiskMeasure>> MakeRiskMeasure(const std::string& name) {
  if (name == "reidentification" || name == "re-identification") {
    return std::unique_ptr<RiskMeasure>(new ReidentificationRisk());
  }
  if (name == "k-anonymity" || name == "kanonymity") {
    return std::unique_ptr<RiskMeasure>(new KAnonymityRisk());
  }
  if (name == "individual" || name == "individual-risk") {
    return std::unique_ptr<RiskMeasure>(new IndividualRisk());
  }
  if (name == "suda") {
    return std::unique_ptr<RiskMeasure>(new SudaRisk());
  }
  return Status::NotFound("unknown risk measure: " + name);
}

}  // namespace vadasa::core
