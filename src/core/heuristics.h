#ifndef VADASA_CORE_HEURISTICS_H_
#define VADASA_CORE_HEURISTICS_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/anonymize.h"
#include "core/group_index.h"
#include "core/microdata.h"

namespace vadasa::core {

/// Which risky tuples to anonymize first — the Vadalog "routing strategies"
/// of Section 4.4 surfaced as cycle knobs.
enum class TupleOrder {
  /// "Less significant first": ascending sampling weight, so the tuples
  /// carrying the least data utility are touched first.
  kLessSignificantFirst,
  /// Descending risk.
  kMostRiskyFirst,
  /// Table order (no strategy — ablation baseline).
  kFifo,
};

/// Which quasi-identifier of a tuple to suppress/recode first.
enum class QiChoice {
  /// "Most risky first": score every applicable column by the frequency the
  /// tuple would reach if that column were wiped; pick the best.
  kMostRiskyFirst,
  /// First applicable column in schema order (ablation baseline).
  kFirstApplicable,
  /// Column whose current value is rarest in its column (cheap proxy).
  kRarestValue,
};

Result<TupleOrder> TupleOrderFromString(const std::string& s);
Result<QiChoice> QiChoiceFromString(const std::string& s);

/// Returns the indices of `risky_rows` ordered by the strategy.
std::vector<size_t> OrderRiskyTuples(const MicrodataTable& table,
                                     const std::vector<size_t>& risky_rows,
                                     const std::vector<double>& risks, TupleOrder order);

/// Picks the quasi-identifier column of `row` to anonymize, among columns the
/// anonymizer can act on. `universe` provides what-if frequencies for
/// kMostRiskyFirst — either a PatternUniverse snapshot or the cycle's
/// incremental GroupIndex. Fails with NotFound when no column is applicable
/// (e.g. everything already suppressed).
Result<size_t> ChooseQiColumn(const MicrodataTable& table,
                              const std::vector<size_t>& qi_columns, size_t row,
                              QiChoice choice, const Anonymizer& anonymizer,
                              const PatternOracle& universe);

}  // namespace vadasa::core

#endif  // VADASA_CORE_HEURISTICS_H_
