#ifndef VADASA_CORE_METADATA_H_
#define VADASA_CORE_METADATA_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "core/microdata.h"

namespace vadasa::core {

/// One Att(microDB, name, description) entry of the metadata dictionary.
struct AttributeEntry {
  std::string microdb;
  std::string attribute;
  std::string description;
};

/// One Category(microDB, att, cat) entry (derived extensional component).
struct CategoryEntry {
  std::string microdb;
  std::string attribute;
  AttributeCategory category;
};

/// The metadata dictionary of Section 4.1: the meta-level view of registered
/// microdata DBs that makes the whole framework schema-independent. MicroDB
/// and Att facts are extensional; Category facts are the product of the
/// categorization reasoning.
class MetadataDictionary {
 public:
  void RegisterMicrodb(const std::string& name);
  void RegisterAttribute(AttributeEntry entry);
  void SetCategory(CategoryEntry entry);

  const std::vector<std::string>& microdbs() const { return microdbs_; }
  const std::vector<AttributeEntry>& attributes() const { return attributes_; }
  const std::vector<CategoryEntry>& categories() const { return categories_; }

  /// Attributes registered for one microdata DB.
  std::vector<AttributeEntry> AttributesOf(const std::string& microdb) const;

  /// Category of (microdb, attribute); NotFound if not categorized yet.
  Result<AttributeCategory> CategoryOf(const std::string& microdb,
                                       const std::string& attribute) const;

  /// Registers a table: MicroDB + Att facts (descriptions from the schema)
  /// and, when `include_categories`, its Category facts too.
  void IngestTable(const MicrodataTable& table, bool include_categories);

  /// Writes the categories recorded for `table.name()` into the table schema.
  Status ApplyCategories(MicrodataTable* table) const;

  /// Renders the dictionary in the two-table layout of Figure 4.
  std::string ToText(const std::string& microdb) const;

 private:
  std::vector<std::string> microdbs_;
  std::vector<AttributeEntry> attributes_;
  std::vector<CategoryEntry> categories_;
};

}  // namespace vadasa::core

#endif  // VADASA_CORE_METADATA_H_
