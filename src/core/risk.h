#ifndef VADASA_CORE_RISK_H_
#define VADASA_CORE_RISK_H_

#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "core/group_index.h"
#include "core/microdata.h"

namespace vadasa::core {

/// Shared parameters of risk evaluation (Section 4.2). The general statistical
/// disclosure risk is ρ_q̂ = 1/λ(σ_{q=q̂} M) — each RiskMeasure is one choice
/// of the aggregate weight function λ.
struct RiskContext {
  /// The AnonSet: quasi-identifier columns considered by the evaluation.
  /// Empty means "all QI columns of the table".
  std::vector<size_t> qi_columns;
  /// Null comparison semantics for group formation.
  NullSemantics semantics = NullSemantics::kMaybeMatch;
  /// k of k-anonymity, and the MSU-size threshold of SUDA.
  int k = 2;
  /// Monte-Carlo draws for the sampled individual-risk estimator (0 = use a
  /// closed form).
  int posterior_draws = 0;
  /// With posterior_draws == 0: use the exact Benedetti–Franconi formulas
  /// instead of the simple f/ΣW closed form for the individual risk.
  bool benedetti_franconi = false;
  /// Seed for the sampled estimator.
  uint64_t seed = 7;

  /// Optional pre-computed group statistics for (table, AnonSet, semantics),
  /// shared read-only across evaluations — the serving layer's batch warmup:
  /// concurrent jobs against the same immutable dataset coalesce the group
  /// pass into one computation instead of redoing it per job. Contract: the
  /// stats must have been produced by ComputeGroupStats on the *exact current
  /// contents* of the table with the same resolved QI columns and semantics;
  /// callers must drop the pointer when the table mutates (the cycle is safe:
  /// it evaluates through its RiskEvalCache, which takes precedence). Ignored
  /// by measures that do not group (SUDA) and whenever a cache is supplied.
  std::shared_ptr<const GroupStats> warm_stats;

  /// Optional shared columnar materialization of the table (see columnar.h),
  /// with the same contract as warm_stats: valid for the exact current table
  /// contents only. Consulted under the columnar plane by cache-less
  /// evaluations that must compute group stats from scratch (e.g. a serve job
  /// whose warm_stats cover a different AnonSet, or SUDA's projections), so
  /// concurrent jobs on one immutable dataset intern each column once.
  std::shared_ptr<const ColumnarView> warm_view;

  /// Resolves qi_columns against the table's schema.
  std::vector<size_t> ResolveQiColumns(const MicrodataTable& table) const;
};

/// Computes group statistics for `context` over `table` once, wrapped for
/// sharing via RiskContext::warm_stats. Validates the QI width first.
Result<std::shared_ptr<const GroupStats>> ComputeWarmGroupStats(
    const MicrodataTable& table, const RiskContext& context);

/// A pluggable per-tuple statistical disclosure risk estimator. All risks are
/// in [0,1]; a tuple is "risky" when its risk exceeds the cycle threshold T.
///
/// `cache` (optional) memoizes group statistics and measure-specific state
/// across the calls of one cycle iteration — Explain reuses what ComputeRisks
/// already computed instead of re-deriving full group stats per logged row.
/// The cache's owner must report table mutations via
/// RiskEvalCache::NotifyRowsChanged. Passing nullptr always recomputes.
class RiskMeasure {
 public:
  virtual ~RiskMeasure() = default;

  virtual std::string name() const = 0;

  /// Computes the risk of every row of `table`.
  virtual Result<std::vector<double>> ComputeRisks(const MicrodataTable& table,
                                                   const RiskContext& context,
                                                   RiskEvalCache* cache = nullptr) const = 0;

  /// One-sentence, human-readable justification for a row's risk — the
  /// explainability hook used by the cycle log.
  virtual std::string Explain(const MicrodataTable& table, const RiskContext& context,
                              size_t row, double risk,
                              RiskEvalCache* cache = nullptr) const;
};

/// Re-identification-based risk (Algorithm 3): ρ = 1 / Σ W_t over the rows
/// sharing the tuple's QI combination. The weight sum estimates the
/// population size of the combination, i.e. |σ_t(M) ⋈ O|.
class ReidentificationRisk : public RiskMeasure {
 public:
  std::string name() const override { return "re-identification"; }
  Result<std::vector<double>> ComputeRisks(const MicrodataTable& table,
                                           const RiskContext& context,
                                           RiskEvalCache* cache = nullptr) const override;
};

/// k-anonymity (Algorithm 4): risk 1 if the combination occurs fewer than k
/// times in the sample, 0 otherwise.
class KAnonymityRisk : public RiskMeasure {
 public:
  std::string name() const override { return "k-anonymity"; }
  Result<std::vector<double>> ComputeRisks(const MicrodataTable& table,
                                           const RiskContext& context,
                                           RiskEvalCache* cache = nullptr) const override;
  std::string Explain(const MicrodataTable& table, const RiskContext& context,
                      size_t row, double risk,
                      RiskEvalCache* cache = nullptr) const override;
};

/// Individual risk (Algorithm 5, Benedetti–Franconi): ρ = 1/λ with
/// λ = Σ W_t / f_q̂, i.e. ρ = f/ΣW — the posterior mean of 1/F under a
/// negative-binomial model of the population frequency F given the sample
/// frequency f. With `posterior_draws > 0` the estimate is obtained by
/// actually sampling the negative binomial (the paper's "off-the-shelf
/// statistical library" mode of Fig. 7e). Sampling runs on the global thread
/// pool with one deterministic Rng stream per fixed row shard (seeded from
/// context.seed and the shard index), so the risk vector is identical for
/// any thread count.
class IndividualRisk : public RiskMeasure {
 public:
  std::string name() const override { return "individual-risk"; }
  Result<std::vector<double>> ComputeRisks(const MicrodataTable& table,
                                           const RiskContext& context,
                                           RiskEvalCache* cache = nullptr) const override;
};

/// Factory by name: "reidentification", "k-anonymity", "individual", "suda".
Result<std::unique_ptr<RiskMeasure>> MakeRiskMeasure(const std::string& name);

}  // namespace vadasa::core

#endif  // VADASA_CORE_RISK_H_
