#ifndef VADASA_CORE_COLUMNAR_H_
#define VADASA_CORE_COLUMNAR_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/dictionary.h"
#include "core/microdata.h"

namespace vadasa::core {

/// Which data plane the grouping/risk hot paths run on.
///
/// The columnar plane (default) materializes QI columns into dictionary
/// codes once and groups/hashes/compares packed uint32_t rows; the row plane
/// is the original Value-vector implementation, kept as the differential
/// reference for the `columnar-vs-row-bit-identical` property. Both planes
/// produce bit-identical results by construction (same pattern order, same
/// floating-point accumulation order).
enum class DataPlane {
  kColumnar,
  kRow,
};

/// The active plane: VADASA_DATA_PLANE=row in the environment selects the
/// row plane at startup, otherwise columnar. SetDataPlane overrides at
/// runtime (differential tests); returns the previous plane.
DataPlane ActiveDataPlane();
DataPlane SetDataPlane(DataPlane plane);

/// A columnar (SoA) materialization of a MicrodataTable: one dense
/// uint32_t code array per column, one Dictionary per column as the decode
/// table, plus the row weights as a flat double array. The table stays the
/// source of truth — the view is a derived index the hot paths read instead
/// of chasing Value variants, kept in sync in place via UpdateRows as the
/// anonymizer suppresses or recodes cells.
///
/// Columns are materialized on demand (EnsureColumns): a risk evaluation
/// over 4 QI columns of a 40-column table never pays for the other 36.
/// Thread safety: EnsureColumns/CodeForQuery/Decode are safe to call
/// concurrently (serve-layer jobs share one view per dataset); UpdateRows
/// requires external synchronization against readers, exactly like mutating
/// the underlying table.
class ColumnarView {
 public:
  explicit ColumnarView(const MicrodataTable& table);

  /// Delta-clone: a view over `new_table` (= the parent view's table with a
  /// delta applied, see core/delta.h) that inherits the parent's dictionaries
  /// and code arrays instead of re-interning the whole table. Deleted rows
  /// are compacted out preserving order, `changed_new_rows` (updated +
  /// appended rows, as new-table indices) are re-interned from `new_table`,
  /// and columns the parent never materialized stay unmaterialized. Codes
  /// inherited this way keep their numeric values — harmless, since only
  /// code equality is ever observable. Safe to race with readers of the
  /// parent view; the clone itself is freshly owned.
  ColumnarView(const ColumnarView& parent, const MicrodataTable& new_table,
               const std::vector<uint32_t>& deleted_old_rows,
               const std::vector<uint32_t>& changed_new_rows);

  ColumnarView(const ColumnarView&) = delete;
  ColumnarView& operator=(const ColumnarView&) = delete;

  size_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return columns_.size(); }

  /// Interns every cell of the listed columns that is not yet materialized.
  /// Idempotent; safe to race with other EnsureColumns/readers.
  void EnsureColumns(const MicrodataTable& table, const std::vector<size_t>& cols) const;

  /// The code array of a column. Precondition: the column was ensured (by
  /// this caller or an EnsureColumns it synchronizes with).
  const std::vector<uint32_t>& Codes(size_t col) const { return columns_[col].codes; }

  /// Row weights (the weight cell as double, 1.0 fallback) — one load per
  /// row instead of a per-call schema scan plus variant dispatch.
  const std::vector<double>& Weights() const { return weights_; }

  /// Per-column decode table.
  const Dictionary& dict(size_t col) const { return columns_[col].dict; }
  Value Decode(size_t col, uint32_t code) const { return columns_[col].dict.Decode(code); }

  /// Code of `v` in the column's dictionary, interning it when absent — the
  /// translation used for what-if query patterns, which may probe values
  /// that occur nowhere in the column. Thread-safe.
  uint32_t CodeForQuery(size_t col, const Value& v) const {
    return columns_[col].dict.Intern(v);
  }

  /// Re-reads the given rows of `table` into every materialized column,
  /// interning new cell values and updating codes (and weights) in place.
  void UpdateRows(const MicrodataTable& table, const std::vector<uint32_t>& rows);

  /// Bytes held in materialized code arrays (the columnar.codes_bytes
  /// metric).
  size_t codes_bytes() const;
  /// Total dictionary entries across materialized columns.
  size_t dict_entries() const;

 private:
  struct Column {
    Dictionary dict;
    std::vector<uint32_t> codes;
    bool materialized = false;
  };

  size_t num_rows_ = 0;
  mutable std::mutex materialize_mutex_;
  mutable std::vector<Column> columns_;
  std::vector<double> weights_;
};

}  // namespace vadasa::core

#endif  // VADASA_CORE_COLUMNAR_H_
