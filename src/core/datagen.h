#ifndef VADASA_CORE_DATAGEN_H_
#define VADASA_CORE_DATAGEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/microdata.h"

namespace vadasa::core {

/// Value-distribution shapes of the Fig. 6 corpus.
enum class DistributionKind {
  kRealWorld,       ///< "W": mildly skewed, fitted to the I&G survey shape.
  kUnbalanced,      ///< "U": heavy-tailed, many selective combinations.
  kVeryUnbalanced,  ///< "V": extreme tail, many sample uniques.
};

std::string DistributionKindToString(DistributionKind d);

/// One row of Figure 6.
struct DatasetSpec {
  std::string name;     ///< e.g. "R25A4W"
  int num_qi = 4;       ///< Number of quasi-identifier attributes.
  size_t num_tuples = 0;
  DistributionKind distribution = DistributionKind::kRealWorld;
  bool synthetic = true;  ///< false = "Real-world"/"Realistic" per the paper.
};

/// The twelve datasets of Figure 6 (R6A4U ... R100A4U).
std::vector<DatasetSpec> Figure6Corpus();

/// Finds a Fig. 6 dataset by name.
Result<DatasetSpec> FindDataset(const std::string& name);

/// Generates an Inflation-&-Growth-style microdata DB with `num_qi`
/// quasi-identifiers, an Id direct identifier, a non-identifying growth
/// column and a sampling weight. The weight of a tuple estimates the number
/// of population entities sharing its QI combination (Section 2.1), i.e.
/// population_scale × P(combination), with mild multiplicative noise.
MicrodataTable GenerateInflationGrowth(const std::string& name, size_t num_tuples,
                                       int num_qi, DistributionKind distribution,
                                       uint64_t seed);

/// Generates a dataset from its Fig. 6 spec (seed fixed per dataset name so
/// every bench run sees identical data).
MicrodataTable GenerateDataset(const DatasetSpec& spec);

/// The exact 20-tuple Inflation & Growth fragment of Figure 1, with the
/// paper's attribute categorization.
MicrodataTable Figure1Microdata();

/// The 7-row local-suppression / global-recoding example of Figure 5a.
MicrodataTable Figure5Microdata();

}  // namespace vadasa::core

#endif  // VADASA_CORE_DATAGEN_H_
