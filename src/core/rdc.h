#ifndef VADASA_CORE_RDC_H_
#define VADASA_CORE_RDC_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/categorize.h"
#include "core/metadata.h"
#include "core/report.h"

namespace vadasa::core {

/// Release policy a Research Data Center applies to its microdata DBs.
struct RdcPolicy {
  std::string risk_measure = "k-anonymity";
  int k = 2;
  double threshold = 0.5;
  NullSemantics semantics = NullSemantics::kMaybeMatch;
  TupleOrder tuple_order = TupleOrder::kLessSignificantFirst;
  QiChoice qi_choice = QiChoice::kMostRiskyFirst;
};

/// The operational wrapper of Section 2: a catalog of microdata DBs sharing
/// one metadata dictionary and one experience base, processed by the same
/// policy into audited releases — the "production-ready framework" shell
/// around the anonymization cycle.
class ResearchDataCenter {
 public:
  explicit ResearchDataCenter(RdcPolicy policy = {});

  /// Expert knowledge injection (desideratum (vii)).
  void AddExperience(const std::string& attribute, AttributeCategory category);

  /// Registers an incoming microdata DB: attributes are categorized via the
  /// experience base and recorded in the dictionary. Fails if a DB with the
  /// same name exists or the categorization is inconsistent (e.g. two weight
  /// columns).
  Status Ingest(MicrodataTable table);

  /// Names of the registered microdata DBs, in ingestion order.
  std::vector<std::string> Catalog() const;

  /// The shared metadata dictionary.
  const MetadataDictionary& dictionary() const { return dictionary_; }

  /// Categorization conflicts pending manual review (EGD violations).
  const std::vector<CategorizationConflict>& conflicts() const {
    return categorizer_.conflicts();
  }

  /// Read access to a registered (not yet released) microdata DB.
  Result<const MicrodataTable*> Lookup(const std::string& name) const;

  /// Runs the audited anonymization of one DB under the policy and returns
  /// the audit; the released table is available via Release().
  Result<ReleaseAudit> Process(const std::string& name);

  /// Processes every registered DB; stops at the first failure.
  Result<std::vector<ReleaseAudit>> ProcessAll();

  /// The released (anonymized) version of a processed DB.
  Result<const MicrodataTable*> Release(const std::string& name) const;

 private:
  RdcPolicy policy_;
  AttributeCategorizer categorizer_;
  MetadataDictionary dictionary_;
  std::vector<std::string> order_;
  std::map<std::string, MicrodataTable> tables_;
  std::map<std::string, MicrodataTable> releases_;
};

}  // namespace vadasa::core

#endif  // VADASA_CORE_RDC_H_
