#ifndef VADASA_CORE_BUSINESS_H_
#define VADASA_CORE_BUSINESS_H_

#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/value.h"
#include "core/cycle.h"
#include "core/microdata.h"

namespace vadasa::core {

/// Company-ownership knowledge and the control closure of Section 4.4:
///
///   (1) Own(X,Y,W), W > 0.5 → rel(X,Y).
///   (2) rel(X,Z), Own(Z,Y,W), msum(W,⟨Z⟩) > 0.5 → rel(X,Y).
///
/// i.e. X controls Y when it owns a majority directly, or when the companies
/// it controls (plus itself) jointly own a majority of Y.
class OwnershipGraph {
 public:
  /// Declares that `owner` holds `share` ∈ (0,1] of `owned`.
  void AddOwnership(const std::string& owner, const std::string& owned, double share);

  size_t num_edges() const { return edges_.size(); }
  const std::vector<std::string>& companies() const { return companies_; }

  /// All (controller, controlled) pairs under the closure above.
  std::vector<std::pair<std::string, std::string>> ComputeControl() const;

  /// Cluster id per company: connected components of the control relation
  /// (companies without control links form singletons).
  std::unordered_map<std::string, int> ComputeClusters() const;

  /// True if `a` and `b` are in the same cluster.
  bool SameCluster(const std::string& a, const std::string& b) const;

 private:
  struct Edge {
    int owner;
    int owned;
    double share;
  };
  int InternId(const std::string& name);
  int FindId(const std::string& name) const;

  std::vector<std::string> companies_;
  std::unordered_map<std::string, int> ids_;
  std::vector<Edge> edges_;
};

/// A RiskTransform implementing Algorithm 9: every entity in a control
/// cluster receives the cluster risk 1 − Π_c (1 − ρ_c) — the probability
/// that at least one member is re-identified. `id_column` names the direct
/// identifier whose value is the company id of a row.
RiskTransform MakeClusterRiskTransform(const OwnershipGraph* graph,
                                       std::string id_column);

}  // namespace vadasa::core

#endif  // VADASA_CORE_BUSINESS_H_
