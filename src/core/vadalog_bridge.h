#ifndef VADASA_CORE_VADALOG_BRIDGE_H_
#define VADASA_CORE_VADALOG_BRIDGE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/business.h"
#include "core/microdata.h"
#include "vadalog/engine.h"

namespace vadasa::core {

/// Glue between the native Vada-SA core and the Vadalog engine: the paper's
/// architecture runs the whole statistical disclosure control process as a
/// reasoning task whose extensional component is the microdata + metadata
/// dictionary and whose external atoms (#risk, #anonymize, #rel) are plug-in
/// implementations — which is exactly what this module wires up.
///
/// The native modules (risk.h, cycle.h, ...) remain the fast path; the bridge
/// demonstrates declarative end-to-end runs and powers tests/examples that
/// check both paths agree.
///
/// Knobs of the declarative pipeline.
struct BridgeOptions {
  /// Risk plugged into #risk: "k-anonymity" or "reidentification".
  std::string risk_measure = "k-anonymity";
  int k = 2;
  double threshold = 0.5;
  /// Null comparison used by #risk when grouping (Fig. 7c switch).
  bool maybe_match = true;
};

class VadalogBridge {
 public:
  explicit VadalogBridge(BridgeOptions options = {});

  /// Encodes table rows as facts:
  ///   microdb("M").  att("M","Area").  cat("M","Area","Quasi-identifier").
  ///   tuple("M", I, VSet)   — VSet a pairset of QI (name,value) pairs,
  ///   weight("M", I, W).
  /// The direct identifiers are dropped (as in Algorithm 2's Rule 1);
  /// non-identifying attributes are omitted from VSet.
  void EncodeMicrodata(const MicrodataTable& table, vadalog::Database* db) const;

  /// Registers #risk, #anonymize and #rel on `engine`. #rel answers from
  /// `graph` (may be nullptr: only reflexive pairs).
  void RegisterExternals(vadalog::Engine* engine, const OwnershipGraph* graph) const;

  /// The Vadalog source of the anonymization cycle (Algorithm 2, Rules 2-3).
  std::string CycleProgram() const;

  /// The Vadalog source of the *enhanced* cycle (Algorithm 9): per-tuple
  /// base risk via #risk, cluster risk 1 − mprod(1−R, ⟨I2⟩) over #rel-linked
  /// entities, anonymization of threshold violations. The monotone mprod
  /// keeps, per linked entity, its least-risky (most anonymized) version —
  /// the contributor semantics of §4.3 doing real work.
  std::string EnhancedCycleProgram() const;

  /// Like RunDeclarativeCycle but with the Algorithm-9 program, propagating
  /// risk along the control clusters of `graph`.
  Result<MicrodataTable> RunDeclarativeEnhancedCycle(const MicrodataTable& table,
                                                     const OwnershipGraph& graph,
                                                     vadalog::RunStats* stats) const;

  /// The Vadalog source of Algorithm 1 (attribute categorization with a
  /// recursive experience base and the one-category EGD). Uses the #similar
  /// external registered by RegisterExternals.
  static std::string CategorizationProgram();

  /// Runs the declarative cycle end-to-end on a copy of `table` and decodes
  /// the anonymized result: per tuple, the tupleA version carrying the fewest
  /// labelled nulls (least information removed that passed validation).
  Result<MicrodataTable> RunDeclarativeCycle(const MicrodataTable& table,
                                             const OwnershipGraph* graph,
                                             vadalog::RunStats* stats) const;

 private:
  BridgeOptions options_;
};

}  // namespace vadasa::core

#endif  // VADASA_CORE_VADALOG_BRIDGE_H_
