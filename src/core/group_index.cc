#include "core/group_index.h"

#include <algorithm>
#include <cstdint>
#include <map>
#include <unordered_map>

namespace vadasa::core {

namespace {

struct PatternInfo {
  std::vector<Value> pattern;
  uint32_t null_mask = 0;  // Bit i set iff pattern[i] is a labelled null.
  double count = 0.0;
  double weight_sum = 0.0;
  std::vector<uint32_t> rows;
};

struct VecLess {
  bool operator()(const std::vector<Value>& a, const std::vector<Value>& b) const {
    const size_t n = std::min(a.size(), b.size());
    for (size_t i = 0; i < n; ++i) {
      const int c = a[i].Compare(b[i]);
      if (c != 0) return c < 0;
    }
    return a.size() < b.size();
  }
};

struct VecHash {
  size_t operator()(const std::vector<Value>& v) const { return HashValues(v); }
};
struct VecEq {
  bool operator()(const std::vector<Value>& a, const std::vector<Value>& b) const {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
      if (!a[i].Equals(b[i])) return false;
    }
    return true;
  }
};

/// Projection of a pattern onto the positions NOT in `mask`.
std::vector<Value> ProjectOut(const std::vector<Value>& pattern, uint32_t mask) {
  std::vector<Value> out;
  out.reserve(pattern.size());
  for (size_t i = 0; i < pattern.size(); ++i) {
    if ((mask & (1u << i)) == 0) out.push_back(pattern[i]);
  }
  return out;
}

}  // namespace

GroupStats ComputeGroupStats(const MicrodataTable& table,
                             const std::vector<size_t>& qi_columns,
                             NullSemantics semantics) {
  const size_t n = table.num_rows();
  GroupStats stats;
  stats.frequency.assign(n, 0.0);
  stats.weight_sum.assign(n, 0.0);

  // 1. Collapse rows into distinct patterns (strict equality; null labels
  //    distinguish). Under kStandard this already yields the answer.
  std::unordered_map<std::vector<Value>, size_t, VecHash, VecEq> pattern_ids;
  pattern_ids.reserve(n * 2);
  std::vector<PatternInfo> patterns;
  std::vector<size_t> row_pattern(n);
  for (size_t r = 0; r < n; ++r) {
    std::vector<Value> p;
    p.reserve(qi_columns.size());
    uint32_t mask = 0;
    for (size_t i = 0; i < qi_columns.size(); ++i) {
      const Value& v = table.cell(r, qi_columns[i]);
      if (v.is_null()) mask |= (1u << i);
      p.push_back(v);
    }
    auto it = pattern_ids.find(p);
    size_t id;
    if (it == pattern_ids.end()) {
      id = patterns.size();
      pattern_ids.emplace(p, id);
      PatternInfo info;
      info.pattern = std::move(p);
      info.null_mask = semantics == NullSemantics::kMaybeMatch ? mask : 0;
      patterns.push_back(std::move(info));
    } else {
      id = it->second;
    }
    patterns[id].count += 1.0;
    patterns[id].weight_sum += table.RowWeight(r);
    patterns[id].rows.push_back(static_cast<uint32_t>(r));
    row_pattern[r] = id;
  }

  std::vector<double> pat_freq(patterns.size(), 0.0);
  std::vector<double> pat_wsum(patterns.size(), 0.0);

  if (semantics == NullSemantics::kStandard) {
    for (size_t p = 0; p < patterns.size(); ++p) {
      pat_freq[p] = patterns[p].count;
      pat_wsum[p] = patterns[p].weight_sum;
    }
  } else {
    // 2. Maybe-match: group patterns by null-mask class.
    std::map<uint32_t, std::vector<size_t>> classes;  // mask -> pattern ids
    for (size_t p = 0; p < patterns.size(); ++p) {
      classes[patterns[p].null_mask].push_back(p);
    }
    // For every ordered pair of classes (S1 receives from S2): patterns agree
    // iff their projections outside S1 ∪ S2 are equal.
    for (const auto& [mask1, pats1] : classes) {
      for (const auto& [mask2, pats2] : classes) {
        const uint32_t u = mask1 | mask2;
        // Index class-2 patterns by projection outside u.
        std::map<std::vector<Value>, std::pair<double, double>, VecLess> index;
        for (const size_t p2 : pats2) {
          auto key = ProjectOut(patterns[p2].pattern, u);
          auto& agg = index[std::move(key)];
          agg.first += patterns[p2].count;
          agg.second += patterns[p2].weight_sum;
        }
        for (const size_t p1 : pats1) {
          auto key = ProjectOut(patterns[p1].pattern, u);
          auto it = index.find(key);
          if (it != index.end()) {
            pat_freq[p1] += it->second.first;
            pat_wsum[p1] += it->second.second;
          }
        }
      }
    }
  }

  for (size_t r = 0; r < n; ++r) {
    stats.frequency[r] = pat_freq[row_pattern[r]];
    stats.weight_sum[r] = pat_wsum[row_pattern[r]];
  }
  return stats;
}

EquivalenceClassStats ComputeEquivalenceClasses(
    const MicrodataTable& table, const std::vector<size_t>& qi_columns) {
  EquivalenceClassStats stats;
  stats.histogram.assign(10, 0);
  std::unordered_map<std::vector<Value>, size_t, VecHash, VecEq> classes;
  for (size_t r = 0; r < table.num_rows(); ++r) {
    std::vector<Value> key;
    key.reserve(qi_columns.size());
    for (const size_t c : qi_columns) key.push_back(table.cell(r, c));
    classes[std::move(key)]++;
  }
  stats.num_classes = classes.size();
  if (classes.empty()) return stats;
  stats.min_class_size = table.num_rows();
  for (const auto& [key, size] : classes) {
    (void)key;
    if (size == 1) ++stats.uniques;
    stats.min_class_size = std::min(stats.min_class_size, size);
    stats.max_class_size = std::max(stats.max_class_size, size);
    stats.histogram[std::min<size_t>(size, 10) - 1]++;
  }
  stats.mean_class_size =
      static_cast<double>(table.num_rows()) / static_cast<double>(classes.size());
  return stats;
}

struct PatternUniverse::Impl {
  NullSemantics semantics = NullSemantics::kMaybeMatch;
  size_t width = 0;
  struct Pat {
    std::vector<Value> values;
    uint32_t mask = 0;
    double count = 0.0;
    double weight = 0.0;
  };
  std::vector<Pat> patterns;
  // Null-mask class -> pattern ids.
  std::map<uint32_t, std::vector<size_t>> classes;
  // Exact-match index (kStandard fast path).
  std::unordered_map<std::vector<Value>, size_t, VecHash, VecEq> exact;
  // Memoized projection indexes: (class mask, union mask) -> proj -> mass.
  mutable std::map<std::pair<uint32_t, uint32_t>,
                   std::unordered_map<std::vector<Value>, std::pair<double, double>,
                                      VecHash, VecEq>>
      proj_indexes;
};

PatternUniverse::PatternUniverse(const MicrodataTable& table,
                                 std::vector<size_t> qi_columns,
                                 NullSemantics semantics) {
  impl_ = std::make_shared<Impl>();
  impl_->semantics = semantics;
  impl_->width = qi_columns.size();
  auto& exact = impl_->exact;
  for (size_t r = 0; r < table.num_rows(); ++r) {
    std::vector<Value> p;
    p.reserve(qi_columns.size());
    uint32_t mask = 0;
    for (size_t i = 0; i < qi_columns.size(); ++i) {
      const Value& v = table.cell(r, qi_columns[i]);
      if (v.is_null() && i < 32) mask |= (1u << i);
      p.push_back(v);
    }
    auto it = exact.find(p);
    size_t id;
    if (it == exact.end()) {
      id = impl_->patterns.size();
      exact.emplace(p, id);
      Impl::Pat pat;
      pat.values = std::move(p);
      pat.mask = semantics == NullSemantics::kMaybeMatch ? mask : 0;
      impl_->patterns.push_back(std::move(pat));
      impl_->classes[impl_->patterns.back().mask].push_back(id);
    } else {
      id = it->second;
    }
    impl_->patterns[id].count += 1.0;
    impl_->patterns[id].weight += table.RowWeight(r);
  }
  pattern_count_ = impl_->patterns.size();
}

PatternUniverse::Mass PatternUniverse::Query(const std::vector<Value>& pattern) const {
  Mass mass;
  if (pattern.size() != impl_->width) return mass;
  if (impl_->semantics == NullSemantics::kStandard) {
    auto it = impl_->exact.find(pattern);
    if (it != impl_->exact.end()) {
      mass.count = impl_->patterns[it->second].count;
      mass.weight = impl_->patterns[it->second].weight;
    }
    return mass;
  }
  uint32_t qmask = 0;
  for (size_t i = 0; i < pattern.size() && i < 32; ++i) {
    if (pattern[i].is_null()) qmask |= (1u << i);
  }
  for (const auto& [cmask, ids] : impl_->classes) {
    const uint32_t u = qmask | cmask;
    auto key = std::make_pair(cmask, u);
    auto it = impl_->proj_indexes.find(key);
    if (it == impl_->proj_indexes.end()) {
      auto& index = impl_->proj_indexes[key];
      for (const size_t id : ids) {
        auto proj = ProjectOut(impl_->patterns[id].values, u);
        auto& agg = index[std::move(proj)];
        agg.first += impl_->patterns[id].count;
        agg.second += impl_->patterns[id].weight;
      }
      it = impl_->proj_indexes.find(key);
    }
    const auto proj = ProjectOut(pattern, u);
    auto hit = it->second.find(proj);
    if (hit != it->second.end()) {
      mass.count += hit->second.first;
      mass.weight += hit->second.second;
    }
  }
  return mass;
}

double CountMatches(const MicrodataTable& table, const std::vector<size_t>& qi_columns,
                    const std::vector<Value>& pattern, NullSemantics semantics) {
  double count = 0.0;
  for (size_t r = 0; r < table.num_rows(); ++r) {
    bool match = true;
    for (size_t i = 0; i < qi_columns.size() && match; ++i) {
      const Value& cell = table.cell(r, qi_columns[i]);
      match = semantics == NullSemantics::kMaybeMatch ? cell.MaybeEquals(pattern[i])
                                                      : cell.Equals(pattern[i]);
    }
    if (match) count += 1.0;
  }
  return count;
}

}  // namespace vadasa::core
